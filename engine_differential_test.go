package lantern

// Differential check of the streaming iterator executor against the
// materializing reference executor over the full TPC-H workload on the
// seed catalog — the engine-internal differential tests cover the
// operator matrix on a small schema; this covers the paper's actual
// query corpus at dataset scale. Results must match as multisets, and as
// exact sequences when the query has ORDER BY.

import (
	"sort"
	"strings"
	"testing"

	"lantern/internal/datasets"
	"lantern/internal/engine"
	"lantern/internal/sqlparser"
	"lantern/internal/storage"
)

func diffRowStrings(rows []storage.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		parts := make([]string, len(r))
		for j, v := range r {
			parts[j] = v.String()
		}
		out[i] = strings.Join(parts, "|")
	}
	return out
}

func TestTPCHDifferentialStreamingVsReference(t *testing.T) {
	e := engine.NewDefault()
	if err := datasets.LoadTPCH(e, 0.02, 1); err != nil {
		t.Fatal(err)
	}
	for _, w := range datasets.TPCHWorkload() {
		e.Cfg.ReferenceExec = false
		stream, sErr := e.Exec(w.SQL)
		e.Cfg.ReferenceExec = true
		ref, rErr := e.Exec(w.SQL)
		e.Cfg.ReferenceExec = false
		if (sErr != nil) != (rErr != nil) {
			t.Fatalf("%s: stream err = %v, reference err = %v", w.Name, sErr, rErr)
		}
		if sErr != nil {
			t.Errorf("%s: exec: %v", w.Name, sErr)
			continue
		}
		got, want := diffRowStrings(stream.Rows), diffRowStrings(ref.Rows)
		sel, err := sqlparser.ParseSelect(w.SQL)
		if err != nil {
			t.Fatal(err)
		}
		if len(sel.OrderBy) == 0 {
			sort.Strings(got)
			sort.Strings(want)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: stream %d rows, reference %d", w.Name, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: row %d differs\nstream:    %s\nreference: %s", w.Name, i, got[i], want[i])
			}
		}
	}
}

// TestTPCHDifferentialParallelVsSerial runs the TPC-H workload through the
// morsel-parallel executor with the DOP policy forced up (4 workers, tiny
// per-worker shares so every table splits into many morsels) and pins the
// results against the serial vectorized executor — exact sequences under
// ORDER BY, multisets otherwise.
func TestTPCHDifferentialParallelVsSerial(t *testing.T) {
	e := engine.NewDefault()
	if err := datasets.LoadTPCH(e, 0.02, 1); err != nil {
		t.Fatal(err)
	}
	par := e.Session()
	par.Cfg.MaxQueryParallelism = 4
	par.Cfg.ParallelRowsPerWorker = 64
	for _, w := range datasets.TPCHWorkload() {
		serial, sErr := e.Exec(w.SQL)
		parallel, pErr := par.Exec(w.SQL)
		if (sErr != nil) != (pErr != nil) {
			t.Fatalf("%s: serial err = %v, parallel err = %v", w.Name, sErr, pErr)
		}
		if sErr != nil {
			t.Errorf("%s: exec: %v", w.Name, sErr)
			continue
		}
		got, want := diffRowStrings(parallel.Rows), diffRowStrings(serial.Rows)
		sel, err := sqlparser.ParseSelect(w.SQL)
		if err != nil {
			t.Fatal(err)
		}
		if len(sel.OrderBy) == 0 {
			sort.Strings(got)
			sort.Strings(want)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: parallel %d rows, serial %d", w.Name, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: row %d differs\nparallel: %s\nserial:   %s", w.Name, i, got[i], want[i])
			}
		}
	}
}
