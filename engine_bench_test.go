package lantern

// Engine micro-benchmarks for the executor, recorded to BENCH_engine.json
// by `make bench`. The default path is the batch-at-a-time vectorized
// pipeline; twins pin the ablations: *RowStream (Config.RowStreamExec)
// forces the row-at-a-time streaming pipeline — the allocs/op gap against
// the default is the point of vectorization — and *Reference
// (Config.ReferenceExec) is full materialization, where
// ExecLimitShortCircuit vs ExecLimitFullMaterialize remains the headline:
// LIMIT 10 over a scan touches ten heap rows instead of the whole table.
//
//	go test -bench 'BenchmarkExec' -benchmem .
import (
	"testing"

	"lantern/internal/datasets"
	"lantern/internal/engine"
)

func execBenchEngine(b *testing.B, reference bool, mutate func(*engine.Config)) *engine.Engine {
	b.Helper()
	return execBenchEngineScale(b, 0.05, reference, mutate)
}

func execBenchEngineScale(b *testing.B, scale float64, reference bool, mutate func(*engine.Config)) *engine.Engine {
	b.Helper()
	cfg := engine.DefaultConfig()
	cfg.ReferenceExec = reference
	if mutate != nil {
		mutate(&cfg)
	}
	e := engine.New(cfg)
	if err := datasets.LoadTPCH(e, scale, 1); err != nil {
		b.Fatal(err)
	}
	return e
}

const (
	execJoinHashQuery = `SELECT c.c_name, o.o_totalprice FROM customer c, orders o
		WHERE c.c_custkey = o.o_custkey AND o.o_totalprice > 1000`
	execJoinNLQuery = `SELECT c.c_name, o.o_totalprice FROM customer c, orders o
		WHERE c.c_custkey = o.o_custkey AND o.o_totalprice > 1000`
	execTopKQuery              = `SELECT l_orderkey, l_extendedprice FROM lineitem ORDER BY l_extendedprice DESC LIMIT 10`
	execLimitShortCircuitQuery = `SELECT l_orderkey FROM lineitem WHERE l_quantity > 10 LIMIT 10`
	execStreamScanQuery        = `SELECT l_orderkey, l_quantity FROM lineitem WHERE l_quantity > 25`
)

// --- Joins -------------------------------------------------------------------

func BenchmarkExecJoinHash(b *testing.B) {
	benchQuery(b, execBenchEngine(b, false, func(c *engine.Config) {
		c.EnableMergeJoin, c.EnableNestLoop = false, false
	}), execJoinHashQuery)
}

func BenchmarkExecJoinHashRowStream(b *testing.B) {
	benchQuery(b, execBenchEngine(b, false, func(c *engine.Config) {
		c.EnableMergeJoin, c.EnableNestLoop = false, false
		c.RowStreamExec = true
	}), execJoinHashQuery)
}

func BenchmarkExecJoinHashReference(b *testing.B) {
	benchQuery(b, execBenchEngine(b, true, func(c *engine.Config) {
		c.EnableMergeJoin, c.EnableNestLoop = false, false
	}), execJoinHashQuery)
}

func BenchmarkExecJoinNL(b *testing.B) {
	benchQuery(b, execBenchEngine(b, false, func(c *engine.Config) {
		c.EnableHashJoin, c.EnableMergeJoin = false, false
	}), execJoinNLQuery)
}

func BenchmarkExecJoinNLReference(b *testing.B) {
	benchQuery(b, execBenchEngine(b, true, func(c *engine.Config) {
		c.EnableHashJoin, c.EnableMergeJoin = false, false
	}), execJoinNLQuery)
}

func BenchmarkExecJoinMerge(b *testing.B) {
	benchQuery(b, execBenchEngine(b, false, func(c *engine.Config) {
		c.EnableHashJoin, c.EnableNestLoop = false, false
	}), execJoinHashQuery)
}

// --- Top-K sort --------------------------------------------------------------

func BenchmarkExecTopK(b *testing.B) {
	benchQuery(b, execBenchEngine(b, false, nil), execTopKQuery)
}

func BenchmarkExecTopKFullSort(b *testing.B) {
	benchQuery(b, execBenchEngine(b, true, nil), execTopKQuery)
}

// --- Limit short-circuit -----------------------------------------------------

func BenchmarkExecLimitShortCircuit(b *testing.B) {
	benchQuery(b, execBenchEngine(b, false, nil), execLimitShortCircuitQuery)
}

func BenchmarkExecLimitFullMaterialize(b *testing.B) {
	benchQuery(b, execBenchEngine(b, true, nil), execLimitShortCircuitQuery)
}

// --- Morsel-driven parallelism -----------------------------------------------
//
// The parallel benchmarks run at a larger TPC-H scale (0.5, lineitem ≈ 30k
// rows) so each morsel carries real work, and use aggregation-shaped
// queries so the timing measures the scan/join, not result materialization.
// The *Serial twins run the identical query on the identical data with
// parallelism disabled — the pairwise ratio is the speedup. Run with
// `-cpu 1,4` to see both the serial-parity and the scaled numbers; on a
// machine with fewer physical cores than the -cpu value the parallel
// variant is oversubscribed and the ratio reads as scheduling overhead
// rather than speedup.

const (
	execParallelScanQuery = `SELECT MAX(l_extendedprice), COUNT(*) FROM lineitem WHERE l_quantity > 10`
	execParallelJoinQuery = `SELECT COUNT(*), SUM(o.o_totalprice) FROM customer c, orders o
		WHERE c.c_custkey = o.o_custkey AND o.o_totalprice > 1000`
)

func benchParallelConfig(c *engine.Config) {
	c.MaxQueryParallelism = 4
	c.ParallelRowsPerWorker = 4096
}

func benchSerialConfig(c *engine.Config) {
	c.MaxQueryParallelism = -1
}

func BenchmarkExecParallelScan(b *testing.B) {
	benchQuery(b, execBenchEngineScale(b, 0.5, false, benchParallelConfig), execParallelScanQuery)
}

func BenchmarkExecParallelScanSerial(b *testing.B) {
	benchQuery(b, execBenchEngineScale(b, 0.5, false, benchSerialConfig), execParallelScanQuery)
}

func BenchmarkExecParallelJoinHash(b *testing.B) {
	benchQuery(b, execBenchEngineScale(b, 0.5, false, func(c *engine.Config) {
		c.EnableMergeJoin, c.EnableNestLoop = false, false
		benchParallelConfig(c)
	}), execParallelJoinQuery)
}

func BenchmarkExecParallelJoinHashSerial(b *testing.B) {
	benchQuery(b, execBenchEngineScale(b, 0.5, false, func(c *engine.Config) {
		c.EnableMergeJoin, c.EnableNestLoop = false, false
		benchSerialConfig(c)
	}), execParallelJoinQuery)
}

// --- Streaming scan ----------------------------------------------------------

func BenchmarkExecStreamScan(b *testing.B) {
	benchQuery(b, execBenchEngine(b, false, nil), execStreamScanQuery)
}

func BenchmarkExecStreamScanRowStream(b *testing.B) {
	benchQuery(b, execBenchEngine(b, false, func(c *engine.Config) { c.RowStreamExec = true }), execStreamScanQuery)
}

func BenchmarkExecStreamScanReference(b *testing.B) {
	benchQuery(b, execBenchEngine(b, true, nil), execStreamScanQuery)
}

// --- Zone-map pruning --------------------------------------------------------
//
// The pruning benchmarks run at TPC-H scale 2 (lineitem ≈ 75k rows, ~18
// sealed 4096-row segments plus a tail) with index scans disabled so the
// planner cannot sidestep the sequential scan under test. lineitem is
// generated in l_orderkey order, so a low orderkey bound is CLUSTERED: the
// zone maps of every later segment refute it and the scan skips them
// wholesale. The *Selective twin filters on l_quantity at a similar output
// cardinality — but quantities are scattered uniformly, every segment's
// zone map spans the predicate, and the scan must read every row: the gap
// between the two is what pruning buys on clustered predicates, and the
// *NoPrune ablation (same clustered query, DisableZonePruning) isolates
// the zone-check mechanism from the typed-loop speedup it rides on.

const (
	execPrunedScanQuery    = `SELECT COUNT(*), SUM(l_extendedprice) FROM lineitem WHERE l_orderkey < 500`
	execSelectiveScanQuery = `SELECT COUNT(*), SUM(l_extendedprice) FROM lineitem WHERE l_quantity < 4.2`
)

func benchNoIndexConfig(c *engine.Config) {
	c.EnableIndexScan = false
}

func BenchmarkExecScanZoneMapPruned(b *testing.B) {
	benchQuery(b, execBenchEngineScale(b, 2, false, benchNoIndexConfig), execPrunedScanQuery)
}

func BenchmarkExecScanZoneMapPrunedNoPrune(b *testing.B) {
	benchQuery(b, execBenchEngineScale(b, 2, false, func(c *engine.Config) {
		benchNoIndexConfig(c)
		c.DisableZonePruning = true
	}), execPrunedScanQuery)
}

func BenchmarkExecScanSelectiveFilter(b *testing.B) {
	benchQuery(b, execBenchEngineScale(b, 2, false, benchNoIndexConfig), execSelectiveScanQuery)
}
