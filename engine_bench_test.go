package lantern

// Engine micro-benchmarks for the executor, recorded to BENCH_engine.json
// by `make bench`. The default path is the batch-at-a-time vectorized
// pipeline; twins pin the ablations: *RowStream (Config.RowStreamExec)
// forces the row-at-a-time streaming pipeline — the allocs/op gap against
// the default is the point of vectorization — and *Reference
// (Config.ReferenceExec) is full materialization, where
// ExecLimitShortCircuit vs ExecLimitFullMaterialize remains the headline:
// LIMIT 10 over a scan touches ten heap rows instead of the whole table.
//
//	go test -bench 'BenchmarkExec' -benchmem .
import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	"lantern/internal/catalog"
	"lantern/internal/datasets"
	"lantern/internal/engine"
	"lantern/internal/pager"
)

func execBenchEngine(b *testing.B, reference bool, mutate func(*engine.Config)) *engine.Engine {
	b.Helper()
	return execBenchEngineScale(b, 0.05, reference, mutate)
}

func execBenchEngineScale(b *testing.B, scale float64, reference bool, mutate func(*engine.Config)) *engine.Engine {
	b.Helper()
	cfg := engine.DefaultConfig()
	cfg.ReferenceExec = reference
	if mutate != nil {
		mutate(&cfg)
	}
	e := engine.New(cfg)
	if err := datasets.LoadTPCH(e, scale, 1); err != nil {
		b.Fatal(err)
	}
	return e
}

const (
	execJoinHashQuery = `SELECT c.c_name, o.o_totalprice FROM customer c, orders o
		WHERE c.c_custkey = o.o_custkey AND o.o_totalprice > 1000`
	execJoinNLQuery = `SELECT c.c_name, o.o_totalprice FROM customer c, orders o
		WHERE c.c_custkey = o.o_custkey AND o.o_totalprice > 1000`
	execTopKQuery              = `SELECT l_orderkey, l_extendedprice FROM lineitem ORDER BY l_extendedprice DESC LIMIT 10`
	execLimitShortCircuitQuery = `SELECT l_orderkey FROM lineitem WHERE l_quantity > 10 LIMIT 10`
	execStreamScanQuery        = `SELECT l_orderkey, l_quantity FROM lineitem WHERE l_quantity > 25`
)

// --- Joins -------------------------------------------------------------------

func BenchmarkExecJoinHash(b *testing.B) {
	benchQuery(b, execBenchEngine(b, false, func(c *engine.Config) {
		c.EnableMergeJoin, c.EnableNestLoop = false, false
	}), execJoinHashQuery)
}

func BenchmarkExecJoinHashRowStream(b *testing.B) {
	benchQuery(b, execBenchEngine(b, false, func(c *engine.Config) {
		c.EnableMergeJoin, c.EnableNestLoop = false, false
		c.RowStreamExec = true
	}), execJoinHashQuery)
}

func BenchmarkExecJoinHashReference(b *testing.B) {
	benchQuery(b, execBenchEngine(b, true, func(c *engine.Config) {
		c.EnableMergeJoin, c.EnableNestLoop = false, false
	}), execJoinHashQuery)
}

func BenchmarkExecJoinNL(b *testing.B) {
	benchQuery(b, execBenchEngine(b, false, func(c *engine.Config) {
		c.EnableHashJoin, c.EnableMergeJoin = false, false
	}), execJoinNLQuery)
}

func BenchmarkExecJoinNLReference(b *testing.B) {
	benchQuery(b, execBenchEngine(b, true, func(c *engine.Config) {
		c.EnableHashJoin, c.EnableMergeJoin = false, false
	}), execJoinNLQuery)
}

func BenchmarkExecJoinMerge(b *testing.B) {
	benchQuery(b, execBenchEngine(b, false, func(c *engine.Config) {
		c.EnableHashJoin, c.EnableNestLoop = false, false
	}), execJoinHashQuery)
}

// --- Top-K sort --------------------------------------------------------------

func BenchmarkExecTopK(b *testing.B) {
	benchQuery(b, execBenchEngine(b, false, nil), execTopKQuery)
}

func BenchmarkExecTopKFullSort(b *testing.B) {
	benchQuery(b, execBenchEngine(b, true, nil), execTopKQuery)
}

// --- Limit short-circuit -----------------------------------------------------

func BenchmarkExecLimitShortCircuit(b *testing.B) {
	benchQuery(b, execBenchEngine(b, false, nil), execLimitShortCircuitQuery)
}

func BenchmarkExecLimitFullMaterialize(b *testing.B) {
	benchQuery(b, execBenchEngine(b, true, nil), execLimitShortCircuitQuery)
}

// --- Morsel-driven parallelism -----------------------------------------------
//
// The parallel benchmarks run at a larger TPC-H scale (0.5, lineitem ≈ 30k
// rows) so each morsel carries real work, and use aggregation-shaped
// queries so the timing measures the scan/join, not result materialization.
// The *Serial twins run the identical query on the identical data with
// parallelism disabled — the pairwise ratio is the speedup. Run with
// `-cpu 1,4` to see both the serial-parity and the scaled numbers; on a
// machine with fewer physical cores than the -cpu value the parallel
// variant is oversubscribed and the ratio reads as scheduling overhead
// rather than speedup.

const (
	execParallelScanQuery = `SELECT MAX(l_extendedprice), COUNT(*) FROM lineitem WHERE l_quantity > 10`
	execParallelJoinQuery = `SELECT COUNT(*), SUM(o.o_totalprice) FROM customer c, orders o
		WHERE c.c_custkey = o.o_custkey AND o.o_totalprice > 1000`
)

func benchParallelConfig(c *engine.Config) {
	c.MaxQueryParallelism = 4
	c.ParallelRowsPerWorker = 4096
}

func benchSerialConfig(c *engine.Config) {
	c.MaxQueryParallelism = -1
}

func BenchmarkExecParallelScan(b *testing.B) {
	benchQuery(b, execBenchEngineScale(b, 0.5, false, benchParallelConfig), execParallelScanQuery)
}

func BenchmarkExecParallelScanSerial(b *testing.B) {
	benchQuery(b, execBenchEngineScale(b, 0.5, false, benchSerialConfig), execParallelScanQuery)
}

func BenchmarkExecParallelJoinHash(b *testing.B) {
	benchQuery(b, execBenchEngineScale(b, 0.5, false, func(c *engine.Config) {
		c.EnableMergeJoin, c.EnableNestLoop = false, false
		benchParallelConfig(c)
	}), execParallelJoinQuery)
}

func BenchmarkExecParallelJoinHashSerial(b *testing.B) {
	benchQuery(b, execBenchEngineScale(b, 0.5, false, func(c *engine.Config) {
		c.EnableMergeJoin, c.EnableNestLoop = false, false
		benchSerialConfig(c)
	}), execParallelJoinQuery)
}

// --- Streaming scan ----------------------------------------------------------

func BenchmarkExecStreamScan(b *testing.B) {
	benchQuery(b, execBenchEngine(b, false, nil), execStreamScanQuery)
}

func BenchmarkExecStreamScanRowStream(b *testing.B) {
	benchQuery(b, execBenchEngine(b, false, func(c *engine.Config) { c.RowStreamExec = true }), execStreamScanQuery)
}

func BenchmarkExecStreamScanReference(b *testing.B) {
	benchQuery(b, execBenchEngine(b, true, nil), execStreamScanQuery)
}

// --- Zone-map pruning --------------------------------------------------------
//
// The pruning benchmarks run at TPC-H scale 2 (lineitem ≈ 75k rows, ~18
// sealed 4096-row segments plus a tail) with index scans disabled so the
// planner cannot sidestep the sequential scan under test. lineitem is
// generated in l_orderkey order, so a low orderkey bound is CLUSTERED: the
// zone maps of every later segment refute it and the scan skips them
// wholesale. The *Selective twin filters on l_quantity at a similar output
// cardinality — but quantities are scattered uniformly, every segment's
// zone map spans the predicate, and the scan must read every row: the gap
// between the two is what pruning buys on clustered predicates, and the
// *NoPrune ablation (same clustered query, DisableZonePruning) isolates
// the zone-check mechanism from the typed-loop speedup it rides on.

const (
	execPrunedScanQuery    = `SELECT COUNT(*), SUM(l_extendedprice) FROM lineitem WHERE l_orderkey < 500`
	execSelectiveScanQuery = `SELECT COUNT(*), SUM(l_extendedprice) FROM lineitem WHERE l_quantity < 4.2`
)

func benchNoIndexConfig(c *engine.Config) {
	c.EnableIndexScan = false
}

func BenchmarkExecScanZoneMapPruned(b *testing.B) {
	benchQuery(b, execBenchEngineScale(b, 2, false, benchNoIndexConfig), execPrunedScanQuery)
}

func BenchmarkExecScanZoneMapPrunedNoPrune(b *testing.B) {
	benchQuery(b, execBenchEngineScale(b, 2, false, func(c *engine.Config) {
		benchNoIndexConfig(c)
		c.DisableZonePruning = true
	}), execPrunedScanQuery)
}

func BenchmarkExecScanSelectiveFilter(b *testing.B) {
	benchQuery(b, execBenchEngineScale(b, 2, false, benchNoIndexConfig), execSelectiveScanQuery)
}

// --- Disk-backed scans through the buffer pool -------------------------------
//
// The disk benchmarks run against one shared TPC-H directory at the
// official scale-factor proportions (SF 1 by default — orders alone is
// ~1.5M rows across ~370 spilled segments, well past the constrained
// budgets below — override with LANTERN_BENCH_SF for quick local runs),
// seeded once per process and reopened per benchmark under the
// buffer-pool budget under test. The subset query bounds a CLUSTERED key,
// so zone maps prune every segment past the bound without I/O and the
// pool only ever sees the surviving prefix: Cold re-faults that prefix
// every access (1-byte budget — each unpin evicts), Warm holds it
// resident after benchQuery's warmup (the gap against Cold is the decode
// cost the pool absorbs), and Thrash scans the full table through a
// budget far below its size, the worst case where every iteration evicts
// what the last one faulted.

const (
	diskColdPoolBytes   = 1         // every unpin evicts: each access re-faults
	diskWarmPoolBytes   = 256 << 20 // the scanned subset stays resident
	diskThrashPoolBytes = 8 << 20   // far below the table: constant eviction

	diskSubsetScanQuery = `SELECT COUNT(*), SUM(o_totalprice) FROM orders WHERE o_orderkey <= 60000`
	diskFullScanQuery   = `SELECT COUNT(*), SUM(o_totalprice) FROM orders`
)

var (
	diskBenchOnce sync.Once
	diskBenchDir  string
	diskBenchErr  error
)

// TestMain removes the shared disk-backed benchmark directory — at SF 1
// it is ~1 GiB of segment files, too big to leave to the OS tmp reaper.
func TestMain(m *testing.M) {
	code := m.Run()
	if diskBenchDir != "" {
		os.RemoveAll(diskBenchDir)
	}
	os.Exit(code)
}

func diskBenchSF() float64 {
	if s := os.Getenv("LANTERN_BENCH_SF"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return 1
}

// diskBenchEngine opens the shared disk-backed TPC-H directory under the
// given buffer-pool budget. The seed load runs once per process, without
// secondary indexes: index entries rebuild at every reopen (only their
// DDL is durable), which would stream the whole dataset through the pool
// before the measured scan — and the scan benchmarks disable index scans
// anyway. The benchconfig line rides the bench output into benchjson, so
// BENCH_engine.json records the scale and budgets the numbers came from.
func diskBenchEngine(b *testing.B, poolBytes int64) *engine.Engine {
	b.Helper()
	diskBenchOnce.Do(func() {
		dir, err := os.MkdirTemp("", "lantern-bench-tpch-")
		if err != nil {
			diskBenchErr = err
			return
		}
		cat, err := catalog.Open(dir, pager.Config{})
		if err != nil {
			diskBenchErr = err
			return
		}
		e := engine.NewWithCatalog(engine.DefaultConfig(), cat)
		if err := datasets.LoadTPCHSFNoIndex(e, diskBenchSF(), 1); err != nil {
			diskBenchErr = err
			return
		}
		diskBenchDir = dir
		fmt.Printf("benchconfig: tpch_sf=%g pool_cold_bytes=%d pool_warm_bytes=%d pool_thrash_bytes=%d\n",
			diskBenchSF(), diskColdPoolBytes, diskWarmPoolBytes, diskThrashPoolBytes)
	})
	if diskBenchErr != nil {
		b.Fatal(diskBenchErr)
	}
	cat, err := catalog.Open(diskBenchDir, pager.Config{BufferPoolBytes: poolBytes})
	if err != nil {
		b.Fatal(err)
	}
	cfg := engine.DefaultConfig()
	cfg.EnableIndexScan = false
	return engine.NewWithCatalog(cfg, cat)
}

func BenchmarkExecScanCold(b *testing.B) {
	benchQuery(b, diskBenchEngine(b, diskColdPoolBytes), diskSubsetScanQuery)
}

func BenchmarkExecScanWarm(b *testing.B) {
	benchQuery(b, diskBenchEngine(b, diskWarmPoolBytes), diskSubsetScanQuery)
}

func BenchmarkExecBufferPoolThrash(b *testing.B) {
	benchQuery(b, diskBenchEngine(b, diskThrashPoolBytes), diskFullScanQuery)
}
