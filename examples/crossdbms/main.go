// crossdbms demonstrates LANTERN's vendor portability (the property NEURON
// lacks, paper US 5): the same SDSS query is narrated from a
// PostgreSQL-style JSON plan, a SQL-Server-style XML showplan, a
// MySQL-style EXPLAIN FORMAT=JSON document, and the engine's native plan
// serialization — four operator vocabularies, one declarative POEM store,
// one pluggable dialect registry. It then executes the query through the
// direct engine↔plan bridge to narrate what *actually* happened (actual
// row counts and optimizer mis-estimates), and finally uses POOL's
// UPDATE/REPLACE statements to transfer descriptions to DB2's operators,
// exactly as §4.2's examples do.
package main

import (
	"fmt"
	"log"

	"lantern/internal/core"
	"lantern/internal/datasets"
	"lantern/internal/engine"
	"lantern/internal/neuron"
	"lantern/internal/plan"
	"lantern/internal/pool"
)

func main() {
	eng := engine.NewDefault()
	if err := datasets.LoadSDSS(eng, 0.05, 1); err != nil {
		log.Fatal(err)
	}
	store := pool.NewSeededStore()
	rl := core.NewRuleLantern(store)

	query := `SELECT p.objid, s.class, s.z FROM photoobj p, specobj s
		WHERE p.objid = s.bestobjid AND s.class = 'QSO' AND s.z > 2`

	// --- One query, every registered dialect --------------------------------
	// Each dialect round-trips through its own serialization and parser,
	// and the document is re-parsed via auto-detection to show the
	// registry attributing it without being told the dialect.
	for _, name := range plan.Dialects() {
		d, _ := plan.Lookup(name)
		if d.EngineFormat == "" {
			continue // no engine serializer (e.g. a plan-document-only dialect)
		}
		r, err := eng.Exec(fmt.Sprintf("EXPLAIN (FORMAT %s) %s", d.EngineFormat, query))
		if err != nil {
			log.Fatal(err)
		}
		tree, detected, err := plan.ParseAuto(r.Plan)
		if err != nil {
			log.Fatal(err)
		}
		if detected != name {
			log.Fatalf("auto-detection attributed a %s plan to %s", name, detected)
		}
		fmt.Printf("--- %s operators: %v\n", name, tree.OperatorNames())
		nar, err := rl.Narrate(tree)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(nar.Text(), "\n")
	}

	// --- Narrating what actually happened ------------------------------------
	// The native bridge skips serialization entirely: execute with
	// instrumentation, bridge the plan with its actuals, narrate.
	qr, err := eng.QueryInstrumented(query)
	if err != nil {
		log.Fatal(err)
	}
	actualTree := engine.ToPlanNodeStats(qr.Plan, qr.Stats)
	nar, err := rl.Narrate(actualTree)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("--- native with actuals (%d rows in %.3f ms):\n%s\n",
		len(qr.Result.Rows), float64(qr.Elapsed)/1e6, nar.Text())

	// --- NEURON cannot follow -------------------------------------------------
	msTree, err := plan.Parse("sqlserver", mustExplain(eng, "XML", query))
	if err != nil {
		log.Fatal(err)
	}
	n := neuron.New()
	if _, err := n.Narrate(msTree); err != nil {
		fmt.Println("NEURON on the same SQL Server plan:", err)
	}

	// --- POOL keeps SMEs productive across vendors -----------------------------
	fmt.Println("\nPOOL transfer examples (paper §4.2):")
	for _, stmt := range []string{
		`SELECT defn FROM db2 WHERE name = 'zzjoin'`,
		`UPDATE db2 SET desc = (SELECT desc FROM pg WHERE pg.name = 'hashjoin') WHERE db2.name = 'hsjoin'`,
		`UPDATE pg SET desc = REPLACE((SELECT desc FROM pg AS pg2 WHERE pg2.name = 'hashjoin'), 'hash', 'nested loop ') WHERE pg.name = 'nestedloop'`,
		// Transfer pg's hash-join description onto MySQL's operator: a new
		// dialect inherits SME work instead of restarting it.
		`UPDATE mysql SET desc = (SELECT desc FROM pg WHERE pg.name = 'hashjoin') WHERE mysql.name = 'hashjoin'`,
		`COMPOSE hash, hashjoin FROM pg USING hashjoin.desc = 'perform hash join'`,
	} {
		res, err := store.Exec(stmt)
		if err != nil {
			log.Fatal(err)
		}
		switch {
		case res.Template != "":
			fmt.Printf("  %s\n    -> %s\n", stmt, res.Template)
		case len(res.Rows) > 0:
			fmt.Printf("  %s\n    -> %v\n", stmt, res.Rows[0])
		default:
			fmt.Printf("  %s\n    -> OK (%d affected)\n", stmt, res.Affected)
		}
	}
}

func mustExplain(eng *engine.Engine, format, query string) string {
	r, err := eng.Exec(fmt.Sprintf("EXPLAIN (FORMAT %s) %s", format, query))
	if err != nil {
		log.Fatal(err)
	}
	return r.Plan
}
