// crossdbms demonstrates LANTERN's vendor portability (the property NEURON
// lacks, paper US 5): the same SDSS query is narrated from a
// PostgreSQL-style JSON plan and from a SQL-Server-style XML showplan —
// different operator vocabularies, one declarative POEM store. It then uses
// POOL's UPDATE/REPLACE statements to transfer descriptions to DB2's
// operators, exactly as §4.2's examples do.
package main

import (
	"fmt"
	"log"

	"lantern/internal/core"
	"lantern/internal/datasets"
	"lantern/internal/engine"
	"lantern/internal/neuron"
	"lantern/internal/plan"
	"lantern/internal/pool"
)

func main() {
	eng := engine.NewDefault()
	if err := datasets.LoadSDSS(eng, 0.05, 1); err != nil {
		log.Fatal(err)
	}
	store := pool.NewSeededStore()
	rl := core.NewRuleLantern(store)

	query := `SELECT p.objid, s.class, s.z FROM photoobj p, specobj s
		WHERE p.objid = s.bestobjid AND s.class = 'QSO' AND s.z > 2`

	// --- PostgreSQL dialect -------------------------------------------------
	r, err := eng.Exec("EXPLAIN (FORMAT JSON) " + query)
	if err != nil {
		log.Fatal(err)
	}
	pgTree, err := plan.ParsePostgresJSON(r.Plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("PostgreSQL operators:", pgTree.OperatorNames())
	nar, err := rl.Narrate(pgTree)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(nar.Text())

	// --- SQL Server dialect ---------------------------------------------------
	r, err = eng.Exec("EXPLAIN (FORMAT XML) " + query)
	if err != nil {
		log.Fatal(err)
	}
	msTree, err := plan.ParseSQLServerXML(r.Plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSQL Server operators:", msTree.OperatorNames())
	nar, err = rl.Narrate(msTree)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(nar.Text())

	// --- NEURON cannot follow -------------------------------------------------
	n := neuron.New()
	if _, err := n.Narrate(msTree); err != nil {
		fmt.Println("\nNEURON on the same SQL Server plan:", err)
	}

	// --- POOL keeps SMEs productive across vendors -----------------------------
	fmt.Println("\nPOOL transfer examples (paper §4.2):")
	for _, stmt := range []string{
		`SELECT defn FROM db2 WHERE name = 'zzjoin'`,
		`UPDATE db2 SET desc = (SELECT desc FROM pg WHERE pg.name = 'hashjoin') WHERE db2.name = 'hsjoin'`,
		`UPDATE pg SET desc = REPLACE((SELECT desc FROM pg AS pg2 WHERE pg2.name = 'hashjoin'), 'hash', 'nested loop ') WHERE pg.name = 'nestedloop'`,
		`COMPOSE hash, hashjoin FROM pg USING hashjoin.desc = 'perform hash join'`,
	} {
		res, err := store.Exec(stmt)
		if err != nil {
			log.Fatal(err)
		}
		switch {
		case res.Template != "":
			fmt.Printf("  %s\n    -> %s\n", stmt, res.Template)
		case len(res.Rows) > 0:
			fmt.Printf("  %s\n    -> %v\n", stmt, res.Rows[0])
		default:
			fmt.Printf("  %s\n    -> OK (%d affected)\n", stmt, res.Affected)
		}
	}
}
