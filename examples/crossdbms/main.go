// crossdbms demonstrates LANTERN's vendor portability (the property NEURON
// lacks, paper US 5): the same SDSS query is narrated from a
// PostgreSQL-style JSON plan, a SQL-Server-style XML showplan, a
// MySQL-style EXPLAIN FORMAT=JSON document, and the engine's native plan
// serialization — four operator vocabularies, one declarative POEM store,
// one pluggable dialect registry. It then switches to the serving surface:
// an in-process lanternd is booted and driven through the Go client SDK —
// a batch envelope narrating across dialects in one round-trip, an
// executed query narrating what *actually* happened (actual row counts and
// optimizer mis-estimates), a streaming query delivering rows before the
// narration trailer, and a structured, retryable-annotated error. Finally
// POOL's UPDATE/REPLACE statements transfer descriptions to DB2's
// operators, exactly as §4.2's examples do.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"time"

	"lantern/client"
	"lantern/internal/core"
	"lantern/internal/datasets"
	"lantern/internal/engine"
	"lantern/internal/httpapi"
	"lantern/internal/neuron"
	"lantern/internal/plan"
	"lantern/internal/pool"
	"lantern/internal/service"
)

func main() {
	eng := engine.NewDefault()
	if err := datasets.LoadSDSS(eng, 0.05, 1); err != nil {
		log.Fatal(err)
	}
	store := pool.NewSeededStore()
	rl := core.NewRuleLantern(store)

	query := `SELECT p.objid, s.class, s.z FROM photoobj p, specobj s
		WHERE p.objid = s.bestobjid AND s.class = 'QSO' AND s.z > 2`

	// --- One query, every registered dialect --------------------------------
	// Each dialect round-trips through its own serialization and parser,
	// and the document is re-parsed via auto-detection to show the
	// registry attributing it without being told the dialect.
	for _, name := range plan.Dialects() {
		d, _ := plan.Lookup(name)
		if d.EngineFormat == "" {
			continue // no engine serializer (e.g. a plan-document-only dialect)
		}
		r, err := eng.Exec(fmt.Sprintf("EXPLAIN (FORMAT %s) %s", d.EngineFormat, query))
		if err != nil {
			log.Fatal(err)
		}
		tree, detected, err := plan.ParseAuto(r.Plan)
		if err != nil {
			log.Fatal(err)
		}
		if detected != name {
			log.Fatalf("auto-detection attributed a %s plan to %s", name, detected)
		}
		fmt.Printf("--- %s operators: %v\n", name, tree.OperatorNames())
		nar, err := rl.Narrate(tree)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(nar.Text(), "\n")
	}

	// --- The serving surface through the Go client SDK -----------------------
	// Everything below drives the same pipeline a production deployment
	// serves: an in-process daemon on a loopback listener, spoken to in v2
	// envelopes via lantern/client.
	srv := service.NewServer(eng, store, service.Config{RequestTimeout: time.Minute})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: httpapi.New(srv, store, httpapi.Config{Dataset: "sdss"})}
	go httpSrv.Serve(ln)
	defer func() { httpSrv.Close(); srv.Close() }()
	c := client.New("http://" + ln.Addr().String())
	ctx := context.Background()

	// One batch envelope, three dialects — narrated in a single round-trip.
	batch, err := c.Batch(ctx, []*client.Request{
		{Op: client.OpNarrate, ID: "pg", Dialect: "pg", SQL: query},
		{Op: client.OpNarrate, ID: "mysql", Dialect: "mysql", SQL: query},
		{Op: client.OpNarrate, ID: "native", Dialect: "native", SQL: query},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- one batch envelope, three dialects:")
	for _, r := range batch {
		fmt.Printf("  [%s] %d steps, fingerprint %.12s...\n", r.ID, len(r.Narrate.Steps), r.Narrate.Fingerprint)
	}

	// Narrating what actually happened: the query op executes with
	// instrumentation on a pooled engine session and narrates its actuals.
	qr, err := c.Query(ctx, &client.QueryRequest{SQL: query, MaxRows: -1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n--- native with actuals (%d rows in %.3f ms):\n%s\n", qr.RowCount, qr.ElapsedMs, qr.Text)

	// Streaming: rows arrive incrementally, the narration follows as the
	// trailer — a client renders results before the query has finished.
	qs, err := c.QueryStream(ctx, &client.QueryRequest{SQL: query})
	if err != nil {
		log.Fatal(err)
	}
	streamed := 0
	for {
		if _, err := qs.Next(); err == io.EOF {
			break
		} else if err != nil {
			log.Fatal(err)
		}
		streamed++
	}
	fmt.Printf("--- streamed %d rows over %v, then the trailer narration (%d steps)\n",
		streamed, qs.Columns(), len(qs.Trailer().Steps))
	qs.Close()

	// Structured errors: stable code + retryable bit, not string matching.
	if _, err := c.Query(ctx, &client.QueryRequest{SQL: "SELECT FROM nowhere"}); err != nil {
		fmt.Printf("--- structured error: %v (retryable=%v)\n\n", err, client.IsRetryable(err))
	}

	// --- NEURON cannot follow -------------------------------------------------
	msTree, err := plan.Parse("sqlserver", mustExplain(eng, "XML", query))
	if err != nil {
		log.Fatal(err)
	}
	n := neuron.New()
	if _, err := n.Narrate(msTree); err != nil {
		fmt.Println("NEURON on the same SQL Server plan:", err)
	}

	// --- POOL keeps SMEs productive across vendors -----------------------------
	fmt.Println("\nPOOL transfer examples (paper §4.2):")
	for _, stmt := range []string{
		`SELECT defn FROM db2 WHERE name = 'zzjoin'`,
		`UPDATE db2 SET desc = (SELECT desc FROM pg WHERE pg.name = 'hashjoin') WHERE db2.name = 'hsjoin'`,
		`UPDATE pg SET desc = REPLACE((SELECT desc FROM pg AS pg2 WHERE pg2.name = 'hashjoin'), 'hash', 'nested loop ') WHERE pg.name = 'nestedloop'`,
		// Transfer pg's hash-join description onto MySQL's operator: a new
		// dialect inherits SME work instead of restarting it.
		`UPDATE mysql SET desc = (SELECT desc FROM pg WHERE pg.name = 'hashjoin') WHERE mysql.name = 'hashjoin'`,
		`COMPOSE hash, hashjoin FROM pg USING hashjoin.desc = 'perform hash join'`,
	} {
		// Through the SDK: POOL statements are first-class envelope ops, so
		// SME maintenance runs against a live daemon, not a local store.
		res, err := c.Pool(ctx, stmt)
		if err != nil {
			log.Fatal(err)
		}
		switch {
		case res.Template != "":
			fmt.Printf("  %s\n    -> %s\n", stmt, res.Template)
		case len(res.Rows) > 0:
			fmt.Printf("  %s\n    -> %v\n", stmt, res.Rows[0])
		default:
			fmt.Printf("  %s\n    -> OK (%d affected)\n", stmt, res.Affected)
		}
	}
}

func mustExplain(eng *engine.Engine, format, query string) string {
	r, err := eng.Exec(fmt.Sprintf("EXPLAIN (FORMAT %s) %s", format, query))
	if err != nil {
		log.Fatal(err)
	}
	return r.Plan
}
