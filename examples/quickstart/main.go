// Quickstart: the complete LANTERN loop in one page — create a database,
// pose the paper's Example 3.1 query, obtain the PostgreSQL-style JSON
// plan, and narrate it with RULE-LANTERN. The output reproduces the
// paper's Example 5.1 step by step.
package main

import (
	"fmt"
	"log"

	"lantern/internal/core"
	"lantern/internal/engine"
	"lantern/internal/plan"
	"lantern/internal/pool"
)

func main() {
	// 1. A database: the paper's dblp-style schema with enough rows that
	//    the optimizer picks the Figure 4 plan (hash join + sorted
	//    aggregate + unique).
	cfg := engine.DefaultConfig()
	cfg.EnableHashAgg = false // show the paper's GroupAggregate variant
	cfg.EnableMergeJoin = false
	cfg.EnableNestLoop = false
	eng := engine.New(cfg)
	mustExec(eng, `CREATE TABLE inproceedings (proceeding_key INTEGER, author VARCHAR(30))`)
	mustExec(eng, `CREATE TABLE publication (pub_key INTEGER, title VARCHAR(60))`)
	for i := 1; i <= 50; i++ {
		title := "Symposium Proceedings"
		if i%5 == 0 {
			title = "Proceedings of July"
		}
		mustExec(eng, fmt.Sprintf("INSERT INTO inproceedings VALUES (%d, 'author%d')", i%10, i))
		mustExec(eng, fmt.Sprintf("INSERT INTO publication VALUES (%d, '%s %d')", i%10, title, i))
	}

	// 2. The paper's Example 3.1 query.
	query := `SELECT DISTINCT(I.proceeding_key)
		FROM inproceedings I, publication P
		WHERE I.proceeding_key = P.pub_key AND P.title LIKE '%July%'
		GROUP BY I.proceeding_key
		HAVING COUNT(*) > 2`

	// 3. The QEP, exactly as a learner would obtain it from PostgreSQL.
	res, err := eng.Exec("EXPLAIN (FORMAT JSON) " + query)
	if err != nil {
		log.Fatal(err)
	}
	tree, err := plan.ParsePostgresJSON(res.Plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("The query execution plan (operator tree):")
	fmt.Println(tree)

	// 4. RULE-LANTERN over the standard POEM store (two SMEs' worth of
	//    POOL-authored operator descriptions).
	store := pool.NewSeededStore()
	rl := core.NewRuleLantern(store)
	nar, err := rl.Narrate(tree)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("The natural-language narration (paper Example 5.1):")
	fmt.Print(nar.Text())
}

func mustExec(e *engine.Engine, sql string) {
	if _, err := e.Exec(sql); err != nil {
		log.Fatalf("%s: %v", sql, err)
	}
}
