// neural_training walks through NEURAL-LANTERN's full §6 pipeline on a
// small scale: generate random queries over a schema and instance (the
// Kipf-style generator), decompose their plans into acts, diversify the
// RULE-LANTERN ground truth with the three paraphrasing tools, train the
// QEP2Seq model with pre-trained Word2Vec vectors, and compare the neural
// narration against the rule-based one with BLEU.
package main

import (
	"fmt"
	"log"

	"lantern/internal/core"
	"lantern/internal/datasets"
	"lantern/internal/embed"
	"lantern/internal/engine"
	"lantern/internal/metrics"
	"lantern/internal/neural"
	"lantern/internal/plan"
	"lantern/internal/pool"
	"lantern/internal/textgen"
)

func main() {
	// Training domain: TPC-H. Test domain: IMDB (cross-domain, as in the
	// paper's portability evaluation).
	tpch := engine.NewDefault()
	if err := datasets.LoadTPCH(tpch, 0.05, 1); err != nil {
		log.Fatal(err)
	}
	imdb := engine.NewDefault()
	if err := datasets.LoadIMDB(imdb, 0.05, 1); err != nil {
		log.Fatal(err)
	}
	store := pool.NewSeededStore()

	// 1. Random queries (paper §6.2 / [31]).
	gen := textgen.New(tpch, datasets.TPCHForeignKeys(), textgen.DefaultConfig(), 42)
	queries := gen.Queries(40)
	fmt.Printf("generated %d training queries; first three:\n", len(queries))
	for _, q := range queries[:3] {
		fmt.Println("  ", q)
	}
	trees := explainAll(tpch, queries)

	// 2. Acts + paraphrase diversification.
	ds, err := neural.NewBuilder(store).Build(trees)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d acts -> %d training samples after paraphrasing (%.1fx)\n",
		ds.BaseActs, len(ds.Samples), float64(len(ds.Samples))/float64(ds.BaseActs))
	sum := 0.0
	for _, g := range ds.Groups {
		sum += metrics.SelfBLEU(g)
	}
	fmt.Printf("mean group Self-BLEU: %.3f (1.0 would mean no diversity added)\n",
		sum/float64(len(ds.Groups)))

	// 3. Pre-trained Word2Vec vectors on the bundled generic corpus.
	corpus := embed.GenericCorpus(1500, 1)
	w2v := embed.TrainWord2Vec(corpus, embed.DefaultWord2Vec(16))

	// 4. Train QEP2Seq.
	fmt.Println("\ntraining QEP2Seq+Word2Vec ...")
	nl, err := neural.Train(store, ds, neural.TrainConfig{
		Hidden: 32, EncEmbDim: 8, DecEmbDim: 16,
		Epochs: 25, BatchSize: 4, LR: 0.3, Seed: 1,
		Embedding: w2v,
	})
	if err != nil {
		log.Fatal(err)
	}
	last := nl.History[len(nl.History)-1]
	fmt.Printf("final validation loss %.3f, token accuracy %.3f\n", last.ValLoss, last.ValAcc)

	// 5. Cross-domain test on IMDB.
	testGen := textgen.New(imdb, datasets.IMDBForeignKeys(), textgen.DefaultConfig(), 7)
	testTrees := explainAll(imdb, testGen.Queries(10))
	rl := core.NewRuleLantern(store)
	var hyps, refs []string
	for _, t := range testTrees {
		neuralNar, err := nl.Narrate(t)
		if err != nil {
			log.Fatal(err)
		}
		ruleNar, err := rl.Narrate(t)
		if err != nil {
			log.Fatal(err)
		}
		hyps = append(hyps, neuralNar.Sentences()...)
		refs = append(refs, ruleNar.Sentences()...)
	}
	fmt.Printf("\ncross-domain (IMDB) BLEU vs rule ground truth: %.2f\n",
		metrics.CorpusBLEU(hyps, refs)*100)

	fmt.Println("\nside by side on one IMDB plan:")
	neuralNar, _ := nl.Narrate(testTrees[0])
	ruleNar, _ := rl.Narrate(testTrees[0])
	fmt.Println("RULE-LANTERN:")
	fmt.Print(ruleNar.Text())
	fmt.Println("NEURAL-LANTERN:")
	fmt.Print(neuralNar.Text())
}

func explainAll(e *engine.Engine, queries []string) []*plan.Node {
	var out []*plan.Node
	for _, q := range queries {
		r, err := e.Exec("EXPLAIN (FORMAT JSON) " + q)
		if err != nil {
			log.Fatalf("%s: %v", q, err)
		}
		t, err := plan.ParsePostgresJSON(r.Plan)
		if err != nil {
			log.Fatal(err)
		}
		out = append(out, t)
	}
	return out
}
