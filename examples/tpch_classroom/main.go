// tpch_classroom simulates the paper's core classroom scenario: a learner
// (Alice, §1) works through TPC-H benchmark queries. The integrated LANTERN
// system narrates each plan; once an operator has been seen more than the
// frequency threshold, its narration switches from RULE-LANTERN to
// NEURAL-LANTERN (the US 5 policy), so repeated operators stop sounding
// identical. A simulated learner cohort reports the boredom index with and
// without the switching.
package main

import (
	"fmt"
	"log"

	"lantern/internal/core"
	"lantern/internal/datasets"
	"lantern/internal/engine"
	"lantern/internal/neural"
	"lantern/internal/plan"
	"lantern/internal/pool"
	"lantern/internal/study"
)

func main() {
	eng := engine.NewDefault()
	if err := datasets.LoadTPCH(eng, 0.05, 1); err != nil {
		log.Fatal(err)
	}
	store := pool.NewSeededStore()

	// The lesson: the first eight TPC-H workloads.
	workload := datasets.TPCHWorkload()[:8]
	var trees []*plan.Node
	for _, w := range workload {
		r, err := eng.Exec("EXPLAIN (FORMAT JSON) " + w.SQL)
		if err != nil {
			log.Fatalf("%s: %v", w.Name, err)
		}
		t, err := plan.ParsePostgresJSON(r.Plan)
		if err != nil {
			log.Fatal(err)
		}
		trees = append(trees, t)
	}

	// Train NEURAL-LANTERN on the lesson's own acts (quick settings).
	ds, err := neural.NewBuilder(store).Build(trees)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training NEURAL-LANTERN on %d acts (%d samples after paraphrasing)...\n",
		ds.BaseActs, len(ds.Samples))
	nl, err := neural.Train(store, ds, neural.TrainConfig{
		Hidden: 32, EncEmbDim: 8, DecEmbDim: 12,
		Epochs: 25, BatchSize: 4, LR: 0.3, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	rule := core.NewRuleLantern(store)
	integrated := core.NewLantern(rule, nl)
	integrated.FreqThreshold = 3

	var ruleTexts, lanternTexts []string
	for i, t := range trees {
		fmt.Printf("\n=== %s ===\n", workload[i].Name)
		nar, err := integrated.Narrate(t)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(nar.Text())
		lanternTexts = append(lanternTexts, nar.Text())
		rn, err := rule.Narrate(t)
		if err != nil {
			log.Fatal(err)
		}
		ruleTexts = append(ruleTexts, rn.Text())
	}
	fmt.Printf("\nseq scan narrations seen so far: %d\n", integrated.Exposure("Seq Scan"))

	// How bored is the class? (Table 7's comparison, on this lesson.)
	cohort := study.NewCohort(43, 7)
	var ruleBoredom, lanternBoredom []int
	for _, learner := range cohort.Learners {
		ruleBoredom = append(ruleBoredom, learner.BoredomIndex(ruleTexts))
	}
	for _, learner := range cohort.Learners {
		lanternBoredom = append(lanternBoredom, learner.BoredomIndex(lanternTexts))
	}
	fmt.Printf("\nboredom index (1=not boring .. 5=extremely boring), 43 learners:\n")
	fmt.Printf("  pure RULE-LANTERN lesson: mean %.2f\n", study.Mean(ruleBoredom))
	fmt.Printf("  integrated LANTERN lesson: mean %.2f\n", study.Mean(lanternBoredom))
}
