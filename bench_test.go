package lantern

// One benchmark per table and figure of the paper's evaluation (§7), plus
// micro-benchmarks of the load-bearing components. The experiment
// benchmarks share one quick-mode Lab, so trained model variants are reused
// across benchmarks within a run:
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkTable5 -benchtime=1x
import (
	"context"
	"io"
	"sync"
	"testing"
	"time"

	"lantern/internal/core"
	"lantern/internal/datasets"
	"lantern/internal/engine"
	"lantern/internal/experiments"
	"lantern/internal/metrics"
	"lantern/internal/plan"
	"lantern/internal/pool"
	"lantern/internal/service"
	"lantern/internal/sqlparser"
)

var (
	labOnce   sync.Once
	sharedLab *experiments.Lab
)

// lab returns the shared quick-mode experiment lab.
func lab() *experiments.Lab {
	labOnce.Do(func() {
		opt := experiments.DefaultOptions(io.Discard)
		opt.Scale = 0.5
		sharedLab = experiments.NewLab(opt)
	})
	return sharedLab
}

// benchExperiment runs one named experiment per iteration.
func benchExperiment(b *testing.B, name string) {
	b.Helper()
	l := lab()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := experiments.Run(l, name); err != nil {
			b.Fatal(err)
		}
	}
}

// --- One benchmark per table / figure -----------------------------------------

func BenchmarkFig3FormatSurvey(b *testing.B)        { benchExperiment(b, "fig3") }
func BenchmarkTable3ParameterCount(b *testing.B)    { benchExperiment(b, "table3") }
func BenchmarkTable4SelfBLEU(b *testing.B)          { benchExperiment(b, "table4") }
func BenchmarkFig6aDiversification(b *testing.B)    { benchExperiment(b, "fig6a") }
func BenchmarkFig6bPretrainedLoss(b *testing.B)     { benchExperiment(b, "fig6b") }
func BenchmarkFig7aPretrainedAccuracy(b *testing.B) { benchExperiment(b, "fig7a") }
func BenchmarkFig7bWeightSharing(b *testing.B)      { benchExperiment(b, "fig7b") }
func BenchmarkFig8aOutputLength(b *testing.B)       { benchExperiment(b, "fig8a") }
func BenchmarkFig8bEase(b *testing.B)               { benchExperiment(b, "fig8b") }
func BenchmarkFig8cQuality(b *testing.B)            { benchExperiment(b, "fig8c") }
func BenchmarkFig8dPreference(b *testing.B)         { benchExperiment(b, "fig8d") }
func BenchmarkTable5BLEU(b *testing.B)              { benchExperiment(b, "table5") }
func BenchmarkExp5ErrorAudit(b *testing.B)          { benchExperiment(b, "exp5") }
func BenchmarkTable6Efficiency(b *testing.B)        { benchExperiment(b, "table6") }
func BenchmarkFig9aPretrainSurvey(b *testing.B)     { benchExperiment(b, "fig9a") }
func BenchmarkFig9bParaphraseSurvey(b *testing.B)   { benchExperiment(b, "fig9b") }
func BenchmarkFig9cVsNeuron(b *testing.B)           { benchExperiment(b, "fig9c") }
func BenchmarkTable7Boredom(b *testing.B)           { benchExperiment(b, "table7") }
func BenchmarkUS3MixedStream(b *testing.B)          { benchExperiment(b, "us3") }
func BenchmarkUS4WrongTokens(b *testing.B)          { benchExperiment(b, "us4") }
func BenchmarkUS6Presentation(b *testing.B)         { benchExperiment(b, "us6") }

// --- Component micro-benchmarks --------------------------------------------------

func tpchEngine(b *testing.B) *engine.Engine {
	b.Helper()
	e := engine.NewDefault()
	if err := datasets.LoadTPCH(e, 0.05, 1); err != nil {
		b.Fatal(err)
	}
	return e
}

const benchJoinQuery = `SELECT c.c_name, SUM(o.o_totalprice) FROM customer c, orders o
	WHERE c.c_custkey = o.o_custkey AND c.c_mktsegment = 'BUILDING'
	GROUP BY c.c_name ORDER BY c.c_name LIMIT 10`

// BenchmarkParserTPCH measures SQL parsing over the 22-query workload.
func BenchmarkParserTPCH(b *testing.B) {
	workload := datasets.TPCHWorkload()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, w := range workload {
			if _, err := sqlparser.ParseSelect(w.SQL); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkPlannerJoin measures cost-based planning of a join query.
func BenchmarkPlannerJoin(b *testing.B) {
	e := tpchEngine(b)
	sel, err := sqlparser.ParseSelect(benchJoinQuery)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Plan(sel); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecutorJoin measures full execution of the same query.
func BenchmarkExecutorJoin(b *testing.B) {
	e := tpchEngine(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Exec(benchJoinQuery); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRuleNarration measures RULE-LANTERN end to end (the paper's
// 0.015 s average response, Table 6).
func BenchmarkRuleNarration(b *testing.B) {
	e := tpchEngine(b)
	store := pool.NewSeededStore()
	rl := core.NewRuleLantern(store)
	r, err := e.Exec("EXPLAIN (FORMAT JSON) " + benchJoinQuery)
	if err != nil {
		b.Fatal(err)
	}
	tree, err := plan.ParsePostgresJSON(r.Plan)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rl.Narrate(tree); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNeuralNarration measures NEURAL-LANTERN inference (beam 4) on a
// trained quick-mode model (the paper's 0.216 s average response).
func BenchmarkNeuralNarration(b *testing.B) {
	l := lab()
	nl := l.Model("base")
	e := tpchEngine(b)
	r, err := e.Exec("EXPLAIN (FORMAT JSON) " + benchJoinQuery)
	if err != nil {
		b.Fatal(err)
	}
	tree, err := plan.ParsePostgresJSON(r.Plan)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nl.Narrate(tree); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExplainJSON measures plan serialization.
func BenchmarkExplainJSON(b *testing.B) {
	e := tpchEngine(b)
	pl, err := e.PlanSQL(benchJoinQuery)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.ExplainJSON(pl); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPoolCompose measures the COMPOSE statement (template assembly).
func BenchmarkPoolCompose(b *testing.B) {
	store := pool.NewSeededStore()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := store.Exec("COMPOSE hash, hashjoin FROM pg"); err != nil {
			b.Fatal(err)
		}
	}
}

// serviceServer builds a serving-layer server over a TPC-H engine.
// cacheBytes < 0 disables the narration cache.
func serviceServer(b *testing.B, cacheBytes int64) *service.Server {
	b.Helper()
	srv := service.NewServer(tpchEngine(b), pool.NewSeededStore(), service.Config{
		CacheBytes:     cacheBytes,
		RequestTimeout: time.Minute,
	})
	b.Cleanup(srv.Close)
	return srv
}

// BenchmarkServiceNarrateCached measures the serving hot path: a repeated
// identical request answered from the fingerprint cache without parsing,
// planning, or narrating.
func BenchmarkServiceNarrateCached(b *testing.B) {
	srv := serviceServer(b, 32<<20)
	req := &service.NarrateRequest{SQL: benchJoinQuery}
	if _, err := srv.Narrate(context.Background(), req); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := srv.Narrate(context.Background(), req)
		if err != nil {
			b.Fatal(err)
		}
		if !resp.Cached {
			b.Fatal("expected a cache hit")
		}
	}
}

// BenchmarkServiceNarrateCold measures the same request with caching
// disabled: full plan→fingerprint→LOT→narrate per call, through the
// worker pool.
func BenchmarkServiceNarrateCold(b *testing.B) {
	srv := serviceServer(b, -1)
	req := &service.NarrateRequest{SQL: benchJoinQuery}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := srv.Narrate(context.Background(), req)
		if err != nil {
			b.Fatal(err)
		}
		if resp.Cached {
			b.Fatal("cold benchmark must not hit a cache")
		}
	}
}

// BenchmarkBLEU measures the metric used throughout the evaluation.
func BenchmarkBLEU(b *testing.B) {
	hyp := "perform hash join on orders and customer on condition a = b to get the intermediate relation T2"
	ref := "perform hash join on customer and orders on condition a = b to get the intermediate relation T2"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		metrics.BLEU(hyp, ref)
	}
}

// BenchmarkServiceQueryCached measures the /v1/query serving path on a
// warm narration cache: the query still executes (the actuals key the
// cache), but the narration is answered from the fingerprint cache.
func BenchmarkServiceQueryCached(b *testing.B) {
	srv := serviceServer(b, 32<<20)
	req := &service.QueryRequest{SQL: benchJoinQuery, MaxRows: -1}
	if _, err := srv.Query(context.Background(), req); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := srv.Query(context.Background(), req)
		if err != nil {
			b.Fatal(err)
		}
		if !resp.Cached {
			b.Fatal("expected a narration cache hit")
		}
	}
}

// BenchmarkServiceQueryCold measures the same request with caching
// disabled: execute with instrumentation, bridge, fingerprint, narrate —
// the full end-to-end loop per call.
func BenchmarkServiceQueryCold(b *testing.B) {
	srv := serviceServer(b, -1)
	req := &service.QueryRequest{SQL: benchJoinQuery, MaxRows: -1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := srv.Query(context.Background(), req)
		if err != nil {
			b.Fatal(err)
		}
		if resp.Cached {
			b.Fatal("cold benchmark must not hit a cache")
		}
	}
}
