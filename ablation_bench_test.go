package lantern

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// planner's join-algorithm and access-path switches (how plan shape affects
// execution time), DP vs greedy join ordering, beam width in neural
// decoding, and paraphrase expansion cost.
//
//	go test -bench=Ablation -benchmem
import (
	"testing"

	"lantern/internal/datasets"
	"lantern/internal/engine"
	"lantern/internal/paraphrase"
)

const ablationQuery = `SELECT n.n_name, COUNT(*) FROM customer c, orders o, nation n
	WHERE c.c_custkey = o.o_custkey AND c.c_nationkey = n.n_nationkey
	AND o.o_totalprice > 1000
	GROUP BY n.n_name`

func ablationEngine(b *testing.B, mutate func(*engine.Config)) *engine.Engine {
	b.Helper()
	cfg := engine.DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	e := engine.New(cfg)
	if err := datasets.LoadTPCH(e, 0.05, 1); err != nil {
		b.Fatal(err)
	}
	return e
}

func benchQuery(b *testing.B, e *engine.Engine, q string) {
	b.Helper()
	// Warm up once so lazy initialization (catalog caches, runtime map and
	// stack growth) is not charged to the measured iterations — at short
	// benchtimes those one-time allocations otherwise dominate allocs/op.
	if _, err := e.Exec(q); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Exec(q); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Join algorithm ablation (cost of forcing each physical join) -------------

func BenchmarkAblationJoinDefault(b *testing.B) {
	benchQuery(b, ablationEngine(b, nil), ablationQuery)
}

func BenchmarkAblationJoinHashOnly(b *testing.B) {
	benchQuery(b, ablationEngine(b, func(c *engine.Config) {
		c.EnableMergeJoin, c.EnableNestLoop = false, false
	}), ablationQuery)
}

func BenchmarkAblationJoinMergeOnly(b *testing.B) {
	benchQuery(b, ablationEngine(b, func(c *engine.Config) {
		c.EnableHashJoin, c.EnableNestLoop = false, false
	}), ablationQuery)
}

func BenchmarkAblationJoinNLOnly(b *testing.B) {
	benchQuery(b, ablationEngine(b, func(c *engine.Config) {
		c.EnableHashJoin, c.EnableMergeJoin = false, false
	}), ablationQuery)
}

// --- Access path ablation ------------------------------------------------------

const pointQuery = "SELECT c_name FROM customer WHERE c_custkey = 42"

func BenchmarkAblationIndexScan(b *testing.B) {
	benchQuery(b, ablationEngine(b, nil), pointQuery)
}

func BenchmarkAblationSeqScanForced(b *testing.B) {
	benchQuery(b, ablationEngine(b, func(c *engine.Config) {
		c.EnableIndexScan = false
	}), pointQuery)
}

// --- Join ordering ablation ------------------------------------------------------

const fiveWayJoin = `SELECT COUNT(*) FROM customer c, orders o, lineitem l, nation n, region r
	WHERE c.c_custkey = o.o_custkey AND o.o_orderkey = l.l_orderkey
	AND c.c_nationkey = n.n_nationkey AND n.n_regionkey = r.r_regionkey`

func BenchmarkAblationOrderingDP(b *testing.B) {
	e := ablationEngine(b, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.PlanSQL(fiveWayJoin); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationOrderingGreedy(b *testing.B) {
	e := ablationEngine(b, func(c *engine.Config) { c.DPThreshold = 1 })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.PlanSQL(fiveWayJoin); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Beam width ablation -----------------------------------------------------------

func benchBeam(b *testing.B, k int) {
	l := lab()
	nl := l.Model("base")
	in := nl.Data.EncodeInput([]string{"hash", "hashjoin", "<T>", "<T>", "<C>", "<TN>"})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nl.Model.Beam(in, k, 64); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationBeam1(b *testing.B) { benchBeam(b, 1) }
func BenchmarkAblationBeam4(b *testing.B) { benchBeam(b, 4) }
func BenchmarkAblationBeam8(b *testing.B) { benchBeam(b, 8) }

// --- Paraphrase expansion cost -----------------------------------------------------

func BenchmarkAblationParaphraseExpand(b *testing.B) {
	tools := paraphrase.Tools()
	sentence := "perform sequential scan on <T> and filtering on <F> to get the intermediate relation <TN>."
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		paraphrase.Expand(sentence, tools)
	}
}
