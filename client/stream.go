package client

// stream.go is the SDK side of /v2/query?stream=ndjson: a pull-based
// iterator over the row records, with the narration trailer available
// after the stream ends.
//
//	qs, err := c.QueryStream(ctx, &client.QueryRequest{SQL: sql})
//	defer qs.Close()
//	for {
//		row, err := qs.Next()
//		if err == io.EOF { break }
//		...
//	}
//	trailer := qs.Trailer() // the full QueryResponse, narration included

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"lantern/internal/httpapi"
)

// QueryStream iterates the NDJSON records of one streaming query. Not
// safe for concurrent use.
type QueryStream struct {
	body    io.ReadCloser
	sc      *bufio.Scanner
	columns []string
	trailer *QueryResponse
	done    bool
}

// streamRecord is the server's NDJSON framing — the shared wire-format
// definition, so handler and SDK cannot drift.
type streamRecord = httpapi.StreamRecord

// QueryStream opens a streaming query. The first record (the column
// header) is consumed before returning, so Columns is immediately
// available; rows are pulled with Next. Streaming calls are not retried —
// rows may already have been observed.
func (c *Client) QueryStream(ctx context.Context, req *QueryRequest) (*QueryStream, error) {
	body, err := json.Marshal(&Request{
		Op:             OpQuery,
		SQL:            req.SQL,
		Options:        req.Options,
		MaxRows:        req.MaxRows,
		MaxParallelism: req.MaxParallelism,
	})
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v2/query?stream=ndjson", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := c.hc.Do(hreq)
	if err != nil {
		return nil, &transportError{err: err}
	}
	if hresp.StatusCode != http.StatusOK {
		defer hresp.Body.Close()
		raw, _ := io.ReadAll(io.LimitReader(hresp.Body, 1<<20))
		var resp Response
		if json.Unmarshal(raw, &resp) == nil && resp.Error != nil {
			return nil, resp.Error
		}
		return nil, fmt.Errorf("client: stream rejected (status %d): %.200s", hresp.StatusCode, raw)
	}

	qs := &QueryStream{body: hresp.Body, sc: bufio.NewScanner(hresp.Body)}
	qs.sc.Buffer(make([]byte, 64<<10), 16<<20)
	// Consume the header record eagerly so Columns is usable immediately.
	rec, err := qs.read()
	if err != nil {
		qs.Close()
		return nil, err
	}
	if rec.Record != httpapi.RecordColumns {
		qs.Close()
		return nil, fmt.Errorf("client: stream opened with %q record, want columns", rec.Record)
	}
	qs.columns = rec.Columns
	return qs, nil
}

// Columns is the output header, available before the first row.
func (s *QueryStream) Columns() []string { return s.columns }

// Next returns the next result row. io.EOF signals a clean end of stream
// — the trailer is then available via Trailer. Any other error means the
// stream broke (including a server-reported mid-stream error).
func (s *QueryStream) Next() ([]string, error) {
	if s.done {
		return nil, io.EOF
	}
	rec, err := s.read()
	if err != nil {
		s.done = true
		return nil, err
	}
	switch rec.Record {
	case httpapi.RecordRow:
		return rec.Row, nil
	case httpapi.RecordTrailer:
		s.done = true
		if rec.Response != nil {
			s.trailer = rec.Response.Query
		}
		return nil, io.EOF
	case httpapi.RecordError:
		s.done = true
		if rec.Error != nil {
			return nil, rec.Error
		}
		return nil, fmt.Errorf("client: stream failed without detail")
	default:
		s.done = true
		return nil, fmt.Errorf("client: unexpected stream record %q", rec.Record)
	}
}

// Trailer returns the complete query response (narration included) once
// Next has returned io.EOF; nil before that.
func (s *QueryStream) Trailer() *QueryResponse { return s.trailer }

// Close releases the underlying connection. Safe to call at any time,
// including mid-stream abandonment.
func (s *QueryStream) Close() error {
	s.done = true
	return s.body.Close()
}

func (s *QueryStream) read() (*streamRecord, error) {
	for s.sc.Scan() {
		line := bytes.TrimSpace(s.sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec streamRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("client: bad stream record: %w", err)
		}
		return &rec, nil
	}
	if err := s.sc.Err(); err != nil {
		return nil, &transportError{err: err}
	}
	return nil, io.ErrUnexpectedEOF
}
