package client_test

// SDK tests run against the real daemon surface (internal/httpapi over a
// TPC-H engine) via httptest, plus a flaky front for the retry policy.

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"lantern/client"
	"lantern/internal/datasets"
	"lantern/internal/engine"
	"lantern/internal/httpapi"
	"lantern/internal/pool"
	"lantern/internal/service"
)

func newDaemon(t testing.TB) *httptest.Server {
	t.Helper()
	eng := engine.NewDefault()
	if err := datasets.LoadTPCH(eng, 0.01, 1); err != nil {
		t.Fatalf("loading tpch: %v", err)
	}
	store := pool.NewSeededStore()
	srv := service.NewServer(eng, store, service.Config{RequestTimeout: 30 * time.Second})
	t.Cleanup(srv.Close)
	daemon := httptest.NewServer(httpapi.New(srv, store, httpapi.Config{Dataset: "tpch"}))
	t.Cleanup(daemon.Close)
	return daemon
}

const qJoin = "SELECT c.c_name, SUM(o.o_totalprice) FROM customer c, orders o WHERE c.c_custkey = o.o_custkey GROUP BY c.c_name ORDER BY c.c_name LIMIT 5"

func TestTypedMethods(t *testing.T) {
	c := client.New(newDaemon(t).URL)
	ctx := context.Background()

	nar, err := c.Narrate(ctx, &client.NarrateRequest{SQL: qJoin})
	if err != nil {
		t.Fatal(err)
	}
	if nar.Text == "" || nar.Fingerprint == "" {
		t.Fatalf("narrate: %+v", nar)
	}

	q, err := c.Query(ctx, &client.QueryRequest{SQL: qJoin, MaxRows: 2})
	if err != nil {
		t.Fatal(err)
	}
	if q.RowCount != 5 || len(q.Rows) != 2 || q.Dialect != "native" {
		t.Fatalf("query: count=%d rows=%d dialect=%s", q.RowCount, len(q.Rows), q.Dialect)
	}

	qa, err := c.QA(ctx, &client.QARequest{SQL: qJoin, Question: "how many steps are there?"})
	if err != nil {
		t.Fatal(err)
	}
	if qa.Answer == "" {
		t.Fatal("empty QA answer")
	}

	pl, err := c.Pool(ctx, `SELECT desc FROM pg WHERE name = 'sort'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Rows) == 0 {
		t.Fatalf("pool: %+v", pl)
	}
}

// TestTraceRoundTrip: the SDK's envelope carries debug=trace and the
// pinned trace id to the daemon and surfaces the span tree back.
func TestTraceRoundTrip(t *testing.T) {
	c := client.New(newDaemon(t).URL)
	ctx := context.Background()

	resp, err := c.Do(ctx, &client.Request{
		Op: client.OpQuery, SQL: qJoin, MaxRows: 1,
		Debug: client.DebugTrace, TraceID: "sdk-trace-42",
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Trace == nil || resp.Trace.TraceID != "sdk-trace-42" {
		t.Fatalf("trace = %+v, want the pinned id back", resp.Trace)
	}
	if resp.Trace.Root == nil || resp.Trace.Root.Name != "request" {
		t.Fatalf("trace root = %+v", resp.Trace.Root)
	}
	var opSpans int
	var walk func(sp *client.SpanInfo)
	walk = func(sp *client.SpanInfo) {
		if strings.HasPrefix(sp.Name, "op:") {
			opSpans++
		}
		for _, ch := range sp.Children {
			walk(ch)
		}
	}
	walk(resp.Trace.Root)
	if opSpans == 0 {
		t.Fatal("trace has no per-operator spans")
	}
	var tree strings.Builder
	resp.Trace.WriteTree(&tree)
	if !strings.Contains(tree.String(), "trace sdk-trace-42") {
		t.Fatalf("WriteTree output:\n%s", tree.String())
	}

	plain, err := c.Do(ctx, &client.Request{Op: client.OpQuery, SQL: qJoin, MaxRows: 1})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Trace != nil {
		t.Fatal("untraced request came back with a trace")
	}
}

func TestStructuredErrors(t *testing.T) {
	c := client.New(newDaemon(t).URL)
	_, err := c.Query(context.Background(), &client.QueryRequest{SQL: "SELECT FROM WHERE"})
	if err == nil {
		t.Fatal("expected error")
	}
	var info *client.Error
	if !errors.As(err, &info) {
		t.Fatalf("error %T is not *client.Error", err)
	}
	if info.Code != "bad_request" || info.Retryable {
		t.Fatalf("info = %+v", info)
	}
	if client.IsRetryable(err) {
		t.Fatal("bad_request must not be retryable")
	}
}

// TestDialectSourceDisagreement: the SDK rejects a contradicting
// dialect/source pair client-side with the same code the server would
// use, instead of silently picking one.
func TestDialectSourceDisagreement(t *testing.T) {
	c := client.New(newDaemon(t).URL)
	_, err := c.Narrate(context.Background(), &client.NarrateRequest{
		SQL: qJoin, Dialect: "pg", Source: "mysql"})
	var info *client.Error
	if !errors.As(err, &info) || info.Code != "bad_request" {
		t.Fatalf("err = %v, want client-side bad_request", err)
	}
}

func TestBatch(t *testing.T) {
	c := client.New(newDaemon(t).URL)
	resps, err := c.Batch(context.Background(), []*client.Request{
		{Op: client.OpNarrate, ID: "a", SQL: qJoin},
		{Op: client.OpQuery, ID: "b", SQL: qJoin},
		{Op: client.OpNarrate, ID: "c", Dialect: "db9", SQL: qJoin},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != 3 {
		t.Fatalf("%d responses", len(resps))
	}
	if resps[0].Narrate == nil || resps[0].ID != "a" {
		t.Fatalf("entry 0: %+v", resps[0])
	}
	if resps[1].Query == nil {
		t.Fatalf("entry 1: %+v", resps[1])
	}
	if resps[2].Error == nil || resps[2].Error.Code != "bad_request" {
		t.Fatalf("entry 2: %+v", resps[2])
	}
}

// TestRetryOnRetryable: the SDK retries overloaded/transport failures and
// succeeds once the backend recovers.
func TestRetryOnRetryable(t *testing.T) {
	daemon := newDaemon(t)
	var fails atomic.Int32
	fails.Store(2)
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if fails.Add(-1) >= 0 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			io.WriteString(w, `{"op":"narrate","error":{"code":"overloaded","message":"queue full","retryable":true}}`)
			return
		}
		// Recovered: proxy to the real daemon.
		resp, err := http.Post(daemon.URL+r.URL.Path, "application/json", r.Body)
		if err != nil {
			t.Error(err)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
	}))
	t.Cleanup(flaky.Close)

	c := client.New(flaky.URL, client.WithRetries(3), client.WithBackoff(time.Millisecond))
	nar, err := c.Narrate(context.Background(), &client.NarrateRequest{SQL: qJoin})
	if err != nil {
		t.Fatalf("retries exhausted: %v", err)
	}
	if nar.Text == "" {
		t.Fatal("empty narration after retry")
	}
	if fails.Load() >= 0 {
		t.Fatal("flaky front never tripped")
	}

	// With retries disabled the first overloaded answer surfaces.
	fails.Store(1)
	c0 := client.New(flaky.URL, client.WithRetries(0))
	if _, err := c0.Narrate(context.Background(), &client.NarrateRequest{SQL: qJoin}); !client.IsRetryable(err) {
		t.Fatalf("want retryable overloaded error, got %v", err)
	}
}

// TestNon200WithoutEnvelope: a non-200 response whose body is parsable
// JSON but carries no error envelope (a proxy error page) must surface as
// a retryable transport failure — never as a nil-payload success.
func TestNon200WithoutEnvelope(t *testing.T) {
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, `{"message": "upstream unavailable"}`)
	}))
	t.Cleanup(proxy.Close)
	c := client.New(proxy.URL, client.WithRetries(1), client.WithBackoff(time.Millisecond))
	resp, err := c.Narrate(context.Background(), &client.NarrateRequest{SQL: qJoin})
	if err == nil {
		t.Fatalf("nil error for a 503 without envelope (resp=%+v)", resp)
	}
	if !client.IsRetryable(err) {
		t.Fatalf("503 must classify as retryable transport failure, got %v", err)
	}
}

func TestQueryStreamIterator(t *testing.T) {
	c := client.New(newDaemon(t).URL)
	qs, err := c.QueryStream(context.Background(), &client.QueryRequest{
		SQL: "SELECT c_name FROM customer ORDER BY c_name"})
	if err != nil {
		t.Fatal(err)
	}
	defer qs.Close()
	if len(qs.Columns()) != 1 {
		t.Fatalf("columns = %v", qs.Columns())
	}
	if qs.Trailer() != nil {
		t.Fatal("trailer must be nil before EOF")
	}
	rows := 0
	for {
		row, err := qs.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(row) != 1 {
			t.Fatalf("row = %v", row)
		}
		rows++
	}
	tr := qs.Trailer()
	if tr == nil || tr.RowCount != rows || tr.Text == "" {
		t.Fatalf("trailer = %+v after %d rows", tr, rows)
	}
	// Next after EOF stays EOF.
	if _, err := qs.Next(); err != io.EOF {
		t.Fatalf("post-EOF Next: %v", err)
	}
}

func TestQueryStreamBadSQL(t *testing.T) {
	c := client.New(newDaemon(t).URL)
	_, err := c.QueryStream(context.Background(), &client.QueryRequest{SQL: "SELECT FROM"})
	var info *client.Error
	if !errors.As(err, &info) || info.Code != "bad_request" {
		t.Fatalf("err = %v", err)
	}
}
