// Package client is the Go SDK for the LANTERN serving API: typed
// methods over the v2 request envelope, automatic retries on retryable
// structured errors, and a streaming iterator for incremental query
// results.
//
//	c := client.New("http://localhost:8080")
//	resp, err := c.Narrate(ctx, &client.NarrateRequest{SQL: "SELECT ..."})
//
// Every method is a thin projection of Do, the generic envelope call —
// exactly mirroring the server, where the v1 and v2 surfaces are thin
// projections of one pipeline. Failures surface as *client.Error (an
// alias of the service's ErrorInfo): a stable code, a human-readable
// message, and a retryable bit the SDK itself honors.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"lantern/internal/obs"
	"lantern/internal/service"
)

// Envelope and payload types, re-exported so SDK users never import
// internal packages.
type (
	// Request is the v2 typed envelope.
	Request = service.Request
	// Response is the v2 envelope answer.
	Response = service.Response
	// Error is the structured error envelope (code/message/retryable).
	Error = service.ErrorInfo

	// NarrateRequest / NarrateResponse mirror the narrate op payload.
	NarrateRequest  = service.NarrateRequest
	NarrateResponse = service.NarrateResponse
	// QueryRequest / QueryResponse mirror the query op payload.
	QueryRequest  = service.QueryRequest
	QueryResponse = service.QueryResponse
	// QARequest / QAResponse mirror the qa op payload.
	QARequest  = service.QARequest
	QAResponse = service.QAResponse
	// PoolResponse mirrors the pool op payload.
	PoolResponse = service.PoolResponse
	// Options is the narration configuration.
	Options = service.Options

	// TraceInfo is the span-tree summary a response carries when its
	// request set Debug: DebugTrace; SpanInfo is one node of that tree.
	TraceInfo = obs.TraceInfo
	SpanInfo  = obs.SpanInfo
)

// DebugTrace, set as a Request's Debug field, asks the server to trace
// the request end to end and return the span tree on the Response. A
// Request's TraceID pins the trace's correlation id; when empty the
// server generates one.
const DebugTrace = service.DebugTrace

// Op kinds, re-exported for hand-built envelopes.
const (
	OpNarrate = service.OpNarrate
	OpQuery   = service.OpQuery
	OpQA      = service.OpQA
	OpPool    = service.OpPool
	OpBatch   = service.OpBatch
)

// Client talks to one lanternd base URL. Safe for concurrent use.
type Client struct {
	base    string
	hc      *http.Client
	retries int
	backoff time.Duration
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client.
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetries sets how many times a retryable failure is retried
// (default 2; 0 disables).
func WithRetries(n int) Option { return func(c *Client) { c.retries = n } }

// WithBackoff sets the base delay between retries; attempt i waits
// i×backoff (default 100ms).
func WithBackoff(d time.Duration) Option { return func(c *Client) { c.backoff = d } }

// New builds a client for a daemon base URL like "http://localhost:8080".
func New(base string, opts ...Option) *Client {
	c := &Client{
		base:    base,
		hc:      http.DefaultClient,
		retries: 2,
		backoff: 100 * time.Millisecond,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Do sends one envelope through POST /v2/do, retrying retryable failures
// (overloaded, unavailable, deadline — and transport-level errors, which
// are retryable by nature) with linear backoff. On an op failure the
// returned error is the server's *Error; errors.As recovers it.
//
// Retries re-send the envelope verbatim. The serving ops are read-only
// except pool, whose statements are idempotent POOL writes; callers that
// need at-most-once pool semantics should use WithRetries(0).
func (c *Client) Do(ctx context.Context, req *Request) (*Response, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		resp, err := c.send(ctx, "/v2/do", req)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if attempt >= c.retries || !retryable(err) {
			return nil, err
		}
		select {
		case <-ctx.Done():
			return nil, lastErr
		case <-time.After(time.Duration(attempt+1) * c.backoff):
		}
	}
}

// send performs one POST of the envelope and decodes the answer.
func (c *Client) send(ctx context.Context, path string, req *Request) (*Response, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := c.hc.Do(hreq)
	if err != nil {
		return nil, &transportError{err: err}
	}
	defer hresp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(hresp.Body, 64<<20))
	if err != nil {
		return nil, &transportError{err: err}
	}
	var resp Response
	if err := json.Unmarshal(raw, &resp); err == nil && resp.Error != nil {
		return nil, resp.Error
	} else if err == nil && hresp.StatusCode == http.StatusOK {
		return &resp, nil
	}
	// Anything else — an unparsable body, or a non-200 without an error
	// envelope (e.g. a proxy error page that happens to be JSON) — is a
	// transport-level failure, never a success: classify by status.
	terr := fmt.Errorf("client: non-envelope response (status %d): %.200s", hresp.StatusCode, raw)
	if retryableStatus(hresp.StatusCode) {
		return nil, &transportError{err: terr}
	}
	return nil, terr
}

// Narrate asks for the narration of one query or plan.
func (c *Client) Narrate(ctx context.Context, req *NarrateRequest) (*NarrateResponse, error) {
	dialect, err := mergeDialectSource(req.Dialect, req.Source)
	if err != nil {
		return nil, err
	}
	resp, err := c.Do(ctx, &Request{
		Op:      OpNarrate,
		SQL:     req.SQL,
		Plan:    req.Plan,
		Dialect: dialect,
		Options: req.Options,
	})
	if err != nil {
		return nil, err
	}
	return resp.Narrate, nil
}

// Query executes the SQL on the daemon's dataset and narrates what
// actually happened.
func (c *Client) Query(ctx context.Context, req *QueryRequest) (*QueryResponse, error) {
	resp, err := c.Do(ctx, &Request{
		Op:             OpQuery,
		SQL:            req.SQL,
		Options:        req.Options,
		MaxRows:        req.MaxRows,
		MaxParallelism: req.MaxParallelism,
	})
	if err != nil {
		return nil, err
	}
	return resp.Query, nil
}

// QA asks a natural-language question about one query or plan.
func (c *Client) QA(ctx context.Context, req *QARequest) (*QAResponse, error) {
	dialect, err := mergeDialectSource(req.Dialect, req.Source)
	if err != nil {
		return nil, err
	}
	resp, err := c.Do(ctx, &Request{
		Op:       OpQA,
		SQL:      req.SQL,
		Plan:     req.Plan,
		Dialect:  dialect,
		Question: req.Question,
	})
	if err != nil {
		return nil, err
	}
	return resp.QA, nil
}

// Pool executes one POOL statement (the paper's SME maintenance surface).
func (c *Client) Pool(ctx context.Context, stmt string) (*PoolResponse, error) {
	resp, err := c.Do(ctx, &Request{Op: OpPool, Stmt: stmt})
	if err != nil {
		return nil, err
	}
	return resp.Pool, nil
}

// Batch fans several envelopes through the pipeline in one round-trip.
// The outer call fails only on transport problems; per-entry failures are
// embedded in the matching Response's Error field, order preserved.
func (c *Client) Batch(ctx context.Context, reqs []*Request) ([]*Response, error) {
	resp, err := c.Do(ctx, &Request{Op: OpBatch, Batch: reqs})
	if err != nil {
		return nil, err
	}
	return resp.Batch, nil
}

// mergeDialectSource applies the server's own dialect/source merge rule
// client-side (one shared implementation — service.MergeDialectSource —
// so SDK and server cannot drift): a disagreement is a bad_request before
// any bytes hit the wire, not a silent pick.
func mergeDialectSource(dialect, source string) (string, error) {
	merged, err := service.MergeDialectSource(dialect, source)
	if err != nil {
		return "", service.AsErrorInfo(err)
	}
	return merged, nil
}

// IsRetryable reports whether err carries a retryable structured error
// (or is a transport-level failure). The SDK already retries these; the
// helper is for callers layering their own policy.
func IsRetryable(err error) bool { return retryable(err) }

func retryable(err error) bool {
	var info *Error
	if errors.As(err, &info) {
		return info.Retryable
	}
	var terr *transportError
	return errors.As(err, &terr)
}

func retryableStatus(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// transportError wraps connection-level failures so the retry policy can
// distinguish them from op failures.
type transportError struct{ err error }

func (e *transportError) Error() string { return "client: transport: " + e.err.Error() }
func (e *transportError) Unwrap() error { return e.err }
