package sqlparser

import (
	"fmt"
	"strconv"
	"strings"
)

// FormatStatement renders a statement back to SQL text. The output is
// canonical (single spaces, upper-case keywords) and re-parses to an
// equivalent AST, a property the test suite checks.
func FormatStatement(s Statement) string {
	var sb strings.Builder
	formatStatement(&sb, s)
	return sb.String()
}

// FormatExpr renders an expression to SQL text.
func FormatExpr(e Expr) string {
	var sb strings.Builder
	formatExpr(&sb, e, 0)
	return sb.String()
}

func formatStatement(sb *strings.Builder, s Statement) {
	switch st := s.(type) {
	case *SelectStmt:
		formatSelect(sb, st)
	case *CreateTableStmt:
		sb.WriteString("CREATE TABLE ")
		sb.WriteString(st.Name)
		sb.WriteString(" (")
		for i, c := range st.Columns {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(sb, "%s %s", c.Name, c.Type)
		}
		sb.WriteString(")")
	case *CreateIndexStmt:
		fmt.Fprintf(sb, "CREATE INDEX %s ON %s (%s)", st.Name, st.Table, st.Column)
	case *InsertStmt:
		sb.WriteString("INSERT INTO ")
		sb.WriteString(st.Table)
		if len(st.Columns) > 0 {
			sb.WriteString(" (")
			sb.WriteString(strings.Join(st.Columns, ", "))
			sb.WriteString(")")
		}
		sb.WriteString(" VALUES ")
		for i, row := range st.Rows {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString("(")
			for j, e := range row {
				if j > 0 {
					sb.WriteString(", ")
				}
				formatExpr(sb, e, 0)
			}
			sb.WriteString(")")
		}
	case *UpdateStmt:
		sb.WriteString("UPDATE ")
		sb.WriteString(st.Table)
		if st.Alias != "" {
			sb.WriteString(" AS ")
			sb.WriteString(st.Alias)
		}
		sb.WriteString(" SET ")
		for i, a := range st.Sets {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(a.Column)
			sb.WriteString(" = ")
			formatExpr(sb, a.Value, 0)
		}
		if st.Where != nil {
			sb.WriteString(" WHERE ")
			formatExpr(sb, st.Where, 0)
		}
	case *DeleteStmt:
		sb.WriteString("DELETE FROM ")
		sb.WriteString(st.Table)
		if st.Where != nil {
			sb.WriteString(" WHERE ")
			formatExpr(sb, st.Where, 0)
		}
	case *ExplainStmt:
		sb.WriteString("EXPLAIN ")
		var opts []string
		if st.Analyze {
			opts = append(opts, "ANALYZE")
		}
		switch st.Format {
		case ExplainJSON:
			opts = append(opts, "FORMAT JSON")
		case ExplainXML:
			opts = append(opts, "FORMAT XML")
		case ExplainMySQL:
			opts = append(opts, "FORMAT MYSQL")
		case ExplainNative:
			opts = append(opts, "FORMAT NATIVE")
		}
		if len(opts) > 0 {
			sb.WriteString("(" + strings.Join(opts, ", ") + ") ")
		}
		formatSelect(sb, st.Query)
	default:
		fmt.Fprintf(sb, "/* unknown statement %T */", s)
	}
}

func formatSelect(sb *strings.Builder, s *SelectStmt) {
	sb.WriteString("SELECT ")
	if s.Distinct {
		sb.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		switch {
		case it.Star:
			sb.WriteString("*")
		case it.TableStar != "":
			sb.WriteString(it.TableStar)
			sb.WriteString(".*")
		default:
			formatExpr(sb, it.Expr, 0)
			if it.Alias != "" {
				sb.WriteString(" AS ")
				sb.WriteString(it.Alias)
			}
		}
	}
	if len(s.From) > 0 {
		sb.WriteString(" FROM ")
		for i, ref := range s.From {
			if i > 0 {
				sb.WriteString(", ")
			}
			formatTableRef(sb, ref)
		}
	}
	if s.Where != nil {
		sb.WriteString(" WHERE ")
		formatExpr(sb, s.Where, 0)
	}
	if len(s.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		for i, e := range s.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			formatExpr(sb, e, 0)
		}
	}
	if s.Having != nil {
		sb.WriteString(" HAVING ")
		formatExpr(sb, s.Having, 0)
	}
	if len(s.OrderBy) > 0 {
		sb.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			formatExpr(sb, o.Expr, 0)
			if o.Desc {
				sb.WriteString(" DESC")
			}
		}
	}
	if s.Limit >= 0 {
		sb.WriteString(" LIMIT ")
		sb.WriteString(strconv.FormatInt(s.Limit, 10))
	}
	if s.Offset > 0 {
		sb.WriteString(" OFFSET ")
		sb.WriteString(strconv.FormatInt(s.Offset, 10))
	}
}

func formatTableRef(sb *strings.Builder, ref TableRef) {
	switch r := ref.(type) {
	case *BaseTable:
		sb.WriteString(r.Name)
		if r.Alias != "" {
			sb.WriteString(" AS ")
			sb.WriteString(r.Alias)
		}
	case *JoinRef:
		formatTableRef(sb, r.Left)
		if r.Type == LeftJoin {
			sb.WriteString(" LEFT JOIN ")
		} else {
			sb.WriteString(" JOIN ")
		}
		formatTableRef(sb, r.Right)
		sb.WriteString(" ON ")
		formatExpr(sb, r.On, 0)
	}
}

// binOpText maps operators to their SQL spelling.
var binOpText = map[BinOp]string{
	OpOr: "OR", OpAnd: "AND", OpEq: "=", OpNe: "<>", OpLt: "<", OpLe: "<=",
	OpGt: ">", OpGe: ">=", OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/",
	OpMod: "%", OpConcat: "||",
}

// binOpPrec gives each operator family a precedence level used to decide
// where parentheses are required when rendering.
func binOpPrec(op BinOp) int {
	switch op {
	case OpOr:
		return 1
	case OpAnd:
		return 2
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return 4
	case OpAdd, OpSub, OpConcat:
		return 5
	case OpMul, OpDiv, OpMod:
		return 6
	}
	return 0
}

func formatExpr(sb *strings.Builder, e Expr, parentPrec int) {
	switch ex := e.(type) {
	case *ColumnRef:
		if ex.Table != "" {
			sb.WriteString(ex.Table)
			sb.WriteString(".")
		}
		sb.WriteString(ex.Name)
	case *Literal:
		sb.WriteString(ex.Value.String())
	case *BinaryExpr:
		prec := binOpPrec(ex.Op)
		if prec < parentPrec {
			sb.WriteString("(")
		}
		leftPrec := prec
		if prec == 4 {
			// Comparisons are non-associative in the grammar: a comparison
			// operand on either side must be parenthesized.
			leftPrec = prec + 1
		}
		formatExpr(sb, ex.Left, leftPrec)
		sb.WriteString(" ")
		sb.WriteString(binOpText[ex.Op])
		sb.WriteString(" ")
		formatExpr(sb, ex.Right, prec+1)
		if prec < parentPrec {
			sb.WriteString(")")
		}
	case *UnaryExpr:
		if ex.Op == '!' {
			sb.WriteString("NOT ")
			formatExpr(sb, ex.X, 3)
		} else {
			sb.WriteString("-")
			formatExpr(sb, ex.X, 7)
		}
	case *FuncCall:
		sb.WriteString(ex.Name)
		sb.WriteString("(")
		if ex.Distinct {
			sb.WriteString("DISTINCT ")
		}
		if ex.Star {
			sb.WriteString("*")
		}
		for i, a := range ex.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			formatExpr(sb, a, 0)
		}
		sb.WriteString(")")
	case *LikeExpr:
		if parentPrec > 3 {
			sb.WriteString("(")
		}
		formatExpr(sb, ex.X, 5)
		if ex.Not {
			sb.WriteString(" NOT")
		}
		sb.WriteString(" LIKE ")
		formatExpr(sb, ex.Pattern, 5)
		if parentPrec > 3 {
			sb.WriteString(")")
		}
	case *BetweenExpr:
		if parentPrec > 3 {
			sb.WriteString("(")
		}
		formatExpr(sb, ex.X, 5)
		if ex.Not {
			sb.WriteString(" NOT")
		}
		sb.WriteString(" BETWEEN ")
		formatExpr(sb, ex.Lo, 5)
		sb.WriteString(" AND ")
		formatExpr(sb, ex.Hi, 5)
		if parentPrec > 3 {
			sb.WriteString(")")
		}
	case *InExpr:
		if parentPrec > 3 {
			sb.WriteString("(")
		}
		formatExpr(sb, ex.X, 5)
		if ex.Not {
			sb.WriteString(" NOT")
		}
		sb.WriteString(" IN (")
		if ex.Subquery != nil {
			formatSelect(sb, ex.Subquery)
		} else {
			for i, v := range ex.List {
				if i > 0 {
					sb.WriteString(", ")
				}
				formatExpr(sb, v, 0)
			}
		}
		sb.WriteString(")")
		if parentPrec > 3 {
			sb.WriteString(")")
		}
	case *IsNullExpr:
		if parentPrec > 3 {
			sb.WriteString("(")
		}
		formatExpr(sb, ex.X, 5)
		if ex.Not {
			sb.WriteString(" IS NOT NULL")
		} else {
			sb.WriteString(" IS NULL")
		}
		if parentPrec > 3 {
			sb.WriteString(")")
		}
	case *SubqueryExpr:
		sb.WriteString("(")
		formatSelect(sb, ex.Query)
		sb.WriteString(")")
	case *ExistsExpr:
		if ex.Not {
			sb.WriteString("NOT ")
		}
		sb.WriteString("EXISTS (")
		formatSelect(sb, ex.Query)
		sb.WriteString(")")
	case *CaseExpr:
		sb.WriteString("CASE")
		for _, w := range ex.Whens {
			sb.WriteString(" WHEN ")
			formatExpr(sb, w.Cond, 0)
			sb.WriteString(" THEN ")
			formatExpr(sb, w.Result, 0)
		}
		if ex.Else != nil {
			sb.WriteString(" ELSE ")
			formatExpr(sb, ex.Else, 0)
		}
		sb.WriteString(" END")
	default:
		fmt.Fprintf(sb, "/* unknown expr %T */", e)
	}
}
