package sqlparser

// WalkExpr calls fn for e and every sub-expression of e, pre-order.
// Subqueries are not descended into; callers that need them handle
// SubqueryExpr / InExpr / ExistsExpr explicitly.
func WalkExpr(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch ex := e.(type) {
	case *BinaryExpr:
		WalkExpr(ex.Left, fn)
		WalkExpr(ex.Right, fn)
	case *UnaryExpr:
		WalkExpr(ex.X, fn)
	case *FuncCall:
		for _, a := range ex.Args {
			WalkExpr(a, fn)
		}
	case *LikeExpr:
		WalkExpr(ex.X, fn)
		WalkExpr(ex.Pattern, fn)
	case *BetweenExpr:
		WalkExpr(ex.X, fn)
		WalkExpr(ex.Lo, fn)
		WalkExpr(ex.Hi, fn)
	case *InExpr:
		WalkExpr(ex.X, fn)
		for _, v := range ex.List {
			WalkExpr(v, fn)
		}
	case *IsNullExpr:
		WalkExpr(ex.X, fn)
	case *CaseExpr:
		for _, w := range ex.Whens {
			WalkExpr(w.Cond, fn)
			WalkExpr(w.Result, fn)
		}
		WalkExpr(ex.Else, fn)
	}
}

// ColumnRefs returns every column reference in e, in source order.
func ColumnRefs(e Expr) []*ColumnRef {
	var out []*ColumnRef
	WalkExpr(e, func(x Expr) {
		if c, ok := x.(*ColumnRef); ok {
			out = append(out, c)
		}
	})
	return out
}

// SplitConjuncts flattens a tree of AND operators into its conjuncts.
// A nil expression yields nil.
func SplitConjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*BinaryExpr); ok && b.Op == OpAnd {
		return append(SplitConjuncts(b.Left), SplitConjuncts(b.Right)...)
	}
	return []Expr{e}
}

// JoinConjuncts rebuilds a conjunction from a list of predicates; it
// returns nil for an empty list.
func JoinConjuncts(es []Expr) Expr {
	var out Expr
	for _, e := range es {
		if out == nil {
			out = e
		} else {
			out = &BinaryExpr{Op: OpAnd, Left: out, Right: e}
		}
	}
	return out
}

// HasAggregate reports whether the expression contains an aggregate
// function call (COUNT, SUM, AVG, MIN, MAX).
func HasAggregate(e Expr) bool {
	found := false
	WalkExpr(e, func(x Expr) {
		if f, ok := x.(*FuncCall); ok && IsAggregateName(f.Name) {
			found = true
		}
	})
	return found
}

// IsAggregateName reports whether the (upper-case) function name is one of
// the supported aggregates.
func IsAggregateName(name string) bool {
	switch name {
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
		return true
	}
	return false
}
