package sqlparser

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind int

const (
	tkEOF tokenKind = iota
	tkIdent
	tkKeyword
	tkInt
	tkFloat
	tkString
	tkSymbol // punctuation and operators
)

// token is one lexical token with its source position (for error messages).
type token struct {
	kind tokenKind
	text string // keywords upper-cased; identifiers lower-cased; strings unquoted
	pos  int
}

// keywords recognized by the lexer. Identifiers matching these
// (case-insensitively) are classified as tkKeyword.
var keywords = map[string]bool{
	"SELECT": true, "DISTINCT": true, "FROM": true, "WHERE": true,
	"GROUP": true, "BY": true, "HAVING": true, "ORDER": true, "ASC": true,
	"DESC": true, "LIMIT": true, "OFFSET": true, "AS": true, "AND": true, "OR": true,
	"NOT": true, "LIKE": true, "BETWEEN": true, "IN": true, "IS": true,
	"NULL": true, "TRUE": true, "FALSE": true, "JOIN": true, "INNER": true,
	"LEFT": true, "OUTER": true, "ON": true, "CREATE": true, "TABLE": true,
	"INDEX": true, "INSERT": true, "INTO": true, "VALUES": true,
	"UPDATE": true, "SET": true, "DELETE": true, "EXPLAIN": true,
	// NATIVE and ANALYZE are deliberately NOT keywords: they only have
	// meaning inside an EXPLAIN option list, where the parser matches
	// them contextually (acceptWord), so columns or tables named
	// "native"/"analyze" keep working everywhere else.
	"FORMAT": true, "JSON": true, "XML": true, "TEXT": true, "MYSQL": true,
	"EXISTS": true,
	"CASE":   true, "WHEN": true, "THEN": true, "ELSE": true, "END": true,
	"INTEGER": true, "INT": true, "FLOAT": true, "BOOLEAN": true,
	"VARCHAR": true, "CHAR": true, "DECIMAL": true, "DATE": true,
}

// lexer splits an input SQL string into tokens.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes src fully, returning an error for malformed input
// (unterminated strings, stray characters).
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, tok)
		if tok.kind == tkEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	if l.pos >= len(l.src) {
		return token{kind: tkEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isIdentStart(rune(c)):
		return l.lexWord(start), nil
	case c >= '0' && c <= '9':
		return l.lexNumber(start)
	case c == '\'':
		return l.lexString(start)
	default:
		return l.lexSymbol(start)
	}
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			return
		}
	}
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_' || r == '$'
}

func isIdentPart(r rune) bool {
	return isIdentStart(r) || unicode.IsDigit(r)
}

func (l *lexer) lexWord(start int) token {
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	word := l.src[start:l.pos]
	upper := strings.ToUpper(word)
	if keywords[upper] {
		return token{kind: tkKeyword, text: upper, pos: start}
	}
	return token{kind: tkIdent, text: strings.ToLower(word), pos: start}
}

func (l *lexer) lexNumber(start int) (token, error) {
	isFloat := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c >= '0' && c <= '9' {
			l.pos++
			continue
		}
		if c == '.' && !isFloat {
			isFloat = true
			l.pos++
			continue
		}
		break
	}
	kind := tkInt
	if isFloat {
		kind = tkFloat
	}
	return token{kind: kind, text: l.src[start:l.pos], pos: start}, nil
}

func (l *lexer) lexString(start int) (token, error) {
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				sb.WriteByte('\'') // escaped quote
				l.pos += 2
				continue
			}
			l.pos++
			return token{kind: tkString, text: sb.String(), pos: start}, nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return token{}, fmt.Errorf("sqlparser: unterminated string literal at offset %d", start)
}

// twoCharSymbols are the multi-character operators.
var twoCharSymbols = map[string]bool{
	"<=": true, ">=": true, "<>": true, "!=": true, "||": true,
}

func (l *lexer) lexSymbol(start int) (token, error) {
	if l.pos+1 < len(l.src) && twoCharSymbols[l.src[l.pos:l.pos+2]] {
		l.pos += 2
		return token{kind: tkSymbol, text: l.src[start : start+2], pos: start}, nil
	}
	switch l.src[l.pos] {
	case '(', ')', ',', ';', '=', '<', '>', '+', '-', '*', '/', '%', '.':
		l.pos++
		return token{kind: tkSymbol, text: l.src[start : start+1], pos: start}, nil
	}
	return token{}, fmt.Errorf("sqlparser: unexpected character %q at offset %d", l.src[l.pos], start)
}
