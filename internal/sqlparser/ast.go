// Package sqlparser implements a hand-written lexer and recursive-descent
// parser for the SQL subset the substrate engine executes: SELECT queries
// with joins, grouping, ordering and aggregation, plus the DDL/DML
// statements (CREATE TABLE/INDEX, INSERT, UPDATE, DELETE) that the POOL
// framework's translation layer and the data loaders need, and EXPLAIN.
package sqlparser

import "lantern/internal/datum"

// Statement is the interface implemented by all top-level SQL statements.
type Statement interface{ stmt() }

// Expr is the interface implemented by all expression nodes.
type Expr interface{ expr() }

// TableRef is a reference in the FROM clause: a base table or a join.
type TableRef interface{ tableRef() }

// --- Statements ---------------------------------------------------------

// SelectStmt is a SELECT query.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef // comma-separated list; each element may be a join tree
	Where    Expr       // nil when absent
	GroupBy  []Expr
	Having   Expr // nil when absent
	OrderBy  []OrderItem
	Limit    int64 // -1 when absent
	Offset   int64 // 0 when absent
}

// CreateTableStmt creates a base table.
type CreateTableStmt struct {
	Name    string
	Columns []ColumnDef
}

// ColumnDef is one column in a CREATE TABLE.
type ColumnDef struct {
	Name string
	Type datum.Kind
}

// CreateIndexStmt creates a secondary index on a single column.
type CreateIndexStmt struct {
	Name   string
	Table  string
	Column string
}

// InsertStmt inserts literal rows.
type InsertStmt struct {
	Table   string
	Columns []string // empty means table order
	Rows    [][]Expr
}

// UpdateStmt updates rows matching Where.
type UpdateStmt struct {
	Table string
	Alias string
	Sets  []Assignment
	Where Expr
}

// Assignment is one SET column = expr pair.
type Assignment struct {
	Column string
	Value  Expr
}

// DeleteStmt deletes rows matching Where.
type DeleteStmt struct {
	Table string
	Where Expr
}

// ExplainFormat selects the serialization of an EXPLAIN result.
type ExplainFormat int

// EXPLAIN output formats mirroring the supported engines: PostgreSQL-style
// text and JSON, SQL-Server-style XML showplan, MySQL-style
// EXPLAIN FORMAT=JSON, and the engine's own native plan serialization
// (the lossless engine↔narrator bridge format).
const (
	ExplainText ExplainFormat = iota
	ExplainJSON
	ExplainXML
	ExplainMySQL
	ExplainNative
)

// ExplainStmt wraps a SELECT and requests its plan instead of its rows.
// With Analyze set the query is also executed and the plan is annotated
// with per-operator runtime statistics (actual rows, loops, wall time) —
// PostgreSQL's EXPLAIN ANALYZE semantics.
type ExplainStmt struct {
	Format  ExplainFormat
	Analyze bool
	Query   *SelectStmt
}

func (*SelectStmt) stmt()      {}
func (*CreateTableStmt) stmt() {}
func (*CreateIndexStmt) stmt() {}
func (*InsertStmt) stmt()      {}
func (*UpdateStmt) stmt()      {}
func (*DeleteStmt) stmt()      {}
func (*ExplainStmt) stmt()     {}

// --- Select parts --------------------------------------------------------

// SelectItem is a single output column: `*`, `t.*`, or expression [AS alias].
type SelectItem struct {
	Star      bool   // SELECT *
	TableStar string // SELECT t.* when non-empty
	Expr      Expr
	Alias     string
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// JoinType enumerates the supported join kinds.
type JoinType int

// Supported join kinds. The substrate focuses on inner and left outer joins,
// which cover the workloads (TPC-H-style, SDSS, IMDB) shipped in
// internal/datasets.
const (
	InnerJoin JoinType = iota
	LeftJoin
)

// BaseTable is a named table with an optional alias.
type BaseTable struct {
	Name  string
	Alias string
}

// JoinRef is an explicit `a JOIN b ON cond`.
type JoinRef struct {
	Type  JoinType
	Left  TableRef
	Right TableRef
	On    Expr
}

func (*BaseTable) tableRef() {}
func (*JoinRef) tableRef()   {}

// --- Expressions ---------------------------------------------------------

// ColumnRef names a column, optionally qualified by table or alias.
type ColumnRef struct {
	Table string // optional qualifier
	Name  string
}

// Literal is a constant value.
type Literal struct {
	Value datum.D
}

// BinOp enumerates binary operators.
type BinOp int

// Binary operators, grouped by family. The parser assigns standard SQL
// precedence: OR < AND < NOT < comparison < additive < multiplicative.
const (
	OpOr BinOp = iota
	OpAnd
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpConcat
)

// BinaryExpr applies a binary operator.
type BinaryExpr struct {
	Op          BinOp
	Left, Right Expr
}

// UnaryExpr applies NOT or unary minus.
type UnaryExpr struct {
	Op byte // '!' for NOT, '-' for negation
	X  Expr
}

// FuncCall is an aggregate or scalar function application.
type FuncCall struct {
	Name     string // upper-cased
	Star     bool   // COUNT(*)
	Distinct bool   // COUNT(DISTINCT x)
	Args     []Expr
}

// LikeExpr is `x [NOT] LIKE pattern`.
type LikeExpr struct {
	Not     bool
	X       Expr
	Pattern Expr
}

// BetweenExpr is `x [NOT] BETWEEN lo AND hi`.
type BetweenExpr struct {
	Not    bool
	X      Expr
	Lo, Hi Expr
}

// InExpr is `x [NOT] IN (list)` or `x [NOT] IN (subquery)`.
type InExpr struct {
	Not      bool
	X        Expr
	List     []Expr
	Subquery *SelectStmt // non-nil for IN (SELECT ...)
}

// IsNullExpr is `x IS [NOT] NULL`.
type IsNullExpr struct {
	Not bool
	X   Expr
}

// SubqueryExpr is a scalar subquery usable wherever an expression may
// appear (the POOL UPDATE translation relies on this).
type SubqueryExpr struct {
	Query *SelectStmt
}

// ExistsExpr is `[NOT] EXISTS (subquery)`.
type ExistsExpr struct {
	Not   bool
	Query *SelectStmt
}

// CaseExpr is a searched CASE expression.
type CaseExpr struct {
	Whens []WhenClause
	Else  Expr // nil when absent
}

// WhenClause is one WHEN cond THEN result arm.
type WhenClause struct {
	Cond   Expr
	Result Expr
}

func (*ColumnRef) expr()    {}
func (*Literal) expr()      {}
func (*BinaryExpr) expr()   {}
func (*UnaryExpr) expr()    {}
func (*FuncCall) expr()     {}
func (*LikeExpr) expr()     {}
func (*BetweenExpr) expr()  {}
func (*InExpr) expr()       {}
func (*IsNullExpr) expr()   {}
func (*SubqueryExpr) expr() {}
func (*ExistsExpr) expr()   {}
func (*CaseExpr) expr()     {}
