package sqlparser

import (
	"math/rand"
	"testing"

	"lantern/internal/datum"
)

// randExpr generates a random well-formed expression of bounded depth —
// the generator behind the parser round-trip property test.
func randExpr(rng *rand.Rand, depth int) Expr {
	if depth <= 0 {
		switch rng.Intn(4) {
		case 0:
			return &Literal{Value: datum.NewInt(int64(rng.Intn(1000)))}
		case 1:
			return &Literal{Value: datum.NewFloat(float64(rng.Intn(100)) + 0.5)}
		case 2:
			return &Literal{Value: datum.NewString(randWord(rng))}
		default:
			return &ColumnRef{Table: "t", Name: "c" + string(rune('a'+rng.Intn(6)))}
		}
	}
	switch rng.Intn(8) {
	case 0:
		ops := []BinOp{OpAdd, OpSub, OpMul, OpDiv}
		return &BinaryExpr{Op: ops[rng.Intn(len(ops))],
			Left: randExpr(rng, depth-1), Right: randExpr(rng, depth-1)}
	case 1:
		ops := []BinOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
		return &BinaryExpr{Op: ops[rng.Intn(len(ops))],
			Left: randExpr(rng, depth-1), Right: randExpr(rng, depth-1)}
	case 2:
		return &BinaryExpr{Op: OpAnd,
			Left: randBoolExpr(rng, depth-1), Right: randBoolExpr(rng, depth-1)}
	case 3:
		return &BinaryExpr{Op: OpOr,
			Left: randBoolExpr(rng, depth-1), Right: randBoolExpr(rng, depth-1)}
	case 4:
		return &LikeExpr{Not: rng.Intn(2) == 0,
			X:       &ColumnRef{Name: "name"},
			Pattern: &Literal{Value: datum.NewString("%" + randWord(rng) + "%")}}
	case 5:
		return &BetweenExpr{Not: rng.Intn(2) == 0,
			X:  &ColumnRef{Name: "v"},
			Lo: &Literal{Value: datum.NewInt(int64(rng.Intn(10)))},
			Hi: &Literal{Value: datum.NewInt(int64(10 + rng.Intn(10)))}}
	case 6:
		n := 1 + rng.Intn(3)
		in := &InExpr{Not: rng.Intn(2) == 0, X: &ColumnRef{Name: "k"}}
		for i := 0; i < n; i++ {
			in.List = append(in.List, &Literal{Value: datum.NewInt(int64(rng.Intn(100)))})
		}
		return in
	default:
		return &IsNullExpr{Not: rng.Intn(2) == 0, X: randExpr(rng, 0)}
	}
}

func randBoolExpr(rng *rand.Rand, depth int) Expr {
	if depth <= 0 {
		return &BinaryExpr{Op: OpEq, Left: randExpr(rng, 0), Right: randExpr(rng, 0)}
	}
	return randExpr(rng, depth)
}

func randWord(rng *rand.Rand) string {
	words := []string{"alpha", "beta", "gamma", "delta", "july", "building"}
	return words[rng.Intn(len(words))]
}

// TestExprFormatParseRoundTrip: for hundreds of random expressions,
// Format -> Parse -> Format is a fixed point (the canonical-rendering
// property from DESIGN.md).
func TestExprFormatParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for i := 0; i < 500; i++ {
		e := randExpr(rng, 3)
		text1 := FormatExpr(e)
		sel, err := ParseSelect("SELECT 1 FROM t WHERE " + text1)
		if err != nil {
			t.Fatalf("case %d: reparse failed: %v\nexpr: %s", i, err, text1)
		}
		text2 := FormatExpr(sel.Where)
		if text1 != text2 {
			t.Fatalf("case %d: format not stable:\n  first:  %s\n  second: %s", i, text1, text2)
		}
	}
}

// TestSelectFormatParseRoundTrip does the same at statement level with
// random clause combinations.
func TestSelectFormatParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		sel := &SelectStmt{Limit: -1}
		sel.Distinct = rng.Intn(3) == 0
		nItems := 1 + rng.Intn(3)
		for j := 0; j < nItems; j++ {
			sel.Items = append(sel.Items, SelectItem{Expr: randExpr(rng, 1)})
		}
		sel.From = []TableRef{&BaseTable{Name: "t"}}
		if rng.Intn(2) == 0 {
			sel.Where = randBoolExpr(rng, 2)
		}
		if rng.Intn(3) == 0 {
			sel.GroupBy = []Expr{&ColumnRef{Table: "t", Name: "ca"}}
		}
		if rng.Intn(3) == 0 {
			sel.OrderBy = []OrderItem{{Expr: &ColumnRef{Table: "t", Name: "cb"}, Desc: rng.Intn(2) == 0}}
		}
		if rng.Intn(4) == 0 {
			sel.Limit = int64(rng.Intn(100))
		}
		text1 := FormatStatement(sel)
		re, err := Parse(text1)
		if err != nil {
			t.Fatalf("case %d: reparse failed: %v\nstmt: %s", i, err, text1)
		}
		text2 := FormatStatement(re)
		if text1 != text2 {
			t.Fatalf("case %d: format not stable:\n  first:  %s\n  second: %s", i, text1, text2)
		}
	}
}
