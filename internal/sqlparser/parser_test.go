package sqlparser

import (
	"strings"
	"testing"

	"lantern/internal/datum"
)

func mustParse(t *testing.T, src string) Statement {
	t.Helper()
	stmt, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return stmt
}

func mustSelect(t *testing.T, src string) *SelectStmt {
	t.Helper()
	sel, err := ParseSelect(src)
	if err != nil {
		t.Fatalf("ParseSelect(%q): %v", src, err)
	}
	return sel
}

func TestSimpleSelect(t *testing.T) {
	sel := mustSelect(t, "SELECT a, b FROM t WHERE a = 1")
	if len(sel.Items) != 2 {
		t.Fatalf("items = %d, want 2", len(sel.Items))
	}
	if sel.Where == nil {
		t.Fatal("missing WHERE")
	}
	be, ok := sel.Where.(*BinaryExpr)
	if !ok || be.Op != OpEq {
		t.Fatalf("WHERE = %T, want BinaryExpr(OpEq)", sel.Where)
	}
}

func TestSelectStar(t *testing.T) {
	sel := mustSelect(t, "SELECT * FROM t")
	if !sel.Items[0].Star {
		t.Error("expected star item")
	}
	sel = mustSelect(t, "SELECT t.* FROM t")
	if sel.Items[0].TableStar != "t" {
		t.Errorf("TableStar = %q, want t", sel.Items[0].TableStar)
	}
}

func TestSelectDistinct(t *testing.T) {
	sel := mustSelect(t, "SELECT DISTINCT(i.proceeding_key) FROM inproceedings i")
	if !sel.Distinct {
		t.Error("expected DISTINCT")
	}
	bt := sel.From[0].(*BaseTable)
	if bt.Name != "inproceedings" || bt.Alias != "i" {
		t.Errorf("from = %+v", bt)
	}
}

func TestPaperExampleQuery(t *testing.T) {
	// Example 3.1 from the paper (dblp dataset).
	src := `SELECT DISTINCT(I.proceeding_key)
		FROM inproceedings I, publication P
		WHERE (I.proceeding_key = P.pub_key AND
		P.title like '%July%')
		GROUP BY I.proceeding_key
		HAVING COUNT (*) > 200;`
	sel := mustSelect(t, src)
	if len(sel.From) != 2 {
		t.Fatalf("from = %d tables, want 2", len(sel.From))
	}
	if len(sel.GroupBy) != 1 || sel.Having == nil {
		t.Fatal("missing GROUP BY / HAVING")
	}
	conj := SplitConjuncts(sel.Where)
	if len(conj) != 2 {
		t.Fatalf("conjuncts = %d, want 2", len(conj))
	}
	if _, ok := conj[1].(*LikeExpr); !ok {
		t.Errorf("second conjunct = %T, want LikeExpr", conj[1])
	}
}

func TestExplicitJoin(t *testing.T) {
	sel := mustSelect(t, "SELECT * FROM a JOIN b ON a.x = b.y LEFT JOIN c ON b.z = c.w")
	jr, ok := sel.From[0].(*JoinRef)
	if !ok || jr.Type != LeftJoin {
		t.Fatalf("outer from = %T, want LEFT JoinRef", sel.From[0])
	}
	inner, ok := jr.Left.(*JoinRef)
	if !ok || inner.Type != InnerJoin {
		t.Fatalf("inner from = %T, want INNER JoinRef", jr.Left)
	}
}

func TestOrderByLimit(t *testing.T) {
	sel := mustSelect(t, "SELECT a FROM t ORDER BY a DESC, b LIMIT 10")
	if len(sel.OrderBy) != 2 || !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Fatalf("order by = %+v", sel.OrderBy)
	}
	if sel.Limit != 10 {
		t.Errorf("limit = %d, want 10", sel.Limit)
	}
	if sel.Offset != 0 {
		t.Errorf("offset = %d, want 0", sel.Offset)
	}
}

func TestLimitOffset(t *testing.T) {
	sel := mustSelect(t, "SELECT a FROM t LIMIT 10 OFFSET 5")
	if sel.Limit != 10 || sel.Offset != 5 {
		t.Fatalf("limit = %d offset = %d, want 10/5", sel.Limit, sel.Offset)
	}
	if got := FormatStatement(sel); got != "SELECT a FROM t LIMIT 10 OFFSET 5" {
		t.Errorf("format round trip = %q", got)
	}
	// OFFSET without LIMIT is valid (PostgreSQL-style).
	sel = mustSelect(t, "SELECT a FROM t OFFSET 3")
	if sel.Limit != -1 || sel.Offset != 3 {
		t.Fatalf("limit = %d offset = %d, want -1/3", sel.Limit, sel.Offset)
	}
	if _, err := ParseSelect("SELECT a FROM t OFFSET x"); err == nil {
		t.Error("non-integer OFFSET accepted")
	}
}

func TestAggregates(t *testing.T) {
	sel := mustSelect(t, "SELECT COUNT(*), SUM(x), AVG(y), COUNT(DISTINCT z) FROM t")
	f0 := sel.Items[0].Expr.(*FuncCall)
	if !f0.Star || f0.Name != "COUNT" {
		t.Errorf("item0 = %+v", f0)
	}
	f3 := sel.Items[3].Expr.(*FuncCall)
	if !f3.Distinct {
		t.Errorf("item3 = %+v, want DISTINCT", f3)
	}
}

func TestOperatorPrecedence(t *testing.T) {
	sel := mustSelect(t, "SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3")
	or, ok := sel.Where.(*BinaryExpr)
	if !ok || or.Op != OpOr {
		t.Fatalf("root = %v, want OR", sel.Where)
	}
	and, ok := or.Right.(*BinaryExpr)
	if !ok || and.Op != OpAnd {
		t.Fatalf("right = %v, want AND", or.Right)
	}
}

func TestArithmeticPrecedence(t *testing.T) {
	sel := mustSelect(t, "SELECT 1 + 2 * 3")
	add := sel.Items[0].Expr.(*BinaryExpr)
	if add.Op != OpAdd {
		t.Fatalf("root op = %v, want +", add.Op)
	}
	mul := add.Right.(*BinaryExpr)
	if mul.Op != OpMul {
		t.Fatalf("right op = %v, want *", mul.Op)
	}
}

func TestBetweenInLike(t *testing.T) {
	sel := mustSelect(t, "SELECT a FROM t WHERE a BETWEEN 1 AND 10 AND b IN (1, 2, 3) AND c NOT LIKE 'x%'")
	conj := SplitConjuncts(sel.Where)
	if len(conj) != 3 {
		t.Fatalf("conjuncts = %d, want 3", len(conj))
	}
	if _, ok := conj[0].(*BetweenExpr); !ok {
		t.Errorf("conj0 = %T", conj[0])
	}
	in, ok := conj[1].(*InExpr)
	if !ok || len(in.List) != 3 {
		t.Errorf("conj1 = %T %v", conj[1], conj[1])
	}
	like, ok := conj[2].(*LikeExpr)
	if !ok || !like.Not {
		t.Errorf("conj2 = %T, want NOT LIKE", conj[2])
	}
}

func TestInSubquery(t *testing.T) {
	sel := mustSelect(t, "SELECT a FROM t WHERE a IN (SELECT b FROM u)")
	in := sel.Where.(*InExpr)
	if in.Subquery == nil {
		t.Fatal("expected subquery")
	}
}

func TestScalarSubquery(t *testing.T) {
	stmt := mustParse(t, "UPDATE db2 SET desc_ = (SELECT desc_ FROM pg WHERE name = 'hashjoin') WHERE name = 'hsjoin'")
	up := stmt.(*UpdateStmt)
	if _, ok := up.Sets[0].Value.(*SubqueryExpr); !ok {
		t.Fatalf("SET value = %T, want SubqueryExpr", up.Sets[0].Value)
	}
}

func TestIsNull(t *testing.T) {
	sel := mustSelect(t, "SELECT a FROM t WHERE a IS NULL AND b IS NOT NULL")
	conj := SplitConjuncts(sel.Where)
	n0 := conj[0].(*IsNullExpr)
	n1 := conj[1].(*IsNullExpr)
	if n0.Not || !n1.Not {
		t.Errorf("IS NULL flags wrong: %v %v", n0, n1)
	}
}

func TestCase(t *testing.T) {
	sel := mustSelect(t, "SELECT CASE WHEN a > 1 THEN 'big' ELSE 'small' END FROM t")
	ce := sel.Items[0].Expr.(*CaseExpr)
	if len(ce.Whens) != 1 || ce.Else == nil {
		t.Fatalf("case = %+v", ce)
	}
}

func TestExists(t *testing.T) {
	sel := mustSelect(t, "SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.x = t.a)")
	if _, ok := sel.Where.(*ExistsExpr); !ok {
		t.Fatalf("where = %T, want ExistsExpr", sel.Where)
	}
	sel = mustSelect(t, "SELECT a FROM t WHERE NOT EXISTS (SELECT 1 FROM u)")
	ex := sel.Where.(*ExistsExpr)
	if !ex.Not {
		t.Error("expected NOT EXISTS")
	}
}

func TestCreateTable(t *testing.T) {
	stmt := mustParse(t, "CREATE TABLE customer (c_custkey INTEGER, c_name VARCHAR(25), c_acctbal DECIMAL(15,2))")
	ct := stmt.(*CreateTableStmt)
	if len(ct.Columns) != 3 {
		t.Fatalf("columns = %d, want 3", len(ct.Columns))
	}
	if ct.Columns[0].Type != datum.KInt || ct.Columns[1].Type != datum.KString || ct.Columns[2].Type != datum.KFloat {
		t.Errorf("types = %v %v %v", ct.Columns[0].Type, ct.Columns[1].Type, ct.Columns[2].Type)
	}
}

func TestCreateIndex(t *testing.T) {
	stmt := mustParse(t, "CREATE INDEX idx_ck ON customer (c_custkey)")
	ci := stmt.(*CreateIndexStmt)
	if ci.Table != "customer" || ci.Column != "c_custkey" {
		t.Errorf("index = %+v", ci)
	}
}

func TestInsert(t *testing.T) {
	stmt := mustParse(t, "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
	ins := stmt.(*InsertStmt)
	if len(ins.Rows) != 2 || len(ins.Columns) != 2 {
		t.Fatalf("insert = %+v", ins)
	}
}

func TestDelete(t *testing.T) {
	stmt := mustParse(t, "DELETE FROM t WHERE a = 1")
	del := stmt.(*DeleteStmt)
	if del.Table != "t" || del.Where == nil {
		t.Errorf("delete = %+v", del)
	}
}

func TestExplainFormats(t *testing.T) {
	for src, want := range map[string]ExplainFormat{
		"EXPLAIN SELECT a FROM t":                 ExplainText,
		"EXPLAIN (FORMAT JSON) SELECT a FROM t":   ExplainJSON,
		"EXPLAIN (FORMAT XML) SELECT a FROM t":    ExplainXML,
		"EXPLAIN (FORMAT TEXT) SELECT a FROM t":   ExplainText,
		"EXPLAIN (FORMAT NATIVE) SELECT a FROM t": ExplainNative,
	} {
		stmt := mustParse(t, src)
		ex := stmt.(*ExplainStmt)
		if ex.Format != want {
			t.Errorf("%q: format = %v, want %v", src, ex.Format, want)
		}
	}
}

func TestExplainAnalyzeOptions(t *testing.T) {
	for src, want := range map[string]struct {
		analyze bool
		format  ExplainFormat
	}{
		"EXPLAIN ANALYZE SELECT a FROM t":                  {true, ExplainText},
		"EXPLAIN (ANALYZE) SELECT a FROM t":                {true, ExplainText},
		"EXPLAIN (ANALYZE, FORMAT NATIVE) SELECT a FROM t": {true, ExplainNative},
		"EXPLAIN (FORMAT JSON, ANALYZE) SELECT a FROM t":   {true, ExplainJSON},
		"EXPLAIN (FORMAT NATIVE) SELECT a FROM t":          {false, ExplainNative},
	} {
		stmt := mustParse(t, src)
		ex := stmt.(*ExplainStmt)
		if ex.Analyze != want.analyze || ex.Format != want.format {
			t.Errorf("%q: analyze=%v format=%v, want %+v", src, ex.Analyze, ex.Format, want)
		}
	}
	for _, bad := range []string{
		"EXPLAIN (ANALYZE FORMAT JSON) SELECT a FROM t", // missing comma
		"EXPLAIN (VERBOSE) SELECT a FROM t",
		"EXPLAIN (FORMAT YAML) SELECT a FROM t",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("%q parsed, want error", bad)
		}
	}
	// ANALYZE and NATIVE are contextual, not reserved: they stay valid
	// identifiers everywhere outside an EXPLAIN option list.
	for _, ok := range []string{
		"SELECT native FROM t",
		"SELECT a FROM analyze",
		"SELECT analyze, native FROM t WHERE native = 1",
	} {
		if _, err := Parse(ok); err != nil {
			t.Errorf("Parse(%q): %v (contextual keyword leaked into the grammar)", ok, err)
		}
	}
}

func TestStringLiteralEscape(t *testing.T) {
	sel := mustSelect(t, "SELECT 'it''s'")
	lit := sel.Items[0].Expr.(*Literal)
	if lit.Value.Str() != "it's" {
		t.Errorf("literal = %q, want it's", lit.Value.Str())
	}
}

func TestComments(t *testing.T) {
	sel := mustSelect(t, "SELECT a -- the column\nFROM t")
	if len(sel.Items) != 1 {
		t.Errorf("items = %d", len(sel.Items))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC a FROM t",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT 'unterminated",
		"SELECT a FROM t LIMIT x",
		"SELECT a FROM t GROUP a",
		"INSERT INTO t VALUES",
		"CREATE VIEW v",
		"SELECT a FROM t; extra",
		"SELECT a FROM t WHERE a @ 1",
		"SELECT CASE END",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestParseScript(t *testing.T) {
	stmts, err := ParseScript("CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT * FROM t;")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("statements = %d, want 3", len(stmts))
	}
}

func TestParseSelectRejectsNonSelect(t *testing.T) {
	if _, err := ParseSelect("DELETE FROM t"); err == nil {
		t.Error("expected error")
	}
}

func TestNegativeNumberFolding(t *testing.T) {
	sel := mustSelect(t, "SELECT -5, -2.5")
	if v := sel.Items[0].Expr.(*Literal).Value; v.Int() != -5 {
		t.Errorf("item0 = %v", v)
	}
	if v := sel.Items[1].Expr.(*Literal).Value; v.Float() != -2.5 {
		t.Errorf("item1 = %v", v)
	}
}

func TestFormatRoundTrip(t *testing.T) {
	queries := []string{
		"SELECT a, b AS total FROM t WHERE a = 1 AND b > 2.5",
		"SELECT DISTINCT a FROM t AS x ORDER BY a DESC LIMIT 5",
		"SELECT COUNT(*) FROM a JOIN b ON a.x = b.y WHERE a.z LIKE '%q%'",
		"SELECT a FROM t WHERE a BETWEEN 1 AND 2 OR b IN (1, 2)",
		"SELECT SUM(x * y) FROM t GROUP BY z HAVING COUNT(*) > 200",
		"SELECT CASE WHEN a = 1 THEN 'x' ELSE 'y' END FROM t",
		"SELECT a FROM t WHERE NOT a = 1",
		"SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u)",
		"SELECT a FROM t WHERE x IS NOT NULL",
		"UPDATE pg SET defn = 'abc' WHERE name = 'hashjoin'",
		"DELETE FROM t WHERE a = 1",
		"INSERT INTO t (a) VALUES (1), (2)",
		"CREATE INDEX i ON t (c)",
		"EXPLAIN (FORMAT JSON) SELECT a FROM t",
	}
	for _, q := range queries {
		stmt1 := mustParse(t, q)
		text1 := FormatStatement(stmt1)
		stmt2, err := Parse(text1)
		if err != nil {
			t.Errorf("reparse of %q -> %q failed: %v", q, text1, err)
			continue
		}
		text2 := FormatStatement(stmt2)
		if text1 != text2 {
			t.Errorf("format not stable:\n  first:  %s\n  second: %s", text1, text2)
		}
	}
}

func TestFormatParenthesization(t *testing.T) {
	// (a OR b) AND c must keep its parentheses.
	sel := mustSelect(t, "SELECT x FROM t WHERE (a = 1 OR b = 2) AND c = 3")
	text := FormatExpr(sel.Where)
	if !strings.Contains(text, "(") {
		t.Errorf("lost parens: %s", text)
	}
	re, err := ParseSelect("SELECT x FROM t WHERE " + text)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	and, ok := re.Where.(*BinaryExpr)
	if !ok || and.Op != OpAnd {
		t.Fatalf("root = %v, want AND", re.Where)
	}
}

func TestWalkAndColumnRefs(t *testing.T) {
	sel := mustSelect(t, "SELECT a + b FROM t WHERE c = 1 AND d LIKE 'x'")
	refs := ColumnRefs(sel.Items[0].Expr)
	if len(refs) != 2 {
		t.Errorf("refs = %d, want 2", len(refs))
	}
	refs = ColumnRefs(sel.Where)
	if len(refs) != 2 {
		t.Errorf("where refs = %d, want 2", len(refs))
	}
}

func TestHasAggregate(t *testing.T) {
	sel := mustSelect(t, "SELECT SUM(a) + 1, b FROM t")
	if !HasAggregate(sel.Items[0].Expr) {
		t.Error("SUM(a)+1 should contain aggregate")
	}
	if HasAggregate(sel.Items[1].Expr) {
		t.Error("b should not contain aggregate")
	}
}

func TestJoinConjuncts(t *testing.T) {
	if JoinConjuncts(nil) != nil {
		t.Error("JoinConjuncts(nil) != nil")
	}
	a := &ColumnRef{Name: "a"}
	b := &ColumnRef{Name: "b"}
	e := JoinConjuncts([]Expr{a, b})
	be, ok := e.(*BinaryExpr)
	if !ok || be.Op != OpAnd {
		t.Fatalf("joined = %T", e)
	}
	if got := SplitConjuncts(e); len(got) != 2 {
		t.Errorf("split = %d", len(got))
	}
}
