package sqlparser

import (
	"fmt"
	"strconv"
	"strings"

	"lantern/internal/datum"
)

// Parse parses a single SQL statement. A trailing semicolon is permitted.
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.accept(tkSymbol, ";")
	if !p.atEOF() {
		return nil, p.errorf("unexpected trailing input %q", p.peek().text)
	}
	return stmt, nil
}

// ParseSelect parses a statement and requires it to be a SELECT.
func ParseSelect(src string) (*SelectStmt, error) {
	stmt, err := Parse(src)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sqlparser: expected SELECT statement, got %T", stmt)
	}
	return sel, nil
}

// ParseScript parses a semicolon-separated sequence of statements.
func ParseScript(src string) ([]Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var stmts []Statement
	for !p.atEOF() {
		if p.accept(tkSymbol, ";") {
			continue
		}
		stmt, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, stmt)
		if !p.accept(tkSymbol, ";") && !p.atEOF() {
			return nil, p.errorf("expected ';' between statements, got %q", p.peek().text)
		}
	}
	return stmts, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) peekAt(n int) token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+n]
}
func (p *parser) advance() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) atEOF() bool    { return p.peek().kind == tkEOF }

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sqlparser: at offset %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

// accept consumes the next token if it matches kind and text.
func (p *parser) accept(kind tokenKind, text string) bool {
	if p.peek().kind == kind && p.peek().text == text {
		p.pos++
		return true
	}
	return false
}

func (p *parser) acceptKeyword(kw string) bool { return p.accept(tkKeyword, kw) }

// acceptWord consumes the next token if it is the given word as either a
// keyword or a plain identifier (case-insensitive). Used for contextual
// keywords like ANALYZE and NATIVE that must stay valid identifiers
// outside their one grammatical position.
func (p *parser) acceptWord(w string) bool {
	t := p.peek()
	if (t.kind == tkKeyword || t.kind == tkIdent) && strings.EqualFold(t.text, w) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errorf("expected %s, got %q", kw, p.peek().text)
	}
	return nil
}

func (p *parser) expectSymbol(sym string) error {
	if !p.accept(tkSymbol, sym) {
		return p.errorf("expected %q, got %q", sym, p.peek().text)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	if p.peek().kind != tkIdent {
		// Permit non-reserved-looking keywords as identifiers in a pinch
		// (e.g. a column named "date").
		if p.peek().kind == tkKeyword {
			switch p.peek().text {
			case "DATE", "TEXT", "INDEX", "FORMAT":
				return stringsToLower(p.advance().text), nil
			}
		}
		return "", p.errorf("expected identifier, got %q", p.peek().text)
	}
	return p.advance().text, nil
}

func stringsToLower(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + ('a' - 'A')
		}
	}
	return string(b)
}

// --- Statements ----------------------------------------------------------

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.peek().kind == tkKeyword && p.peek().text == "SELECT":
		return p.parseSelect()
	case p.peek().kind == tkKeyword && p.peek().text == "CREATE":
		return p.parseCreate()
	case p.peek().kind == tkKeyword && p.peek().text == "INSERT":
		return p.parseInsert()
	case p.peek().kind == tkKeyword && p.peek().text == "UPDATE":
		return p.parseUpdate()
	case p.peek().kind == tkKeyword && p.peek().text == "DELETE":
		return p.parseDelete()
	case p.peek().kind == tkKeyword && p.peek().text == "EXPLAIN":
		return p.parseExplain()
	}
	return nil, p.errorf("expected statement, got %q", p.peek().text)
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	sel := &SelectStmt{Limit: -1}
	sel.Distinct = p.acceptKeyword("DISTINCT")
	// DISTINCT(x) used as a function-ish form (as in the paper's Example 3.1)
	// is treated as DISTINCT over the select list.
	if sel.Distinct && p.peek().kind == tkSymbol && p.peek().text == "(" {
		// fall through: the parenthesized expression parses normally.
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if !p.accept(tkSymbol, ",") {
			break
		}
	}
	if p.acceptKeyword("FROM") {
		for {
			ref, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			sel.From = append(sel.From, ref)
			if !p.accept(tkSymbol, ",") {
				break
			}
		}
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = w
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.accept(tkSymbol, ",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = h
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.accept(tkSymbol, ",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		if p.peek().kind != tkInt {
			return nil, p.errorf("expected integer after LIMIT, got %q", p.peek().text)
		}
		n, err := strconv.ParseInt(p.advance().text, 10, 64)
		if err != nil {
			return nil, err
		}
		sel.Limit = n
	}
	if p.acceptKeyword("OFFSET") {
		if p.peek().kind != tkInt {
			return nil, p.errorf("expected integer after OFFSET, got %q", p.peek().text)
		}
		n, err := strconv.ParseInt(p.advance().text, 10, 64)
		if err != nil {
			return nil, err
		}
		sel.Offset = n
	}
	return sel, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.accept(tkSymbol, "*") {
		return SelectItem{Star: true}, nil
	}
	// t.* form
	if p.peek().kind == tkIdent && p.peekAt(1).text == "." && p.peekAt(2).text == "*" {
		tbl := p.advance().text
		p.advance() // .
		p.advance() // *
		return SelectItem{TableStar: tbl}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = alias
	} else if p.peek().kind == tkIdent {
		item.Alias = p.advance().text
	}
	return item, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	left, err := p.parseBaseTable()
	if err != nil {
		return nil, err
	}
	var ref TableRef = left
	for {
		var jt JoinType
		switch {
		case p.acceptKeyword("JOIN"):
			jt = InnerJoin
		case p.peek().kind == tkKeyword && p.peek().text == "INNER":
			p.advance()
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			jt = InnerJoin
		case p.peek().kind == tkKeyword && p.peek().text == "LEFT":
			p.advance()
			p.acceptKeyword("OUTER")
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			jt = LeftJoin
		default:
			return ref, nil
		}
		right, err := p.parseBaseTable()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ref = &JoinRef{Type: jt, Left: ref, Right: right, On: on}
	}
}

func (p *parser) parseBaseTable() (*BaseTable, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	bt := &BaseTable{Name: name}
	if p.acceptKeyword("AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		bt.Alias = alias
	} else if p.peek().kind == tkIdent {
		bt.Alias = p.advance().text
	}
	return bt, nil
}

func (p *parser) parseCreate() (Statement, error) {
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	if p.acceptKeyword("TABLE") {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		stmt := &CreateTableStmt{Name: name}
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			kind, err := p.parseColumnType()
			if err != nil {
				return nil, err
			}
			stmt.Columns = append(stmt.Columns, ColumnDef{Name: col, Type: kind})
			if !p.accept(tkSymbol, ",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return stmt, nil
	}
	if p.acceptKeyword("INDEX") {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		table, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &CreateIndexStmt{Name: name, Table: table, Column: col}, nil
	}
	return nil, p.errorf("expected TABLE or INDEX after CREATE")
}

func (p *parser) parseColumnType() (datum.Kind, error) {
	t := p.peek()
	if t.kind != tkKeyword {
		return datum.KNull, p.errorf("expected column type, got %q", t.text)
	}
	p.advance()
	var kind datum.Kind
	switch t.text {
	case "INTEGER", "INT":
		kind = datum.KInt
	case "FLOAT", "DECIMAL":
		kind = datum.KFloat
	case "TEXT", "VARCHAR", "CHAR", "DATE":
		kind = datum.KString
	case "BOOLEAN":
		kind = datum.KBool
	default:
		return datum.KNull, p.errorf("unknown column type %q", t.text)
	}
	// Optional length/precision suffix, e.g. VARCHAR(25), DECIMAL(15,2).
	if p.accept(tkSymbol, "(") {
		for !p.accept(tkSymbol, ")") {
			if p.atEOF() {
				return datum.KNull, p.errorf("unterminated type suffix")
			}
			p.advance()
		}
	}
	return kind, nil
}

func (p *parser) parseInsert() (Statement, error) {
	if err := p.expectKeyword("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt := &InsertStmt{Table: table}
	if p.accept(tkSymbol, "(") {
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			stmt.Columns = append(stmt.Columns, col)
			if !p.accept(tkSymbol, ",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.accept(tkSymbol, ",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		stmt.Rows = append(stmt.Rows, row)
		if !p.accept(tkSymbol, ",") {
			break
		}
	}
	return stmt, nil
}

func (p *parser) parseUpdate() (Statement, error) {
	if err := p.expectKeyword("UPDATE"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt := &UpdateStmt{Table: table}
	if p.acceptKeyword("AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		stmt.Alias = alias
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		// Permit a redundant table qualifier on the assignment target.
		if p.accept(tkSymbol, ".") {
			col, err = p.expectIdent()
			if err != nil {
				return nil, err
			}
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Sets = append(stmt.Sets, Assignment{Column: col, Value: val})
		if !p.accept(tkSymbol, ",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	return stmt, nil
}

func (p *parser) parseDelete() (Statement, error) {
	if err := p.expectKeyword("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt := &DeleteStmt{Table: table}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	return stmt, nil
}

func (p *parser) parseExplain() (Statement, error) {
	if err := p.expectKeyword("EXPLAIN"); err != nil {
		return nil, err
	}
	stmt := &ExplainStmt{Format: ExplainText}
	switch {
	case p.accept(tkSymbol, "("):
		// Option list: EXPLAIN (ANALYZE), EXPLAIN (FORMAT JSON),
		// EXPLAIN (ANALYZE, FORMAT NATIVE), in any order.
		for {
			switch {
			case p.acceptWord("ANALYZE"):
				stmt.Analyze = true
			case p.acceptKeyword("FORMAT"):
				switch {
				case p.acceptKeyword("JSON"):
					stmt.Format = ExplainJSON
				case p.acceptKeyword("XML"):
					stmt.Format = ExplainXML
				case p.acceptKeyword("MYSQL"):
					stmt.Format = ExplainMySQL
				case p.acceptWord("NATIVE"):
					stmt.Format = ExplainNative
				case p.acceptKeyword("TEXT"):
					stmt.Format = ExplainText
				default:
					return nil, p.errorf("expected JSON, XML, MYSQL, NATIVE or TEXT, got %q", p.peek().text)
				}
			default:
				return nil, p.errorf("expected ANALYZE or FORMAT, got %q", p.peek().text)
			}
			if !p.accept(tkSymbol, ",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	case p.acceptWord("ANALYZE"):
		// PostgreSQL's bare form: EXPLAIN ANALYZE SELECT ...
		stmt.Analyze = true
	}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	stmt.Query = sel
	return stmt, nil
}

// --- Expressions ---------------------------------------------------------

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: OpOr, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tkKeyword && p.peek().text == "AND" {
		p.advance()
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: OpAnd, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.peek().kind == tkKeyword && p.peek().text == "NOT" &&
		p.peekAt(1).text != "EXISTS" {
		p.advance()
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: '!', X: x}, nil
	}
	return p.parseComparison()
}

var comparisonOps = map[string]BinOp{
	"=": OpEq, "<>": OpNe, "!=": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
}

func (p *parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// Negation applying to LIKE / BETWEEN / IN.
	not := false
	if p.peek().kind == tkKeyword && p.peek().text == "NOT" {
		next := p.peekAt(1).text
		if next == "LIKE" || next == "BETWEEN" || next == "IN" {
			p.advance()
			not = true
		}
	}
	if p.peek().kind == tkSymbol {
		if op, ok := comparisonOps[p.peek().text]; ok {
			p.advance()
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: op, Left: left, Right: right}, nil
		}
	}
	switch {
	case p.acceptKeyword("LIKE"):
		pat, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &LikeExpr{Not: not, X: left, Pattern: pat}, nil
	case p.acceptKeyword("BETWEEN"):
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{Not: not, X: left, Lo: lo, Hi: hi}, nil
	case p.acceptKeyword("IN"):
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		in := &InExpr{Not: not, X: left}
		if p.peek().kind == tkKeyword && p.peek().text == "SELECT" {
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			in.Subquery = sub
		} else {
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				in.List = append(in.List, e)
				if !p.accept(tkSymbol, ",") {
					break
				}
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return in, nil
	case p.acceptKeyword("IS"):
		isNot := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{Not: isNot, X: left}, nil
	}
	return left, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op BinOp
		switch {
		case p.accept(tkSymbol, "+"):
			op = OpAdd
		case p.accept(tkSymbol, "-"):
			op = OpSub
		case p.accept(tkSymbol, "||"):
			op = OpConcat
		default:
			return left, nil
		}
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op BinOp
		switch {
		case p.accept(tkSymbol, "*"):
			op = OpMul
		case p.accept(tkSymbol, "/"):
			op = OpDiv
		case p.accept(tkSymbol, "%"):
			op = OpMod
		default:
			return left, nil
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(tkSymbol, "-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold negation of numeric literals for cleaner plans.
		if lit, ok := x.(*Literal); ok && lit.Value.IsNumeric() {
			if lit.Value.Kind() == datum.KInt {
				return &Literal{Value: datum.NewInt(-lit.Value.Int())}, nil
			}
			return &Literal{Value: datum.NewFloat(-lit.Value.Float())}, nil
		}
		return &UnaryExpr{Op: '-', X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tkInt:
		p.advance()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad integer %q", t.text)
		}
		return &Literal{Value: datum.NewInt(n)}, nil
	case tkFloat:
		p.advance()
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errorf("bad float %q", t.text)
		}
		return &Literal{Value: datum.NewFloat(f)}, nil
	case tkString:
		p.advance()
		return &Literal{Value: datum.NewString(t.text)}, nil
	case tkKeyword:
		switch t.text {
		case "NULL":
			p.advance()
			return &Literal{Value: datum.Null}, nil
		case "TRUE":
			p.advance()
			return &Literal{Value: datum.NewBool(true)}, nil
		case "FALSE":
			p.advance()
			return &Literal{Value: datum.NewBool(false)}, nil
		case "CASE":
			return p.parseCase()
		case "EXISTS", "NOT":
			not := false
			if t.text == "NOT" {
				p.advance()
				not = true
			}
			if err := p.expectKeyword("EXISTS"); err != nil {
				return nil, err
			}
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return &ExistsExpr{Not: not, Query: sub}, nil
		}
		return nil, p.errorf("unexpected keyword %q in expression", t.text)
	case tkIdent:
		return p.parseIdentExpr()
	case tkSymbol:
		if t.text == "(" {
			p.advance()
			if p.peek().kind == tkKeyword && p.peek().text == "SELECT" {
				sub, err := p.parseSelect()
				if err != nil {
					return nil, err
				}
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
				return &SubqueryExpr{Query: sub}, nil
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errorf("unexpected token %q in expression", t.text)
}

func (p *parser) parseCase() (Expr, error) {
	if err := p.expectKeyword("CASE"); err != nil {
		return nil, err
	}
	ce := &CaseExpr{}
	for p.acceptKeyword("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		res, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Whens = append(ce.Whens, WhenClause{Cond: cond, Result: res})
	}
	if len(ce.Whens) == 0 {
		return nil, p.errorf("CASE requires at least one WHEN clause")
	}
	if p.acceptKeyword("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Else = e
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return ce, nil
}

func (p *parser) parseIdentExpr() (Expr, error) {
	name := p.advance().text
	// Function call.
	if p.peek().kind == tkSymbol && p.peek().text == "(" {
		p.advance()
		fc := &FuncCall{Name: stringsUpper(name)}
		fc.Distinct = p.acceptKeyword("DISTINCT")
		if p.accept(tkSymbol, "*") {
			fc.Star = true
		} else if !(p.peek().kind == tkSymbol && p.peek().text == ")") {
			for {
				if p.peek().kind == tkKeyword && p.peek().text == "SELECT" {
					sub, err := p.parseSelect()
					if err != nil {
						return nil, err
					}
					fc.Args = append(fc.Args, &SubqueryExpr{Query: sub})
				} else {
					e, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					fc.Args = append(fc.Args, e)
				}
				if !p.accept(tkSymbol, ",") {
					break
				}
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return fc, nil
	}
	// Qualified column.
	if p.accept(tkSymbol, ".") {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &ColumnRef{Table: name, Name: col}, nil
	}
	return &ColumnRef{Name: name}, nil
}

func stringsUpper(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'a' && c <= 'z' {
			b[i] = c - ('a' - 'A')
		}
	}
	return string(b)
}
