// Package catalog maintains the schema registry and the optimizer
// statistics of the substrate engine: which tables and indexes exist, how
// many rows each table has, and per-column distinct counts, min/max bounds
// and null fractions — the inputs to the cost model in internal/engine.
//
// The registry itself is safe for concurrent use: lookups, stats reads
// (including the analyze-on-demand path), and DDL are serialized by an
// internal RWMutex, so independent engine sessions sharing one catalog can
// plan concurrently (the serving layer's session pool relies on this).
// Row storage carries its own synchronization: tables publish immutable
// snapshots, so statistics computation never races concurrent DML.
//
// Statistics are derived from the segment metadata storage already
// maintains — zone maps give min/max/null counts per sealed segment and
// per-segment distinct sketches merge into exact distinct counts — so
// ANALYZE touches only the unsealed tail rows, not the whole heap.
package catalog

import (
	"fmt"
	"sort"
	"sync"

	"lantern/internal/datum"
	"lantern/internal/pager"
	"lantern/internal/storage"
)

// ColumnStats summarizes one column for the cost model.
type ColumnStats struct {
	Distinct     int     // number of distinct non-NULL values
	NullFraction float64 // fraction of rows that are NULL
	Min, Max     datum.D // bounds over non-NULL values (Null when table empty)
}

// TableStats summarizes one table.
type TableStats struct {
	RowCount int
	Columns  map[string]ColumnStats
}

// Catalog is the schema registry: tables plus their statistics, and —
// when opened over a data directory — the pager store that makes tables
// disk-backed and larger than memory.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*storage.Table
	stats  map[string]*TableStats
	store  *pager.Store // nil for a purely in-memory catalog
}

// New creates an empty in-memory catalog.
func New() *Catalog {
	return &Catalog{
		tables: make(map[string]*storage.Table),
		stats:  make(map[string]*TableStats),
	}
}

// Open creates a catalog backed by a data directory: existing tables are
// recovered from the directory's manifest (segment footers only — column
// payloads stay on disk until a scan faults them in), and every table
// created afterwards spills its sealed segments there. cfg sizes the
// shared buffer pool.
func Open(dir string, cfg pager.Config) (*Catalog, error) {
	store, err := pager.Open(dir, cfg)
	if err != nil {
		return nil, err
	}
	c := New()
	c.store = store
	man := store.Manifest()
	for _, name := range man.TableNames() {
		t, err := storage.OpenTable(name, store, man.Tables[name])
		if err != nil {
			return nil, fmt.Errorf("catalog: recovering %q: %w", name, err)
		}
		c.tables[name] = t
	}
	return c, nil
}

// Pager returns the catalog's pager store, or nil for an in-memory
// catalog. The serving layer reads buffer pool statistics through it.
func (c *Catalog) Pager() *pager.Store { return c.store }

// CreateTable registers a new table. It fails if the name is taken.
func (c *Catalog) CreateTable(name string, cols []storage.Column) (*storage.Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[name]; ok {
		return nil, fmt.Errorf("catalog: table %q already exists", name)
	}
	t := storage.NewTable(name, cols)
	if c.store != nil {
		if err := t.AttachStore(c.store); err != nil {
			return nil, fmt.Errorf("catalog: persisting %q: %w", name, err)
		}
	}
	c.tables[name] = t
	return t, nil
}

// DropTable removes a table (and, for a disk-backed catalog, its files);
// unknown names are a no-op.
func (c *Catalog) DropTable(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[name]; ok && c.store != nil {
		// Best-effort: a failed manifest commit leaves the files for the
		// next Open's orphan collection.
		_ = c.store.DropTable(name)
	}
	delete(c.tables, name)
	delete(c.stats, name)
}

// Table returns the named table, or an error naming the table.
func (c *Catalog) Table(name string) (*storage.Table, error) {
	c.mu.RLock()
	t, ok := c.tables[name]
	c.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("catalog: relation %q does not exist", name)
	}
	return t, nil
}

// HasTable reports whether the named table exists.
func (c *Catalog) HasTable(name string) bool {
	c.mu.RLock()
	_, ok := c.tables[name]
	c.mu.RUnlock()
	return ok
}

// TableNames lists all table names, sorted.
func (c *Catalog) TableNames() []string {
	c.mu.RLock()
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	c.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Analyze recomputes statistics for the named table (all tables when name
// is empty), mirroring PostgreSQL's ANALYZE.
func (c *Catalog) Analyze(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.analyzeLocked(name)
}

func (c *Catalog) analyzeLocked(name string) error {
	if name == "" {
		for n := range c.tables {
			if err := c.analyzeLocked(n); err != nil {
				return err
			}
		}
		return nil
	}
	t, ok := c.tables[name]
	if !ok {
		return fmt.Errorf("catalog: relation %q does not exist", name)
	}
	snap := t.Snapshot()
	total := snap.NumRows()
	tail := snap.Tail()
	ts := &TableStats{RowCount: total, Columns: make(map[string]ColumnStats, len(t.Columns))}
	for i, col := range t.Columns {
		seen := make(map[string]struct{})
		nulls := 0
		min, max := datum.Null, datum.Null
		// Sealed segments: fold precomputed zone maps and distinct sketches
		// instead of rescanning rows.
		for _, seg := range snap.Segments() {
			zm := seg.Zone(i)
			nulls += zm.NullCount
			if !zm.Min.IsNull() {
				if min.IsNull() || datum.Compare(zm.Min, min) < 0 {
					min = zm.Min
				}
				if max.IsNull() || datum.Compare(zm.Max, max) > 0 {
					max = zm.Max
				}
			}
			for _, k := range seg.DistinctKeys(i) {
				seen[k] = struct{}{}
			}
		}
		// Unsealed tail: the only rows that still need a scan.
		for _, r := range tail {
			v := r[i]
			if v.IsNull() {
				nulls++
				continue
			}
			seen[v.String()] = struct{}{}
			if min.IsNull() || datum.Compare(v, min) < 0 {
				min = v
			}
			if max.IsNull() || datum.Compare(v, max) > 0 {
				max = v
			}
		}
		cs := ColumnStats{Distinct: len(seen), Min: min, Max: max}
		if total > 0 {
			cs.NullFraction = float64(nulls) / float64(total)
		}
		ts.Columns[col.Name] = cs
	}
	c.stats[name] = ts
	return nil
}

// Stats returns the statistics for a table. When the table has never been
// analyzed (or rows were added since), it analyzes on demand so the
// optimizer always sees fresh numbers — acceptable for an in-memory
// teaching engine.
func (c *Catalog) Stats(name string) (*TableStats, error) {
	c.mu.RLock()
	t, ok := c.tables[name]
	s := c.stats[name]
	c.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("catalog: relation %q does not exist", name)
	}
	if s != nil && s.RowCount == t.RowCount() {
		return s, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	// Re-check under the write lock: a concurrent Stats call may have
	// analyzed the table while we were waiting.
	if s := c.stats[name]; s != nil {
		if t, ok := c.tables[name]; ok && s.RowCount == t.RowCount() {
			return s, nil
		}
	}
	if err := c.analyzeLocked(name); err != nil {
		return nil, err
	}
	return c.stats[name], nil
}

// ColumnStats returns statistics for table.column, analyzing on demand.
func (c *Catalog) ColumnStats(table, column string) (ColumnStats, error) {
	ts, err := c.Stats(table)
	if err != nil {
		return ColumnStats{}, err
	}
	cs, ok := ts.Columns[column]
	if !ok {
		return ColumnStats{}, fmt.Errorf("catalog: column %q of relation %q does not exist", column, table)
	}
	return cs, nil
}
