package catalog

import (
	"testing"

	"lantern/internal/datum"
	"lantern/internal/pager"
	"lantern/internal/storage"
)

func TestOpenRecoversCatalog(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, pager.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Pager() == nil {
		t.Fatal("disk-backed catalog has no pager")
	}
	tbl, err := c.CreateTable("users", []storage.Column{
		{Name: "id", Type: datum.KInt},
		{Name: "name", Type: datum.KString},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.SetSegmentCapacity(4); err != nil {
		t.Fatal(err)
	}
	rows := make([]storage.Row, 10)
	for i := range rows {
		rows[i] = storage.Row{datum.NewInt(int64(i)), datum.NewString("u")}
	}
	if err := tbl.InsertBatch(rows); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateIndex("id"); err != nil {
		t.Fatal(err)
	}

	c2, err := Open(dir, pager.Config{})
	if err != nil {
		t.Fatal(err)
	}
	re, err := c2.Table("users")
	if err != nil {
		t.Fatal(err)
	}
	if re.RowCount() != 10 {
		t.Fatalf("recovered %d rows", re.RowCount())
	}
	if re.Index("id") == nil {
		t.Fatal("index DDL not recovered")
	}
	// ANALYZE folds recovered zone maps and sketches without faulting
	// payloads (stats come from footer metadata plus the tail).
	misses := c2.Pager().Pool().Stats().Misses
	ts, err := c2.Stats("users")
	if err != nil {
		t.Fatal(err)
	}
	if ts.RowCount != 10 || ts.Columns["id"].Distinct != 10 {
		t.Fatalf("stats: %+v", ts)
	}
	if got := c2.Pager().Pool().Stats().Misses; got != misses {
		t.Fatalf("ANALYZE faulted payloads: %d -> %d", misses, got)
	}

	c2.DropTable("users")
	c3, err := Open(dir, pager.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if c3.HasTable("users") {
		t.Fatal("dropped table recovered")
	}
}
