package catalog

import (
	"testing"

	"lantern/internal/datum"
	"lantern/internal/storage"
)

func newCat(t *testing.T) (*Catalog, *storage.Table) {
	t.Helper()
	c := New()
	tbl, err := c.CreateTable("users", []storage.Column{
		{Name: "id", Type: datum.KInt},
		{Name: "age", Type: datum.KInt},
		{Name: "city", Type: datum.KString},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, tbl
}

func TestCreateAndLookup(t *testing.T) {
	c, _ := newCat(t)
	if !c.HasTable("users") {
		t.Error("HasTable(users) = false")
	}
	if _, err := c.Table("users"); err != nil {
		t.Error(err)
	}
	if _, err := c.Table("ghost"); err == nil {
		t.Error("expected error for missing table")
	}
	if _, err := c.CreateTable("users", nil); err == nil {
		t.Error("expected duplicate-table error")
	}
}

func TestTableNamesSorted(t *testing.T) {
	c, _ := newCat(t)
	_, _ = c.CreateTable("aaa", nil)
	got := c.TableNames()
	if len(got) != 2 || got[0] != "aaa" || got[1] != "users" {
		t.Errorf("TableNames = %v", got)
	}
}

func TestDropTable(t *testing.T) {
	c, _ := newCat(t)
	c.DropTable("users")
	if c.HasTable("users") {
		t.Error("table still present after drop")
	}
	c.DropTable("missing") // no-op
}

func TestAnalyzeStats(t *testing.T) {
	c, tbl := newCat(t)
	rows := []struct {
		id, age int64
		city    string
	}{
		{1, 20, "oslo"}, {2, 30, "oslo"}, {3, 30, "rome"}, {4, 40, "rome"},
	}
	for _, r := range rows {
		_ = tbl.Insert(storage.Row{datum.NewInt(r.id), datum.NewInt(r.age), datum.NewString(r.city)})
	}
	_ = tbl.Insert(storage.Row{datum.NewInt(5), datum.Null, datum.NewString("bern")})

	ts, err := c.Stats("users")
	if err != nil {
		t.Fatal(err)
	}
	if ts.RowCount != 5 {
		t.Errorf("rowcount = %d, want 5", ts.RowCount)
	}
	age := ts.Columns["age"]
	if age.Distinct != 3 {
		t.Errorf("age distinct = %d, want 3", age.Distinct)
	}
	if age.NullFraction != 0.2 {
		t.Errorf("age null fraction = %v, want 0.2", age.NullFraction)
	}
	if age.Min.Int() != 20 || age.Max.Int() != 40 {
		t.Errorf("age bounds = %v..%v", age.Min, age.Max)
	}
	city := ts.Columns["city"]
	if city.Distinct != 3 {
		t.Errorf("city distinct = %d, want 3", city.Distinct)
	}
}

func TestStatsRefreshOnGrowth(t *testing.T) {
	c, tbl := newCat(t)
	_ = tbl.Insert(storage.Row{datum.NewInt(1), datum.NewInt(10), datum.NewString("a")})
	ts, _ := c.Stats("users")
	if ts.RowCount != 1 {
		t.Fatalf("rowcount = %d", ts.RowCount)
	}
	_ = tbl.Insert(storage.Row{datum.NewInt(2), datum.NewInt(20), datum.NewString("b")})
	ts, _ = c.Stats("users")
	if ts.RowCount != 2 {
		t.Errorf("stats stale: rowcount = %d, want 2", ts.RowCount)
	}
}

func TestColumnStats(t *testing.T) {
	c, tbl := newCat(t)
	_ = tbl.Insert(storage.Row{datum.NewInt(1), datum.NewInt(10), datum.NewString("a")})
	cs, err := c.ColumnStats("users", "age")
	if err != nil {
		t.Fatal(err)
	}
	if cs.Distinct != 1 {
		t.Errorf("distinct = %d", cs.Distinct)
	}
	if _, err := c.ColumnStats("users", "zzz"); err == nil {
		t.Error("expected error for unknown column")
	}
	if _, err := c.ColumnStats("zzz", "age"); err == nil {
		t.Error("expected error for unknown table")
	}
}

func TestAnalyzeAll(t *testing.T) {
	c, _ := newCat(t)
	_, _ = c.CreateTable("extra", []storage.Column{{Name: "x", Type: datum.KInt}})
	if err := c.Analyze(""); err != nil {
		t.Fatal(err)
	}
	if err := c.Analyze("missing"); err == nil {
		t.Error("expected error analyzing missing table")
	}
}

func TestEmptyTableStats(t *testing.T) {
	c, _ := newCat(t)
	ts, err := c.Stats("users")
	if err != nil {
		t.Fatal(err)
	}
	cs := ts.Columns["id"]
	if !cs.Min.IsNull() || !cs.Max.IsNull() || cs.Distinct != 0 {
		t.Errorf("empty stats = %+v", cs)
	}
}
