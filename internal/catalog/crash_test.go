package catalog

// Crash-consistency tests for the disk-backed catalog. Two layers:
//
//   - Deterministic: the pager's pre-commit failpoint aborts every
//     mutation right before the manifest rename, simulating a kill after
//     the data files are written but before the commit point. The live
//     table must roll back, a reopen must serve the pre-crash snapshot,
//     and the stranded files must be garbage-collected.
//   - Real kill: the test re-execs itself as a child process that
//     append/update-loops against a shared data directory and is
//     SIGKILLed mid-flight. Whatever instant the kill lands on, the
//     reopened table must equal some committed snapshot — a contiguous
//     id prefix in whole batches, with the update phase uniform across
//     every row (a torn spill or rebuild would break one of the two).

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"lantern/internal/datum"
	"lantern/internal/pager"
	"lantern/internal/storage"
)

// dumpRows renders a table's full snapshot in table order.
func dumpRows(t *testing.T, tbl *storage.Table) []string {
	t.Helper()
	rows, err := tbl.Snapshot().FetchAll()
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(rows))
	for i, r := range rows {
		parts := make([]string, len(r))
		for j, v := range r {
			parts[j] = v.String()
		}
		out[i] = strings.Join(parts, "|")
	}
	return out
}

func segmentFiles(t *testing.T, dir, table string) []string {
	t.Helper()
	ents, err := os.ReadDir(filepath.Join(dir, table))
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".lseg") {
			files = append(files, e.Name())
		}
	}
	return files
}

// TestCrashBeforeCommitRecoversPriorSnapshot kills (via the failpoint)
// every kind of table mutation right before its manifest commit:
// mid-spill (InsertBatch past the seal point), mid-rebuild (Update,
// Delete) and index DDL. Each must fail cleanly, leave the live table on
// the pre-crash snapshot, and a reopened catalog must serve that same
// snapshot with the stranded segment files garbage-collected.
func TestCrashBeforeCommitRecoversPriorSnapshot(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, pager.Config{})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := c.CreateTable("acct", []storage.Column{
		{Name: "id", Type: datum.KInt},
		{Name: "bal", Type: datum.KInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.SetSegmentCapacity(4); err != nil {
		t.Fatal(err)
	}
	rows := make([]storage.Row, 12)
	for i := range rows {
		rows[i] = storage.Row{datum.NewInt(int64(i)), datum.NewInt(int64(100 + i))}
	}
	if err := tbl.InsertBatch(rows); err != nil {
		t.Fatal(err)
	}
	want := dumpRows(t, tbl)
	liveSegs := segmentFiles(t, dir, "acct")

	pager.SetFailBeforeCommit(func() error { return fmt.Errorf("injected crash") })
	defer pager.SetFailBeforeCommit(nil)

	// Mid-spill: the batch seals and spills two more segments, then the
	// commit "crashes" — the new files are on disk, the manifest is not.
	more := make([]storage.Row, 8)
	for i := range more {
		more[i] = storage.Row{datum.NewInt(int64(100 + i)), datum.NewInt(0)}
	}
	if err := tbl.InsertBatch(more); err == nil {
		t.Fatal("InsertBatch survived the commit failpoint")
	}
	// Mid-rebuild, both rewrite paths.
	if _, err := tbl.Update(func(r storage.Row) bool {
		r[1] = datum.NewInt(r[1].Int() + 1)
		return true
	}); err == nil {
		t.Fatal("Update survived the commit failpoint")
	}
	if _, err := tbl.Delete(func(r storage.Row) bool { return r[0].Int() < 6 }); err == nil {
		t.Fatal("Delete survived the commit failpoint")
	}
	if err := tbl.CreateIndex("id"); err == nil {
		t.Fatal("CreateIndex survived the commit failpoint")
	}

	// The live table rolled every mutation back.
	if got := dumpRows(t, tbl); !equalStrings(got, want) {
		t.Fatalf("live table diverged after failed mutations:\n%v\nwant\n%v", got, want)
	}
	pager.SetFailBeforeCommit(nil)

	// The failed mutations stranded segment files past the committed set.
	if got := segmentFiles(t, dir, "acct"); len(got) <= len(liveSegs) {
		t.Fatalf("expected stranded segment files, have %d (committed %d)", len(got), len(liveSegs))
	}

	// Reopen: the recovered table serves the pre-crash snapshot, and the
	// stranded files are gone.
	c2, err := Open(dir, pager.Config{})
	if err != nil {
		t.Fatal(err)
	}
	re, err := c2.Table("acct")
	if err != nil {
		t.Fatal(err)
	}
	if got := dumpRows(t, re); !equalStrings(got, want) {
		t.Fatalf("recovered table diverged:\n%v\nwant\n%v", got, want)
	}
	if re.Index("id") != nil {
		t.Fatal("failed CreateIndex left durable index DDL")
	}
	if got := segmentFiles(t, dir, "acct"); !equalStrings(got, liveSegs) {
		t.Fatalf("orphan GC left %v, want %v", got, liveSegs)
	}

	// And the recovered table accepts the same mutations cleanly now.
	if _, err := re.Update(func(r storage.Row) bool {
		r[1] = datum.NewInt(r[1].Int() + 1)
		return true
	}); err != nil {
		t.Fatal(err)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

const (
	crashDirEnv  = "LANTERN_CRASH_DIR"
	crashBatch   = 32
	crashTable   = "wal"
	crashSegCap  = 64
	crashMaxIter = 5000 // child self-limit; the parent kills long before
)

// TestKillMidLoadRecovers re-execs the test binary as a child that
// batch-inserts and phase-updates a disk-backed table in a tight loop,
// SIGKILLs it mid-flight, then reopens the directory and checks the
// recovered table equals a committed snapshot: ids form a contiguous
// prefix in whole batches, and bal-id is the same phase constant on
// every row. A second round reopens the same directory, continues
// writing, and is killed again — recovery must also leave the table
// writable.
func TestKillMidLoadRecovers(t *testing.T) {
	if dir := os.Getenv(crashDirEnv); dir != "" {
		crashChild(dir)
		return
	}
	if testing.Short() {
		t.Skip("subprocess kill test")
	}
	dir := t.TempDir()
	for round := 0; round < 2; round++ {
		committed := runAndKillChild(t, dir)

		c, err := Open(dir, pager.Config{})
		if err != nil {
			t.Fatalf("round %d: reopen after kill: %v", round, err)
		}
		tbl, err := c.Table(crashTable)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		n := tbl.RowCount()
		if n%crashBatch != 0 {
			t.Fatalf("round %d: recovered %d rows, not whole batches of %d", round, n, crashBatch)
		}
		if n < committed {
			t.Fatalf("round %d: recovered %d rows, child reported %d committed", round, n, committed)
		}
		rows, err := tbl.Snapshot().FetchAll()
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		var phase int64 = -1
		for i, r := range rows {
			if r[0].Int() != int64(i) {
				t.Fatalf("round %d: row %d has id %d — not a contiguous prefix", round, i, r[0].Int())
			}
			d := r[1].Int() - r[0].Int()
			if phase == -1 {
				phase = d
			} else if d != phase {
				t.Fatalf("round %d: row %d phase %d, row 0 phase %d — torn update", round, i, d, phase)
			}
		}
	}
}

// runAndKillChild starts the child, lets it commit for a little while,
// SIGKILLs it, and returns the highest committed row count it reported.
func runAndKillChild(t *testing.T, dir string) int {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestKillMidLoadRecovers$")
	cmd.Env = append(os.Environ(), crashDirEnv+"="+dir)
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	var committed atomic.Int64
	first := make(chan struct{})
	go func() {
		sc := bufio.NewScanner(out)
		once := false
		for sc.Scan() {
			var n int
			if _, err := fmt.Sscanf(sc.Text(), "committed %d", &n); err == nil {
				committed.Store(int64(n))
				if !once {
					once = true
					close(first)
				}
			}
		}
	}()
	select {
	case <-first:
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("child never committed a batch")
	}
	time.Sleep(150 * time.Millisecond) // let commits, spills and rebuilds pile up
	cmd.Process.Kill()
	cmd.Wait()
	return int(committed.Load())
}

// crashChild is the re-exec'd writer: it opens (or recovers) the shared
// directory and loops InsertBatch with a phase-bumping Update every few
// batches, reporting each committed row count on stdout. It runs until
// killed.
func crashChild(dir string) {
	c, err := Open(dir, pager.Config{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "child: %v\n", err)
		os.Exit(1)
	}
	var tbl *storage.Table
	if c.HasTable(crashTable) {
		tbl, _ = c.Table(crashTable)
	} else {
		tbl, err = c.CreateTable(crashTable, []storage.Column{
			{Name: "id", Type: datum.KInt},
			{Name: "bal", Type: datum.KInt},
		})
		if err == nil {
			err = tbl.SetSegmentCapacity(crashSegCap)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "child: %v\n", err)
			os.Exit(1)
		}
	}
	next := int64(tbl.RowCount())
	phase := int64(0)
	if next > 0 {
		// Recover the phase from any row: bal - id is uniform.
		r, err := tbl.Snapshot().FetchRow(0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "child: %v\n", err)
			os.Exit(1)
		}
		phase = r[1].Int() - r[0].Int()
	}
	for iter := 0; iter < crashMaxIter; iter++ {
		rows := make([]storage.Row, crashBatch)
		for i := range rows {
			id := next + int64(i)
			rows[i] = storage.Row{datum.NewInt(id), datum.NewInt(id + phase)}
		}
		if err := tbl.InsertBatch(rows); err != nil {
			fmt.Fprintf(os.Stderr, "child: insert: %v\n", err)
			os.Exit(1)
		}
		next += crashBatch
		fmt.Printf("committed %d\n", next)
		if iter%4 == 3 {
			phase++
			if _, err := tbl.Update(func(r storage.Row) bool {
				r[1] = datum.NewInt(r[0].Int() + phase)
				return true
			}); err != nil {
				fmt.Fprintf(os.Stderr, "child: update: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("committed %d\n", next)
		}
	}
	os.Exit(0)
}
