package storage

import (
	"errors"
	"fmt"
	"os"
	"testing"

	"lantern/internal/datum"
	"lantern/internal/pager"
)

func diskTable(t *testing.T, segCap int) (*Table, *pager.Store, string) {
	t.Helper()
	dir := t.TempDir()
	store, err := pager.Open(dir, pager.Config{})
	if err != nil {
		t.Fatal(err)
	}
	tbl := NewTable("items", []Column{
		{Name: "id", Type: datum.KInt},
		{Name: "name", Type: datum.KString},
		{Name: "price", Type: datum.KFloat},
		{Name: "live", Type: datum.KBool},
	})
	if err := tbl.SetSegmentCapacity(segCap); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AttachStore(store); err != nil {
		t.Fatal(err)
	}
	return tbl, store, dir
}

func itemRow(i int64) Row {
	name := datum.NewString(fmt.Sprintf("item-%03d", i))
	if i%7 == 0 {
		name = datum.Null
	}
	return Row{datum.NewInt(i), name, datum.NewFloat(float64(i) / 2), datum.NewBool(i%2 == 0)}
}

func fillItems(t *testing.T, tbl *Table, n int64) {
	t.Helper()
	rows := make([]Row, 0, n)
	for i := int64(0); i < n; i++ {
		rows = append(rows, itemRow(i))
	}
	if err := tbl.InsertBatch(rows); err != nil {
		t.Fatal(err)
	}
}

func reopenItems(t *testing.T, dir string, cfg pager.Config) (*Table, *pager.Store) {
	t.Helper()
	store, err := pager.Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tm, ok := store.Manifest().Tables["items"]
	if !ok {
		t.Fatal("items missing from manifest")
	}
	tbl, err := OpenTable("items", store, tm)
	if err != nil {
		t.Fatal(err)
	}
	return tbl, store
}

func TestSpillSealAndFault(t *testing.T) {
	tbl, store, _ := diskTable(t, 8)
	fillItems(t, tbl, 20) // 2 sealed segments + 4 tail rows

	snap := tbl.Snapshot()
	segs := snap.Segments()
	if len(segs) != 2 {
		t.Fatalf("segments: %d", len(segs))
	}
	for i, seg := range segs {
		if !seg.Spilled() {
			t.Fatalf("segment %d not spilled", i)
		}
	}
	// Metadata stays resident: zone checks must not fault.
	before := store.Pool().Stats()
	if zm := segs[0].Zone(0); zm.Min.Int() != 0 || zm.Max.Int() != 7 {
		t.Fatalf("zone: %v", zm)
	}
	if after := store.Pool().Stats(); after.Misses != before.Misses {
		t.Fatal("zone access faulted the payload in")
	}
	// Faulting reconstructs rows and typed vectors exactly.
	sd, err := segs[1].Load()
	if err != nil {
		t.Fatal(err)
	}
	defer sd.Release()
	rows := sd.Rows()
	if len(rows) != 8 || rows[0][0].Int() != 8 {
		t.Fatalf("rows: %v", rows[0])
	}
	if rows[6][1].IsNull() != (14%7 == 0) {
		t.Fatal("null name lost")
	}
	if vec := sd.Col(2); vec.Kind != datum.KFloat || vec.Floats[0] != 4 {
		t.Fatalf("float vector: %+v", vec)
	}
	if vec := sd.Col(3); vec.Kind != datum.KNull { // bool → tagged fallback
		t.Fatalf("bool vector kind: %v", vec.Kind)
	}
	if rows[1][3].Bool() != (9%2 == 0) {
		t.Fatal("bool value lost")
	}
	if got := snap.Row(13); got[0].Int() != 13 {
		t.Fatalf("Row(13): %v", got)
	}
}

func TestReopenRecoversTable(t *testing.T) {
	tbl, _, dir := diskTable(t, 8)
	fillItems(t, tbl, 20)
	if err := tbl.CreateIndex("id"); err != nil {
		t.Fatal(err)
	}
	want := tbl.AllRows()

	re, store2 := reopenItems(t, dir, pager.Config{})
	if re.RowCount() != 20 {
		t.Fatalf("recovered %d rows", re.RowCount())
	}
	got := re.AllRows()
	for i := range want {
		for c := range want[i] {
			if datum.Compare(want[i][c], got[i][c]) != 0 {
				t.Fatalf("row %d col %d: %v vs %v", i, c, got[i][c], want[i][c])
			}
		}
	}
	// Indexes rebuilt from data.
	ix := re.Index("id")
	if ix == nil || ix.Len() != 20 {
		t.Fatalf("index not recovered: %v", ix)
	}
	if ids := ix.Lookup(datum.NewInt(13)); len(ids) != 1 || ids[0] != 13 {
		t.Fatalf("lookup: %v", ids)
	}
	// Boot reads footers plus one streaming pass for the index rebuild —
	// each segment payload faults exactly once.
	if st := store2.Pool().Stats(); st.Misses != 2 {
		t.Fatalf("boot faults: %+v", st)
	}
	// Inserts keep working against the recovered table.
	if err := re.Insert(itemRow(20)); err != nil {
		t.Fatal(err)
	}
	if re.RowCount() != 21 {
		t.Fatalf("rows after insert: %d", re.RowCount())
	}
}

func TestReopenWithoutIndexesIsFooterOnly(t *testing.T) {
	tbl, _, dir := diskTable(t, 8)
	fillItems(t, tbl, 20)
	re, store2 := reopenItems(t, dir, pager.Config{})
	if re.RowCount() != 20 {
		t.Fatalf("recovered %d rows", re.RowCount())
	}
	// No indexes to rebuild: recovery reads only footers and the tail —
	// zero payload faults until a scan needs one.
	if st := store2.Pool().Stats(); st.Misses != 0 {
		t.Fatalf("boot faulted payloads: %+v", st)
	}
}

func TestStreamingDeleteAndUpdateOnDisk(t *testing.T) {
	tbl, _, dir := diskTable(t, 8)
	fillItems(t, tbl, 32) // 4 segments, empty tail
	if err := tbl.CreateIndex("id"); err != nil {
		t.Fatal(err)
	}

	n, err := tbl.Delete(func(r Row) bool { return r[0].Int()%4 == 0 })
	if err != nil {
		t.Fatal(err)
	}
	if n != 8 || tbl.RowCount() != 24 {
		t.Fatalf("deleted %d, left %d", n, tbl.RowCount())
	}
	n, err = tbl.Update(func(r Row) bool {
		if r[0].Int() == 5 {
			r[1] = datum.NewString("renamed")
			return true
		}
		return false
	})
	if err != nil || n != 1 {
		t.Fatalf("update: n=%d err=%v", n, err)
	}

	// The rebuilt state survives a reopen.
	re, _ := reopenItems(t, dir, pager.Config{})
	if re.RowCount() != 24 {
		t.Fatalf("recovered %d rows", re.RowCount())
	}
	found := false
	for _, r := range re.AllRows() {
		if r[0].Int()%4 == 0 {
			t.Fatalf("deleted row survived: %v", r)
		}
		if r[0].Int() == 5 && !r[1].IsNull() && r[1].Str() == "renamed" {
			found = true
		}
	}
	if !found {
		t.Fatal("updated row lost")
	}
	if ix := re.Index("id"); ix.Len() != 24 {
		t.Fatalf("index len: %d", ix.Len())
	}
}

func TestUpdateReusesCleanSegments(t *testing.T) {
	tbl, store, _ := diskTable(t, 8)
	fillItems(t, tbl, 32)
	before := tbl.Snapshot().Segments()

	// Touch only rows in the last segment: earlier segment files must be
	// reused, not rewritten.
	n, err := tbl.Update(func(r Row) bool {
		if r[0].Int() >= 24 {
			r[2] = datum.NewFloat(-1)
			return true
		}
		return false
	})
	if err != nil || n != 8 {
		t.Fatalf("update: n=%d err=%v", n, err)
	}
	after := tbl.Snapshot().Segments()
	for i := 0; i < 3; i++ {
		if before[i] != after[i] {
			t.Fatalf("clean segment %d was rewritten", i)
		}
	}
	if before[3] == after[3] {
		t.Fatal("dirty segment was not rewritten")
	}
	_ = store
}

func TestCorruptSegmentSurfacesChecksumError(t *testing.T) {
	tbl, store, _ := diskTable(t, 8)
	fillItems(t, tbl, 16)
	seg := tbl.Snapshot().Segments()[0]

	// Corrupt a payload byte on disk (the footer region stays intact).
	file := store.Path(pager.SegmentFileName("items", 0))
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	data[20] ^= 0xff
	if err := os.WriteFile(file, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := seg.Load(); !errors.Is(err, pager.ErrChecksum) {
		t.Fatalf("Load on corrupt segment: %v", err)
	}
	if _, err := tbl.Snapshot().FetchRow(0); !errors.Is(err, pager.ErrChecksum) {
		t.Fatalf("FetchRow on corrupt segment: %v", err)
	}
}

func TestConstrainedPoolServesAllData(t *testing.T) {
	dir := t.TempDir()
	store, err := pager.Open(dir, pager.Config{BufferPoolBytes: 1}) // nothing stays cached
	if err != nil {
		t.Fatal(err)
	}
	tbl := NewTable("items", []Column{{Name: "id", Type: datum.KInt}})
	if err := tbl.SetSegmentCapacity(4); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AttachStore(store); err != nil {
		t.Fatal(err)
	}
	rows := make([]Row, 64)
	for i := range rows {
		rows[i] = Row{datum.NewInt(int64(i))}
	}
	if err := tbl.InsertBatch(rows); err != nil {
		t.Fatal(err)
	}
	sum := int64(0)
	snap := tbl.Snapshot()
	for _, seg := range snap.Segments() {
		sd, err := seg.Load()
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range sd.Rows() {
			sum += r[0].Int()
		}
		sd.Release()
	}
	if sum != 64*63/2 {
		t.Fatalf("sum: %d", sum)
	}
	st := store.Pool().Stats()
	if st.Evictions == 0 || st.Bytes > 4096 {
		t.Fatalf("pool never evicted under pressure: %+v", st)
	}
}
