package storage

import (
	"sort"

	"lantern/internal/datum"
)

// DefaultSegmentRows is the number of rows a sealed column segment holds.
// The mutable tail seals into a segment when it reaches this size; the
// value matches the executor's morsel granularity so one morsel is one
// segment and zone-map pruning composes with parallel dispatch for free.
const DefaultSegmentRows = 4096

// ZoneMap is the lightweight per-segment metadata of one column: the
// bounds and null count the executor consults to skip a whole segment
// without touching its data, and the catalog folds into table statistics
// without rescanning the heap.
type ZoneMap struct {
	// Min and Max bound the non-NULL values of the column within the
	// segment under datum.Compare's total order. Both are the NULL datum
	// when the segment holds no non-NULL value for the column.
	Min, Max datum.D
	// NullCount is the number of NULL values in the segment's column.
	NullCount int
}

// ColVec is one column of a sealed segment as a typed vector: the payloads
// decoded out of their datum headers into a flat array of the column's
// declared kind, plus a null bitmap. Predicate loops over Ints/Floats/Strs
// touch one contiguous array instead of chasing a row header per row.
// Kind is KNull when the column has no typed vector (unsupported or mixed
// kinds); callers then fall back to the segment's row-major view.
type ColVec struct {
	Kind   datum.Kind
	Ints   []int64
	Floats []float64
	Strs   []string
	nulls  []uint64 // 1 bit per row, set = NULL; nil when no NULLs
}

// Null reports whether row i of the vector is NULL.
func (v *ColVec) Null(i int) bool {
	return v.nulls != nil && v.nulls[i>>6]&(1<<(uint(i)&63)) != 0
}

// HasNulls reports whether any row of the vector is NULL.
func (v *ColVec) HasNulls() bool { return v.nulls != nil }

// Segment is an immutable run of table rows in column-major form: one
// typed vector and one zone map per column, plus the row-major view the
// executors late-materialize surviving rows from. Segments are sealed
// once and never mutated, which is what makes concurrent scans safe
// against DML — writers only ever swap in new segments.
//
// A segment is either resident (rows/cols populated) or spilled (payload
// in a segment file, src set; see spill.go). Zone maps, distinct
// sketches and the row count are always resident — pruning and ANALYZE
// never fault a spilled payload in. Payload access on a spilled segment
// goes through Load; the legacy Rows/Col accessors fault transparently
// and panic on I/O or checksum errors.
type Segment struct {
	nrows  int
	rows   []Row
	cols   []ColVec
	zones  []ZoneMap
	sketch [][]string // per column: sorted distinct non-NULL value keys
	src    *segSource // non-nil once spilled; payload lives on disk
	view   SegData    // static Load view for resident segments (no pin)
}

// NumRows returns the number of rows in the segment.
func (s *Segment) NumRows() int { return s.nrows }

// Rows returns the segment's row-major view, faulting a spilled payload
// in (and panicking on a read error — use Load to handle errors). The
// returned rows are immutable; callers may retain them indefinitely.
func (s *Segment) Rows() []Row {
	if s.src == nil {
		return s.rows
	}
	d := s.mustLoad()
	defer d.Release()
	return d.rows
}

// Col returns the typed vector of column i, faulting a spilled payload
// in (and panicking on a read error — use Load to handle errors).
func (s *Segment) Col(i int) *ColVec {
	if s.src == nil {
		return &s.cols[i]
	}
	d := s.mustLoad()
	defer d.Release()
	return &d.cols[i]
}

// Zone returns the zone map of column i.
func (s *Segment) Zone(i int) ZoneMap { return s.zones[i] }

// DistinctKeys returns the sorted distinct non-NULL value keys
// (datum String() renderings) of column i — the per-segment distinct
// sketch ANALYZE merges into table statistics. Exact, since a segment
// holds at most its row count of distinct values.
func (s *Segment) DistinctKeys(i int) []string { return s.sketch[i] }

// sealSegment builds a segment from a full run of validated rows. The rows
// slice is adopted as the segment's row-major view and must not be written
// afterwards.
func sealSegment(rows []Row, cols []Column) *Segment {
	s := &Segment{
		nrows:  len(rows),
		rows:   rows,
		cols:   make([]ColVec, len(cols)),
		zones:  make([]ZoneMap, len(cols)),
		sketch: make([][]string, len(cols)),
	}
	for ci := range cols {
		s.sealColumn(ci, cols[ci].Type)
	}
	s.view = SegData{rows: s.rows, cols: s.cols}
	return s
}

func (s *Segment) sealColumn(ci int, kind datum.Kind) {
	n := len(s.rows)
	vec := &s.cols[ci]
	zm := ZoneMap{Min: datum.Null, Max: datum.Null}
	distinct := make(map[string]struct{})

	// Insert validation coerces every value to the declared column kind,
	// so a typed vector of that kind can hold the whole column; a stray
	// mismatched kind (possible only through historical data) downgrades
	// the column to the row-major fallback.
	typed := true
	switch kind {
	case datum.KInt:
		vec.Ints = make([]int64, n)
	case datum.KFloat:
		vec.Floats = make([]float64, n)
	case datum.KString:
		vec.Strs = make([]string, n)
	default:
		typed = false
	}
	for i, r := range s.rows {
		v := r[ci]
		if v.IsNull() {
			zm.NullCount++
			if vec.nulls == nil {
				vec.nulls = make([]uint64, (n+63)/64)
			}
			vec.nulls[i>>6] |= 1 << (uint(i) & 63)
			continue
		}
		if zm.Min.IsNull() || datum.Compare(v, zm.Min) < 0 {
			zm.Min = v
		}
		if zm.Max.IsNull() || datum.Compare(v, zm.Max) > 0 {
			zm.Max = v
		}
		distinct[v.String()] = struct{}{}
		if !typed {
			continue
		}
		if v.Kind() != kind {
			typed = false
			continue
		}
		switch kind {
		case datum.KInt:
			vec.Ints[i] = v.Int()
		case datum.KFloat:
			vec.Floats[i] = v.Float()
		case datum.KString:
			vec.Strs[i] = v.Str()
		}
	}
	if typed {
		vec.Kind = kind
	} else {
		vec.Kind = datum.KNull
		vec.Ints, vec.Floats, vec.Strs = nil, nil, nil
	}
	s.zones[ci] = zm
	keys := make([]string, 0, len(distinct))
	for k := range distinct {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s.sketch[ci] = keys
}
