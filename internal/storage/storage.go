// Package storage implements the in-memory row store used by the substrate
// engine: heap tables of typed rows plus ordered secondary indexes. It is
// deliberately simple — the engine needs a substrate that produces realistic
// query plans, not a durable storage manager — but access paths are real:
// sequential scans walk the heap, index scans binary-search the index.
package storage

import (
	"fmt"
	"sort"

	"lantern/internal/datum"
)

// Column describes one column of a table.
type Column struct {
	Name string
	Type datum.Kind
}

// Row is a single tuple; the slice is indexed by column position.
type Row []datum.D

// Clone returns a copy of the row that shares no storage with the original.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Table is an append-only heap of rows with optional secondary indexes.
type Table struct {
	Name    string
	Columns []Column
	Rows    []Row

	indexes map[string]*Index // keyed by column name
	colPos  map[string]int
}

// NewTable creates an empty table with the given schema.
func NewTable(name string, cols []Column) *Table {
	t := &Table{
		Name:    name,
		Columns: cols,
		indexes: make(map[string]*Index),
		colPos:  make(map[string]int, len(cols)),
	}
	for i, c := range cols {
		t.colPos[c.Name] = i
	}
	return t
}

// ColumnIndex returns the position of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	if i, ok := t.colPos[name]; ok {
		return i
	}
	return -1
}

// Insert appends a row, coercing integer values into float columns and
// validating arity and kinds. Indexes are maintained.
func (t *Table) Insert(r Row) error {
	if len(r) != len(t.Columns) {
		return fmt.Errorf("storage: table %s: inserting %d values into %d columns", t.Name, len(r), len(t.Columns))
	}
	row := r.Clone()
	for i, v := range row {
		if v.IsNull() {
			continue
		}
		want := t.Columns[i].Type
		if v.Kind() == want {
			continue
		}
		if want == datum.KFloat && v.Kind() == datum.KInt {
			row[i] = datum.NewFloat(float64(v.Int()))
			continue
		}
		if want == datum.KInt && v.Kind() == datum.KFloat && v.Float() == float64(int64(v.Float())) {
			row[i] = datum.NewInt(int64(v.Float()))
			continue
		}
		return fmt.Errorf("storage: table %s column %s: cannot store %s into %s",
			t.Name, t.Columns[i].Name, v.Kind(), want)
	}
	rowID := len(t.Rows)
	t.Rows = append(t.Rows, row)
	for col, idx := range t.indexes {
		idx.add(row[t.colPos[col]], rowID)
	}
	return nil
}

// Delete removes all rows for which keep returns false and rebuilds the
// indexes. It returns the number of rows removed.
func (t *Table) Delete(remove func(Row) bool) int {
	kept := t.Rows[:0]
	n := 0
	for _, r := range t.Rows {
		if remove(r) {
			n++
		} else {
			kept = append(kept, r)
		}
	}
	t.Rows = kept
	t.rebuildIndexes()
	return n
}

// Update applies fn to every row in place; fn returns true when it modified
// the row. Indexes are rebuilt if anything changed. It returns the number of
// modified rows.
func (t *Table) Update(fn func(Row) bool) int {
	n := 0
	for _, r := range t.Rows {
		if fn(r) {
			n++
		}
	}
	if n > 0 {
		t.rebuildIndexes()
	}
	return n
}

func (t *Table) rebuildIndexes() {
	for col := range t.indexes {
		t.buildIndex(col)
	}
}

// CreateIndex builds an ordered index on the named column. Creating an index
// that already exists is a no-op.
func (t *Table) CreateIndex(col string) error {
	if _, ok := t.colPos[col]; !ok {
		return fmt.Errorf("storage: table %s has no column %s", t.Name, col)
	}
	if _, ok := t.indexes[col]; ok {
		return nil
	}
	t.buildIndex(col)
	return nil
}

func (t *Table) buildIndex(col string) {
	pos := t.colPos[col]
	idx := &Index{Column: col}
	idx.entries = make([]indexEntry, 0, len(t.Rows))
	for i, r := range t.Rows {
		idx.entries = append(idx.entries, indexEntry{key: r[pos], rowID: i})
	}
	sort.SliceStable(idx.entries, func(a, b int) bool {
		return datum.Compare(idx.entries[a].key, idx.entries[b].key) < 0
	})
	t.indexes[col] = idx
}

// Index returns the index on col, or nil.
func (t *Table) Index(col string) *Index { return t.indexes[col] }

// IndexedColumns lists the columns that currently carry an index, sorted.
func (t *Table) IndexedColumns() []string {
	out := make([]string, 0, len(t.indexes))
	for c := range t.indexes {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Index is an ordered secondary index: (key, rowID) pairs sorted by key.
type Index struct {
	Column  string
	entries []indexEntry
}

type indexEntry struct {
	key   datum.D
	rowID int
}

// add inserts a single entry keeping the order; used for incremental
// maintenance on Insert.
func (ix *Index) add(key datum.D, rowID int) {
	pos := sort.Search(len(ix.entries), func(i int) bool {
		return datum.Compare(ix.entries[i].key, key) > 0
	})
	ix.entries = append(ix.entries, indexEntry{})
	copy(ix.entries[pos+1:], ix.entries[pos:])
	ix.entries[pos] = indexEntry{key: key, rowID: rowID}
}

// Len reports the number of entries.
func (ix *Index) Len() int { return len(ix.entries) }

// Lookup returns the rowIDs whose key equals k, in index order.
func (ix *Index) Lookup(k datum.D) []int {
	lo := sort.Search(len(ix.entries), func(i int) bool {
		return datum.Compare(ix.entries[i].key, k) >= 0
	})
	var out []int
	for i := lo; i < len(ix.entries) && datum.Compare(ix.entries[i].key, k) == 0; i++ {
		out = append(out, ix.entries[i].rowID)
	}
	return out
}

// Range returns the rowIDs with lo <= key <= hi (either bound may be the
// NULL datum to mean unbounded on that side), in key order. NULL keys are
// never returned.
func (ix *Index) Range(lo, hi datum.D, includeLo, includeHi bool) []int {
	var out []int
	start := 0
	if !lo.IsNull() {
		if includeLo {
			start = sort.Search(len(ix.entries), func(i int) bool {
				return datum.Compare(ix.entries[i].key, lo) >= 0
			})
		} else {
			start = sort.Search(len(ix.entries), func(i int) bool {
				return datum.Compare(ix.entries[i].key, lo) > 0
			})
		}
	}
	for i := start; i < len(ix.entries); i++ {
		k := ix.entries[i].key
		if k.IsNull() {
			continue
		}
		if !hi.IsNull() {
			c := datum.Compare(k, hi)
			if c > 0 || (c == 0 && !includeHi) {
				break
			}
		}
		out = append(out, ix.entries[i].rowID)
	}
	return out
}
