// Package storage implements the in-memory column-segment store used by
// the substrate engine. A table is a sequence of immutable column-major
// segments (segment.go: one typed vector per column, a null bitmap, and
// per-column zone maps) followed by a mutable row-major tail that seals
// into a segment when it reaches the segment capacity. Access paths are
// real: sequential scans walk segments and can skip whole segments via
// zone maps, index scans binary-search ordered secondary indexes.
//
// Concurrency contract: readers take a Snapshot and never block or race
// against writers. Sealed segments are immutable; the tail publishes its
// length with an atomic store after the row slot is written, so an
// in-flight scan sees a consistent prefix; Update, Delete and CreateIndex
// rebuild into fresh segments and swap the whole table state with one
// atomic pointer store. Writers serialize among themselves on an internal
// mutex. DML therefore needs no external synchronization against readers —
// a scan started before a mutation simply keeps reading the snapshot it
// started on.
package storage

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"lantern/internal/datum"
	"lantern/internal/pager"
)

// Column describes one column of a table.
type Column struct {
	Name string
	Type datum.Kind
}

// Row is a single tuple; the slice is indexed by column position.
type Row []datum.D

// Clone returns a copy of the row that shares no storage with the original.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Table is an append-only table of sealed column segments plus a mutable
// row-major tail, with optional ordered secondary indexes.
type Table struct {
	Name    string
	Columns []Column

	segCap int
	colPos map[string]int

	// Disk backing (spill.go); nil for a purely in-memory table. All
	// fields below are guarded by mu.
	store     *pager.Store
	nextSeg   uint64 // next unused segment file id
	tailEpoch uint64 // current tail file epoch
	tailFile  string // manifest-relative tail file name, "" when empty

	mu   sync.Mutex // serializes writers; readers go through data only
	data atomic.Pointer[tableData]
}

// tableData is one immutable-once-published version of the table's
// contents. Every sealed segment holds exactly segCap rows, so a global
// row ordinal resolves to (segment, offset) in O(1).
type tableData struct {
	segs    []*Segment
	sealed  int // total rows across segs
	tail    *tailBlock
	indexes map[string]*Index // keyed by column name
}

// tailBlock is the mutable tail: slots are written in place (only ever at
// positions >= the published length, under the writer mutex) and made
// visible to readers by the atomic length store.
type tailBlock struct {
	rows []Row // len == cap == segCap
	n    atomic.Int64
}

func newTailBlock(cap int) *tailBlock { return &tailBlock{rows: make([]Row, cap)} }

// NewTable creates an empty table with the given schema and the default
// segment capacity.
func NewTable(name string, cols []Column) *Table {
	t := &Table{
		Name:    name,
		Columns: cols,
		segCap:  DefaultSegmentRows,
		colPos:  make(map[string]int, len(cols)),
	}
	for i, c := range cols {
		t.colPos[c.Name] = i
	}
	t.data.Store(&tableData{tail: newTailBlock(t.segCap)})
	return t
}

// SetSegmentCapacity overrides the rows-per-segment capacity; it exists so
// tests can exercise multi-segment layouts without millions of rows. It
// fails once the table holds rows.
func (t *Table) SetSegmentCapacity(n int) error {
	if n < 1 {
		return fmt.Errorf("storage: segment capacity %d < 1", n)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	d := t.data.Load()
	if d.sealed > 0 || d.tail.n.Load() > 0 {
		return fmt.Errorf("storage: table %s: cannot change segment capacity once populated", t.Name)
	}
	prev := t.segCap
	t.segCap = n
	nd := &tableData{tail: newTailBlock(n), indexes: d.indexes}
	if err := t.commitTableLocked(nd, 0, false, nil); err != nil {
		t.segCap = prev
		return err
	}
	t.data.Store(nd)
	return nil
}

// SegmentCapacity returns the rows-per-segment capacity.
func (t *Table) SegmentCapacity() int { return t.segCap }

// ColumnIndex returns the position of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	if i, ok := t.colPos[name]; ok {
		return i
	}
	return -1
}

// --- Snapshots --------------------------------------------------------------

// Snapshot is a consistent, immutable view of a table: the sealed
// segments, a frozen prefix of the tail, and the indexes as of the
// snapshot. Scans hold one for their whole lifetime, so concurrent DML
// never changes what they see.
type Snapshot struct {
	d     *tableData
	tailN int
}

// Snapshot captures the table's current contents.
func (t *Table) Snapshot() Snapshot {
	d := t.data.Load()
	return Snapshot{d: d, tailN: int(d.tail.n.Load())}
}

// Segments returns the sealed segments in table order.
func (s Snapshot) Segments() []*Segment { return s.d.segs }

// Tail returns the unsealed tail rows in table order. Rows are immutable
// once published; the slice itself must not be written.
func (s Snapshot) Tail() []Row { return s.d.tail.rows[:s.tailN] }

// NumRows returns the total row count of the snapshot.
func (s Snapshot) NumRows() int { return s.d.sealed + s.tailN }

// SealedRows returns the number of rows held in sealed segments.
func (s Snapshot) SealedRows() int { return s.d.sealed }

// Row resolves a global row ordinal (index order: segments then tail),
// faulting a spilled segment in and panicking on a read error; FetchRow
// is the error-returning form the engine's scan paths use.
func (s Snapshot) Row(i int) Row {
	r, err := s.FetchRow(i)
	if err != nil {
		panic(fmt.Sprintf("storage: faulting row %d: %v", i, err))
	}
	return r
}

// FetchRow resolves a global row ordinal (index order: segments then
// tail), faulting a spilled segment in through the buffer pool. The row
// stays valid after the internal pin is released (the payload is GC-held
// while referenced).
func (s Snapshot) FetchRow(i int) (Row, error) {
	if i < s.d.sealed {
		per := segRowsOf(s.d)
		seg := s.d.segs[i/per]
		if seg.src == nil {
			return seg.rows[i%per], nil
		}
		sd, err := seg.Load()
		if err != nil {
			return nil, err
		}
		defer sd.Release()
		return sd.rows[i%per], nil
	}
	return s.d.tail.rows[i-s.d.sealed], nil
}

// segRowsOf recovers the per-segment capacity of a table version from its
// first sealed segment (every sealed segment is full by construction).
func segRowsOf(d *tableData) int {
	if len(d.segs) == 0 {
		return 1 // unused: sealed == 0 routes every ordinal to the tail
	}
	return d.segs[0].NumRows()
}

// Index returns the snapshot's index on col, or nil.
func (s Snapshot) Index(col string) *Index { return s.d.indexes[col] }

// AppendRows appends every row of the snapshot to dst in table order and
// returns it, faulting spilled segments in (panicking on read errors).
// This materializes the whole table; larger-than-memory paths should
// iterate segments via Segment.Load instead.
func (s Snapshot) AppendRows(dst []Row) []Row {
	for _, seg := range s.d.segs {
		dst = append(dst, seg.Rows()...)
	}
	return append(dst, s.Tail()...)
}

// FetchAll is the error-returning form of AppendRows: the whole snapshot
// materialized in table order, with segment read failures surfaced as
// errors rather than panics. Same caveat — this is the materialize-
// everything path, not the streaming one.
func (s Snapshot) FetchAll() ([]Row, error) {
	dst := make([]Row, 0, s.NumRows())
	for _, seg := range s.d.segs {
		sd, err := seg.Load()
		if err != nil {
			return nil, err
		}
		dst = append(dst, sd.Rows()...)
		sd.Release()
	}
	return append(dst, s.Tail()...), nil
}

// RowCount returns the table's current row count.
func (t *Table) RowCount() int { return t.Snapshot().NumRows() }

// AllRows materializes the current rows as a fresh slice of row headers in
// table order. The rows themselves are shared and immutable.
func (t *Table) AllRows() []Row {
	s := t.Snapshot()
	return s.AppendRows(make([]Row, 0, s.NumRows()))
}

// --- Writes -----------------------------------------------------------------

// coerceRow validates arity and kinds in place, coercing integer values
// into float columns (and exact floats into integer columns).
func (t *Table) coerceRow(row Row) error {
	if len(row) != len(t.Columns) {
		return fmt.Errorf("storage: table %s: inserting %d values into %d columns", t.Name, len(row), len(t.Columns))
	}
	for i, v := range row {
		if v.IsNull() {
			continue
		}
		want := t.Columns[i].Type
		if v.Kind() == want {
			continue
		}
		if want == datum.KFloat && v.Kind() == datum.KInt {
			row[i] = datum.NewFloat(float64(v.Int()))
			continue
		}
		if want == datum.KInt && v.Kind() == datum.KFloat && v.Float() == float64(int64(v.Float())) {
			row[i] = datum.NewInt(int64(v.Float()))
			continue
		}
		return fmt.Errorf("storage: table %s column %s: cannot store %s into %s",
			t.Name, t.Columns[i].Name, v.Kind(), want)
	}
	return nil
}

// Insert appends a copy of the row, coercing integer values into float
// columns and validating arity and kinds. Indexes are maintained
// (copy-on-write, so concurrent readers stay consistent).
func (t *Table) Insert(r Row) error {
	row := r.Clone()
	if err := t.coerceRow(row); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.appendLocked(row)
}

// InsertBatch bulk-loads validated rows in one pass: no per-row Clone (the
// table takes ownership of the rows and their backing arrays), segments
// seal as they fill, and indexes rebuild once at the end instead of once
// per row. Validation runs before any mutation, so a bad row leaves the
// table untouched.
func (t *Table) InsertBatch(rows []Row) error {
	for _, r := range rows {
		if err := t.coerceRow(r); err != nil {
			return err
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	d := t.data.Load()
	segs := d.segs
	sealed := d.sealed
	tail := d.tail
	tailN := int(tail.n.Load())
	sealedAny := false
	for i := 0; i < len(rows); {
		take := t.segCap - tailN
		if rem := len(rows) - i; rem < take {
			take = rem
		}
		copy(tail.rows[tailN:], rows[i:i+take])
		tailN += take
		i += take
		if tailN == t.segCap {
			if !sealedAny {
				segs = append(make([]*Segment, 0, len(segs)+1), segs...)
				sealedAny = true
			}
			segs = append(segs, sealSegment(tail.rows, t.Columns))
			sealed += t.segCap
			tail = newTailBlock(t.segCap)
			tailN = 0
		}
	}
	nd := &tableData{segs: segs, sealed: sealed, tail: tail, indexes: d.indexes}
	if len(d.indexes) > 0 {
		// Freshly sealed segments are still resident here, so the index
		// build touches no disk; spilling happens after.
		ix, err := buildIndexes(nd, tailN, t.colPos, indexColumns(d.indexes))
		if err != nil {
			return err
		}
		nd.indexes = ix
	}
	// Persist before publishing: spill the new segments, write the tail
	// file, commit the manifest. On error nothing is published — the rows
	// copied into unpublished tail slots stay invisible.
	if sealedAny {
		if err := t.spillNewSegmentsLocked(nd.segs); err != nil {
			return err
		}
	}
	if err := t.commitTableLocked(nd, tailN, tail != d.tail, nil); err != nil {
		return err
	}
	// Publish lengths after the slot writes, then the new table version.
	tail.n.Store(int64(tailN))
	if tail != d.tail {
		d.tail.n.Store(int64(t.segCap)) // the old tail filled completely
	}
	t.data.Store(nd)
	return nil
}

// appendLocked inserts one validated row, sealing the tail into a segment
// when it fills and persisting the new state before publication when a
// store is attached. Callers hold t.mu.
func (t *Table) appendLocked(row Row) error {
	d := t.data.Load()
	n := int(d.tail.n.Load())
	d.tail.rows[n] = row

	var indexes map[string]*Index
	if len(d.indexes) > 0 {
		rowID := d.sealed + n
		indexes = make(map[string]*Index, len(d.indexes))
		for col, ix := range d.indexes {
			indexes[col] = ix.cloneAdd(row[t.colPos[col]], rowID)
		}
	}

	if n+1 < t.segCap {
		if indexes == nil && t.store == nil {
			// Fast path: publishing the new length is the whole commit.
			d.tail.n.Store(int64(n + 1))
			return nil
		}
		nd := &tableData{segs: d.segs, sealed: d.sealed, tail: d.tail, indexes: d.indexes}
		if indexes != nil {
			nd.indexes = indexes
		}
		if err := t.commitTableLocked(nd, n+1, false, nil); err != nil {
			return err // slot n stays unpublished; a retry overwrites it
		}
		d.tail.n.Store(int64(n + 1))
		t.data.Store(nd)
		return nil
	}

	// Tail is full: seal it (adopting its row slice) and start a new one.
	seg := sealSegment(d.tail.rows, t.Columns)
	nd := &tableData{
		segs:    append(append(make([]*Segment, 0, len(d.segs)+1), d.segs...), seg),
		sealed:  d.sealed + t.segCap,
		tail:    newTailBlock(t.segCap),
		indexes: d.indexes,
	}
	if indexes != nil {
		nd.indexes = indexes
	}
	if t.store != nil {
		if err := t.spillNewSegmentsLocked(nd.segs); err != nil {
			return err
		}
		if err := t.commitTableLocked(nd, 0, true, nil); err != nil {
			return err
		}
	}
	d.tail.n.Store(int64(t.segCap))
	t.data.Store(nd)
	return nil
}

// runBuilder re-segments a stream of rows into sealed (and, with a store
// attached, spilled) segments plus a final partial run, holding at most
// one segment's rows resident at a time. It is the streaming replacement
// for the old materialize-everything rebuild: Update and Delete feed it
// segment-at-a-time, so a rebuild of a larger-than-memory table never
// needs the whole table in RAM. Callers hold t.mu.
type runBuilder struct {
	t    *Table
	segs []*Segment
	run  []Row
}

func (t *Table) newRunBuilder() *runBuilder {
	return &runBuilder{t: t, run: make([]Row, 0, t.segCap)}
}

func (b *runBuilder) add(r Row) error {
	b.run = append(b.run, r)
	if len(b.run) < b.t.segCap {
		return nil
	}
	seg := sealSegment(b.run, b.t.Columns)
	if b.t.store != nil {
		sp, err := b.t.spillSegmentLocked(seg)
		if err != nil {
			return err
		}
		seg = sp
	}
	b.segs = append(b.segs, seg)
	b.run = make([]Row, 0, b.t.segCap)
	return nil
}

// aligned reports whether an untouched full segment can be reused as-is:
// only when no partial run precedes it, so row ordinals keep resolving
// through the fixed per-segment capacity.
func (b *runBuilder) aligned() bool { return len(b.run) == 0 }

// reuse adopts an existing sealed segment without rewriting it.
func (b *runBuilder) reuse(seg *Segment) { b.segs = append(b.segs, seg) }

// finish assembles the rebuilt table version: the remainder becomes the
// new tail, indexes rebuild by streaming the new segments.
func (b *runBuilder) finish(indexCols []string) (*tableData, int, error) {
	nd := &tableData{segs: b.segs, sealed: len(b.segs) * b.t.segCap}
	nd.tail = newTailBlock(b.t.segCap)
	copy(nd.tail.rows, b.run)
	tailN := len(b.run)
	if len(indexCols) > 0 {
		ix, err := buildIndexes(nd, tailN, b.t.colPos, indexCols)
		if err != nil {
			return nil, 0, err
		}
		nd.indexes = ix
	}
	nd.tail.n.Store(int64(tailN))
	return nd, tailN, nil
}

// Delete removes all rows for which remove returns true, rebuilding
// segments and indexes segment-at-a-time (untouched aligned segments are
// reused without a rewrite). It returns the number of rows removed.
func (t *Table) Delete(remove func(Row) bool) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	d := t.data.Load()
	tailN := int(d.tail.n.Load())
	n := 0
	b := t.newRunBuilder()
	for _, seg := range d.segs {
		sd, err := seg.Load()
		if err != nil {
			return 0, err
		}
		kept := make([]Row, 0, seg.NumRows())
		removedHere := false
		for _, r := range sd.Rows() {
			if remove(r) {
				n++
				removedHere = true
			} else {
				kept = append(kept, r)
			}
		}
		if !removedHere && b.aligned() {
			b.reuse(seg)
			sd.Release()
			continue
		}
		for _, r := range kept {
			if err := b.add(r); err != nil {
				sd.Release()
				return 0, err
			}
		}
		sd.Release()
	}
	for _, r := range d.tail.rows[:tailN] {
		if remove(r) {
			n++
		} else if err := b.add(r); err != nil {
			return 0, err
		}
	}
	if n == 0 {
		return 0, nil
	}
	return n, t.publishRebuildLocked(b, d)
}

// Update applies fn to a copy of every row; fn returns true when it
// modified the row. Modified copies replace the originals in a rebuilt
// table version built segment-at-a-time (segments with no modified row
// are reused without a rewrite), so concurrent readers keep seeing the
// pre-update snapshot. It returns the number of modified rows.
func (t *Table) Update(fn func(Row) bool) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	d := t.data.Load()
	tailN := int(d.tail.n.Load())
	n := 0
	b := t.newRunBuilder()
	for _, seg := range d.segs {
		sd, err := seg.Load()
		if err != nil {
			return 0, err
		}
		out := make([]Row, 0, seg.NumRows())
		dirty := false
		for _, r := range sd.Rows() {
			c := r.Clone()
			if fn(c) {
				n++
				dirty = true
				out = append(out, c)
			} else {
				out = append(out, r)
			}
		}
		if !dirty && b.aligned() {
			b.reuse(seg)
			sd.Release()
			continue
		}
		for _, r := range out {
			if err := b.add(r); err != nil {
				sd.Release()
				return 0, err
			}
		}
		sd.Release()
	}
	for _, r := range d.tail.rows[:tailN] {
		c := r.Clone()
		if fn(c) {
			n++
			r = c
		}
		if err := b.add(r); err != nil {
			return 0, err
		}
	}
	if n == 0 {
		return 0, nil
	}
	return n, t.publishRebuildLocked(b, d)
}

// publishRebuildLocked finishes a streamed rebuild: builds the new table
// version, persists it (new tail epoch; replaced segment files are left
// for the next Open's orphan collection, since concurrent snapshots may
// still fault them), and swaps it in. Callers hold t.mu.
func (t *Table) publishRebuildLocked(b *runBuilder, d *tableData) error {
	nd, tailN, err := b.finish(indexColumns(d.indexes))
	if err != nil {
		return err
	}
	if err := t.commitTableLocked(nd, tailN, true, nil); err != nil {
		return err
	}
	t.data.Store(nd)
	return nil
}

// --- Indexes ----------------------------------------------------------------

// CreateIndex builds an ordered index on the named column, streaming
// spilled segments through the buffer pool one at a time. Creating an
// index that already exists is a no-op.
func (t *Table) CreateIndex(col string) error {
	if _, ok := t.colPos[col]; !ok {
		return fmt.Errorf("storage: table %s has no column %s", t.Name, col)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	d := t.data.Load()
	if _, ok := d.indexes[col]; ok {
		return nil
	}
	tailN := int(d.tail.n.Load())
	cols := append(indexColumns(d.indexes), col)
	nd := &tableData{segs: d.segs, sealed: d.sealed, tail: d.tail}
	ix, err := buildIndexes(nd, tailN, t.colPos, cols)
	if err != nil {
		return err
	}
	nd.indexes = ix
	if err := t.commitTableLocked(nd, tailN, false, nil); err != nil {
		return err
	}
	t.data.Store(nd)
	return nil
}

func indexColumns(indexes map[string]*Index) []string {
	cols := make([]string, 0, len(indexes))
	for c := range indexes {
		cols = append(cols, c)
	}
	sort.Strings(cols)
	return cols
}

// buildIndexes builds fresh indexes over a table version's rows in one
// streaming pass — spilled segments are faulted in (and released) one at
// a time, so index builds stay larger-than-memory safe. tailN is the tail
// length to index (the tail's published length may lag it while a write
// is in flight).
func buildIndexes(d *tableData, tailN int, colPos map[string]int, cols []string) (map[string]*Index, error) {
	idxs := make([]*Index, len(cols))
	total := d.sealed + tailN
	for k, col := range cols {
		idxs[k] = &Index{Column: col, entries: make([]indexEntry, 0, total)}
	}
	rowID := 0
	add := func(rows []Row) {
		for _, r := range rows {
			for k, col := range cols {
				idxs[k].entries = append(idxs[k].entries, indexEntry{key: r[colPos[col]], rowID: rowID})
			}
			rowID++
		}
	}
	for _, seg := range d.segs {
		sd, err := seg.Load()
		if err != nil {
			return nil, err
		}
		add(sd.Rows())
		sd.Release()
	}
	add(d.tail.rows[:tailN])
	out := make(map[string]*Index, len(cols))
	for k, idx := range idxs {
		sort.SliceStable(idx.entries, func(a, b int) bool {
			return datum.Compare(idx.entries[a].key, idx.entries[b].key) < 0
		})
		out[cols[k]] = idx
	}
	return out, nil
}

// Index returns the current index on col, or nil. Scans should prefer
// Snapshot.Index so index and data come from the same table version.
func (t *Table) Index(col string) *Index { return t.data.Load().indexes[col] }

// IndexedColumns lists the columns that currently carry an index, sorted.
func (t *Table) IndexedColumns() []string {
	return indexColumns(t.data.Load().indexes)
}

// Index is an ordered secondary index: (key, rowID) pairs sorted by key.
// rowIDs are global row ordinals (segments in table order, then tail),
// resolvable through Snapshot.Row. An Index is immutable once published;
// maintenance clones.
type Index struct {
	Column  string
	entries []indexEntry
}

type indexEntry struct {
	key   datum.D
	rowID int
}

// cloneAdd returns a copy of the index with one entry inserted in key
// order — copy-on-write maintenance for Insert.
func (ix *Index) cloneAdd(key datum.D, rowID int) *Index {
	pos := sort.Search(len(ix.entries), func(i int) bool {
		return datum.Compare(ix.entries[i].key, key) > 0
	})
	entries := make([]indexEntry, len(ix.entries)+1)
	copy(entries, ix.entries[:pos])
	entries[pos] = indexEntry{key: key, rowID: rowID}
	copy(entries[pos+1:], ix.entries[pos:])
	return &Index{Column: ix.Column, entries: entries}
}

// Len reports the number of entries.
func (ix *Index) Len() int { return len(ix.entries) }

// Lookup returns the rowIDs whose key equals k, in index order.
func (ix *Index) Lookup(k datum.D) []int {
	lo := sort.Search(len(ix.entries), func(i int) bool {
		return datum.Compare(ix.entries[i].key, k) >= 0
	})
	var out []int
	for i := lo; i < len(ix.entries) && datum.Compare(ix.entries[i].key, k) == 0; i++ {
		out = append(out, ix.entries[i].rowID)
	}
	return out
}

// Range returns the rowIDs with lo <= key <= hi (either bound may be the
// NULL datum to mean unbounded on that side), in key order. NULL keys are
// never returned.
func (ix *Index) Range(lo, hi datum.D, includeLo, includeHi bool) []int {
	var out []int
	start := 0
	if !lo.IsNull() {
		if includeLo {
			start = sort.Search(len(ix.entries), func(i int) bool {
				return datum.Compare(ix.entries[i].key, lo) >= 0
			})
		} else {
			start = sort.Search(len(ix.entries), func(i int) bool {
				return datum.Compare(ix.entries[i].key, lo) > 0
			})
		}
	}
	for i := start; i < len(ix.entries); i++ {
		k := ix.entries[i].key
		if k.IsNull() {
			continue
		}
		if !hi.IsNull() {
			c := datum.Compare(k, hi)
			if c > 0 || (c == 0 && !includeHi) {
				break
			}
		}
		out = append(out, ix.entries[i].rowID)
	}
	return out
}
