package storage

import (
	"sync"
	"testing"
	"testing/quick"

	"lantern/internal/datum"
)

func twoColTable() *Table {
	return NewTable("t", []Column{
		{Name: "id", Type: datum.KInt},
		{Name: "name", Type: datum.KString},
	})
}

func TestInsertAndScan(t *testing.T) {
	tbl := twoColTable()
	for i := 0; i < 5; i++ {
		if err := tbl.Insert(Row{datum.NewInt(int64(i)), datum.NewString("x")}); err != nil {
			t.Fatal(err)
		}
	}
	if tbl.RowCount() != 5 {
		t.Fatalf("rows = %d, want 5", tbl.RowCount())
	}
	if got := len(tbl.AllRows()); got != 5 {
		t.Fatalf("AllRows = %d rows, want 5", got)
	}
}

func TestInsertArityMismatch(t *testing.T) {
	tbl := twoColTable()
	if err := tbl.Insert(Row{datum.NewInt(1)}); err == nil {
		t.Error("expected arity error")
	}
}

func TestInsertTypeCoercion(t *testing.T) {
	tbl := NewTable("t", []Column{{Name: "f", Type: datum.KFloat}, {Name: "i", Type: datum.KInt}})
	if err := tbl.Insert(Row{datum.NewInt(3), datum.NewFloat(4)}); err != nil {
		t.Fatal(err)
	}
	rows := tbl.AllRows()
	if rows[0][0].Kind() != datum.KFloat || rows[0][0].Float() != 3 {
		t.Errorf("int->float coercion failed: %v", rows[0][0])
	}
	if rows[0][1].Kind() != datum.KInt || rows[0][1].Int() != 4 {
		t.Errorf("float->int coercion failed: %v", rows[0][1])
	}
	if err := tbl.Insert(Row{datum.NewString("x"), datum.NewInt(1)}); err == nil {
		t.Error("expected type error storing string into float")
	}
	if err := tbl.Insert(Row{datum.NewFloat(1), datum.NewFloat(1.5)}); err == nil {
		t.Error("expected type error storing non-integral float into int")
	}
}

func TestInsertNullAllowed(t *testing.T) {
	tbl := twoColTable()
	if err := tbl.Insert(Row{datum.Null, datum.Null}); err != nil {
		t.Fatal(err)
	}
}

func TestColumnIndex(t *testing.T) {
	tbl := twoColTable()
	if tbl.ColumnIndex("name") != 1 {
		t.Error("name should be at 1")
	}
	if tbl.ColumnIndex("missing") != -1 {
		t.Error("missing should be -1")
	}
}

func TestIndexLookup(t *testing.T) {
	tbl := twoColTable()
	vals := []int64{5, 3, 8, 3, 1}
	for _, v := range vals {
		_ = tbl.Insert(Row{datum.NewInt(v), datum.NewString("r")})
	}
	if err := tbl.CreateIndex("id"); err != nil {
		t.Fatal(err)
	}
	ix := tbl.Index("id")
	if ix == nil || ix.Len() != 5 {
		t.Fatalf("index missing or wrong length")
	}
	snap := tbl.Snapshot()
	got := ix.Lookup(datum.NewInt(3))
	if len(got) != 2 {
		t.Fatalf("Lookup(3) = %v, want 2 rows", got)
	}
	for _, id := range got {
		if snap.Row(id)[0].Int() != 3 {
			t.Errorf("row %d has key %v", id, snap.Row(id)[0])
		}
	}
	if got := ix.Lookup(datum.NewInt(99)); len(got) != 0 {
		t.Errorf("Lookup(99) = %v, want empty", got)
	}
}

func TestIndexMaintainedOnInsert(t *testing.T) {
	tbl := twoColTable()
	_ = tbl.CreateIndex("id")
	for _, v := range []int64{4, 2, 9} {
		_ = tbl.Insert(Row{datum.NewInt(v), datum.NewString("r")})
	}
	ix := tbl.Index("id")
	got := ix.Range(datum.Null, datum.Null, true, true)
	want := []int64{2, 4, 9}
	if len(got) != 3 {
		t.Fatalf("range = %v", got)
	}
	snap := tbl.Snapshot()
	for i, id := range got {
		if snap.Row(id)[0].Int() != want[i] {
			t.Errorf("pos %d: key %v, want %d", i, snap.Row(id)[0], want[i])
		}
	}
}

func TestIndexRange(t *testing.T) {
	tbl := twoColTable()
	for i := int64(1); i <= 10; i++ {
		_ = tbl.Insert(Row{datum.NewInt(i), datum.NewString("r")})
	}
	_ = tbl.CreateIndex("id")
	ix := tbl.Index("id")

	cases := []struct {
		lo, hi               datum.D
		includeLo, includeHi bool
		want                 int
	}{
		{datum.NewInt(3), datum.NewInt(7), true, true, 5},
		{datum.NewInt(3), datum.NewInt(7), false, true, 4},
		{datum.NewInt(3), datum.NewInt(7), true, false, 4},
		{datum.NewInt(3), datum.NewInt(7), false, false, 3},
		{datum.Null, datum.NewInt(5), true, true, 5},
		{datum.NewInt(8), datum.Null, true, true, 3},
		{datum.Null, datum.Null, true, true, 10},
		{datum.NewInt(100), datum.Null, true, true, 0},
	}
	for _, c := range cases {
		got := ix.Range(c.lo, c.hi, c.includeLo, c.includeHi)
		if len(got) != c.want {
			t.Errorf("Range(%v,%v,%v,%v) = %d rows, want %d", c.lo, c.hi, c.includeLo, c.includeHi, len(got), c.want)
		}
	}
}

func TestIndexRangeSkipsNulls(t *testing.T) {
	tbl := twoColTable()
	_ = tbl.Insert(Row{datum.Null, datum.NewString("n")})
	_ = tbl.Insert(Row{datum.NewInt(1), datum.NewString("r")})
	_ = tbl.CreateIndex("id")
	got := tbl.Index("id").Range(datum.Null, datum.Null, true, true)
	if len(got) != 1 {
		t.Errorf("range over table with NULL = %v, want 1 row", got)
	}
}

func TestDeleteRebuildsIndex(t *testing.T) {
	tbl := twoColTable()
	for i := int64(0); i < 6; i++ {
		_ = tbl.Insert(Row{datum.NewInt(i), datum.NewString("r")})
	}
	_ = tbl.CreateIndex("id")
	n, _ := tbl.Delete(func(r Row) bool { return r[0].Int()%2 == 0 })
	if n != 3 || tbl.RowCount() != 3 {
		t.Fatalf("deleted %d, left %d", n, tbl.RowCount())
	}
	ix := tbl.Index("id")
	if ix.Len() != 3 {
		t.Errorf("index len = %d, want 3", ix.Len())
	}
	for _, id := range ix.Lookup(datum.NewInt(2)) {
		t.Errorf("deleted key still indexed: row %d", id)
	}
}

func TestUpdate(t *testing.T) {
	tbl := twoColTable()
	_ = tbl.Insert(Row{datum.NewInt(1), datum.NewString("a")})
	_ = tbl.Insert(Row{datum.NewInt(2), datum.NewString("b")})
	n, _ := tbl.Update(func(r Row) bool {
		if r[0].Int() == 2 {
			r[1] = datum.NewString("z")
			return true
		}
		return false
	})
	if n != 1 {
		t.Fatalf("updated %d, want 1", n)
	}
	if rows := tbl.AllRows(); rows[1][1].Str() != "z" {
		t.Errorf("row not updated: %v", rows[1])
	}
}

func TestCreateIndexErrors(t *testing.T) {
	tbl := twoColTable()
	if err := tbl.CreateIndex("nope"); err == nil {
		t.Error("expected error for unknown column")
	}
	if err := tbl.CreateIndex("id"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateIndex("id"); err != nil {
		t.Error("re-creating index should be a no-op")
	}
}

func TestIndexedColumns(t *testing.T) {
	tbl := twoColTable()
	_ = tbl.CreateIndex("name")
	_ = tbl.CreateIndex("id")
	got := tbl.IndexedColumns()
	if len(got) != 2 || got[0] != "id" || got[1] != "name" {
		t.Errorf("IndexedColumns = %v", got)
	}
}

// Property: index lookup returns exactly the rows a full scan would.
func TestIndexLookupMatchesScan(t *testing.T) {
	f := func(keys []int8, probe int8) bool {
		tbl := twoColTable()
		for _, k := range keys {
			_ = tbl.Insert(Row{datum.NewInt(int64(k)), datum.NewString("r")})
		}
		_ = tbl.CreateIndex("id")
		got := tbl.Index("id").Lookup(datum.NewInt(int64(probe)))
		want := 0
		for _, r := range tbl.AllRows() {
			if r[0].Int() == int64(probe) {
				want++
			}
		}
		return len(got) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRowClone(t *testing.T) {
	r := Row{datum.NewInt(1)}
	c := r.Clone()
	c[0] = datum.NewInt(2)
	if r[0].Int() != 1 {
		t.Error("Clone shares storage")
	}
}

// --- Segment / columnar tests -----------------------------------------------

func smallSegTable(t *testing.T, segCap int) *Table {
	t.Helper()
	tbl := twoColTable()
	if err := tbl.SetSegmentCapacity(segCap); err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestSegmentSealOnFill(t *testing.T) {
	tbl := smallSegTable(t, 4)
	for i := 0; i < 10; i++ {
		_ = tbl.Insert(Row{datum.NewInt(int64(i)), datum.NewString("x")})
	}
	snap := tbl.Snapshot()
	if got := len(snap.Segments()); got != 2 {
		t.Fatalf("segments = %d, want 2", got)
	}
	if got := len(snap.Tail()); got != 2 {
		t.Fatalf("tail = %d rows, want 2", got)
	}
	if snap.NumRows() != 10 || snap.SealedRows() != 8 {
		t.Fatalf("NumRows=%d SealedRows=%d", snap.NumRows(), snap.SealedRows())
	}
	// Row ordinals resolve across segments and tail in insert order.
	for i := 0; i < 10; i++ {
		if snap.Row(i)[0].Int() != int64(i) {
			t.Fatalf("Row(%d) = %v", i, snap.Row(i))
		}
	}
}

func TestSegmentTypedVectorsAndZoneMaps(t *testing.T) {
	tbl := NewTable("t", []Column{
		{Name: "i", Type: datum.KInt},
		{Name: "f", Type: datum.KFloat},
		{Name: "s", Type: datum.KString},
	})
	if err := tbl.SetSegmentCapacity(4); err != nil {
		t.Fatal(err)
	}
	rows := []Row{
		{datum.NewInt(7), datum.NewFloat(1.5), datum.NewString("b")},
		{datum.NewInt(3), datum.Null, datum.NewString("a")},
		{datum.Null, datum.NewFloat(-2), datum.NewString("c")},
		{datum.NewInt(9), datum.NewFloat(0), datum.NewString("a")},
	}
	for _, r := range rows {
		if err := tbl.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	seg := tbl.Snapshot().Segments()[0]

	iv := seg.Col(0)
	if iv.Kind != datum.KInt || len(iv.Ints) != 4 {
		t.Fatalf("int vector: kind=%v len=%d", iv.Kind, len(iv.Ints))
	}
	if iv.Ints[0] != 7 || iv.Ints[1] != 3 || iv.Ints[3] != 9 {
		t.Errorf("int vector values: %v", iv.Ints)
	}
	if !iv.Null(2) || iv.Null(0) {
		t.Errorf("int null bitmap wrong")
	}
	if zm := seg.Zone(0); zm.Min.Int() != 3 || zm.Max.Int() != 9 || zm.NullCount != 1 {
		t.Errorf("int zone map: %+v", zm)
	}

	fv := seg.Col(1)
	if fv.Kind != datum.KFloat || fv.Floats[0] != 1.5 || !fv.Null(1) {
		t.Errorf("float vector wrong: %+v", fv)
	}
	if zm := seg.Zone(1); zm.Min.Float() != -2 || zm.Max.Float() != 1.5 || zm.NullCount != 1 {
		t.Errorf("float zone map: %+v", zm)
	}

	sv := seg.Col(2)
	if sv.Kind != datum.KString || sv.Strs[2] != "c" || sv.HasNulls() {
		t.Errorf("string vector wrong: %+v", sv)
	}
	if zm := seg.Zone(2); zm.Min.Str() != "a" || zm.Max.Str() != "c" || zm.NullCount != 0 {
		t.Errorf("string zone map: %+v", zm)
	}
	if keys := seg.DistinctKeys(2); len(keys) != 3 {
		t.Errorf("distinct sketch = %v, want 3 keys", keys)
	}
}

func TestSegmentAllNullZoneMap(t *testing.T) {
	tbl := smallSegTable(t, 2)
	_ = tbl.Insert(Row{datum.Null, datum.NewString("a")})
	_ = tbl.Insert(Row{datum.Null, datum.NewString("b")})
	zm := tbl.Snapshot().Segments()[0].Zone(0)
	if !zm.Min.IsNull() || !zm.Max.IsNull() || zm.NullCount != 2 {
		t.Errorf("all-NULL zone map: %+v", zm)
	}
}

func TestInsertBatch(t *testing.T) {
	tbl := smallSegTable(t, 4)
	_ = tbl.Insert(Row{datum.NewInt(-1), datum.NewString("pre")})
	var rows []Row
	for i := 0; i < 10; i++ {
		rows = append(rows, Row{datum.NewInt(int64(i)), datum.NewString("b")})
	}
	if err := tbl.InsertBatch(rows); err != nil {
		t.Fatal(err)
	}
	snap := tbl.Snapshot()
	if snap.NumRows() != 11 || len(snap.Segments()) != 2 || len(snap.Tail()) != 3 {
		t.Fatalf("NumRows=%d segs=%d tail=%d", snap.NumRows(), len(snap.Segments()), len(snap.Tail()))
	}
	all := tbl.AllRows()
	if all[0][0].Int() != -1 || all[10][0].Int() != 9 {
		t.Errorf("batch order wrong: first=%v last=%v", all[0], all[10])
	}
}

func TestInsertBatchValidatesBeforeMutating(t *testing.T) {
	tbl := smallSegTable(t, 4)
	rows := []Row{
		{datum.NewInt(1), datum.NewString("ok")},
		{datum.NewString("bad"), datum.NewString("x")},
	}
	if err := tbl.InsertBatch(rows); err == nil {
		t.Fatal("expected type error")
	}
	if tbl.RowCount() != 0 {
		t.Errorf("failed batch mutated table: %d rows", tbl.RowCount())
	}
}

func TestInsertBatchCoercesAndIndexes(t *testing.T) {
	tbl := NewTable("t", []Column{{Name: "f", Type: datum.KFloat}})
	_ = tbl.CreateIndex("f")
	if err := tbl.InsertBatch([]Row{{datum.NewInt(2)}, {datum.NewInt(1)}}); err != nil {
		t.Fatal(err)
	}
	rows := tbl.AllRows()
	if rows[0][0].Kind() != datum.KFloat {
		t.Errorf("batch row not coerced: %v", rows[0][0])
	}
	ids := tbl.Index("f").Range(datum.Null, datum.Null, true, true)
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 0 {
		t.Errorf("index after batch = %v, want [1 0]", ids)
	}
}

func TestSetSegmentCapacityErrors(t *testing.T) {
	tbl := twoColTable()
	if err := tbl.SetSegmentCapacity(0); err == nil {
		t.Error("expected error for capacity 0")
	}
	_ = tbl.Insert(Row{datum.NewInt(1), datum.NewString("a")})
	if err := tbl.SetSegmentCapacity(8); err == nil {
		t.Error("expected error on populated table")
	}
}

func TestDeleteResegments(t *testing.T) {
	tbl := smallSegTable(t, 3)
	for i := 0; i < 9; i++ {
		_ = tbl.Insert(Row{datum.NewInt(int64(i)), datum.NewString("x")})
	}
	n, _ := tbl.Delete(func(r Row) bool { return r[0].Int()%3 == 0 })
	if n != 3 {
		t.Fatalf("deleted %d, want 3", n)
	}
	snap := tbl.Snapshot()
	if len(snap.Segments()) != 2 || len(snap.Tail()) != 0 {
		t.Fatalf("after delete: segs=%d tail=%d, want 2/0", len(snap.Segments()), len(snap.Tail()))
	}
	if zm := snap.Segments()[0].Zone(0); zm.Min.Int() != 1 || zm.Max.Int() != 4 {
		t.Errorf("rebuilt zone map stale: %+v", zm)
	}
}

// Update must not mutate rows visible to snapshots taken before the update.
func TestUpdatePreservesSnapshots(t *testing.T) {
	tbl := smallSegTable(t, 2)
	for i := 0; i < 4; i++ {
		_ = tbl.Insert(Row{datum.NewInt(int64(i)), datum.NewString("old")})
	}
	before := tbl.Snapshot()
	_, _ = tbl.Update(func(r Row) bool {
		r[1] = datum.NewString("new")
		return true
	})
	for i := 0; i < 4; i++ {
		if before.Row(i)[1].Str() != "old" {
			t.Fatalf("pre-update snapshot saw the update at row %d", i)
		}
	}
	if tbl.AllRows()[0][1].Str() != "new" {
		t.Fatal("update not visible in new snapshot")
	}
}

// The fixed hazard from the old package doc: DML no longer needs external
// synchronization against readers. Scans (snapshots) race inserts, updates,
// deletes and index creation; -race must stay silent and every snapshot
// must be internally consistent (a prefix of insert order).
func TestScanInsertRace(t *testing.T) {
	tbl := smallSegTable(t, 8)
	const writers, perWriter = 2, 500
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				_ = tbl.Insert(Row{datum.NewInt(int64(i)), datum.NewString("w")})
				if i%100 == 50 {
					_, _ = tbl.Update(func(r Row) bool {
						if r[0].Int() == int64(i) {
							r[1] = datum.NewString("u")
							return true
						}
						return false
					})
				}
				if i%200 == 150 {
					_, _ = tbl.Delete(func(r Row) bool { return r[0].Int() == int64(i-1) })
				}
			}
		}(w)
	}
	errc := make(chan string, 1)
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = tbl.CreateIndex("id")
		}
	}()
	for r := 0; r < 2; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := tbl.Snapshot()
				n := snap.NumRows()
				sum := 0
				for _, seg := range snap.Segments() {
					vec := seg.Col(0)
					for i := 0; i < seg.NumRows(); i++ {
						if !vec.Null(i) {
							sum += int(vec.Ints[i])
						}
					}
				}
				for _, row := range snap.Tail() {
					if row == nil {
						select {
						case errc <- "snapshot exposed unpublished tail slot":
						default:
						}
						return
					}
					sum += int(row[0].Int())
				}
				_ = sum
				if snap.NumRows() != n {
					select {
					case errc <- "snapshot row count changed":
					default:
					}
					return
				}
			}
		}()
	}

	wg.Wait()
	close(stop)
	rg.Wait()
	select {
	case msg := <-errc:
		t.Fatal(msg)
	default:
	}
}
