package storage

import (
	"testing"
	"testing/quick"

	"lantern/internal/datum"
)

func twoColTable() *Table {
	return NewTable("t", []Column{
		{Name: "id", Type: datum.KInt},
		{Name: "name", Type: datum.KString},
	})
}

func TestInsertAndScan(t *testing.T) {
	tbl := twoColTable()
	for i := 0; i < 5; i++ {
		if err := tbl.Insert(Row{datum.NewInt(int64(i)), datum.NewString("x")}); err != nil {
			t.Fatal(err)
		}
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tbl.Rows))
	}
}

func TestInsertArityMismatch(t *testing.T) {
	tbl := twoColTable()
	if err := tbl.Insert(Row{datum.NewInt(1)}); err == nil {
		t.Error("expected arity error")
	}
}

func TestInsertTypeCoercion(t *testing.T) {
	tbl := NewTable("t", []Column{{Name: "f", Type: datum.KFloat}, {Name: "i", Type: datum.KInt}})
	if err := tbl.Insert(Row{datum.NewInt(3), datum.NewFloat(4)}); err != nil {
		t.Fatal(err)
	}
	if tbl.Rows[0][0].Kind() != datum.KFloat || tbl.Rows[0][0].Float() != 3 {
		t.Errorf("int->float coercion failed: %v", tbl.Rows[0][0])
	}
	if tbl.Rows[0][1].Kind() != datum.KInt || tbl.Rows[0][1].Int() != 4 {
		t.Errorf("float->int coercion failed: %v", tbl.Rows[0][1])
	}
	if err := tbl.Insert(Row{datum.NewString("x"), datum.NewInt(1)}); err == nil {
		t.Error("expected type error storing string into float")
	}
	if err := tbl.Insert(Row{datum.NewFloat(1), datum.NewFloat(1.5)}); err == nil {
		t.Error("expected type error storing non-integral float into int")
	}
}

func TestInsertNullAllowed(t *testing.T) {
	tbl := twoColTable()
	if err := tbl.Insert(Row{datum.Null, datum.Null}); err != nil {
		t.Fatal(err)
	}
}

func TestColumnIndex(t *testing.T) {
	tbl := twoColTable()
	if tbl.ColumnIndex("name") != 1 {
		t.Error("name should be at 1")
	}
	if tbl.ColumnIndex("missing") != -1 {
		t.Error("missing should be -1")
	}
}

func TestIndexLookup(t *testing.T) {
	tbl := twoColTable()
	vals := []int64{5, 3, 8, 3, 1}
	for _, v := range vals {
		_ = tbl.Insert(Row{datum.NewInt(v), datum.NewString("r")})
	}
	if err := tbl.CreateIndex("id"); err != nil {
		t.Fatal(err)
	}
	ix := tbl.Index("id")
	if ix == nil || ix.Len() != 5 {
		t.Fatalf("index missing or wrong length")
	}
	got := ix.Lookup(datum.NewInt(3))
	if len(got) != 2 {
		t.Fatalf("Lookup(3) = %v, want 2 rows", got)
	}
	for _, id := range got {
		if tbl.Rows[id][0].Int() != 3 {
			t.Errorf("row %d has key %v", id, tbl.Rows[id][0])
		}
	}
	if got := ix.Lookup(datum.NewInt(99)); len(got) != 0 {
		t.Errorf("Lookup(99) = %v, want empty", got)
	}
}

func TestIndexMaintainedOnInsert(t *testing.T) {
	tbl := twoColTable()
	_ = tbl.CreateIndex("id")
	for _, v := range []int64{4, 2, 9} {
		_ = tbl.Insert(Row{datum.NewInt(v), datum.NewString("r")})
	}
	ix := tbl.Index("id")
	got := ix.Range(datum.Null, datum.Null, true, true)
	want := []int64{2, 4, 9}
	if len(got) != 3 {
		t.Fatalf("range = %v", got)
	}
	for i, id := range got {
		if tbl.Rows[id][0].Int() != want[i] {
			t.Errorf("pos %d: key %v, want %d", i, tbl.Rows[id][0], want[i])
		}
	}
}

func TestIndexRange(t *testing.T) {
	tbl := twoColTable()
	for i := int64(1); i <= 10; i++ {
		_ = tbl.Insert(Row{datum.NewInt(i), datum.NewString("r")})
	}
	_ = tbl.CreateIndex("id")
	ix := tbl.Index("id")

	cases := []struct {
		lo, hi               datum.D
		includeLo, includeHi bool
		want                 int
	}{
		{datum.NewInt(3), datum.NewInt(7), true, true, 5},
		{datum.NewInt(3), datum.NewInt(7), false, true, 4},
		{datum.NewInt(3), datum.NewInt(7), true, false, 4},
		{datum.NewInt(3), datum.NewInt(7), false, false, 3},
		{datum.Null, datum.NewInt(5), true, true, 5},
		{datum.NewInt(8), datum.Null, true, true, 3},
		{datum.Null, datum.Null, true, true, 10},
		{datum.NewInt(100), datum.Null, true, true, 0},
	}
	for _, c := range cases {
		got := ix.Range(c.lo, c.hi, c.includeLo, c.includeHi)
		if len(got) != c.want {
			t.Errorf("Range(%v,%v,%v,%v) = %d rows, want %d", c.lo, c.hi, c.includeLo, c.includeHi, len(got), c.want)
		}
	}
}

func TestIndexRangeSkipsNulls(t *testing.T) {
	tbl := twoColTable()
	_ = tbl.Insert(Row{datum.Null, datum.NewString("n")})
	_ = tbl.Insert(Row{datum.NewInt(1), datum.NewString("r")})
	_ = tbl.CreateIndex("id")
	got := tbl.Index("id").Range(datum.Null, datum.Null, true, true)
	if len(got) != 1 {
		t.Errorf("range over table with NULL = %v, want 1 row", got)
	}
}

func TestDeleteRebuildsIndex(t *testing.T) {
	tbl := twoColTable()
	for i := int64(0); i < 6; i++ {
		_ = tbl.Insert(Row{datum.NewInt(i), datum.NewString("r")})
	}
	_ = tbl.CreateIndex("id")
	n := tbl.Delete(func(r Row) bool { return r[0].Int()%2 == 0 })
	if n != 3 || len(tbl.Rows) != 3 {
		t.Fatalf("deleted %d, left %d", n, len(tbl.Rows))
	}
	ix := tbl.Index("id")
	if ix.Len() != 3 {
		t.Errorf("index len = %d, want 3", ix.Len())
	}
	for _, id := range ix.Lookup(datum.NewInt(2)) {
		t.Errorf("deleted key still indexed: row %d", id)
	}
}

func TestUpdate(t *testing.T) {
	tbl := twoColTable()
	_ = tbl.Insert(Row{datum.NewInt(1), datum.NewString("a")})
	_ = tbl.Insert(Row{datum.NewInt(2), datum.NewString("b")})
	n := tbl.Update(func(r Row) bool {
		if r[0].Int() == 2 {
			r[1] = datum.NewString("z")
			return true
		}
		return false
	})
	if n != 1 {
		t.Fatalf("updated %d, want 1", n)
	}
	if tbl.Rows[1][1].Str() != "z" {
		t.Errorf("row not updated: %v", tbl.Rows[1])
	}
}

func TestCreateIndexErrors(t *testing.T) {
	tbl := twoColTable()
	if err := tbl.CreateIndex("nope"); err == nil {
		t.Error("expected error for unknown column")
	}
	if err := tbl.CreateIndex("id"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateIndex("id"); err != nil {
		t.Error("re-creating index should be a no-op")
	}
}

func TestIndexedColumns(t *testing.T) {
	tbl := twoColTable()
	_ = tbl.CreateIndex("name")
	_ = tbl.CreateIndex("id")
	got := tbl.IndexedColumns()
	if len(got) != 2 || got[0] != "id" || got[1] != "name" {
		t.Errorf("IndexedColumns = %v", got)
	}
}

// Property: index lookup returns exactly the rows a full scan would.
func TestIndexLookupMatchesScan(t *testing.T) {
	f := func(keys []int8, probe int8) bool {
		tbl := twoColTable()
		for _, k := range keys {
			_ = tbl.Insert(Row{datum.NewInt(int64(k)), datum.NewString("r")})
		}
		_ = tbl.CreateIndex("id")
		got := tbl.Index("id").Lookup(datum.NewInt(int64(probe)))
		want := 0
		for _, r := range tbl.Rows {
			if r[0].Int() == int64(probe) {
				want++
			}
		}
		return len(got) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRowClone(t *testing.T) {
	r := Row{datum.NewInt(1)}
	c := r.Clone()
	c[0] = datum.NewInt(2)
	if r[0].Int() != 1 {
		t.Error("Clone shares storage")
	}
}
