package storage

// spill.go is the bridge between the in-memory segment store and the
// disk layer (internal/pager). A Table optionally carries a pager.Store;
// when it does, every sealed segment is spilled to a segment file at
// seal time — disk is the segment's home, the buffer pool its cache —
// and the in-memory Segment keeps only the footer metadata (row count,
// zone maps, distinct sketches) plus a source pointer. Scans fault the
// payload back in through Segment.Load, which pins the decoded payload
// in the store's buffer pool for the duration of the read.
//
// Durability: every committed write persists the mutable tail to a tail
// file and the table layout to the store manifest before the in-memory
// version is published, in write-ahead order (data files first, manifest
// rename last), so a crash at any point recovers either the previous
// committed state or the new one. Files a rebuild replaces are NOT
// deleted eagerly — concurrent snapshots may still fault them in — and
// are garbage-collected as manifest orphans on the next Open.

import (
	"fmt"

	"lantern/internal/datum"
	"lantern/internal/pager"
)

// segSource locates a spilled segment's durable payload.
type segSource struct {
	store *pager.Store
	file  string // manifest-relative segment file name
}

// segPayload is the decoded form of a segment cached in the buffer pool:
// the row-major view and the typed column vectors, rebuilt together.
type segPayload struct {
	rows []Row
	cols []ColVec
}

// SegData is a loaded view of one segment's payload. For a resident
// segment it aliases the segment itself; for a spilled segment it pins a
// buffer pool frame until Release. Callers must Release exactly once and
// not touch the views afterwards (though Go's GC keeps any retained row
// or vector alive even past eviction).
type SegData struct {
	rows    []Row
	cols    []ColVec
	release func()
}

// Rows returns the row-major view of the loaded segment.
func (d *SegData) Rows() []Row { return d.rows }

// Col returns the typed vector of column i.
func (d *SegData) Col(i int) *ColVec { return &d.cols[i] }

// Release unpins the underlying buffer pool frame. Safe to call on
// resident views (no-op) but not more than once per Load.
func (d *SegData) Release() {
	if d.release != nil {
		rel := d.release
		d.release = nil
		rel()
	}
}

// Spilled reports whether the segment's payload lives on disk.
func (s *Segment) Spilled() bool { return s.src != nil }

// Load returns the segment's payload, faulting it in from disk through
// the buffer pool when the segment is spilled. A checksum or I/O failure
// surfaces as an error (wrapping pager.ErrChecksum for corruption), never
// a panic.
func (s *Segment) Load() (*SegData, error) {
	if s.src == nil {
		// The shared static view: allocation-free, and Release on it is a
		// no-op (its release hook is nil), so double-Release across scans
		// sharing the view is harmless.
		return &s.view, nil
	}
	src := s.src
	v, rel, err := src.store.Pool().Pin(src.file, func() (any, int64, error) {
		img, err := src.store.ReadSegment(src.file)
		if err != nil {
			return nil, 0, err
		}
		p := imageToPayload(img)
		return p, payloadBytes(p), nil
	})
	if err != nil {
		return nil, err
	}
	p := v.(*segPayload)
	return &SegData{rows: p.rows, cols: p.cols, release: rel}, nil
}

// mustLoad is the panic-on-error fault used by the legacy accessors
// (Segment.Rows, Segment.Col, Snapshot.Row); engine scan paths use Load
// and propagate errors instead.
func (s *Segment) mustLoad() *SegData {
	d, err := s.Load()
	if err != nil {
		panic(fmt.Sprintf("storage: faulting segment: %v", err))
	}
	return d
}

// --- Image conversion -------------------------------------------------------

// segmentToImage builds the codec image of a resident segment.
func segmentToImage(s *Segment, cols []Column) *pager.SegmentImage {
	img := &pager.SegmentImage{NumRows: s.nrows, Cols: make([]pager.ColumnImage, len(cols))}
	for ci := range cols {
		vec := &s.cols[ci]
		zm := s.zones[ci]
		c := &img.Cols[ci]
		c.Kind = cols[ci].Type
		c.Zone = pager.ZoneImage{Min: zm.Min, Max: zm.Max, NullCount: zm.NullCount}
		c.Sketch = s.sketch[ci]
		c.Nulls = vec.nulls
		switch vec.Kind {
		case datum.KInt:
			c.Enc, c.Ints = pager.EncInt64, vec.Ints
		case datum.KFloat:
			c.Enc, c.Floats = pager.EncFloat, vec.Floats
		case datum.KString:
			c.Enc, c.Strs = pager.EncString, vec.Strs
		default:
			// No typed vector (boolean or mixed-kind column): store the
			// exact datums so the round trip is lossless.
			c.Enc = pager.EncTagged
			ds := make([]datum.D, s.nrows)
			for i, r := range s.rows {
				ds[i] = r[ci]
			}
			c.Datums = ds
		}
	}
	return img
}

// imageToPayload rebuilds the row-major view and typed vectors from a
// fully decoded segment image.
func imageToPayload(img *pager.SegmentImage) *segPayload {
	n, ncols := img.NumRows, len(img.Cols)
	cols := make([]ColVec, ncols)
	rows := make([]Row, n)
	arena := make([]datum.D, n*ncols) // zero value is the NULL datum
	for i := range rows {
		rows[i] = Row(arena[i*ncols : (i+1)*ncols : (i+1)*ncols])
	}
	for ci := range img.Cols {
		c := &img.Cols[ci]
		vec := &cols[ci]
		vec.nulls = c.Nulls
		switch c.Enc {
		case pager.EncInt64:
			vec.Kind, vec.Ints = datum.KInt, c.Ints
			for i := 0; i < n; i++ {
				if !c.Null(i) {
					rows[i][ci] = datum.NewInt(c.Ints[i])
				}
			}
		case pager.EncFloat:
			vec.Kind, vec.Floats = datum.KFloat, c.Floats
			for i := 0; i < n; i++ {
				if !c.Null(i) {
					rows[i][ci] = datum.NewFloat(c.Floats[i])
				}
			}
		case pager.EncString:
			vec.Kind, vec.Strs = datum.KString, c.Strs
			for i := 0; i < n; i++ {
				if !c.Null(i) {
					rows[i][ci] = datum.NewString(c.Strs[i])
				}
			}
		default: // EncTagged
			vec.Kind = datum.KNull
			for i := 0; i < n; i++ {
				rows[i][ci] = c.Datums[i]
			}
		}
	}
	return &segPayload{rows: rows, cols: cols}
}

// payloadBytes estimates the resident size of a decoded payload for the
// buffer pool's byte accounting: row headers, the datum arena, the typed
// vectors, null bitmaps, and string bytes (shared between the row view
// and the string vector, so counted once).
func payloadBytes(p *segPayload) int64 {
	const datumSize = 48 // unsafe.Sizeof(datum.D{}) rounded up
	n := int64(len(p.rows))
	b := n * 24 // row slice headers
	b += n * int64(len(p.cols)) * datumSize
	for i := range p.cols {
		c := &p.cols[i]
		b += int64(len(c.Ints))*8 + int64(len(c.Floats))*8 + int64(len(c.nulls))*8
		b += int64(len(c.Strs)) * 16
		for _, s := range c.Strs {
			b += int64(len(s))
		}
	}
	return b
}

// segmentFromFooter builds a spilled Segment from footer metadata read at
// boot: zones and sketches are resident, the payload stays on disk.
func segmentFromFooter(store *pager.Store, file string, img *pager.SegmentImage) *Segment {
	s := &Segment{
		nrows:  img.NumRows,
		zones:  make([]ZoneMap, len(img.Cols)),
		sketch: make([][]string, len(img.Cols)),
		src:    &segSource{store: store, file: file},
	}
	for ci := range img.Cols {
		c := &img.Cols[ci]
		s.zones[ci] = ZoneMap{Min: c.Zone.Min, Max: c.Zone.Max, NullCount: c.Zone.NullCount}
		s.sketch[ci] = c.Sketch
	}
	return s
}

// --- Table persistence ------------------------------------------------------

// spillSegmentLocked writes a resident segment to a new segment file and
// returns its spilled form. Callers hold t.mu.
func (t *Table) spillSegmentLocked(seg *Segment) (*Segment, error) {
	id := t.nextSeg
	file, err := t.store.WriteSegment(t.Name, id, segmentToImage(seg, t.Columns))
	if err != nil {
		return nil, err
	}
	t.nextSeg++
	return &Segment{nrows: seg.nrows, zones: seg.zones, sketch: seg.sketch,
		src: &segSource{store: t.store, file: file}}, nil
}

// spillNewSegmentsLocked spills every still-resident segment in segs in
// place. The slice must not be shared with a published table version if
// it contains resident entries. Callers hold t.mu.
func (t *Table) spillNewSegmentsLocked(segs []*Segment) error {
	if t.store == nil {
		return nil
	}
	for i, seg := range segs {
		if seg.src != nil {
			continue
		}
		sp, err := t.spillSegmentLocked(seg)
		if err != nil {
			return err
		}
		segs[i] = sp
	}
	return nil
}

// commitTableLocked persists a candidate table version: the tail rows go
// to a tail file (same epoch unless newTail — within an epoch the tail
// only ever grows, so an in-place atomic rewrite plus the manifest's
// authoritative row count is crash-safe), then the manifest commits via
// temp+rename. It is a no-op without an attached store. On success the
// caller publishes the version; on error nothing was published and the
// on-disk state still describes the previous commit. Callers hold t.mu.
func (t *Table) commitTableLocked(nd *tableData, tailN int, newTail bool, remove []string) error {
	if t.store == nil {
		return nil
	}
	epoch := t.tailEpoch
	if newTail {
		epoch++
	}
	tailFile := ""
	if tailN > 0 {
		rows := make([][]datum.D, tailN)
		for i := 0; i < tailN; i++ {
			rows[i] = nd.tail.rows[i]
		}
		var err error
		tailFile, err = t.store.WriteTail(t.Name, epoch, rows, len(t.Columns))
		if err != nil {
			return err
		}
	}
	segs := make([]pager.SegmentManifest, len(nd.segs))
	for i, s := range nd.segs {
		segs[i] = pager.SegmentManifest{File: s.src.file, Rows: s.nrows}
	}
	cols := make([]pager.ColumnManifest, len(t.Columns))
	for i, c := range t.Columns {
		cols[i] = pager.ColumnManifest{Name: c.Name, Kind: uint8(c.Type)}
	}
	tm := pager.TableManifest{
		Columns:   cols,
		SegCap:    t.segCap,
		NextSeg:   t.nextSeg,
		Segments:  segs,
		Tail:      tailFile,
		TailEpoch: epoch,
		TailRows:  tailN,
		Indexes:   indexColumns(nd.indexes),
	}
	if t.tailFile != "" && t.tailFile != tailFile {
		remove = append(remove, t.tailFile)
	}
	if err := t.store.CommitTable(t.Name, tm, remove); err != nil {
		return err
	}
	t.tailEpoch = epoch
	t.tailFile = tailFile
	return nil
}

// AttachStore binds the table to a data directory store and persists its
// current contents: resident sealed segments spill to segment files, the
// tail to a tail file, and the layout to the manifest. The catalog calls
// this on CREATE TABLE when a data directory is open.
func (t *Table) AttachStore(store *pager.Store) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.store = store
	d := t.data.Load()
	tailN := int(d.tail.n.Load())
	segs := append(make([]*Segment, 0, len(d.segs)), d.segs...)
	if err := t.spillNewSegmentsLocked(segs); err != nil {
		t.store = nil
		return err
	}
	nd := &tableData{segs: segs, sealed: d.sealed, tail: d.tail, indexes: d.indexes}
	if err := t.commitTableLocked(nd, tailN, true, nil); err != nil {
		t.store = nil
		return err
	}
	t.data.Store(nd)
	return nil
}

// OpenTable reconstructs a table from its manifest entry: segment footers
// supply zone maps and sketches without touching column payloads, the
// tail file is decoded into the mutable tail, and indexes are rebuilt
// from the data (only index DDL is durable).
func OpenTable(name string, store *pager.Store, tm pager.TableManifest) (*Table, error) {
	cols := make([]Column, len(tm.Columns))
	for i, c := range tm.Columns {
		cols[i] = Column{Name: c.Name, Type: datum.Kind(c.Kind)}
	}
	t := NewTable(name, cols)
	if tm.SegCap > 0 {
		t.segCap = tm.SegCap
	}
	t.store = store
	t.nextSeg = tm.NextSeg
	t.tailEpoch = tm.TailEpoch
	t.tailFile = tm.Tail

	d := &tableData{tail: newTailBlock(t.segCap)}
	for _, sm := range tm.Segments {
		img, err := store.ReadSegmentFooter(sm.File)
		if err != nil {
			return nil, fmt.Errorf("storage: opening table %s: %w", name, err)
		}
		if img.NumRows != t.segCap || img.NumRows != sm.Rows {
			return nil, fmt.Errorf("storage: opening table %s: segment %s has %d rows, manifest says %d (capacity %d)",
				name, sm.File, img.NumRows, sm.Rows, t.segCap)
		}
		if len(img.Cols) != len(cols) {
			return nil, fmt.Errorf("storage: opening table %s: segment %s has %d columns, schema has %d",
				name, sm.File, len(img.Cols), len(cols))
		}
		d.segs = append(d.segs, segmentFromFooter(store, sm.File, img))
		d.sealed += img.NumRows
	}
	tailN := 0
	if tm.Tail != "" {
		rows, err := store.ReadTail(tm.Tail)
		if err != nil {
			return nil, fmt.Errorf("storage: opening table %s: %w", name, err)
		}
		if len(rows) < tm.TailRows {
			return nil, fmt.Errorf("storage: opening table %s: tail %s has %d rows, manifest says %d",
				name, tm.Tail, len(rows), tm.TailRows)
		}
		// The manifest count is authoritative: a crash between a tail
		// rewrite and the manifest commit can leave extra trailing rows.
		for i := 0; i < tm.TailRows; i++ {
			d.tail.rows[i] = Row(rows[i])
		}
		tailN = tm.TailRows
	}
	if len(tm.Indexes) > 0 {
		ix, err := buildIndexes(d, tailN, t.colPos, tm.Indexes)
		if err != nil {
			return nil, fmt.Errorf("storage: opening table %s: %w", name, err)
		}
		d.indexes = ix
	}
	d.tail.n.Store(int64(tailN))
	t.data.Store(d)
	return t, nil
}
