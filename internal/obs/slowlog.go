package obs

// slowlog.go: a non-blocking JSON-lines sink for slow-query diagnosis
// records. The request path marshals the entry and hands the bytes to a
// buffered channel; a single writer goroutine drains it. When the channel
// is full the entry is dropped and counted — a diagnostics log must never
// backpressure the queries it is diagnosing.

import (
	"bufio"
	"io"
	"sync"
	"time"
)

// slowLogQueue bounds how many marshaled entries can be in flight before
// Offer starts dropping.
const slowLogQueue = 256

// SlowLog writes JSON lines to a sink without blocking the caller.
// Nil-safe: every method on a nil *SlowLog is a no-op, so the service
// calls it unconditionally.
type SlowLog struct {
	threshold time.Duration
	ch        chan []byte
	done      chan struct{}
	written   Counter
	dropped   Counter

	mu     sync.Mutex
	closed bool
}

// NewSlowLog starts a writer goroutine draining into w. Entries for
// requests faster than threshold are the caller's job to filter (see
// Threshold); threshold 0 means log everything offered. The underlying
// writer is NOT closed by Close — the caller owns its lifecycle.
func NewSlowLog(w io.Writer, threshold time.Duration) *SlowLog {
	l := &SlowLog{
		threshold: threshold,
		ch:        make(chan []byte, slowLogQueue),
		done:      make(chan struct{}),
	}
	go func() {
		defer close(l.done)
		bw := bufio.NewWriter(w)
		for line := range l.ch {
			bw.Write(line)
			bw.WriteByte('\n')
			l.written.Inc()
		}
		bw.Flush()
	}()
	return l
}

// Threshold returns the configured slow threshold (0 on nil: callers
// treat a nil log as "nothing qualifies" via Enabled).
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return l.threshold
}

// Enabled reports whether the log accepts entries.
func (l *SlowLog) Enabled() bool { return l != nil }

// Offer enqueues one marshaled JSON entry (without trailing newline).
// Non-blocking: a full queue or a closed log drops the entry and counts
// the drop. No-op on nil.
func (l *SlowLog) Offer(line []byte) {
	if l == nil {
		return
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		l.dropped.Inc()
		return
	}
	// Send under the lock: Close sets closed before closing the channel,
	// so no Offer can race a send onto a closed channel.
	select {
	case l.ch <- line:
	default:
		l.dropped.Inc()
	}
	l.mu.Unlock()
}

// Close stops accepting entries, drains what was queued, flushes, and
// reports how many entries were written and dropped over the log's
// lifetime. Idempotent and nil-safe.
func (l *SlowLog) Close() (written, dropped int64) {
	if l == nil {
		return 0, 0
	}
	l.mu.Lock()
	if !l.closed {
		l.closed = true
		close(l.ch)
	}
	l.mu.Unlock()
	<-l.done
	return l.written.Value(), l.dropped.Value()
}

// Written returns entries flushed to the sink so far.
func (l *SlowLog) Written() int64 {
	if l == nil {
		return 0
	}
	return l.written.Value()
}

// Dropped returns entries lost to a full queue or post-Close offers.
func (l *SlowLog) Dropped() int64 {
	if l == nil {
		return 0
	}
	return l.dropped.Value()
}
