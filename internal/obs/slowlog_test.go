package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer guards a bytes.Buffer against the writer goroutine.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestSlowLogWritesLines(t *testing.T) {
	var buf syncBuffer
	l := NewSlowLog(&buf, 50*time.Millisecond)
	if l.Threshold() != 50*time.Millisecond {
		t.Fatalf("threshold = %v", l.Threshold())
	}
	l.Offer([]byte(`{"a":1}`))
	l.Offer([]byte(`{"b":2}`))
	written, dropped := l.Close()
	if written != 2 || dropped != 0 {
		t.Fatalf("Close = (%d, %d), want (2, 0)", written, dropped)
	}
	if got := buf.String(); got != "{\"a\":1}\n{\"b\":2}\n" {
		t.Fatalf("sink = %q", got)
	}
}

func TestSlowLogCloseIdempotentAndDropsAfter(t *testing.T) {
	var buf syncBuffer
	l := NewSlowLog(&buf, 0)
	l.Offer([]byte(`{}`))
	l.Close()
	l.Offer([]byte(`{"late":true}`)) // after close: dropped, no panic
	written, dropped := l.Close()
	if written != 1 || dropped != 1 {
		t.Fatalf("Close = (%d, %d), want (1, 1)", written, dropped)
	}
	if strings.Contains(buf.String(), "late") {
		t.Error("post-close entry reached sink")
	}
}

func TestSlowLogNilSafe(t *testing.T) {
	var l *SlowLog
	if l.Enabled() {
		t.Error("nil log reports enabled")
	}
	l.Offer([]byte(`{}`))
	if w, d := l.Close(); w != 0 || d != 0 {
		t.Errorf("nil Close = (%d, %d)", w, d)
	}
	if l.Threshold() != 0 || l.Written() != 0 || l.Dropped() != 0 {
		t.Error("nil accessors leaked state")
	}
}

// blockingWriter stalls until released, forcing the queue to fill.
type blockingWriter struct{ release chan struct{} }

func (w *blockingWriter) Write(p []byte) (int, error) {
	<-w.release
	return len(p), nil
}

func TestSlowLogDropsWhenFull(t *testing.T) {
	w := &blockingWriter{release: make(chan struct{})}
	l := NewSlowLog(w, 0)
	// Fill the queue past capacity; writer is stalled. The writer
	// goroutine may hold one entry in the bufio layer, so overshoot.
	for i := 0; i < slowLogQueue*2; i++ {
		l.Offer([]byte(`{}`))
	}
	if l.Dropped() == 0 {
		t.Fatal("expected drops with a stalled writer and full queue")
	}
	close(w.release)
	written, dropped := l.Close()
	if written+dropped != slowLogQueue*2 {
		t.Fatalf("written %d + dropped %d != offered %d", written, dropped, slowLogQueue*2)
	}
}

func TestSlowLogConcurrentOffers(t *testing.T) {
	var buf syncBuffer
	l := NewSlowLog(&buf, 0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				l.Offer([]byte(`{"x":1}`))
			}
		}()
	}
	wg.Wait()
	written, dropped := l.Close()
	if written+dropped != 160 {
		t.Fatalf("written %d + dropped %d != 160", written, dropped)
	}
	if lines := strings.Count(buf.String(), "\n"); int64(lines) != written {
		t.Fatalf("sink has %d lines, written = %d", lines, written)
	}
}
