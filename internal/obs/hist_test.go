package obs

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h LatencyHistogram
	for _, q := range []float64{-1, 0, 0.5, 1, 2, math.NaN()} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty histogram Quantile(%v) = %v, want 0", q, got)
		}
	}
	if h.Mean() != 0 || h.Sum() != 0 || h.Count() != 0 {
		t.Errorf("empty histogram not zeroed: mean=%v sum=%v count=%v", h.Mean(), h.Sum(), h.Count())
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	var h LatencyHistogram
	h.Observe(1 * time.Millisecond)
	h.Observe(100 * time.Millisecond)

	lo := h.Quantile(0)
	hi := h.Quantile(1)
	if lo > hi {
		t.Fatalf("Quantile(0)=%v > Quantile(1)=%v", lo, hi)
	}
	// Out-of-range q clamps to the edges.
	if got := h.Quantile(-3); got != lo {
		t.Errorf("Quantile(-3) = %v, want clamp to Quantile(0)=%v", got, lo)
	}
	if got := h.Quantile(7); got != hi {
		t.Errorf("Quantile(7) = %v, want clamp to Quantile(1)=%v", got, hi)
	}
	// NaN is treated as 0.
	if got := h.Quantile(math.NaN()); got != lo {
		t.Errorf("Quantile(NaN) = %v, want Quantile(0)=%v", got, lo)
	}
}

// TestHistogramQuantileMonotone pins the satellite requirement: over
// randomized observations, Quantile is monotone in q — in particular
// p50 <= p95 <= p99.
func TestHistogramQuantileMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		var h LatencyHistogram
		n := 1 + rng.Intn(2000)
		for i := 0; i < n; i++ {
			// Mix of magnitudes: ns to seconds, heavy-tailed.
			d := time.Duration(rng.Int63n(int64(time.Second)) >> uint(rng.Intn(30)))
			h.Observe(d)
		}
		s := h.Summary()
		if s.P50 > s.P95 || s.P95 > s.P99 {
			t.Fatalf("trial %d (n=%d): quantiles not monotone: p50=%v p95=%v p99=%v",
				trial, n, s.P50, s.P95, s.P99)
		}
		prev := time.Duration(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			cur := h.Quantile(q)
			if cur < prev {
				t.Fatalf("trial %d: Quantile(%.2f)=%v < Quantile(%.2f)=%v",
					trial, q, cur, q-0.05, prev)
			}
			prev = cur
		}
	}
}

func TestHistogramAccuracy(t *testing.T) {
	var h LatencyHistogram
	for i := 0; i < 1000; i++ {
		h.Observe(10 * time.Millisecond)
	}
	// Bucket-midpoint estimate: within a factor of 2 of the true value.
	got := h.Quantile(0.5)
	if got < 5*time.Millisecond || got > 20*time.Millisecond {
		t.Errorf("p50 of constant 10ms = %v, want within [5ms, 20ms]", got)
	}
	if mean := h.Mean(); mean != 10*time.Millisecond {
		t.Errorf("mean = %v, want exactly 10ms", mean)
	}
	if sum := h.Sum(); sum != 10*time.Second {
		t.Errorf("sum = %v, want 10s", sum)
	}
}

func TestHistogramNegativeObservation(t *testing.T) {
	var h LatencyHistogram
	h.Observe(-5 * time.Millisecond)
	if h.Count() != 1 {
		t.Fatalf("count = %d, want 1", h.Count())
	}
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("negative observation should count as zero, p50 = %v", got)
	}
}
