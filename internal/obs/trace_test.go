package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestNilTraceIsNoop(t *testing.T) {
	var tr *Trace
	sp := tr.Start("anything")
	sp.End()
	sp.SetAttr("k", "v")
	sp.Add("child", time.Millisecond)
	if tr.ID() != "" || tr.Root() != nil || tr.Info() != nil || tr.Finish() != 0 {
		t.Error("nil trace leaked state")
	}
}

func TestTraceNesting(t *testing.T) {
	tr := NewTrace("tid-1", "request")
	a := tr.Start("validate")
	a.End()
	b := tr.Start("execute")
	c := tr.Start("run_sql")
	c.SetAttr("rows", "42")
	c.End()
	b.End()
	total := tr.Finish()
	if total <= 0 {
		t.Fatalf("Finish = %v, want > 0", total)
	}

	info := tr.Info()
	if info.TraceID != "tid-1" {
		t.Fatalf("trace id = %q", info.TraceID)
	}
	root := info.Root
	if root.Name != "request" || len(root.Children) != 2 {
		t.Fatalf("root = %q with %d children, want request/2", root.Name, len(root.Children))
	}
	if root.Children[0].Name != "validate" || root.Children[1].Name != "execute" {
		t.Fatalf("children = %q, %q", root.Children[0].Name, root.Children[1].Name)
	}
	ex := root.Children[1]
	if len(ex.Children) != 1 || ex.Children[0].Name != "run_sql" {
		t.Fatalf("execute children wrong: %+v", ex.Children)
	}
	if ex.Children[0].Attrs["rows"] != "42" {
		t.Errorf("attrs = %v", ex.Children[0].Attrs)
	}
}

func TestTraceFinishClosesOpenSpans(t *testing.T) {
	tr := NewTrace("", "request")
	tr.Start("outer")
	tr.Start("inner") // never ended
	tr.Finish()
	info := tr.Info()
	if info.TraceID == "" || len(info.TraceID) != 32 {
		t.Errorf("generated trace id = %q, want 32 hex chars", info.TraceID)
	}
	outer := info.Root.Children[0]
	if outer.Name != "outer" || len(outer.Children) != 1 {
		t.Fatalf("open spans not closed into tree: %+v", outer)
	}
}

func TestSpanDoubleEnd(t *testing.T) {
	tr := NewTrace("t", "r")
	s := tr.Start("a")
	s.End()
	d1 := s.d
	time.Sleep(time.Millisecond)
	s.End()
	if s.d != d1 {
		t.Error("second End changed duration")
	}
}

func TestSpanAddPreMeasured(t *testing.T) {
	tr := NewTrace("t", "r")
	ex := tr.Start("execute")
	op := ex.Add("op:Hash Join", 7*time.Millisecond)
	op.SetAttr("loops", "1")
	// Add must not move the cursor: the next Start is still under execute.
	inner := tr.Start("bridge")
	inner.End()
	ex.End()
	tr.Finish()

	info := tr.Info()
	exi := info.Root.Children[0]
	if len(exi.Children) != 2 {
		t.Fatalf("execute has %d children, want 2", len(exi.Children))
	}
	if exi.Children[0].Name != "op:Hash Join" || exi.Children[0].DurationMs != 7.0 {
		t.Fatalf("pre-measured child = %+v", exi.Children[0])
	}
	if exi.Children[1].Name != "bridge" {
		t.Fatalf("cursor moved by Add: second child = %q", exi.Children[1].Name)
	}
}

func TestWriteTree(t *testing.T) {
	ti := &TraceInfo{
		TraceID: "abc",
		Root: &SpanInfo{
			Name: "request", DurationMs: 5,
			Children: []*SpanInfo{
				{Name: "execute", DurationMs: 4, Attrs: map[string]string{"rows": "3", "loops": "1"},
					Children: []*SpanInfo{{Name: "op:Seq Scan", DurationMs: 2}}},
			},
		},
	}
	var buf bytes.Buffer
	ti.WriteTree(&buf)
	out := buf.String()
	for _, want := range []string{
		"trace abc",
		"request  5.000ms",
		"  execute  4.000ms  [loops=1 rows=3]",
		"    op:Seq Scan  2.000ms",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("tree output missing %q:\n%s", want, out)
		}
	}
	// Nil-safe.
	var none *TraceInfo
	none.WriteTree(&buf)
}
