package obs

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	reqs := r.Counter("test_requests_total", "Requests.", "op")
	narrate := reqs.With("narrate")
	query := reqs.With("query")
	narrate.Inc()
	narrate.Inc()
	query.Add(5)
	if narrate.Value() != 2 || query.Value() != 5 {
		t.Fatalf("counter values = %d, %d; want 2, 5", narrate.Value(), query.Value())
	}
	// Re-binding the same labels returns the same series.
	if reqs.With("narrate") != narrate {
		t.Error("With with identical labels returned a different handle")
	}

	g := r.Gauge("test_depth", "Depth.").With()
	g.Set(3.5)
	if g.Value() != 3.5 {
		t.Fatalf("gauge = %v, want 3.5", g.Value())
	}
}

func TestRegistryPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("ok_total", "fine")
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("invalid name", func() { r.Counter("bad-name", "x") })
	mustPanic("invalid label", func() { r.Counter("fine_total", "x", "bad-label") })
	mustPanic("schema conflict", func() { r.Gauge("ok_total", "now a gauge") })
	mustPanic("arity mismatch", func() { r.Counter("labeled_total", "x", "op").With("a", "b") })
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("app_requests_total", "Total requests.", "op", "cache")
	c.With("query", "hit").Add(3)
	c.With("narrate", "miss").Inc()
	r.GaugeFunc("app_uptime_seconds", "Uptime.", func() float64 { return 12.5 })
	h := r.Summary("app_request_seconds", "Request latency.", "op").With("query")
	h.Observe(10 * time.Millisecond)
	h.Observe(20 * time.Millisecond)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	for _, want := range []string{
		"# HELP app_requests_total Total requests.",
		"# TYPE app_requests_total counter",
		`app_requests_total{op="narrate",cache="miss"} 1`,
		`app_requests_total{op="query",cache="hit"} 3`,
		"# TYPE app_uptime_seconds gauge",
		"app_uptime_seconds 12.5",
		"# TYPE app_request_seconds summary",
		`app_request_seconds{op="query",quantile="0.5"}`,
		`app_request_seconds{op="query",quantile="0.99"}`,
		"app_request_seconds_sum{op=\"query\"} 0.03",
		`app_request_seconds_count{op="query"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, out)
		}
	}

	// The linter accepts our own output.
	if errs := Lint(buf.Bytes()); len(errs) != 0 {
		t.Fatalf("Lint rejected our own exposition: %v\n---\n%s", errs, out)
	}

	// Deterministic: a second scrape is byte-identical.
	var buf2 bytes.Buffer
	r.WritePrometheus(&buf2)
	if buf.String() != buf2.String() {
		t.Error("consecutive scrapes differ")
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x").With().Inc()
	h := Handler(r)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "x_total 1") {
		t.Errorf("body missing sample:\n%s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/metrics", nil))
	if rec.Code != 405 {
		t.Errorf("POST /metrics = %d, want 405", rec.Code)
	}
}

func TestLintCatchesViolations(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"no help/type", "orphan_total 1\n"},
		{"bad name", "# HELP bad-name x\n# TYPE bad-name counter\nbad-name 1\n"},
		{"bad type", "# HELP a_total x\n# TYPE a_total tally\na_total 1\n"},
		{"duplicate series", "# HELP a_total x\n# TYPE a_total counter\na_total{op=\"q\"} 1\na_total{op=\"q\"} 2\n"},
		{"non-float value", "# HELP a_total x\n# TYPE a_total counter\na_total banana\n"},
		{"duplicate help", "# HELP a_total x\n# HELP a_total y\n# TYPE a_total counter\na_total 1\n"},
		{"type without help", "# TYPE a_total counter\na_total 1\n"},
	}
	for _, tc := range cases {
		if errs := Lint([]byte(tc.in)); len(errs) == 0 {
			t.Errorf("%s: lint found no errors in:\n%s", tc.name, tc.in)
		}
	}
}

func TestLintAcceptsSummaryChildren(t *testing.T) {
	in := "# HELP lat_seconds x\n# TYPE lat_seconds summary\n" +
		"lat_seconds{quantile=\"0.5\"} 0.01\n" +
		"lat_seconds_sum 0.5\n" +
		"lat_seconds_count 10\n"
	if errs := Lint([]byte(in)); len(errs) != 0 {
		t.Fatalf("lint rejected valid summary: %v", errs)
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "x", "op")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := c.With("a")
			for j := 0; j < 1000; j++ {
				h.Inc()
			}
		}()
	}
	// Concurrent scrapes while writing.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf bytes.Buffer
			r.WritePrometheus(&buf)
		}()
	}
	wg.Wait()
	if got := c.With("a").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
}
