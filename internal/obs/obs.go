// Package obs is the runtime observability substrate of the serving
// layer: a labeled metrics registry with Prometheus text-format
// exposition (obs.go, prom.go), log-bucketed latency histograms with
// quantile digests (hist.go), request-scoped trace span trees (trace.go),
// and a non-blocking structured slow-query log sink (slowlog.go).
//
// It generalizes the ad-hoc counters that used to live in
// internal/metrics/observe.go: every instrument is registered under a
// stable Prometheus-style name (optionally with labels), so one registry
// backs both the machine-readable GET /metrics exposition and the
// JSON /v1/stats snapshot — the two can never disagree, because they read
// the same atomics.
//
// Design constraints, in order:
//
//   - Hot-path instruments are pre-bound: Registry lookups (map + lock)
//     happen once at construction; Inc/Observe on the returned handle is
//     a single atomic op with no allocation.
//   - Everything is safe for concurrent use.
//   - The exposition is deterministic: families sort by name, series by
//     label values, so scrapes diff cleanly and the format linter
//     (lint.go) can assert no-duplicate-series.
//
// The paper-evaluation measures (BLEU, Self-BLEU, token accuracy) are a
// different concern and stay in internal/metrics.
package obs

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter safe for concurrent use.
// The zero value is ready; registry-bound counters are obtained from
// CounterVec.With.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. Prometheus counters are monotonic; negative n is reserved
// for the gauge-style corrections of unregistered counters.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable instantaneous value safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// metric kinds, matching the Prometheus TYPE vocabulary we emit.
const (
	typeCounter = "counter"
	typeGauge   = "gauge"
	typeSummary = "summary"
)

// validName is the Prometheus metric-name charset.
var validName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// validLabel is the Prometheus label-name charset.
var validLabel = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)

// series is one labeled instance of a family: exactly one of the value
// sources is set, matching the family's type.
type series struct {
	values []string // label values, parallel to the family's label names
	c      *Counter
	g      *Gauge
	h      *LatencyHistogram
	cfn    func() int64   // func-backed counter (snapshot on scrape)
	gfn    func() float64 // func-backed gauge
}

// family is one named metric with a fixed label schema.
type family struct {
	name   string
	help   string
	typ    string
	labels []string

	mu     sync.Mutex
	series map[string]*series
}

func (f *family) bind(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s has labels %v, got %d values", f.name, f.labels, len(values)))
	}
	key := strings.Join(values, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := &series{values: append([]string(nil), values...)}
	switch f.typ {
	case typeCounter:
		s.c = &Counter{}
	case typeGauge:
		s.g = &Gauge{}
	case typeSummary:
		s.h = &LatencyHistogram{}
	}
	f.series[key] = s
	return s
}

// Registry holds a set of metric families. The zero value is not usable;
// call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register creates (or re-fetches an identical) family. Conflicting
// re-registration is a programmer error and panics.
func (r *Registry) register(name, help, typ string, labels []string) *family {
	if !validName.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validLabel.MatchString(l) {
			panic(fmt.Sprintf("obs: metric %s: invalid label name %q", name, l))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || strings.Join(f.labels, ",") != strings.Join(labels, ",") {
			panic(fmt.Sprintf("obs: metric %s re-registered with a different schema", name))
		}
		return f
	}
	f := &family{
		name:   name,
		help:   help,
		typ:    typ,
		labels: append([]string(nil), labels...),
		series: make(map[string]*series),
	}
	r.families[name] = f
	return f
}

// CounterVec is a registered counter family; With binds one label
// combination to a hot-path handle.
type CounterVec struct{ f *family }

// GaugeVec is a registered gauge family.
type GaugeVec struct{ f *family }

// SummaryVec is a registered latency-summary family (a LatencyHistogram
// per label combination, exposed as a Prometheus summary in seconds).
type SummaryVec struct{ f *family }

// Counter registers (or fetches) a counter family. With no label names it
// is a single series bound via With().
func (r *Registry) Counter(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, typeCounter, labels)}
}

// Gauge registers (or fetches) a gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, typeGauge, labels)}
}

// Summary registers (or fetches) a latency-summary family.
func (r *Registry) Summary(name, help string, labels ...string) *SummaryVec {
	return &SummaryVec{f: r.register(name, help, typeSummary, labels)}
}

// With binds one label-value combination, creating the series on first
// use. The returned handle is cached: Inc is one atomic add.
func (v *CounterVec) With(values ...string) *Counter { return v.f.bind(values).c }

// Func registers a snapshot-on-scrape series: the counter's value is read
// from fn at exposition time. For counters whose source of truth already
// lives elsewhere (e.g. cache hit totals).
func (v *CounterVec) Func(fn func() int64, values ...string) {
	v.f.bind(values).cfn = fn
}

// With binds one label-value combination of a gauge family.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.bind(values).g }

// Func registers a snapshot-on-scrape gauge series.
func (v *GaugeVec) Func(fn func() float64, values ...string) {
	v.f.bind(values).gfn = fn
}

// With binds one label-value combination of a summary family.
func (v *SummaryVec) With(values ...string) *LatencyHistogram { return v.f.bind(values).h }

// GaugeFunc is the common shorthand for an unlabeled snapshot gauge.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.Gauge(name, help).Func(fn)
}

// CounterFunc is the common shorthand for an unlabeled snapshot counter.
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	r.Counter(name, help).Func(fn)
}

// snapshot returns the families sorted by name and, per family, the
// series sorted by label values — the deterministic exposition order.
func (r *Registry) snapshot() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// sortedSeries returns the family's series in label-value order.
func (f *family) sortedSeries() []*series {
	f.mu.Lock()
	out := make([]*series, 0, len(f.series))
	for _, s := range f.series {
		out = append(out, s)
	}
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		return strings.Join(out[i].values, "\xff") < strings.Join(out[j].values, "\xff")
	})
	return out
}
