package obs

// trace.go: request-scoped span trees. One Trace is created per request
// when tracing is on (debug=trace or a slow-query log is configured) and
// carried on the request value itself — never in a context.Context, whose
// WithValue would allocate on every request even with tracing off.
//
// Every method on Trace and Span is safe on a nil receiver and does
// nothing, so call sites instrument unconditionally:
//
//	sp := req.tr.Start("validate")   // req.tr == nil → sp == nil
//	defer sp.End()                   // no-op
//
// which is what keeps the disabled hot path at zero allocations (the
// alloc guard in the service tests pins this).
//
// A Trace is single-writer: spans are started and ended by whichever
// goroutine currently owns the request. The pipeline's caller→worker
// handoff over a channel establishes the necessary happens-before; there
// is no internal locking.

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Trace is one request's span tree.
type Trace struct {
	id   string
	root *Span
	cur  *Span // innermost open span; Start attaches children here
}

// Span is one timed region of a trace.
type Span struct {
	tr       *Trace
	parent   *Span
	name     string
	start    time.Time
	d        time.Duration
	ended    bool
	attrs    map[string]string
	children []*Span
}

// NewTraceID returns a random 16-byte hex trace id.
func NewTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is unheard of; fall back to a fixed id
		// rather than plumb an error through every request.
		return "00000000000000000000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// NewTrace starts a trace with an open root span. An empty id gets a
// fresh random one (clients pin ids for correlation across systems).
func NewTrace(id, rootName string) *Trace {
	if id == "" {
		id = NewTraceID()
	}
	tr := &Trace{id: id}
	tr.root = &Span{tr: tr, name: rootName, start: time.Now()}
	tr.cur = tr.root
	return tr
}

// ID returns the trace id ("" on nil).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Root returns the root span (nil on nil).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Start opens a child span under the innermost open span and makes it
// current. Returns nil on a nil trace.
func (t *Trace) Start(name string) *Span {
	if t == nil {
		return nil
	}
	parent := t.cur
	if parent == nil {
		parent = t.root
	}
	s := &Span{tr: t, parent: parent, name: name, start: time.Now()}
	parent.children = append(parent.children, s)
	t.cur = s
	return s
}

// Finish ends the root span (and any spans left open beneath it) and
// returns the total duration. Safe on nil.
func (t *Trace) Finish() time.Duration {
	if t == nil {
		return 0
	}
	for t.cur != nil && t.cur != t.root {
		t.cur.End()
	}
	t.root.End()
	return t.root.d
}

// End closes the span. Ending a span that is current pops back to its
// parent; ending twice, or ending nil, does nothing.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.d = time.Since(s.start)
	if s.tr != nil && s.tr.cur == s {
		s.tr.cur = s.parent
	}
}

// SetAttr attaches a key=value annotation to the span. No-op on nil.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]string)
	}
	s.attrs[key] = value
}

// Add attaches an already-measured child span — used to graft engine
// operator timings (collected by the iterator instrumentation) onto the
// tree after execution, without moving the current-span cursor. Returns
// the child for attr attachment; nil on a nil receiver.
func (s *Span) Add(name string, d time.Duration) *Span {
	if s == nil {
		return nil
	}
	c := &Span{tr: s.tr, parent: s, name: name, start: s.start, d: d, ended: true}
	s.children = append(s.children, c)
	return c
}

// TraceInfo is the wire form of a finished trace, embedded in v2
// responses under "trace" when the request asked for debug=trace, and in
// slow-query log entries.
type TraceInfo struct {
	TraceID string    `json:"trace_id"`
	Root    *SpanInfo `json:"root"`
}

// SpanInfo is the wire form of one span.
type SpanInfo struct {
	Name       string            `json:"name"`
	DurationMs float64           `json:"duration_ms"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Children   []*SpanInfo       `json:"children,omitempty"`
}

// Info renders the trace for the wire. Open spans are reported with
// their duration so far. Nil-safe (returns nil).
func (t *Trace) Info() *TraceInfo {
	if t == nil {
		return nil
	}
	return &TraceInfo{TraceID: t.id, Root: t.root.info()}
}

func (s *Span) info() *SpanInfo {
	if s == nil {
		return nil
	}
	d := s.d
	if !s.ended {
		d = time.Since(s.start)
	}
	out := &SpanInfo{
		Name:       s.name,
		DurationMs: float64(d) / float64(time.Millisecond),
	}
	if len(s.attrs) > 0 {
		out.Attrs = make(map[string]string, len(s.attrs))
		for k, v := range s.attrs {
			out.Attrs[k] = v
		}
	}
	for _, c := range s.children {
		out.Children = append(out.Children, c.info())
	}
	return out
}

// WriteTree pretty-prints a TraceInfo as an indented tree — the renderer
// behind `lantern -exec -trace`.
func (ti *TraceInfo) WriteTree(w io.Writer) {
	if ti == nil || ti.Root == nil {
		return
	}
	fmt.Fprintf(w, "trace %s\n", ti.TraceID)
	writeSpanTree(w, ti.Root, 0)
}

func writeSpanTree(w io.Writer, s *SpanInfo, depth int) {
	indent := strings.Repeat("  ", depth)
	fmt.Fprintf(w, "%s%s  %.3fms", indent, s.Name, s.DurationMs)
	if len(s.Attrs) > 0 {
		keys := make([]string, 0, len(s.Attrs))
		for k := range s.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for i, k := range keys {
			parts[i] = k + "=" + s.Attrs[k]
		}
		fmt.Fprintf(w, "  [%s]", strings.Join(parts, " "))
	}
	fmt.Fprintln(w)
	for _, c := range s.Children {
		writeSpanTree(w, c, depth+1)
	}
}
