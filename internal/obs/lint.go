package obs

// lint.go: a validator for Prometheus text-format exposition, used by the
// `make metrics-lint` CI check to verify what a booted daemon actually
// serves at GET /metrics — independent of the writer in prom.go, so a
// writer bug cannot hide from its own checker.

import (
	"bufio"
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// lintFamily tracks what the exposition declared for one metric name.
type lintFamily struct {
	help bool
	typ  string
}

var lintTypes = map[string]bool{
	"counter": true, "gauge": true, "summary": true,
	"histogram": true, "untyped": true,
}

// Lint validates Prometheus text-format exposition data and returns every
// violation found (nil when clean). It checks:
//
//   - metric and label names match the Prometheus charsets;
//   - every sample's family declares both # HELP and # TYPE before its
//     first sample, with a known type, each at most once;
//   - summary/histogram child samples (_sum, _count, _bucket, quantile/le
//     labels) attach to a declared family of that type;
//   - no duplicate series (same name and label set twice);
//   - sample values parse as floats.
func Lint(data []byte) []error {
	var errs []error
	fams := make(map[string]*lintFamily)
	sampled := make(map[string]bool) // family already has samples
	seen := make(map[string]bool)    // full series identity
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := lintComment(line, fams, sampled); err != nil {
				errs = append(errs, fmt.Errorf("line %d: %w", lineNo, err))
			}
			continue
		}
		if err := lintSample(line, fams, sampled, seen); err != nil {
			errs = append(errs, fmt.Errorf("line %d: %w", lineNo, err))
		}
	}
	if err := sc.Err(); err != nil {
		errs = append(errs, err)
	}
	for name, f := range fams {
		if !f.help {
			errs = append(errs, fmt.Errorf("metric %s has # TYPE but no # HELP", name))
		}
		if f.typ == "" {
			errs = append(errs, fmt.Errorf("metric %s has # HELP but no # TYPE", name))
		}
	}
	return errs
}

func lintComment(line string, fams map[string]*lintFamily, sampled map[string]bool) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // free-form comment
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 {
			return fmt.Errorf("malformed HELP line %q", line)
		}
		name := fields[2]
		if !validName.MatchString(name) {
			return fmt.Errorf("HELP for invalid metric name %q", name)
		}
		f := fams[name]
		if f == nil {
			f = &lintFamily{}
			fams[name] = f
		}
		if f.help {
			return fmt.Errorf("duplicate # HELP for %s", name)
		}
		f.help = true
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		name, typ := fields[2], fields[3]
		if !validName.MatchString(name) {
			return fmt.Errorf("TYPE for invalid metric name %q", name)
		}
		if !lintTypes[typ] {
			return fmt.Errorf("metric %s has unknown type %q", name, typ)
		}
		f := fams[name]
		if f == nil {
			f = &lintFamily{}
			fams[name] = f
		}
		if f.typ != "" {
			return fmt.Errorf("duplicate # TYPE for %s", name)
		}
		if sampled[name] {
			return fmt.Errorf("metric %s: # TYPE after samples", name)
		}
		f.typ = typ
	}
	return nil
}

func lintSample(line string, fams map[string]*lintFamily, sampled, seen map[string]bool) error {
	name, labels, value, err := parseSample(line)
	if err != nil {
		return err
	}
	if !validName.MatchString(name) {
		return fmt.Errorf("invalid metric name %q", name)
	}
	if _, err := strconv.ParseFloat(value, 64); err != nil {
		return fmt.Errorf("metric %s: value %q is not a float", name, value)
	}
	// Resolve the family: summary/histogram children sample under
	// suffixed names.
	famName := name
	if fams[famName] == nil {
		for _, suffix := range []string{"_sum", "_count", "_bucket"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name && fams[base] != nil {
				t := fams[base].typ
				if t == "summary" || t == "histogram" {
					famName = base
				}
				break
			}
		}
	}
	f := fams[famName]
	if f == nil || f.typ == "" || !f.help {
		return fmt.Errorf("metric %s: sample without preceding # HELP and # TYPE", name)
	}
	sampled[famName] = true
	var parts []string
	for k, v := range labels {
		if !validLabel.MatchString(k) && k != "quantile" && k != "le" {
			return fmt.Errorf("metric %s: invalid label name %q", name, k)
		}
		parts = append(parts, k+"="+v)
	}
	sort.Strings(parts)
	id := name + "{" + strings.Join(parts, ",") + "}"
	if seen[id] {
		return fmt.Errorf("duplicate series %s", id)
	}
	seen[id] = true
	return nil
}

// parseSample splits `name{k="v",...} value` (labels optional) into its
// parts without supporting the full escape grammar beyond what the
// escaper in prom.go emits.
func parseSample(line string) (name string, labels map[string]string, value string, err error) {
	labels = map[string]string{}
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		end := strings.LastIndexByte(rest, '}')
		if end < i {
			return "", nil, "", fmt.Errorf("unterminated label set in %q", line)
		}
		if err := parseLabels(rest[i+1:end], labels); err != nil {
			return "", nil, "", err
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			return "", nil, "", fmt.Errorf("malformed sample %q", line)
		}
		name, rest = fields[0], fields[1]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 {
		return "", nil, "", fmt.Errorf("sample %q has no value", line)
	}
	return name, labels, fields[0], nil
}

func parseLabels(s string, out map[string]string) error {
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return fmt.Errorf("malformed label pair in %q", s)
		}
		key := strings.TrimSpace(s[:eq])
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return fmt.Errorf("label %s: value is not quoted", key)
		}
		s = s[1:]
		var val strings.Builder
		closed := false
		for i := 0; i < len(s); i++ {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				i++
				val.WriteByte(s[i])
				continue
			}
			if c == '"' {
				s = s[i+1:]
				closed = true
				break
			}
			val.WriteByte(c)
		}
		if !closed {
			return fmt.Errorf("label %s: unterminated value", key)
		}
		if _, dup := out[key]; dup {
			return fmt.Errorf("duplicate label %s in one series", key)
		}
		out[key] = val.String()
		s = strings.TrimPrefix(strings.TrimSpace(s), ",")
		s = strings.TrimSpace(s)
	}
	return nil
}
