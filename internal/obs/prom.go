package obs

// prom.go: Prometheus text-format exposition (version 0.0.4) of a
// Registry. Families sort by name, series by label values, so consecutive
// scrapes of an idle server are byte-identical and `make metrics-lint`
// can assert the format invariants (lint.go) against a live daemon.

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// summaryQuantiles are the quantile series emitted per summary family,
// matching the p50/p95/p99 digests /v1/stats reports.
var summaryQuantiles = []struct {
	label string
	q     float64
}{
	{"0.5", 0.50},
	{"0.95", 0.95},
	{"0.99", 0.99},
}

// WritePrometheus renders every registered family in Prometheus text
// format: a HELP/TYPE header pair per family, then one sample line per
// series (summaries expand into quantile samples plus _sum and _count).
// Durations are exposed in seconds, the Prometheus base unit.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.snapshot() {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			f.name, escapeHelp(f.help), f.name, f.typ); err != nil {
			return err
		}
		for _, s := range f.sortedSeries() {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, s *series) error {
	switch {
	case s.c != nil || s.cfn != nil:
		v := int64(0)
		if s.cfn != nil {
			v = s.cfn()
		} else {
			v = s.c.Value()
		}
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(f.labels, s.values, ""), v)
		return err
	case s.g != nil || s.gfn != nil:
		v := 0.0
		if s.gfn != nil {
			v = s.gfn()
		} else {
			v = s.g.Value()
		}
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(f.labels, s.values, ""), formatFloat(v))
		return err
	case s.h != nil:
		for _, sq := range summaryQuantiles {
			d := s.h.Quantile(sq.q)
			if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name,
				labelString(f.labels, s.values, sq.label), formatFloat(seconds(d))); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name,
			labelString(f.labels, s.values, ""), formatFloat(seconds(s.h.Sum()))); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name,
			labelString(f.labels, s.values, ""), s.h.Count())
		return err
	}
	return nil
}

func seconds(d time.Duration) float64 { return float64(d) / float64(time.Second) }

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// labelString renders {k="v",...}; quantile (when non-empty) is appended
// as the summary's reserved label. No labels at all renders as "".
func labelString(names, values []string, quantile string) string {
	if len(names) == 0 && quantile == "" {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(n)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(values[i]))
		sb.WriteByte('"')
	}
	if quantile != "" {
		if len(names) > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(`quantile="`)
		sb.WriteString(quantile)
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

var labelEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)

func escapeHelp(s string) string  { return helpEscaper.Replace(s) }
func escapeLabel(s string) string { return labelEscaper.Replace(s) }

// Handler serves the registry as a GET /metrics endpoint.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "use GET", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
