package obs

// hist.go: the log-bucketed latency histogram behind every summary-type
// metric, moved here from internal/metrics/observe.go (where it served
// only /v1/stats) and generalized to back the Prometheus exposition too.

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is one bucket per power of two of nanoseconds: bucket i
// holds observations d with bits.Len64(d) == i, i.e. d in [2^(i-1), 2^i).
// 64 buckets cover every possible time.Duration.
const histBuckets = 64

// LatencyHistogram is a fixed-size logarithmic histogram of durations,
// safe for concurrent Observe and read. The zero value is ready.
//
// Quantile estimates are bucket-midpoint approximations: with power-of-two
// buckets the relative error is at most ~50%, which is ample for the
// p50/p95/p99 trend lines the stats endpoint reports.
type LatencyHistogram struct {
	count   atomic.Int64
	sumNS   atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one duration. Negative durations count as zero.
func (h *LatencyHistogram) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sumNS.Add(ns)
	h.buckets[bits.Len64(uint64(ns))].Add(1)
}

// Count returns the number of observations.
func (h *LatencyHistogram) Count() int64 { return h.count.Load() }

// Sum returns the total of all observed durations.
func (h *LatencyHistogram) Sum() time.Duration { return time.Duration(h.sumNS.Load()) }

// Mean returns the mean observed duration (0 when empty).
func (h *LatencyHistogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sumNS.Load() / n)
}

// Quantile returns an estimate of the q-quantile as the midpoint of the
// bucket containing it.
//
// Edge behavior, explicitly: q is clamped into [0, 1] — q <= 0 answers
// the smallest observed bucket, q >= 1 the largest — and a NaN q is
// treated as 0. An empty histogram returns 0 for every q. Because the
// answer is a cumulative walk over the same bucket array, estimates are
// monotone in q: Quantile(p) <= Quantile(q) whenever p <= q (the
// monotonicity test in hist_test.go pins this).
//
// Reads are not atomic with respect to concurrent Observe calls; the
// result is a statistically faithful snapshot, which is all a stats
// endpoint needs.
func (h *LatencyHistogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if math.IsNaN(q) || q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q * float64(total))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= target {
			return bucketMid(i)
		}
	}
	return bucketMid(histBuckets - 1)
}

// bucketMid returns the midpoint of bucket i's range [2^(i-1), 2^i).
func bucketMid(i int) time.Duration {
	if i == 0 {
		return 0 // only d == 0 lands here
	}
	lo := int64(1) << (i - 1)
	hi := lo << 1
	if hi < lo { // top bucket overflow
		return time.Duration(lo)
	}
	return time.Duration((lo + hi) / 2)
}

// LatencySummary is a point-in-time digest of a LatencyHistogram — the
// shape the JSON stats endpoint reports.
type LatencySummary struct {
	Count int64         `json:"count"`
	Mean  time.Duration `json:"mean_ns"`
	P50   time.Duration `json:"p50_ns"`
	P95   time.Duration `json:"p95_ns"`
	P99   time.Duration `json:"p99_ns"`
}

// Summary digests the histogram into the percentiles the serving stats
// endpoint reports.
func (h *LatencyHistogram) Summary() LatencySummary {
	return LatencySummary{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}
