package lot

import (
	"testing"

	"lantern/internal/plan"
	"lantern/internal/pool"
)

// figure4Tree hand-builds the operator tree of the paper's Figure 4.
func figure4Tree() *plan.Node {
	scanIn := &plan.Node{Name: "Seq Scan", Source: "pg",
		Attrs: map[string]string{plan.AttrRelation: "inproceedings", plan.AttrAlias: "inproceedings"}}
	scanPub := &plan.Node{Name: "Seq Scan", Source: "pg",
		Attrs: map[string]string{plan.AttrRelation: "publication", plan.AttrAlias: "publication",
			plan.AttrFilter: "(title LIKE '%July%')"}}
	hash := &plan.Node{Name: "Hash", Source: "pg", Children: []*plan.Node{scanPub}}
	join := &plan.Node{Name: "Hash Join", Source: "pg",
		Attrs:    map[string]string{plan.AttrJoinCond: "((i.proceeding_key) = (p.pub_key))"},
		Children: []*plan.Node{scanIn, hash}}
	sort := &plan.Node{Name: "Sort", Source: "pg",
		Attrs:    map[string]string{plan.AttrSortKey: "i.proceeding_key"},
		Children: []*plan.Node{join}}
	agg := &plan.Node{Name: "GroupAggregate", Source: "pg",
		Attrs: map[string]string{plan.AttrGroupKey: "i.proceeding_key",
			plan.AttrFilter: "(count(*) > 200)"},
		Children: []*plan.Node{sort}}
	return &plan.Node{Name: "Unique", Source: "pg", Children: []*plan.Node{agg}}
}

func TestBuildFigure4(t *testing.T) {
	store := pool.NewSeededStore()
	lt, err := Build(figure4Tree(), store)
	if err != nil {
		t.Fatal(err)
	}
	// 7 nodes, 2 auxiliary (Hash, Sort), 5 narration steps.
	if got := len(lt.Steps); got != 5 {
		t.Fatalf("steps = %d, want 5", got)
	}
	pairs := lt.ClusterPairs()
	if len(pairs) != 2 {
		t.Fatalf("cluster pairs = %d, want 2", len(pairs))
	}
	// Identifier assignment follows the paper: T1 on the filtered scan,
	// T2 on the join, T3 on the aggregate; none on the pass-through scan
	// or the root.
	want := map[string]string{
		"Seq Scan@publication": "T1",
		"Hash Join":            "T2",
		"GroupAggregate":       "T3",
	}
	var unique, scanIn *Node
	var rec func(n *Node)
	rec = func(n *Node) {
		for _, c := range n.Children {
			rec(c)
		}
		key := n.Plan.Name
		if r := n.Plan.Attr(plan.AttrRelation); r != "" {
			key += "@" + r
		}
		if w, ok := want[key]; ok && n.Identifier != w {
			t.Errorf("%s: identifier = %q, want %q", key, n.Identifier, w)
		}
		if key == "Unique" {
			unique = n
		}
		if key == "Seq Scan@inproceedings" {
			scanIn = n
		}
	}
	rec(lt.Root)
	if unique == nil || unique.Identifier != "" {
		t.Errorf("root should have no identifier: %+v", unique)
	}
	if scanIn == nil || scanIn.Identifier != "" {
		t.Errorf("pass-through scan should have no identifier: %+v", scanIn)
	}
}

func TestOutputNames(t *testing.T) {
	store := pool.NewSeededStore()
	lt, err := Build(figure4Tree(), store)
	if err != nil {
		t.Fatal(err)
	}
	root := lt.Root // Unique
	agg := root.Children[0]
	sortN := agg.Children[0]
	join := sortN.Children[0]
	scanIn, hash := join.Children[0], join.Children[1]
	if scanIn.OutputName() != "inproceedings" {
		t.Errorf("scan output = %q", scanIn.OutputName())
	}
	// The Hash auxiliary passes its child's identifier through.
	if hash.OutputName() != "T1" {
		t.Errorf("hash output = %q", hash.OutputName())
	}
	if join.OutputName() != "T2" {
		t.Errorf("join output = %q", join.OutputName())
	}
	if sortN.OutputName() != "T2" {
		t.Errorf("sort output = %q (should pass through)", sortN.OutputName())
	}
	if agg.OutputName() != "T3" {
		t.Errorf("agg output = %q", agg.OutputName())
	}
}

func TestNamesAndDefinitions(t *testing.T) {
	store := pool.NewSeededStore()
	lt, err := Build(figure4Tree(), store)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	var rec func(n *Node)
	rec = func(n *Node) {
		for _, c := range n.Children {
			rec(c)
		}
		names = append(names, n.Name)
	}
	rec(lt.Root)
	found := map[string]bool{}
	for _, n := range names {
		found[n] = true
	}
	// POEM aliases surface as display names.
	if !found["sequential scan"] || !found["duplicate removal"] {
		t.Errorf("names = %v", names)
	}
	if lt.Root.Children[0].Definition == "" {
		t.Error("aggregate should carry a POEM definition")
	}
}

func TestBuildAliasOutputName(t *testing.T) {
	store := pool.NewSeededStore()
	tree := &plan.Node{Name: "Seq Scan", Source: "pg",
		Attrs: map[string]string{plan.AttrRelation: "customer", plan.AttrAlias: "c"}}
	lt, err := Build(tree, store)
	if err != nil {
		t.Fatal(err)
	}
	if got := lt.Root.OutputName(); got != "customer (c)" {
		t.Errorf("output = %q", got)
	}
}

func TestBuildUnknownSource(t *testing.T) {
	store := pool.NewSeededStore()
	tree := &plan.Node{Name: "Seq Scan", Source: "oracle"}
	if _, err := Build(tree, store); err == nil {
		t.Error("expected error for unseeded source")
	}
}
