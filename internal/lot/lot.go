// Package lot implements the language-annotated operator tree of paper
// §5.3–5.4: the operator tree of a QEP extended with, per node, the
// display name (POEM alias or name), the natural-language description
// template obtained through POOL's COMPOSE statement, the clustering of
// auxiliary nodes with their critical nodes, and the unique identifiers
// (T1, T2, ...) assigned to intermediate results.
package lot

import (
	"fmt"

	"lantern/internal/plan"
	"lantern/internal/pool"
)

// Node is one annotated node of a LOT.
type Node struct {
	Plan *plan.Node
	// Name is the n.name of §5.3: the POEM alias when specified, the
	// operator name otherwise.
	Name string
	// Label is the n.label of §5.3: the natural-language template for this
	// node (for a critical node with clustered auxiliaries, the composed
	// template of the whole cluster is assembled by the narrator from the
	// auxiliary labels and this one).
	Label string
	// Auxiliary marks nodes that were clustered into their parent and are
	// therefore not narrated as a separate step.
	Auxiliary bool
	// AuxChildren are the clustered auxiliary children of this node, in
	// child order.
	AuxChildren []*Node
	// Identifier names this node's output when it is an intermediate
	// result referenced by a later step ("T1", "T2", ...). Empty when the
	// output needs no name (a scan that passes the base relation through
	// unchanged, an auxiliary node, or the root).
	Identifier string
	// Definition is the POEM defn attribute, surfaced so presentation
	// layers can offer operator definitions to the learner.
	Definition string

	Children []*Node
	Parent   *Node
}

// OutputName is how a later narration step refers to this node's output:
// its identifier when one was assigned, otherwise the base relation (with
// alias when the query renames it), otherwise the output of its only child
// (auxiliary pass-through).
func (n *Node) OutputName() string {
	if n.Identifier != "" {
		return n.Identifier
	}
	if rel := n.Plan.Attr(plan.AttrRelation); rel != "" {
		if alias := n.Plan.Attr(plan.AttrAlias); alias != "" && alias != rel {
			return fmt.Sprintf("%s (%s)", rel, alias)
		}
		return rel
	}
	if len(n.Children) > 0 {
		return n.Children[0].OutputName()
	}
	return "the result"
}

// Tree is a fully annotated LOT.
type Tree struct {
	Root   *Node
	Source string
	// Steps lists the non-auxiliary nodes in narration (post) order.
	Steps []*Node
}

// Build constructs the LOT for an operator tree using the POEM store,
// clustering auxiliary nodes and assigning intermediate identifiers in
// post-order — lines 1–2 of Algorithm 1.
func Build(tree *plan.Node, store *pool.Store) (*Tree, error) {
	targets, err := store.AuxiliaryTargets(tree.Source)
	if err != nil {
		return nil, err
	}
	var build func(p *plan.Node, parent *Node) (*Node, error)
	build = func(p *plan.Node, parent *Node) (*Node, error) {
		obj, err := store.Lookup(tree.Source, plan.Canon(p.Name))
		if err != nil {
			return nil, fmt.Errorf("lot: operator %q has no POEM entry for source %q: %w",
				p.Name, tree.Source, err)
		}
		n := &Node{Plan: p, Name: obj.DisplayName(), Definition: obj.Defn, Parent: parent}
		label, err := store.ComposeTemplate(tree.Source, []string{obj.Name}, nil)
		if err != nil {
			return nil, err
		}
		n.Label = label
		for _, c := range p.Children {
			cn, err := build(c, n)
			if err != nil {
				return nil, err
			}
			n.Children = append(n.Children, cn)
		}
		// Cluster auxiliary children: child c is auxiliary to n when the
		// POEM store records an edge canon(c) -> canon(n).
		for _, cn := range n.Children {
			if targets[plan.Canon(cn.Plan.Name)][plan.Canon(p.Name)] {
				cn.Auxiliary = true
				n.AuxChildren = append(n.AuxChildren, cn)
			}
		}
		return n, nil
	}
	root, err := build(tree, nil)
	if err != nil {
		return nil, err
	}
	t := &Tree{Root: root, Source: tree.Source}
	t.assignIdentifiers()
	return t, nil
}

// assignIdentifiers numbers intermediate results in post-order, skipping
// auxiliary nodes, the root, and pass-through scans (a scan with no filter
// emits the base relation unchanged, so the paper leaves its identifier
// null — Example 5.1 step 1).
func (t *Tree) assignIdentifiers() {
	counter := 0
	var rec func(n *Node)
	rec = func(n *Node) {
		for _, c := range n.Children {
			rec(c)
		}
		if n.Auxiliary {
			return
		}
		t.Steps = append(t.Steps, n)
		if n.Parent == nil {
			return // root: "final results", no identifier
		}
		if isPassThroughScan(n) {
			return
		}
		counter++
		n.Identifier = fmt.Sprintf("T%d", counter)
	}
	rec(t.Root)
}

func isPassThroughScan(n *Node) bool {
	if len(n.Children) > 0 {
		return false
	}
	p := n.Plan
	return p.Attr(plan.AttrFilter) == "" && p.Attr(plan.AttrIndexCond) == ""
}

// ClusterPairs returns the (auxiliary, critical) node pairs of the tree —
// the cluster(T_N) set of §5.4 — for inspection and testing.
func (t *Tree) ClusterPairs() [][2]*Node {
	var out [][2]*Node
	var rec func(n *Node)
	rec = func(n *Node) {
		for _, c := range n.Children {
			rec(c)
		}
		for _, aux := range n.AuxChildren {
			out = append(out, [2]*Node{aux, n})
		}
	}
	rec(t.Root)
	return out
}
