package datum

import (
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KNull: "NULL", KInt: "INTEGER", KFloat: "FLOAT", KString: "TEXT", KBool: "BOOLEAN",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if d := NewInt(42); d.Kind() != KInt || d.Int() != 42 {
		t.Errorf("NewInt(42) = %v", d)
	}
	if d := NewFloat(2.5); d.Kind() != KFloat || d.Float() != 2.5 {
		t.Errorf("NewFloat(2.5) = %v", d)
	}
	if d := NewString("x"); d.Kind() != KString || d.Str() != "x" {
		t.Errorf("NewString(x) = %v", d)
	}
	if d := NewBool(true); d.Kind() != KBool || !d.Bool() {
		t.Errorf("NewBool(true) = %v", d)
	}
	if !Null.IsNull() {
		t.Error("Null.IsNull() = false")
	}
	var zero D
	if !zero.IsNull() {
		t.Error("zero D is not NULL")
	}
}

func TestFloatWidensInt(t *testing.T) {
	if got := NewInt(7).Float(); got != 7.0 {
		t.Errorf("NewInt(7).Float() = %v, want 7", got)
	}
}

func TestAccessorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"Int on string":   func() { NewString("a").Int() },
		"Str on int":      func() { NewInt(1).Str() },
		"Bool on float":   func() { NewFloat(1).Bool() },
		"Float on string": func() { NewString("a").Float() },
		"Float on bool":   func() { NewBool(true).Float() },
		"Int on null":     func() { Null.Int() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		d    D
		want string
	}{
		{Null, "NULL"},
		{NewInt(-3), "-3"},
		{NewFloat(1.5), "1.5"},
		{NewString("it's"), "'it''s'"},
		{NewBool(true), "true"},
		{NewBool(false), "false"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("%v.String() = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestRaw(t *testing.T) {
	if got := NewString("abc").Raw(); got != "abc" {
		t.Errorf("Raw() = %q, want abc", got)
	}
	if got := NewInt(5).Raw(); got != "5" {
		t.Errorf("Raw() = %q, want 5", got)
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b D
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewInt(1), NewFloat(1.5), -1},
		{NewFloat(1.0), NewInt(1), 0},
		{NewString("a"), NewString("b"), -1},
		{NewString("b"), NewString("b"), 0},
		{Null, NewInt(0), -1},
		{NewInt(0), Null, 1},
		{Null, Null, 0},
		{NewBool(false), NewBool(true), -1},
		{NewBool(true), NewBool(true), 0},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		return Compare(NewInt(a), NewInt(b)) == -Compare(NewInt(b), NewInt(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEqual(t *testing.T) {
	if !Equal(NewInt(1), NewFloat(1)) {
		t.Error("1 != 1.0")
	}
	if Equal(Null, Null) {
		t.Error("NULL = NULL should be false (SQL semantics)")
	}
	if Equal(NewInt(1), NewString("1")) {
		t.Error("1 = '1' should be false")
	}
}

func TestArithInt(t *testing.T) {
	cases := []struct {
		op   byte
		a, b int64
		want int64
	}{
		{'+', 2, 3, 5}, {'-', 2, 3, -1}, {'*', 4, 3, 12}, {'/', 7, 2, 3}, {'%', 7, 2, 1},
	}
	for _, c := range cases {
		got, err := Arith(c.op, NewInt(c.a), NewInt(c.b))
		if err != nil {
			t.Fatalf("Arith(%c): %v", c.op, err)
		}
		if got.Kind() != KInt || got.Int() != c.want {
			t.Errorf("%d %c %d = %v, want %d", c.a, c.op, c.b, got, c.want)
		}
	}
}

func TestArithFloatWidening(t *testing.T) {
	got, err := Arith('+', NewInt(1), NewFloat(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind() != KFloat || got.Float() != 1.5 {
		t.Errorf("1 + 0.5 = %v, want 1.5", got)
	}
}

func TestArithNullPropagation(t *testing.T) {
	got, err := Arith('+', Null, NewInt(1))
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsNull() {
		t.Errorf("NULL + 1 = %v, want NULL", got)
	}
}

func TestArithErrors(t *testing.T) {
	if _, err := Arith('/', NewInt(1), NewInt(0)); err == nil {
		t.Error("integer division by zero: expected error")
	}
	if _, err := Arith('/', NewFloat(1), NewFloat(0)); err == nil {
		t.Error("float division by zero: expected error")
	}
	if _, err := Arith('+', NewString("a"), NewInt(1)); err == nil {
		t.Error("string arithmetic: expected error")
	}
	if _, err := Arith('?', NewInt(1), NewInt(1)); err == nil {
		t.Error("unknown operator: expected error")
	}
}

func TestLike(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%o", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h_go", false},
		{"hello", "%", true},
		{"", "%", true},
		{"", "_", false},
		{"July proceedings", "%July%", true},
		{"june", "%July%", false},
		{"abc", "a%b%c", true},
		{"axbyc", "a%b%c", true},
		{"ac", "a%b%c", false},
		{"BUILDING", "BUILD%", true},
		{"building", "BUILD%", false}, // case sensitive
	}
	for _, c := range cases {
		if got := Like(c.s, c.p); got != c.want {
			t.Errorf("Like(%q, %q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}

func TestHashEqualImpliesSameHash(t *testing.T) {
	if NewInt(1).Hash() != NewFloat(1).Hash() {
		t.Error("1 and 1.0 must hash equally")
	}
	if NewString("ab").Hash() == NewString("ba").Hash() {
		t.Error("different strings should (almost surely) hash differently")
	}
	f := func(v int64) bool { return NewInt(v).Hash() == NewInt(v).Hash() }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want D
	}{
		{"42", NewInt(42)},
		{"-1", NewInt(-1)},
		{"2.5", NewFloat(2.5)},
		{"NULL", Null},
		{"null", Null},
		{"true", NewBool(true)},
		{"FALSE", NewBool(false)},
		{"BUILDING", NewString("BUILDING")},
	}
	for _, c := range cases {
		got := Parse(c.in)
		if got.Kind() != c.want.Kind() || Compare(got, c.want) != 0 {
			t.Errorf("Parse(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestIsNumeric(t *testing.T) {
	if !NewInt(1).IsNumeric() || !NewFloat(1).IsNumeric() {
		t.Error("numerics not numeric")
	}
	if NewString("1").IsNumeric() || Null.IsNumeric() || NewBool(true).IsNumeric() {
		t.Error("non-numerics reported numeric")
	}
}
