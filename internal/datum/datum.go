// Package datum defines the typed value model shared by the SQL parser,
// the storage layer, and the execution engine. A Datum is a single SQL
// value: an integer, a float, a string, a boolean, or NULL.
//
// The comparison and arithmetic rules follow the usual SQL semantics the
// substrate engine needs: numeric types compare after widening to float,
// NULL never equals anything (three-valued logic is handled by the engine;
// datum-level Compare treats NULL as less than every non-NULL value so that
// sorting is total and deterministic).
package datum

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the runtime type of a Datum.
type Kind uint8

// The supported value kinds.
const (
	KNull Kind = iota
	KInt
	KFloat
	KString
	KBool
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KNull:
		return "NULL"
	case KInt:
		return "INTEGER"
	case KFloat:
		return "FLOAT"
	case KString:
		return "TEXT"
	case KBool:
		return "BOOLEAN"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// D is a single SQL value. The zero value is NULL.
type D struct {
	k Kind
	i int64
	f float64
	s string
	b bool
}

// Null is the NULL datum.
var Null = D{}

// NewInt returns an integer datum.
func NewInt(v int64) D { return D{k: KInt, i: v} }

// NewFloat returns a float datum.
func NewFloat(v float64) D { return D{k: KFloat, f: v} }

// NewString returns a string datum.
func NewString(v string) D { return D{k: KString, s: v} }

// NewBool returns a boolean datum.
func NewBool(v bool) D { return D{k: KBool, b: v} }

// Kind reports the datum's runtime type.
func (d D) Kind() Kind { return d.k }

// IsNull reports whether the datum is NULL.
func (d D) IsNull() bool { return d.k == KNull }

// Int returns the integer payload. It panics if the kind is not KInt.
func (d D) Int() int64 {
	if d.k != KInt {
		panic(fmt.Sprintf("datum: Int() on %s", d.k))
	}
	return d.i
}

// Float returns the float payload, widening integers. It panics for
// non-numeric kinds.
func (d D) Float() float64 {
	switch d.k {
	case KFloat:
		return d.f
	case KInt:
		return float64(d.i)
	}
	panic(fmt.Sprintf("datum: Float() on %s", d.k))
}

// Str returns the string payload. It panics if the kind is not KString.
func (d D) Str() string {
	if d.k != KString {
		panic(fmt.Sprintf("datum: Str() on %s", d.k))
	}
	return d.s
}

// Bool returns the boolean payload. It panics if the kind is not KBool.
func (d D) Bool() bool {
	if d.k != KBool {
		panic(fmt.Sprintf("datum: Bool() on %s", d.k))
	}
	return d.b
}

// IsNumeric reports whether the datum is an integer or a float.
func (d D) IsNumeric() bool { return d.k == KInt || d.k == KFloat }

// String renders the datum the way the engine prints result rows and
// EXPLAIN conditions: strings are single-quoted, NULL is the keyword.
func (d D) String() string {
	switch d.k {
	case KNull:
		return "NULL"
	case KInt:
		return strconv.FormatInt(d.i, 10)
	case KFloat:
		return strconv.FormatFloat(d.f, 'g', -1, 64)
	case KString:
		return "'" + strings.ReplaceAll(d.s, "'", "''") + "'"
	case KBool:
		if d.b {
			return "true"
		}
		return "false"
	}
	return "?"
}

// AppendKey appends a grouping-key encoding of d to buf without
// allocating: a kind tag byte followed by the value's canonical bytes.
// Two datums encode equally exactly when String-based keying would merge
// them — numerics share one tag and the strconv rendering (so an integer
// and a float that print identically still land in the same group), while
// strings, booleans, and NULL get distinct tags so no cross-kind encoding
// can collide. The engine uses this for GROUP BY and DISTINCT hash keys,
// where String's per-row allocation would dominate the aggregation loop.
func (d D) AppendKey(buf []byte) []byte {
	switch d.k {
	case KNull:
		return append(buf, 0xff)
	case KInt:
		return strconv.AppendInt(append(buf, 'n'), d.i, 10)
	case KFloat:
		return strconv.AppendFloat(append(buf, 'n'), d.f, 'g', -1, 64)
	case KString:
		return append(append(buf, 's'), d.s...)
	case KBool:
		if d.b {
			return append(buf, 'b', 1)
		}
		return append(buf, 'b', 0)
	}
	return append(buf, '?')
}

// Raw renders the datum without quoting, for CSV-ish output.
func (d D) Raw() string {
	if d.k == KString {
		return d.s
	}
	return d.String()
}

// Compare orders two datums. NULL sorts before every non-NULL value;
// numerics compare after widening; booleans order false < true; mixed
// non-numeric kinds compare by kind to keep the order total.
func Compare(a, b D) int {
	if a.k == KNull || b.k == KNull {
		switch {
		case a.k == b.k:
			return 0
		case a.k == KNull:
			return -1
		default:
			return 1
		}
	}
	if a.IsNumeric() && b.IsNumeric() {
		if a.k == KInt && b.k == KInt {
			switch {
			case a.i < b.i:
				return -1
			case a.i > b.i:
				return 1
			}
			return 0
		}
		af, bf := a.Float(), b.Float()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		}
		return 0
	}
	if a.k != b.k {
		if a.k < b.k {
			return -1
		}
		return 1
	}
	switch a.k {
	case KString:
		return strings.Compare(a.s, b.s)
	case KBool:
		switch {
		case !a.b && b.b:
			return -1
		case a.b && !b.b:
			return 1
		}
		return 0
	}
	return 0
}

// Equal reports SQL equality between two non-NULL datums; if either side is
// NULL it returns false (the engine layers three-valued logic on top).
func Equal(a, b D) bool {
	if a.k == KNull || b.k == KNull {
		return false
	}
	return Compare(a, b) == 0
}

// Arith applies a binary arithmetic operator (+ - * /) with SQL semantics:
// NULL propagates, integer op integer stays integer (division truncates
// toward zero like PostgreSQL), anything involving a float widens.
func Arith(op byte, a, b D) (D, error) {
	if a.k == KNull || b.k == KNull {
		return Null, nil
	}
	if !a.IsNumeric() || !b.IsNumeric() {
		return Null, fmt.Errorf("datum: %c on non-numeric operands %s, %s", op, a.k, b.k)
	}
	if a.k == KInt && b.k == KInt {
		switch op {
		case '+':
			return NewInt(a.i + b.i), nil
		case '-':
			return NewInt(a.i - b.i), nil
		case '*':
			return NewInt(a.i * b.i), nil
		case '/':
			if b.i == 0 {
				return Null, fmt.Errorf("datum: division by zero")
			}
			return NewInt(a.i / b.i), nil
		case '%':
			if b.i == 0 {
				return Null, fmt.Errorf("datum: division by zero")
			}
			return NewInt(a.i % b.i), nil
		}
		return Null, fmt.Errorf("datum: unknown operator %c", op)
	}
	af, bf := a.Float(), b.Float()
	switch op {
	case '+':
		return NewFloat(af + bf), nil
	case '-':
		return NewFloat(af - bf), nil
	case '*':
		return NewFloat(af * bf), nil
	case '/':
		if bf == 0 {
			return Null, fmt.Errorf("datum: division by zero")
		}
		return NewFloat(af / bf), nil
	}
	return Null, fmt.Errorf("datum: unknown operator %c", op)
}

// Like implements the SQL LIKE operator with % (any run) and _ (any single
// character) wildcards. Matching is case-sensitive, as in PostgreSQL.
func Like(s, pattern string) bool {
	return likeMatch(s, pattern)
}

func likeMatch(s, p string) bool {
	// Iterative two-pointer matcher with backtracking on the last '%'.
	si, pi := 0, 0
	star, sBack := -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == s[si]):
			si++
			pi++
		case pi < len(p) && p[pi] == '%':
			star = pi
			sBack = si
			pi++
		case star >= 0:
			sBack++
			si = sBack
			pi = star + 1
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}

// Parse converts a textual literal into a datum, used by the data loaders:
// integers, floats, booleans and the bare word NULL are recognized, anything
// else is a string.
func Parse(s string) D {
	switch strings.ToUpper(s) {
	case "NULL":
		return Null
	case "TRUE":
		return NewBool(true)
	case "FALSE":
		return NewBool(false)
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return NewInt(i)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return NewFloat(f)
	}
	return NewString(s)
}

// Hash returns a stable 64-bit hash of the datum, used by the hash join and
// hash aggregation operators. Equal datums (after numeric widening) hash
// equally.
func (d D) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	switch d.k {
	case KNull:
		mix(0)
	case KInt, KFloat:
		// Widen ints so 1 and 1.0 collide, matching Equal.
		f := d.Float()
		if f == float64(int64(f)) && d.k == KInt {
			f = float64(d.i)
		}
		bits := math.Float64bits(f)
		for i := 0; i < 8; i++ {
			mix(byte(bits >> (8 * i)))
		}
	case KString:
		mix(2)
		for i := 0; i < len(d.s); i++ {
			mix(d.s[i])
		}
	case KBool:
		mix(3)
		if d.b {
			mix(1)
		}
	}
	return h
}
