package pager

// bufpool.go implements the bounded buffer pool that caches loaded
// segment payloads. Eviction is clock (second-chance): each frame has a
// reference bit set on hit; the sweep hand clears bits and evicts the
// first unpinned frame whose bit is already clear. Pinned frames are
// never evicted, so the byte budget can be exceeded transiently while
// scans hold pins — the pool converges back under budget as pins drop.
//
// Loading is single-flight: concurrent Pin calls for the same key share
// one load; losers block on the frame's ready channel.

import (
	"sync"
	"sync/atomic"
)

// PoolStats is a point-in-time snapshot of buffer pool counters.
type PoolStats struct {
	Hits      uint64 // Pin calls served from a resident frame
	Misses    uint64 // Pin calls that had to load from disk
	Evictions uint64 // frames evicted to make room
	Bytes     int64  // bytes currently cached
	Budget    int64  // configured byte budget (0 = unbounded)
	Frames    int    // resident frames
}

type frame struct {
	key   string
	value any
	size  int64
	pins  int
	ref   bool          // clock reference bit
	dead  bool          // invalidated; drop when pins reach zero
	ready chan struct{} // closed once the load completes
	err   error         // load error, valid after ready is closed
}

// Pool is a byte-budgeted cache of loaded segment payloads.
type Pool struct {
	budget int64

	mu     sync.Mutex
	frames map[string]*frame
	ring   []*frame // clock order; may contain dead/stale entries, compacted lazily
	hand   int
	bytes  int64

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

// NewPool creates a pool with the given byte budget. A budget of 0 means
// unbounded (nothing is ever evicted); a negative budget disables caching
// (every frame is evicted as soon as it is unpinned).
func NewPool(budget int64) *Pool {
	return &Pool{budget: budget, frames: make(map[string]*frame)}
}

// Pin returns the cached value for key, loading it via load on a miss.
// The returned release func must be called exactly once when the caller
// is done with the value; until then the frame cannot be evicted. load
// returns the value and its resident size in bytes.
func (p *Pool) Pin(key string, load func() (any, int64, error)) (any, func(), error) {
	p.mu.Lock()
	if f, ok := p.frames[key]; ok && !f.dead {
		f.pins++
		f.ref = true
		p.mu.Unlock()
		<-f.ready
		if f.err != nil {
			p.unpin(f)
			return nil, nil, f.err
		}
		p.hits.Add(1)
		return f.value, func() { p.unpin(f) }, nil
	}
	// Miss: install a loading frame so concurrent callers share the load.
	f := &frame{key: key, pins: 1, ref: true, ready: make(chan struct{})}
	p.frames[key] = f
	p.ring = append(p.ring, f)
	p.mu.Unlock()

	p.misses.Add(1)
	value, size, err := load()

	p.mu.Lock()
	if err != nil {
		f.err = err
		f.dead = true
		if p.frames[key] == f {
			delete(p.frames, key)
		}
	} else {
		f.value = value
		f.size = size
		p.bytes += size
	}
	close(f.ready)
	if err != nil {
		f.pins--
		p.mu.Unlock()
		return nil, nil, err
	}
	p.evictLocked()
	p.mu.Unlock()
	return value, func() { p.unpin(f) }, nil
}

// Contains reports whether key is resident (for tests).
func (p *Pool) Contains(key string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	f, ok := p.frames[key]
	return ok && !f.dead && f.value != nil
}

func (p *Pool) unpin(f *frame) {
	p.mu.Lock()
	f.pins--
	if f.dead && f.pins == 0 {
		p.dropLocked(f)
	} else {
		p.evictLocked()
	}
	p.mu.Unlock()
}

// Invalidate removes key from the pool. If the frame is pinned it is
// marked dead and dropped when the last pin releases; new Pin calls for
// the key load fresh.
func (p *Pool) Invalidate(key string) {
	p.mu.Lock()
	if f, ok := p.frames[key]; ok {
		delete(p.frames, key)
		f.dead = true
		if f.pins == 0 {
			p.dropLocked(f)
		}
	}
	p.mu.Unlock()
}

// InvalidatePrefix removes every key beginning with prefix — used when a
// table is dropped, since a recreated table reuses segment file names.
func (p *Pool) InvalidatePrefix(prefix string) {
	p.mu.Lock()
	for key, f := range p.frames {
		if len(key) >= len(prefix) && key[:len(prefix)] == prefix {
			delete(p.frames, key)
			f.dead = true
			if f.pins == 0 {
				p.dropLocked(f)
			}
		}
	}
	p.mu.Unlock()
}

// dropLocked releases a frame's bytes. The ring entry is left in place
// and skipped (then compacted) by the clock sweep.
func (p *Pool) dropLocked(f *frame) {
	if f.value != nil {
		p.bytes -= f.size
		f.value = nil
	}
}

// evictLocked sweeps the clock hand until the pool is under budget or no
// frame is evictable.
func (p *Pool) evictLocked() {
	if p.budget == 0 {
		return
	}
	target := p.budget
	if target < 0 {
		target = 0
	}
	// Each pass may clear reference bits, so allow two full revolutions
	// before concluding every remaining frame is pinned.
	for spins := 2 * len(p.ring); p.bytes > target && spins > 0; spins-- {
		if len(p.ring) == 0 {
			return
		}
		if p.hand >= len(p.ring) {
			p.hand = 0
		}
		f := p.ring[p.hand]
		if f.dead || f.value == nil {
			// Stale ring entry: compact it out.
			p.ring[p.hand] = p.ring[len(p.ring)-1]
			p.ring = p.ring[:len(p.ring)-1]
			continue
		}
		if f.pins > 0 {
			p.hand++
			continue
		}
		if f.ref {
			f.ref = false
			p.hand++
			continue
		}
		delete(p.frames, f.key)
		f.dead = true
		p.dropLocked(f)
		p.evictions.Add(1)
		p.ring[p.hand] = p.ring[len(p.ring)-1]
		p.ring = p.ring[:len(p.ring)-1]
	}
}

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	bytes, frames := p.bytes, len(p.frames)
	p.mu.Unlock()
	return PoolStats{
		Hits:      p.hits.Load(),
		Misses:    p.misses.Load(),
		Evictions: p.evictions.Load(),
		Bytes:     bytes,
		Budget:    p.budget,
		Frames:    frames,
	}
}
