package pager

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"lantern/internal/datum"
)

func sampleImage() *SegmentImage {
	nulls := make([]uint64, 1)
	nulls[0] |= 1 << 2 // row 2 of column "f" is NULL
	return &SegmentImage{
		NumRows: 4,
		Cols: []ColumnImage{
			{
				Kind:   datum.KInt,
				Zone:   ZoneImage{Min: datum.NewInt(1), Max: datum.NewInt(9)},
				Sketch: []string{"n1", "n3", "n9"},
				Enc:    EncInt64,
				Ints:   []int64{1, 3, 3, 9},
			},
			{
				Kind:   datum.KFloat,
				Zone:   ZoneImage{Min: datum.NewFloat(0.5), Max: datum.NewFloat(2.5), NullCount: 1},
				Enc:    EncFloat,
				Nulls:  nulls,
				Floats: []float64{0.5, 1.5, 0, 2.5},
			},
			{
				Kind:   datum.KString,
				Zone:   ZoneImage{Min: datum.NewString("ada"), Max: datum.NewString("zed")},
				Sketch: []string{"sada", "smid", "szed"},
				Enc:    EncString,
				Strs:   []string{"ada", "mid", "mid", "zed"},
			},
			{
				Kind: datum.KBool,
				Zone: ZoneImage{Min: datum.NewBool(false), Max: datum.NewBool(true)},
				Enc:  EncTagged,
				Datums: []datum.D{
					datum.NewBool(true), datum.NewBool(false), datum.Null, datum.NewBool(true),
				},
			},
		},
	}
}

func TestSegmentRoundTrip(t *testing.T) {
	img := sampleImage()
	data, err := EncodeSegment(img)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeSegment("test.lseg", data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.NumRows != img.NumRows || len(got.Cols) != len(img.Cols) {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d", got.NumRows, len(got.Cols), img.NumRows, len(img.Cols))
	}
	for ci := range img.Cols {
		want, have := &img.Cols[ci], &got.Cols[ci]
		if have.Kind != want.Kind || have.Enc != want.Enc {
			t.Fatalf("col %d: kind/enc mismatch", ci)
		}
		if datum.Compare(have.Zone.Min, want.Zone.Min) != 0 || datum.Compare(have.Zone.Max, want.Zone.Max) != 0 {
			t.Fatalf("col %d: zone mismatch %v..%v vs %v..%v", ci, have.Zone.Min, have.Zone.Max, want.Zone.Min, want.Zone.Max)
		}
		if have.Zone.NullCount != want.Zone.NullCount {
			t.Fatalf("col %d: nullcount %d vs %d", ci, have.Zone.NullCount, want.Zone.NullCount)
		}
		if len(have.Sketch) != len(want.Sketch) {
			t.Fatalf("col %d: sketch size %d vs %d", ci, len(have.Sketch), len(want.Sketch))
		}
		for i := range want.Sketch {
			if have.Sketch[i] != want.Sketch[i] {
				t.Fatalf("col %d: sketch[%d] %q vs %q", ci, i, have.Sketch[i], want.Sketch[i])
			}
		}
		for i := 0; i < img.NumRows; i++ {
			if have.Null(i) != want.Null(i) {
				t.Fatalf("col %d row %d: null mismatch", ci, i)
			}
		}
	}
	if got.Cols[0].Ints[3] != 9 || got.Cols[1].Floats[3] != 2.5 || got.Cols[2].Strs[3] != "zed" {
		t.Fatalf("payload mismatch: %v %v %v", got.Cols[0].Ints, got.Cols[1].Floats, got.Cols[2].Strs)
	}
	if !got.Cols[3].Datums[2].IsNull() || !got.Cols[3].Datums[0].Bool() {
		t.Fatalf("tagged payload mismatch: %v", got.Cols[3].Datums)
	}
}

func TestFooterOnlyRead(t *testing.T) {
	dir := t.TempDir()
	img := sampleImage()
	data, err := EncodeSegment(img)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	path := filepath.Join(dir, "seg.lseg")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFooter(path)
	if err != nil {
		t.Fatalf("ReadFooter: %v", err)
	}
	if got.NumRows != 4 || len(got.Cols) != 4 {
		t.Fatalf("footer shape: %d rows %d cols", got.NumRows, len(got.Cols))
	}
	if got.Cols[0].Ints != nil || got.Cols[1].Floats != nil || got.Cols[2].Strs != nil || got.Cols[3].Datums != nil {
		t.Fatal("footer read materialized column payloads")
	}
	if datum.Compare(got.Cols[0].Zone.Max, datum.NewInt(9)) != 0 {
		t.Fatalf("footer zone: %v", got.Cols[0].Zone.Max)
	}
	if len(got.Cols[2].Sketch) != 3 || got.Cols[2].Sketch[1] != "smid" {
		t.Fatalf("footer sketch: %v", got.Cols[2].Sketch)
	}
}

func TestCorruptionSurfacesErrChecksum(t *testing.T) {
	img := sampleImage()
	data, err := EncodeSegment(img)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the body (after the magic, well before the footer).
	corrupt := append([]byte(nil), data...)
	corrupt[16] ^= 0xff
	if _, err := DecodeSegment("c.lseg", corrupt); !errors.Is(err, ErrChecksum) {
		t.Fatalf("body corruption: got %v, want ErrChecksum", err)
	}
	// Flip a byte in the footer region; both full reads and footer reads
	// must notice.
	corrupt = append([]byte(nil), data...)
	corrupt[len(corrupt)-trailerLen-2] ^= 0xff
	if _, err := DecodeSegment("c.lseg", corrupt); !errors.Is(err, ErrChecksum) {
		t.Fatalf("footer corruption: got %v, want ErrChecksum", err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "c.lseg")
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFooter(path); !errors.Is(err, ErrChecksum) {
		t.Fatalf("footer corruption via ReadFooter: got %v, want ErrChecksum", err)
	}
	// Truncation must error, not panic.
	if _, err := DecodeSegment("t.lseg", data[:len(data)/2]); err == nil {
		t.Fatal("truncated segment decoded without error")
	}
}

func TestTailRoundTrip(t *testing.T) {
	rows := [][]datum.D{
		{datum.NewInt(1), datum.NewString("a"), datum.Null},
		{datum.NewInt(2), datum.NewString("b"), datum.NewFloat(3.5)},
	}
	data := EncodeTail(rows, 3)
	got, err := DecodeTail("t.ltail", data)
	if err != nil {
		t.Fatalf("decode tail: %v", err)
	}
	if len(got) != 2 || len(got[0]) != 3 {
		t.Fatalf("tail shape: %d×%d", len(got), len(got[0]))
	}
	if got[1][2].Float() != 3.5 || !got[0][2].IsNull() || got[0][1].Str() != "a" {
		t.Fatalf("tail payload: %v", got)
	}
	corrupt := append([]byte(nil), data...)
	corrupt[10] ^= 0xff
	if _, err := DecodeTail("t.ltail", corrupt); !errors.Is(err, ErrChecksum) {
		t.Fatalf("tail corruption: got %v, want ErrChecksum", err)
	}
}

func TestPoolPinEvictCounters(t *testing.T) {
	p := NewPool(100)
	loads := 0
	load := func(size int64) func() (any, int64, error) {
		return func() (any, int64, error) {
			loads++
			return size, size, nil
		}
	}
	v, rel, err := p.Pin("a", load(60))
	if err != nil {
		t.Fatal(err)
	}
	if v.(int64) != 60 {
		t.Fatalf("value: %v", v)
	}
	rel()
	if _, rel, err := p.Pin("a", load(60)); err != nil {
		t.Fatal(err)
	} else {
		rel()
	}
	if loads != 1 {
		t.Fatalf("expected 1 load, got %d", loads)
	}
	st := p.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Bytes != 60 {
		t.Fatalf("stats after hit: %+v", st)
	}
	// Loading b (60 bytes) overflows the 100-byte budget → a evicted.
	if _, rel, err := p.Pin("b", load(60)); err != nil {
		t.Fatal(err)
	} else {
		rel()
	}
	st = p.Stats()
	if st.Evictions != 1 || st.Bytes != 60 || st.Frames != 1 {
		t.Fatalf("stats after eviction: %+v", st)
	}
	if p.Contains("a") {
		t.Fatal("a still resident after eviction")
	}
	// A pinned frame survives even over budget.
	_, relB, err := p.Pin("b", load(60))
	if err != nil {
		t.Fatal(err)
	}
	if _, rel, err := p.Pin("c", load(60)); err != nil {
		t.Fatal(err)
	} else {
		rel()
	}
	if !p.Contains("b") {
		t.Fatal("pinned frame was evicted")
	}
	relB()
}

func TestPoolNegativeBudgetCachesNothing(t *testing.T) {
	p := NewPool(-1)
	loads := 0
	load := func() (any, int64, error) { loads++; return 1, 10, nil }
	for i := 0; i < 3; i++ {
		_, rel, err := p.Pin("k", load)
		if err != nil {
			t.Fatal(err)
		}
		rel()
	}
	if loads != 3 {
		t.Fatalf("negative budget should reload every time, got %d loads", loads)
	}
	if st := p.Stats(); st.Bytes != 0 {
		t.Fatalf("bytes should be 0, got %+v", st)
	}
}

func TestPoolSingleflight(t *testing.T) {
	p := NewPool(0)
	var mu sync.Mutex
	loads := 0
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, rel, err := p.Pin("k", func() (any, int64, error) {
				mu.Lock()
				loads++
				mu.Unlock()
				return "v", 1, nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			rel()
		}()
	}
	wg.Wait()
	if loads != 1 {
		t.Fatalf("expected a single load, got %d", loads)
	}
}

func TestPoolLoadErrorNotCached(t *testing.T) {
	p := NewPool(0)
	boom := errors.New("boom")
	if _, _, err := p.Pin("k", func() (any, int64, error) { return nil, 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("got %v", err)
	}
	// The failed load must not poison the key.
	v, rel, err := p.Pin("k", func() (any, int64, error) { return 7, 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	if v.(int) != 7 {
		t.Fatalf("got %v", v)
	}
	rel()
}

func TestStoreCommitAndRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	img := sampleImage()
	file, err := s.WriteSegment("orders", 0, img)
	if err != nil {
		t.Fatal(err)
	}
	tailFile, err := s.WriteTail("orders", 1, [][]datum.D{{datum.NewInt(42)}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	tm := TableManifest{
		Columns:   []ColumnManifest{{Name: "id", Kind: uint8(datum.KInt)}},
		SegCap:    4096,
		NextSeg:   1,
		Segments:  []SegmentManifest{{File: file, Rows: 4}},
		Tail:      tailFile,
		TailEpoch: 1,
		TailRows:  1,
	}
	if err := s.CommitTable("orders", tm, nil); err != nil {
		t.Fatal(err)
	}
	// Write an orphan (simulating a crash before commit) and reopen.
	orphan, err := s.WriteSegment("orders", 99, img)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	man := s2.Manifest()
	got, ok := man.Tables["orders"]
	if !ok || len(got.Segments) != 1 || got.Segments[0].File != file {
		t.Fatalf("recovered manifest: %+v", got)
	}
	if _, err := os.Stat(s2.Path(orphan)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("orphan %s survived reopen: %v", orphan, err)
	}
	foot, err := s2.ReadSegmentFooter(file)
	if err != nil {
		t.Fatal(err)
	}
	if foot.NumRows != 4 {
		t.Fatalf("footer rows: %d", foot.NumRows)
	}
	rows, err := s2.ReadTail(tailFile)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].Int() != 42 {
		t.Fatalf("tail rows: %v", rows)
	}
}

func TestCommitFailureRollsBack(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CommitTable("t", TableManifest{SegCap: 8}, nil); err != nil {
		t.Fatal(err)
	}
	failBeforeCommit = func() error { return fmt.Errorf("injected crash") }
	defer func() { failBeforeCommit = nil }()
	err = s.CommitTable("t", TableManifest{SegCap: 99}, nil)
	if err == nil {
		t.Fatal("commit should have failed")
	}
	failBeforeCommit = nil
	if got := s.Manifest().Tables["t"].SegCap; got != 8 {
		t.Fatalf("in-memory manifest not rolled back: SegCap=%d", got)
	}
	// On-disk state also still the old one.
	s2, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Manifest().Tables["t"].SegCap; got != 8 {
		t.Fatalf("on-disk manifest changed: SegCap=%d", got)
	}
}

func TestDropTable(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	img := sampleImage()
	file, err := s.WriteSegment("gone", 0, img)
	if err != nil {
		t.Fatal(err)
	}
	tm := TableManifest{Segments: []SegmentManifest{{File: file, Rows: 4}}, NextSeg: 1}
	if err := s.CommitTable("gone", tm, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.DropTable("gone"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "gone")); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("table directory survived drop")
	}
	if _, ok := s.Manifest().Tables["gone"]; ok {
		t.Fatal("manifest entry survived drop")
	}
}
