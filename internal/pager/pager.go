// Package pager is the disk layer of the substrate engine: it spills
// sealed column segments to per-table files and serves them back through
// a bounded buffer pool, which is what turns the in-memory segment store
// (internal/storage) into a larger-than-memory one — a table's data can
// exceed RAM as long as its zone maps, distinct sketches and indexes fit.
//
// # On-disk layout
//
// A data directory holds one subdirectory per table plus a manifest:
//
//	<dir>/MANIFEST.json          catalog of tables → files (atomic temp+rename)
//	<dir>/<table>/seg-<id>.lseg  one sealed segment (immutable once written)
//	<dir>/<table>/tail-<e>.ltail the unsealed row-major tail at epoch e
//
// Every file is written to a ".tmp" sibling, fsynced, and renamed into
// place; the manifest is committed the same way after the files it
// references exist, and files a commit replaced are deleted only after
// the manifest rename returns. A crash at any point therefore leaves the
// directory describing either the old state or the new one, never a mix:
// Open garbage-collects files the manifest does not reference.
//
// # Segment file format (.lseg, version 1)
//
// All integers are little-endian; "uvarint"/"varint" are Go's
// encoding/binary varints; a "datum" is the tagged encoding below.
//
//	header:  magic "LSEG1\n" | version uint16 | numRows uint32 | numCols uint32
//	body:    per column:
//	           enc uint8          (0 int64, 1 float64, 2 string, 3 tagged)
//	           hasNulls uint8     (1 → ceil(numRows/64) × uint64 null bitmap)
//	           payload            int64/float64: numRows fixed-width values
//	                              string: numRows × (uvarint len | bytes)
//	                              tagged: numRows × datum
//	footer:  numRows uint32 | numCols uint32
//	         per column:
//	           kind uint8         (declared datum.Kind)
//	           zone               (min datum | max datum | nullCount uvarint)
//	           sketch             (uvarint count | count × (uvarint len | bytes))
//	trailer: bodyLen uint64 | footerLen uint64 | bodyCRC uint32 |
//	         footerCRC uint32 | magic "LEND"   (28 bytes, fixed)
//
// The footer repeats the row/column counts so ReadFooter — the call that
// rebuilds a table's zone maps and sketches at boot, and the reason
// pruning and ANALYZE never touch column data — needs only the trailer
// and the footer region, never the body. Both regions carry independent
// CRC-32C checksums: a footer read verifies the footer CRC, a payload
// fault verifies the body CRC, and a mismatch surfaces as ErrChecksum
// (wrapped with the file name) rather than a panic or silent corruption.
//
// Tagged datum encoding: kind uint8 (datum.Kind), then the payload —
// nothing for NULL, varint for INTEGER, IEEE-754 bits uint64 for FLOAT,
// uvarint length + bytes for TEXT, one byte for BOOLEAN.
//
// # Tail file format (.ltail, version 1)
//
//	magic "LTAI1\n" | version uint16 | numRows uint32 | numCols uint32
//	numRows × numCols × datum
//	crc uint32 | magic "LEND"
//
// # Buffer pool
//
// Pool is a clock (second-chance) cache of decoded segment payloads with
// a byte budget (Config.BufferPoolBytes). Frames are pinned while a scan
// reads them — the evictor never reclaims a pinned frame, so the budget
// is a target the pool may exceed while many scans hold pins — and
// hit/miss/eviction counters are exported through Stats for the serving
// layer's /metrics and /v1/stats surfaces.
package pager

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ErrChecksum is wrapped by every read that fails CRC verification — a
// torn or corrupted file surfaces as a structured, matchable error.
var ErrChecksum = errors.New("pager: checksum mismatch")

// Config configures a Store.
type Config struct {
	// BufferPoolBytes is the buffer pool's byte budget: decoded segment
	// payloads are cached up to this total and evicted clock-wise beyond
	// it. 0 defaults to 64 MiB; negative disables caching entirely
	// (every fault decodes from disk — useful for tests).
	BufferPoolBytes int64
}

// DefaultPoolBytes is the buffer pool budget when Config leaves it zero.
const DefaultPoolBytes int64 = 64 << 20

// Store is one opened data directory: the manifest, the buffer pool, and
// the temp+rename write discipline. A Store is safe for concurrent use;
// commits serialize internally.
type Store struct {
	dir  string
	pool *Pool

	mu  sync.Mutex
	man *Manifest
}

// Open opens (creating if needed) a data directory and recovers its
// manifest. Files not referenced by the manifest — leftovers of a crash
// between file writes and the manifest commit — are deleted.
func Open(dir string, cfg Config) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("pager: open %s: %w", dir, err)
	}
	man, err := readManifest(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, err
	}
	budget := cfg.BufferPoolBytes
	if budget == 0 {
		budget = DefaultPoolBytes
	}
	s := &Store{dir: dir, pool: NewPool(budget), man: man}
	if err := s.removeOrphans(); err != nil {
		return nil, err
	}
	return s, nil
}

// Dir returns the data directory path.
func (s *Store) Dir() string { return s.dir }

// Pool returns the store's buffer pool.
func (s *Store) Pool() *Pool { return s.pool }

// Manifest returns a deep-enough copy of the current manifest for the
// catalog to walk at boot (table entries are copied; the slices inside
// are read-only by convention).
func (s *Store) Manifest() Manifest {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := Manifest{Version: s.man.Version, Tables: make(map[string]TableManifest, len(s.man.Tables))}
	for k, v := range s.man.Tables {
		out.Tables[k] = v
	}
	return out
}

// Path resolves a manifest-relative file name (e.g. "orders/seg-00000001.lseg")
// into an absolute path.
func (s *Store) Path(file string) string { return filepath.Join(s.dir, file) }

// SegmentFileName returns the manifest-relative name for segment id of a
// table.
func SegmentFileName(table string, id uint64) string {
	return filepath.Join(table, fmt.Sprintf("seg-%08d.lseg", id))
}

// TailFileName returns the manifest-relative name for a table's tail at
// the given epoch.
func TailFileName(table string, epoch uint64) string {
	return filepath.Join(table, fmt.Sprintf("tail-%08d.ltail", epoch))
}

// failBeforeCommit, when non-nil, runs immediately before the manifest
// rename of every commit. Crash-consistency tests inject an error here to
// simulate a kill after the data files are written but before the commit
// point; production code never sets it.
var failBeforeCommit func() error

// SetFailBeforeCommit installs fn as the pre-commit failpoint: it runs
// immediately before the manifest rename — the commit point of the
// temp+rename discipline — and a non-nil error aborts the commit exactly
// as a crash there would. Crash-consistency tests in the catalog and
// engine suites use it to strand data files without a manifest; nil
// removes the hook. Never called by production code, and not safe to
// flip while commits are in flight.
func SetFailBeforeCommit(fn func() error) { failBeforeCommit = fn }

// CommitTable atomically updates one table's manifest entry and then
// deletes the files the new entry replaced. The caller must have written
// (and synced) every file the entry references before calling; remove
// lists manifest-relative names that the previous state referenced and
// the new one does not. Deletion failures after a successful commit are
// ignored — the next Open garbage-collects orphans.
func (s *Store) CommitTable(table string, tm TableManifest, remove []string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	old, existed := s.man.Tables[table]
	s.man.Tables[table] = tm
	if err := s.commitLocked(); err != nil {
		// Roll the in-memory state back so it keeps matching the on-disk
		// manifest the failed write left behind.
		if existed {
			s.man.Tables[table] = old
		} else {
			delete(s.man.Tables, table)
		}
		return err
	}
	for _, f := range remove {
		os.Remove(s.Path(f))
	}
	return nil
}

// DropTable removes a table's manifest entry and its directory.
func (s *Store) DropTable(table string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.man.Tables[table]; !ok {
		return nil
	}
	delete(s.man.Tables, table)
	if err := s.commitLocked(); err != nil {
		return err
	}
	// A recreated table reuses segment file names, so stale cached
	// payloads must go before the files do.
	s.pool.InvalidatePrefix(table + string(os.PathSeparator))
	os.RemoveAll(filepath.Join(s.dir, table))
	return nil
}

// commitLocked writes the manifest via temp+rename. Callers hold s.mu.
func (s *Store) commitLocked() error {
	if failBeforeCommit != nil {
		if err := failBeforeCommit(); err != nil {
			return err
		}
	}
	data, err := json.MarshalIndent(s.man, "", " ")
	if err != nil {
		return fmt.Errorf("pager: encoding manifest: %w", err)
	}
	return atomicWrite(filepath.Join(s.dir, manifestName), data)
}

// removeOrphans deletes files under the data directory that the manifest
// does not reference: segment/tail files a crash stranded between their
// write and the manifest commit, and stray .tmp files.
func (s *Store) removeOrphans() error {
	live := make(map[string]bool)
	for name, tm := range s.man.Tables {
		for _, seg := range tm.Segments {
			live[seg.File] = true
		}
		if tm.Tail != "" {
			live[tm.Tail] = true
		}
		live[name] = true // keep the table directory itself
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("pager: scanning %s: %w", s.dir, err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			if e.Name() != manifestName && strings.HasSuffix(e.Name(), ".tmp") {
				os.Remove(filepath.Join(s.dir, e.Name()))
			}
			continue
		}
		tdir := e.Name()
		files, err := os.ReadDir(filepath.Join(s.dir, tdir))
		if err != nil {
			continue
		}
		if !live[tdir] {
			os.RemoveAll(filepath.Join(s.dir, tdir))
			continue
		}
		for _, f := range files {
			rel := filepath.Join(tdir, f.Name())
			if !live[rel] {
				os.Remove(s.Path(rel))
			}
		}
	}
	return nil
}

// WriteSegment encodes and writes one segment file via temp+rename and
// returns its manifest-relative name. The file is durable (fsynced) when
// WriteSegment returns; it becomes visible to recovery only once a
// CommitTable references it.
func (s *Store) WriteSegment(table string, id uint64, img *SegmentImage) (string, error) {
	name := SegmentFileName(table, id)
	if err := os.MkdirAll(filepath.Join(s.dir, table), 0o755); err != nil {
		return "", fmt.Errorf("pager: %s: %w", table, err)
	}
	data, err := EncodeSegment(img)
	if err != nil {
		return "", err
	}
	if err := atomicWrite(s.Path(name), data); err != nil {
		return "", err
	}
	return name, nil
}

// ReadSegmentFooter reads only a segment file's metadata — row count,
// column kinds, zone maps, distinct sketches — verifying the footer
// checksum. It never reads the column payloads.
func (s *Store) ReadSegmentFooter(file string) (*SegmentImage, error) {
	return ReadFooter(s.Path(file))
}

// ReadSegment reads and decodes a whole segment file, verifying both
// checksums. It does not consult the buffer pool — callers that want
// caching go through Pool.Pin with this as the loader.
func (s *Store) ReadSegment(file string) (*SegmentImage, error) {
	return ReadSegmentFile(s.Path(file))
}

// Remove deletes a manifest-relative file, ignoring absence.
func (s *Store) Remove(file string) { os.Remove(s.Path(file)) }

// atomicWrite writes data to path via a ".tmp" sibling, fsyncing the file
// before the rename so a crash cannot leave a half-written file under the
// final name.
func atomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("pager: %w", err)
	}
	if _, err := f.Write(data); err == nil {
		err = f.Sync()
	} else {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("pager: writing %s: %w", tmp, err)
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("pager: syncing %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("pager: closing %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("pager: committing %s: %w", path, err)
	}
	return nil
}

// --- Manifest ---------------------------------------------------------------

const manifestName = "MANIFEST.json"

// Manifest is the durable catalog of a data directory.
type Manifest struct {
	Version int                      `json:"version"`
	Tables  map[string]TableManifest `json:"tables"`
}

// TableManifest describes one table's durable state.
type TableManifest struct {
	// Columns is the schema: names and datum kinds (as uint8 values).
	Columns []ColumnManifest `json:"columns"`
	// SegCap is the rows-per-segment capacity.
	SegCap int `json:"seg_cap"`
	// NextSeg is the next unused segment id.
	NextSeg uint64 `json:"next_seg"`
	// Segments lists the sealed segment files in table order.
	Segments []SegmentManifest `json:"segments,omitempty"`
	// Tail is the manifest-relative tail file name ("" when the tail is
	// empty) and TailEpoch the epoch counter its name embeds.
	Tail      string `json:"tail,omitempty"`
	TailEpoch uint64 `json:"tail_epoch,omitempty"`
	TailRows  int    `json:"tail_rows,omitempty"`
	// Indexes lists indexed column names, sorted. Index entries are
	// rebuilt from segment data at boot; only the DDL is durable.
	Indexes []string `json:"indexes,omitempty"`
}

// ColumnManifest is one schema column.
type ColumnManifest struct {
	Name string `json:"name"`
	Kind uint8  `json:"kind"`
}

// SegmentManifest is one sealed segment file.
type SegmentManifest struct {
	File string `json:"file"`
	Rows int    `json:"rows"`
}

// TableNames lists the manifest's tables, sorted.
func (m Manifest) TableNames() []string {
	out := make([]string, 0, len(m.Tables))
	for n := range m.Tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func readManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return &Manifest{Version: 1, Tables: make(map[string]TableManifest)}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("pager: reading manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("pager: parsing manifest %s: %w", path, err)
	}
	if m.Tables == nil {
		m.Tables = make(map[string]TableManifest)
	}
	return &m, nil
}
