package pager

// format.go implements the .lseg segment and .ltail tail encodings
// specified in the package comment: encode to a byte slice, decode with
// checksum verification, and a footer-only read path that never touches
// the column payloads.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"

	"lantern/internal/datum"
)

const (
	segMagic  = "LSEG1\n"
	tailMagic = "LTAI1\n"
	endMagic  = "LEND"
	// Version is the current segment/tail file format version.
	Version = 1
	// trailerLen is the fixed segment trailer: bodyLen, footerLen (u64),
	// bodyCRC, footerCRC (u32), end magic.
	trailerLen = 8 + 8 + 4 + 4 + len(endMagic)
)

// Column payload encodings.
const (
	EncInt64  = 0 // fixed-width int64 values
	EncFloat  = 1 // fixed-width IEEE-754 values
	EncString = 2 // uvarint length + bytes per value
	EncTagged = 3 // tagged datum per value (mixed or untyped columns)
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ZoneImage mirrors storage.ZoneMap across the package boundary.
type ZoneImage struct {
	Min, Max  datum.D
	NullCount int
}

// ColumnImage is one column of a segment image. Exactly one payload view
// is populated according to Enc; Datums carries the tagged fallback.
// Footer-only reads leave every payload nil.
type ColumnImage struct {
	Kind   datum.Kind // declared column kind
	Zone   ZoneImage
	Sketch []string // sorted distinct non-NULL value keys

	Enc    uint8
	Nulls  []uint64 // 1 bit per row, set = NULL; nil when none
	Ints   []int64
	Floats []float64
	Strs   []string
	Datums []datum.D
}

// Null reports whether row i of the column is NULL.
func (c *ColumnImage) Null(i int) bool {
	return c.Nulls != nil && c.Nulls[i>>6]&(1<<(uint(i)&63)) != 0
}

// SegmentImage is the codec-facing form of one sealed segment: metadata
// (always populated) plus per-column payloads (nil on footer-only reads).
type SegmentImage struct {
	NumRows int
	Cols    []ColumnImage
}

// --- Primitive writers ------------------------------------------------------

type writer struct{ buf []byte }

func (w *writer) u8(v uint8)       { w.buf = append(w.buf, v) }
func (w *writer) u16(v uint16)     { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }
func (w *writer) u32(v uint32)     { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64)     { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *writer) uvarint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }
func (w *writer) varint(v int64)   { w.buf = binary.AppendVarint(w.buf, v) }
func (w *writer) bytes(b []byte)   { w.buf = append(w.buf, b...) }
func (w *writer) str(s string) {
	w.uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// datum appends the tagged datum encoding.
func (w *writer) datum(d datum.D) {
	w.u8(uint8(d.Kind()))
	switch d.Kind() {
	case datum.KNull:
	case datum.KInt:
		w.varint(d.Int())
	case datum.KFloat:
		w.u64(math.Float64bits(d.Float()))
	case datum.KString:
		w.str(d.Str())
	case datum.KBool:
		if d.Bool() {
			w.u8(1)
		} else {
			w.u8(0)
		}
	}
}

// --- Primitive readers ------------------------------------------------------

type reader struct {
	buf []byte
	pos int
	err error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.pos+n > len(r.buf) {
		r.fail("pager: truncated read (%d bytes wanted at %d of %d)", n, r.pos, len(r.buf))
		return nil
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b
}

func (r *reader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		r.fail("pager: bad uvarint at %d", r.pos)
		return 0
	}
	r.pos += n
	return v
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.pos:])
	if n <= 0 {
		r.fail("pager: bad varint at %d", r.pos)
		return 0
	}
	r.pos += n
	return v
}

func (r *reader) str() string {
	n := r.uvarint()
	b := r.take(int(n))
	if b == nil {
		return ""
	}
	return string(b)
}

func (r *reader) datum() datum.D {
	switch datum.Kind(r.u8()) {
	case datum.KNull:
		return datum.Null
	case datum.KInt:
		return datum.NewInt(r.varint())
	case datum.KFloat:
		return datum.NewFloat(math.Float64frombits(r.u64()))
	case datum.KString:
		return datum.NewString(r.str())
	case datum.KBool:
		return datum.NewBool(r.u8() != 0)
	default:
		r.fail("pager: bad datum kind at %d", r.pos)
		return datum.Null
	}
}

// --- Segment codec ----------------------------------------------------------

// EncodeSegment serializes a fully populated segment image.
func EncodeSegment(img *SegmentImage) ([]byte, error) {
	w := &writer{buf: make([]byte, 0, 16+img.NumRows*len(img.Cols)*4)}
	w.bytes([]byte(segMagic))
	w.u16(Version)
	w.u32(uint32(img.NumRows))
	w.u32(uint32(len(img.Cols)))
	for ci := range img.Cols {
		c := &img.Cols[ci]
		w.u8(c.Enc)
		if c.Nulls != nil {
			w.u8(1)
			for _, word := range c.Nulls {
				w.u64(word)
			}
		} else {
			w.u8(0)
		}
		switch c.Enc {
		case EncInt64:
			if len(c.Ints) != img.NumRows {
				return nil, fmt.Errorf("pager: int column has %d of %d rows", len(c.Ints), img.NumRows)
			}
			for _, v := range c.Ints {
				w.u64(uint64(v))
			}
		case EncFloat:
			if len(c.Floats) != img.NumRows {
				return nil, fmt.Errorf("pager: float column has %d of %d rows", len(c.Floats), img.NumRows)
			}
			for _, v := range c.Floats {
				w.u64(math.Float64bits(v))
			}
		case EncString:
			if len(c.Strs) != img.NumRows {
				return nil, fmt.Errorf("pager: string column has %d of %d rows", len(c.Strs), img.NumRows)
			}
			for _, v := range c.Strs {
				w.str(v)
			}
		case EncTagged:
			if len(c.Datums) != img.NumRows {
				return nil, fmt.Errorf("pager: tagged column has %d of %d rows", len(c.Datums), img.NumRows)
			}
			for _, v := range c.Datums {
				w.datum(v)
			}
		default:
			return nil, fmt.Errorf("pager: unknown column encoding %d", c.Enc)
		}
	}
	bodyLen := len(w.buf)
	for ci := range img.Cols {
		if ci == 0 {
			w.u32(uint32(img.NumRows))
			w.u32(uint32(len(img.Cols)))
		}
		c := &img.Cols[ci]
		w.u8(uint8(c.Kind))
		w.datum(c.Zone.Min)
		w.datum(c.Zone.Max)
		w.uvarint(uint64(c.Zone.NullCount))
		w.uvarint(uint64(len(c.Sketch)))
		for _, k := range c.Sketch {
			w.str(k)
		}
	}
	if len(img.Cols) == 0 {
		w.u32(uint32(img.NumRows))
		w.u32(0)
	}
	footer := w.buf[bodyLen:]
	bodyCRC := crc32.Checksum(w.buf[:bodyLen], crcTable)
	footerCRC := crc32.Checksum(footer, crcTable)
	w.u64(uint64(bodyLen))
	w.u64(uint64(len(footer)))
	w.u32(bodyCRC)
	w.u32(footerCRC)
	w.bytes([]byte(endMagic))
	return w.buf, nil
}

// parseTrailer validates the fixed trailer and returns the body and
// footer extents.
func parseTrailer(path string, data []byte) (bodyLen, footerLen int, bodyCRC, footerCRC uint32, err error) {
	if len(data) < trailerLen+len(segMagic) {
		return 0, 0, 0, 0, fmt.Errorf("pager: %s: file too short (%d bytes)", path, len(data))
	}
	t := data[len(data)-trailerLen:]
	if string(t[trailerLen-len(endMagic):]) != endMagic {
		return 0, 0, 0, 0, fmt.Errorf("pager: %s: bad trailer magic", path)
	}
	bodyLen = int(binary.LittleEndian.Uint64(t[0:8]))
	footerLen = int(binary.LittleEndian.Uint64(t[8:16]))
	bodyCRC = binary.LittleEndian.Uint32(t[16:20])
	footerCRC = binary.LittleEndian.Uint32(t[20:24])
	if bodyLen < 0 || footerLen < 0 || bodyLen+footerLen+trailerLen != len(data) {
		return 0, 0, 0, 0, fmt.Errorf("pager: %s: inconsistent trailer (body %d + footer %d + trailer %d != %d)",
			path, bodyLen, footerLen, trailerLen, len(data))
	}
	return bodyLen, footerLen, bodyCRC, footerCRC, nil
}

// decodeFooter parses the footer region into a payload-less image.
func decodeFooter(path string, footer []byte) (*SegmentImage, error) {
	r := &reader{buf: footer}
	img := &SegmentImage{NumRows: int(r.u32())}
	ncols := int(r.u32())
	if r.err == nil && (ncols < 0 || ncols > 1<<20) {
		r.fail("pager: %s: absurd column count %d", path, ncols)
	}
	if r.err != nil {
		return nil, r.err
	}
	img.Cols = make([]ColumnImage, ncols)
	for ci := 0; ci < ncols && r.err == nil; ci++ {
		c := &img.Cols[ci]
		c.Kind = datum.Kind(r.u8())
		c.Zone.Min = r.datum()
		c.Zone.Max = r.datum()
		c.Zone.NullCount = int(r.uvarint())
		nk := int(r.uvarint())
		if r.err != nil || nk > img.NumRows {
			r.fail("pager: %s: sketch of %d keys exceeds %d rows", path, nk, img.NumRows)
			break
		}
		c.Sketch = make([]string, nk)
		for i := 0; i < nk; i++ {
			c.Sketch[i] = r.str()
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	return img, nil
}

// ReadFooter reads and verifies only the footer of a segment file: the
// trailer and footer region are read with two small pread calls; the
// column payloads stay untouched on disk.
func ReadFooter(path string) (*SegmentImage, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("pager: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("pager: %w", err)
	}
	size := st.Size()
	if size < int64(trailerLen) {
		return nil, fmt.Errorf("pager: %s: file too short (%d bytes)", path, size)
	}
	trailer := make([]byte, trailerLen)
	if _, err := f.ReadAt(trailer, size-int64(trailerLen)); err != nil {
		return nil, fmt.Errorf("pager: %s: %w", path, err)
	}
	// parseTrailer wants the full-length consistency check; feed it a
	// synthetic view with the real total length.
	if string(trailer[trailerLen-len(endMagic):]) != endMagic {
		return nil, fmt.Errorf("pager: %s: bad trailer magic", path)
	}
	bodyLen := int64(binary.LittleEndian.Uint64(trailer[0:8]))
	footerLen := int64(binary.LittleEndian.Uint64(trailer[8:16]))
	footerCRC := binary.LittleEndian.Uint32(trailer[20:24])
	if bodyLen < 0 || footerLen < 0 || bodyLen+footerLen+int64(trailerLen) != size {
		return nil, fmt.Errorf("pager: %s: inconsistent trailer", path)
	}
	footer := make([]byte, footerLen)
	if _, err := f.ReadAt(footer, bodyLen); err != nil {
		return nil, fmt.Errorf("pager: %s: %w", path, err)
	}
	if crc32.Checksum(footer, crcTable) != footerCRC {
		return nil, fmt.Errorf("%w: %s (footer)", ErrChecksum, path)
	}
	return decodeFooter(path, footer)
}

// DecodeSegment decodes a full segment file image from bytes, verifying
// both checksums.
func DecodeSegment(path string, data []byte) (*SegmentImage, error) {
	bodyLen, footerLen, bodyCRC, footerCRC, err := parseTrailer(path, data)
	if err != nil {
		return nil, err
	}
	body, footer := data[:bodyLen], data[bodyLen:bodyLen+footerLen]
	if crc32.Checksum(footer, crcTable) != footerCRC {
		return nil, fmt.Errorf("%w: %s (footer)", ErrChecksum, path)
	}
	if crc32.Checksum(body, crcTable) != bodyCRC {
		return nil, fmt.Errorf("%w: %s (body)", ErrChecksum, path)
	}
	img, err := decodeFooter(path, footer)
	if err != nil {
		return nil, err
	}
	r := &reader{buf: body}
	if string(r.take(len(segMagic))) != segMagic {
		return nil, fmt.Errorf("pager: %s: bad magic", path)
	}
	if v := r.u16(); v != Version {
		return nil, fmt.Errorf("pager: %s: unsupported format version %d", path, v)
	}
	n := int(r.u32())
	ncols := int(r.u32())
	if r.err == nil && (n != img.NumRows || ncols != len(img.Cols)) {
		r.fail("pager: %s: header (%d rows, %d cols) disagrees with footer (%d rows, %d cols)",
			path, n, ncols, img.NumRows, len(img.Cols))
	}
	for ci := 0; ci < ncols && r.err == nil; ci++ {
		c := &img.Cols[ci]
		c.Enc = r.u8()
		if r.u8() == 1 {
			words := (n + 63) / 64
			c.Nulls = make([]uint64, words)
			for i := range c.Nulls {
				c.Nulls[i] = r.u64()
			}
		}
		switch c.Enc {
		case EncInt64:
			c.Ints = make([]int64, n)
			for i := range c.Ints {
				c.Ints[i] = int64(r.u64())
			}
		case EncFloat:
			c.Floats = make([]float64, n)
			for i := range c.Floats {
				c.Floats[i] = math.Float64frombits(r.u64())
			}
		case EncString:
			c.Strs = make([]string, n)
			for i := range c.Strs {
				c.Strs[i] = r.str()
			}
		case EncTagged:
			c.Datums = make([]datum.D, n)
			for i := range c.Datums {
				c.Datums[i] = r.datum()
			}
		default:
			r.fail("pager: %s: unknown column encoding %d", path, c.Enc)
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	return img, nil
}

// ReadSegmentFile reads and decodes a whole segment file.
func ReadSegmentFile(path string) (*SegmentImage, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("pager: %w", err)
	}
	return DecodeSegment(path, data)
}

// --- Tail codec -------------------------------------------------------------

// EncodeTail serializes the unsealed tail rows (row-major, tagged datums).
func EncodeTail(rows [][]datum.D, ncols int) []byte {
	w := &writer{buf: make([]byte, 0, 64+len(rows)*ncols*4)}
	w.bytes([]byte(tailMagic))
	w.u16(Version)
	w.u32(uint32(len(rows)))
	w.u32(uint32(ncols))
	for _, row := range rows {
		for _, d := range row {
			w.datum(d)
		}
	}
	crc := crc32.Checksum(w.buf, crcTable)
	w.u32(crc)
	w.bytes([]byte(endMagic))
	return w.buf
}

// DecodeTail decodes a tail file, verifying its checksum.
func DecodeTail(path string, data []byte) ([][]datum.D, error) {
	tl := 4 + len(endMagic)
	if len(data) < len(tailMagic)+2+8+tl {
		return nil, fmt.Errorf("pager: %s: tail file too short", path)
	}
	if string(data[len(data)-len(endMagic):]) != endMagic {
		return nil, fmt.Errorf("pager: %s: bad tail trailer magic", path)
	}
	crc := binary.LittleEndian.Uint32(data[len(data)-tl:])
	body := data[:len(data)-tl]
	if crc32.Checksum(body, crcTable) != crc {
		return nil, fmt.Errorf("%w: %s (tail)", ErrChecksum, path)
	}
	r := &reader{buf: body}
	if string(r.take(len(tailMagic))) != tailMagic {
		return nil, fmt.Errorf("pager: %s: bad tail magic", path)
	}
	if v := r.u16(); v != Version {
		return nil, fmt.Errorf("pager: %s: unsupported tail version %d", path, v)
	}
	n := int(r.u32())
	ncols := int(r.u32())
	rows := make([][]datum.D, 0, n)
	arena := make([]datum.D, n*ncols)
	for i := 0; i < n && r.err == nil; i++ {
		row := arena[i*ncols : (i+1)*ncols : (i+1)*ncols]
		for j := 0; j < ncols; j++ {
			row[j] = r.datum()
		}
		rows = append(rows, row)
	}
	if r.err != nil {
		return nil, r.err
	}
	return rows, nil
}

// WriteTail writes a table's tail file via temp+rename and returns its
// manifest-relative name.
func (s *Store) WriteTail(table string, epoch uint64, rows [][]datum.D, ncols int) (string, error) {
	name := TailFileName(table, epoch)
	if err := os.MkdirAll(filepath.Join(s.dir, table), 0o755); err != nil {
		return "", fmt.Errorf("pager: %s: %w", table, err)
	}
	if err := atomicWrite(s.Path(name), EncodeTail(rows, ncols)); err != nil {
		return "", err
	}
	return name, nil
}

// ReadTail reads and decodes a manifest-relative tail file.
func (s *Store) ReadTail(file string) ([][]datum.D, error) {
	data, err := os.ReadFile(s.Path(file))
	if err != nil {
		return nil, fmt.Errorf("pager: %w", err)
	}
	return DecodeTail(s.Path(file), data)
}
