package qa

import (
	"strings"
	"testing"

	"lantern/internal/datasets"
	"lantern/internal/engine"
	"lantern/internal/plan"
	"lantern/internal/pool"
)

func answerer(t *testing.T) *Answerer {
	t.Helper()
	e := engine.NewDefault()
	if err := datasets.LoadTPCH(e, 0.02, 1); err != nil {
		t.Fatal(err)
	}
	r, err := e.Exec(`EXPLAIN (FORMAT JSON) SELECT c.c_name, SUM(o.o_totalprice)
		FROM customer c, orders o
		WHERE c.c_custkey = o.o_custkey AND c.c_mktsegment = 'BUILDING'
		GROUP BY c.c_name ORDER BY c.c_name`)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := plan.ParsePostgresJSON(r.Plan)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(pool.NewSeededStore(), tree)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func ask(t *testing.T, a *Answerer, q string) string {
	t.Helper()
	ans, err := a.Answer(q)
	if err != nil {
		t.Fatalf("Answer(%q): %v", q, err)
	}
	return ans
}

func TestDefineOperator(t *testing.T) {
	a := answerer(t)
	ans := ask(t, a, "What is a hash join?")
	if !strings.Contains(ans, "hashing") {
		t.Errorf("definition = %q", ans)
	}
	// Longest-match: "hash join" must not answer with the Hash build op.
	if strings.Contains(ans, "in-memory hash table over its input") {
		t.Errorf("matched the wrong operator: %q", ans)
	}
	ans = ask(t, a, "define sequential scan")
	if !strings.Contains(ans, "scans the entire relation") {
		t.Errorf("definition = %q", ans)
	}
}

func TestStepLookup(t *testing.T) {
	a := answerer(t)
	ans := ask(t, a, "What does step 1 do?")
	if !strings.Contains(ans, "perform") {
		t.Errorf("step 1 = %q", ans)
	}
	if _, err := a.Answer("what does step 99 do"); err == nil {
		t.Error("out-of-range step accepted")
	}
}

func TestHowManySteps(t *testing.T) {
	a := answerer(t)
	ans := ask(t, a, "How many steps are there?")
	if !strings.Contains(ans, "steps") {
		t.Errorf("answer = %q", ans)
	}
}

func TestIdentifierProvenance(t *testing.T) {
	a := answerer(t)
	ans := ask(t, a, "Which operator produces T1?")
	if !strings.Contains(ans, "T1") || !strings.Contains(ans, "step") {
		t.Errorf("provenance = %q", ans)
	}
	if _, err := a.Answer("which operator produces T99"); err == nil {
		t.Error("unknown identifier accepted")
	}
}

func TestScannedRelations(t *testing.T) {
	a := answerer(t)
	ans := ask(t, a, "Which tables are scanned?")
	if !strings.Contains(ans, "customer") || !strings.Contains(ans, "orders") {
		t.Errorf("scanned = %q", ans)
	}
}

func TestRowEstimates(t *testing.T) {
	a := answerer(t)
	ans := ask(t, a, "How many rows does the result have?")
	if !strings.Contains(ans, "rows") {
		t.Errorf("rows = %q", ans)
	}
	ans = ask(t, a, "How many rows in T1?")
	if !strings.Contains(ans, "T1") {
		t.Errorf("rows T1 = %q", ans)
	}
}

func TestWhyAuxiliary(t *testing.T) {
	a := answerer(t)
	ans, err := a.Answer("Why is there a hash?")
	if err != nil {
		t.Skip("plan has no hash auxiliary under this cost model")
	}
	if !strings.Contains(ans, "auxiliary") {
		t.Errorf("why = %q", ans)
	}
}

func TestMostExpensive(t *testing.T) {
	a := answerer(t)
	ans := ask(t, a, "What is the most expensive step?")
	if !strings.Contains(ans, "cost") {
		t.Errorf("expensive = %q", ans)
	}
}

func TestOperatorCount(t *testing.T) {
	a := answerer(t)
	ans := ask(t, a, "How many operators does the plan have?")
	if !strings.Contains(ans, "nodes") {
		t.Errorf("count = %q", ans)
	}
}

func TestUnknownQuestion(t *testing.T) {
	a := answerer(t)
	if _, err := a.Answer("will it rain tomorrow"); err == nil {
		t.Error("nonsense question accepted")
	}
}

func TestZigzagDefinitionOnDB2Source(t *testing.T) {
	// The paper's motivating example: a learner meets ZZJOIN in DB2 and
	// asks what it is.
	store := pool.NewSeededStore()
	tree := &plan.Node{Name: "zzjoin", Source: "db2", Children: []*plan.Node{
		{Name: "tbscan", Source: "db2", Attrs: map[string]string{plan.AttrRelation: "fact"}},
		{Name: "tbscan", Source: "db2", Attrs: map[string]string{plan.AttrRelation: "dim"}},
	}}
	tree.SetAttr(plan.AttrJoinCond, "((fact.k) = (dim.k))")
	a, err := New(store, tree)
	if err != nil {
		t.Fatal(err)
	}
	ans := ask(t, a, "What is a zigzag join?")
	if !strings.Contains(ans, "star join") {
		t.Errorf("zzjoin definition = %q", ans)
	}
}
