// Package qa implements a natural-language question-answering interface
// over a narrated QEP, the companion capability the paper attributes to the
// NEURON demonstration [36] ("a natural language question answering system
// that allows a user to seek answers to a variety of concepts and features
// associated with a qep") — rebuilt here on top of LANTERN's declarative
// POEM store, so definitions work for every registered engine rather than
// hardcoded PostgreSQL rules.
//
// The matcher is deliberately rule-based (keyword patterns over the
// question), which covers the question families the demo supports:
// operator definitions, step lookups, intermediate-result provenance,
// cardinality/cost estimates, and plan structure.
package qa

import (
	"fmt"
	"regexp"
	"sort"
	"strings"

	"lantern/internal/core"
	"lantern/internal/lot"
	"lantern/internal/plan"
	"lantern/internal/pool"
)

// Answerer answers questions about one QEP and its narration.
type Answerer struct {
	Store *pool.Store
	Tree  *plan.Node
	LOT   *lot.Tree
	Nar   *core.Narration
}

// New builds an answerer: the plan is annotated and narrated once.
func New(store *pool.Store, tree *plan.Node) (*Answerer, error) {
	lt, err := lot.Build(tree, store)
	if err != nil {
		return nil, err
	}
	nar, err := core.NewRuleLantern(store).NarrateLOT(lt)
	if err != nil {
		return nil, err
	}
	return &Answerer{Store: store, Tree: tree, LOT: lt, Nar: nar}, nil
}

var (
	stepRe       = regexp.MustCompile(`step\s+(\d+)`)
	identifierRe = regexp.MustCompile(`\b(t\d+)\b`)
)

// Answer replies to a natural-language question about the plan. Unknown
// question shapes return an error listing what can be asked.
func (a *Answerer) Answer(question string) (string, error) {
	q := strings.ToLower(strings.TrimSpace(question))
	q = strings.TrimSuffix(q, "?")
	switch {
	case strings.Contains(q, "how many steps"):
		return fmt.Sprintf("The plan is executed in %d steps.", len(a.Nar.Steps)), nil

	case strings.Contains(q, "how many operators") || strings.Contains(q, "how many nodes"):
		return fmt.Sprintf("The operator tree has %d nodes (%d distinct operators: %s).",
			a.Tree.CountNodes(), len(a.Tree.OperatorNames()),
			strings.Join(a.Tree.OperatorNames(), ", ")), nil

	case stepRe.MatchString(q) && (strings.Contains(q, "what") || strings.Contains(q, "explain") || strings.Contains(q, "do")):
		m := stepRe.FindStringSubmatch(q)
		idx := atoi(m[1])
		if idx < 1 || idx > len(a.Nar.Steps) {
			return "", fmt.Errorf("qa: the plan has steps 1..%d", len(a.Nar.Steps))
		}
		return a.Nar.Steps[idx-1].Text, nil

	case identifierRe.MatchString(q) && (strings.Contains(q, "produce") || strings.Contains(q, "what is") || strings.Contains(q, "where") || strings.Contains(q, "come")):
		id := strings.ToUpper(identifierRe.FindStringSubmatch(q)[1])
		for i, s := range a.Nar.Steps {
			if s.Identifier == id {
				return fmt.Sprintf("%s is the intermediate relation produced by step %d: %s",
					id, i+1, s.Text), nil
			}
		}
		return "", fmt.Errorf("qa: no step produces %s", id)

	case strings.Contains(q, "scanned") || strings.Contains(q, "which relations") || strings.Contains(q, "which tables"):
		rels := a.scannedRelations()
		if len(rels) == 0 {
			return "No base relations are scanned (constant result).", nil
		}
		return "The plan scans: " + strings.Join(rels, ", ") + ".", nil

	case strings.Contains(q, "most expensive") || strings.Contains(q, "costliest"):
		node, step := a.mostExpensiveStep()
		return fmt.Sprintf("The most expensive operation is %q (estimated cost %.2f), narrated as: %s",
			node.Name, node.Plan.Cost, step), nil

	case strings.Contains(q, "how many rows"):
		if id := identifierRe.FindStringSubmatch(q); id != nil {
			want := strings.ToUpper(id[1])
			for _, s := range a.Nar.Steps {
				if s.Identifier == want {
					return fmt.Sprintf("%s is estimated to contain %.0f rows.", want, s.Node.Plan.Rows), nil
				}
			}
			return "", fmt.Errorf("qa: no step produces %s", want)
		}
		return fmt.Sprintf("The final result is estimated to contain %.0f rows.", a.Tree.Rows), nil

	case strings.Contains(q, "why") && (strings.Contains(q, "sort") || strings.Contains(q, "hash ")):
		return a.whyAuxiliary(q)

	case strings.HasPrefix(q, "what is a ") || strings.HasPrefix(q, "what is an ") ||
		strings.HasPrefix(q, "what is ") || strings.Contains(q, "define"):
		return a.define(q)
	}
	return "", fmt.Errorf("qa: I can answer: 'what is <operator>', 'what does step N do', " +
		"'which operator produces TN', 'how many rows in TN', 'which tables are scanned', " +
		"'how many steps', 'why is there a sort', 'what is the most expensive step'")
}

// define answers operator-definition questions from the POEM store's defn
// attribute, matching by name or alias across the plan's source.
func (a *Answerer) define(q string) (string, error) {
	objs, err := a.Store.Objects(a.LOT.Source)
	if err != nil {
		return "", err
	}
	// Longest matching name/alias wins ("hash join" over "hash"). Names are
	// canonical (no spaces), so match them against the space-stripped
	// question too.
	squeezed := strings.ReplaceAll(q, " ", "")
	best := -1
	bestLen := 0
	for i, o := range objs {
		if cand := strings.ToLower(o.DisplayName()); strings.Contains(q, cand) && len(cand) > bestLen {
			best, bestLen = i, len(cand)
		}
		if strings.Contains(squeezed, o.Name) && len(o.Name) > bestLen {
			best, bestLen = i, len(o.Name)
		}
	}
	if best < 0 {
		return "", fmt.Errorf("qa: no operator of source %q matches the question", a.LOT.Source)
	}
	o := objs[best]
	if o.Defn == "" {
		return fmt.Sprintf("%s: no definition is recorded in the POEM store; its narration template is %q.",
			o.DisplayName(), o.Descs[0]), nil
	}
	return fmt.Sprintf("%s: %s.", o.DisplayName(), strings.TrimSuffix(o.Defn, ".")), nil
}

// whyAuxiliary explains the presence of an auxiliary operator via the
// cluster structure.
func (a *Answerer) whyAuxiliary(q string) (string, error) {
	for _, pair := range a.LOT.ClusterPairs() {
		aux, crit := pair[0], pair[1]
		auxName := strings.ToLower(aux.Name)
		if strings.Contains(q, plan.Canon(aux.Plan.Name)) || strings.Contains(q, auxName) {
			return fmt.Sprintf("The %s is an auxiliary operation supporting the %s: %s.",
				aux.Name, crit.Name, supportReason(aux, crit)), nil
		}
	}
	return "", fmt.Errorf("qa: the plan has no auxiliary operator matching the question")
}

func supportReason(aux, crit *lot.Node) string {
	switch plan.Canon(aux.Plan.Name) {
	case "hash":
		return "it builds the in-memory hash table the hash join probes"
	case "sort":
		return "it orders the input so the " + strings.ToLower(crit.Name) + " can consume sorted runs"
	}
	return "it prepares the input of the " + strings.ToLower(crit.Name)
}

// scannedRelations lists the base relations touched by the plan, sorted.
func (a *Answerer) scannedRelations() []string {
	seen := map[string]bool{}
	a.Tree.Walk(func(n *plan.Node) {
		if r := n.Attr(plan.AttrRelation); r != "" {
			seen[r] = true
		}
	})
	out := make([]string, 0, len(seen))
	for r := range seen {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// mostExpensiveStep finds the narrated node with the highest estimated
// plan cost.
func (a *Answerer) mostExpensiveStep() (*lot.Node, string) {
	var best *lot.Node
	bestText := ""
	for _, s := range a.Nar.Steps {
		if best == nil || s.Node.Plan.Cost > best.Plan.Cost {
			best = s.Node
			bestText = s.Text
		}
	}
	return best, bestText
}

func atoi(s string) int {
	n := 0
	for _, c := range s {
		n = n*10 + int(c-'0')
	}
	return n
}
