// Package core implements LANTERN, the paper's primary contribution: given
// an SQL query's execution plan (as a vendor-neutral operator tree parsed
// by internal/plan), it generates a natural-language narration of the
// execution strategy.
//
// Two generators are provided, matching the paper:
//
//   - RuleLantern (§5) — deterministic template-based narration driven by
//     the POOL/POEM descriptions; Algorithm 1 of the paper.
//   - NeuralLantern (§6) — an LSTM sequence-to-sequence model with
//     attention, trained on RULE-LANTERN output diversified by paraphrasing
//     tools, that injects language variability to counter habituation.
//
// The narration follows the paper's four-layer model (§5.1): the factual
// layer is the language-annotated operator tree (internal/lot); the
// intentional layer is the per-operator content selected from the POEM
// store; the structural layer arranges the plot as a sequence of steps
// (post-order, with intermediate-result identifiers); the presentation
// layer renders the steps document-style (or annotated onto the visual
// tree, see PresentTree).
package core

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"lantern/internal/lot"
	"lantern/internal/plan"
	"lantern/internal/pool"
)

// Step is one sentence of a QEP narration.
type Step struct {
	Text string
	Node *lot.Node
	// Identifier is the intermediate-relation name this step introduced,
	// "" for pass-through and final steps.
	Identifier string
}

// Narration is the result of narrating one QEP.
type Narration struct {
	Steps  []Step
	Source string
}

// Text renders the document-style presentation (the format 38 of 43
// learners preferred in the paper's US 6).
func (n *Narration) Text() string {
	var sb strings.Builder
	for i, s := range n.Steps {
		fmt.Fprintf(&sb, "Step %d: %s\n", i+1, s.Text)
	}
	return sb.String()
}

// Sentences returns just the step sentences, for training-data generation
// and metric computation.
func (n *Narration) Sentences() []string {
	out := make([]string, len(n.Steps))
	for i, s := range n.Steps {
		out[i] = s.Text
	}
	return out
}

// TokenCount returns the number of whitespace tokens across all steps —
// the output-length measure of the paper's Exp 2.
func (n *Narration) TokenCount() int {
	c := 0
	for _, s := range n.Steps {
		c += len(strings.Fields(s.Text))
	}
	return c
}

// RuleLantern is the rule-based narration generator of paper §5.
type RuleLantern struct {
	Store *pool.Store
}

// NewRuleLantern creates a generator over a seeded POEM store.
func NewRuleLantern(store *pool.Store) *RuleLantern {
	return &RuleLantern{Store: store}
}

// Narrate runs Algorithm 1: build the LOT, cluster auxiliary nodes, then
// translate each non-auxiliary node in post-order into one step.
func (rl *RuleLantern) Narrate(tree *plan.Node) (*Narration, error) {
	lt, err := rl.BuildLOT(tree)
	if err != nil {
		return nil, err
	}
	return rl.NarrateLOT(lt)
}

// BuildLOT annotates the plan tree against the generator's POEM store —
// the first half of Narrate, exposed so callers that also need the LOT
// (tree-view presentation, the serving layer) build it exactly once.
func (rl *RuleLantern) BuildLOT(tree *plan.Node) (*lot.Tree, error) {
	return lot.Build(tree, rl.Store)
}

// NarrateLOT narrates an already-built LOT.
func (rl *RuleLantern) NarrateLOT(lt *lot.Tree) (*Narration, error) {
	nar := &Narration{Source: lt.Source}
	for _, node := range lt.Steps {
		text := NodeSentence(node)
		if ac := ActualsClause(node.Plan); ac != "" {
			text += " " + ac
		}
		switch {
		case node.Parent == nil:
			text += " to get the final results."
		case node.Identifier != "":
			text += fmt.Sprintf(" to get the intermediate relation %s.", node.Identifier)
		default:
			text += "."
		}
		nar.Steps = append(nar.Steps, Step{Text: text, Node: node, Identifier: node.Identifier})
	}
	return nar, nil
}

// NodeSentence renders the sentence body for one narration step: the
// composed, filled labels of the node's auxiliary cluster followed by the
// node's own label (the ∘ composition of §5.4, generalized to any number
// of auxiliary children — a merge join may sort both inputs).
func NodeSentence(node *lot.Node) string {
	var parts []string
	for _, aux := range node.AuxChildren {
		parts = append(parts, pool.FillTemplate(aux.Label, auxValues(aux)))
	}
	parts = append(parts, pool.FillTemplate(node.Label, nodeValues(node)))
	return strings.Join(parts, " and ")
}

// auxValues builds the placeholder values for an auxiliary node: its input
// is its only child's output.
func auxValues(aux *lot.Node) map[string]string {
	vals := map[string]string{
		"sort": aux.Plan.Attr(plan.AttrSortKey),
		"cond": aux.Plan.Attr(plan.AttrFilter),
	}
	if len(aux.Children) > 0 {
		vals["R1"] = aux.Children[0].OutputName()
	}
	return vals
}

// nodeValues builds the placeholder values for a critical (or standalone)
// node from its plan attributes and children outputs. For binary operators
// the convention follows the paper: $R2$ is the first (probe/outer) input
// and $R1$ the second (hashed/inner) one — "perform hash join on
// inproceedings and T1".
func nodeValues(node *lot.Node) map[string]string {
	p := node.Plan
	vals := map[string]string{
		"group": p.Attr(plan.AttrGroupKey),
		"sort":  p.Attr(plan.AttrSortKey),
		"index": p.Attr(plan.AttrIndexName),
	}
	if rel := p.Attr(plan.AttrRelation); rel != "" {
		vals["R1"] = relationDisplay(p)
	} else if len(node.Children) > 0 {
		vals["R1"] = node.Children[0].OutputName()
	}
	if len(node.Children) >= 2 {
		vals["R2"] = node.Children[0].OutputName()
		vals["R1"] = node.Children[1].OutputName()
	}
	switch {
	case p.Attr(plan.AttrJoinCond) != "":
		vals["cond"] = p.Attr(plan.AttrJoinCond)
	case p.Attr(plan.AttrIndexCond) != "":
		cond := p.Attr(plan.AttrIndexCond)
		if f := p.Attr(plan.AttrFilter); f != "" {
			cond += " AND " + f
		}
		vals["cond"] = cond
	default:
		vals["cond"] = p.Attr(plan.AttrFilter)
	}
	return vals
}

// MisEstimateFactor is the estimate-vs-actual ratio beyond which a
// narration calls out the optimizer's mis-estimate. Smaller gaps are
// normal statistical noise and would train learners to ignore the callout.
const MisEstimateFactor = 4.0

// ActualsClause renders the runtime-statistics aside for a narrated node
// when the plan carries actual-stats attributes (an EXPLAIN ANALYZE
// document or a tree bridged from an instrumented execution): the actual
// row count, the loop count when the operator restarted, and — when
// estimate and actual are both present and disagree by at least
// MisEstimateFactor — the mis-estimate, with direction and magnitude.
// Wall time is deliberately not narrated: it varies run to run, and
// keeping it out makes the narration a pure function of the
// fingerprint-keyed plan (see plan.AttrTimeMs).
func ActualsClause(p *plan.Node) string {
	raw := p.Attr(plan.AttrActualRows)
	if raw == "" {
		return ""
	}
	actual, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return ""
	}
	var sb strings.Builder
	sb.WriteString("(this step actually produced ")
	sb.WriteString(raw)
	if actual == 1 {
		sb.WriteString(" row")
	} else {
		sb.WriteString(" rows")
	}
	// The estimate is per execution while AttrActualRows totals across
	// all loops, so compare per-loop actuals — otherwise a perfectly
	// estimated inner side rescanned N times would read as an N-fold
	// underestimate.
	perLoop := actual
	if loops, err := strconv.ParseFloat(p.Attr(plan.AttrLoops), 64); err == nil && loops > 1 {
		fmt.Fprintf(&sb, " across %s loops", p.Attr(plan.AttrLoops))
		perLoop = actual / loops
	}
	if workers := p.Attr(plan.AttrWorkers); workers != "" {
		fmt.Fprintf(&sb, " using %s parallel workers", workers)
	}
	if segs := p.Attr(plan.AttrSegments); segs != "" {
		// Zone-map pruning is worth narrating even when nothing was
		// skipped: "0 of N pruned" teaches that the storage layout offered
		// the optimization and the predicate could not use it.
		pruned := p.Attr(plan.AttrSegmentsPruned)
		if pruned == "" {
			pruned = "0"
		}
		fmt.Fprintf(&sb, ", skipping %s of %s storage segments via zone maps", pruned, segs)
	}
	if note := misEstimateNote(p.Rows, perLoop); note != "" {
		sb.WriteString("; ")
		sb.WriteString(note)
	}
	if wanted := p.Attr(plan.AttrWorkersWanted); wanted != "" {
		// The engine's DOP policy, re-applied to the actual row count, would
		// have chosen more workers than the estimate-driven plan got — the
		// mis-estimate cost real parallelism, which is worth teaching.
		fmt.Fprintf(&sb, "; the row count would have justified %s parallel workers", wanted)
	}
	sb.WriteString(")")
	return sb.String()
}

// misEstimateNote describes an optimizer mis-estimate of at least
// MisEstimateFactor in either direction, or "" when the estimate is
// absent or close enough. The threshold test uses add-one smoothing so
// zero-row actuals stay comparable, but the *displayed* magnitude is the
// raw ratio — smoothing would understate small-estimate gaps, exactly the
// cases the callout exists to teach (est 1 vs actual 99 is 99x, not 50x).
func misEstimateNote(est, actual float64) string {
	if est <= 0 {
		return ""
	}
	smoothed := (actual + 1) / (est + 1)
	switch {
	case smoothed >= MisEstimateFactor:
		return fmt.Sprintf("the optimizer expected only %.0f, a %.1fx underestimate", est, actual/est)
	case smoothed <= 1/MisEstimateFactor:
		return fmt.Sprintf("the optimizer expected %.0f, a %.1fx overestimate", est, est/math.Max(actual, 1))
	}
	return ""
}

// relationDisplay shows the base relation, keeping the query's alias
// visible when it differs ("customer (c)") so self-joins stay readable.
func relationDisplay(p *plan.Node) string {
	rel := p.Attr(plan.AttrRelation)
	alias := p.Attr(plan.AttrAlias)
	if alias != "" && alias != rel {
		return fmt.Sprintf("%s (%s)", rel, alias)
	}
	return rel
}

// PresentTree renders the visual-tree presentation mode of US 6: the
// operator tree with each narrated node annotated with its sentence.
func PresentTree(lt *lot.Tree, nar *Narration) string {
	sentences := make(map[*lot.Node]string, len(nar.Steps))
	for _, s := range nar.Steps {
		sentences[s.Node] = s.Text
	}
	var sb strings.Builder
	var rec func(n *lot.Node, depth int)
	rec = func(n *lot.Node, depth int) {
		indent := strings.Repeat("  ", depth)
		sb.WriteString(indent)
		sb.WriteString(n.Name)
		if n.Auxiliary {
			sb.WriteString(" [auxiliary]")
		}
		if s, ok := sentences[n]; ok {
			sb.WriteString("  — ")
			sb.WriteString(s)
		}
		sb.WriteString("\n")
		for _, c := range n.Children {
			rec(c, depth+1)
		}
	}
	rec(lt.Root, 0)
	return sb.String()
}
