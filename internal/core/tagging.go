package core

import (
	"regexp"
	"strings"

	"lantern/internal/lot"
	"lantern/internal/plan"
	"lantern/internal/pool"
)

// The special tags of the paper's Table 1. Schema-dependent variables
// (relation names, conditions, attributes) "do not contribute to the
// training of a translation model", so they are replaced by these tags in
// the training outputs and substituted back after inference.
const (
	TagTable     = "<T>"  // an existing (base or temporary) table name
	TagNewTable  = "<TN>" // new temporary table name
	TagFilter    = "<F>"  // filtering condition
	TagJoinCond  = "<C>"  // join condition
	TagSortKey   = "<A>"  // column name for sort
	TagGroupKey  = "<G>"  // column name for group by
	TagIndexName = "<I>"  // indexed column name
)

// TagMap records, per tag, the concrete values it replaced — in the order
// they appear in the tagged sentence — so Detag can restore them.
type TagMap map[string][]string

// add records a replacement.
func (tm TagMap) add(tag, value string) {
	tm[tag] = append(tm[tag], value)
}

// placeholderTag maps a template placeholder name to its Table 1 tag given
// the node's attributes.
func placeholderTag(name string, p *plan.Node) string {
	switch name {
	case "R1", "R2":
		return TagTable
	case "group":
		return TagGroupKey
	case "sort":
		return TagSortKey
	case "index":
		return TagIndexName
	case "cond":
		if p.Attr(plan.AttrJoinCond) != "" {
			return TagJoinCond
		}
		return TagFilter
	}
	return "<" + name + ">"
}

// TaggedNodeSentence renders the same sentence as NodeSentence but with
// every schema-dependent value replaced by its special tag, returning the
// tag-to-value map needed to detag the model's output later. The trailing
// intermediate/final clause is included, with <TN> for the new identifier.
func TaggedNodeSentence(node *lot.Node) (string, TagMap) {
	tags := TagMap{}
	var parts []string
	for _, aux := range node.AuxChildren {
		parts = append(parts, fillTagged(aux.Label, auxValues(aux), aux.Plan, tags))
	}
	parts = append(parts, fillTagged(node.Label, nodeValues(node), node.Plan, tags))
	text := strings.Join(parts, " and ")
	switch {
	case node.Parent == nil:
		text += " to get the final results."
	case node.Identifier != "":
		text += " to get the intermediate relation " + TagNewTable + "."
		tags.add(TagNewTable, node.Identifier)
	default:
		text += "."
	}
	return text, tags
}

// fillTagged fills a template with tags instead of values, recording the
// real values in tag order. Placeholders whose real value is empty are
// dropped exactly as in the untagged rendering, keeping the tagged and
// untagged sentences structurally aligned.
func fillTagged(tpl string, vals map[string]string, p *plan.Node, tags TagMap) string {
	tagVals := make(map[string]string, len(vals))
	order := placeholderOrder(tpl)
	for _, name := range order {
		v, ok := vals[name]
		if !ok || v == "" {
			continue
		}
		tag := placeholderTag(name, p)
		tagVals[name] = tag
		tags.add(tag, v)
	}
	return pool.FillTemplate(tpl, tagVals)
}

var placeholderRe = regexp.MustCompile(`\$([A-Za-z0-9]+)\$`)

// placeholderOrder lists the placeholder names of a template in textual
// order (duplicates included once each occurrence).
func placeholderOrder(tpl string) []string {
	ms := placeholderRe.FindAllStringSubmatch(tpl, -1)
	out := make([]string, 0, len(ms))
	for _, m := range ms {
		out = append(out, m[1])
	}
	return out
}

// Detag restores the concrete values into a tagged sentence (the final
// step of NEURAL-LANTERN's §6.4.3: "we replace the special tags ... using
// the corresponding identifiers"). Tags are consumed left to right in the
// order the TagMap recorded them; surplus tags without a recorded value
// are left in place (they surface in the Exp 5 error audit).
func Detag(tagged string, tags TagMap) string {
	remaining := make(map[string][]string, len(tags))
	for k, v := range tags {
		remaining[k] = append([]string{}, v...)
	}
	tokens := strings.Fields(tagged)
	for i, tok := range tokens {
		trail := ""
		word := tok
		for len(word) > 0 && (word[len(word)-1] == '.' || word[len(word)-1] == ',') {
			trail = string(word[len(word)-1]) + trail
			word = word[:len(word)-1]
		}
		vals, ok := remaining[word]
		if !ok || len(vals) == 0 {
			continue
		}
		tokens[i] = vals[0] + trail
		remaining[word] = vals[1:]
	}
	return strings.Join(tokens, " ")
}
