package core

import (
	"strings"
	"testing"

	"lantern/internal/lot"
	"lantern/internal/plan"
	"lantern/internal/pool"
)

// figure4LOT builds the paper's Figure 4 tree and annotates it.
func figure4LOT(t *testing.T) *lot.Tree {
	t.Helper()
	scanIn := &plan.Node{Name: "Seq Scan", Source: "pg",
		Attrs: map[string]string{plan.AttrRelation: "inproceedings", plan.AttrAlias: "inproceedings"}}
	scanPub := &plan.Node{Name: "Seq Scan", Source: "pg",
		Attrs: map[string]string{plan.AttrRelation: "publication", plan.AttrAlias: "publication",
			plan.AttrFilter: "(title LIKE '%July%')"}}
	hash := &plan.Node{Name: "Hash", Source: "pg", Children: []*plan.Node{scanPub}}
	join := &plan.Node{Name: "Hash Join", Source: "pg",
		Attrs:    map[string]string{plan.AttrJoinCond: "((i.proceeding_key) = (p.pub_key))"},
		Children: []*plan.Node{scanIn, hash}}
	root := &plan.Node{Name: "Unique", Source: "pg", Children: []*plan.Node{join}}
	lt, err := lot.Build(root, pool.NewSeededStore())
	if err != nil {
		t.Fatal(err)
	}
	return lt
}

func TestTaggedSentenceMatchesTable1Tags(t *testing.T) {
	lt := figure4LOT(t)
	// The filtered scan step: relation -> <T>, filter -> <F>, new id -> <TN>.
	var scanStep *lot.Node
	for _, n := range lt.Steps {
		if n.Plan.Attr(plan.AttrRelation) == "publication" {
			scanStep = n
		}
	}
	if scanStep == nil {
		t.Fatal("no publication step")
	}
	tagged, tags := TaggedNodeSentence(scanStep)
	for _, want := range []string{TagTable, TagFilter, TagNewTable} {
		if !strings.Contains(tagged, want) {
			t.Errorf("tagged sentence lacks %s: %s", want, tagged)
		}
	}
	if strings.Contains(tagged, "publication") || strings.Contains(tagged, "July") {
		t.Errorf("schema content leaked: %s", tagged)
	}
	if got := tags[TagTable]; len(got) != 1 || got[0] != "publication" {
		t.Errorf("<T> values = %v", got)
	}
	if got := tags[TagFilter]; len(got) != 1 || !strings.Contains(got[0], "July") {
		t.Errorf("<F> values = %v", got)
	}
}

func TestTaggedJoinUsesJoinCondTag(t *testing.T) {
	lt := figure4LOT(t)
	var joinStep *lot.Node
	for _, n := range lt.Steps {
		if plan.Canon(n.Plan.Name) == "hashjoin" {
			joinStep = n
		}
	}
	if joinStep == nil {
		t.Fatal("no join step")
	}
	tagged, tags := TaggedNodeSentence(joinStep)
	if !strings.Contains(tagged, TagJoinCond) {
		t.Errorf("no <C> tag: %s", tagged)
	}
	if strings.Contains(tagged, TagFilter) {
		t.Errorf("join condition mis-tagged as <F>: %s", tagged)
	}
	// Two <T> occurrences: the probe relation and the hashed input; plus
	// the aux segment's <T>.
	if n := strings.Count(tagged, TagTable); n < 2 {
		t.Errorf("expected >= 2 <T> tags, got %d: %s", n, tagged)
	}
	if len(tags[TagJoinCond]) != 1 {
		t.Errorf("<C> values = %v", tags[TagJoinCond])
	}
}

func TestDetagLeavesUnmatchedTags(t *testing.T) {
	// A model may emit more tags than the act provides values for; Detag
	// must leave the surplus visible (the Exp 5 failure mode) and never
	// panic.
	tags := TagMap{TagTable: {"customer"}}
	out := Detag("perform hash join on <T> and <T> on condition <C>.", tags)
	if !strings.Contains(out, "customer") {
		t.Errorf("first tag not substituted: %s", out)
	}
	if !strings.Contains(out, TagTable) || !strings.Contains(out, TagJoinCond) {
		t.Errorf("surplus tags should remain: %s", out)
	}
}

func TestDetagConsumesInOrder(t *testing.T) {
	tags := TagMap{TagTable: {"orders", "T1"}}
	out := Detag("join <T> with <T>.", tags)
	if out != "join orders with T1." {
		t.Errorf("out = %q", out)
	}
}

func TestDetagHandlesPunctuation(t *testing.T) {
	tags := TagMap{TagNewTable: {"T3"}}
	out := Detag("to get the intermediate relation <TN>.", tags)
	if out != "to get the intermediate relation T3." {
		t.Errorf("out = %q", out)
	}
}

func TestPlaceholderOrder(t *testing.T) {
	got := placeholderOrder("a $R2$ b $R1$ c $cond$ d $R1$")
	want := []string{"R2", "R1", "cond", "R1"}
	if len(got) != len(want) {
		t.Fatalf("order = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("order[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}
