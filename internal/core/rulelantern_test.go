package core

import (
	"fmt"
	"strings"
	"testing"

	"lantern/internal/engine"
	"lantern/internal/lot"
	"lantern/internal/plan"
	"lantern/internal/pool"
)

// dblpEngine reproduces the paper's Example 3.1 environment: the dblp
// tables with enough rows that the optimizer chooses the Figure 4 plan
// (hash join + sorted aggregate + unique).
func dblpEngine(t *testing.T) *engine.Engine {
	t.Helper()
	cfg := engine.DefaultConfig()
	cfg.EnableHashAgg = false   // paper plan uses GroupAggregate
	cfg.EnableMergeJoin = false // force the hash join of Figure 4
	cfg.EnableNestLoop = false
	e := engine.New(cfg)
	script := `
CREATE TABLE inproceedings (proceeding_key INTEGER, author VARCHAR(30));
CREATE TABLE publication (pub_key INTEGER, title VARCHAR(60));
`
	if _, err := e.ExecScript(script); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 50; i++ {
		title := "Symposium Proceedings"
		if i%5 == 0 {
			title = "Proceedings of July"
		}
		if _, err := e.Exec(sqlf("INSERT INTO inproceedings VALUES (%d, 'a%d')", i%10, i)); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Exec(sqlf("INSERT INTO publication VALUES (%d, '%s %d')", i%10, title, i)); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

func sqlf(format string, args ...any) string {
	return fmt.Sprintf(format, args...)
}

const paperQuery = `SELECT DISTINCT(I.proceeding_key)
	FROM inproceedings I, publication P
	WHERE I.proceeding_key = P.pub_key AND P.title LIKE '%July%'
	GROUP BY I.proceeding_key
	HAVING COUNT(*) > 2`

func paperTree(t *testing.T, e *engine.Engine) *plan.Node {
	t.Helper()
	r, err := e.Exec("EXPLAIN (FORMAT JSON) " + paperQuery)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := plan.ParsePostgresJSON(r.Plan)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestNarratePaperExample(t *testing.T) {
	e := dblpEngine(t)
	tree := paperTree(t, e)
	rl := NewRuleLantern(pool.NewSeededStore())
	nar, err := rl.Narrate(tree)
	if err != nil {
		t.Fatalf("Narrate: %v\nplan:\n%s", err, tree.String())
	}
	if len(nar.Steps) != 5 {
		t.Fatalf("steps = %d, want 5 (Example 5.1):\n%s", len(nar.Steps), nar.Text())
	}
	checks := []struct {
		step     int
		contains []string
	}{
		{0, []string{"perform sequential scan on inproceedings"}},
		{1, []string{"perform sequential scan on publication", "filtering on", "July", "intermediate relation T1"}},
		{2, []string{"hash T1", "perform hash join on inproceedings (i) and T1", "on condition", "intermediate relation T2"}},
		{3, []string{"sort T2", "perform aggregate on T2", "grouping on attribute i.proceeding_key", "filtering on", "intermediate relation T3"}},
		{4, []string{"perform duplicate removal on T3", "final results"}},
	}
	for _, c := range checks {
		for _, want := range c.contains {
			if !strings.Contains(nar.Steps[c.step].Text, want) {
				t.Errorf("step %d missing %q:\n  %s", c.step+1, want, nar.Steps[c.step].Text)
			}
		}
	}
	// Step 1's scan is a pass-through: no identifier.
	if nar.Steps[0].Identifier != "" {
		t.Errorf("step 1 identifier = %q, want none", nar.Steps[0].Identifier)
	}
}

func TestNarrationTextPresentation(t *testing.T) {
	e := dblpEngine(t)
	tree := paperTree(t, e)
	rl := NewRuleLantern(pool.NewSeededStore())
	nar, err := rl.Narrate(tree)
	if err != nil {
		t.Fatal(err)
	}
	text := nar.Text()
	if !strings.Contains(text, "Step 1:") || !strings.Contains(text, "Step 5:") {
		t.Errorf("presentation:\n%s", text)
	}
	if nar.TokenCount() < 20 {
		t.Errorf("token count = %d, implausibly short", nar.TokenCount())
	}
	if len(nar.Sentences()) != len(nar.Steps) {
		t.Error("Sentences()/Steps mismatch")
	}
}

// Invariant from DESIGN.md: step count = #nodes − #auxiliary nodes, and
// every identifier introduced is referenced exactly once by a later step.
func TestNarrationStructuralInvariants(t *testing.T) {
	e := dblpEngine(t)
	tree := paperTree(t, e)
	store := pool.NewSeededStore()
	rl := NewRuleLantern(store)
	nar, err := rl.Narrate(tree)
	if err != nil {
		t.Fatal(err)
	}
	total := tree.CountNodes()
	aux := 0
	tree.Walk(func(n *plan.Node) {
		c := plan.Canon(n.Name)
		if c == "hash" || c == "sort" {
			aux++
		}
	})
	if len(nar.Steps) != total-aux {
		t.Errorf("steps = %d, nodes = %d, auxiliary = %d", len(nar.Steps), total, aux)
	}
	for i, s := range nar.Steps {
		if s.Identifier == "" {
			continue
		}
		refs := 0
		for j := i + 1; j < len(nar.Steps); j++ {
			refs += strings.Count(nar.Steps[j].Text, s.Identifier)
		}
		if refs == 0 {
			t.Errorf("identifier %s introduced at step %d never referenced", s.Identifier, i+1)
		}
	}
}

func TestNarrateSQLServerPlan(t *testing.T) {
	e := dblpEngine(t)
	r, err := e.Exec("EXPLAIN (FORMAT XML) " + paperQuery)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := plan.ParseSQLServerXML(r.Plan)
	if err != nil {
		t.Fatal(err)
	}
	rl := NewRuleLantern(pool.NewSeededStore())
	nar, err := rl.Narrate(tree)
	if err != nil {
		t.Fatalf("Narrate(sqlserver): %v\nplan:\n%s", err, tree.String())
	}
	text := nar.Text()
	if !strings.Contains(text, "perform hash join") {
		t.Errorf("SQL Server narration lacks hash join:\n%s", text)
	}
	// SQL Server plans have no separate Hash build node, so no "hash T1"
	// auxiliary segment.
	if strings.Contains(text, "hash T1 and") {
		t.Errorf("unexpected auxiliary hash segment in SQL Server narration:\n%s", text)
	}
	if !strings.Contains(text, "final results") {
		t.Errorf("missing final step:\n%s", text)
	}
}

func TestNarrateIndexScanPlan(t *testing.T) {
	e := engine.NewDefault()
	if _, err := e.ExecScript(`
CREATE TABLE customer (c_custkey INTEGER, c_name VARCHAR(25));
CREATE INDEX customer_pk ON customer (c_custkey);`); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 100; i++ {
		if _, err := e.Exec(sqlf("INSERT INTO customer VALUES (%d, 'c%d')", i, i)); err != nil {
			t.Fatal(err)
		}
	}
	r, err := e.Exec("EXPLAIN (FORMAT JSON) SELECT c_name FROM customer WHERE c_custkey = 42")
	if err != nil {
		t.Fatal(err)
	}
	tree, err := plan.ParsePostgresJSON(r.Plan)
	if err != nil {
		t.Fatal(err)
	}
	rl := NewRuleLantern(pool.NewSeededStore())
	nar, err := rl.Narrate(tree)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(nar.Text(), "perform index scan on customer") {
		t.Errorf("narration:\n%s", nar.Text())
	}
	if !strings.Contains(nar.Text(), "using index") {
		t.Errorf("no index mention:\n%s", nar.Text())
	}
}

func TestNarrateUnknownOperatorFails(t *testing.T) {
	rl := NewRuleLantern(pool.NewSeededStore())
	tree := &plan.Node{Name: "Quantum Scan", Source: "pg"}
	if _, err := rl.Narrate(tree); err == nil {
		t.Error("expected error for unknown operator")
	}
}

func TestPresentTree(t *testing.T) {
	e := dblpEngine(t)
	tree := paperTree(t, e)
	store := pool.NewSeededStore()
	rl := NewRuleLantern(store)
	lt, err := lot.Build(tree, store)
	if err != nil {
		t.Fatal(err)
	}
	nar, err := rl.NarrateLOT(lt)
	if err != nil {
		t.Fatal(err)
	}
	out := PresentTree(lt, nar)
	if !strings.Contains(out, "[auxiliary]") {
		t.Errorf("no auxiliary annotation:\n%s", out)
	}
	if !strings.Contains(out, "—") {
		t.Errorf("no sentence annotations:\n%s", out)
	}
}

func TestMergeJoinNarrationSortsBothInputs(t *testing.T) {
	cfg := engine.DefaultConfig()
	cfg.EnableHashJoin = false
	cfg.EnableNestLoop = false
	e := engine.New(cfg)
	if _, err := e.ExecScript(`
CREATE TABLE a (x INTEGER, p VARCHAR(5));
CREATE TABLE b (y INTEGER, q VARCHAR(5));`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		_, _ = e.Exec(sqlf("INSERT INTO a VALUES (%d, 'p%d')", i, i))
		_, _ = e.Exec(sqlf("INSERT INTO b VALUES (%d, 'q%d')", i%7, i))
	}
	r, err := e.Exec("EXPLAIN (FORMAT JSON) SELECT a.p FROM a, b WHERE a.x = b.y")
	if err != nil {
		t.Fatal(err)
	}
	tree, err := plan.ParsePostgresJSON(r.Plan)
	if err != nil {
		t.Fatal(err)
	}
	rl := NewRuleLantern(pool.NewSeededStore())
	nar, err := rl.Narrate(tree)
	if err != nil {
		t.Fatal(err)
	}
	text := nar.Text()
	if !strings.Contains(text, "perform merge join") {
		t.Fatalf("no merge join in:\n%s", text)
	}
	if strings.Count(text, "sort ") < 2 {
		t.Errorf("merge join narration should sort both inputs:\n%s", text)
	}
}

// TestNarrateActuals: a tree bridged from an instrumented execution
// narrates the actual row counts, and a large estimate-vs-actual gap is
// called out with direction and magnitude.
func TestNarrateActuals(t *testing.T) {
	e := dblpEngine(t)
	qr, err := e.QueryInstrumented("SELECT author FROM inproceedings WHERE proceeding_key = 3")
	if err != nil {
		t.Fatal(err)
	}
	tree := engine.ToPlanNodeStats(qr.Plan, qr.Stats)
	nar, err := NewRuleLantern(pool.NewSeededStore()).Narrate(tree)
	if err != nil {
		t.Fatal(err)
	}
	text := nar.Text()
	if !strings.Contains(text, "actually produced 5 rows") {
		t.Errorf("narration lacks the actual row count:\n%s", text)
	}
	// The same plan without stats narrates exactly as before — no clause.
	plain, err := NewRuleLantern(pool.NewSeededStore()).Narrate(engine.ToPlanNode(qr.Plan))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain.Text(), "actually produced") {
		t.Errorf("uninstrumented narration grew an actuals clause:\n%s", plain.Text())
	}
}

// TestActualsClauseMisEstimate exercises the callout thresholds directly.
func TestActualsClauseMisEstimate(t *testing.T) {
	mk := func(est float64, actual string) *plan.Node {
		n := &plan.Node{Name: "Seq Scan", Source: "native", Rows: est}
		n.SetAttr(plan.AttrRelation, "t")
		n.SetAttr(plan.AttrActualRows, actual)
		n.SetAttr(plan.AttrLoops, "1")
		return n
	}
	if got := ActualsClause(mk(10, "499")); !strings.Contains(got, "underestimate") {
		t.Errorf("50x gap not called out as underestimate: %q", got)
	}
	if got := ActualsClause(mk(400, "3")); !strings.Contains(got, "overestimate") {
		t.Errorf("100x gap not called out as overestimate: %q", got)
	}
	if got := ActualsClause(mk(10, "12")); strings.Contains(got, "estimate") {
		t.Errorf("near-match should not be called out: %q", got)
	}
	if got := ActualsClause(mk(2, "1")); !strings.Contains(got, "1 row)") {
		t.Errorf("singular form wrong: %q", got)
	}
	loopy := mk(10, "12")
	loopy.SetAttr(plan.AttrLoops, "3")
	if got := ActualsClause(loopy); !strings.Contains(got, "across 3 loops") {
		t.Errorf("loop count missing: %q", got)
	}
	// A perfectly-estimated operator rescanned many times must not read
	// as a mis-estimate: the total is divided by loops before comparing.
	perfect := mk(50, "5000")
	perfect.SetAttr(plan.AttrLoops, "100")
	if got := ActualsClause(perfect); strings.Contains(got, "estimate") {
		t.Errorf("loop count misread as a mis-estimate: %q", got)
	}
	// The displayed magnitude is the raw ratio, not the smoothed one used
	// for the threshold: est 1 vs actual 99 is a 99x gap, not 50x.
	if got := ActualsClause(mk(1, "99")); !strings.Contains(got, "99.0x underestimate") {
		t.Errorf("displayed factor should be the raw ratio: %q", got)
	}
}
