package core

import (
	"sync"

	"lantern/internal/lot"
	"lantern/internal/plan"
)

// StepGenerator produces the sentence for one act (LOT node cluster).
// NEURAL-LANTERN implements it; the orchestrator mixes it with
// RULE-LANTERN per the frequency-threshold policy of US 5.
type StepGenerator interface {
	ActSentence(node *lot.Node) (string, error)
}

// Lantern is the full system: RULE-LANTERN by default, switching an
// operator's narration to NEURAL-LANTERN once the learner has seen that
// operator more than FreqThreshold times across QEPs (the paper's US 5
// integration, threshold 5) — countering habituation exactly where
// repeated exposure happens.
//
// Exposure tracking is safe for concurrent Narrate calls (the serving
// layer narrates on a worker pool); the counters are guarded by an
// internal mutex.
type Lantern struct {
	Rule          *RuleLantern
	Neural        StepGenerator // nil disables switching
	FreqThreshold int
	mu            sync.Mutex
	exposures     map[string]int
}

// NewLantern builds the integrated system over a POEM store-backed
// RULE-LANTERN and an optional neural step generator.
func NewLantern(rule *RuleLantern, neural StepGenerator) *Lantern {
	return &Lantern{
		Rule:          rule,
		Neural:        neural,
		FreqThreshold: 5,
		exposures:     make(map[string]int),
	}
}

// ResetExposure clears the per-operator exposure counters (a new learner
// session).
func (l *Lantern) ResetExposure() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.exposures = make(map[string]int)
}

// Exposure reports how many times an operator has been narrated so far.
func (l *Lantern) Exposure(opName string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.exposures[plan.Canon(opName)]
}

// Narrate generates the narration for a QEP, tracking per-operator
// exposure across calls. Steps whose operator exceeded the threshold are
// generated neurally (when a neural generator is installed); the rest come
// from RULE-LANTERN.
func (l *Lantern) Narrate(tree *plan.Node) (*Narration, error) {
	lt, err := lot.Build(tree, l.Rule.Store)
	if err != nil {
		return nil, err
	}
	ruleNar, err := l.Rule.NarrateLOT(lt)
	if err != nil {
		return nil, err
	}
	nar := &Narration{Source: lt.Source}
	for i, node := range lt.Steps {
		op := plan.Canon(node.Plan.Name)
		l.mu.Lock()
		l.exposures[op]++
		seen := l.exposures[op]
		l.mu.Unlock()
		step := ruleNar.Steps[i]
		if l.Neural != nil && seen > l.FreqThreshold {
			if text, err := l.Neural.ActSentence(node); err == nil && text != "" {
				step.Text = text
			}
		}
		nar.Steps = append(nar.Steps, step)
	}
	return nar, nil
}
