package neuron

import (
	"strings"
	"testing"

	"lantern/internal/datasets"
	"lantern/internal/engine"
	"lantern/internal/plan"
)

func plans(t *testing.T, format string) []*plan.Node {
	t.Helper()
	e := engine.NewDefault()
	if err := datasets.LoadTPCH(e, 0.02, 1); err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"SELECT c_name FROM customer WHERE c_mktsegment = 'BUILDING'",
		"SELECT c.c_name, o.o_orderkey FROM customer c, orders o WHERE c.c_custkey = o.o_custkey",
		"SELECT c_mktsegment, COUNT(*) FROM customer GROUP BY c_mktsegment",
	}
	var out []*plan.Node
	for _, q := range queries {
		r, err := e.Exec("EXPLAIN (FORMAT " + format + ") " + q)
		if err != nil {
			t.Fatal(err)
		}
		var tree *plan.Node
		if format == "JSON" {
			tree, err = plan.ParsePostgresJSON(r.Plan)
		} else {
			tree, err = plan.ParseSQLServerXML(r.Plan)
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, tree)
	}
	return out
}

func TestNarratesPostgresPlans(t *testing.T) {
	n := New()
	for _, tree := range plans(t, "JSON") {
		if !n.Supports(tree) {
			t.Fatalf("NEURON should support PostgreSQL plan:\n%s", tree.String())
		}
		text, err := n.Narrate(tree)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(text, "Step 1:") {
			t.Errorf("narration:\n%s", text)
		}
	}
}

func TestFailsOnSQLServerPlans(t *testing.T) {
	// The paper's US 5: NEURON's hardcoded PostgreSQL rules cannot handle
	// SQL Server operator names, so every SDSS/SQL Server plan fails.
	n := New()
	for _, tree := range plans(t, "XML") {
		if n.Supports(tree) {
			t.Fatalf("NEURON should not support SQL Server plan:\n%s", tree.String())
		}
		if _, err := n.Narrate(tree); err == nil {
			t.Error("expected narration failure on SQL Server plan")
		}
	}
}

func TestRepetitiveOutput(t *testing.T) {
	// NEURON has exactly one template per operator, so two different scans
	// produce near-identical sentences — the boredom driver of Table 7.
	n := New()
	trees := plans(t, "JSON")
	a, err := n.Narrate(trees[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(a, "perform sequential scan") {
		t.Errorf("unexpected narration:\n%s", a)
	}
}
