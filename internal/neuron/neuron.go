// Package neuron reimplements the NEURON baseline [36] the paper compares
// against (US 5): a rule-based QEP narrator whose translation rules for
// PostgreSQL's operators are hardcoded — it has no declarative POOL layer,
// no POEM store, and therefore no way to handle SQL Server's differently
// named operators ("none of the workloads of sdss is successfully
// translated as majority of operators of SQL Server have different names
// from those in PostgreSQL").
package neuron

import (
	"fmt"
	"strings"

	"lantern/internal/plan"
)

// Neuron is the baseline narrator.
type Neuron struct{}

// New creates the baseline.
func New() *Neuron { return &Neuron{} }

// hardcoded maps PostgreSQL operator names (and only those) to their fixed
// sentence templates. This is deliberately a closed, code-level table —
// the architectural limitation the paper attributes to NEURON.
// The sentence lengths match LANTERN's (the paper measures 188.136 vs
// 188.318 average tokens), but there is exactly one fixed phrasing per
// operator and the intermediate results are all called "the intermediate
// result" — the repetitiveness that earns NEURON the worst boredom index.
var hardcoded = map[string]string{
	"Seq Scan":       "perform sequential scan on %REL%%FILTER% to get the intermediate result",
	"Index Scan":     "perform index scan on %REL%%FILTER% to get the intermediate result",
	"Hash":           "hash %CHILD%",
	"Hash Join":      "perform hash join on %CHILD% and the other input on condition %COND% to get the intermediate result",
	"Merge Join":     "perform merge join on %CHILD% and the other input on condition %COND% to get the intermediate result",
	"Nested Loop":    "perform nested loop join on %CHILD% and the other input on condition %COND% to get the intermediate result",
	"Sort":           "sort %CHILD% to get the intermediate result",
	"Materialize":    "materialize %CHILD% to get the intermediate result",
	"Aggregate":      "perform aggregate on the intermediate result",
	"HashAggregate":  "perform hash aggregate with grouping on %GROUP% to get the intermediate result",
	"GroupAggregate": "perform aggregate with grouping on %GROUP% to get the intermediate result",
	"Unique":         "perform duplicate removal on the intermediate result",
	"Limit":          "keep only the first requested rows of the intermediate result",
	"Result":         "produce a constant result",
}

// Narrate produces NEURON's fixed narration for a PostgreSQL plan. It
// fails on any operator outside its hardcoded PostgreSQL vocabulary —
// in particular on every SQL Server plan.
func (n *Neuron) Narrate(tree *plan.Node) (string, error) {
	var steps []string
	var failed error
	tree.WalkPostOrder(func(node *plan.Node) {
		if failed != nil {
			return
		}
		tpl, ok := hardcoded[node.Name]
		if !ok {
			failed = fmt.Errorf("neuron: unsupported operator %q (only PostgreSQL operators are hardcoded)", node.Name)
			return
		}
		text := tpl
		text = strings.ReplaceAll(text, "%REL%", node.Attr(plan.AttrRelation))
		filter := ""
		if f := node.Attr(plan.AttrFilter); f != "" {
			filter = " and filtering on " + f
		}
		text = strings.ReplaceAll(text, "%FILTER%", filter)
		text = strings.ReplaceAll(text, "%COND%", node.Attr(plan.AttrJoinCond))
		text = strings.ReplaceAll(text, "%GROUP%", node.Attr(plan.AttrGroupKey))
		child := "the input"
		if len(node.Children) > 0 {
			if rel := node.Children[0].Attr(plan.AttrRelation); rel != "" {
				child = rel
			} else {
				child = "the intermediate result"
			}
		}
		text = strings.ReplaceAll(text, "%CHILD%", child)
		steps = append(steps, strings.TrimSpace(text)+".")
	})
	if failed != nil {
		return "", failed
	}
	var sb strings.Builder
	for i, s := range steps {
		fmt.Fprintf(&sb, "Step %d: %s\n", i+1, s)
	}
	return sb.String(), nil
}

// Supports reports whether NEURON can narrate the plan at all.
func (n *Neuron) Supports(tree *plan.Node) bool {
	ok := true
	tree.Walk(func(node *plan.Node) {
		if _, found := hardcoded[node.Name]; !found {
			ok = false
		}
	})
	return ok
}
