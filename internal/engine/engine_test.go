package engine

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"lantern/internal/storage"
)

// testDB builds a small database patterned on the paper's running examples:
// a dblp-like pair of tables plus an orders/customer pair.
func testDB(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e := New(cfg)
	seedTestDB(t, e, 0)
	return e
}

// seedTestDB loads the standard test schema and rows into e. A non-zero
// segCap shrinks every table's segment capacity first, so the small test
// tables seal (and, on a disk-backed catalog, spill) multiple segments.
func seedTestDB(t *testing.T, e *Engine, segCap int) {
	t.Helper()
	script := `
CREATE TABLE inproceedings (proceeding_key INTEGER, author VARCHAR(30));
CREATE TABLE publication (pub_key INTEGER, title VARCHAR(60));
CREATE TABLE customer (c_custkey INTEGER, c_name VARCHAR(25), c_mktsegment VARCHAR(10), c_acctbal FLOAT);
CREATE TABLE orders (o_orderkey INTEGER, o_custkey INTEGER, o_totalprice FLOAT, o_status VARCHAR(1));
CREATE INDEX customer_pk ON customer (c_custkey);
`
	if _, err := e.ExecScript(script); err != nil {
		t.Fatal(err)
	}
	if segCap > 0 {
		for _, name := range e.Cat.TableNames() {
			tbl, err := e.Cat.Table(name)
			if err != nil {
				t.Fatal(err)
			}
			if err := tbl.SetSegmentCapacity(segCap); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 1; i <= 40; i++ {
		title := "Proc"
		if i%4 == 0 {
			title = "July Proceedings"
		}
		mustExec(t, e, fmt.Sprintf("INSERT INTO inproceedings VALUES (%d, 'auth%d')", i%10, i))
		mustExec(t, e, fmt.Sprintf("INSERT INTO publication VALUES (%d, '%s %d')", i%10, title, i))
	}
	for i := 1; i <= 20; i++ {
		seg := "BUILDING"
		if i%3 == 0 {
			seg = "AUTO"
		}
		mustExec(t, e, fmt.Sprintf("INSERT INTO customer VALUES (%d, 'cust%d', '%s', %d.5)", i, i, seg, i*10))
	}
	for i := 1; i <= 60; i++ {
		mustExec(t, e, fmt.Sprintf("INSERT INTO orders VALUES (%d, %d, %d.0, '%s')", i, i%20+1, i*7, string(rune('A'+i%3))))
	}
}

func mustExec(t *testing.T, e *Engine, sql string) *Result {
	t.Helper()
	r, err := e.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return r
}

func rowStrings(rows []storage.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		parts := make([]string, len(r))
		for j, v := range r {
			parts[j] = v.String()
		}
		out[i] = strings.Join(parts, "|")
	}
	return out
}

func sortedRowStrings(rows []storage.Row) []string {
	out := rowStrings(rows)
	sort.Strings(out)
	return out
}

func TestSelectProjection(t *testing.T) {
	e := testDB(t, DefaultConfig())
	r := mustExec(t, e, "SELECT c_name, c_acctbal * 2 AS double_bal FROM customer WHERE c_custkey = 3")
	if len(r.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(r.Rows))
	}
	if r.Columns[0] != "c_name" || r.Columns[1] != "double_bal" {
		t.Errorf("columns = %v", r.Columns)
	}
	if r.Rows[0][0].Str() != "cust3" || r.Rows[0][1].Float() != 61 {
		t.Errorf("row = %v", r.Rows[0])
	}
}

func TestSelectStarExec(t *testing.T) {
	e := testDB(t, DefaultConfig())
	r := mustExec(t, e, "SELECT * FROM customer")
	if len(r.Rows) != 20 || len(r.Columns) != 4 {
		t.Fatalf("rows=%d cols=%d", len(r.Rows), len(r.Columns))
	}
}

func TestWhereFiltering(t *testing.T) {
	e := testDB(t, DefaultConfig())
	r := mustExec(t, e, "SELECT c_custkey FROM customer WHERE c_mktsegment = 'AUTO'")
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(r.Rows))
	}
	r = mustExec(t, e, "SELECT c_custkey FROM customer WHERE c_acctbal BETWEEN 50 AND 100")
	if len(r.Rows) != 5 { // 50.5 .. 95.5 for keys 5..9
		t.Fatalf("between rows = %d, want 5", len(r.Rows))
	}
	r = mustExec(t, e, "SELECT c_custkey FROM customer WHERE c_name LIKE 'cust1%'")
	if len(r.Rows) != 11 { // cust1, cust10..cust19
		t.Fatalf("like rows = %d, want 11", len(r.Rows))
	}
}

func TestOrderByAndLimit(t *testing.T) {
	e := testDB(t, DefaultConfig())
	r := mustExec(t, e, "SELECT c_custkey FROM customer ORDER BY c_acctbal DESC LIMIT 3")
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	want := []int64{20, 19, 18}
	for i, w := range want {
		if r.Rows[i][0].Int() != w {
			t.Errorf("row %d = %v, want %d", i, r.Rows[i][0], w)
		}
	}
}

func TestDistinct(t *testing.T) {
	e := testDB(t, DefaultConfig())
	r := mustExec(t, e, "SELECT DISTINCT c_mktsegment FROM customer")
	if len(r.Rows) != 2 {
		t.Fatalf("distinct rows = %d, want 2", len(r.Rows))
	}
}

func TestAggregatesNoGroup(t *testing.T) {
	e := testDB(t, DefaultConfig())
	r := mustExec(t, e, "SELECT COUNT(*), SUM(c_acctbal), MIN(c_custkey), MAX(c_custkey), AVG(c_custkey) FROM customer")
	row := r.Rows[0]
	if row[0].Int() != 20 {
		t.Errorf("count = %v", row[0])
	}
	if row[1].Float() != 2110 { // sum of 10.5..200.5 = 10*(1..20)+0.5*20
		t.Errorf("sum = %v", row[1])
	}
	if row[2].Int() != 1 || row[3].Int() != 20 {
		t.Errorf("min/max = %v %v", row[2], row[3])
	}
	if row[4].Float() != 10.5 {
		t.Errorf("avg = %v", row[4])
	}
}

func TestAggregateEmptyInput(t *testing.T) {
	e := testDB(t, DefaultConfig())
	r := mustExec(t, e, "SELECT COUNT(*), SUM(c_acctbal) FROM customer WHERE c_custkey > 1000")
	if len(r.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(r.Rows))
	}
	if r.Rows[0][0].Int() != 0 || !r.Rows[0][1].IsNull() {
		t.Errorf("row = %v", r.Rows[0])
	}
}

func TestGroupByHaving(t *testing.T) {
	e := testDB(t, DefaultConfig())
	r := mustExec(t, e, "SELECT c_mktsegment, COUNT(*) FROM customer GROUP BY c_mktsegment HAVING COUNT(*) > 10")
	if len(r.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(r.Rows))
	}
	if r.Rows[0][0].Str() != "BUILDING" || r.Rows[0][1].Int() != 14 {
		t.Errorf("row = %v", r.Rows[0])
	}
}

func TestGroupByGroupedEmptyInput(t *testing.T) {
	e := testDB(t, DefaultConfig())
	r := mustExec(t, e, "SELECT c_mktsegment, COUNT(*) FROM customer WHERE c_custkey > 1000 GROUP BY c_mktsegment")
	if len(r.Rows) != 0 {
		t.Fatalf("rows = %d, want 0", len(r.Rows))
	}
}

func TestCountDistinct(t *testing.T) {
	e := testDB(t, DefaultConfig())
	r := mustExec(t, e, "SELECT COUNT(DISTINCT c_mktsegment) FROM customer")
	if r.Rows[0][0].Int() != 2 {
		t.Errorf("count distinct = %v", r.Rows[0][0])
	}
}

func TestJoinBasic(t *testing.T) {
	e := testDB(t, DefaultConfig())
	r := mustExec(t, e, `SELECT c.c_name, o.o_orderkey FROM customer c, orders o
		WHERE c.c_custkey = o.o_custkey AND o.o_totalprice > 350`)
	// o_totalprice = i*7 > 350 => i >= 51 => 10 orders
	if len(r.Rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(r.Rows))
	}
}

func TestPaperQueryEndToEnd(t *testing.T) {
	e := testDB(t, DefaultConfig())
	r := mustExec(t, e, `SELECT DISTINCT(I.proceeding_key)
		FROM inproceedings I, publication P
		WHERE I.proceeding_key = P.pub_key AND P.title LIKE '%July%'
		GROUP BY I.proceeding_key
		HAVING COUNT(*) > 2`)
	// Keys 0,4,8 have July titles (i%4==0 -> keys i%10 of 4,8,12,...,40).
	if len(r.Rows) == 0 {
		t.Fatal("no rows")
	}
	// July titles appear at i in {4,8,...,40}, so pub_key = i%10 is even.
	for _, row := range r.Rows {
		k := row[0].Int()
		if k%2 != 0 {
			t.Errorf("unexpected key %d", k)
		}
	}
}

// joinConfigs exercises each join algorithm in isolation.
func joinConfigs() map[string]Config {
	base := DefaultConfig()
	hash, merge, nl := base, base, base
	hash.EnableMergeJoin, hash.EnableNestLoop = false, false
	merge.EnableHashJoin, merge.EnableNestLoop = false, false
	nl.EnableHashJoin, nl.EnableMergeJoin = false, false
	noIdx := base
	noIdx.EnableIndexScan = false
	noHashAgg := base
	noHashAgg.EnableHashAgg = false
	return map[string]Config{
		"default": base, "hash-only": hash, "merge-only": merge,
		"nl-only": nl, "no-index": noIdx, "no-hashagg": noHashAgg,
	}
}

// TestPlanInvariance: every planner configuration must return the same
// multiset of rows for the same query — the core executor-correctness
// property from DESIGN.md.
func TestPlanInvariance(t *testing.T) {
	queries := []string{
		"SELECT c.c_name, o.o_orderkey FROM customer c, orders o WHERE c.c_custkey = o.o_custkey",
		"SELECT c.c_name FROM customer c, orders o WHERE c.c_custkey = o.o_custkey AND o.o_totalprice > 100",
		"SELECT i.proceeding_key, COUNT(*) FROM inproceedings i, publication p WHERE i.proceeding_key = p.pub_key GROUP BY i.proceeding_key",
		"SELECT DISTINCT o.o_status FROM orders o, customer c WHERE o.o_custkey = c.c_custkey AND c.c_mktsegment = 'AUTO'",
		"SELECT c_custkey FROM customer WHERE c_custkey BETWEEN 5 AND 12",
		"SELECT o.o_orderkey FROM orders o JOIN customer c ON o.o_custkey = c.c_custkey WHERE c.c_acctbal > 100 ORDER BY o.o_orderkey",
		"SELECT c_mktsegment, SUM(c_acctbal) FROM customer GROUP BY c_mktsegment HAVING SUM(c_acctbal) > 100",
	}
	var reference map[string][]string
	for name, cfg := range joinConfigs() {
		e := testDB(t, cfg)
		results := make(map[string][]string)
		for _, q := range queries {
			r := mustExec(t, e, q)
			results[q] = sortedRowStrings(r.Rows)
		}
		if reference == nil {
			reference = results
			continue
		}
		for q, rows := range results {
			ref := reference[q]
			if len(rows) != len(ref) {
				t.Errorf("[%s] %q: %d rows, reference %d", name, q, len(rows), len(ref))
				continue
			}
			for i := range rows {
				if rows[i] != ref[i] {
					t.Errorf("[%s] %q row %d:\n  got  %s\n  want %s", name, q, i, rows[i], ref[i])
					break
				}
			}
		}
	}
}

func TestThreeWayJoin(t *testing.T) {
	e := testDB(t, DefaultConfig())
	r := mustExec(t, e, `SELECT COUNT(*) FROM customer c, orders o, publication p
		WHERE c.c_custkey = o.o_custkey AND o.o_custkey = p.pub_key`)
	if r.Rows[0][0].Int() == 0 {
		t.Fatal("expected rows from 3-way join")
	}
	// Same under all configs.
	want := r.Rows[0][0].Int()
	for name, cfg := range joinConfigs() {
		e2 := testDB(t, cfg)
		r2 := mustExec(t, e2, `SELECT COUNT(*) FROM customer c, orders o, publication p
			WHERE c.c_custkey = o.o_custkey AND o.o_custkey = p.pub_key`)
		if r2.Rows[0][0].Int() != want {
			t.Errorf("[%s] count = %v, want %d", name, r2.Rows[0][0], want)
		}
	}
}

func TestLeftJoin(t *testing.T) {
	e := testDB(t, DefaultConfig())
	// customers 1..20; orders reference custkeys 2..20+1=21? o_custkey = i%20+1 covers 1..20.
	mustExec(t, e, "INSERT INTO customer VALUES (99, 'lonely', 'AUTO', 0.0)")
	r := mustExec(t, e, `SELECT c.c_name, o.o_orderkey FROM customer c LEFT JOIN orders o ON c.c_custkey = o.o_custkey WHERE c.c_custkey = 99`)
	if len(r.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(r.Rows))
	}
	if !r.Rows[0][1].IsNull() {
		t.Errorf("expected NULL order key, got %v", r.Rows[0][1])
	}
}

func TestLeftJoinNLPath(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnableHashJoin = false
	e := testDB(t, cfg)
	mustExec(t, e, "INSERT INTO customer VALUES (99, 'lonely', 'AUTO', 0.0)")
	r := mustExec(t, e, `SELECT c.c_name, o.o_orderkey FROM customer c LEFT JOIN orders o ON c.c_custkey = o.o_custkey WHERE c.c_custkey = 99`)
	if len(r.Rows) != 1 || !r.Rows[0][1].IsNull() {
		t.Fatalf("rows = %v", rowStrings(r.Rows))
	}
}

func TestIndexScanChosenAndCorrect(t *testing.T) {
	e := testDB(t, DefaultConfig())
	plan, err := e.PlanSQL("SELECT c_name FROM customer WHERE c_custkey = 7")
	if err != nil {
		t.Fatal(err)
	}
	hasIndexScan := false
	plan.Walk(func(n *Node) {
		if n.Op == OpIndexScan {
			hasIndexScan = true
		}
	})
	if !hasIndexScan {
		t.Errorf("expected index scan in plan:\n%s", ExplainText(plan))
	}
	r := mustExec(t, e, "SELECT c_name FROM customer WHERE c_custkey = 7")
	if len(r.Rows) != 1 || r.Rows[0][0].Str() != "cust7" {
		t.Errorf("rows = %v", rowStrings(r.Rows))
	}
}

func TestIndexRangeScanCorrect(t *testing.T) {
	e := testDB(t, DefaultConfig())
	r := mustExec(t, e, "SELECT c_custkey FROM customer WHERE c_custkey > 17")
	if len(r.Rows) != 3 {
		t.Errorf("rows = %d, want 3: %v", len(r.Rows), rowStrings(r.Rows))
	}
}

func TestInListAndSubquery(t *testing.T) {
	e := testDB(t, DefaultConfig())
	r := mustExec(t, e, "SELECT c_name FROM customer WHERE c_custkey IN (1, 2, 3)")
	if len(r.Rows) != 3 {
		t.Fatalf("in-list rows = %d", len(r.Rows))
	}
	r = mustExec(t, e, "SELECT c_name FROM customer WHERE c_custkey IN (SELECT o_custkey FROM orders WHERE o_totalprice > 400)")
	if len(r.Rows) == 0 {
		t.Fatal("in-subquery returned nothing")
	}
}

func TestScalarSubqueryExec(t *testing.T) {
	e := testDB(t, DefaultConfig())
	r := mustExec(t, e, "SELECT c_name FROM customer WHERE c_acctbal > (SELECT AVG(c_acctbal) FROM customer)")
	if len(r.Rows) != 10 {
		t.Errorf("rows = %d, want 10", len(r.Rows))
	}
}

func TestExistsExec(t *testing.T) {
	e := testDB(t, DefaultConfig())
	r := mustExec(t, e, "SELECT c_name FROM customer WHERE EXISTS (SELECT 1 FROM orders WHERE o_totalprice > 100000)")
	if len(r.Rows) != 0 {
		t.Errorf("rows = %d, want 0", len(r.Rows))
	}
}

func TestSelectWithoutFrom(t *testing.T) {
	e := NewDefault()
	r := mustExec(t, e, "SELECT 1 + 2 AS three, 'x'")
	if r.Rows[0][0].Int() != 3 || r.Rows[0][1].Str() != "x" {
		t.Errorf("row = %v", r.Rows[0])
	}
	if r.Columns[0] != "three" {
		t.Errorf("columns = %v", r.Columns)
	}
}

func TestUpdateDelete(t *testing.T) {
	e := testDB(t, DefaultConfig())
	r := mustExec(t, e, "UPDATE customer SET c_mktsegment = 'RETAIL' WHERE c_custkey <= 5")
	if r.Affected != 5 {
		t.Fatalf("updated %d, want 5", r.Affected)
	}
	r = mustExec(t, e, "SELECT COUNT(*) FROM customer WHERE c_mktsegment = 'RETAIL'")
	if r.Rows[0][0].Int() != 5 {
		t.Errorf("count = %v", r.Rows[0][0])
	}
	r = mustExec(t, e, "DELETE FROM customer WHERE c_mktsegment = 'RETAIL'")
	if r.Affected != 5 {
		t.Fatalf("deleted %d, want 5", r.Affected)
	}
	r = mustExec(t, e, "SELECT COUNT(*) FROM customer")
	if r.Rows[0][0].Int() != 15 {
		t.Errorf("remaining = %v", r.Rows[0][0])
	}
}

func TestUpdateWithScalarSubquery(t *testing.T) {
	e := testDB(t, DefaultConfig())
	mustExec(t, e, "UPDATE customer SET c_name = (SELECT MAX(o_status) FROM orders) WHERE c_custkey = 1")
	r := mustExec(t, e, "SELECT c_name FROM customer WHERE c_custkey = 1")
	if r.Rows[0][0].Str() != "C" {
		t.Errorf("name = %v", r.Rows[0][0])
	}
}

func TestErrorCases(t *testing.T) {
	e := testDB(t, DefaultConfig())
	for _, q := range []string{
		"SELECT nope FROM customer",
		"SELECT * FROM ghost",
		"SELECT c_custkey FROM customer, orders WHERE c_custkey = o_orderkey AND ghost = 1",
		"SELECT c_custkey FROM customer HAVING COUNT(*) > 1 AND c_custkey = 1",
		"INSERT INTO customer (ghost) VALUES (1)",
		"INSERT INTO customer VALUES (1)",
		"UPDATE customer SET ghost = 1",
		"SELECT proceeding_key FROM inproceedings, publication WHERE pub_key = pub_key AND proceeding_key = proceeding_key", // fine actually? ambiguous names resolve uniquely
	} {
		if _, err := e.Exec(q); err == nil && !strings.Contains(q, "pub_key = pub_key") {
			t.Errorf("Exec(%q): expected error", q)
		}
	}
	// Duplicate alias.
	if _, err := e.Exec("SELECT * FROM customer c, orders c"); err == nil {
		t.Error("duplicate alias should fail")
	}
}

func TestExplainTextOutput(t *testing.T) {
	e := testDB(t, DefaultConfig())
	r := mustExec(t, e, "EXPLAIN SELECT c.c_name FROM customer c, orders o WHERE c.c_custkey = o.o_custkey")
	if !strings.Contains(r.Plan, "Hash Join") && !strings.Contains(r.Plan, "Merge Join") && !strings.Contains(r.Plan, "Nested Loop") {
		t.Errorf("no join in plan:\n%s", r.Plan)
	}
	if !strings.Contains(r.Plan, "Seq Scan on orders") && !strings.Contains(r.Plan, "Index Scan") {
		t.Errorf("no scan in plan:\n%s", r.Plan)
	}
}

func TestExplainJSONOutput(t *testing.T) {
	e := testDB(t, DefaultConfig())
	r := mustExec(t, e, "EXPLAIN (FORMAT JSON) SELECT c.c_name FROM customer c, orders o WHERE c.c_custkey = o.o_custkey")
	if !strings.Contains(r.Plan, `"Node Type"`) || !strings.Contains(r.Plan, `"Plan"`) {
		t.Errorf("bad JSON plan:\n%s", r.Plan)
	}
}

func TestExplainXMLOutput(t *testing.T) {
	e := testDB(t, DefaultConfig())
	r := mustExec(t, e, "EXPLAIN (FORMAT XML) SELECT c.c_name FROM customer c, orders o WHERE c.c_custkey = o.o_custkey")
	if !strings.Contains(r.Plan, "ShowPlanXML") || !strings.Contains(r.Plan, "PhysicalOp") {
		t.Errorf("bad XML plan:\n%s", r.Plan)
	}
	// Hash build nodes must be inlined in the SQL-Server-style form.
	if strings.Contains(r.Plan, `PhysicalOp="Hash"`) && !strings.Contains(r.Plan, "Hash Match") {
		t.Errorf("hash node leaked into XML plan:\n%s", r.Plan)
	}
}

func TestPaperPlanShape(t *testing.T) {
	// The plan for the paper's Example 3.1 should include a join, an
	// aggregate and a Unique, as in Figure 4.
	cfg := DefaultConfig()
	cfg.EnableHashAgg = false // match the paper's GroupAggregate plan
	e := testDB(t, cfg)
	plan, err := e.PlanSQL(`SELECT DISTINCT(I.proceeding_key)
		FROM inproceedings I, publication P
		WHERE I.proceeding_key = P.pub_key AND P.title LIKE '%July%'
		GROUP BY I.proceeding_key
		HAVING COUNT(*) > 200`)
	if err != nil {
		t.Fatal(err)
	}
	var ops []string
	plan.Walk(func(n *Node) { ops = append(ops, n.Op.Name()) })
	text := strings.Join(ops, ",")
	for _, want := range []string{"Unique", "Aggregate", "Seq Scan"} {
		if !strings.Contains(text, want) {
			t.Errorf("plan lacks %s: %s\n%s", want, text, ExplainText(plan))
		}
	}
	if !strings.Contains(text, "Join") && !strings.Contains(text, "Nested Loop") {
		t.Errorf("plan lacks a join: %s", text)
	}
}

func TestOrderByAliasAndAggregate(t *testing.T) {
	e := testDB(t, DefaultConfig())
	r := mustExec(t, e, `SELECT c_mktsegment, SUM(c_acctbal) AS revenue FROM customer
		GROUP BY c_mktsegment ORDER BY revenue DESC`)
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if r.Rows[0][1].Float() < r.Rows[1][1].Float() {
		t.Error("not sorted by revenue desc")
	}
}

func TestCrossJoinNoPredicate(t *testing.T) {
	e := testDB(t, DefaultConfig())
	r := mustExec(t, e, "SELECT COUNT(*) FROM customer, publication")
	if r.Rows[0][0].Int() != 20*40 {
		t.Errorf("cross join count = %v, want 800", r.Rows[0][0])
	}
}

func TestGreedyJoinManyTables(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DPThreshold = 2 // force greedy
	e := testDB(t, cfg)
	r := mustExec(t, e, `SELECT COUNT(*) FROM customer c, orders o, publication p
		WHERE c.c_custkey = o.o_custkey AND o.o_custkey = p.pub_key`)
	e2 := testDB(t, DefaultConfig())
	r2 := mustExec(t, e2, `SELECT COUNT(*) FROM customer c, orders o, publication p
		WHERE c.c_custkey = o.o_custkey AND o.o_custkey = p.pub_key`)
	if r.Rows[0][0].Int() != r2.Rows[0][0].Int() {
		t.Errorf("greedy = %v, dp = %v", r.Rows[0][0], r2.Rows[0][0])
	}
}

func TestCaseExpression(t *testing.T) {
	e := testDB(t, DefaultConfig())
	r := mustExec(t, e, `SELECT CASE WHEN c_acctbal > 100 THEN 'rich' ELSE 'poor' END AS class, COUNT(*)
		FROM customer GROUP BY CASE WHEN c_acctbal > 100 THEN 'rich' ELSE 'poor' END`)
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(r.Rows))
	}
}

func TestNullHandlingInJoin(t *testing.T) {
	e := NewDefault()
	_, _ = e.ExecScript(`CREATE TABLE a (x INTEGER); CREATE TABLE b (y INTEGER);
		INSERT INTO a VALUES (1), (NULL); INSERT INTO b VALUES (1), (NULL);`)
	for name, cfg := range joinConfigs() {
		e2 := New(cfg)
		_, _ = e2.ExecScript(`CREATE TABLE a (x INTEGER); CREATE TABLE b (y INTEGER);
			INSERT INTO a VALUES (1), (NULL); INSERT INTO b VALUES (1), (NULL);`)
		r := mustExec(t, e2, "SELECT COUNT(*) FROM a, b WHERE a.x = b.y")
		if r.Rows[0][0].Int() != 1 {
			t.Errorf("[%s] NULL join count = %v, want 1", name, r.Rows[0][0])
		}
	}
}

func TestPlanCountNodes(t *testing.T) {
	e := testDB(t, DefaultConfig())
	plan, err := e.PlanSQL("SELECT c_custkey FROM customer")
	if err != nil {
		t.Fatal(err)
	}
	if plan.CountNodes() < 1 {
		t.Error("CountNodes < 1")
	}
}
