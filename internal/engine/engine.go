package engine

import (
	"fmt"

	"lantern/internal/catalog"
	"lantern/internal/datum"
	"lantern/internal/sqlparser"
	"lantern/internal/storage"
)

// Config holds the planner switches, patterned after PostgreSQL's
// enable_* settings. They exist both for tests and for the ablation
// benchmarks (different plan shapes produce different narrations).
type Config struct {
	EnableHashJoin  bool
	EnableMergeJoin bool
	EnableNestLoop  bool
	EnableIndexScan bool
	EnableHashAgg   bool
	// DPThreshold is the largest relation count planned with exhaustive
	// dynamic programming; larger joins fall back to greedy ordering.
	DPThreshold int
	// ReferenceExec routes execution through the materializing reference
	// executor (executor.go) instead of the batch executor (vec.go). Plan
	// choice is unaffected. It exists for differential testing and for
	// benchmarking against full materialization.
	ReferenceExec bool
	// RowStreamExec routes execution through the row-at-a-time streaming
	// iterator executor (iter.go) instead of the batch executor. Plan
	// choice is unaffected. The three-way differential tests use it to pin
	// batch results equal to the row pipeline; instrumented execution
	// (EXPLAIN ANALYZE, the query/streaming APIs) runs the row pipeline
	// for serial plans, so per-operator actuals stay exact.
	RowStreamExec bool
	// MaxQueryParallelism caps the degree of intra-query parallelism
	// (parallel.go): 0 defaults to runtime.GOMAXPROCS, 1 (or negative)
	// forces serial execution, values above the core count deliberately
	// oversubscribe (useful for scheduling tests). The planner picks the
	// actual DOP per query from cardinality estimates, so small queries
	// stay serial regardless of this cap. The serving layer lowers the cap
	// per request from the envelope's max_parallelism hint.
	MaxQueryParallelism int
	// ParallelRowsPerWorker is the DOP policy divisor: the planner runs
	// one worker per this many estimated driver-scan output rows
	// (default 65536). Tests set it low to force parallelism on small
	// tables.
	ParallelRowsPerWorker int
	// DisableZonePruning turns off zone-map segment skipping in sequential
	// scans and the planner's prune-fraction scan costing. Results are
	// unaffected — every segment is scanned through the same predicate
	// loops. It exists for benchmarking the pruning win and as an escape
	// hatch.
	DisableZonePruning bool
}

// DefaultConfig enables every plan type.
func DefaultConfig() Config {
	return Config{
		EnableHashJoin:  true,
		EnableMergeJoin: true,
		EnableNestLoop:  true,
		EnableIndexScan: true,
		EnableHashAgg:   true,
		DPThreshold:     8,
	}
}

// Engine is one database instance: a catalog plus planner configuration.
type Engine struct {
	Cat *catalog.Catalog
	Cfg Config
}

// New creates an engine with an empty catalog.
func New(cfg Config) *Engine {
	return &Engine{Cat: catalog.New(), Cfg: cfg}
}

// NewWithCatalog creates an engine over an existing catalog — typically
// one opened over a data directory (catalog.Open), whose tables are
// disk-backed and served through the pager's buffer pool.
func NewWithCatalog(cfg Config, cat *catalog.Catalog) *Engine {
	return &Engine{Cat: cat, Cfg: cfg}
}

// NewDefault creates an engine with the default configuration.
func NewDefault() *Engine { return New(DefaultConfig()) }

// Result is the outcome of executing a statement.
type Result struct {
	Columns []string
	Rows    []storage.Row
	// Affected counts modified rows for DML; Plan carries EXPLAIN output.
	Affected int
	Plan     string
}

// Exec parses and executes a single SQL statement.
func (e *Engine) Exec(sql string) (*Result, error) {
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	return e.ExecStmt(stmt)
}

// ExecScript executes a semicolon-separated sequence of statements,
// returning the result of the last one.
func (e *Engine) ExecScript(sql string) (*Result, error) {
	stmts, err := sqlparser.ParseScript(sql)
	if err != nil {
		return nil, err
	}
	var last *Result
	for _, s := range stmts {
		last, err = e.ExecStmt(s)
		if err != nil {
			return nil, err
		}
	}
	return last, nil
}

// ExecStmt executes a parsed statement.
func (e *Engine) ExecStmt(stmt sqlparser.Statement) (*Result, error) {
	switch s := stmt.(type) {
	case *sqlparser.SelectStmt:
		return e.runSelect(s)
	case *sqlparser.CreateTableStmt:
		cols := make([]storage.Column, len(s.Columns))
		for i, c := range s.Columns {
			cols[i] = storage.Column{Name: c.Name, Type: c.Type}
		}
		if _, err := e.Cat.CreateTable(s.Name, cols); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sqlparser.CreateIndexStmt:
		t, err := e.Cat.Table(s.Table)
		if err != nil {
			return nil, err
		}
		if err := t.CreateIndex(s.Column); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sqlparser.InsertStmt:
		return e.runInsert(s)
	case *sqlparser.UpdateStmt:
		return e.runUpdate(s)
	case *sqlparser.DeleteStmt:
		return e.runDelete(s)
	case *sqlparser.ExplainStmt:
		return e.runExplain(s)
	}
	return nil, fmt.Errorf("engine: unsupported statement %T", stmt)
}

// Plan builds (but does not run) the physical plan for a SELECT.
func (e *Engine) Plan(sel *sqlparser.SelectStmt) (*Node, error) {
	return e.planSelect(sel)
}

// PlanSQL parses and plans a SELECT given as text.
func (e *Engine) PlanSQL(sql string) (*Node, error) {
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		return nil, err
	}
	return e.planSelect(sel)
}

// runSelect plans, executes, and projects a SELECT. Execution runs
// batch-at-a-time through the vectorized executor unless the config asks
// for the materializing reference path or the row-at-a-time streaming
// path (both kept as differential oracles).
func (e *Engine) runSelect(sel *sqlparser.SelectStmt) (*Result, error) {
	plan, err := e.planSelect(sel)
	if err != nil {
		return nil, err
	}
	var rows []storage.Row
	switch {
	case e.Cfg.ReferenceExec:
		rows, err = e.execNode(plan)
	case e.Cfg.RowStreamExec:
		rows, err = e.execStream(plan)
	default:
		return e.runSelectVec(sel, plan)
	}
	if err != nil {
		return nil, err
	}
	return e.project(sel, plan, rows)
}

// project computes the final select items over the plan's output rows.
func (e *Engine) project(sel *sqlparser.SelectStmt, plan *Node, rows []storage.Row) (*Result, error) {
	pr, err := e.newProjector(sel, plan)
	if err != nil {
		return nil, err
	}
	res := &Result{Columns: pr.columns}
	for _, r := range rows {
		out, err := pr.project(r)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, out)
	}
	return res, nil
}

// projector renders one plan output row into the final select items. It is
// built once per query — stars expanded, computed expressions pre-bound
// against the plan schema — and then applied row by row, which is what
// lets the streaming query path project incrementally instead of
// materializing the whole result first.
type projector struct {
	columns []string
	pos     []int       // >= 0: direct copy of plan column
	bound   []boundExpr // set where pos < 0
	env     rowEnv
}

func (e *Engine) newProjector(sel *sqlparser.SelectStmt, plan *Node) (*projector, error) {
	// Expand stars into concrete schema columns.
	type outCol struct {
		name string
		expr sqlparser.Expr
		pos  int // >= 0: direct copy of plan column
	}
	var cols []outCol
	for _, it := range sel.Items {
		switch {
		case it.Star:
			for i, c := range plan.Schema {
				cols = append(cols, outCol{name: c.Name, pos: i})
			}
		case it.TableStar != "":
			found := false
			for i, c := range plan.Schema {
				if c.Qual == it.TableStar {
					cols = append(cols, outCol{name: c.Name, pos: i})
					found = true
				}
			}
			if !found {
				return nil, fmt.Errorf("engine: relation %q not found for %s.*", it.TableStar, it.TableStar)
			}
		default:
			cols = append(cols, outCol{name: itemName(it), expr: it.Expr, pos: -1})
		}
	}
	pr := &projector{
		columns: make([]string, len(cols)),
		pos:     make([]int, len(cols)),
		bound:   make([]boundExpr, len(cols)),
	}
	for i, c := range cols {
		pr.columns[i] = c.name
		pr.pos[i] = c.pos
		if c.pos >= 0 {
			continue
		}
		b, err := bindExpr(c.expr, plan.Schema, e.subquery)
		if err != nil {
			return nil, err
		}
		pr.bound[i] = b
	}
	return pr, nil
}

// project renders one plan output row. The returned row is freshly
// allocated and never aliases r.
func (p *projector) project(r storage.Row) (storage.Row, error) {
	p.env.left = r
	out := make(storage.Row, len(p.pos))
	for i, pos := range p.pos {
		if pos >= 0 {
			out[i] = r[pos]
			continue
		}
		v, err := p.bound[i](&p.env)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// projectBatch renders a whole batch into one flat datum arena: two
// allocations per batch instead of one per row. The returned rows are
// subslices of a fresh arena and may be retained indefinitely; values are
// copied out of the input rows (never aliased to the table heap), matching
// project's contract, so later in-place UPDATEs cannot reach into a
// previously returned result.
func (p *projector) projectBatch(in []storage.Row) ([]storage.Row, error) {
	width := len(p.pos)
	arena := make([]datum.D, 0, len(in)*width)
	rows := make([]storage.Row, len(in))
	for i, r := range in {
		n := len(arena)
		for j, pos := range p.pos {
			if pos >= 0 {
				arena = append(arena, r[pos])
				continue
			}
			p.env.left = r
			v, err := p.bound[j](&p.env)
			if err != nil {
				return nil, err
			}
			arena = append(arena, v)
		}
		rows[i] = storage.Row(arena[n:len(arena):len(arena)])
	}
	return rows, nil
}

func (e *Engine) runInsert(s *sqlparser.InsertStmt) (*Result, error) {
	t, err := e.Cat.Table(s.Table)
	if err != nil {
		return nil, err
	}
	colPos := make([]int, 0, len(s.Columns))
	if len(s.Columns) > 0 {
		for _, c := range s.Columns {
			p := t.ColumnIndex(c)
			if p < 0 {
				return nil, fmt.Errorf("engine: column %q of relation %q does not exist", c, s.Table)
			}
			colPos = append(colPos, p)
		}
	}
	ctx := &evalCtx{sub: e.subquery}
	// Evaluate every VALUES row first, then hand the whole batch to
	// storage in one call: validation happens once up front (an INSERT
	// that fails leaves the table untouched) and the batch seals full
	// segments as it fills instead of re-checking per row.
	batch := make([]storage.Row, 0, len(s.Rows))
	for _, exprRow := range s.Rows {
		row := make(storage.Row, len(t.Columns))
		for i := range row {
			row[i] = datum.Null
		}
		if len(s.Columns) > 0 {
			if len(exprRow) != len(s.Columns) {
				return nil, fmt.Errorf("engine: INSERT has %d values but %d columns", len(exprRow), len(s.Columns))
			}
			for i, ex := range exprRow {
				v, err := eval(ctx, ex)
				if err != nil {
					return nil, err
				}
				row[colPos[i]] = v
			}
		} else {
			if len(exprRow) != len(t.Columns) {
				return nil, fmt.Errorf("engine: INSERT has %d values but table has %d columns", len(exprRow), len(t.Columns))
			}
			for i, ex := range exprRow {
				v, err := eval(ctx, ex)
				if err != nil {
					return nil, err
				}
				row[i] = v
			}
		}
		batch = append(batch, row)
	}
	if err := t.InsertBatch(batch); err != nil {
		return nil, err
	}
	return &Result{Affected: len(batch)}, nil
}

func (e *Engine) runUpdate(s *sqlparser.UpdateStmt) (*Result, error) {
	t, err := e.Cat.Table(s.Table)
	if err != nil {
		return nil, err
	}
	alias := s.Alias
	if alias == "" {
		alias = s.Table
	}
	schema := scanSchema(t, alias)
	setPos := make([]int, len(s.Sets))
	for i, a := range s.Sets {
		p := t.ColumnIndex(a.Column)
		if p < 0 {
			return nil, fmt.Errorf("engine: column %q of relation %q does not exist", a.Column, s.Table)
		}
		setPos[i] = p
	}
	ctx := &evalCtx{schema: schema, sub: e.subquery}
	n, err := t.Update(func(r storage.Row) bool {
		ctx.row = r
		if s.Where != nil {
			v, err := eval(ctx, s.Where)
			if err != nil || !truthy(v) {
				return false
			}
		}
		// Evaluate all assignments against the pre-update row.
		vals := make([]datum.D, len(s.Sets))
		for i, a := range s.Sets {
			v, err := eval(ctx, a.Value)
			if err != nil {
				return false
			}
			vals[i] = v
		}
		for i, p := range setPos {
			r[p] = vals[i]
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	return &Result{Affected: n}, nil
}

func (e *Engine) runDelete(s *sqlparser.DeleteStmt) (*Result, error) {
	t, err := e.Cat.Table(s.Table)
	if err != nil {
		return nil, err
	}
	schema := scanSchema(t, s.Table)
	ctx := &evalCtx{schema: schema, sub: e.subquery}
	n, err := t.Delete(func(r storage.Row) bool {
		if s.Where == nil {
			return true
		}
		ctx.row = r
		v, err := eval(ctx, s.Where)
		return err == nil && truthy(v)
	})
	if err != nil {
		return nil, err
	}
	return &Result{Affected: n}, nil
}

func (e *Engine) runExplain(s *sqlparser.ExplainStmt) (*Result, error) {
	plan, err := e.planSelect(s.Query)
	if err != nil {
		return nil, err
	}
	// ANALYZE executes the query with instrumentation and annotates the
	// serialized plan with the collected actuals (rows, loops, wall time).
	var st ExecStats
	if s.Analyze {
		switch s.Format {
		case sqlparser.ExplainXML, sqlparser.ExplainMySQL:
			return nil, fmt.Errorf("engine: EXPLAIN ANALYZE supports the TEXT, JSON and NATIVE formats")
		}
		if _, st, err = e.ExecPlanInstrumented(plan); err != nil {
			return nil, err
		}
	}
	var text string
	switch s.Format {
	case sqlparser.ExplainJSON:
		text, err = ExplainJSONStats(plan, st)
	case sqlparser.ExplainXML:
		text, err = ExplainXML(plan)
	case sqlparser.ExplainMySQL:
		text, err = ExplainMySQL(plan)
	case sqlparser.ExplainNative:
		text, err = ExplainNative(plan, st)
	default:
		text = explainTextStats(plan, st)
	}
	if err != nil {
		return nil, err
	}
	return &Result{Plan: text, Columns: []string{"QUERY PLAN"},
		Rows: []storage.Row{{datum.NewString(text)}}}, nil
}
