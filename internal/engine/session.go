package engine

// session.go is the engine session pool: N lightweight engine sessions
// over one shared catalog, so concurrent read-only requests (the serving
// layer's /v2/query path) execute on independent engine instances instead
// of serializing on a single engine behind a mutex.
//
// A session is just an Engine value sharing the base engine's catalog —
// planning and SELECT execution never mutate engine state, and the catalog
// registry itself is concurrency-safe (internal/catalog), so sessions are
// independent by construction. The pool pre-warms the optimizer statistics
// of every table at construction so the analyze-on-demand path is a pure
// read during serving.
//
// The pool assumes a read-only workload: DML/DDL must not run against the
// shared catalog while sessions are in flight. That is exactly the serving
// layer's contract — datasets are loaded before the server starts.

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrPoolClosed is returned by Acquire after the pool has been closed.
var ErrPoolClosed = errors.New("engine: session pool is closed")

// Session returns a new engine instance sharing this engine's catalog and
// planner configuration. Sessions plan and execute read-only statements
// independently; see the package notes above for the concurrency contract.
func (e *Engine) Session() *Engine {
	return &Engine{Cat: e.Cat, Cfg: e.Cfg}
}

// SessionPool is a fixed-size pool of engine sessions over one shared
// catalog. Acquire blocks until a session is free (or the context ends),
// bounding engine concurrency to the pool size.
type SessionPool struct {
	sessions chan *Engine
	size     int
	closed   atomic.Bool
}

// NewSessionPool builds a pool of size sessions over base's catalog. Size
// values below 1 are raised to 1. The base engine's statistics are warmed
// (Analyze of every table) so concurrent planning starts from a fully
// populated cost model.
func NewSessionPool(base *Engine, size int) (*SessionPool, error) {
	if size < 1 {
		size = 1
	}
	if err := base.Cat.Analyze(""); err != nil {
		return nil, err
	}
	p := &SessionPool{sessions: make(chan *Engine, size), size: size}
	for i := 0; i < size; i++ {
		p.sessions <- base.Session()
	}
	return p, nil
}

// Size reports the pool capacity.
func (p *SessionPool) Size() int { return p.size }

// Idle reports how many sessions are currently free.
func (p *SessionPool) Idle() int { return len(p.sessions) }

// Acquire returns a free session, blocking until one is released, the
// context is done, or the pool is closed.
func (p *SessionPool) Acquire(ctx context.Context) (*Engine, error) {
	if p.closed.Load() {
		return nil, ErrPoolClosed
	}
	select {
	case e := <-p.sessions:
		// A session handed out during Close is immediately returned so the
		// caller never executes on a closed pool.
		if p.closed.Load() {
			p.Release(e)
			return nil, ErrPoolClosed
		}
		return e, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Release returns a session to the pool. Releasing after Close is a no-op
// (the session is dropped), so callers may always pair Acquire with a
// deferred Release.
func (p *SessionPool) Release(e *Engine) {
	if e == nil || p.closed.Load() {
		return
	}
	select {
	case p.sessions <- e:
	default:
		// Double release or release after a drained Close: drop the session
		// rather than block.
	}
}

// Close marks the pool closed and unblocks future Acquires with
// ErrPoolClosed. Sessions still checked out stay valid until released
// (their Release becomes a no-op); callers that need quiescence should
// drain in-flight work before Close — the serving layer's Server.Close
// does exactly that.
func (p *SessionPool) Close() {
	if p.closed.Swap(true) {
		return
	}
	// Drain free sessions so they are collectable; in-flight ones are
	// dropped on Release.
	for {
		select {
		case <-p.sessions:
		default:
			return
		}
	}
}
