package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// sessionTestEngine builds a small two-table engine with enough rows for
// joins to be interesting.
func sessionTestEngine(t testing.TB) *Engine {
	t.Helper()
	e := NewDefault()
	mustExec := func(sql string) {
		t.Helper()
		if _, err := e.Exec(sql); err != nil {
			t.Fatalf("exec %q: %v", sql, err)
		}
	}
	mustExec("CREATE TABLE c (id INT, name TEXT)")
	mustExec("CREATE TABLE o (id INT, cid INT, total FLOAT)")
	for i := 0; i < 200; i++ {
		mustExec(fmt.Sprintf("INSERT INTO c VALUES (%d, 'cust%d')", i, i))
	}
	for i := 0; i < 800; i++ {
		mustExec(fmt.Sprintf("INSERT INTO o VALUES (%d, %d, %d.5)", i, i%200, i))
	}
	return e
}

// TestSessionPoolConcurrentQueries runs many instrumented queries across
// pool sessions concurrently; correctness is the race detector plus result
// cardinality checks against the single-session answer.
func TestSessionPoolConcurrentQueries(t *testing.T) {
	base := sessionTestEngine(t)
	pool, err := NewSessionPool(base, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	queries := []string{
		"SELECT c.name, o.total FROM c, o WHERE c.id = o.cid AND o.total > 400",
		"SELECT name FROM c WHERE id < 50 ORDER BY name",
		"SELECT cid, SUM(total) FROM o GROUP BY cid ORDER BY cid LIMIT 10",
	}
	want := make([]int, len(queries))
	for i, q := range queries {
		qr, err := base.QueryInstrumented(q)
		if err != nil {
			t.Fatalf("baseline %q: %v", q, err)
		}
		want[i] = len(qr.Result.Rows)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				qi := (g + i) % len(queries)
				s, err := pool.Acquire(context.Background())
				if err != nil {
					errs <- err
					return
				}
				qr, err := s.QueryInstrumented(queries[qi])
				pool.Release(s)
				if err != nil {
					errs <- fmt.Errorf("query %q: %w", queries[qi], err)
					return
				}
				if len(qr.Result.Rows) != want[qi] {
					errs <- fmt.Errorf("query %q: %d rows, want %d", queries[qi], len(qr.Result.Rows), want[qi])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestSessionPoolBounds: Acquire blocks when the pool is exhausted and
// honors context cancellation.
func TestSessionPoolBounds(t *testing.T) {
	pool, err := NewSessionPool(sessionTestEngine(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	s, err := pool.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := pool.Idle(); got != 0 {
		t.Fatalf("Idle = %d with the only session checked out", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := pool.Acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Acquire on exhausted pool: err = %v, want deadline", err)
	}
	pool.Release(s)
	s2, err := pool.Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire after release: %v", err)
	}
	pool.Release(s2)
}

// TestSessionPoolClose: Acquire after Close fails, Release after Close
// does not panic, Close is idempotent.
func TestSessionPoolClose(t *testing.T) {
	pool, err := NewSessionPool(sessionTestEngine(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := pool.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	pool.Close()
	pool.Close() // idempotent
	if _, err := pool.Acquire(context.Background()); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Acquire after Close: err = %v, want ErrPoolClosed", err)
	}
	pool.Release(s) // must not panic
}

// TestQueryStreamIncremental: the streaming query delivers its first row
// while execution is demonstrably still in progress (the iterator has not
// reached end of stream), and the final actuals match the materializing
// path.
func TestQueryStreamIncremental(t *testing.T) {
	e := sessionTestEngine(t)
	const sql = "SELECT c.name, o.total FROM c, o WHERE c.id = o.cid"

	qr, err := e.QueryInstrumented(sql)
	if err != nil {
		t.Fatal(err)
	}
	want := len(qr.Result.Rows)
	if want < 100 {
		t.Fatalf("test query too small to observe streaming: %d rows", want)
	}

	q, err := e.QueryStreamInstrumented(sql)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	if len(q.Columns) != 2 {
		t.Fatalf("columns = %v", q.Columns)
	}
	n := 0
	for {
		row, ok, err := q.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if n == 0 && q.RowCount() != 1 {
			t.Fatalf("RowCount after first row = %d", q.RowCount())
		}
		if len(row) != 2 {
			t.Fatalf("row arity = %d", len(row))
		}
		n++
	}
	if n != want {
		t.Fatalf("streamed %d rows, materialized %d", n, want)
	}
	plan, stats := q.Finish()
	if plan == nil || len(stats) == 0 {
		t.Fatal("Finish returned no plan/stats")
	}
	root := stats[plan]
	if root == nil || root.Rows != int64(want) {
		t.Fatalf("root actual rows = %+v, want %d", root, want)
	}
	if !q.Complete() {
		t.Fatal("Complete() = false after a clean drain")
	}
	// A drained stream stays at clean end-of-stream, even after Close.
	if _, ok, err := q.Next(); ok || err != nil {
		t.Fatalf("Next after end of stream: ok=%v err=%v", ok, err)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := q.Next(); ok || err != nil {
		t.Fatalf("Next after Close on a complete stream: ok=%v err=%v", ok, err)
	}
}

// TestQueryStreamAbandon: closing mid-stream releases the pipeline without
// error and freezes the counters — and the abandoned stream is clearly
// distinguishable from a drained one. Before the fix, Next after a
// mid-stream Close returned the same (nil, false, nil) as a genuine end of
// stream, so Finish's partial actuals could pass for complete ones and
// poison the actuals-keyed narration cache.
func TestQueryStreamAbandon(t *testing.T) {
	e := sessionTestEngine(t)
	q, err := e.QueryStreamInstrumented("SELECT id FROM o")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, ok, err := q.Next(); err != nil || !ok {
			t.Fatalf("row %d: ok=%v err=%v", i, ok, err)
		}
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	if err := q.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if q.Complete() {
		t.Fatal("Complete() = true on a stream abandoned mid-iteration")
	}
	row, ok, err := q.Next()
	if row != nil || ok {
		t.Fatal("Next after mid-stream Close produced a row")
	}
	if !errors.Is(err, ErrAbandonedStream) {
		t.Fatalf("Next after mid-stream Close: err = %v, want ErrAbandonedStream", err)
	}
	if q.RowCount() != 5 {
		t.Fatalf("RowCount = %d, want 5", q.RowCount())
	}
}
