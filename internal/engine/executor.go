package engine

import (
	"fmt"
	"sort"

	"lantern/internal/datum"
	"lantern/internal/sqlparser"
	"lantern/internal/storage"
)

// execNode materializes the rows produced by a plan node. This is the
// reference executor: every operator fully materializes its output. The
// streaming iterator executor in iter.go is the default query path
// (see Config.ReferenceExec); this path is retained as the semantic
// oracle for the differential tests and as the "full materialization"
// baseline in the engine benchmarks.
func (e *Engine) execNode(n *Node) ([]storage.Row, error) {
	switch n.Op {
	case OpSeqScan:
		return e.execSeqScan(n)
	case OpIndexScan:
		return e.execIndexScan(n)
	case OpHash, OpMaterialize:
		return e.execNode(n.Children[0])
	case OpHashJoin:
		return e.execHashJoin(n)
	case OpMergeJoin:
		return e.execMergeJoin(n)
	case OpNestedLoop:
		return e.execNestedLoop(n)
	case OpSort:
		return e.execSort(n)
	case OpAggregate, OpHashAggregate, OpGroupAggregate:
		return e.execAggregate(n)
	case OpUnique:
		return e.execUnique(n)
	case OpLimit:
		rows, err := e.execNode(n.Children[0])
		if err != nil {
			return nil, err
		}
		if n.Offset > 0 {
			if n.Offset >= int64(len(rows)) {
				rows = nil
			} else {
				rows = rows[n.Offset:]
			}
		}
		if n.Limit >= 0 && int64(len(rows)) > n.Limit {
			rows = rows[:n.Limit]
		}
		return rows, nil
	case OpResult:
		ctx := &evalCtx{schema: nil, row: nil, sub: e.subquery}
		row := make(storage.Row, len(n.ResultItems))
		for i, it := range n.ResultItems {
			v, err := eval(ctx, it.Expr)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		return []storage.Row{row}, nil
	}
	return nil, fmt.Errorf("engine: cannot execute operator %s", n.Op.Name())
}

// subquery executes an uncorrelated subquery, for the expression evaluator.
func (e *Engine) subquery(q *sqlparser.SelectStmt) ([]storage.Row, error) {
	res, err := e.runSelect(q)
	if err != nil {
		return nil, err
	}
	return res.Rows, nil
}

func (e *Engine) filterRows(n *Node, rows []storage.Row) ([]storage.Row, error) {
	if n.Filter == nil {
		return rows, nil
	}
	ctx := &evalCtx{schema: n.Schema, sub: e.subquery}
	out := rows[:0:0]
	for _, r := range rows {
		ctx.row = r
		v, err := eval(ctx, n.Filter)
		if err != nil {
			return nil, err
		}
		if truthy(v) {
			out = append(out, r)
		}
	}
	return out, nil
}

func (e *Engine) execSeqScan(n *Node) ([]storage.Row, error) {
	t, err := e.Cat.Table(n.Relation)
	if err != nil {
		return nil, err
	}
	// The reference oracle deliberately stays naive: materialize every row
	// (segments and tail) and filter through the tree-walking evaluator —
	// no zone maps, no typed loops — so it differentially checks both.
	rows, err := t.Snapshot().FetchAll()
	if err != nil {
		return nil, err
	}
	return e.filterRows(n, rows)
}

// execIndexScan derives the scan interval from the planned index condition
// and fetches the matching heap rows, then applies the residual filter.
func (e *Engine) execIndexScan(n *Node) ([]storage.Row, error) {
	t, err := e.Cat.Table(n.Relation)
	if err != nil {
		return nil, err
	}
	col, lo, hi, incLo, incHi, eq, hasEq, err := indexBounds(n.IndexCond)
	if err != nil {
		return nil, err
	}
	snap := t.Snapshot()
	ix := snap.Index(col)
	if ix == nil {
		return nil, fmt.Errorf("engine: planned index on %s.%s does not exist", n.Relation, col)
	}
	var ids []int
	if hasEq {
		ids = ix.Lookup(eq)
	} else {
		ids = ix.Range(lo, hi, incLo, incHi)
	}
	rows := make([]storage.Row, 0, len(ids))
	for _, id := range ids {
		r, err := snap.FetchRow(id)
		if err != nil {
			return nil, err
		}
		rows = append(rows, r)
	}
	// Re-check the index condition too (cheap, and keeps multi-conjunct
	// conditions exact when bounds only captured part of them).
	save := n.Filter
	n.Filter = sqlparser.JoinConjuncts(append(sqlparser.SplitConjuncts(n.IndexCond), sqlparser.SplitConjuncts(save)...))
	out, err := e.filterRows(n, rows)
	n.Filter = save
	return out, err
}

// indexBounds extracts the column and bounds from an index condition
// (a conjunction of comparisons of one column against literals).
func indexBounds(cond sqlparser.Expr) (col string, lo, hi datum.D, incLo, incHi bool, eq datum.D, hasEq bool, err error) {
	lo, hi, eq = datum.Null, datum.Null, datum.Null
	incLo, incHi = true, true
	tighten := func(c string, op sqlparser.BinOp, v datum.D) {
		if col == "" {
			col = c
		}
		switch op {
		case sqlparser.OpEq:
			eq, hasEq = v, true
		case sqlparser.OpGt:
			lo, incLo = v, false
		case sqlparser.OpGe:
			lo, incLo = v, true
		case sqlparser.OpLt:
			hi, incHi = v, false
		case sqlparser.OpLe:
			hi, incHi = v, true
		}
	}
	for _, c := range sqlparser.SplitConjuncts(cond) {
		switch ex := c.(type) {
		case *sqlparser.BinaryExpr:
			if cr, ok := ex.Left.(*sqlparser.ColumnRef); ok {
				if v, isLit := literalDatum(ex.Right); isLit {
					tighten(cr.Name, ex.Op, v)
					continue
				}
			}
			if cr, ok := ex.Right.(*sqlparser.ColumnRef); ok {
				if v, isLit := literalDatum(ex.Left); isLit {
					// flip operator
					switch ex.Op {
					case sqlparser.OpLt:
						tighten(cr.Name, sqlparser.OpGt, v)
					case sqlparser.OpLe:
						tighten(cr.Name, sqlparser.OpGe, v)
					case sqlparser.OpGt:
						tighten(cr.Name, sqlparser.OpLt, v)
					case sqlparser.OpGe:
						tighten(cr.Name, sqlparser.OpLe, v)
					default:
						tighten(cr.Name, ex.Op, v)
					}
					continue
				}
			}
		case *sqlparser.BetweenExpr:
			cr, ok := ex.X.(*sqlparser.ColumnRef)
			loV, okLo := literalDatum(ex.Lo)
			hiV, okHi := literalDatum(ex.Hi)
			if ok && okLo && okHi {
				tighten(cr.Name, sqlparser.OpGe, loV)
				tighten(cr.Name, sqlparser.OpLe, hiV)
				continue
			}
		}
		return "", datum.Null, datum.Null, false, false, datum.Null, false,
			fmt.Errorf("engine: unsupported index condition %s", sqlparser.FormatExpr(c))
	}
	if col == "" {
		return "", datum.Null, datum.Null, false, false, datum.Null, false,
			fmt.Errorf("engine: empty index condition")
	}
	return col, lo, hi, incLo, incHi, eq, hasEq, nil
}

// joinKeyPairs splits an equi-join condition into per-side key expressions,
// ordered so the first element of each pair evaluates against leftSchema.
func joinKeyPairs(cond sqlparser.Expr, leftSchema []colRef) (lhs, rhs []sqlparser.Expr, residual []sqlparser.Expr) {
	inSchema := func(c *sqlparser.ColumnRef, schema []colRef) bool {
		for _, sc := range schema {
			if (c.Table == "" || sc.Qual == c.Table) && sc.Name == c.Name {
				return true
			}
		}
		return false
	}
	for _, c := range sqlparser.SplitConjuncts(cond) {
		be, ok := c.(*sqlparser.BinaryExpr)
		if !ok || be.Op != sqlparser.OpEq {
			residual = append(residual, c)
			continue
		}
		lc, lok := be.Left.(*sqlparser.ColumnRef)
		rc, rok := be.Right.(*sqlparser.ColumnRef)
		if !lok || !rok {
			residual = append(residual, c)
			continue
		}
		switch {
		case inSchema(lc, leftSchema):
			lhs = append(lhs, lc)
			rhs = append(rhs, rc)
		case inSchema(rc, leftSchema):
			lhs = append(lhs, rc)
			rhs = append(rhs, lc)
		default:
			residual = append(residual, c)
		}
	}
	return lhs, rhs, residual
}

func (e *Engine) execHashJoin(n *Node) ([]storage.Row, error) {
	probeNode, hashNode := n.Children[0], n.Children[1]
	probe, err := e.execNode(probeNode)
	if err != nil {
		return nil, err
	}
	build, err := e.execNode(hashNode)
	if err != nil {
		return nil, err
	}
	probeKeys, buildKeys, residual := joinKeyPairs(n.JoinCond, probeNode.Schema)
	if len(probeKeys) == 0 {
		return nil, fmt.Errorf("engine: hash join without equi-condition")
	}
	buildCtx := &evalCtx{schema: hashNode.Schema, sub: e.subquery}
	table := make(map[uint64][]storage.Row, len(build))
	for _, r := range build {
		buildCtx.row = r
		h, ok, err := hashKeys(buildCtx, buildKeys)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue // NULL keys never match
		}
		table[h] = append(table[h], r)
	}
	probeCtx := &evalCtx{schema: probeNode.Schema, sub: e.subquery}
	pairCtx := &evalCtx{schema: n.Schema, sub: e.subquery}
	buildRowCtx := &evalCtx{schema: hashNode.Schema, sub: e.subquery}
	residualCond := sqlparser.JoinConjuncts(residual)
	var out []storage.Row
	leftOuter := n.JoinType == sqlparser.LeftJoin
	nullsRight := make(storage.Row, len(hashNode.Schema))
	for i := range nullsRight {
		nullsRight[i] = datum.Null
	}
	// Reusable pair buffer: candidates are checked in place and only
	// materialized with concatRows once key + residual checks pass.
	pairBuf := make(storage.Row, 0, len(n.Schema))
	for _, pr := range probe {
		probeCtx.row = pr
		matched := false
		h, ok, err := hashKeys(probeCtx, probeKeys)
		if err != nil {
			return nil, err
		}
		if ok {
			for _, br := range table[h] {
				buildRowCtx.row = br
				match, err := evalJoinMatch(probeKeys, buildKeys, probeCtx, buildRowCtx)
				if err != nil {
					return nil, err
				}
				if !match {
					continue
				}
				if residualCond != nil {
					pairBuf = append(append(pairBuf[:0], pr...), br...)
					pairCtx.row = pairBuf
					v, err := eval(pairCtx, residualCond)
					if err != nil {
						return nil, err
					}
					if !truthy(v) {
						continue
					}
				}
				matched = true
				out = append(out, concatRows(pr, br))
			}
		}
		if leftOuter && !matched {
			out = append(out, concatRows(pr, nullsRight))
		}
	}
	return e.filterRows(n, out)
}

// evalJoinMatch verifies key equality exactly (hash collisions are possible).
func evalJoinMatch(lKeys, rKeys []sqlparser.Expr, lCtx, rCtx *evalCtx) (bool, error) {
	for i := range lKeys {
		lv, err := eval(lCtx, lKeys[i])
		if err != nil {
			return false, err
		}
		rv, err := eval(rCtx, rKeys[i])
		if err != nil {
			return false, err
		}
		if !datum.Equal(lv, rv) {
			return false, nil
		}
	}
	return true, nil
}

// hashKeys hashes the evaluated key expressions; ok is false when any key
// is NULL (which can never join).
func hashKeys(ctx *evalCtx, keys []sqlparser.Expr) (uint64, bool, error) {
	var h uint64 = 1469598103934665603
	for _, k := range keys {
		v, err := eval(ctx, k)
		if err != nil {
			return 0, false, err
		}
		if v.IsNull() {
			return 0, false, nil
		}
		h = h*1099511628211 ^ v.Hash()
	}
	return h, true, nil
}

func concatRows(a, b storage.Row) storage.Row {
	out := make(storage.Row, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

func (e *Engine) execMergeJoin(n *Node) ([]storage.Row, error) {
	leftNode, rightNode := n.Children[0], n.Children[1]
	left, err := e.execNode(leftNode)
	if err != nil {
		return nil, err
	}
	right, err := e.execNode(rightNode)
	if err != nil {
		return nil, err
	}
	lKeys, rKeys, residual := joinKeyPairs(n.JoinCond, leftNode.Schema)
	if len(lKeys) == 0 {
		return nil, fmt.Errorf("engine: merge join without equi-condition")
	}
	lCtx := &evalCtx{schema: leftNode.Schema, sub: e.subquery}
	rCtx := &evalCtx{schema: rightNode.Schema, sub: e.subquery}
	keyOf := func(ctx *evalCtx, row storage.Row, keys []sqlparser.Expr) ([]datum.D, error) {
		ctx.row = row
		out := make([]datum.D, len(keys))
		for i, k := range keys {
			v, err := eval(ctx, k)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	cmpKeys := func(a, b []datum.D) int {
		for i := range a {
			if c := datum.Compare(a[i], b[i]); c != 0 {
				return c
			}
		}
		return 0
	}
	hasNull := func(k []datum.D) bool {
		for _, v := range k {
			if v.IsNull() {
				return true
			}
		}
		return false
	}
	pairCtx := &evalCtx{schema: n.Schema, sub: e.subquery}
	residualCond := sqlparser.JoinConjuncts(residual)
	var out []storage.Row
	li, ri := 0, 0
	for li < len(left) && ri < len(right) {
		lk, err := keyOf(lCtx, left[li], lKeys)
		if err != nil {
			return nil, err
		}
		rk, err := keyOf(rCtx, right[ri], rKeys)
		if err != nil {
			return nil, err
		}
		if hasNull(lk) {
			li++
			continue
		}
		if hasNull(rk) {
			ri++
			continue
		}
		c := cmpKeys(lk, rk)
		if c < 0 {
			li++
			continue
		}
		if c > 0 {
			ri++
			continue
		}
		// Equal runs: gather both groups, emit the cross product.
		lEnd := li + 1
		for lEnd < len(left) {
			k, err := keyOf(lCtx, left[lEnd], lKeys)
			if err != nil {
				return nil, err
			}
			if cmpKeys(k, lk) != 0 {
				break
			}
			lEnd++
		}
		rEnd := ri + 1
		for rEnd < len(right) {
			k, err := keyOf(rCtx, right[rEnd], rKeys)
			if err != nil {
				return nil, err
			}
			if cmpKeys(k, rk) != 0 {
				break
			}
			rEnd++
		}
		for a := li; a < lEnd; a++ {
			for b := ri; b < rEnd; b++ {
				joined := concatRows(left[a], right[b])
				if residualCond != nil {
					pairCtx.row = joined
					v, err := eval(pairCtx, residualCond)
					if err != nil {
						return nil, err
					}
					if !truthy(v) {
						continue
					}
				}
				out = append(out, joined)
			}
		}
		li, ri = lEnd, rEnd
	}
	return e.filterRows(n, out)
}

func (e *Engine) execNestedLoop(n *Node) ([]storage.Row, error) {
	outerNode, innerNode := n.Children[0], n.Children[1]
	outer, err := e.execNode(outerNode)
	if err != nil {
		return nil, err
	}
	inner, err := e.execNode(innerNode)
	if err != nil {
		return nil, err
	}
	ctx := &evalCtx{schema: n.Schema, sub: e.subquery}
	var out []storage.Row
	leftOuter := n.JoinType == sqlparser.LeftJoin
	nullsInner := make(storage.Row, len(innerNode.Schema))
	for i := range nullsInner {
		nullsInner[i] = datum.Null
	}
	for _, or := range outer {
		matched := false
		for _, ir := range inner {
			joined := concatRows(or, ir)
			if n.JoinCond != nil {
				ctx.row = joined
				v, err := eval(ctx, n.JoinCond)
				if err != nil {
					return nil, err
				}
				if !truthy(v) {
					continue
				}
			}
			matched = true
			out = append(out, joined)
		}
		if leftOuter && !matched {
			out = append(out, concatRows(or, nullsInner))
		}
	}
	return e.filterRows(n, out)
}

func (e *Engine) execSort(n *Node) ([]storage.Row, error) {
	rows, err := e.execNode(n.Children[0])
	if err != nil {
		return nil, err
	}
	return sortRows(e, rows, n.Children[0].Schema, n.SortKeys)
}

func sortRows(e *Engine, rows []storage.Row, schema []colRef, keys []sortKey) ([]storage.Row, error) {
	type keyed struct {
		row  storage.Row
		keys []datum.D
	}
	ctx := &evalCtx{schema: schema, sub: e.subquery}
	items := make([]keyed, len(rows))
	for i, r := range rows {
		ctx.row = r
		ks := make([]datum.D, len(keys))
		for j, k := range keys {
			v, err := eval(ctx, k.Expr)
			if err != nil {
				return nil, err
			}
			ks[j] = v
		}
		items[i] = keyed{row: r, keys: ks}
	}
	sort.SliceStable(items, func(a, b int) bool {
		for j := range keys {
			c := datum.Compare(items[a].keys[j], items[b].keys[j])
			if keys[j].Desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	out := make([]storage.Row, len(items))
	for i, it := range items {
		out[i] = it.row
	}
	return out, nil
}

// aggState accumulates one aggregate within one group. needs records
// which folds this aggregate's finalize will read, so the per-row
// accumulate skips the others — a SUM never pays the min/max compares.
type aggState struct {
	count    int64
	needs    uint8
	sum      datum.D
	min, max datum.D
	distinct map[string]bool
}

const (
	aggNeedSum uint8 = 1 << iota
	aggNeedMin
	aggNeedMax
)

// aggNeeds maps an aggregate function to the folds it reads at finalize.
// The count is always maintained (COUNT and AVG read it, and it is one
// increment); unknown names conservatively keep everything.
func aggNeeds(call *sqlparser.FuncCall) uint8 {
	switch call.Name {
	case "COUNT":
		return 0
	case "SUM", "AVG":
		return aggNeedSum
	case "MIN":
		return aggNeedMin
	case "MAX":
		return aggNeedMax
	}
	return aggNeedSum | aggNeedMin | aggNeedMax
}

// newAggState returns the empty accumulator for one aggregate call.
func newAggState(call *sqlparser.FuncCall) aggState {
	return aggState{needs: aggNeeds(call), sum: datum.Null, min: datum.Null, max: datum.Null}
}

func (e *Engine) execAggregate(n *Node) ([]storage.Row, error) {
	input, err := e.execNode(n.Children[0])
	if err != nil {
		return nil, err
	}
	childSchema := n.Children[0].Schema
	ctx := &evalCtx{schema: childSchema, sub: e.subquery}

	type group struct {
		keyVals []datum.D
		states  []*aggState
	}
	groups := make(map[string]*group)
	var order []string

	for _, r := range input {
		ctx.row = r
		keyVals := make([]datum.D, len(n.GroupKeys))
		keyText := ""
		for i, k := range n.GroupKeys {
			v, err := eval(ctx, k)
			if err != nil {
				return nil, err
			}
			keyVals[i] = v
			keyText += v.String() + "\x00"
		}
		g, ok := groups[keyText]
		if !ok {
			g = &group{keyVals: keyVals, states: make([]*aggState, len(n.Aggs))}
			for i := range g.states {
				st := newAggState(n.Aggs[i].Call)
				g.states[i] = &st
				if n.Aggs[i].Call.Distinct {
					g.states[i].distinct = make(map[string]bool)
				}
			}
			groups[keyText] = g
			order = append(order, keyText)
		}
		for i, a := range n.Aggs {
			if err := accumulate(ctx, g.states[i], a.Call); err != nil {
				return nil, err
			}
		}
	}

	// Plain aggregate over an empty input still yields one row.
	if len(n.GroupKeys) == 0 && len(groups) == 0 {
		g := &group{states: make([]*aggState, len(n.Aggs))}
		for i := range g.states {
			st := newAggState(n.Aggs[i].Call)
			g.states[i] = &st
		}
		groups[""] = g
		order = append(order, "")
	}

	havingCtx := &evalCtx{schema: n.Schema, sub: e.subquery}
	var out []storage.Row
	for _, kt := range order {
		g := groups[kt]
		row := make(storage.Row, 0, len(g.keyVals)+len(g.states))
		row = append(row, g.keyVals...)
		for i, a := range n.Aggs {
			row = append(row, finalize(g.states[i], a.Call))
		}
		if n.HavingFilter != nil {
			havingCtx.row = row
			v, err := eval(havingCtx, n.HavingFilter)
			if err != nil {
				return nil, err
			}
			if !truthy(v) {
				continue
			}
		}
		out = append(out, row)
	}
	// GroupAggregate consumed sorted input; emission above follows input
	// order, so the sortedness annotation remains valid.
	return out, nil
}

func accumulate(ctx *evalCtx, st *aggState, call *sqlparser.FuncCall) error {
	if call.Star {
		st.count++
		return nil
	}
	v, err := eval(ctx, call.Args[0])
	if err != nil {
		return err
	}
	return accumulateDatum(st, v)
}

// accumulateDatum folds one evaluated argument into an aggregate state;
// shared by the reference and streaming executors.
func accumulateDatum(st *aggState, v datum.D) error {
	if v.IsNull() {
		return nil
	}
	if st.distinct != nil {
		key := v.String()
		if st.distinct[key] {
			return nil
		}
		st.distinct[key] = true
	}
	st.count++
	if st.needs&aggNeedSum != 0 && v.IsNumeric() {
		if st.sum.IsNull() {
			st.sum = v
		} else {
			sum, err := datum.Arith('+', st.sum, v)
			if err != nil {
				return err
			}
			st.sum = sum
		}
	}
	if st.needs&aggNeedMin != 0 && (st.min.IsNull() || datum.Compare(v, st.min) < 0) {
		st.min = v
	}
	if st.needs&aggNeedMax != 0 && (st.max.IsNull() || datum.Compare(v, st.max) > 0) {
		st.max = v
	}
	return nil
}

func finalize(st *aggState, call *sqlparser.FuncCall) datum.D {
	switch call.Name {
	case "COUNT":
		return datum.NewInt(st.count)
	case "SUM":
		return st.sum
	case "AVG":
		if st.count == 0 || st.sum.IsNull() {
			return datum.Null
		}
		return datum.NewFloat(st.sum.Float() / float64(st.count))
	case "MIN":
		return st.min
	case "MAX":
		return st.max
	}
	return datum.Null
}

func (e *Engine) execUnique(n *Node) ([]storage.Row, error) {
	rows, err := e.execNode(n.Children[0])
	if err != nil {
		return nil, err
	}
	ctx := &evalCtx{schema: n.Children[0].Schema, sub: e.subquery}
	seen := make(map[string]bool, len(rows))
	var out []storage.Row
	for _, r := range rows {
		ctx.row = r
		key := ""
		for _, k := range n.SortKeys {
			v, err := eval(ctx, k.Expr)
			if err != nil {
				return nil, err
			}
			key += v.String() + "\x00"
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, r)
	}
	return out, nil
}
