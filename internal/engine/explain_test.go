package engine

import (
	"encoding/json"
	"encoding/xml"
	"strings"
	"testing"
)

// goldenEngine is a tiny fixed database whose plans are deterministic.
func goldenEngine(t *testing.T) *Engine {
	t.Helper()
	cfg := DefaultConfig()
	cfg.EnableMergeJoin = false
	cfg.EnableNestLoop = false
	e := New(cfg)
	script := `
CREATE TABLE dept (d_id INTEGER, d_name VARCHAR(20));
CREATE TABLE emp (e_id INTEGER, e_dept INTEGER, e_salary FLOAT);
INSERT INTO dept VALUES (1, 'eng'), (2, 'ops');
INSERT INTO emp VALUES (1, 1, 100.0), (2, 1, 120.0), (3, 2, 90.0), (4, 2, 95.0), (5, 1, 130.0);
`
	if _, err := e.ExecScript(script); err != nil {
		t.Fatal(err)
	}
	return e
}

const goldenQuery = `SELECT d.d_name, COUNT(*) FROM dept d, emp e
	WHERE d.d_id = e.e_dept AND e.e_salary > 90 GROUP BY d.d_name`

func TestExplainTextStructure(t *testing.T) {
	e := goldenEngine(t)
	plan, err := e.PlanSQL(goldenQuery)
	if err != nil {
		t.Fatal(err)
	}
	text := ExplainText(plan)
	// Structure (not costs): aggregate over hash join over two scans with
	// the filter on the emp scan.
	for _, want := range []string{
		"Hash Join",
		"Hash Cond: ((d.d_id) = (e.e_dept))",
		"->  Seq Scan on emp e",
		"Filter: ((e.e_salary) > (90))",
		"->  Hash",
		"Seq Scan on dept d",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("text plan lacks %q:\n%s", want, text)
		}
	}
	// PG-style indentation: Hash's child is nested deeper.
	if !strings.Contains(text, "->  Hash  (") {
		t.Fatalf("no Hash line:\n%s", text)
	}
}

func TestExplainTextDeterministic(t *testing.T) {
	e := goldenEngine(t)
	p1, err := e.PlanSQL(goldenQuery)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := e.PlanSQL(goldenQuery)
	if err != nil {
		t.Fatal(err)
	}
	if ExplainText(p1) != ExplainText(p2) {
		t.Error("EXPLAIN text is nondeterministic")
	}
}

func TestExplainJSONWellFormed(t *testing.T) {
	e := goldenEngine(t)
	plan, err := e.PlanSQL(goldenQuery)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := ExplainJSON(plan)
	if err != nil {
		t.Fatal(err)
	}
	var outer []map[string]any
	if err := json.Unmarshal([]byte(doc), &outer); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	root, ok := outer[0]["Plan"].(map[string]any)
	if !ok {
		t.Fatal("no Plan object")
	}
	// PostgreSQL-shaped keys.
	for _, key := range []string{"Node Type", "Total Cost", "Plan Rows"} {
		if _, ok := root[key]; !ok {
			t.Errorf("root lacks %q", key)
		}
	}
	// Aggregate is reported PostgreSQL-style: Node Type + Strategy.
	if root["Node Type"] != "Aggregate" {
		t.Errorf("root Node Type = %v, want Aggregate", root["Node Type"])
	}
	if root["Strategy"] == "" {
		t.Error("aggregate lacks a Strategy")
	}
}

func TestExplainXMLWellFormed(t *testing.T) {
	e := goldenEngine(t)
	plan, err := e.PlanSQL(goldenQuery)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := ExplainXML(plan)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(doc, xml.Header) {
		t.Error("missing XML header")
	}
	var parsed struct {
		XMLName xml.Name `xml:"ShowPlanXML"`
		Version string   `xml:"Version,attr"`
	}
	if err := xml.Unmarshal([]byte(doc), &parsed); err != nil {
		t.Fatalf("not valid XML: %v", err)
	}
	if parsed.Version != "1.5" {
		t.Errorf("version = %q", parsed.Version)
	}
	// SQL Server vocabulary only.
	if strings.Contains(doc, "Seq Scan") {
		t.Error("PostgreSQL operator name leaked into showplan")
	}
	if !strings.Contains(doc, `PhysicalOp="Hash Match"`) {
		t.Errorf("no Hash Match operator:\n%s", doc)
	}
}

func TestExplainMySQLWellFormed(t *testing.T) {
	e := goldenEngine(t)
	plan, err := e.PlanSQL(goldenQuery)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := ExplainMySQL(plan)
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		QueryBlock struct {
			SelectID int `json:"select_id"`
			CostInfo struct {
				QueryCost string `json:"query_cost"`
			} `json:"cost_info"`
		} `json:"query_block"`
	}
	if err := json.Unmarshal([]byte(doc), &parsed); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if parsed.QueryBlock.SelectID != 1 || parsed.QueryBlock.CostInfo.QueryCost == "" {
		t.Errorf("query_block header incomplete:\n%s", doc)
	}
	// MySQL vocabulary only: flat nested_loop with a hash join buffer, no
	// PostgreSQL node names.
	if strings.Contains(doc, "Node Type") || strings.Contains(doc, "Seq Scan") {
		t.Error("PostgreSQL shape leaked into MySQL explain")
	}
	for _, want := range []string{`"nested_loop"`, `"using_join_buffer": "hash join"`,
		`"grouping_operation"`, `"access_type": "ALL"`, `"attached_condition"`} {
		if !strings.Contains(doc, want) {
			t.Errorf("missing %s:\n%s", want, doc)
		}
	}
}

func TestExplainMySQLLimitTransparent(t *testing.T) {
	e := goldenEngine(t)
	plan, err := e.PlanSQL("SELECT e_id FROM emp ORDER BY e_salary LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	doc, err := ExplainMySQL(plan)
	if err != nil {
		t.Fatal(err)
	}
	// MySQL's JSON explain does not report LIMIT; the ordering must still
	// appear as a filesort.
	if strings.Contains(doc, "limit") || strings.Contains(doc, "Top") {
		t.Errorf("limit leaked into MySQL explain:\n%s", doc)
	}
	if !strings.Contains(doc, `"using_filesort": true`) {
		t.Errorf("missing filesort:\n%s", doc)
	}
}

func TestCondTextFormat(t *testing.T) {
	e := goldenEngine(t)
	plan, err := e.PlanSQL("SELECT e_id FROM emp WHERE e_salary > 90 AND e_dept = 1")
	if err != nil {
		t.Fatal(err)
	}
	text := ExplainText(plan)
	// Conjunctions render PostgreSQL-style with doubled parens per side.
	if !strings.Contains(text, "((e_salary) > (90))") {
		t.Errorf("condition format:\n%s", text)
	}
	if !strings.Contains(text, " AND ") {
		t.Errorf("conjunction lost:\n%s", text)
	}
}

func TestExplainStatementThroughSQL(t *testing.T) {
	e := goldenEngine(t)
	r, err := e.Exec("EXPLAIN " + goldenQuery)
	if err != nil {
		t.Fatal(err)
	}
	if r.Plan == "" || len(r.Rows) != 1 {
		t.Error("EXPLAIN statement returned no plan")
	}
	if r.Columns[0] != "QUERY PLAN" {
		t.Errorf("columns = %v", r.Columns)
	}
}
