package engine

// vexpr.go compiles filter predicates into vectorized selectors for the
// batch executor (vec.go). Where bind.go compiles an expression into a
// per-row closure, compileVecPred goes one step further for the predicate
// shapes that dominate scan filters — comparisons of a column against a
// literal or another column, IS [NOT] NULL, and conjunctions of those —
// and emits a selector that runs a tight typed loop over a whole batch:
// one ordinal load and one datum comparison per row, no closure calls, no
// three-valued-logic boxing. Anything the specializer does not recognize
// falls back to the pre-bound closure from bind.go evaluated row-by-row,
// so vectorized filtering is never less general than the row pipeline.
//
// SQL semantics are preserved exactly: a comparison with a NULL operand is
// not true, so the row is dropped — identical to what truthy(bound(env))
// yields in the row pipeline, and pinned by the three-way differential
// tests.

import (
	"lantern/internal/datum"
	"lantern/internal/sqlparser"
	"lantern/internal/storage"
)

// vecPred filters a batch: rows that satisfy the predicate are appended to
// out (which is returned). in rows must not be mutated; out must not alias
// in (callers pass a distinct buffer or use filterInPlace-style
// compaction via out = in[:0], which is safe because selection only drops
// rows, never reorders ones already written).
type vecPred interface {
	selectInto(out []storage.Row, in []storage.Row) ([]storage.Row, error)
}

// compileVecPred compiles e into a vectorized selector over schema.
func compileVecPred(e sqlparser.Expr, schema []colRef, sub subqueryFn) (vecPred, error) {
	// Conjunctions chain specialized selectors; each conjunct filters the
	// survivors of the previous one.
	if conds := sqlparser.SplitConjuncts(e); len(conds) > 1 {
		preds := make([]vecPred, len(conds))
		for i, c := range conds {
			p, err := compileVecPred(c, schema, sub)
			if err != nil {
				return nil, err
			}
			preds[i] = p
		}
		return &andPred{preds: preds}, nil
	}
	if p := specializePred(e, schema); p != nil {
		return p, nil
	}
	b, err := bindExpr(e, schema, sub)
	if err != nil {
		return nil, err
	}
	return &exprPred{bound: b}, nil
}

// specializePred recognizes the typed-loop-able predicate shapes; nil means
// "use the closure fallback".
func specializePred(e sqlparser.Expr, schema []colRef) vecPred {
	switch ex := e.(type) {
	case *sqlparser.BinaryExpr:
		switch ex.Op {
		case sqlparser.OpEq, sqlparser.OpNe, sqlparser.OpLt, sqlparser.OpLe, sqlparser.OpGt, sqlparser.OpGe:
		default:
			return nil
		}
		lOrd, lCol := columnOrdinal(ex.Left, schema)
		rOrd, rCol := columnOrdinal(ex.Right, schema)
		lLit, lIsLit := literalValue(ex.Left)
		rLit, rIsLit := literalValue(ex.Right)
		switch {
		case lCol && rIsLit:
			return &cmpColLit{ord: lOrd, op: ex.Op, lit: rLit}
		case lIsLit && rCol:
			return &cmpColLit{ord: rOrd, op: flipCmp(ex.Op), lit: lLit}
		case lCol && rCol:
			return &cmpColCol{a: lOrd, b: rOrd, op: ex.Op}
		}
	case *sqlparser.IsNullExpr:
		if ord, ok := columnOrdinal(ex.X, schema); ok {
			return &isNullPred{ord: ord, not: ex.Not}
		}
	}
	return nil
}

func literalValue(e sqlparser.Expr) (datum.D, bool) {
	if lit, ok := e.(*sqlparser.Literal); ok {
		return lit.Value, true
	}
	return datum.Null, false
}

// flipCmp mirrors a comparison operator for swapped operands
// (lit op col ⇒ col flip(op) lit).
func flipCmp(op sqlparser.BinOp) sqlparser.BinOp {
	switch op {
	case sqlparser.OpLt:
		return sqlparser.OpGt
	case sqlparser.OpLe:
		return sqlparser.OpGe
	case sqlparser.OpGt:
		return sqlparser.OpLt
	case sqlparser.OpGe:
		return sqlparser.OpLe
	}
	return op // Eq / Ne are symmetric
}

// cmpHolds evaluates the comparison verdict from a three-way compare.
func cmpHolds(op sqlparser.BinOp, c int) bool {
	switch op {
	case sqlparser.OpEq:
		return c == 0
	case sqlparser.OpNe:
		return c != 0
	case sqlparser.OpLt:
		return c < 0
	case sqlparser.OpLe:
		return c <= 0
	case sqlparser.OpGt:
		return c > 0
	case sqlparser.OpGe:
		return c >= 0
	}
	return false
}

// cmpColLit is the workhorse: column ⟨op⟩ constant in one typed loop.
// NULL column values fail the comparison (SQL three-valued logic: NULL
// predicates are not true). A NULL literal rejects every row.
type cmpColLit struct {
	ord int
	op  sqlparser.BinOp
	lit datum.D
}

func (p *cmpColLit) selectInto(out []storage.Row, in []storage.Row) ([]storage.Row, error) {
	if p.lit.IsNull() {
		return out, nil
	}
	// Fast integer path: the common TPC-H filter compares an int column to
	// an int literal; skip datum.Compare's kind dispatch entirely.
	if p.lit.Kind() == datum.KInt {
		lv := p.lit.Int()
		for _, r := range in {
			v := r[p.ord]
			if v.Kind() != datum.KInt {
				if v.IsNull() {
					continue
				}
				if v.IsNumeric() && cmpHolds(p.op, datum.Compare(v, p.lit)) {
					out = append(out, r)
				}
				continue
			}
			c := 0
			switch iv := v.Int(); {
			case iv < lv:
				c = -1
			case iv > lv:
				c = 1
			}
			if cmpHolds(p.op, c) {
				out = append(out, r)
			}
		}
		return out, nil
	}
	for _, r := range in {
		v := r[p.ord]
		if v.IsNull() {
			continue
		}
		if cmpHolds(p.op, datum.Compare(v, p.lit)) {
			out = append(out, r)
		}
	}
	return out, nil
}

// cmpColCol compares two columns of the same row.
type cmpColCol struct {
	a, b int
	op   sqlparser.BinOp
}

func (p *cmpColCol) selectInto(out []storage.Row, in []storage.Row) ([]storage.Row, error) {
	for _, r := range in {
		av, bv := r[p.a], r[p.b]
		if av.IsNull() || bv.IsNull() {
			continue
		}
		if cmpHolds(p.op, datum.Compare(av, bv)) {
			out = append(out, r)
		}
	}
	return out, nil
}

// isNullPred implements IS [NOT] NULL on a column.
type isNullPred struct {
	ord int
	not bool
}

func (p *isNullPred) selectInto(out []storage.Row, in []storage.Row) ([]storage.Row, error) {
	for _, r := range in {
		if r[p.ord].IsNull() != p.not {
			out = append(out, r)
		}
	}
	return out, nil
}

// andPred chains conjuncts: each filters the survivors of the previous.
// The scratch buffer holds intermediate survivor sets; the final conjunct
// writes directly into out.
type andPred struct {
	preds   []vecPred
	scratch [2][]storage.Row
}

func (p *andPred) selectInto(out []storage.Row, in []storage.Row) ([]storage.Row, error) {
	cur := in
	var err error
	for i, pred := range p.preds {
		if i == len(p.preds)-1 {
			return pred.selectInto(out, cur)
		}
		buf := p.scratch[i%2][:0]
		if buf == nil {
			buf = make([]storage.Row, 0, batchSize)
		}
		buf, err = pred.selectInto(buf, cur)
		if err != nil {
			return out, err
		}
		p.scratch[i%2] = buf
		cur = buf
	}
	return append(out, cur...), nil // unreachable for len(preds) >= 1
}

// exprPred is the general fallback: the pre-bound closure from bind.go
// evaluated per row. Still batch-amortized — the per-batch virtual call is
// shared across up to batchSize rows.
type exprPred struct {
	bound boundExpr
	env   rowEnv
}

func (p *exprPred) selectInto(out []storage.Row, in []storage.Row) ([]storage.Row, error) {
	for _, r := range in {
		p.env.left = r
		v, err := p.bound(&p.env)
		if err != nil {
			return out, err
		}
		if truthy(v) {
			out = append(out, r)
		}
	}
	return out, nil
}

// keyOrdinals resolves join/sort key expressions to schema ordinals when
// every key is a bare column reference — the dominant case — so batch key
// evaluation is a direct index load per key instead of a closure call.
// Returns nil when any key needs general evaluation.
func keyOrdinals(exprs []sqlparser.Expr, schema []colRef) []int {
	ords := make([]int, len(exprs))
	for i, e := range exprs {
		ord, ok := columnOrdinal(e, schema)
		if !ok {
			return nil
		}
		ords[i] = ord
	}
	return ords
}
