package engine

// vexpr.go compiles filter predicates into vectorized selectors for the
// batch executor (vec.go). Where bind.go compiles an expression into a
// per-row closure, compileVecPred goes one step further for the predicate
// shapes that dominate scan filters — comparisons of a column against a
// literal or another column, IS [NOT] NULL, and conjunctions of those —
// and emits a selector that runs a tight typed loop over a whole batch:
// one ordinal load and one datum comparison per row, no closure calls, no
// three-valued-logic boxing. Anything the specializer does not recognize
// falls back to the pre-bound closure from bind.go evaluated row-by-row,
// so vectorized filtering is never less general than the row pipeline.
//
// SQL semantics are preserved exactly: a comparison with a NULL operand is
// not true, so the row is dropped — identical to what truthy(bound(env))
// yields in the row pipeline, and pinned by the three-way differential
// tests.

import (
	"strings"

	"lantern/internal/datum"
	"lantern/internal/sqlparser"
	"lantern/internal/storage"
)

// vecPred filters a batch: rows that satisfy the predicate are appended to
// out (which is returned). in rows must not be mutated; out must not alias
// in (callers pass a distinct buffer or use filterInPlace-style
// compaction via out = in[:0], which is safe because selection only drops
// rows, never reorders ones already written).
type vecPred interface {
	selectInto(out []storage.Row, in []storage.Row) ([]storage.Row, error)
}

// compileVecPred compiles e into a vectorized selector over schema.
func compileVecPred(e sqlparser.Expr, schema []colRef, sub subqueryFn) (vecPred, error) {
	// Conjunctions chain specialized selectors; each conjunct filters the
	// survivors of the previous one.
	if conds := sqlparser.SplitConjuncts(e); len(conds) > 1 {
		preds := make([]vecPred, len(conds))
		for i, c := range conds {
			p, err := compileVecPred(c, schema, sub)
			if err != nil {
				return nil, err
			}
			preds[i] = p
		}
		return &andPred{preds: preds}, nil
	}
	if p := specializePred(e, schema); p != nil {
		return p, nil
	}
	b, err := bindExpr(e, schema, sub)
	if err != nil {
		return nil, err
	}
	return &exprPred{bound: b}, nil
}

// specializePred recognizes the typed-loop-able predicate shapes; nil means
// "use the closure fallback".
func specializePred(e sqlparser.Expr, schema []colRef) vecPred {
	switch ex := e.(type) {
	case *sqlparser.BinaryExpr:
		switch ex.Op {
		case sqlparser.OpEq, sqlparser.OpNe, sqlparser.OpLt, sqlparser.OpLe, sqlparser.OpGt, sqlparser.OpGe:
		default:
			return nil
		}
		lOrd, lCol := columnOrdinal(ex.Left, schema)
		rOrd, rCol := columnOrdinal(ex.Right, schema)
		lLit, lIsLit := literalValue(ex.Left)
		rLit, rIsLit := literalValue(ex.Right)
		switch {
		case lCol && rIsLit:
			return &cmpColLit{ord: lOrd, op: ex.Op, lit: rLit}
		case lIsLit && rCol:
			return &cmpColLit{ord: rOrd, op: flipCmp(ex.Op), lit: lLit}
		case lCol && rCol:
			return &cmpColCol{a: lOrd, b: rOrd, op: ex.Op}
		}
	case *sqlparser.IsNullExpr:
		if ord, ok := columnOrdinal(ex.X, schema); ok {
			return &isNullPred{ord: ord, not: ex.Not}
		}
	}
	return nil
}

func literalValue(e sqlparser.Expr) (datum.D, bool) {
	if lit, ok := e.(*sqlparser.Literal); ok {
		return lit.Value, true
	}
	return datum.Null, false
}

// flipCmp mirrors a comparison operator for swapped operands
// (lit op col ⇒ col flip(op) lit).
func flipCmp(op sqlparser.BinOp) sqlparser.BinOp {
	switch op {
	case sqlparser.OpLt:
		return sqlparser.OpGt
	case sqlparser.OpLe:
		return sqlparser.OpGe
	case sqlparser.OpGt:
		return sqlparser.OpLt
	case sqlparser.OpGe:
		return sqlparser.OpLe
	}
	return op // Eq / Ne are symmetric
}

// cmpHolds evaluates the comparison verdict from a three-way compare.
func cmpHolds(op sqlparser.BinOp, c int) bool {
	switch op {
	case sqlparser.OpEq:
		return c == 0
	case sqlparser.OpNe:
		return c != 0
	case sqlparser.OpLt:
		return c < 0
	case sqlparser.OpLe:
		return c <= 0
	case sqlparser.OpGt:
		return c > 0
	case sqlparser.OpGe:
		return c >= 0
	}
	return false
}

// cmpColLit is the workhorse: column ⟨op⟩ constant in one typed loop.
// NULL column values fail the comparison (SQL three-valued logic: NULL
// predicates are not true). A NULL literal rejects every row.
type cmpColLit struct {
	ord int
	op  sqlparser.BinOp
	lit datum.D
}

func (p *cmpColLit) selectInto(out []storage.Row, in []storage.Row) ([]storage.Row, error) {
	if p.lit.IsNull() {
		return out, nil
	}
	// Fast integer path: the common TPC-H filter compares an int column to
	// an int literal; skip datum.Compare's kind dispatch entirely.
	if p.lit.Kind() == datum.KInt {
		lv := p.lit.Int()
		for _, r := range in {
			v := r[p.ord]
			if v.Kind() != datum.KInt {
				if v.IsNull() {
					continue
				}
				if v.IsNumeric() && cmpHolds(p.op, datum.Compare(v, p.lit)) {
					out = append(out, r)
				}
				continue
			}
			c := 0
			switch iv := v.Int(); {
			case iv < lv:
				c = -1
			case iv > lv:
				c = 1
			}
			if cmpHolds(p.op, c) {
				out = append(out, r)
			}
		}
		return out, nil
	}
	for _, r := range in {
		v := r[p.ord]
		if v.IsNull() {
			continue
		}
		if cmpHolds(p.op, datum.Compare(v, p.lit)) {
			out = append(out, r)
		}
	}
	return out, nil
}

// cmpColCol compares two columns of the same row.
type cmpColCol struct {
	a, b int
	op   sqlparser.BinOp
}

func (p *cmpColCol) selectInto(out []storage.Row, in []storage.Row) ([]storage.Row, error) {
	for _, r := range in {
		av, bv := r[p.a], r[p.b]
		if av.IsNull() || bv.IsNull() {
			continue
		}
		if cmpHolds(p.op, datum.Compare(av, bv)) {
			out = append(out, r)
		}
	}
	return out, nil
}

// isNullPred implements IS [NOT] NULL on a column.
type isNullPred struct {
	ord int
	not bool
}

func (p *isNullPred) selectInto(out []storage.Row, in []storage.Row) ([]storage.Row, error) {
	for _, r := range in {
		if r[p.ord].IsNull() != p.not {
			out = append(out, r)
		}
	}
	return out, nil
}

// andPred chains conjuncts: each filters the survivors of the previous.
// The scratch buffer holds intermediate survivor sets; the final conjunct
// writes directly into out.
type andPred struct {
	preds   []vecPred
	scratch [2][]storage.Row
}

func (p *andPred) selectInto(out []storage.Row, in []storage.Row) ([]storage.Row, error) {
	cur := in
	var err error
	for i, pred := range p.preds {
		if i == len(p.preds)-1 {
			return pred.selectInto(out, cur)
		}
		buf := p.scratch[i%2][:0]
		if buf == nil {
			buf = make([]storage.Row, 0, batchSize)
		}
		buf, err = pred.selectInto(buf, cur)
		if err != nil {
			return out, err
		}
		p.scratch[i%2] = buf
		cur = buf
	}
	return append(out, cur...), nil // unreachable for len(preds) >= 1
}

// exprPred is the general fallback: the pre-bound closure from bind.go
// evaluated per row. Still batch-amortized — the per-batch virtual call is
// shared across up to batchSize rows.
type exprPred struct {
	bound boundExpr
	env   rowEnv
}

func (p *exprPred) selectInto(out []storage.Row, in []storage.Row) ([]storage.Row, error) {
	for _, r := range in {
		p.env.left = r
		v, err := p.bound(&p.env)
		if err != nil {
			return out, err
		}
		if truthy(v) {
			out = append(out, r)
		}
	}
	return out, nil
}

// --- Zone-map pruning and segment-typed selection ----------------------------
//
// The specialized predicates double as segment refuters and typed-vector
// selectors. Scan schemas list table columns in declared order, so a
// predicate ordinal indexes the segment's zone maps and column vectors
// directly. Both facilities are conservative: a predicate shape without
// pruning support never prunes, and a column without a typed vector (or a
// kind pairing outside the fast paths) falls back to the row-major loop —
// so they are strictly an optimization over selectInto, never a semantic
// change. The differential corpus pins that.

// zonePruner is implemented by predicates that can refute a whole sealed
// segment from its per-column zone maps: true means no row of the segment
// can satisfy the predicate, so the scan skips it without touching data.
type zonePruner interface {
	prunesSegment(seg *storage.Segment) bool
}

// segPruned reports whether p provably rejects every row of seg.
func segPruned(p vecPred, seg *storage.Segment) bool {
	zp, ok := p.(zonePruner)
	return ok && zp.prunesSegment(seg)
}

// segSelector is implemented by predicates with a typed-vector loop: rows
// [lo, hi) of the loaded segment payload are filtered by scanning the flat
// column vector and late-materializing only the surviving row headers.
// Selection operates on a *storage.SegData — the payload a scan faulted in
// (and pinned) through the buffer pool — never on the Segment itself, so
// pruning (zones, always resident) and selection (payload, possibly
// on disk) stay on opposite sides of the I/O boundary.
type segSelector interface {
	selectSeg(out []storage.Row, sd *storage.SegData, lo, hi int) ([]storage.Row, error)
}

// segSelect filters rows [lo, hi) of a loaded segment payload through p:
// the typed-vector loop when the predicate has one, the row-major loop
// otherwise.
func segSelect(p vecPred, out []storage.Row, sd *storage.SegData, lo, hi int) ([]storage.Row, error) {
	if sp, ok := p.(segSelector); ok {
		return sp.selectSeg(out, sd, lo, hi)
	}
	return p.selectInto(out, sd.Rows()[lo:hi])
}

// prunesSegment refutes a comparison from the column's zone map. Bounds
// are compared with datum.Compare — the same total order selectInto's
// verdicts refine — so a pruned segment can never contain a surviving row:
// selectInto keeps a row only if cmpHolds(op, Compare(v, lit)), and the
// zone map bounds every non-NULL v under that order.
func (p *cmpColLit) prunesSegment(seg *storage.Segment) bool {
	if p.lit.IsNull() {
		return true // a NULL literal rejects every row
	}
	zm := seg.Zone(p.ord)
	if zm.Min.IsNull() {
		return true // only NULLs in the segment; comparisons are never true
	}
	cMin := datum.Compare(p.lit, zm.Min)
	cMax := datum.Compare(p.lit, zm.Max)
	switch p.op {
	case sqlparser.OpEq:
		return cMin < 0 || cMax > 0
	case sqlparser.OpNe:
		// Refutable only when every value equals the literal.
		return cMin == 0 && cMax == 0
	case sqlparser.OpLt: // v < lit impossible when min >= lit
		return cMin <= 0
	case sqlparser.OpLe:
		return cMin < 0
	case sqlparser.OpGt: // v > lit impossible when max <= lit
		return cMax >= 0
	case sqlparser.OpGe:
		return cMax > 0
	}
	return false
}

// selectSeg runs the comparison over the typed column vector. Each fast
// path replicates exactly what selectInto's datum path computes for that
// kind pairing (ints compare as ints, mixed numerics widen to float,
// strings compare lexically); any other pairing — or a column without a
// typed vector — falls back to the row loop.
func (p *cmpColLit) selectSeg(out []storage.Row, sd *storage.SegData, lo, hi int) ([]storage.Row, error) {
	if p.lit.IsNull() {
		return out, nil
	}
	vec := sd.Col(p.ord)
	rows := sd.Rows()
	switch {
	case vec.Kind == datum.KInt && p.lit.Kind() == datum.KInt:
		lv := p.lit.Int()
		if !vec.HasNulls() {
			for i := lo; i < hi; i++ {
				if intCmpHolds(p.op, vec.Ints[i], lv) {
					out = append(out, rows[i])
				}
			}
			return out, nil
		}
		for i := lo; i < hi; i++ {
			if !vec.Null(i) && intCmpHolds(p.op, vec.Ints[i], lv) {
				out = append(out, rows[i])
			}
		}
		return out, nil
	case vec.Kind == datum.KInt && p.lit.Kind() == datum.KFloat:
		lf := p.lit.Float()
		for i := lo; i < hi; i++ {
			if !vec.Null(i) && floatCmpHolds(p.op, float64(vec.Ints[i]), lf) {
				out = append(out, rows[i])
			}
		}
		return out, nil
	case vec.Kind == datum.KFloat && p.lit.IsNumeric():
		lf := p.lit.Float()
		if !vec.HasNulls() {
			for i := lo; i < hi; i++ {
				if floatCmpHolds(p.op, vec.Floats[i], lf) {
					out = append(out, rows[i])
				}
			}
			return out, nil
		}
		for i := lo; i < hi; i++ {
			if !vec.Null(i) && floatCmpHolds(p.op, vec.Floats[i], lf) {
				out = append(out, rows[i])
			}
		}
		return out, nil
	case vec.Kind == datum.KString && p.lit.Kind() == datum.KString:
		ls := p.lit.Str()
		for i := lo; i < hi; i++ {
			if !vec.Null(i) && cmpHolds(p.op, strings.Compare(vec.Strs[i], ls)) {
				out = append(out, rows[i])
			}
		}
		return out, nil
	}
	return p.selectInto(out, rows[lo:hi])
}

func intCmpHolds(op sqlparser.BinOp, a, b int64) bool {
	switch op {
	case sqlparser.OpEq:
		return a == b
	case sqlparser.OpNe:
		return a != b
	case sqlparser.OpLt:
		return a < b
	case sqlparser.OpLe:
		return a <= b
	case sqlparser.OpGt:
		return a > b
	case sqlparser.OpGe:
		return a >= b
	}
	return false
}

func floatCmpHolds(op sqlparser.BinOp, a, b float64) bool {
	switch op {
	case sqlparser.OpEq:
		return a == b
	case sqlparser.OpNe:
		return a != b
	case sqlparser.OpLt:
		return a < b
	case sqlparser.OpLe:
		return a <= b
	case sqlparser.OpGt:
		return a > b
	case sqlparser.OpGe:
		return a >= b
	}
	return false
}

// prunesSegment refutes IS [NOT] NULL from the zone map's null count.
func (p *isNullPred) prunesSegment(seg *storage.Segment) bool {
	zm := seg.Zone(p.ord)
	if p.not {
		return zm.NullCount == seg.NumRows()
	}
	return zm.NullCount == 0
}

// selectSeg answers IS [NOT] NULL from the null bitmap alone — the bitmap
// is built for every column, typed vector or not.
func (p *isNullPred) selectSeg(out []storage.Row, sd *storage.SegData, lo, hi int) ([]storage.Row, error) {
	vec := sd.Col(p.ord)
	rows := sd.Rows()
	if !vec.HasNulls() {
		if p.not {
			return append(out, rows[lo:hi]...), nil
		}
		return out, nil
	}
	for i := lo; i < hi; i++ {
		if vec.Null(i) != p.not {
			out = append(out, rows[i])
		}
	}
	return out, nil
}

// prunesSegment: a conjunction is refuted when any conjunct is.
func (p *andPred) prunesSegment(seg *storage.Segment) bool {
	for _, pred := range p.preds {
		if segPruned(pred, seg) {
			return true
		}
	}
	return false
}

// selectSeg runs the first conjunct through its typed loop (the survivors
// late-materialize there), then chains the rest over the survivor rows.
func (p *andPred) selectSeg(out []storage.Row, sd *storage.SegData, lo, hi int) ([]storage.Row, error) {
	var cur []storage.Row
	var err error
	for i, pred := range p.preds {
		last := i == len(p.preds)-1
		if i == 0 {
			if last {
				return segSelect(pred, out, sd, lo, hi)
			}
			buf := p.scratch[0][:0]
			if buf == nil {
				buf = make([]storage.Row, 0, batchSize)
			}
			if buf, err = segSelect(pred, buf, sd, lo, hi); err != nil {
				return out, err
			}
			p.scratch[0] = buf
			cur = buf
			continue
		}
		if last {
			return pred.selectInto(out, cur)
		}
		buf := p.scratch[i%2][:0]
		if buf == nil {
			buf = make([]storage.Row, 0, batchSize)
		}
		if buf, err = pred.selectInto(buf, cur); err != nil {
			return out, err
		}
		p.scratch[i%2] = buf
		cur = buf
	}
	return append(out, cur...), nil // unreachable for len(preds) >= 1
}

// keyOrdinals resolves join/sort key expressions to schema ordinals when
// every key is a bare column reference — the dominant case — so batch key
// evaluation is a direct index load per key instead of a closure call.
// Returns nil when any key needs general evaluation.
func keyOrdinals(exprs []sqlparser.Expr, schema []colRef) []int {
	ords := make([]int, len(exprs))
	for i, e := range exprs {
		ord, ok := columnOrdinal(e, schema)
		if !ok {
			return nil
		}
		ords[i] = ord
	}
	return ords
}
