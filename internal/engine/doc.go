// Package engine implements the substrate RDBMS that stands in for
// PostgreSQL / SQL Server / MySQL in this reproduction: a cost-based
// planner over the catalog's statistics, a full in-memory executor, and
// EXPLAIN emitters in four formats (PostgreSQL-style text and JSON,
// SQL-Server-style XML showplan, MySQL-style EXPLAIN FORMAT=JSON).
// LANTERN consumes the JSON/XML/MySQL forms through internal/plan,
// exactly as the paper's system consumes the output of the commercial
// engines.
//
// # Execution model
//
// SELECT queries execute batch-at-a-time by default (vec.go, vecjoin.go,
// vecsort.go): every vectorized operator implements
//
//	type vecIter interface {
//		Open() error
//		NextBatch() ([]storage.Row, error)
//		Close() error
//	}
//
// NextBatch returns up to batchSize (1024) rows per call, never an empty
// batch; nil signals end of stream. Scans slice storage-owned row memory
// directly (an unfiltered chunk is a zero-copy subslice) and run compiled
// predicates over whole chunks in tight typed loops; the hash join packs
// joined rows into a per-batch flat datum arena (one allocation per
// output batch instead of one per row); sort keeps the bounded top-K heap
// or sorts an index permutation over a flat key arena. The allocation
// guards in alloc_test.go pin the steady-state batch loops at (near) zero
// allocations per batch.
//
// The first batches of a scan are deliberately small: NextBatch starts
// at initialChunkSize (64) rows and grows the chunk ×4 per call up to
// batchSize, so a LIMIT-k short circuit touches tens of heap rows, not a
// full batch, while long scans reach full batch width within three
// calls.
//
// The row-at-a-time streaming pipeline (iter.go) — rowIter with
// Open/Next/Close — is retained in full. It is the execution path for
// serial instrumented runs (EXPLAIN ANALYZE semantics need exact
// per-operator actuals, which per-row wrappers collect), for
// Config.RowStreamExec (pinned in benchmarks as the vectorization
// ablation), and the adapter pair in vec.go bridges the two models:
// rowToVec lifts a row iterator into batches where no native vectorized
// operator exists, and the row-streaming Exec surface (StreamingQuery,
// the session pool, LIMIT short-circuit consumption) drains the batch
// pipeline one row at a time through vecToRow without buffering whole
// results.
//
// # Columnar scans and zone-map pruning
//
// The storage layer (internal/storage) keeps each table as immutable
// column-major sealed segments plus a row-major mutable tail, and every
// scan — vectorized, row-stream, parallel, reference — operates a
// Snapshot taken at Open. The scan contract against that layout:
//
//   - A Snapshot is a stable point-in-time view: concurrent INSERTs,
//     UPDATEs, DELETEs, and CreateIndex calls never change what an open
//     scan observes, and no external synchronization between readers and
//     writers is required. Rescans (re-Open) take a fresh snapshot.
//   - Sealed segments are scanned segment-at-a-time. Before any row is
//     touched, the compiled predicate (a zonePruner, vexpr.go) is checked
//     against the segment's per-column zone maps; a refuted segment is
//     skipped wholesale — zero rows read, zero allocations — and counted
//     in OpStats.SegsPruned. Surviving segments run the predicate as a
//     typed loop directly over the column vectors (a segSelector walking
//     Int64/Float64/String storage with the null bitmap), and only the
//     qualifying row indices are late-materialized, as aliases into the
//     segment's retained row-major form — so downstream operators see
//     ordinary rows and the mutation/retention rules below are unchanged.
//   - Pruning is proven conservative: a segment is skipped only when the
//     zone map refutes the predicate under the same datum.Compare total
//     order the row-level verdicts use, so a pruned segment can never
//     contain a surviving row. The differential pruning corpus
//     (pruning_diff_test.go) pins all four executors identical across
//     segment-boundary literals, all-NULL segments, NULL-literal
//     comparisons, and prune-everything predicates.
//   - The unsealed tail has no zone maps and is scanned row-at-a-time via
//     the ordinary selectInto path; tables smaller than one segment
//     therefore behave exactly as the previous row-major heap did, and
//     their plans carry no segment attributes at all.
//
// Scans report SegsScanned/SegsPruned through OpStats; bridged plans
// expose them as the "segments"/"segspruned" attrs, the narrator turns
// them into the "skipping N of M storage segments via zone maps"
// callout, and trace spans and the slow-query log carry the same totals.
// The planner consumes zone maps at plan time too: seqScanCost charges
// only the fraction of rows whose segments the compiled predicate cannot
// refute (predictedPruneFraction), so a clustered predicate's seq scan
// is costed — and chosen — accordingly. Config.DisableZonePruning is the
// ablation knob: it disables segment skipping and the planner's prune
// costing (results are pinned unchanged), leaving the typed-loop gains
// in place.
//
// Disk-backed tables (a catalog opened over a data directory,
// internal/catalog + internal/pager) extend the contract without
// changing it. A spilled segment keeps its zone maps, distinct sketches
// and row count resident — only the payload (typed vectors, null
// bitmaps, row-major view) lives in the segment file — so the pruning
// check above runs on metadata alone and a refuted segment costs zero
// I/O, not just zero rows: the buffer pool's miss counter is pinned
// unchanged by test (disk_test.go). A surviving segment is faulted in
// through Segment.Load, which pins a buffer-pool frame for the duration
// of that segment's scan; scans release the previous segment's pin
// before loading the next, so a serial scan holds at most one frame and
// a parallel scan at most one per worker. Rows handed downstream remain
// valid after the pin is released and even after eviction (the payload
// is garbage-collected storage, the pool only bounds what it keeps
// cached), so the batch row-retention rule below is unaffected. The one
// visible change is the failure mode: I/O and checksum errors on the
// fault path surface as query errors (wrapping pager.ErrChecksum for
// corruption) on every executor rather than panics.
//
// # Morsel-driven parallelism
//
// Plans whose estimated driver cardinality justifies it execute with
// intra-query parallelism (parallel.go), morsel-at-a-time in the style
// of HyPer: the driving base-table scan is split into morsels aligned to
// the storage segments (at most morselSize rows each, lowered to
// Config.ParallelRowsPerWorker when that is configured smaller; the tail
// chunks the same way) handed out by an atomic dispenser, and each
// worker runs the ordinary vectorized pipeline over its morsels — a
// worker handed a zone-pruned segment's morsel skips it without reading
// a row, so pruning composes with parallelism — operators
// above the scan are unchanged; parallelism is purely a property of the
// exchange at the root:
//
//   - Gather emits each morsel's output in morsel order, which IS the
//     serial row order — parallel execution is order-indistinguishable
//     from serial even without ORDER BY, pinned by test.
//   - Aggregations pre-aggregate per worker and merge partial states,
//     ordering groups by first appearance (minimum first-row sequence).
//   - Sort / top-K merge per-worker runs by (sort key, sequence), so
//     ties break by arrival order exactly as the serial stable sort.
//   - Hash-join build sides above the parallelism threshold are built
//     once into a shared table by the worker pool (merged in morsel
//     order) and adopted read-only by every probe pipeline.
//
// The planner decides the degree of parallelism from cardinality
// estimates: dop = ceil(estimated rows / Config.ParallelRowsPerWorker),
// clamped to Config.MaxQueryParallelism (0 = GOMAXPROCS, negative =
// force serial); small inputs stay serial so the morsel machinery costs
// nothing on point lookups. Node.DOP records the decision on the plan
// (1 = considered and kept serial, >=2 = parallel). The serving layer's
// per-request max_parallelism hint can lower the cap per query but never
// raise it. Workers propagate errors through the exchange, which cancels
// the dispenser and drains the pool; Close during a parallel stream
// (client disconnect) does the same, pinned by the cancellation tests.
//
// Instrumented parallel runs keep the vectorized pipeline (per-row
// wrapping would serialize the workers): instrVecIter counts batches
// with atomic adds, and per-worker actuals (rows, busy time) aggregate
// into the driving operator's stats as OpStats.PerWorker, with
// OpStats.Workers carrying the worker count the narrator calls out and
// WantedWorkers recording the DOP a mis-estimated plan left on the
// table.
//
// # Operator contracts
//
//   - A batch returned by NextBatch is transient: it is valid only until
//     the next NextBatch or Close call on that iterator. The row DATA
//     inside a batch is not transient — derived rows (joins, projections)
//     are packed into freshly allocated arenas that are never reused, and
//     scan rows alias the table heap — so a consumer may retain
//     individual rows forever, but must copy the batch slice itself if it
//     wants to hold more than the current batch, and must never mutate a
//     row in place.
//   - Open may be called again after exhaustion to rescan (scans rewind
//     for free; buffering operators recompute).
//   - All expressions are pre-bound at construction time (bind.go):
//     column references resolve to ordinals once, so per-row evaluation
//     performs no schema lookups and no allocation. Vectorized scans go
//     further and compile conjunctions of comparisons against columns
//     into typed predicate loops (vexpr.go). Join predicates bind against
//     a two-part environment (probe/outer row + build/inner row) and are
//     checked before the joined row is materialized, so non-matching
//     candidate pairs cost nothing. Hash joins additionally cache the
//     evaluated build-side key datums, making the hash-collision recheck
//     a pure datum comparison; rows whose key contains NULL are skipped
//     at build and get an empty bucket at probe, so NULL never matches.
//
// # Limit short-circuiting and top-K
//
// Limit stops pulling from its child once offset+limit rows have been
// seen, so `LIMIT 10` over a scan touches ten heap rows instead of the
// whole table — at batch granularity in the vectorized path: the first
// 1024-row chunk is processed even when only ten rows are needed, which
// trades a bounded amount of work on tiny limits for the batch loop's
// throughput everywhere else. Whole batches inside the OFFSET are skipped
// without touching their rows. When a Sort feeds a Limit directly, the
// planner marks
// the Sort with SortLimit = limit + offset and the executor keeps a
// bounded top-K heap (O(n log k), O(k) space) instead of buffering and
// sorting the full input; arrival order breaks ties, so the result is
// bit-identical to a stable full sort followed by truncation. Top-K does
// not apply when a cardinality-changing operator (Unique, aggregation)
// sits between the Sort and the Limit.
//
// # Native plan bridge and instrumentation
//
// The engine's plans reach the narrator directly through the native
// bridge (bridge.go): ToPlanNode converts a physical plan into the
// vendor-neutral plan.Node tree with Source "native" and no EXPLAIN-text
// round-trip, and ExplainNative serializes that tree in the registered
// "native" dialect. The bridge is pinned against the legacy path — the
// differential test asserts ToPlanNode is structurally equal to parsing
// the engine's own EXPLAIN (FORMAT JSON) output.
//
// Runtime instrumentation is opt-in per execution and follows EXPLAIN
// ANALYZE semantics:
//
//   - Disabled (the default): the vectorized pipeline runs with no
//     wrapper objects and no counters — zero extra allocations and zero
//     extra branches per batch. The allocation guards in alloc_test.go
//     enforce this.
//   - Enabled (ExecPlanInstrumented, QueryInstrumented, or the EXPLAIN
//     ANALYZE statement): serial plans route to the row pipeline and
//     every operator's iterator is wrapped in an instrIter collecting
//     actual rows (totals across all loops), loops (Open calls), and
//     inclusive wall time — a parent's time contains its children's, as
//     PostgreSQL reports it. Parallel plans stay on the vectorized
//     pipeline (see Morsel-driven parallelism) with batch-granular
//     atomic counters instead. The differential suite pins all pipelines
//     to identical results, so instrumented counts describe the same
//     query either way.
//
// Collected stats annotate bridged trees via the standardized attrs
// AttrActualRows / AttrLoops / AttrTimeMs, plus AttrWorkers /
// AttrWorkersWanted on parallel (or should-have-been-parallel)
// operators; wall time and the per-worker row split are the
// non-deterministic ones — time is excluded from plan fingerprints, and
// the split is never serialized at all.
//
// # Reference executor
//
// The original materialize-everything executor (executor.go) is retained
// behind Config.ReferenceExec as the semantic oracle: the differential
// tests run the full corpus and a randomized query generator through all
// three executors — vectorized, row-streaming, reference — and assert
// identical row multisets (sequences, under ORDER BY), and the engine
// benchmarks report vectorized / row-stream / reference triples. Plan
// selection is identical in all modes.
package engine
