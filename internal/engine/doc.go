// Package engine implements the substrate RDBMS that stands in for
// PostgreSQL / SQL Server / MySQL in this reproduction: a cost-based
// planner over the catalog's statistics, a full in-memory executor, and
// EXPLAIN emitters in four formats (PostgreSQL-style text and JSON,
// SQL-Server-style XML showplan, MySQL-style EXPLAIN FORMAT=JSON).
// LANTERN consumes the JSON/XML/MySQL forms through internal/plan,
// exactly as the paper's system consumes the output of the commercial
// engines.
//
// # Execution model
//
// Queries execute through a streaming iterator executor (iter.go): every
// physical operator implements
//
//	type rowIter interface {
//		Open() error
//		Next() (row storage.Row, ok bool, err error)
//		Close() error
//	}
//
// Open prepares the operator, Next produces one row at a time, Close
// releases children. Rows flow through the pipeline on demand, so
// pipelined operators — sequential and index scans, filters,
// limit/offset, the probe side of a hash join, the outer side of a nested
// loop, unique — never buffer their input. Only operators whose semantics
// require buffering materialize: sort, aggregation, the build side of a
// hash join, the inner side of a nested loop, and both merge-join inputs.
//
// # Operator contracts
//
//   - Rows returned by Next may alias heap or operator-internal storage;
//     consumers must not mutate them. Operators that emit derived rows
//     (joins, aggregates) allocate fresh rows.
//   - Open may be called again after exhaustion to rescan (scans rewind
//     for free; buffering operators recompute).
//   - All expressions are pre-bound at construction time (bind.go):
//     column references resolve to ordinals once, so per-row evaluation
//     performs no schema lookups and no allocation. Join predicates bind
//     against a two-part environment (probe/outer row + build/inner row)
//     and are checked before the joined row is allocated, so non-matching
//     candidate pairs cost nothing. Hash joins additionally cache the
//     evaluated build-side key datums, making the hash-collision recheck
//     a pure datum comparison.
//
// # Limit short-circuiting and top-K
//
// Limit simply stops pulling from its child once offset+limit rows have
// been seen, so `LIMIT 10` over a scan touches ten heap rows instead of
// the whole table. When a Sort feeds a Limit directly, the planner marks
// the Sort with SortLimit = limit + offset and the executor keeps a
// bounded top-K heap (O(n log k), O(k) space) instead of buffering and
// sorting the full input; arrival order breaks ties, so the result is
// bit-identical to a stable full sort followed by truncation. Top-K does
// not apply when a cardinality-changing operator (Unique, aggregation)
// sits between the Sort and the Limit.
//
// # Native plan bridge and instrumentation
//
// The engine's plans reach the narrator directly through the native
// bridge (bridge.go): ToPlanNode converts a physical plan into the
// vendor-neutral plan.Node tree with Source "native" and no EXPLAIN-text
// round-trip, and ExplainNative serializes that tree in the registered
// "native" dialect. The bridge is pinned against the legacy path — the
// differential test asserts ToPlanNode is structurally equal to parsing
// the engine's own EXPLAIN (FORMAT JSON) output.
//
// Runtime instrumentation is opt-in per execution and follows EXPLAIN
// ANALYZE semantics:
//
//   - Disabled (the default): iterators are built with a nil wrap hook.
//     No wrapper objects exist, no counters are touched — zero extra
//     allocations and zero extra branches per row. The allocation guards
//     in alloc_test.go enforce this.
//   - Enabled (ExecPlanInstrumented, QueryInstrumented, or the EXPLAIN
//     ANALYZE statement): every operator's iterator is wrapped in an
//     instrIter collecting actual rows (totals across all loops), loops
//     (Open calls), and inclusive wall time — a parent's time contains
//     its children's, as PostgreSQL reports it.
//
// Collected stats annotate bridged trees via the standardized attrs
// AttrActualRows / AttrLoops / AttrTimeMs; wall time is the only
// non-deterministic one and is excluded from plan fingerprints.
//
// # Reference executor
//
// The original materialize-everything executor (executor.go) is retained
// behind Config.ReferenceExec as the semantic oracle: the differential
// tests run the full corpus and a randomized query generator through both
// paths and assert identical row multisets (sequences, under ORDER BY),
// and the engine benchmarks report streaming vs full-materialization
// pairs. Plan selection is identical in both modes.
package engine
