package engine

// bridge.go is the native engine↔plan bridge: it converts the engine's
// physical plan directly into the vendor-neutral plan.Node tree the
// narrator consumes (no EXPLAIN-text round-trip), and provides the opt-in
// iterator instrumentation that annotates that tree with per-operator
// runtime statistics — PostgreSQL's EXPLAIN ANALYZE semantics.
//
// The instrumentation contract:
//
//   - Collection is opt-in per execution. The normal path (Engine.Exec,
//     execStream) runs the vectorized batch pipeline with no wrap hook, so
//     a disabled run pays zero extra allocations and zero extra branches —
//     the pipeline is the identical object graph the allocation guards in
//     alloc_test.go measure.
//   - When enabled (ExecPlanInstrumented, QueryInstrumented, EXPLAIN
//     ANALYZE), execution routes to the row-at-a-time pipeline and every
//     plan operator's iterator is wrapped in an instrIter that counts Open
//     calls (loops), rows returned by Next (actual rows), and inclusive
//     wall time spent inside Open/Next — inclusive meaning a parent's time
//     contains its children's, exactly as PostgreSQL reports actual time.
//     Per-row wrapping keeps actual rows exact at every operator, which
//     batch-boundary counting could not guarantee; the differential suite
//     pins both pipelines to identical results, so the instrumented
//     actuals describe the same query the batch path executes.
//   - Actual rows are totals across all loops, matching EXPLAIN ANALYZE;
//     pass-through operators (Hash, Materialize) get their own wrapper, so
//     a Hash node reports the build-side row count.
//   - Wall time is the only non-deterministic statistic; the plan layer
//     excludes AttrTimeMs from the canonical serialization so
//     actuals-annotated plans remain cacheable by fingerprint.

import (
	"strconv"
	"strings"
	"time"

	"lantern/internal/plan"
	"lantern/internal/sqlparser"
	"lantern/internal/storage"
)

// OpStats is the runtime statistics of one plan operator.
type OpStats struct {
	// Rows is the total number of rows the operator produced across all
	// loops.
	Rows int64
	// Loops counts how many times the operator was (re)started (Open
	// calls).
	Loops int64
	// Time is the inclusive wall time spent in the operator's Open and
	// Next calls, children included.
	Time time.Duration
}

// ExecStats maps each plan node to its collected runtime statistics. A nil
// map means "no instrumentation".
type ExecStats map[*Node]*OpStats

// instrIter decorates one operator iterator with statistics collection.
type instrIter struct {
	child rowIter
	st    *OpStats
}

func (it *instrIter) Open() error {
	it.st.Loops++
	start := time.Now()
	err := it.child.Open()
	it.st.Time += time.Since(start)
	return err
}

func (it *instrIter) Next() (storage.Row, bool, error) {
	start := time.Now()
	r, ok, err := it.child.Next()
	it.st.Time += time.Since(start)
	if ok {
		it.st.Rows++
	}
	return r, ok, err
}

func (it *instrIter) Close() error { return it.child.Close() }

// ExecPlanInstrumented runs a physical plan through the streaming executor
// with per-operator instrumentation enabled, returning the result rows and
// the collected statistics.
func (e *Engine) ExecPlanInstrumented(n *Node) ([]storage.Row, ExecStats, error) {
	st := make(ExecStats)
	b := &ibuild{e: e, wrap: func(pn *Node, it rowIter) rowIter {
		os := st[pn]
		if os == nil {
			os = &OpStats{}
			st[pn] = os
		}
		return &instrIter{child: it, st: os}
	}}
	it, err := b.build(n)
	if err != nil {
		return nil, nil, err
	}
	defer it.Close()
	if err := it.Open(); err != nil {
		return nil, nil, err
	}
	var out []storage.Row
	for {
		r, ok, err := it.Next()
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			return out, st, nil
		}
		out = append(out, r)
	}
}

// QueryResult bundles an executed, projected SELECT with the physical plan
// that produced it and the plan's runtime statistics — everything the
// serving layer's /v1/query path needs in one call.
type QueryResult struct {
	Result  *Result
	Plan    *Node
	Stats   ExecStats
	Elapsed time.Duration
}

// QueryInstrumented parses, plans, and executes a SELECT with runtime
// instrumentation, then projects the final output columns.
func (e *Engine) QueryInstrumented(sql string) (*QueryResult, error) {
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		return nil, err
	}
	pl, err := e.planSelect(sel)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	rows, st, err := e.ExecPlanInstrumented(pl)
	elapsed := time.Since(start)
	if err != nil {
		return nil, err
	}
	res, err := e.project(sel, pl, rows)
	if err != nil {
		return nil, err
	}
	return &QueryResult{Result: res, Plan: pl, Stats: st, Elapsed: elapsed}, nil
}

// ToPlanNode converts a physical plan directly into the vendor-neutral
// operator tree (Source "native") without serializing to any EXPLAIN
// format. The emitted names and attributes match what parsing the
// engine's own PostgreSQL-style EXPLAIN JSON would produce, so narrations
// are identical whichever path a plan took — the differential test in
// bridge_test.go pins this.
func ToPlanNode(n *Node) *plan.Node { return ToPlanNodeStats(n, nil) }

// ToPlanNodeStats is ToPlanNode plus actual-stats annotation: when st has
// an entry for a node, the standardized AttrActualRows / AttrLoops /
// AttrTimeMs attributes are attached. st may be nil.
func ToPlanNodeStats(n *Node, st ExecStats) *plan.Node {
	if n == nil {
		return nil
	}
	p := &plan.Node{
		Name:   n.Op.Name(),
		Source: "native",
		Rows:   n.EstRows,
		Cost:   round2(n.EstCost),
	}
	switch n.Op {
	case OpSeqScan:
		p.SetAttr(plan.AttrRelation, n.Relation)
		p.SetAttr(plan.AttrAlias, aliasOr(n))
		p.SetAttr(plan.AttrFilter, condText(n.Filter))
	case OpIndexScan:
		p.SetAttr(plan.AttrRelation, n.Relation)
		p.SetAttr(plan.AttrAlias, aliasOr(n))
		p.SetAttr(plan.AttrIndexName, n.IndexName)
		p.SetAttr(plan.AttrIndexCond, condText(n.IndexCond))
		p.SetAttr(plan.AttrFilter, condText(n.Filter))
	case OpHashJoin, OpMergeJoin, OpNestedLoop:
		p.SetAttr(plan.AttrJoinCond, condText(n.JoinCond))
		p.SetAttr(plan.AttrFilter, condText(n.Filter))
		if n.JoinType == sqlparser.LeftJoin {
			p.SetAttr("jointype", "Left")
		}
	case OpSort, OpUnique:
		p.SetAttr(plan.AttrSortKey, strings.Join(sortKeyTexts(n.SortKeys), ", "))
	case OpAggregate, OpHashAggregate, OpGroupAggregate:
		p.SetAttr(plan.AttrGroupKey, strings.Join(groupKeyTexts(n.GroupKeys), ", "))
		p.SetAttr(plan.AttrFilter, condText(n.HavingFilter))
		switch n.Op {
		case OpAggregate:
			p.SetAttr(plan.AttrStrategy, "Plain")
		case OpHashAggregate:
			p.SetAttr(plan.AttrStrategy, "Hashed")
		case OpGroupAggregate:
			p.SetAttr(plan.AttrStrategy, "Sorted")
		}
	}
	if os := st[n]; os != nil {
		p.SetAttr(plan.AttrActualRows, strconv.FormatInt(os.Rows, 10))
		p.SetAttr(plan.AttrLoops, strconv.FormatInt(os.Loops, 10))
		p.SetAttr(plan.AttrTimeMs, strconv.FormatFloat(float64(os.Time)/float64(time.Millisecond), 'f', 3, 64))
	}
	for _, c := range n.Children {
		p.Children = append(p.Children, ToPlanNodeStats(c, st))
	}
	return p
}

// ExplainNative serializes the plan in the engine's native dialect — the
// lossless JSON rendering of the bridged tree, including actual-stats
// attributes when st is non-nil. plan.ParseNativeJSON inverts it exactly.
func ExplainNative(n *Node, st ExecStats) (string, error) {
	return plan.FormatNative(ToPlanNodeStats(n, st))
}
