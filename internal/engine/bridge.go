package engine

// bridge.go is the native engine↔plan bridge: it converts the engine's
// physical plan directly into the vendor-neutral plan.Node tree the
// narrator consumes (no EXPLAIN-text round-trip), and provides the opt-in
// iterator instrumentation that annotates that tree with per-operator
// runtime statistics — PostgreSQL's EXPLAIN ANALYZE semantics.
//
// The instrumentation contract:
//
//   - Collection is opt-in per execution. The normal path (Engine.Exec,
//     execStream) runs the vectorized batch pipeline with no wrap hook, so
//     a disabled run pays zero extra allocations and zero extra branches —
//     the pipeline is the identical object graph the allocation guards in
//     alloc_test.go measure.
//   - When enabled (ExecPlanInstrumented, QueryInstrumented, EXPLAIN
//     ANALYZE), serial plans route to the row-at-a-time pipeline and every
//     plan operator's iterator is wrapped in an instrIter that counts Open
//     calls (loops), rows returned by Next (actual rows), and inclusive
//     wall time spent inside Open/Next — inclusive meaning a parent's time
//     contains its children's, exactly as PostgreSQL reports actual time.
//     Per-row wrapping keeps actual rows exact at every operator, which
//     batch-boundary counting could not guarantee; the differential suite
//     pins both pipelines to identical results, so the instrumented
//     actuals describe the same query the batch path executes.
//   - Parallel plans (driver DOP >= 2, parallel.go) cannot run on the row
//     pipeline, so they execute the vectorized exchange with every batch
//     operator wrapped in an instrVecIter. Its counters are atomic: the
//     workers' clones of one operator share a single OpStats, so Rows and
//     Time are exact totals across workers (time sums busy time, like CPU
//     time). Loops are reported as 1 for these operators — per-morsel
//     pipeline restarts are scheduling, not EXPLAIN loops — and the driver
//     scan's stats additionally carry the worker count and per-worker
//     rows/time breakdown (OpStats.Workers / PerWorker).
//   - Actual rows are totals across all loops, matching EXPLAIN ANALYZE;
//     pass-through operators (Hash, Materialize) get their own wrapper, so
//     a Hash node reports the build-side row count.
//   - Whenever a plan was considered for parallelism, the driver's actual
//     row count is fed back through the DOP policy: if the actuals would
//     have earned more workers than the estimate did, WantedWorkers
//     records the missed DOP and the bridged tree carries
//     plan.AttrWorkersWanted — the narrator's "a mis-estimate kept this
//     scan under-parallelized" signal.
//   - Wall time is the only non-deterministic statistic; the plan layer
//     excludes AttrTimeMs from the canonical serialization so
//     actuals-annotated plans remain cacheable by fingerprint.

import (
	"strconv"
	"strings"
	"time"

	"lantern/internal/plan"
	"lantern/internal/sqlparser"
	"lantern/internal/storage"
)

// OpStats is the runtime statistics of one plan operator.
type OpStats struct {
	// Rows is the total number of rows the operator produced across all
	// loops (summed across workers in a parallel region).
	Rows int64
	// Loops counts how many times the operator was (re)started (Open
	// calls). Operators inside a parallel region report 1.
	Loops int64
	// Time is the inclusive wall time spent in the operator's Open and
	// Next calls, children included. In a parallel region it sums the
	// workers' busy time, like CPU time.
	Time time.Duration
	// Workers is the degree of parallelism the operator actually ran with;
	// 0 or 1 means serial. Set only on the driver scan of a parallel plan
	// (or a plan that was considered and kept serial).
	Workers int64
	// WantedWorkers is the DOP the policy would have chosen from the
	// actual row count, recorded only when it exceeds Workers — i.e. when
	// a cardinality under-estimate cost parallelism.
	WantedWorkers int64
	// PerWorker is the per-worker rows/busy-time breakdown of a parallel
	// driver scan, indexed by worker id.
	PerWorker []WorkerStat
	// SegsScanned and SegsPruned count the sealed column segments a
	// sequential scan examined versus skipped outright via zone maps
	// (totals across loops and workers). Both stay 0 for tables whose rows
	// all live in the unsealed tail, and for non-scan operators.
	SegsScanned int64
	SegsPruned  int64
}

// WorkerStat is one worker's share of a parallel operator's work.
type WorkerStat struct {
	Rows int64
	Time time.Duration
}

// ExecStats maps each plan node to its collected runtime statistics. A nil
// map means "no instrumentation".
type ExecStats map[*Node]*OpStats

// instrIter decorates one operator iterator with statistics collection.
type instrIter struct {
	child rowIter
	st    *OpStats
}

func (it *instrIter) Open() error {
	it.st.Loops++
	start := time.Now()
	err := it.child.Open()
	it.st.Time += time.Since(start)
	return err
}

func (it *instrIter) Next() (storage.Row, bool, error) {
	start := time.Now()
	r, ok, err := it.child.Next()
	it.st.Time += time.Since(start)
	if ok {
		it.st.Rows++
	}
	return r, ok, err
}

func (it *instrIter) Close() error { return it.child.Close() }

// ExecPlanInstrumented runs a physical plan with per-operator
// instrumentation enabled, returning the result rows and the collected
// statistics. Serial plans run the row-at-a-time executor (exact per-row
// actuals); parallel plans run the vectorized exchange with atomic batch
// counters (see the header).
func (e *Engine) ExecPlanInstrumented(n *Node) ([]storage.Row, ExecStats, error) {
	if sh := e.activeParShape(n); sh != nil {
		return e.execPlanInstrumentedVec(n, sh)
	}
	st := make(ExecStats)
	b := &ibuild{e: e, stats: st.get, wrap: func(pn *Node, it rowIter) rowIter {
		return &instrIter{child: it, st: st.get(pn)}
	}}
	it, err := b.build(n)
	if err != nil {
		return nil, nil, err
	}
	defer it.Close()
	if err := it.Open(); err != nil {
		return nil, nil, err
	}
	var out []storage.Row
	for {
		r, ok, err := it.Next()
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			e.annotateWorkerStats(n, st)
			return out, st, nil
		}
		out = append(out, r)
	}
}

// get returns (allocating if needed) the stats slot for a node.
func (st ExecStats) get(n *Node) *OpStats {
	os := st[n]
	if os == nil {
		os = &OpStats{}
		st[n] = os
	}
	return os
}

// execPlanInstrumentedVec is the instrumented runner for parallel plans:
// the vectorized pipeline with every operator wrapped in an instrVecIter
// (atomic counters shared across worker clones).
func (e *Engine) execPlanInstrumentedVec(n *Node, sh *parShape) ([]storage.Row, ExecStats, error) {
	st := make(ExecStats)
	v := e.newVBuild(sh, st.get)
	it, err := v.build(n)
	if err != nil {
		return nil, nil, err
	}
	defer it.Close()
	if err := it.Open(); err != nil {
		return nil, nil, err
	}
	var out []storage.Row
	for {
		b, err := it.NextBatch()
		if err != nil {
			return nil, nil, err
		}
		if b == nil {
			e.annotateWorkerStats(n, st)
			return out, st, nil
		}
		out = append(out, b...)
	}
}

// annotateWorkerStats normalizes parallel-run statistics after execution:
// batch-instrumented operators never count loops, so any touched stats
// entry without one gets Loops = 1; and when the plan was considered for
// parallelism (driver DOP >= 1), the driver's actual row count is fed back
// through the DOP policy to expose what a correct estimate would have
// chosen (narrated via AttrWorkersWanted when larger).
func (e *Engine) annotateWorkerStats(n *Node, st ExecStats) {
	for _, os := range st {
		if os.Loops == 0 {
			os.Loops = 1
		}
	}
	var driver *Node
	n.Walk(func(x *Node) {
		if driver == nil && x.DOP >= 1 {
			driver = x
		}
	})
	if driver == nil {
		return
	}
	os := st[driver]
	if os == nil {
		return
	}
	if os.Workers == 0 {
		os.Workers = int64(driver.DOP)
	}
	if wanted := int64(e.dopForRows(float64(os.Rows))); wanted > os.Workers {
		os.WantedWorkers = wanted
	}
}

// QueryResult bundles an executed, projected SELECT with the physical plan
// that produced it and the plan's runtime statistics — everything the
// serving layer's /v1/query path needs in one call.
type QueryResult struct {
	Result  *Result
	Plan    *Node
	Stats   ExecStats
	Elapsed time.Duration
}

// QueryInstrumented parses, plans, and executes a SELECT with runtime
// instrumentation, then projects the final output columns.
func (e *Engine) QueryInstrumented(sql string) (*QueryResult, error) {
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		return nil, err
	}
	pl, err := e.planSelect(sel)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	rows, st, err := e.ExecPlanInstrumented(pl)
	elapsed := time.Since(start)
	if err != nil {
		return nil, err
	}
	res, err := e.project(sel, pl, rows)
	if err != nil {
		return nil, err
	}
	return &QueryResult{Result: res, Plan: pl, Stats: st, Elapsed: elapsed}, nil
}

// ToPlanNode converts a physical plan directly into the vendor-neutral
// operator tree (Source "native") without serializing to any EXPLAIN
// format. The emitted names and attributes match what parsing the
// engine's own PostgreSQL-style EXPLAIN JSON would produce, so narrations
// are identical whichever path a plan took — the differential test in
// bridge_test.go pins this.
func ToPlanNode(n *Node) *plan.Node { return ToPlanNodeStats(n, nil) }

// ToPlanNodeStats is ToPlanNode plus actual-stats annotation: when st has
// an entry for a node, the standardized AttrActualRows / AttrLoops /
// AttrTimeMs attributes are attached. st may be nil.
func ToPlanNodeStats(n *Node, st ExecStats) *plan.Node {
	if n == nil {
		return nil
	}
	p := &plan.Node{
		Name:   n.Op.Name(),
		Source: "native",
		Rows:   n.EstRows,
		Cost:   round2(n.EstCost),
	}
	switch n.Op {
	case OpSeqScan:
		p.SetAttr(plan.AttrRelation, n.Relation)
		p.SetAttr(plan.AttrAlias, aliasOr(n))
		p.SetAttr(plan.AttrFilter, condText(n.Filter))
	case OpIndexScan:
		p.SetAttr(plan.AttrRelation, n.Relation)
		p.SetAttr(plan.AttrAlias, aliasOr(n))
		p.SetAttr(plan.AttrIndexName, n.IndexName)
		p.SetAttr(plan.AttrIndexCond, condText(n.IndexCond))
		p.SetAttr(plan.AttrFilter, condText(n.Filter))
	case OpHashJoin, OpMergeJoin, OpNestedLoop:
		p.SetAttr(plan.AttrJoinCond, condText(n.JoinCond))
		p.SetAttr(plan.AttrFilter, condText(n.Filter))
		if n.JoinType == sqlparser.LeftJoin {
			p.SetAttr("jointype", "Left")
		}
	case OpSort, OpUnique:
		p.SetAttr(plan.AttrSortKey, strings.Join(sortKeyTexts(n.SortKeys), ", "))
	case OpAggregate, OpHashAggregate, OpGroupAggregate:
		p.SetAttr(plan.AttrGroupKey, strings.Join(groupKeyTexts(n.GroupKeys), ", "))
		p.SetAttr(plan.AttrFilter, condText(n.HavingFilter))
		switch n.Op {
		case OpAggregate:
			p.SetAttr(plan.AttrStrategy, "Plain")
		case OpHashAggregate:
			p.SetAttr(plan.AttrStrategy, "Hashed")
		case OpGroupAggregate:
			p.SetAttr(plan.AttrStrategy, "Sorted")
		}
	}
	if os := st[n]; os != nil {
		p.SetAttr(plan.AttrActualRows, strconv.FormatInt(os.Rows, 10))
		p.SetAttr(plan.AttrLoops, strconv.FormatInt(os.Loops, 10))
		p.SetAttr(plan.AttrTimeMs, strconv.FormatFloat(float64(os.Time)/float64(time.Millisecond), 'f', 3, 64))
		// Worker attributes only appear when they say something: a serial
		// run (Workers <= 1) with no missed parallelism stays byte-identical
		// to pre-parallelism plans, keeping goldens and fingerprints stable.
		if os.Workers >= 2 {
			p.SetAttr(plan.AttrWorkers, strconv.FormatInt(os.Workers, 10))
		}
		if os.WantedWorkers > os.Workers && os.WantedWorkers >= 2 {
			p.SetAttr(plan.AttrWorkersWanted, strconv.FormatInt(os.WantedWorkers, 10))
		}
		// Segment attributes only appear once a scan has seen a sealed
		// segment: tables living entirely in the row-major tail keep
		// pre-segment plan texts.
		if os.SegsScanned+os.SegsPruned > 0 {
			p.SetAttr(plan.AttrSegments, strconv.FormatInt(os.SegsScanned+os.SegsPruned, 10))
			p.SetAttr(plan.AttrSegmentsPruned, strconv.FormatInt(os.SegsPruned, 10))
		}
	}
	for _, c := range n.Children {
		p.Children = append(p.Children, ToPlanNodeStats(c, st))
	}
	return p
}

// ExplainNative serializes the plan in the engine's native dialect — the
// lossless JSON rendering of the bridged tree, including actual-stats
// attributes when st is non-nil. plan.ParseNativeJSON inverts it exactly.
func ExplainNative(n *Node, st ExecStats) (string, error) {
	return plan.FormatNative(ToPlanNodeStats(n, st))
}
