package engine

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"lantern/internal/plan"
	"lantern/internal/sqlparser"
)

// parTestConfig forces the DOP policy up so even small test tables run
// parallel: 4 workers (oversubscribing a 1-CPU runner is deliberate) and
// one row per worker-share, which also shrinks morsels to single rows so
// every merge path sees genuinely multi-morsel input.
func parTestConfig() Config {
	cfg := DefaultConfig()
	cfg.MaxQueryParallelism = 4
	cfg.ParallelRowsPerWorker = 1
	return cfg
}

// bigTable creates a 3000-row table straddling many morsels and batches.
func bigTable(t *testing.T, e *Engine) {
	t.Helper()
	mustExec(t, e, "CREATE TABLE big (id INTEGER, grp INTEGER, val INTEGER)")
	var sb strings.Builder
	const n = 3000
	for i := 0; i < n; i++ {
		if sb.Len() == 0 {
			sb.WriteString("INSERT INTO big VALUES ")
		} else {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, %d, %d)", i, i%7, (i*37)%1000)
		if (i+1)%250 == 0 || i == n-1 {
			mustExec(t, e, sb.String())
			sb.Reset()
		}
	}
}

// TestParallelDOPPolicy pins the DOP policy: one worker per
// ParallelRowsPerWorker estimated rows, clamped to MaxQueryParallelism,
// with 0 meaning GOMAXPROCS and negative values disabling parallelism.
func TestParallelDOPPolicy(t *testing.T) {
	e := &Engine{Cfg: DefaultConfig()}
	e.Cfg.MaxQueryParallelism = 4
	e.Cfg.ParallelRowsPerWorker = 1000
	for _, tc := range []struct {
		rows float64
		want int
	}{
		{0, 1}, {500, 1}, {1000, 1}, {1001, 2}, {2500, 3}, {4000, 4}, {1e9, 4},
	} {
		if got := e.dopForRows(tc.rows); got != tc.want {
			t.Errorf("dopForRows(%v) = %d, want %d", tc.rows, got, tc.want)
		}
	}
	e.Cfg.MaxQueryParallelism = -1
	if got := e.dopForRows(1e9); got != 1 {
		t.Errorf("negative MaxQueryParallelism: dopForRows = %d, want 1", got)
	}
	e.Cfg.MaxQueryParallelism = 0
	want := runtime.GOMAXPROCS(0)
	if want < 2 {
		want = 1 // policy floor: a single-proc runner stays serial
	}
	if got := e.dopForRows(1e9); got != want {
		t.Errorf("MaxQueryParallelism=0: dopForRows = %d, want GOMAXPROCS=%d", got, want)
	}
}

// TestParallelPlanAnnotation checks that the planner marks the driver scan
// under a forced-up config and — critically for ExecLimitShortCircuit-style
// workloads — keeps the default config's tiny-table plans serial.
func TestParallelPlanAnnotation(t *testing.T) {
	e := testDB(t, parTestConfig())
	res, err := e.QueryInstrumented("SELECT o_orderkey FROM orders")
	if err != nil {
		t.Fatal(err)
	}
	var driver *Node
	res.Plan.Walk(func(n *Node) {
		if driver == nil && n.DOP >= 2 {
			driver = n
		}
	})
	if driver == nil {
		t.Fatal("forced config: no operator marked parallel")
	}
	if driver.Op != OpSeqScan {
		t.Errorf("parallel driver op = %v, want OpSeqScan", driver.Op)
	}

	// Default policy: 60-row orders is far below rows-per-worker, so the
	// plan must not even consider parallelism beyond marking the decision.
	ser := testDB(t, DefaultConfig())
	sres, err := ser.QueryInstrumented("SELECT o_orderkey FROM orders")
	if err != nil {
		t.Fatal(err)
	}
	sres.Plan.Walk(func(n *Node) {
		if n.DOP >= 2 {
			t.Errorf("default config: operator %v marked DOP=%d on a 60-row table", n.Op, n.DOP)
		}
	})
}

// TestParallelGatherOrderMatchesSerial pins the strongest form of the
// differential guarantee: because gather emits morsel outputs in morsel
// order, a parallel run is row-for-row identical to the serial run even
// WITHOUT an ORDER BY.
func TestParallelGatherOrderMatchesSerial(t *testing.T) {
	par := testDB(t, parTestConfig())
	bigTable(t, par)
	ser := par.Session()
	ser.Cfg.MaxQueryParallelism = -1
	queries := []string{
		"SELECT id FROM big",
		"SELECT id, val FROM big WHERE val < 500",
		"SELECT id FROM big LIMIT 100 OFFSET 2000",
		"SELECT b.id, c.c_name FROM big b, customer c WHERE b.grp = c.c_custkey",
		"SELECT DISTINCT grp FROM big",
		"SELECT grp, COUNT(*), SUM(val), MIN(val), MAX(val) FROM big GROUP BY grp",
		"SELECT id FROM big ORDER BY val, id LIMIT 50",
		"SELECT val FROM big ORDER BY val DESC",
	}
	for _, q := range queries {
		pres := mustExec(t, par, q)
		sres := mustExec(t, ser, q)
		got, want := rowStrings(pres.Rows), rowStrings(sres.Rows)
		if len(got) != len(want) {
			t.Fatalf("%q: parallel %d rows, serial %d", q, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%q: row %d differs:\nparallel: %s\nserial:   %s", q, i, got[i], want[i])
			}
		}
	}
}

// TestParallelInstrumentedWorkerStats checks the per-worker actuals a
// parallel run leaves behind: the driver records the worker count, the
// per-worker row shares sum to the operator total, loops collapse to 1
// for the whole parallel region, and the bridged vendor-neutral tree
// carries the workers attribute RULE-LANTERN narrates.
func TestParallelInstrumentedWorkerStats(t *testing.T) {
	e := testDB(t, parTestConfig())
	bigTable(t, e)
	e.Cfg.ParallelRowsPerWorker = 100 // 3000 rows -> 30 morsels, DOP 4
	res, err := e.QueryInstrumented("SELECT grp, COUNT(*) FROM big GROUP BY grp")
	if err != nil {
		t.Fatal(err)
	}
	var driver *Node
	res.Plan.Walk(func(n *Node) {
		if driver == nil && n.DOP >= 2 {
			driver = n
		}
	})
	if driver == nil {
		t.Fatal("no parallel driver in plan")
	}
	os := res.Stats[driver]
	if os == nil {
		t.Fatal("driver has no stats")
	}
	if os.Workers != 4 {
		t.Errorf("driver Workers = %d, want 4", os.Workers)
	}
	if len(os.PerWorker) != 4 {
		t.Fatalf("PerWorker len = %d, want 4", len(os.PerWorker))
	}
	var sum int64
	for _, w := range os.PerWorker {
		sum += w.Rows
	}
	if sum != os.Rows {
		t.Errorf("per-worker rows sum %d != driver rows %d", sum, os.Rows)
	}
	if os.Rows != 3000 {
		t.Errorf("driver rows = %d, want 3000", os.Rows)
	}
	for n, st := range res.Stats {
		if st.Loops != 1 {
			t.Errorf("op %v: Loops = %d, want 1 in a parallel region", n.Op, st.Loops)
		}
	}
	bridged := ToPlanNodeStats(res.Plan, res.Stats)
	found := false
	bridged.Walk(func(n *plan.Node) {
		if n.Attr(plan.AttrWorkers) == "4" {
			found = true
		}
	})
	if !found {
		t.Error("bridged plan has no workers=4 attribute")
	}
}

// TestParallelWantedWorkersMisEstimate pins the narration feedback loop:
// an estimator-opaque predicate makes the planner underestimate the scan
// (defaultSel = 1/3), the DOP policy therefore stays serial, and
// instrumentation re-applies the policy to the actual row count and
// surfaces the DOP the engine should have used.
func TestParallelWantedWorkersMisEstimate(t *testing.T) {
	e := testDB(t, parTestConfig())
	bigTable(t, e)
	// 3000 rows, est 1000 after the opaque filter: est DOP = ceil(1000/1500)
	// = 1 (serial), actual DOP would be ceil(3000/1500) = 2.
	e.Cfg.ParallelRowsPerWorker = 1500
	res, err := e.QueryInstrumented("SELECT id FROM big WHERE val + 0 >= 0")
	if err != nil {
		t.Fatal(err)
	}
	var driver *Node
	res.Plan.Walk(func(n *Node) {
		if driver == nil && n.DOP >= 1 {
			driver = n
		}
	})
	if driver == nil {
		t.Fatal("no operator was considered for parallelism")
	}
	if driver.DOP != 1 {
		t.Fatalf("driver DOP = %d, want 1 (under-estimated plan must stay serial)", driver.DOP)
	}
	os := res.Stats[driver]
	if os == nil {
		t.Fatal("driver has no stats")
	}
	if os.Workers != 1 {
		t.Errorf("Workers = %d, want 1", os.Workers)
	}
	if os.WantedWorkers != 2 {
		t.Errorf("WantedWorkers = %d, want 2", os.WantedWorkers)
	}
	bridged := ToPlanNodeStats(res.Plan, res.Stats)
	var wanted, workers string
	bridged.Walk(func(n *plan.Node) {
		if v := n.Attr(plan.AttrWorkersWanted); v != "" {
			wanted = v
		}
		if v := n.Attr(plan.AttrWorkers); v != "" {
			workers = v
		}
	})
	if wanted != "2" {
		t.Errorf("bridged workerswanted = %q, want \"2\"", wanted)
	}
	if workers != "" {
		t.Errorf("bridged workers = %q, want unset on a serial run", workers)
	}
}

// TestParallelStreamCloseDrainsWorkers proves the cancellation path: a
// client that abandons a parallel stream mid-way must leave no worker
// goroutines behind, and Next after Close must report the abandonment
// rather than a clean end of stream.
func TestParallelStreamCloseDrainsWorkers(t *testing.T) {
	e := testDB(t, parTestConfig())
	bigTable(t, e)
	e.Cfg.ParallelRowsPerWorker = 100

	before := runtime.NumGoroutine()
	q, err := e.QueryStreamInstrumented("SELECT id, val FROM big WHERE val >= 0")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, ok, err := q.Next(); err != nil || !ok {
			t.Fatalf("row %d: ok=%v err=%v", i, ok, err)
		}
	}
	if err := q.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, _, err := q.Next(); err != ErrAbandonedStream {
		t.Errorf("Next after Close: err = %v, want ErrAbandonedStream", err)
	}
	if q.Complete() {
		t.Error("abandoned stream reports Complete")
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("worker goroutines leaked: %d running, %d before the stream", runtime.NumGoroutine(), before)
		}
		time.Sleep(time.Millisecond)
	}

	// Clean drain: every worker exits, actuals are complete, and the
	// driver's worker count lands in the stream's Finish stats.
	q, err = e.QueryStreamInstrumented("SELECT id FROM big")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, ok, err := q.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	if n != 3000 {
		t.Fatalf("drained %d rows, want 3000", n)
	}
	if !q.Complete() {
		t.Fatal("drained stream not Complete")
	}
	pl, st := q.Finish()
	var workers int64
	pl.Walk(func(nd *Node) {
		if os := st[nd]; os != nil && os.Workers > workers {
			workers = os.Workers
		}
	})
	if workers != 4 {
		t.Errorf("Finish stats workers = %d, want 4", workers)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("worker goroutines leaked after clean drain: %d running, %d before", runtime.NumGoroutine(), before)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestParallelConcurrentQueriesStress runs inter-query concurrency over
// intra-query parallelism: many sessions over one shared catalog, each
// running forced-parallel queries whose results are pinned against a
// serial run up front. Under -race this exercises the shared hash-build,
// dispenser, and exchange paths for unsynchronized access.
func TestParallelConcurrentQueriesStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	base := testDB(t, parTestConfig())
	bigTable(t, base)
	queries := []string{
		"SELECT grp, COUNT(*), SUM(val) FROM big GROUP BY grp",
		"SELECT id FROM big WHERE val < 250",
		"SELECT b.id, c.c_name FROM big b, customer c WHERE b.grp = c.c_custkey AND b.val < 100",
		"SELECT id FROM big ORDER BY val, id LIMIT 40",
		"SELECT COUNT(*) FROM big",
		"SELECT DISTINCT grp FROM big ORDER BY grp",
	}
	ser := base.Session()
	ser.Cfg.MaxQueryParallelism = -1
	want := make([][]string, len(queries))
	for i, q := range queries {
		want[i] = rowStrings(mustExec(t, ser, q).Rows)
	}

	const goroutines = 8
	const iters = 25
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sess := base.Session()
			sess.Cfg.ParallelRowsPerWorker = 50 + g*37 // vary morsel geometry per session
			for i := 0; i < iters; i++ {
				qi := (g + i) % len(queries)
				res, err := sess.Exec(queries[qi])
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				got := rowStrings(res.Rows)
				if len(got) != len(want[qi]) {
					t.Errorf("goroutine %d %q: %d rows, want %d", g, queries[qi], len(got), len(want[qi]))
					return
				}
				for j := range got {
					if got[j] != want[qi][j] {
						t.Errorf("goroutine %d %q: row %d = %s, want %s", g, queries[qi], j, got[j], want[qi][j])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestAdaptiveFirstBatch pins the PR 7 tradeoff fix: the vectorized scan's
// first batch is 64 rows (so a tiny LIMIT never pays a full 1024-row
// batch), growing 4x per batch up to the full batch size.
func TestAdaptiveFirstBatch(t *testing.T) {
	e := testDB(t, DefaultConfig())
	bigTable(t, e)
	sel, err := sqlparser.ParseSelect("SELECT id FROM big")
	if err != nil {
		t.Fatal(err)
	}
	pl, err := e.planSelect(sel)
	if err != nil {
		t.Fatal(err)
	}
	it, err := e.buildVec(pl)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	if err := it.Open(); err != nil {
		t.Fatal(err)
	}
	wantSizes := []int{64, 256, 1024, 1024, 632}
	total := 0
	for i, want := range wantSizes {
		b, err := it.NextBatch()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			t.Fatalf("batch %d: unexpected end of stream after %d rows", i, total)
		}
		if len(b) != want {
			t.Fatalf("batch %d: %d rows, want %d", i, len(b), want)
		}
		total += len(b)
	}
	if b, err := it.NextBatch(); err != nil || b != nil {
		t.Fatalf("after %d rows: batch=%v err=%v, want end of stream", total, b, err)
	}
}
