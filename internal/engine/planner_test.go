package engine

import (
	"fmt"
	"strings"
	"testing"

	"lantern/internal/sqlparser"
)

// statsEngine builds a table with controlled value distributions for
// selectivity tests: ids 1..1000 (unique), grp 0..9 (10 distinct),
// val uniform 0..99.
func statsEngine(t *testing.T) *Engine {
	t.Helper()
	e := NewDefault()
	if _, err := e.ExecScript(`CREATE TABLE s (id INTEGER, grp INTEGER, val FLOAT);
		CREATE INDEX s_id ON s (id);`); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 1000; i++ {
		if _, err := e.Exec(fmt.Sprintf("INSERT INTO s VALUES (%d, %d, %d.0)", i, i%10, i%100)); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

// estRowsOf plans a query and returns the root's row estimate.
func estRowsOf(t *testing.T, e *Engine, q string) float64 {
	t.Helper()
	p, err := e.PlanSQL(q)
	if err != nil {
		t.Fatal(err)
	}
	return p.EstRows
}

func TestEqualitySelectivityUsesNDV(t *testing.T) {
	e := statsEngine(t)
	// grp = 3 has NDV 10 -> ~100 rows expected.
	got := estRowsOf(t, e, "SELECT * FROM s WHERE grp = 3")
	if got < 50 || got > 200 {
		t.Errorf("grp=3 estimate = %.0f, want ~100", got)
	}
	// id = 3 has NDV 1000 -> ~1 row expected.
	got = estRowsOf(t, e, "SELECT * FROM s WHERE id = 3")
	if got > 5 {
		t.Errorf("id=3 estimate = %.0f, want ~1", got)
	}
}

func TestRangeSelectivityInterpolates(t *testing.T) {
	e := statsEngine(t)
	// id < 250 covers ~25% of [1,1000].
	got := estRowsOf(t, e, "SELECT * FROM s WHERE id < 250")
	if got < 150 || got > 400 {
		t.Errorf("id<250 estimate = %.0f, want ~250", got)
	}
	// Flipped literal side must estimate the same way.
	flipped := estRowsOf(t, e, "SELECT * FROM s WHERE 250 > id")
	if flipped < 150 || flipped > 400 {
		t.Errorf("250>id estimate = %.0f, want ~250", flipped)
	}
}

func TestConjunctionMultipliesSelectivity(t *testing.T) {
	e := statsEngine(t)
	single := estRowsOf(t, e, "SELECT * FROM s WHERE grp = 3")
	double := estRowsOf(t, e, "SELECT * FROM s WHERE grp = 3 AND id < 500")
	if double >= single {
		t.Errorf("adding a conjunct should reduce the estimate: %.0f -> %.0f", single, double)
	}
}

func TestJoinCardinalityContainment(t *testing.T) {
	e := statsEngine(t)
	if _, err := e.ExecScript("CREATE TABLE d (k INTEGER)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := e.Exec(fmt.Sprintf("INSERT INTO d VALUES (%d)", i)); err != nil {
			t.Fatal(err)
		}
	}
	// s(1000) join d(10) on grp=k with NDVs 10/10: |s|*|d|/10 = 1000.
	got := estRowsOf(t, e, "SELECT * FROM s, d WHERE s.grp = d.k")
	if got < 400 || got > 2500 {
		t.Errorf("join estimate = %.0f, want ~1000", got)
	}
}

func TestDPPrefersSelectiveBuildSide(t *testing.T) {
	e := statsEngine(t)
	if _, err := e.ExecScript("CREATE TABLE big (k INTEGER, pad VARCHAR(10))"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if _, err := e.Exec(fmt.Sprintf("INSERT INTO big VALUES (%d, 'x')", i%10)); err != nil {
			t.Fatal(err)
		}
	}
	// The filtered small side should be the hash build input (the Hash
	// node's child), not the 2000-row side.
	p, err := e.PlanSQL("SELECT * FROM s, big WHERE s.grp = big.k AND s.id = 7")
	if err != nil {
		t.Fatal(err)
	}
	var hashBuildRel string
	p.Walk(func(n *Node) {
		if n.Op == OpHash && len(n.Children) == 1 {
			n.Children[0].Walk(func(c *Node) {
				if c.Relation != "" {
					hashBuildRel = c.Relation
				}
			})
		}
	})
	if hashBuildRel == "big" {
		t.Errorf("hash build side is the large unfiltered relation:\n%s", ExplainText(p))
	}
}

func TestIndexScanOnlyWhenSelective(t *testing.T) {
	e := statsEngine(t)
	// Highly selective: index scan.
	p, err := e.PlanSQL("SELECT * FROM s WHERE id = 7")
	if err != nil {
		t.Fatal(err)
	}
	if p.Op != OpIndexScan {
		t.Errorf("id=7 should use the index:\n%s", ExplainText(p))
	}
	// Unselective range: sequential scan wins.
	p, err = e.PlanSQL("SELECT * FROM s WHERE id > 5")
	if err != nil {
		t.Fatal(err)
	}
	usesIndex := false
	p.Walk(func(n *Node) {
		if n.Op == OpIndexScan {
			usesIndex = true
		}
	})
	if usesIndex {
		t.Errorf("id>5 (99.5%% of rows) should not use the index:\n%s", ExplainText(p))
	}
}

func TestIndexProvidesSortOrder(t *testing.T) {
	e := statsEngine(t)
	// ORDER BY on the indexed column with a selective range: if the
	// planner picks the index scan, no Sort node is needed.
	p, err := e.PlanSQL("SELECT id FROM s WHERE id < 20 ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	hasIndexScan, hasSort := false, false
	p.Walk(func(n *Node) {
		if n.Op == OpIndexScan {
			hasIndexScan = true
		}
		if n.Op == OpSort {
			hasSort = true
		}
	})
	if hasIndexScan && hasSort {
		t.Errorf("redundant sort over index order:\n%s", ExplainText(p))
	}
}

func TestGroupAggregateReusesSortOrder(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnableHashAgg = false
	e := New(cfg)
	if _, err := e.ExecScript(`CREATE TABLE g (a INTEGER, b INTEGER);
		INSERT INTO g VALUES (1, 1), (1, 2), (2, 3), (2, 4);`); err != nil {
		t.Fatal(err)
	}
	// GROUP BY a ORDER BY a: the aggregate's sort satisfies the ORDER BY,
	// so exactly one Sort node should appear.
	p, err := e.PlanSQL("SELECT a, COUNT(*) FROM g GROUP BY a ORDER BY a")
	if err != nil {
		t.Fatal(err)
	}
	sorts := 0
	p.Walk(func(n *Node) {
		if n.Op == OpSort {
			sorts++
		}
	})
	if sorts != 1 {
		t.Errorf("expected exactly 1 sort, got %d:\n%s", sorts, ExplainText(p))
	}
}

func TestPlanCostsMonotone(t *testing.T) {
	e := statsEngine(t)
	p, err := e.PlanSQL("SELECT grp, COUNT(*) FROM s WHERE val > 10 GROUP BY grp ORDER BY grp")
	if err != nil {
		t.Fatal(err)
	}
	// A parent's total cost includes its children's.
	p.Walk(func(n *Node) {
		for _, c := range n.Children {
			if c.EstCost > n.EstCost+1e-9 {
				t.Errorf("child cost %.2f exceeds parent %.2f (%s under %s)",
					c.EstCost, n.EstCost, c.Op.Name(), n.Op.Name())
			}
		}
	})
}

func TestEstimatesPositive(t *testing.T) {
	e := statsEngine(t)
	for _, q := range []string{
		"SELECT * FROM s",
		"SELECT * FROM s WHERE id = -5",
		"SELECT grp, COUNT(*) FROM s GROUP BY grp HAVING COUNT(*) > 1000000",
		"SELECT * FROM s WHERE val > 1000000",
	} {
		p, err := e.PlanSQL(q)
		if err != nil {
			t.Fatal(err)
		}
		p.Walk(func(n *Node) {
			if n.EstRows < 0 || n.EstCost < 0 {
				t.Errorf("%s: negative estimate on %s (%f rows, %f cost)",
					q, n.Op.Name(), n.EstRows, n.EstCost)
			}
		})
	}
}

func TestSyntacticPlanningPreservesLeftJoinOrder(t *testing.T) {
	e := statsEngine(t)
	if _, err := e.ExecScript(`CREATE TABLE r (k INTEGER); INSERT INTO r VALUES (1);`); err != nil {
		t.Fatal(err)
	}
	p, err := e.PlanSQL("SELECT * FROM s LEFT JOIN r ON s.grp = r.k")
	if err != nil {
		t.Fatal(err)
	}
	// Root must be a left-join node with s on the outer side.
	if p.JoinType != sqlparser.LeftJoin {
		t.Fatalf("root is not a left join:\n%s", ExplainText(p))
	}
	outerRel := ""
	p.Children[0].Walk(func(n *Node) {
		if n.Relation != "" && outerRel == "" {
			outerRel = n.Relation
		}
	})
	if outerRel != "s" {
		t.Errorf("outer side = %q, want s:\n%s", outerRel, ExplainText(p))
	}
}

func TestItemNameAndHeadline(t *testing.T) {
	e := statsEngine(t)
	p, err := e.PlanSQL("SELECT * FROM s WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	h := headline(p)
	if !strings.Contains(h, "on s") {
		t.Errorf("headline = %q", h)
	}
}
