package engine

// bind.go compiles sqlparser expressions into bound closures for the
// streaming executor (iter.go). Binding resolves every column reference to
// an ordinal once, when an operator is constructed, so per-row evaluation
// performs no schema scans, no FormatExpr-based computed-column probing,
// and no allocation beyond what the SQL semantics require (string
// concatenation, subquery execution). The tree-walking evaluator in
// expr.go remains the semantic reference used by the materializing
// executor; the differential tests assert the two agree.

import (
	"fmt"
	"strings"

	"lantern/internal/datum"
	"lantern/internal/sqlparser"
	"lantern/internal/storage"
)

// subqueryFn executes an uncorrelated subquery on behalf of an expression.
type subqueryFn func(*sqlparser.SelectStmt) ([]storage.Row, error)

// rowEnv is the runtime environment a bound expression reads from. left is
// the operator's current row. For join predicates bound with bindPairExpr,
// right holds the inner/build row, so conditions evaluate against a row
// pair without first concatenating it.
type rowEnv struct {
	left  storage.Row
	right storage.Row
}

// boundExpr is an expression compiled against a fixed schema.
type boundExpr func(env *rowEnv) (datum.D, error)

type binder struct {
	schema []colRef
	split  int // ordinals >= split read env.right[ord-split]
	sub    subqueryFn
}

// bindExpr compiles e against a single-row schema: all ordinals read
// env.left.
func bindExpr(e sqlparser.Expr, schema []colRef, sub subqueryFn) (boundExpr, error) {
	return (&binder{schema: schema, split: len(schema), sub: sub}).bind(e)
}

// bindPairExpr compiles e against the concatenation of two schemas; left
// ordinals read env.left, right ordinals read env.right. Join operators use
// this to evaluate residual and output filters on candidate pairs before
// paying for the joined row allocation.
func bindPairExpr(e sqlparser.Expr, left, right []colRef, sub subqueryFn) (boundExpr, error) {
	schema := make([]colRef, 0, len(left)+len(right))
	schema = append(schema, left...)
	schema = append(schema, right...)
	return (&binder{schema: schema, split: len(left), sub: sub}).bind(e)
}

// bindExprs binds a list of expressions against one schema.
func bindExprs(exprs []sqlparser.Expr, schema []colRef, sub subqueryFn) ([]boundExpr, error) {
	out := make([]boundExpr, len(exprs))
	for i, e := range exprs {
		b, err := bindExpr(e, schema, sub)
		if err != nil {
			return nil, err
		}
		out[i] = b
	}
	return out, nil
}

// colAt returns a closure reading ordinal i from the environment.
func (b *binder) colAt(i int) boundExpr {
	if i < b.split {
		return func(env *rowEnv) (datum.D, error) { return env.left[i], nil }
	}
	j := i - b.split
	return func(env *rowEnv) (datum.D, error) { return env.right[j], nil }
}

// errExpr defers an evaluation-time error (unknown function, aggregate
// misuse, arity mismatch) to the moment the expression is actually
// evaluated, matching the lazy evaluator: a never-taken CASE branch with a
// bad function call must not fail the query.
func errExpr(err error) boundExpr {
	return func(*rowEnv) (datum.D, error) { return datum.Null, err }
}

func (b *binder) bind(e sqlparser.Expr) (boundExpr, error) {
	// Computed columns shadow structural evaluation, exactly as in eval():
	// if the schema already carries this expression (aggregate output,
	// group key), read the materialized value.
	switch e.(type) {
	case *sqlparser.ColumnRef, *sqlparser.Literal:
		// fast paths below
	default:
		if i, ok := resolveComputed(b.schema, e); ok {
			return b.colAt(i), nil
		}
	}
	switch ex := e.(type) {
	case *sqlparser.Literal:
		v := ex.Value
		return func(*rowEnv) (datum.D, error) { return v, nil }, nil
	case *sqlparser.ColumnRef:
		i, err := resolve(b.schema, ex)
		if err != nil {
			return nil, err
		}
		return b.colAt(i), nil
	case *sqlparser.BinaryExpr:
		return b.bindBinary(ex)
	case *sqlparser.UnaryExpr:
		x, err := b.bind(ex.X)
		if err != nil {
			return nil, err
		}
		if ex.Op == '!' {
			return func(env *rowEnv) (datum.D, error) {
				v, err := x(env)
				if err != nil || v.IsNull() {
					return datum.Null, err
				}
				return datum.NewBool(!v.Bool()), nil
			}, nil
		}
		zero := datum.NewInt(0)
		return func(env *rowEnv) (datum.D, error) {
			v, err := x(env)
			if err != nil || v.IsNull() {
				return datum.Null, err
			}
			return datum.Arith('-', zero, v)
		}, nil
	case *sqlparser.LikeExpr:
		x, err := b.bind(ex.X)
		if err != nil {
			return nil, err
		}
		pat, err := b.bind(ex.Pattern)
		if err != nil {
			return nil, err
		}
		not := ex.Not
		return func(env *rowEnv) (datum.D, error) {
			s, err := x(env)
			if err != nil {
				return datum.Null, err
			}
			p, err := pat(env)
			if err != nil {
				return datum.Null, err
			}
			if s.IsNull() || p.IsNull() {
				return datum.Null, nil
			}
			res := datum.Like(s.Str(), p.Str())
			if not {
				res = !res
			}
			return datum.NewBool(res), nil
		}, nil
	case *sqlparser.BetweenExpr:
		x, err := b.bind(ex.X)
		if err != nil {
			return nil, err
		}
		lo, err := b.bind(ex.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := b.bind(ex.Hi)
		if err != nil {
			return nil, err
		}
		not := ex.Not
		return func(env *rowEnv) (datum.D, error) {
			v, err := x(env)
			if err != nil {
				return datum.Null, err
			}
			lv, err := lo(env)
			if err != nil {
				return datum.Null, err
			}
			hv, err := hi(env)
			if err != nil {
				return datum.Null, err
			}
			if v.IsNull() || lv.IsNull() || hv.IsNull() {
				return datum.Null, nil
			}
			res := datum.Compare(v, lv) >= 0 && datum.Compare(v, hv) <= 0
			if not {
				res = !res
			}
			return datum.NewBool(res), nil
		}, nil
	case *sqlparser.InExpr:
		return b.bindIn(ex)
	case *sqlparser.IsNullExpr:
		x, err := b.bind(ex.X)
		if err != nil {
			return nil, err
		}
		not := ex.Not
		return func(env *rowEnv) (datum.D, error) {
			v, err := x(env)
			if err != nil {
				return datum.Null, err
			}
			res := v.IsNull()
			if not {
				res = !res
			}
			return datum.NewBool(res), nil
		}, nil
	case *sqlparser.CaseExpr:
		type boundWhen struct{ cond, result boundExpr }
		whens := make([]boundWhen, len(ex.Whens))
		for i, w := range ex.Whens {
			c, err := b.bind(w.Cond)
			if err != nil {
				return nil, err
			}
			r, err := b.bind(w.Result)
			if err != nil {
				return nil, err
			}
			whens[i] = boundWhen{c, r}
		}
		var els boundExpr
		if ex.Else != nil {
			var err error
			els, err = b.bind(ex.Else)
			if err != nil {
				return nil, err
			}
		}
		return func(env *rowEnv) (datum.D, error) {
			for _, w := range whens {
				c, err := w.cond(env)
				if err != nil {
					return datum.Null, err
				}
				if truthy(c) {
					return w.result(env)
				}
			}
			if els != nil {
				return els(env)
			}
			return datum.Null, nil
		}, nil
	case *sqlparser.FuncCall:
		return b.bindFunc(ex)
	case *sqlparser.SubqueryExpr:
		run := b.lazySubquery(ex.Query)
		return func(*rowEnv) (datum.D, error) {
			rows, err := run()
			if err != nil {
				return datum.Null, err
			}
			if len(rows) == 0 {
				return datum.Null, nil
			}
			if len(rows) > 1 {
				return datum.Null, fmt.Errorf("engine: scalar subquery returned more than one row")
			}
			if len(rows[0]) != 1 {
				return datum.Null, fmt.Errorf("engine: scalar subquery must return one column")
			}
			return rows[0][0], nil
		}, nil
	case *sqlparser.ExistsExpr:
		run := b.lazySubquery(ex.Query)
		not := ex.Not
		return func(*rowEnv) (datum.D, error) {
			rows, err := run()
			if err != nil {
				return datum.Null, err
			}
			res := len(rows) > 0
			if not {
				res = !res
			}
			return datum.NewBool(res), nil
		}, nil
	}
	return nil, fmt.Errorf("engine: cannot evaluate expression %T", e)
}

// lazySubquery returns a runner that executes an uncorrelated subquery on
// first use and caches the result: within one statement the catalog is
// stable, so one evaluation per operator instance suffices (the reference
// evaluator re-runs it per row).
func (b *binder) lazySubquery(q *sqlparser.SelectStmt) func() ([]storage.Row, error) {
	sub := b.sub
	var rows []storage.Row
	var done bool
	return func() ([]storage.Row, error) {
		if done {
			return rows, nil
		}
		if sub == nil {
			return nil, fmt.Errorf("engine: subqueries are not available in this context")
		}
		r, err := sub(q)
		if err != nil {
			return nil, err
		}
		rows, done = r, true
		return rows, nil
	}
}

func (b *binder) bindBinary(ex *sqlparser.BinaryExpr) (boundExpr, error) {
	l, err := b.bind(ex.Left)
	if err != nil {
		return nil, err
	}
	r, err := b.bind(ex.Right)
	if err != nil {
		return nil, err
	}
	switch ex.Op {
	case sqlparser.OpAnd:
		return func(env *rowEnv) (datum.D, error) {
			lv, err := l(env)
			if err != nil {
				return datum.Null, err
			}
			if !lv.IsNull() && !lv.Bool() {
				return datum.NewBool(false), nil
			}
			rv, err := r(env)
			if err != nil {
				return datum.Null, err
			}
			if !rv.IsNull() && !rv.Bool() {
				return datum.NewBool(false), nil
			}
			if lv.IsNull() || rv.IsNull() {
				return datum.Null, nil
			}
			return datum.NewBool(true), nil
		}, nil
	case sqlparser.OpOr:
		return func(env *rowEnv) (datum.D, error) {
			lv, err := l(env)
			if err != nil {
				return datum.Null, err
			}
			if !lv.IsNull() && lv.Bool() {
				return datum.NewBool(true), nil
			}
			rv, err := r(env)
			if err != nil {
				return datum.Null, err
			}
			if !rv.IsNull() && rv.Bool() {
				return datum.NewBool(true), nil
			}
			if lv.IsNull() || rv.IsNull() {
				return datum.Null, nil
			}
			return datum.NewBool(false), nil
		}, nil
	case sqlparser.OpEq, sqlparser.OpNe, sqlparser.OpLt, sqlparser.OpLe, sqlparser.OpGt, sqlparser.OpGe:
		op := ex.Op
		return func(env *rowEnv) (datum.D, error) {
			lv, err := l(env)
			if err != nil {
				return datum.Null, err
			}
			rv, err := r(env)
			if err != nil {
				return datum.Null, err
			}
			if lv.IsNull() || rv.IsNull() {
				return datum.Null, nil
			}
			c := datum.Compare(lv, rv)
			var res bool
			switch op {
			case sqlparser.OpEq:
				res = c == 0
			case sqlparser.OpNe:
				res = c != 0
			case sqlparser.OpLt:
				res = c < 0
			case sqlparser.OpLe:
				res = c <= 0
			case sqlparser.OpGt:
				res = c > 0
			case sqlparser.OpGe:
				res = c >= 0
			}
			return datum.NewBool(res), nil
		}, nil
	case sqlparser.OpAdd, sqlparser.OpSub, sqlparser.OpMul, sqlparser.OpDiv, sqlparser.OpMod:
		var sym byte
		switch ex.Op {
		case sqlparser.OpAdd:
			sym = '+'
		case sqlparser.OpSub:
			sym = '-'
		case sqlparser.OpMul:
			sym = '*'
		case sqlparser.OpDiv:
			sym = '/'
		case sqlparser.OpMod:
			sym = '%'
		}
		return func(env *rowEnv) (datum.D, error) {
			lv, err := l(env)
			if err != nil {
				return datum.Null, err
			}
			rv, err := r(env)
			if err != nil {
				return datum.Null, err
			}
			return datum.Arith(sym, lv, rv)
		}, nil
	case sqlparser.OpConcat:
		return func(env *rowEnv) (datum.D, error) {
			lv, err := l(env)
			if err != nil {
				return datum.Null, err
			}
			rv, err := r(env)
			if err != nil {
				return datum.Null, err
			}
			if lv.IsNull() || rv.IsNull() {
				return datum.Null, nil
			}
			return datum.NewString(lv.Raw() + rv.Raw()), nil
		}, nil
	}
	return nil, fmt.Errorf("engine: unknown binary operator %d", ex.Op)
}

func (b *binder) bindIn(ex *sqlparser.InExpr) (boundExpr, error) {
	x, err := b.bind(ex.X)
	if err != nil {
		return nil, err
	}
	not := ex.Not
	if ex.Subquery != nil {
		run := b.lazySubquery(ex.Subquery)
		return func(env *rowEnv) (datum.D, error) {
			v, err := x(env)
			if err != nil {
				return datum.Null, err
			}
			if v.IsNull() {
				return datum.Null, nil
			}
			rows, err := run()
			if err != nil {
				return datum.Null, err
			}
			sawNull := false
			for _, r := range rows {
				if len(r) != 1 {
					return datum.Null, fmt.Errorf("engine: IN subquery must return one column")
				}
				c := r[0]
				if c.IsNull() {
					sawNull = true
					continue
				}
				if datum.Equal(v, c) {
					return datum.NewBool(!not), nil
				}
			}
			if sawNull {
				return datum.Null, nil
			}
			return datum.NewBool(not), nil
		}, nil
	}
	items := make([]boundExpr, len(ex.List))
	for i, item := range ex.List {
		bi, err := b.bind(item)
		if err != nil {
			return nil, err
		}
		items[i] = bi
	}
	return func(env *rowEnv) (datum.D, error) {
		v, err := x(env)
		if err != nil {
			return datum.Null, err
		}
		if v.IsNull() {
			return datum.Null, nil
		}
		sawNull := false
		for _, item := range items {
			c, err := item(env)
			if err != nil {
				return datum.Null, err
			}
			if c.IsNull() {
				sawNull = true
				continue
			}
			if datum.Equal(v, c) {
				return datum.NewBool(!not), nil
			}
		}
		if sawNull {
			return datum.Null, nil
		}
		return datum.NewBool(not), nil
	}, nil
}

// bindFunc compiles the scalar builtins. Unknown functions, aggregate
// misuse and arity mismatches become evaluation-time errors (not bind-time)
// to preserve the lazy evaluator's behavior for never-evaluated branches.
func (b *binder) bindFunc(f *sqlparser.FuncCall) (boundExpr, error) {
	if sqlparser.IsAggregateName(f.Name) {
		return errExpr(fmt.Errorf("engine: aggregate %s used outside of aggregation context", f.Name)), nil
	}
	args := make([]boundExpr, len(f.Args))
	for i, a := range f.Args {
		ba, err := b.bind(a)
		if err != nil {
			return nil, err
		}
		args[i] = ba
	}
	arity := func(n int) boundExpr {
		return errExpr(fmt.Errorf("engine: %s expects %d argument(s), got %d", f.Name, n, len(args)))
	}
	// eval1 wraps the single-argument NULL-propagating builtins.
	eval1 := func(fn func(datum.D) datum.D) boundExpr {
		arg := args[0]
		return func(env *rowEnv) (datum.D, error) {
			v, err := arg(env)
			if err != nil || v.IsNull() {
				return datum.Null, err
			}
			return fn(v), nil
		}
	}
	switch f.Name {
	case "LOWER":
		if len(args) != 1 {
			return arity(1), nil
		}
		return eval1(func(v datum.D) datum.D { return datum.NewString(strings.ToLower(v.Str())) }), nil
	case "UPPER":
		if len(args) != 1 {
			return arity(1), nil
		}
		return eval1(func(v datum.D) datum.D { return datum.NewString(strings.ToUpper(v.Str())) }), nil
	case "LENGTH":
		if len(args) != 1 {
			return arity(1), nil
		}
		return eval1(func(v datum.D) datum.D { return datum.NewInt(int64(len(v.Str()))) }), nil
	case "ABS":
		if len(args) != 1 {
			return arity(1), nil
		}
		return eval1(func(v datum.D) datum.D {
			if v.Kind() == datum.KInt {
				i := v.Int()
				if i < 0 {
					i = -i
				}
				return datum.NewInt(i)
			}
			fv := v.Float()
			if fv < 0 {
				fv = -fv
			}
			return datum.NewFloat(fv)
		}), nil
	case "REPLACE":
		if len(args) != 3 {
			return arity(3), nil
		}
		s, old, new_ := args[0], args[1], args[2]
		return func(env *rowEnv) (datum.D, error) {
			sv, err := s(env)
			if err != nil {
				return datum.Null, err
			}
			ov, err := old(env)
			if err != nil {
				return datum.Null, err
			}
			nv, err := new_(env)
			if err != nil {
				return datum.Null, err
			}
			if sv.IsNull() || ov.IsNull() || nv.IsNull() {
				return datum.Null, nil
			}
			return datum.NewString(strings.ReplaceAll(sv.Str(), ov.Str(), nv.Str())), nil
		}, nil
	case "SUBSTRING", "SUBSTR":
		if len(args) != 2 && len(args) != 3 {
			return errExpr(fmt.Errorf("engine: %s expects 2 or 3 arguments", f.Name)), nil
		}
		str, from := args[0], args[1]
		var count boundExpr
		if len(args) == 3 {
			count = args[2]
		}
		return func(env *rowEnv) (datum.D, error) {
			sv, err := str(env)
			if err != nil {
				return datum.Null, err
			}
			fv, err := from(env)
			if err != nil {
				return datum.Null, err
			}
			if sv.IsNull() || fv.IsNull() {
				return datum.Null, nil
			}
			s := sv.Str()
			start := int(fv.Int()) - 1 // SQL is 1-based
			if start < 0 {
				start = 0
			}
			if start > len(s) {
				start = len(s)
			}
			end := len(s)
			if count != nil {
				cv, err := count(env)
				if err != nil {
					return datum.Null, err
				}
				if cv.IsNull() {
					return datum.Null, nil
				}
				end = start + int(cv.Int())
				if end > len(s) {
					end = len(s)
				}
				if end < start {
					end = start
				}
			}
			return datum.NewString(s[start:end]), nil
		}, nil
	case "COALESCE":
		return func(env *rowEnv) (datum.D, error) {
			for _, a := range args {
				v, err := a(env)
				if err != nil {
					return datum.Null, err
				}
				if !v.IsNull() {
					return v, nil
				}
			}
			return datum.Null, nil
		}, nil
	}
	return errExpr(fmt.Errorf("engine: unknown function %s", f.Name)), nil
}
