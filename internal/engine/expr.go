package engine

import (
	"fmt"
	"strings"

	"lantern/internal/datum"
	"lantern/internal/sqlparser"
	"lantern/internal/storage"
)

// evalCtx carries everything expression evaluation needs: the current row,
// the schema describing it, and a subquery executor (uncorrelated subqueries
// are evaluated eagerly through the engine).
type evalCtx struct {
	schema []colRef
	row    storage.Row
	sub    func(*sqlparser.SelectStmt) ([]storage.Row, error)
}

// resolve finds the position of a column reference in the schema.
// A qualified reference must match qualifier and name; an unqualified one
// must match a unique name (ambiguity is an error). Computed columns
// (aggregates, expressions named by their formatted text) match by name.
func resolve(schema []colRef, ref *sqlparser.ColumnRef) (int, error) {
	if ref.Table != "" {
		for i, c := range schema {
			if c.Qual == ref.Table && c.Name == ref.Name {
				return i, nil
			}
		}
		// A qualified reference may also have been materialized as a
		// computed column named with its qualifier (e.g. "t.a" after an
		// aggregate). Fall through to text matching.
		text := ref.Table + "." + ref.Name
		for i, c := range schema {
			if c.Qual == "" && c.Name == text {
				return i, nil
			}
		}
		return -1, fmt.Errorf("engine: column %s.%s does not exist", ref.Table, ref.Name)
	}
	found := -1
	for i, c := range schema {
		if c.Name == ref.Name {
			if found >= 0 {
				return -1, fmt.Errorf("engine: column reference %q is ambiguous", ref.Name)
			}
			found = i
		}
	}
	if found < 0 {
		return -1, fmt.Errorf("engine: column %q does not exist", ref.Name)
	}
	return found, nil
}

// resolveComputed finds a computed column whose name equals the formatted
// expression text (how aggregate results and group keys surface to parents).
func resolveComputed(schema []colRef, e sqlparser.Expr) (int, bool) {
	text := sqlparser.FormatExpr(e)
	for i, c := range schema {
		if c.Name == text && c.Qual == "" {
			return i, true
		}
		if c.Qual != "" && c.Qual+"."+c.Name == text {
			return i, true
		}
	}
	return -1, false
}

// columnOrdinal resolves e to a schema ordinal when it is a bare column
// reference — including computed columns materialized by a child operator
// (aggregate outputs, group keys). The vectorized executor uses it to turn
// key and filter operands into direct index loads.
func columnOrdinal(e sqlparser.Expr, schema []colRef) (int, bool) {
	if ref, ok := e.(*sqlparser.ColumnRef); ok {
		if i, err := resolve(schema, ref); err == nil {
			return i, true
		}
		return 0, false
	}
	if i, ok := resolveComputed(schema, e); ok {
		return i, true
	}
	return 0, false
}

// eval evaluates an expression to a datum using SQL three-valued logic:
// boolean results may be NULL (unknown).
func eval(ctx *evalCtx, e sqlparser.Expr) (datum.D, error) {
	// Computed columns shadow structural evaluation: if the schema already
	// carries this exact expression (aggregate output, group key), read it.
	switch e.(type) {
	case *sqlparser.ColumnRef, *sqlparser.Literal:
		// fast path below
	default:
		if i, ok := resolveComputed(ctx.schema, e); ok {
			return ctx.row[i], nil
		}
	}
	switch ex := e.(type) {
	case *sqlparser.Literal:
		return ex.Value, nil
	case *sqlparser.ColumnRef:
		i, err := resolve(ctx.schema, ex)
		if err != nil {
			return datum.Null, err
		}
		return ctx.row[i], nil
	case *sqlparser.BinaryExpr:
		return evalBinary(ctx, ex)
	case *sqlparser.UnaryExpr:
		v, err := eval(ctx, ex.X)
		if err != nil {
			return datum.Null, err
		}
		if ex.Op == '!' {
			if v.IsNull() {
				return datum.Null, nil
			}
			return datum.NewBool(!v.Bool()), nil
		}
		if v.IsNull() {
			return datum.Null, nil
		}
		return datum.Arith('-', datum.NewInt(0), v)
	case *sqlparser.LikeExpr:
		s, err := eval(ctx, ex.X)
		if err != nil {
			return datum.Null, err
		}
		p, err := eval(ctx, ex.Pattern)
		if err != nil {
			return datum.Null, err
		}
		if s.IsNull() || p.IsNull() {
			return datum.Null, nil
		}
		res := datum.Like(s.Str(), p.Str())
		if ex.Not {
			res = !res
		}
		return datum.NewBool(res), nil
	case *sqlparser.BetweenExpr:
		v, err := eval(ctx, ex.X)
		if err != nil {
			return datum.Null, err
		}
		lo, err := eval(ctx, ex.Lo)
		if err != nil {
			return datum.Null, err
		}
		hi, err := eval(ctx, ex.Hi)
		if err != nil {
			return datum.Null, err
		}
		if v.IsNull() || lo.IsNull() || hi.IsNull() {
			return datum.Null, nil
		}
		res := datum.Compare(v, lo) >= 0 && datum.Compare(v, hi) <= 0
		if ex.Not {
			res = !res
		}
		return datum.NewBool(res), nil
	case *sqlparser.InExpr:
		return evalIn(ctx, ex)
	case *sqlparser.IsNullExpr:
		v, err := eval(ctx, ex.X)
		if err != nil {
			return datum.Null, err
		}
		res := v.IsNull()
		if ex.Not {
			res = !res
		}
		return datum.NewBool(res), nil
	case *sqlparser.CaseExpr:
		for _, w := range ex.Whens {
			c, err := eval(ctx, w.Cond)
			if err != nil {
				return datum.Null, err
			}
			if truthy(c) {
				return eval(ctx, w.Result)
			}
		}
		if ex.Else != nil {
			return eval(ctx, ex.Else)
		}
		return datum.Null, nil
	case *sqlparser.FuncCall:
		return evalScalarFunc(ctx, ex)
	case *sqlparser.SubqueryExpr:
		rows, err := ctx.runSub(ex.Query)
		if err != nil {
			return datum.Null, err
		}
		if len(rows) == 0 {
			return datum.Null, nil
		}
		if len(rows) > 1 {
			return datum.Null, fmt.Errorf("engine: scalar subquery returned more than one row")
		}
		if len(rows[0]) != 1 {
			return datum.Null, fmt.Errorf("engine: scalar subquery must return one column")
		}
		return rows[0][0], nil
	case *sqlparser.ExistsExpr:
		rows, err := ctx.runSub(ex.Query)
		if err != nil {
			return datum.Null, err
		}
		res := len(rows) > 0
		if ex.Not {
			res = !res
		}
		return datum.NewBool(res), nil
	}
	return datum.Null, fmt.Errorf("engine: cannot evaluate expression %T", e)
}

func (ctx *evalCtx) runSub(q *sqlparser.SelectStmt) ([]storage.Row, error) {
	if ctx.sub == nil {
		return nil, fmt.Errorf("engine: subqueries are not available in this context")
	}
	return ctx.sub(q)
}

func evalBinary(ctx *evalCtx, ex *sqlparser.BinaryExpr) (datum.D, error) {
	switch ex.Op {
	case sqlparser.OpAnd:
		l, err := eval(ctx, ex.Left)
		if err != nil {
			return datum.Null, err
		}
		if !l.IsNull() && !l.Bool() {
			return datum.NewBool(false), nil
		}
		r, err := eval(ctx, ex.Right)
		if err != nil {
			return datum.Null, err
		}
		if !r.IsNull() && !r.Bool() {
			return datum.NewBool(false), nil
		}
		if l.IsNull() || r.IsNull() {
			return datum.Null, nil
		}
		return datum.NewBool(true), nil
	case sqlparser.OpOr:
		l, err := eval(ctx, ex.Left)
		if err != nil {
			return datum.Null, err
		}
		if !l.IsNull() && l.Bool() {
			return datum.NewBool(true), nil
		}
		r, err := eval(ctx, ex.Right)
		if err != nil {
			return datum.Null, err
		}
		if !r.IsNull() && r.Bool() {
			return datum.NewBool(true), nil
		}
		if l.IsNull() || r.IsNull() {
			return datum.Null, nil
		}
		return datum.NewBool(false), nil
	}
	l, err := eval(ctx, ex.Left)
	if err != nil {
		return datum.Null, err
	}
	r, err := eval(ctx, ex.Right)
	if err != nil {
		return datum.Null, err
	}
	switch ex.Op {
	case sqlparser.OpEq, sqlparser.OpNe, sqlparser.OpLt, sqlparser.OpLe, sqlparser.OpGt, sqlparser.OpGe:
		if l.IsNull() || r.IsNull() {
			return datum.Null, nil
		}
		c := datum.Compare(l, r)
		var res bool
		switch ex.Op {
		case sqlparser.OpEq:
			res = c == 0
		case sqlparser.OpNe:
			res = c != 0
		case sqlparser.OpLt:
			res = c < 0
		case sqlparser.OpLe:
			res = c <= 0
		case sqlparser.OpGt:
			res = c > 0
		case sqlparser.OpGe:
			res = c >= 0
		}
		return datum.NewBool(res), nil
	case sqlparser.OpAdd:
		return datum.Arith('+', l, r)
	case sqlparser.OpSub:
		return datum.Arith('-', l, r)
	case sqlparser.OpMul:
		return datum.Arith('*', l, r)
	case sqlparser.OpDiv:
		return datum.Arith('/', l, r)
	case sqlparser.OpMod:
		return datum.Arith('%', l, r)
	case sqlparser.OpConcat:
		if l.IsNull() || r.IsNull() {
			return datum.Null, nil
		}
		return datum.NewString(l.Raw() + r.Raw()), nil
	}
	return datum.Null, fmt.Errorf("engine: unknown binary operator %d", ex.Op)
}

func evalIn(ctx *evalCtx, ex *sqlparser.InExpr) (datum.D, error) {
	v, err := eval(ctx, ex.X)
	if err != nil {
		return datum.Null, err
	}
	if v.IsNull() {
		return datum.Null, nil
	}
	sawNull := false
	var candidates []datum.D
	if ex.Subquery != nil {
		rows, err := ctx.runSub(ex.Subquery)
		if err != nil {
			return datum.Null, err
		}
		for _, r := range rows {
			if len(r) != 1 {
				return datum.Null, fmt.Errorf("engine: IN subquery must return one column")
			}
			candidates = append(candidates, r[0])
		}
	} else {
		for _, item := range ex.List {
			c, err := eval(ctx, item)
			if err != nil {
				return datum.Null, err
			}
			candidates = append(candidates, c)
		}
	}
	for _, c := range candidates {
		if c.IsNull() {
			sawNull = true
			continue
		}
		if datum.Equal(v, c) {
			return datum.NewBool(!ex.Not), nil
		}
	}
	if sawNull {
		return datum.Null, nil
	}
	return datum.NewBool(ex.Not), nil
}

// evalScalarFunc evaluates the scalar (non-aggregate) builtins. Aggregates
// reaching this point indicate a planning bug or aggregate misuse.
func evalScalarFunc(ctx *evalCtx, f *sqlparser.FuncCall) (datum.D, error) {
	if sqlparser.IsAggregateName(f.Name) {
		return datum.Null, fmt.Errorf("engine: aggregate %s used outside of aggregation context", f.Name)
	}
	args := make([]datum.D, len(f.Args))
	for i, a := range f.Args {
		v, err := eval(ctx, a)
		if err != nil {
			return datum.Null, err
		}
		args[i] = v
	}
	switch f.Name {
	case "LOWER":
		if err := wantArgs(f, args, 1); err != nil {
			return datum.Null, err
		}
		if args[0].IsNull() {
			return datum.Null, nil
		}
		return datum.NewString(strings.ToLower(args[0].Str())), nil
	case "UPPER":
		if err := wantArgs(f, args, 1); err != nil {
			return datum.Null, err
		}
		if args[0].IsNull() {
			return datum.Null, nil
		}
		return datum.NewString(strings.ToUpper(args[0].Str())), nil
	case "LENGTH":
		if err := wantArgs(f, args, 1); err != nil {
			return datum.Null, err
		}
		if args[0].IsNull() {
			return datum.Null, nil
		}
		return datum.NewInt(int64(len(args[0].Str()))), nil
	case "ABS":
		if err := wantArgs(f, args, 1); err != nil {
			return datum.Null, err
		}
		if args[0].IsNull() {
			return datum.Null, nil
		}
		if args[0].Kind() == datum.KInt {
			v := args[0].Int()
			if v < 0 {
				v = -v
			}
			return datum.NewInt(v), nil
		}
		v := args[0].Float()
		if v < 0 {
			v = -v
		}
		return datum.NewFloat(v), nil
	case "REPLACE":
		if err := wantArgs(f, args, 3); err != nil {
			return datum.Null, err
		}
		for _, a := range args {
			if a.IsNull() {
				return datum.Null, nil
			}
		}
		return datum.NewString(strings.ReplaceAll(args[0].Str(), args[1].Str(), args[2].Str())), nil
	case "SUBSTRING", "SUBSTR":
		if len(args) != 2 && len(args) != 3 {
			return datum.Null, fmt.Errorf("engine: %s expects 2 or 3 arguments", f.Name)
		}
		if args[0].IsNull() || args[1].IsNull() {
			return datum.Null, nil
		}
		s := args[0].Str()
		start := int(args[1].Int()) - 1 // SQL is 1-based
		if start < 0 {
			start = 0
		}
		if start > len(s) {
			start = len(s)
		}
		end := len(s)
		if len(args) == 3 {
			if args[2].IsNull() {
				return datum.Null, nil
			}
			end = start + int(args[2].Int())
			if end > len(s) {
				end = len(s)
			}
			if end < start {
				end = start
			}
		}
		return datum.NewString(s[start:end]), nil
	case "COALESCE":
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return datum.Null, nil
	}
	return datum.Null, fmt.Errorf("engine: unknown function %s", f.Name)
}

func wantArgs(f *sqlparser.FuncCall, args []datum.D, n int) error {
	if len(args) != n {
		return fmt.Errorf("engine: %s expects %d argument(s), got %d", f.Name, n, len(args))
	}
	return nil
}

// truthy implements WHERE-clause semantics: NULL and false both reject.
func truthy(v datum.D) bool {
	return !v.IsNull() && v.Kind() == datum.KBool && v.Bool()
}
