package engine

// Tests for the native engine↔plan bridge: ToPlanNode must be structurally
// indistinguishable from round-tripping the plan through the PostgreSQL
// JSON serialization (the path the bridge replaces), the native
// serialization must invert exactly, and the opt-in instrumentation must
// report actuals consistent with what execution really produced.

import (
	"bytes"
	"fmt"
	"strconv"
	"testing"

	"lantern/internal/plan"
)

// canonicalIgnoringSource renders a tree's canonical bytes with the Source
// field neutralized, so trees bridged directly (Source "native") compare
// against trees parsed from pg JSON (Source "pg").
func canonicalIgnoringSource(t *plan.Node) string {
	clone := *t
	var neutralize func(n *plan.Node) *plan.Node
	neutralize = func(n *plan.Node) *plan.Node {
		c := *n
		c.Source = "-"
		c.Children = nil
		for _, ch := range n.Children {
			c.Children = append(c.Children, neutralize(ch))
		}
		return &c
	}
	var buf bytes.Buffer
	neutralize(&clone).WriteCanonical(&buf)
	return buf.String()
}

// TestBridgeDifferential pins the bridge against the existing round-trip:
// for the whole differential corpus under every planner configuration,
// ToPlanNode (without actuals) must be structurally equal — same shape,
// operator names, attributes, row estimates and costs — to parsing the
// engine's own EXPLAIN (FORMAT JSON) output.
func TestBridgeDifferential(t *testing.T) {
	for name, cfg := range diffConfigs() {
		t.Run(name, func(t *testing.T) {
			e := testDB(t, cfg)
			for _, q := range diffCorpus {
				pl, err := e.PlanSQL(q)
				if err != nil {
					t.Fatalf("plan %q: %v", q, err)
				}
				direct := ToPlanNode(pl)
				doc, err := ExplainJSON(pl)
				if err != nil {
					t.Fatalf("explain %q: %v", q, err)
				}
				parsed, err := plan.ParsePostgresJSON(doc)
				if err != nil {
					t.Fatalf("parse %q: %v", q, err)
				}
				if got, want := canonicalIgnoringSource(direct), canonicalIgnoringSource(parsed); got != want {
					t.Errorf("query %q: bridge and pg round-trip disagree\nbridge:     %s\nround-trip: %s", q, got, want)
					continue
				}
				var cmp func(a, b *plan.Node) error
				cmp = func(a, b *plan.Node) error {
					if a.Rows != b.Rows || a.Cost != b.Cost {
						return fmt.Errorf("node %q: bridge rows=%g cost=%g, round-trip rows=%g cost=%g",
							a.Name, a.Rows, a.Cost, b.Rows, b.Cost)
					}
					for i := range a.Children {
						if err := cmp(a.Children[i], b.Children[i]); err != nil {
							return err
						}
					}
					return nil
				}
				if err := cmp(direct, parsed); err != nil {
					t.Errorf("query %q: %v", q, err)
				}
			}
		})
	}
}

// TestBridgeSource: bridged trees carry the native dialect on every node.
func TestBridgeSource(t *testing.T) {
	e := testDB(t, DefaultConfig())
	pl, err := e.PlanSQL("SELECT c.c_name, o.o_totalprice FROM customer c, orders o WHERE c.c_custkey = o.o_custkey")
	if err != nil {
		t.Fatal(err)
	}
	ToPlanNode(pl).Walk(func(n *plan.Node) {
		if n.Source != "native" {
			t.Errorf("node %q has Source %q, want native", n.Name, n.Source)
		}
	})
}

// TestNativeRoundTrip: ExplainNative must invert exactly through
// ParseNativeJSON — same canonical bytes, estimates, and actuals,
// with and without instrumentation.
func TestNativeRoundTrip(t *testing.T) {
	e := testDB(t, DefaultConfig())
	for _, q := range diffCorpus {
		pl, err := e.PlanSQL(q)
		if err != nil {
			t.Fatalf("plan %q: %v", q, err)
		}
		_, st, err := e.ExecPlanInstrumented(pl)
		if err != nil {
			t.Fatalf("exec %q: %v", q, err)
		}
		for name, stats := range map[string]ExecStats{"plain": nil, "actuals": st} {
			doc, err := ExplainNative(pl, stats)
			if err != nil {
				t.Fatalf("%s %q: %v", name, q, err)
			}
			parsed, err := plan.ParseNativeJSON(doc)
			if err != nil {
				t.Fatalf("%s %q: parse: %v", name, q, err)
			}
			direct := ToPlanNodeStats(pl, stats)
			var a, b bytes.Buffer
			direct.WriteCanonical(&a)
			parsed.WriteCanonical(&b)
			if a.String() != b.String() {
				t.Errorf("%s %q: native round-trip changed the canonical tree", name, q)
			}
		}
	}
}

// TestExecPlanInstrumented checks the collected actuals against ground
// truth: the root's actual rows equal the result cardinality, every
// operator was opened at least once, and the instrumented result is
// identical to the uninstrumented one.
func TestExecPlanInstrumented(t *testing.T) {
	e := testDB(t, DefaultConfig())
	for _, q := range diffCorpus {
		pl, err := e.PlanSQL(q)
		if err != nil {
			t.Fatalf("plan %q: %v", q, err)
		}
		plainRows, err := e.execStream(pl)
		if err != nil {
			t.Fatalf("exec %q: %v", q, err)
		}
		rows, st, err := e.ExecPlanInstrumented(pl)
		if err != nil {
			t.Fatalf("instrumented exec %q: %v", q, err)
		}
		if len(rows) != len(plainRows) {
			t.Errorf("query %q: instrumented run returned %d rows, plain run %d", q, len(rows), len(plainRows))
		}
		root := st[pl]
		if root == nil {
			t.Fatalf("query %q: no stats for the root operator", q)
		}
		if root.Rows != int64(len(rows)) {
			t.Errorf("query %q: root actual rows = %d, result has %d", q, root.Rows, len(rows))
		}
		pl.Walk(func(n *Node) {
			os := st[n]
			if os == nil {
				t.Errorf("query %q: operator %s has no stats entry", q, n.Op.Name())
				return
			}
			if os.Loops < 1 {
				t.Errorf("query %q: operator %s reports %d loops, want >= 1", q, n.Op.Name(), os.Loops)
			}
		})
	}
}

// TestToPlanNodeStatsAttrs: actual-stats attrs land on the bridged tree
// under the standardized keys, and the estimate stays alongside them.
func TestToPlanNodeStatsAttrs(t *testing.T) {
	e := testDB(t, DefaultConfig())
	pl, err := e.PlanSQL("SELECT c_name FROM customer WHERE c_acctbal > 50")
	if err != nil {
		t.Fatal(err)
	}
	rows, st, err := e.ExecPlanInstrumented(pl)
	if err != nil {
		t.Fatal(err)
	}
	tree := ToPlanNodeStats(pl, st)
	got := tree.Attr(plan.AttrActualRows)
	if got != strconv.Itoa(len(rows)) {
		t.Errorf("root %s = %q, want %d", plan.AttrActualRows, got, len(rows))
	}
	if tree.Attr(plan.AttrLoops) != "1" {
		t.Errorf("root %s = %q, want 1", plan.AttrLoops, tree.Attr(plan.AttrLoops))
	}
	if tree.Attr(plan.AttrTimeMs) == "" {
		t.Errorf("root %s missing", plan.AttrTimeMs)
	}
	if tree.Rows == 0 {
		t.Error("estimated rows lost in bridging")
	}
}

// TestExplainAnalyze: the statement-level surface. ANALYZE executes the
// query and annotates the plan; the native document parses back with
// actuals, the JSON document carries PostgreSQL's Actual fields through
// the pg frontend, and the unsupported formats report a clear error.
func TestExplainAnalyze(t *testing.T) {
	e := testDB(t, DefaultConfig())
	q := "SELECT c_name FROM customer WHERE c_acctbal > 50"

	want, err := e.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := strconv.Itoa(len(want.Rows))

	r, err := e.Exec("EXPLAIN (ANALYZE, FORMAT NATIVE) " + q)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := plan.ParseNativeJSON(r.Plan)
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Attr(plan.AttrActualRows); got != wantRows {
		t.Errorf("native ANALYZE root actual rows = %q, want %s", got, wantRows)
	}

	r, err = e.Exec("EXPLAIN (ANALYZE, FORMAT JSON) " + q)
	if err != nil {
		t.Fatal(err)
	}
	pgTree, err := plan.ParsePostgresJSON(r.Plan)
	if err != nil {
		t.Fatal(err)
	}
	if got := pgTree.Attr(plan.AttrActualRows); got != wantRows {
		t.Errorf("pg ANALYZE root actual rows = %q, want %s", got, wantRows)
	}
	if pgTree.Attr(plan.AttrTimeMs) == "" {
		t.Error("pg ANALYZE lost the actual time attr")
	}

	r, err = e.Exec("EXPLAIN ANALYZE " + q)
	if err != nil {
		t.Fatal(err)
	}
	if want := "actual time="; !bytes.Contains([]byte(r.Plan), []byte(want)) {
		t.Errorf("text ANALYZE output lacks %q:\n%s", want, r.Plan)
	}

	if _, err := e.Exec("EXPLAIN (ANALYZE, FORMAT XML) " + q); err == nil {
		t.Error("EXPLAIN (ANALYZE, FORMAT XML) should be rejected")
	}
}

// TestQueryInstrumented: the one-call serving API returns the same
// projected result as plain execution, plus a fully-annotated plan.
func TestQueryInstrumented(t *testing.T) {
	e := testDB(t, DefaultConfig())
	q := "SELECT c.c_name, o.o_totalprice FROM customer c, orders o WHERE c.c_custkey = o.o_custkey ORDER BY o.o_totalprice LIMIT 5"
	want, err := e.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	qr, err := e.QueryInstrumented(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(qr.Result.Rows) != len(want.Rows) {
		t.Fatalf("QueryInstrumented returned %d rows, Exec %d", len(qr.Result.Rows), len(want.Rows))
	}
	if len(qr.Result.Columns) != len(want.Columns) {
		t.Fatalf("column mismatch: %v vs %v", qr.Result.Columns, want.Columns)
	}
	if qr.Stats[qr.Plan] == nil {
		t.Fatal("no stats for the root operator")
	}
	if qr.Elapsed <= 0 {
		t.Error("elapsed time not recorded")
	}
}
