package engine

// vecsort.go is the batch sort. Like the row pipeline's sortIter it
// materializes at Open — full stable sort, or the bounded topKHeap when
// the planner set SortLimit (which is offset+limit, so OFFSET rows survive
// truncation) — but it consumes batches and evaluates sort keys by ordinal
// when they are bare column references, so the top-K push path does no
// closure calls and no allocations once the heap is full. The heap's
// arrival-sequence tiebreak keeps the result identical to the reference
// executor's stable full sort truncated to K, including when duplicate
// keys cross the limit boundary.

import (
	"sort"

	"lantern/internal/datum"
	"lantern/internal/sqlparser"
	"lantern/internal/storage"
)

type sortVec struct {
	child   vecIter
	keyOrds []int       // ordinal fast path; nil → keys
	keys    []boundExpr // closure fallback
	desc    []bool
	nKeys   int
	topK    int64 // 0 = full sort
	est     int   // planner cardinality estimate, for preallocation
	out     []storage.Row
	pos     int
}

func (v *vbuild) newSortVec(n *Node) (*sortVec, error) {
	it := &sortVec{topK: n.SortLimit, nKeys: len(n.SortKeys), est: estCap(n.EstRows)}
	var err error
	if it.child, err = v.build(n.Children[0]); err != nil {
		return nil, err
	}
	exprs := make([]sqlparser.Expr, len(n.SortKeys))
	it.desc = make([]bool, len(n.SortKeys))
	for i, k := range n.SortKeys {
		exprs[i] = k.Expr
		it.desc[i] = k.Desc
	}
	if it.keyOrds = keyOrdinals(exprs, n.Children[0].Schema); it.keyOrds == nil {
		if it.keys, err = bindExprs(exprs, n.Children[0].Schema, v.e.subquery); err != nil {
			return nil, err
		}
	}
	return it, nil
}

// evalKeys loads r's sort key datums into dst.
func (it *sortVec) evalKeys(r storage.Row, dst []datum.D, env *rowEnv) error {
	if it.keyOrds != nil {
		for i, ord := range it.keyOrds {
			dst[i] = r[ord]
		}
		return nil
	}
	env.left = r
	for i, k := range it.keys {
		v, err := k(env)
		if err != nil {
			return err
		}
		dst[i] = v
	}
	return nil
}

func (it *sortVec) Open() error {
	if err := it.child.Open(); err != nil {
		return err
	}
	it.pos = 0
	if it.topK > 0 {
		return it.openTopK()
	}
	// Full sort: drain batches into rows + a flat key arena, then stable
	// sort an index permutation — same shape as sortIter's full path. Both
	// buffers preallocate from the planner estimate so an accurately
	// costed sort materializes with one allocation each.
	rows := make([]storage.Row, 0, it.est)
	arena := make([]datum.D, 0, it.est*it.nKeys)
	var env rowEnv
	scratch := make([]datum.D, it.nKeys)
	for {
		b, err := it.child.NextBatch()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		for _, r := range b {
			if err := it.evalKeys(r, scratch, &env); err != nil {
				return err
			}
			arena = append(arena, scratch...)
			rows = append(rows, r)
		}
	}
	nKeys := it.nKeys
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(x, y int) bool {
		a, b := idx[x], idx[y]
		for j := 0; j < nKeys; j++ {
			c := datum.Compare(arena[a*nKeys+j], arena[b*nKeys+j])
			if it.desc[j] {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	it.out = make([]storage.Row, len(rows))
	for i, j := range idx {
		it.out[i] = rows[j]
	}
	return nil
}

func (it *sortVec) openTopK() error {
	h := newTopKHeap(int(it.topK), it.nKeys, it.desc)
	scratch := make([]datum.D, it.nKeys)
	var env rowEnv
	for {
		b, err := it.child.NextBatch()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		for _, r := range b {
			if err := it.evalKeys(r, scratch, &env); err != nil {
				return err
			}
			h.push(r, scratch)
		}
	}
	it.out = h.finish()
	return nil
}

func (it *sortVec) NextBatch() ([]storage.Row, error) {
	if it.pos >= len(it.out) {
		return nil, nil
	}
	end := it.pos + batchSize
	if end > len(it.out) {
		end = len(it.out)
	}
	b := it.out[it.pos:end]
	it.pos = end
	return b, nil
}

func (it *sortVec) Close() error { return it.child.Close() }
