package engine

import (
	"encoding/json"
	"fmt"
)

// --- MySQL format (EXPLAIN FORMAT=JSON) -------------------------------------
//
// MySQL serializes plans very differently from the other two engines: a
// single "query_block" object whose joins are flat nested_loop arrays of
// table accesses (MySQL executes only nested-loop-family joins), with
// sorting/grouping/distinct represented as wrapper operations rather than
// tree nodes, and non-table join inputs materialized as derived-table
// subqueries. Reproducing that shape keeps the cross-vendor gap the
// paper's parsers bridge genuine for the third dialect too.

type myxCost struct {
	QueryCost  string `json:"query_cost,omitempty"`
	PrefixCost string `json:"prefix_cost,omitempty"`
	ReadCost   string `json:"read_cost,omitempty"`
}

type myxSubquery struct {
	QueryBlock *myxBlock `json:"query_block"`
}

type myxTable struct {
	TableName         string       `json:"table_name"`
	AccessType        string       `json:"access_type,omitempty"`
	Key               string       `json:"key,omitempty"`
	RowsExamined      float64      `json:"rows_examined_per_scan,omitempty"`
	RowsProduced      float64      `json:"rows_produced_per_join,omitempty"`
	Filtered          string       `json:"filtered,omitempty"`
	CostInfo          *myxCost     `json:"cost_info,omitempty"`
	IndexCondition    string       `json:"index_condition,omitempty"`
	AttachedCondition string       `json:"attached_condition,omitempty"`
	UsingJoinBuffer   string       `json:"using_join_buffer,omitempty"`
	Materialized      *myxSubquery `json:"materialized_from_subquery,omitempty"`
}

type myxJoin struct {
	Table *myxTable `json:"table"`
}

type myxBlock struct {
	SelectID            int       `json:"select_id,omitempty"`
	CostInfo            *myxCost  `json:"cost_info,omitempty"`
	Message             string    `json:"message,omitempty"`
	UsingFilesort       *bool     `json:"using_filesort,omitempty"`
	UsingTemporaryTable bool      `json:"using_temporary_table,omitempty"`
	Ordering            *myxBlock `json:"ordering_operation,omitempty"`
	Grouping            *myxBlock `json:"grouping_operation,omitempty"`
	Duplicates          *myxBlock `json:"duplicates_removal,omitempty"`
	Buffer              *myxBlock `json:"buffer_result,omitempty"`
	NestedLoop          []myxJoin `json:"nested_loop,omitempty"`
	Table               *myxTable `json:"table,omitempty"`
}

// ExplainMySQL renders the plan as a MySQL-style EXPLAIN FORMAT=JSON
// document. Limit nodes are transparent (MySQL's JSON explain does not
// report LIMIT) and Hash build nodes are inlined, as in the XML emitter.
func ExplainMySQL(n *Node) (string, error) {
	g := &mysqlGen{}
	b := g.block(n)
	b.SelectID = 1
	b.CostInfo = &myxCost{QueryCost: fmt.Sprintf("%.2f", round2(n.EstCost))}
	doc := map[string]*myxBlock{"query_block": b}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out), nil
}

// mysqlGen carries the derived-table counter used to name materialized
// join inputs, mirroring MySQL's <derivedN> naming.
type mysqlGen struct {
	nderived int
}

func boolPtr(b bool) *bool { return &b }

func (g *mysqlGen) block(n *Node) *myxBlock {
	switch n.Op {
	case OpSort:
		inner := g.block(n.Children[0])
		inner.UsingFilesort = boolPtr(true)
		return &myxBlock{Ordering: inner}
	case OpUnique:
		return &myxBlock{Duplicates: g.block(n.Children[0])}
	case OpAggregate, OpHashAggregate, OpGroupAggregate:
		inner := g.block(n.Children[0])
		inner.UsingTemporaryTable = n.Op == OpHashAggregate
		return &myxBlock{Grouping: inner}
	case OpMaterialize:
		return &myxBlock{Buffer: g.block(n.Children[0])}
	case OpLimit, OpHash:
		return g.block(n.Children[0])
	case OpResult:
		return &myxBlock{Message: "No tables used"}
	case OpHashJoin, OpMergeJoin, OpNestedLoop:
		return &myxBlock{NestedLoop: g.nestedLoop(n)}
	default: // scans
		return &myxBlock{Table: g.tableRef(n, "", "")}
	}
}

func isJoinOp(op Op) bool {
	return op == OpHashJoin || op == OpMergeJoin || op == OpNestedLoop
}

// nestedLoop flattens a left-deep join subtree into MySQL's flat
// nested_loop array. The join predicate lands on the inner table's
// attached_condition (that is where MySQL evaluates it); hash joins mark
// the inner table with using_join_buffer, everything else degrades to the
// nested-loop family MySQL actually executes.
func (g *mysqlGen) nestedLoop(n *Node) []myxJoin {
	left, right := n.Children[0], n.Children[1]
	if right.Op == OpHash {
		right = right.Children[0]
	}
	var items []myxJoin
	if isJoinOp(left.Op) && left.Filter == nil {
		items = g.nestedLoop(left)
	} else {
		items = []myxJoin{{Table: g.tableRef(left, "", "")}}
	}
	joinBuffer := ""
	if n.Op == OpHashJoin {
		joinBuffer = "hash join"
	}
	cond := combineConds(condText(n.JoinCond), condText(n.Filter))
	inner := g.tableRef(right, cond, joinBuffer)
	// As in real MySQL, the inner table of a join prefix reports the
	// cumulative numbers of the whole prefix: prefix_cost is the join's
	// total cost and rows_produced_per_join its output estimate; the
	// table's own access cost moves to read_cost.
	inner.CostInfo = &myxCost{
		PrefixCost: fmt.Sprintf("%.2f", round2(n.EstCost)),
		ReadCost:   fmt.Sprintf("%.2f", round2(right.EstCost)),
	}
	inner.RowsProduced = n.EstRows
	return append(items, myxJoin{Table: inner})
}

// tableRef renders one join input as a table access object. Scans map
// directly; any other operator becomes a materialized derived table, the
// way MySQL represents non-table join inputs. joinCond is the enclosing
// join's predicate ("" for the first table of a nested_loop).
func (g *mysqlGen) tableRef(n *Node, joinCond, joinBuffer string) *myxTable {
	cost := &myxCost{PrefixCost: fmt.Sprintf("%.2f", round2(n.EstCost))}
	switch n.Op {
	case OpSeqScan:
		return &myxTable{
			TableName:         aliasOr(n),
			AccessType:        "ALL",
			RowsExamined:      n.EstRows,
			RowsProduced:      n.EstRows,
			Filtered:          "100.00",
			CostInfo:          cost,
			AttachedCondition: combineConds(joinCond, condText(n.Filter)),
			UsingJoinBuffer:   joinBuffer,
		}
	case OpIndexScan:
		access := "index"
		if n.IndexCond != nil {
			access = "ref"
		}
		return &myxTable{
			TableName:         aliasOr(n),
			AccessType:        access,
			Key:               n.IndexName,
			RowsExamined:      n.EstRows,
			RowsProduced:      n.EstRows,
			Filtered:          "100.00",
			CostInfo:          cost,
			IndexCondition:    condText(n.IndexCond),
			AttachedCondition: combineConds(joinCond, condText(n.Filter)),
			UsingJoinBuffer:   joinBuffer,
		}
	default:
		g.nderived++
		return &myxTable{
			TableName:         fmt.Sprintf("<derived%d>", g.nderived+1),
			AccessType:        "ALL",
			RowsExamined:      n.EstRows,
			RowsProduced:      n.EstRows,
			CostInfo:          cost,
			AttachedCondition: joinCond,
			UsingJoinBuffer:   joinBuffer,
			Materialized:      &myxSubquery{QueryBlock: g.block(n)},
		}
	}
}

// combineConds joins two rendered predicates with AND, tolerating either
// being empty.
func combineConds(a, b string) string {
	switch {
	case a == "":
		return b
	case b == "":
		return a
	}
	return "(" + a + " AND " + b + ")"
}
