package engine

import (
	"fmt"
	"math/bits"
	"sort"

	"lantern/internal/sqlparser"
	"lantern/internal/storage"
)

// relation is one base-table binding in the FROM clause.
type relation struct {
	table string // catalog table name
	alias string // binding name (alias, or table name when unaliased)
}

// predicate is a classified WHERE/ON conjunct.
type predicate struct {
	expr   sqlparser.Expr
	tables map[string]bool // aliases referenced
	// equi-join shape: left/right column refs when expr is col = col across
	// two relations.
	eqLeft, eqRight *sqlparser.ColumnRef
}

// planner carries the state of planning one SELECT.
type planner struct {
	eng  *Engine
	sel  *sqlparser.SelectStmt
	rels []relation
	// colOwner maps unqualified column name -> alias; ambiguous names map
	// to "" and error on use.
	colOwner map[string]string
	est      *selectivityEstimator
	preds    []predicate // all conjuncts (scan filters and join predicates)
}

// planSelect builds the physical plan for a SELECT statement.
func (e *Engine) planSelect(sel *sqlparser.SelectStmt) (*Node, error) {
	p := &planner{eng: e, sel: sel}
	if len(sel.From) == 0 {
		return p.planConstResult()
	}
	hasOuter, err := p.bindFrom()
	if err != nil {
		return nil, err
	}
	if err := p.rewriteAliases(); err != nil {
		return nil, err
	}
	var join *Node
	if hasOuter {
		join, err = p.planSyntactic()
	} else {
		join, err = p.planCostBased()
	}
	if err != nil {
		return nil, err
	}
	n, err := p.finishPlan(join)
	if err != nil {
		return nil, err
	}
	e.annotateParallel(n)
	return n, nil
}

// planConstResult handles SELECT without FROM.
func (p *planner) planConstResult() (*Node, error) {
	n := &Node{Op: OpResult, ResultItems: p.sel.Items, EstRows: 1, EstCost: cpuTupleCost}
	for _, it := range p.sel.Items {
		if it.Star || it.TableStar != "" {
			return nil, fmt.Errorf("engine: SELECT * requires a FROM clause")
		}
		n.Schema = append(n.Schema, colRef{Name: itemName(it)})
	}
	return n, nil
}

func itemName(it sqlparser.SelectItem) string {
	if it.Alias != "" {
		return it.Alias
	}
	return sqlparser.FormatExpr(it.Expr)
}

// bindFrom registers relations and collects all predicates (WHERE conjuncts
// plus inner-join ON conditions). It reports whether the query contains any
// outer join, which forces syntactic join order.
func (p *planner) bindFrom() (bool, error) {
	hasOuter := false
	var walkRef func(ref sqlparser.TableRef) error
	walkRef = func(ref sqlparser.TableRef) error {
		switch r := ref.(type) {
		case *sqlparser.BaseTable:
			if !p.eng.Cat.HasTable(r.Name) {
				return fmt.Errorf("engine: relation %q does not exist", r.Name)
			}
			alias := r.Alias
			if alias == "" {
				alias = r.Name
			}
			for _, existing := range p.rels {
				if existing.alias == alias {
					return fmt.Errorf("engine: table name %q specified more than once", alias)
				}
			}
			p.rels = append(p.rels, relation{table: r.Name, alias: alias})
		case *sqlparser.JoinRef:
			if r.Type == sqlparser.LeftJoin {
				hasOuter = true
			}
			if err := walkRef(r.Left); err != nil {
				return err
			}
			if err := walkRef(r.Right); err != nil {
				return err
			}
		}
		return nil
	}
	for _, ref := range p.sel.From {
		if err := walkRef(ref); err != nil {
			return false, err
		}
	}
	// Column ownership for unqualified references.
	p.colOwner = make(map[string]string)
	tableOf := make(map[string]string, len(p.rels))
	for _, r := range p.rels {
		tableOf[r.alias] = r.table
		t, err := p.eng.Cat.Table(r.table)
		if err != nil {
			return false, err
		}
		for _, c := range t.Columns {
			if _, seen := p.colOwner[c.Name]; seen {
				p.colOwner[c.Name] = "" // ambiguous
			} else {
				p.colOwner[c.Name] = r.alias
			}
		}
	}
	p.est = &selectivityEstimator{cat: p.eng.Cat, tableOf: tableOf}

	// Collect predicates: WHERE conjuncts + inner join ON conjuncts (outer
	// join ONs stay attached to their join in syntactic planning).
	if !hasOuter {
		var gather func(ref sqlparser.TableRef)
		gather = func(ref sqlparser.TableRef) {
			if j, ok := ref.(*sqlparser.JoinRef); ok {
				for _, c := range sqlparser.SplitConjuncts(j.On) {
					p.addPredicate(c)
				}
				gather(j.Left)
				gather(j.Right)
			}
		}
		for _, ref := range p.sel.From {
			gather(ref)
		}
	}
	for _, c := range sqlparser.SplitConjuncts(p.sel.Where) {
		p.addPredicate(c)
	}
	return hasOuter, nil
}

func (p *planner) addPredicate(e sqlparser.Expr) {
	pr := predicate{expr: e, tables: p.tablesOf(e)}
	if be, ok := e.(*sqlparser.BinaryExpr); ok && be.Op == sqlparser.OpEq {
		lc, lok := be.Left.(*sqlparser.ColumnRef)
		rc, rok := be.Right.(*sqlparser.ColumnRef)
		if lok && rok {
			lt, rt := p.ownerOf(lc), p.ownerOf(rc)
			if lt != "" && rt != "" && lt != rt {
				pr.eqLeft, pr.eqRight = lc, rc
			}
		}
	}
	p.preds = append(p.preds, pr)
}

// ownerOf resolves a column reference to its relation alias ("" if unknown).
func (p *planner) ownerOf(c *sqlparser.ColumnRef) string {
	if c.Table != "" {
		for _, r := range p.rels {
			if r.alias == c.Table {
				return r.alias
			}
		}
		return ""
	}
	return p.colOwner[c.Name]
}

// tablesOf returns the set of relation aliases an expression references.
// Subqueries contribute no outer tables (only uncorrelated are supported).
func (p *planner) tablesOf(e sqlparser.Expr) map[string]bool {
	out := make(map[string]bool)
	sqlparser.WalkExpr(e, func(x sqlparser.Expr) {
		if c, ok := x.(*sqlparser.ColumnRef); ok {
			if owner := p.ownerOf(c); owner != "" {
				out[owner] = true
			}
		}
	})
	return out
}

// rewriteAliases replaces select-item aliases used in GROUP BY, HAVING and
// ORDER BY with the underlying expressions (PostgreSQL permits this).
func (p *planner) rewriteAliases() error {
	aliasExpr := make(map[string]sqlparser.Expr)
	for _, it := range p.sel.Items {
		if it.Alias != "" && it.Expr != nil {
			aliasExpr[it.Alias] = it.Expr
		}
	}
	subst := func(e sqlparser.Expr) sqlparser.Expr {
		if c, ok := e.(*sqlparser.ColumnRef); ok && c.Table == "" {
			// Only substitute when the name is not a real column.
			if p.colOwner[c.Name] == "" {
				if repl, ok := aliasExpr[c.Name]; ok {
					return repl
				}
			}
		}
		return e
	}
	for i, g := range p.sel.GroupBy {
		p.sel.GroupBy[i] = subst(g)
	}
	for i, o := range p.sel.OrderBy {
		p.sel.OrderBy[i].Expr = subst(o.Expr)
	}
	return nil
}

// --- Scan planning --------------------------------------------------------

// planScan builds the access path for one relation, consuming the matching
// single-table predicates.
func (p *planner) planScan(rel relation) (*Node, error) {
	t, err := p.eng.Cat.Table(rel.table)
	if err != nil {
		return nil, err
	}
	stats, err := p.eng.Cat.Stats(rel.table)
	if err != nil {
		return nil, err
	}
	var filters []sqlparser.Expr
	for i := range p.preds {
		pr := &p.preds[i]
		if pr.eqLeft != nil {
			continue // join predicate
		}
		if len(pr.tables) == 1 && pr.tables[rel.alias] {
			filters = append(filters, pr.expr)
			pr.expr = nil // consumed
		}
	}
	p.compactPreds()

	baseRows := float64(stats.RowCount)
	sel := 1.0
	for _, f := range filters {
		sel *= p.est.selectivity(f)
	}
	outRows := baseRows * sel
	if outRows < 1 {
		outRows = 1
	}

	seq := &Node{
		Op:       OpSeqScan,
		Relation: rel.table,
		Alias:    rel.alias,
		Filter:   sqlparser.JoinConjuncts(filters),
		EstRows:  outRows,
	}
	seq.Schema = scanSchema(t, rel.alias)
	seq.EstCost = seqScanCost(baseRows, p.predictedPruneFraction(t, seq.Filter, seq.Schema))

	if !p.eng.Cfg.EnableIndexScan {
		return seq, nil
	}
	best := seq
	for _, idxCol := range t.IndexedColumns() {
		idxConds, residual := splitIndexConds(filters, rel.alias, idxCol, p.colOwner)
		if len(idxConds) == 0 {
			continue
		}
		idxSel := 1.0
		for _, c := range idxConds {
			idxSel *= p.est.selectivity(c)
		}
		matchRows := baseRows * idxSel
		if matchRows < 1 {
			matchRows = 1
		}
		cost := indexScanCost(baseRows, matchRows)
		if cost >= best.EstCost && best.Op == OpIndexScan {
			continue
		}
		if cost >= seq.EstCost {
			continue
		}
		idx := &Node{
			Op:        OpIndexScan,
			Relation:  rel.table,
			Alias:     rel.alias,
			IndexName: fmt.Sprintf("%s_%s_idx", rel.table, idxCol),
			IndexCond: sqlparser.JoinConjuncts(idxConds),
			Filter:    sqlparser.JoinConjuncts(residual),
			EstRows:   outRows,
			EstCost:   cost,
			Schema:    seq.Schema,
			sorted:    []sortKey{{Expr: &sqlparser.ColumnRef{Table: rel.alias, Name: idxCol}}},
		}
		if best.Op != OpIndexScan || cost < best.EstCost {
			best = idx
		}
	}
	return best, nil
}

// predictedPruneFraction estimates the fraction of heap rows a filtered
// sequential scan will skip via zone-map pruning, by replaying the
// compiled predicate's zone checks against the table's current sealed
// segments — the same checks the executor makes, so the prediction is
// exact for the snapshot the planner sees. Cost: one min/max comparison
// per segment, no row access.
func (p *planner) predictedPruneFraction(t *storage.Table, filter sqlparser.Expr, schema []colRef) float64 {
	if filter == nil || p.eng.Cfg.DisableZonePruning {
		return 0
	}
	pred, err := compileVecPred(filter, schema, p.eng.subquery)
	if err != nil || pred == nil {
		return 0
	}
	snap := t.Snapshot()
	total := snap.NumRows()
	if total == 0 {
		return 0
	}
	pruned := 0
	for _, seg := range snap.Segments() {
		if segPruned(pred, seg) {
			pruned += seg.NumRows()
		}
	}
	return float64(pruned) / float64(total)
}

func scanSchema(t *storage.Table, alias string) []colRef {
	schema := make([]colRef, len(t.Columns))
	for i, c := range t.Columns {
		schema[i] = colRef{Qual: alias, Name: c.Name}
	}
	return schema
}

// splitIndexConds partitions filters into those an index on (alias, col) can
// satisfy (equality / range / BETWEEN against literals) and the rest.
func splitIndexConds(filters []sqlparser.Expr, alias, col string, colOwner map[string]string) (idx, rest []sqlparser.Expr) {
	matchesCol := func(e sqlparser.Expr) bool {
		c, ok := e.(*sqlparser.ColumnRef)
		if !ok || c.Name != col {
			return false
		}
		return c.Table == alias || (c.Table == "" && colOwner[col] == alias)
	}
	for _, f := range filters {
		switch ex := f.(type) {
		case *sqlparser.BinaryExpr:
			if _, isLit := literalDatum(ex.Right); isLit && matchesCol(ex.Left) {
				switch ex.Op {
				case sqlparser.OpEq, sqlparser.OpLt, sqlparser.OpLe, sqlparser.OpGt, sqlparser.OpGe:
					idx = append(idx, f)
					continue
				}
			}
			if _, isLit := literalDatum(ex.Left); isLit && matchesCol(ex.Right) {
				switch ex.Op {
				case sqlparser.OpEq, sqlparser.OpLt, sqlparser.OpLe, sqlparser.OpGt, sqlparser.OpGe:
					idx = append(idx, f)
					continue
				}
			}
		case *sqlparser.BetweenExpr:
			if !ex.Not && matchesCol(ex.X) {
				_, loLit := literalDatum(ex.Lo)
				_, hiLit := literalDatum(ex.Hi)
				if loLit && hiLit {
					idx = append(idx, f)
					continue
				}
			}
		}
		rest = append(rest, f)
	}
	return idx, rest
}

func (p *planner) compactPreds() {
	kept := p.preds[:0]
	for _, pr := range p.preds {
		if pr.expr != nil {
			kept = append(kept, pr)
		}
	}
	p.preds = kept
}

// --- Cost-based join ordering ---------------------------------------------

// planCostBased orders inner joins with dynamic programming over connected
// sub-plans (greedy beyond Cfg.DPThreshold relations).
func (p *planner) planCostBased() (*Node, error) {
	n := len(p.rels)
	scans := make([]*Node, n)
	for i, rel := range p.rels {
		s, err := p.planScan(rel)
		if err != nil {
			return nil, err
		}
		scans[i] = s
	}
	if n == 1 {
		return p.applyResidual(scans[0], []string{p.rels[0].alias})
	}
	if n > p.eng.Cfg.DPThreshold {
		return p.greedyJoin(scans)
	}
	return p.dpJoin(scans)
}

// aliasBit maps relation index to a bitmask bit.
func (p *planner) aliasSet(mask uint64) map[string]bool {
	out := make(map[string]bool)
	for i := range p.rels {
		if mask&(1<<uint(i)) != 0 {
			out[p.rels[i].alias] = true
		}
	}
	return out
}

// joinPredsBetween returns the equi-join predicates connecting two disjoint
// alias sets, and whether any exist.
func (p *planner) joinPredsBetween(left, right map[string]bool) []sqlparser.Expr {
	var out []sqlparser.Expr
	for _, pr := range p.preds {
		if pr.eqLeft == nil {
			continue
		}
		lt, rt := p.ownerOf(pr.eqLeft), p.ownerOf(pr.eqRight)
		if (left[lt] && right[rt]) || (left[rt] && right[lt]) {
			out = append(out, pr.expr)
		}
	}
	return out
}

func (p *planner) dpJoin(scans []*Node) (*Node, error) {
	n := len(p.rels)
	best := make(map[uint64]*Node, 1<<uint(n))
	for i, s := range scans {
		best[1<<uint(i)] = s
	}
	full := uint64(1<<uint(n)) - 1
	// Enumerate subsets by population count so both halves are ready.
	masks := make([]uint64, 0, 1<<uint(n))
	for m := uint64(1); m <= full; m++ {
		masks = append(masks, m)
	}
	sort.Slice(masks, func(a, b int) bool {
		return bits.OnesCount64(masks[a]) < bits.OnesCount64(masks[b])
	})
	for _, mask := range masks {
		if bits.OnesCount64(mask) < 2 {
			continue
		}
		var bestPlan *Node
		consider := func(sub uint64) {
			other := mask &^ sub
			l, lok := best[sub]
			r, rok := best[other]
			if !lok || !rok {
				return
			}
			conds := p.joinPredsBetween(p.aliasSet(sub), p.aliasSet(other))
			cand := p.buildJoin(l, r, conds)
			if bestPlan == nil || cand.EstCost < bestPlan.EstCost {
				bestPlan = cand
			}
		}
		// First pass: connected splits only.
		connectedFound := false
		for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
			if sub > mask&^sub {
				continue // consider each unordered split once
			}
			if len(p.joinPredsBetween(p.aliasSet(sub), p.aliasSet(mask&^sub))) > 0 {
				connectedFound = true
				consider(sub)
			}
		}
		if !connectedFound {
			// Cartesian fallback.
			for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
				if sub > mask&^sub {
					continue
				}
				consider(sub)
			}
		}
		if bestPlan != nil {
			best[mask] = bestPlan
		}
	}
	root, ok := best[full]
	if !ok {
		return nil, fmt.Errorf("engine: join planning failed")
	}
	aliases := make([]string, len(p.rels))
	for i, r := range p.rels {
		aliases[i] = r.alias
	}
	return p.applyResidual(root, aliases)
}

func (p *planner) greedyJoin(scans []*Node) (*Node, error) {
	type piece struct {
		plan    *Node
		aliases map[string]bool
	}
	pieces := make([]piece, len(scans))
	for i, s := range scans {
		pieces[i] = piece{plan: s, aliases: map[string]bool{p.rels[i].alias: true}}
	}
	for len(pieces) > 1 {
		bestI, bestJ, bestCost := -1, -1, 0.0
		var bestPlan *Node
		for i := 0; i < len(pieces); i++ {
			for j := i + 1; j < len(pieces); j++ {
				conds := p.joinPredsBetween(pieces[i].aliases, pieces[j].aliases)
				if len(conds) == 0 && bestI >= 0 {
					continue // prefer connected joins
				}
				cand := p.buildJoin(pieces[i].plan, pieces[j].plan, conds)
				if bestI < 0 || cand.EstCost < bestCost {
					bestI, bestJ, bestCost, bestPlan = i, j, cand.EstCost, cand
				}
			}
		}
		merged := piece{plan: bestPlan, aliases: pieces[bestI].aliases}
		for a := range pieces[bestJ].aliases {
			merged.aliases[a] = true
		}
		pieces[bestJ] = pieces[len(pieces)-1]
		pieces = pieces[:len(pieces)-1]
		pieces[bestI] = merged
	}
	aliases := make([]string, len(p.rels))
	for i, r := range p.rels {
		aliases[i] = r.alias
	}
	return p.applyResidual(pieces[0].plan, aliases)
}

// buildJoin picks the cheapest physical join between two sub-plans.
func (p *planner) buildJoin(left, right *Node, conds []sqlparser.Expr) *Node {
	joinCond := sqlparser.JoinConjuncts(conds)
	outRows := p.estimateJoinRows(left, right, conds)
	schema := append(append([]colRef{}, left.Schema...), right.Schema...)
	// The swapped schema is only needed when a candidate puts right first;
	// build it lazily so the common case allocates one schema, not two.
	var schemaRevLazy []colRef
	schemaRev := func() []colRef {
		if schemaRevLazy == nil {
			schemaRevLazy = append(append(make([]colRef, 0, len(schema)), right.Schema...), left.Schema...)
		}
		return schemaRevLazy
	}

	var best *Node
	consider := func(c *Node) {
		if best == nil || c.EstCost < best.EstCost {
			best = c
		}
	}
	cfg := p.eng.Cfg
	if len(conds) > 0 && cfg.EnableHashJoin {
		// Build on the smaller side; probe with the larger. PG shows the
		// probe side first and the Hash(build) second.
		build, probe, sch := left, right, schema
		if right.EstRows < left.EstRows {
			build, probe = right, left
		} else {
			sch = schemaRev()
		}
		hash := &Node{Op: OpHash, Children: []*Node{build}, Schema: build.Schema,
			EstRows: build.EstRows, EstCost: build.EstCost + build.EstRows*hashBuildCost}
		consider(&Node{
			Op: OpHashJoin, Children: []*Node{probe, hash},
			JoinType: sqlparser.InnerJoin, JoinCond: joinCond,
			Schema:  sch,
			EstRows: outRows,
			EstCost: probe.EstCost + hash.EstCost + hashJoinCost(build.EstRows, probe.EstRows, outRows),
		})
	}
	if len(conds) > 0 && cfg.EnableMergeJoin {
		lKeys, rKeys := splitJoinKeys(conds, p, left)
		ls := p.ensureSorted(left, lKeys)
		rs := p.ensureSorted(right, rKeys)
		consider(&Node{
			Op: OpMergeJoin, Children: []*Node{ls, rs},
			JoinType: sqlparser.InnerJoin, JoinCond: joinCond,
			Schema:  schema,
			EstRows: outRows,
			EstCost: ls.EstCost + rs.EstCost + mergeJoinCost(left.EstRows, right.EstRows, outRows),
			sorted:  keysToSort(lKeys),
		})
	}
	if cfg.EnableNestLoop || best == nil {
		outer, inner, sch := left, right, schema
		if right.EstRows < left.EstRows {
			outer, inner, sch = right, left, schemaRev()
		}
		consider(&Node{
			Op: OpNestedLoop, Children: []*Node{outer, inner},
			JoinType: sqlparser.InnerJoin, JoinCond: joinCond,
			Schema:  sch,
			EstRows: outRows,
			EstCost: outer.EstCost + inner.EstCost + nestedLoopCost(outer.EstRows, inner.EstRows, outRows),
		})
	}
	return best
}

// estimateJoinRows applies the containment assumption per equi-condition.
func (p *planner) estimateJoinRows(left, right *Node, conds []sqlparser.Expr) float64 {
	rows := left.EstRows * right.EstRows
	for _, c := range conds {
		be, ok := c.(*sqlparser.BinaryExpr)
		if !ok {
			continue
		}
		lc, _ := be.Left.(*sqlparser.ColumnRef)
		rc, _ := be.Right.(*sqlparser.ColumnRef)
		if lc == nil || rc == nil {
			continue
		}
		rows = rows / maxf(float64(maxi(p.est.ndv(lc), 1)), float64(maxi(p.est.ndv(rc), 1)))
	}
	if len(conds) == 0 {
		return rows
	}
	if rows < 1 {
		rows = 1
	}
	return rows
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// splitJoinKeys extracts per-side sort keys from equi-join conditions. The
// side owning each column is decided against leftPlan's schema.
func splitJoinKeys(conds []sqlparser.Expr, p *planner, leftPlan *Node) (lKeys, rKeys []sqlparser.Expr) {
	inLeft := func(c *sqlparser.ColumnRef) bool {
		owner := p.ownerOf(c)
		for _, sc := range leftPlan.Schema {
			if sc.Qual == owner {
				return true
			}
		}
		return false
	}
	for _, c := range conds {
		be, ok := c.(*sqlparser.BinaryExpr)
		if !ok || be.Op != sqlparser.OpEq {
			continue
		}
		lc, lok := be.Left.(*sqlparser.ColumnRef)
		rc, rok := be.Right.(*sqlparser.ColumnRef)
		if !lok || !rok {
			continue
		}
		if inLeft(lc) {
			lKeys = append(lKeys, lc)
			rKeys = append(rKeys, rc)
		} else {
			lKeys = append(lKeys, rc)
			rKeys = append(rKeys, lc)
		}
	}
	return lKeys, rKeys
}

func keysToSort(keys []sqlparser.Expr) []sortKey {
	out := make([]sortKey, len(keys))
	for i, k := range keys {
		out[i] = sortKey{Expr: k}
	}
	return out
}

// ensureSorted wraps a plan with a Sort node unless it is already ordered by
// the given keys.
func (p *planner) ensureSorted(n *Node, keys []sqlparser.Expr) *Node {
	if sortSatisfiesExprs(n.sorted, keys) {
		return n
	}
	want := keysToSort(keys)
	return &Node{
		Op: OpSort, Children: []*Node{n},
		SortKeys: want,
		Schema:   n.Schema,
		EstRows:  n.EstRows,
		EstCost:  n.EstCost + sortCost(n.EstRows),
		sorted:   want,
	}
}

// sortSatisfies reports whether ordering `have` subsumes `want` (prefix
// match on formatted expression text and direction).
func sortSatisfies(have, want []sortKey) bool {
	if len(want) == 0 {
		return true
	}
	if len(have) < len(want) {
		return false
	}
	for i, w := range want {
		if have[i].Desc != w.Desc {
			return false
		}
		if !sortExprEqual(have[i].Expr, w.Expr) {
			return false
		}
	}
	return true
}

// sortSatisfiesExprs is sortSatisfies for a list of ascending key
// expressions, checked without materializing a []sortKey.
func sortSatisfiesExprs(have []sortKey, want []sqlparser.Expr) bool {
	if len(want) == 0 {
		return true
	}
	if len(have) < len(want) {
		return false
	}
	for i, w := range want {
		if have[i].Desc || !sortExprEqual(have[i].Expr, w) {
			return false
		}
	}
	return true
}

// sortExprEqual compares ordering expressions, tolerating a missing table
// qualifier on one side (an unqualified ORDER BY key matches the
// alias-qualified ordering an index scan provides, as long as the column
// name is unambiguous — the binder has already rejected ambiguous names).
func sortExprEqual(a, b sqlparser.Expr) bool {
	// Column references — the overwhelmingly common ordering key — compare
	// by field without formatting (FormatExpr allocates on every call).
	ac, aok := a.(*sqlparser.ColumnRef)
	bc, bok := b.(*sqlparser.ColumnRef)
	if aok && bok {
		if ac.Name != bc.Name {
			return false
		}
		return ac.Table == bc.Table || ac.Table == "" || bc.Table == ""
	}
	return sqlparser.FormatExpr(a) == sqlparser.FormatExpr(b)
}

// applyResidual attaches any predicates not yet consumed (multi-table
// non-equi conditions, subquery conditions) as a filter on the join root.
func (p *planner) applyResidual(root *Node, aliases []string) (*Node, error) {
	var rest []sqlparser.Expr
	for _, pr := range p.preds {
		if pr.expr == nil {
			continue
		}
		if pr.eqLeft != nil {
			// Equi-join predicate: consumed by joins; if it survives (e.g.
			// redundant edge), apply as filter to stay correct.
			if predicateApplied(root, pr.expr) {
				continue
			}
		}
		rest = append(rest, pr.expr)
	}
	if len(rest) == 0 {
		return root, nil
	}
	sel := 1.0
	for _, f := range rest {
		sel *= p.est.selectivity(f)
	}
	// Fold into the root node's filter.
	combined := sqlparser.JoinConjuncts(append(sqlparser.SplitConjuncts(root.Filter), rest...))
	root.Filter = combined
	root.EstRows = maxf(1, root.EstRows*sel)
	return root, nil
}

// predicateApplied reports whether the formatted predicate already appears
// in some join condition of the plan.
func predicateApplied(root *Node, e sqlparser.Expr) bool {
	text := sqlparser.FormatExpr(e)
	found := false
	root.Walk(func(n *Node) {
		for _, c := range sqlparser.SplitConjuncts(n.JoinCond) {
			if sqlparser.FormatExpr(c) == text {
				found = true
			}
		}
	})
	return found
}

// --- Syntactic planning (outer joins) --------------------------------------

// planSyntactic plans the FROM clause exactly as written, choosing only the
// physical join algorithm. WHERE predicates are applied after all joins to
// preserve outer-join semantics.
func (p *planner) planSyntactic() (*Node, error) {
	var build func(ref sqlparser.TableRef) (*Node, error)
	build = func(ref sqlparser.TableRef) (*Node, error) {
		switch r := ref.(type) {
		case *sqlparser.BaseTable:
			alias := r.Alias
			if alias == "" {
				alias = r.Name
			}
			t, err := p.eng.Cat.Table(r.Name)
			if err != nil {
				return nil, err
			}
			stats, err := p.eng.Cat.Stats(r.Name)
			if err != nil {
				return nil, err
			}
			rows := maxf(1, float64(stats.RowCount))
			return &Node{
				Op: OpSeqScan, Relation: r.Name, Alias: alias,
				// Syntactic scans carry no filter yet (WHERE applies after
				// the joins), so no pruning can be predicted here.
				Schema: scanSchema(t, alias), EstRows: rows, EstCost: seqScanCost(rows, 0),
			}, nil
		case *sqlparser.JoinRef:
			left, err := build(r.Left)
			if err != nil {
				return nil, err
			}
			right, err := build(r.Right)
			if err != nil {
				return nil, err
			}
			return p.buildOuterAwareJoin(left, right, r)
		}
		return nil, fmt.Errorf("engine: unsupported FROM element %T", ref)
	}
	var root *Node
	for _, ref := range p.sel.From {
		n, err := build(ref)
		if err != nil {
			return nil, err
		}
		if root == nil {
			root = n
		} else {
			root = p.buildJoin(root, n, nil)
		}
	}
	// WHERE applies after the joins (outer-join safe).
	if p.sel.Where != nil {
		sel := p.est.selectivity(p.sel.Where)
		root.Filter = sqlparser.JoinConjuncts(append(sqlparser.SplitConjuncts(root.Filter), sqlparser.SplitConjuncts(p.sel.Where)...))
		root.EstRows = maxf(1, root.EstRows*sel)
	}
	return root, nil
}

// buildOuterAwareJoin keeps operand order for LEFT JOIN (no commuting) and
// uses a hash join when the ON condition is a pure equi-conjunction.
func (p *planner) buildOuterAwareJoin(left, right *Node, r *sqlparser.JoinRef) (*Node, error) {
	if r.Type == sqlparser.InnerJoin {
		return p.buildJoin(left, right, sqlparser.SplitConjuncts(r.On)), nil
	}
	schema := append(append([]colRef{}, left.Schema...), right.Schema...)
	outRows := maxf(left.EstRows, p.estimateJoinRows(left, right, sqlparser.SplitConjuncts(r.On)))
	if allEquiConds(r.On, p) && p.eng.Cfg.EnableHashJoin {
		hash := &Node{Op: OpHash, Children: []*Node{right}, Schema: right.Schema,
			EstRows: right.EstRows, EstCost: right.EstCost + right.EstRows*hashBuildCost}
		return &Node{
			Op: OpHashJoin, Children: []*Node{left, hash},
			JoinType: sqlparser.LeftJoin, JoinCond: r.On,
			Schema: schema, EstRows: outRows,
			EstCost: left.EstCost + hash.EstCost + hashJoinCost(right.EstRows, left.EstRows, outRows),
		}, nil
	}
	return &Node{
		Op: OpNestedLoop, Children: []*Node{left, right},
		JoinType: sqlparser.LeftJoin, JoinCond: r.On,
		Schema: schema, EstRows: outRows,
		EstCost: left.EstCost + right.EstCost + nestedLoopCost(left.EstRows, right.EstRows, outRows),
	}, nil
}

func allEquiConds(on sqlparser.Expr, p *planner) bool {
	conds := sqlparser.SplitConjuncts(on)
	if len(conds) == 0 {
		return false
	}
	for _, c := range conds {
		be, ok := c.(*sqlparser.BinaryExpr)
		if !ok || be.Op != sqlparser.OpEq {
			return false
		}
		if _, ok := be.Left.(*sqlparser.ColumnRef); !ok {
			return false
		}
		if _, ok := be.Right.(*sqlparser.ColumnRef); !ok {
			return false
		}
	}
	return true
}

// --- Aggregation, distinct, order, limit -----------------------------------

// finishPlan layers aggregation, DISTINCT, ORDER BY and LIMIT over the join
// tree and validates the final projection.
func (p *planner) finishPlan(root *Node) (*Node, error) {
	aggs := p.collectAggregates()
	grouped := len(p.sel.GroupBy) > 0 || len(aggs) > 0

	if grouped {
		var err error
		root, err = p.planAggregate(root, aggs)
		if err != nil {
			return nil, err
		}
	} else if p.sel.Having != nil {
		return nil, fmt.Errorf("engine: HAVING requires aggregation")
	}

	if p.sel.Distinct {
		root = p.planDistinct(root)
	}

	if len(p.sel.OrderBy) > 0 {
		want := make([]sortKey, len(p.sel.OrderBy))
		for i, o := range p.sel.OrderBy {
			want[i] = sortKey{Expr: o.Expr, Desc: o.Desc}
		}
		if !sortSatisfies(root.sorted, want) {
			root = &Node{
				Op: OpSort, Children: []*Node{root},
				SortKeys: want, Schema: root.Schema,
				EstRows: root.EstRows,
				EstCost: root.EstCost + sortCost(root.EstRows),
				sorted:  want,
			}
		}
	}

	if p.sel.Limit >= 0 || p.sel.Offset > 0 {
		rows := root.EstRows
		if p.sel.Limit >= 0 {
			rows = minf(rows, float64(p.sel.Limit))
			// A Sort feeding a Limit only ever surfaces the first
			// limit+offset rows of the ordering: mark it so the streaming
			// executor can keep a bounded top-K heap.
			if root.Op == OpSort {
				root.SortLimit = p.sel.Limit + p.sel.Offset
			}
		}
		root = &Node{
			Op: OpLimit, Children: []*Node{root},
			Limit: p.sel.Limit, Offset: p.sel.Offset, Schema: root.Schema,
			EstRows: rows, EstCost: root.EstCost + rows*cpuTupleCost,
			sorted: root.sorted,
		}
	}
	return root, nil
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// collectAggregates gathers every aggregate call in the select items,
// HAVING and ORDER BY, deduplicated by formatted text.
func (p *planner) collectAggregates() []aggSpec {
	seen := make(map[string]bool)
	var out []aggSpec
	add := func(e sqlparser.Expr) {
		sqlparser.WalkExpr(e, func(x sqlparser.Expr) {
			if f, ok := x.(*sqlparser.FuncCall); ok && sqlparser.IsAggregateName(f.Name) {
				name := sqlparser.FormatExpr(f)
				if !seen[name] {
					seen[name] = true
					out = append(out, aggSpec{Call: f, Name: name})
				}
			}
		})
	}
	for _, it := range p.sel.Items {
		if it.Expr != nil {
			add(it.Expr)
		}
	}
	add(p.sel.Having)
	for _, o := range p.sel.OrderBy {
		add(o.Expr)
	}
	return out
}

// planAggregate adds the aggregation node (plain, hash, or sorted-group).
func (p *planner) planAggregate(input *Node, aggs []aggSpec) (*Node, error) {
	keys := p.sel.GroupBy
	schema := make([]colRef, 0, len(keys)+len(aggs))
	for _, k := range keys {
		if c, ok := k.(*sqlparser.ColumnRef); ok {
			owner := p.ownerOf(c)
			schema = append(schema, colRef{Qual: owner, Name: c.Name})
		} else {
			schema = append(schema, colRef{Name: sqlparser.FormatExpr(k)})
		}
	}
	for _, a := range aggs {
		schema = append(schema, colRef{Name: a.Name})
	}

	if len(keys) == 0 {
		return &Node{
			Op: OpAggregate, Children: []*Node{input},
			Aggs: aggs, HavingFilter: p.sel.Having,
			Schema: schema, EstRows: 1,
			EstCost: input.EstCost + groupAggCost(input.EstRows),
		}, nil
	}

	groups := estimateGroups(p.est, keys, input.EstRows)
	keySort := keysToSort(keys)

	hashCost := input.EstCost + hashAggCost(input.EstRows, groups)
	sortedInput := input
	if !sortSatisfies(input.sorted, keySort) {
		sortedInput = &Node{
			Op: OpSort, Children: []*Node{input},
			SortKeys: keySort, Schema: input.Schema,
			EstRows: input.EstRows,
			EstCost: input.EstCost + sortCost(input.EstRows),
			sorted:  keySort,
		}
	}
	groupCost := sortedInput.EstCost + groupAggCost(input.EstRows)

	useHash := p.eng.Cfg.EnableHashAgg && hashCost <= groupCost
	if useHash {
		return &Node{
			Op: OpHashAggregate, Children: []*Node{input},
			GroupKeys: keys, Aggs: aggs, HavingFilter: p.sel.Having,
			Schema: schema, EstRows: groups, EstCost: hashCost,
		}, nil
	}
	return &Node{
		Op: OpGroupAggregate, Children: []*Node{sortedInput},
		GroupKeys: keys, Aggs: aggs, HavingFilter: p.sel.Having,
		Schema: schema, EstRows: groups, EstCost: groupCost,
		sorted: keySort,
	}, nil
}

// planDistinct adds Sort+Unique (or just Unique over sorted input) on the
// final select-item expressions.
func (p *planner) planDistinct(input *Node) *Node {
	var keys []sortKey
	for _, it := range p.sel.Items {
		if it.Star || it.TableStar != "" {
			for _, c := range input.Schema {
				keys = append(keys, sortKey{Expr: &sqlparser.ColumnRef{Table: c.Qual, Name: c.Name}})
			}
			continue
		}
		keys = append(keys, sortKey{Expr: it.Expr})
	}
	src := input
	if !sortSatisfies(input.sorted, keys) {
		src = &Node{
			Op: OpSort, Children: []*Node{input},
			SortKeys: keys, Schema: input.Schema,
			EstRows: input.EstRows,
			EstCost: input.EstCost + sortCost(input.EstRows),
			sorted:  keys,
		}
	}
	return &Node{
		Op: OpUnique, Children: []*Node{src},
		SortKeys: keys, Schema: src.Schema,
		EstRows: maxf(1, src.EstRows/2),
		EstCost: src.EstCost + src.EstRows*cpuTupleCost,
		sorted:  src.sorted,
	}
}
