package engine

// Tests for streaming-executor behavior that the differential tests cannot
// express: LIMIT/OFFSET edge-case semantics, proof that Limit actually
// short-circuits its subtree, top-K equivalence with a stable sort, and
// the top-K heap in isolation.

import (
	"fmt"
	"reflect"
	"testing"

	"lantern/internal/datum"
	"lantern/internal/storage"
)

func queryRows(t *testing.T, e *Engine, sql string) []storage.Row {
	t.Helper()
	return mustExec(t, e, sql).Rows
}

func TestLimitEdgeCases(t *testing.T) {
	e := testDB(t, DefaultConfig())
	cases := []struct {
		sql  string
		want int
	}{
		{"SELECT o_orderkey FROM orders LIMIT 0", 0},
		{"SELECT o_orderkey FROM orders LIMIT 60", 60},
		{"SELECT o_orderkey FROM orders LIMIT 1000", 60}, // limit > input
		{"SELECT o_orderkey FROM orders LIMIT 1", 1},
		{"SELECT o_orderkey FROM orders LIMIT 10 OFFSET 55", 5},  // offset eats into limit
		{"SELECT o_orderkey FROM orders LIMIT 10 OFFSET 60", 0},  // offset == input
		{"SELECT o_orderkey FROM orders LIMIT 10 OFFSET 100", 0}, // offset > input
		{"SELECT o_orderkey FROM orders OFFSET 58", 2},           // OFFSET without LIMIT
		{"SELECT o_orderkey FROM orders LIMIT 0 OFFSET 5", 0},
		{"SELECT o_orderkey FROM orders ORDER BY o_totalprice LIMIT 0", 0},
		{"SELECT o_orderkey FROM orders ORDER BY o_totalprice LIMIT 1000", 60},
		// A huge LIMIT must not pre-allocate limit-sized buffers (top-K
		// heap memory is proportional to the input, not the LIMIT).
		{"SELECT o_orderkey FROM orders ORDER BY o_totalprice LIMIT 2000000000", 60},
		{"SELECT o_orderkey FROM orders ORDER BY o_totalprice DESC LIMIT 5 OFFSET 58", 2},
	}
	for _, c := range cases {
		if got := len(queryRows(t, e, c.sql)); got != c.want {
			t.Errorf("%s: got %d rows, want %d", c.sql, got, c.want)
		}
	}
}

// TestLimitUnderEachJoinType pins LIMIT semantics over every physical join:
// the limited result must be a prefix-sized subset of the full join result.
func TestLimitUnderEachJoinType(t *testing.T) {
	const join = "SELECT c.c_name, o.o_orderkey FROM customer c, orders o WHERE c.c_custkey = o.o_custkey"
	for name, cfg := range diffConfigs() {
		t.Run(name, func(t *testing.T) {
			e := testDB(t, cfg)
			full := make(map[string]bool)
			for _, s := range rowStrings(queryRows(t, e, join)) {
				full[s] = true
			}
			for _, lim := range []int{0, 1, 7, 60, 1000} {
				q := fmt.Sprintf("%s LIMIT %d", join, lim)
				rows := queryRows(t, e, q)
				want := lim
				if lim > len(full) {
					want = len(full)
				}
				if len(rows) != want {
					t.Fatalf("%s: got %d rows, want %d", q, len(rows), want)
				}
				for _, s := range rowStrings(rows) {
					if !full[s] {
						t.Fatalf("%s: row %s not in unlimited result", q, s)
					}
				}
			}
			// LEFT JOIN limit (null-extended rows included).
			leftQ := "SELECT c.c_name, o.o_orderkey FROM customer c LEFT JOIN orders o ON c.c_custkey = o.o_custkey AND o.o_totalprice > 10000 LIMIT 5"
			if got := len(queryRows(t, e, leftQ)); got != 5 {
				t.Fatalf("%s: got %d rows, want 5", leftQ, got)
			}
		})
	}
}

// TestTopKStableWithDuplicateKeys pins the tie-breaking of the bounded
// top-K path: LIMIT over ORDER BY on a duplicate-heavy key must return
// exactly the prefix of a stable full sort — the same rows, in the same
// order, as the unlimited query.
func TestTopKStableWithDuplicateKeys(t *testing.T) {
	e := testDB(t, DefaultConfig())
	full := rowStrings(queryRows(t, e, "SELECT o_orderkey, o_status FROM orders ORDER BY o_status"))
	for _, lim := range []int{1, 7, 20, 60} {
		q := fmt.Sprintf("SELECT o_orderkey, o_status FROM orders ORDER BY o_status LIMIT %d", lim)
		got := rowStrings(queryRows(t, e, q))
		if !reflect.DeepEqual(got, full[:lim]) {
			t.Fatalf("%s: top-K result is not the stable-sort prefix\ngot:  %v\nwant: %v", q, got, full[:lim])
		}
	}
	// With OFFSET the heap keeps limit+offset rows; the window must still
	// match the stable sort.
	got := rowStrings(queryRows(t, e, "SELECT o_orderkey, o_status FROM orders ORDER BY o_status LIMIT 4 OFFSET 6"))
	if !reflect.DeepEqual(got, full[6:10]) {
		t.Fatalf("offset window differs\ngot:  %v\nwant: %v", got, full[6:10])
	}
}

// TestLimitShortCircuitsScan proves the streaming claim directly: LIMIT 3
// over a sequential scan pulls exactly 3 rows from the heap, not all 20.
func TestLimitShortCircuitsScan(t *testing.T) {
	e := testDB(t, DefaultConfig())
	plan, err := e.PlanSQL("SELECT c_name FROM customer LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	it, err := e.buildIter(plan)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	if err := it.Open(); err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	if n != 3 {
		t.Fatalf("drained %d rows, want 3", n)
	}
	lim, ok := it.(*limitIter)
	if !ok {
		t.Fatalf("plan root iterator is %T, want *limitIter", it)
	}
	scan, ok := lim.child.(*seqScanIter)
	if !ok {
		t.Fatalf("limit child is %T, want *seqScanIter", lim.child)
	}
	if scan.pos != 3 {
		t.Fatalf("seq scan pulled %d heap rows, want 3 (short-circuit broken)", scan.pos)
	}
}

// TestSortMarkedTopKOnlyUnderLimit checks the planner annotation: Sort
// directly under Limit carries SortLimit = limit + offset; a bare Sort does
// not.
func TestSortMarkedTopKOnlyUnderLimit(t *testing.T) {
	e := testDB(t, DefaultConfig())
	plan, err := e.PlanSQL("SELECT c_name FROM customer ORDER BY c_acctbal LIMIT 5 OFFSET 2")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Op != OpLimit || plan.Children[0].Op != OpSort {
		t.Fatalf("unexpected plan shape: %s over %s", plan.Op.Name(), plan.Children[0].Op.Name())
	}
	if got := plan.Children[0].SortLimit; got != 7 {
		t.Fatalf("SortLimit = %d, want 7", got)
	}
	plan, err = e.PlanSQL("SELECT c_name FROM customer ORDER BY c_acctbal")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Op != OpSort || plan.SortLimit != 0 {
		t.Fatalf("bare Sort: op %s SortLimit %d, want Sort 0", plan.Op.Name(), plan.SortLimit)
	}
}

// --- topKHeap unit tests ----------------------------------------------------

func heapRowsToInts(rows []storage.Row) []int {
	out := make([]int, len(rows))
	for i, r := range rows {
		out[i] = int(r[0].Int())
	}
	return out
}

func TestTopKHeap(t *testing.T) {
	push := func(h *topKHeap, vals ...int) {
		key := make([]datum.D, 1)
		for _, v := range vals {
			key[0] = datum.NewInt(int64(v))
			h.push(storage.Row{datum.NewInt(int64(v))}, key)
		}
	}
	t.Run("keeps k smallest in order", func(t *testing.T) {
		h := newTopKHeap(3, 1, []bool{false})
		push(h, 9, 4, 7, 1, 8, 2, 6)
		if got := heapRowsToInts(h.finish()); !reflect.DeepEqual(got, []int{1, 2, 4}) {
			t.Fatalf("got %v", got)
		}
	})
	t.Run("desc keeps k largest", func(t *testing.T) {
		h := newTopKHeap(2, 1, []bool{true})
		push(h, 3, 9, 1, 7)
		if got := heapRowsToInts(h.finish()); !reflect.DeepEqual(got, []int{9, 7}) {
			t.Fatalf("got %v", got)
		}
	})
	t.Run("k larger than input", func(t *testing.T) {
		h := newTopKHeap(10, 1, []bool{false})
		push(h, 5, 3, 4)
		if got := heapRowsToInts(h.finish()); !reflect.DeepEqual(got, []int{3, 4, 5}) {
			t.Fatalf("got %v", got)
		}
	})
	t.Run("k zero retains nothing", func(t *testing.T) {
		h := newTopKHeap(0, 1, []bool{false})
		push(h, 1, 2, 3)
		if got := h.finish(); len(got) != 0 {
			t.Fatalf("got %d rows", len(got))
		}
	})
	t.Run("duplicate keys break ties by arrival", func(t *testing.T) {
		h := newTopKHeap(3, 1, []bool{false})
		key := make([]datum.D, 1)
		// Rows (key, id): all key 1 except one key 0 late arrival.
		rows := []struct{ k, id int }{{1, 100}, {1, 101}, {1, 102}, {1, 103}, {0, 104}}
		for _, r := range rows {
			key[0] = datum.NewInt(int64(r.k))
			h.push(storage.Row{datum.NewInt(int64(r.id)), datum.NewInt(int64(r.k))}, key)
		}
		// Stable sort by key then arrival: 104 (key 0), then 100, 101.
		if got := heapRowsToInts(h.finish()); !reflect.DeepEqual(got, []int{104, 100, 101}) {
			t.Fatalf("got %v", got)
		}
	})
}
