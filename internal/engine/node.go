package engine

import (
	"lantern/internal/sqlparser"
)

// Op enumerates the physical operators the engine can plan and execute.
// The vocabulary matches the PostgreSQL operators the paper's examples use.
type Op int

// Physical operators.
const (
	OpSeqScan Op = iota
	OpIndexScan
	OpHash // build side of a hash join (auxiliary, as in the paper)
	OpHashJoin
	OpMergeJoin
	OpNestedLoop
	OpSort // explicit sort (auxiliary to merge join / group aggregate)
	OpMaterialize
	OpAggregate      // plain aggregate, no grouping
	OpHashAggregate  // grouped aggregate via hash table
	OpGroupAggregate // grouped aggregate over sorted input
	OpUnique
	OpLimit
	OpResult // constant result (SELECT without FROM)
)

// Name returns the PostgreSQL-style node name used in EXPLAIN output.
func (o Op) Name() string {
	switch o {
	case OpSeqScan:
		return "Seq Scan"
	case OpIndexScan:
		return "Index Scan"
	case OpHash:
		return "Hash"
	case OpHashJoin:
		return "Hash Join"
	case OpMergeJoin:
		return "Merge Join"
	case OpNestedLoop:
		return "Nested Loop"
	case OpSort:
		return "Sort"
	case OpMaterialize:
		return "Materialize"
	case OpAggregate:
		return "Aggregate"
	case OpHashAggregate:
		return "HashAggregate"
	case OpGroupAggregate:
		return "GroupAggregate"
	case OpUnique:
		return "Unique"
	case OpLimit:
		return "Limit"
	case OpResult:
		return "Result"
	}
	return "Unknown"
}

// SQLServerName returns the SQL-Server-style physical operator name used by
// the XML showplan emitter (e.g. Hash Join -> "Hash Match").
func (o Op) SQLServerName() string {
	switch o {
	case OpSeqScan:
		return "Table Scan"
	case OpIndexScan:
		return "Index Seek"
	case OpHash:
		return "Hash"
	case OpHashJoin:
		return "Hash Match"
	case OpMergeJoin:
		return "Merge Join"
	case OpNestedLoop:
		return "Nested Loops"
	case OpSort:
		return "Sort"
	case OpMaterialize:
		return "Table Spool"
	case OpAggregate, OpGroupAggregate:
		return "Stream Aggregate"
	case OpHashAggregate:
		return "Hash Match Aggregate"
	case OpUnique:
		return "Distinct Sort"
	case OpLimit:
		return "Top"
	case OpResult:
		return "Constant Scan"
	}
	return "Unknown"
}

// colRef identifies one column of a node's output. Base-table columns carry
// the table alias as qualifier; computed columns (aggregates) have an empty
// qualifier and the formatted expression text as name.
type colRef struct {
	Qual string
	Name string
}

// sortKey is one physical ordering key.
type sortKey struct {
	Expr sqlparser.Expr
	Desc bool
}

// aggSpec is one aggregate computed by an aggregate node.
type aggSpec struct {
	Call *sqlparser.FuncCall
	Name string // formatted text used as output column name
}

// Node is a node of the physical execution plan.
type Node struct {
	Op       Op
	Children []*Node

	// Scans.
	Relation  string // base table name
	Alias     string // alias used in the query ("" when same as Relation)
	IndexName string
	IndexCond sqlparser.Expr // condition satisfied via the index
	Filter    sqlparser.Expr // residual filter evaluated on each row

	// Joins.
	JoinType sqlparser.JoinType
	JoinCond sqlparser.Expr // equality condition (Hash Cond / Merge Cond)

	// Sort / Unique.
	SortKeys []sortKey
	// SortLimit > 0 marks a Sort directly under a Limit: only the first
	// SortLimit rows of the ordering are ever observed, so the streaming
	// executor may keep a bounded top-K heap instead of sorting everything.
	SortLimit int64

	// Aggregation.
	GroupKeys    []sqlparser.Expr
	Aggs         []aggSpec
	HavingFilter sqlparser.Expr

	// Limit. Limit < 0 means "no limit" (OFFSET-only node); Offset is the
	// number of leading rows discarded before counting.
	Limit  int64
	Offset int64

	// Result (constant) items.
	ResultItems []sqlparser.SelectItem

	// Planner annotations.
	Schema  []colRef // output columns
	EstRows float64
	EstCost float64   // total cost of this node including children
	sorted  []sortKey // physical ordering of the output, if any

	// DOP is the planner's parallelism decision for the driver scan of a
	// morsel-parallel plan (parallel.go): 0 = not considered, 1 =
	// considered but kept serial (small estimate), >= 2 = execute with
	// that many workers.
	DOP int
}

// Walk visits n and all descendants pre-order.
func (n *Node) Walk(fn func(*Node)) {
	if n == nil {
		return
	}
	fn(n)
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// CountNodes returns the number of nodes in the plan tree.
func (n *Node) CountNodes() int {
	count := 0
	n.Walk(func(*Node) { count++ })
	return count
}
