package engine

import (
	"strings"
	"testing"

	"lantern/internal/datum"
	"lantern/internal/sqlparser"
	"lantern/internal/storage"
)

// evalOn evaluates an expression against a one-row, two-column context.
func evalOn(t *testing.T, exprSQL string, a, b datum.D) (datum.D, error) {
	t.Helper()
	sel, err := sqlparser.ParseSelect("SELECT " + exprSQL)
	if err != nil {
		t.Fatalf("parse %q: %v", exprSQL, err)
	}
	ctx := &evalCtx{
		schema: []colRef{{Qual: "t", Name: "a"}, {Qual: "t", Name: "b"}},
		row:    storage.Row{a, b},
	}
	return eval(ctx, sel.Items[0].Expr)
}

func mustEval(t *testing.T, exprSQL string, a, b datum.D) datum.D {
	t.Helper()
	v, err := evalOn(t, exprSQL, a, b)
	if err != nil {
		t.Fatalf("eval %q: %v", exprSQL, err)
	}
	return v
}

func TestThreeValuedLogic(t *testing.T) {
	null, tru, fls := datum.Null, datum.NewBool(true), datum.NewBool(false)
	cases := []struct {
		expr string
		a, b datum.D
		want datum.D
	}{
		// AND truth table with NULL.
		{"a AND b", tru, tru, tru},
		{"a AND b", tru, fls, fls},
		{"a AND b", fls, null, fls},  // false AND unknown = false
		{"a AND b", tru, null, null}, // true AND unknown = unknown
		{"a AND b", null, null, null},
		// OR truth table with NULL.
		{"a OR b", fls, fls, fls},
		{"a OR b", tru, null, tru}, // true OR unknown = true
		{"a OR b", fls, null, null},
		// NOT.
		{"NOT a", tru, null, fls},
		{"NOT a", null, null, null},
		// Comparisons with NULL are unknown.
		{"a = b", datum.NewInt(1), null, null},
		{"a < b", null, datum.NewInt(1), null},
	}
	for _, c := range cases {
		got := mustEval(t, c.expr, c.a, c.b)
		if got.Kind() != c.want.Kind() || (got.Kind() == datum.KBool && got.Bool() != c.want.Bool()) {
			t.Errorf("%s [a=%v b=%v] = %v, want %v", c.expr, c.a, c.b, got, c.want)
		}
	}
}

func TestNullPropagationInOperators(t *testing.T) {
	null := datum.Null
	one := datum.NewInt(1)
	for _, expr := range []string{
		"a + b", "a - b", "a * b", "a / b",
		"a LIKE 'x%'", "a BETWEEN 1 AND 2", "a || b",
	} {
		got := mustEval(t, expr, null, one)
		if !got.IsNull() {
			t.Errorf("%s with NULL = %v, want NULL", expr, got)
		}
	}
}

func TestInWithNullSemantics(t *testing.T) {
	// 1 IN (2, NULL) is unknown; 1 IN (1, NULL) is true;
	// 1 NOT IN (2, NULL) is unknown.
	got := mustEval(t, "a IN (2, NULL)", datum.NewInt(1), datum.Null)
	if !got.IsNull() {
		t.Errorf("1 IN (2, NULL) = %v, want NULL", got)
	}
	got = mustEval(t, "a IN (1, NULL)", datum.NewInt(1), datum.Null)
	if got.IsNull() || !got.Bool() {
		t.Errorf("1 IN (1, NULL) = %v, want true", got)
	}
	got = mustEval(t, "a NOT IN (2, NULL)", datum.NewInt(1), datum.Null)
	if !got.IsNull() {
		t.Errorf("1 NOT IN (2, NULL) = %v, want NULL", got)
	}
}

func TestScalarFunctions(t *testing.T) {
	cases := []struct {
		expr string
		a    datum.D
		want string
	}{
		{"LOWER(a)", datum.NewString("ABC"), "abc"},
		{"UPPER(a)", datum.NewString("abc"), "ABC"},
		{"REPLACE(a, 'b', 'x')", datum.NewString("abc"), "axc"},
		{"SUBSTRING(a, 2, 2)", datum.NewString("abcd"), "bc"},
		{"SUBSTR(a, 3)", datum.NewString("abcd"), "cd"},
	}
	for _, c := range cases {
		got := mustEval(t, c.expr, c.a, datum.Null)
		if got.Str() != c.want {
			t.Errorf("%s = %v, want %q", c.expr, got, c.want)
		}
	}
	if got := mustEval(t, "LENGTH(a)", datum.NewString("abc"), datum.Null); got.Int() != 3 {
		t.Errorf("LENGTH = %v", got)
	}
	if got := mustEval(t, "ABS(a)", datum.NewInt(-5), datum.Null); got.Int() != 5 {
		t.Errorf("ABS = %v", got)
	}
	if got := mustEval(t, "ABS(a)", datum.NewFloat(-2.5), datum.Null); got.Float() != 2.5 {
		t.Errorf("ABS float = %v", got)
	}
	if got := mustEval(t, "COALESCE(a, b)", datum.Null, datum.NewInt(7)); got.Int() != 7 {
		t.Errorf("COALESCE = %v", got)
	}
}

func TestScalarFunctionErrors(t *testing.T) {
	for _, expr := range []string{
		"LOWER(a, b)",
		"NOSUCHFUNC(a)",
		"SUM(a)", // aggregate outside aggregation
	} {
		if _, err := evalOn(t, expr, datum.NewString("x"), datum.NewString("y")); err == nil {
			t.Errorf("%s: expected error", expr)
		}
	}
}

func TestSubstringBounds(t *testing.T) {
	cases := []struct {
		expr, want string
	}{
		{"SUBSTRING(a, 0, 2)", "ab"}, // clamped start
		{"SUBSTRING(a, 10, 2)", ""},  // past end
		{"SUBSTRING(a, 2, 100)", "bcd"},
	}
	for _, c := range cases {
		got := mustEval(t, c.expr, datum.NewString("abcd"), datum.Null)
		if got.Str() != c.want {
			t.Errorf("%s = %q, want %q", c.expr, got.Str(), c.want)
		}
	}
}

func TestCaseEvaluation(t *testing.T) {
	got := mustEval(t, "CASE WHEN a > 5 THEN 'big' WHEN a > 2 THEN 'mid' ELSE 'small' END",
		datum.NewInt(3), datum.Null)
	if got.Str() != "mid" {
		t.Errorf("case = %v", got)
	}
	// No ELSE, no match -> NULL.
	got = mustEval(t, "CASE WHEN a > 5 THEN 'big' END", datum.NewInt(1), datum.Null)
	if !got.IsNull() {
		t.Errorf("case without match = %v, want NULL", got)
	}
}

func TestConcatOperator(t *testing.T) {
	got := mustEval(t, "a || b", datum.NewString("ab"), datum.NewString("cd"))
	if got.Str() != "abcd" {
		t.Errorf("concat = %v", got)
	}
	got = mustEval(t, "a || b", datum.NewString("n="), datum.NewInt(5))
	if got.Str() != "n=5" {
		t.Errorf("mixed concat = %v", got)
	}
}

func TestAmbiguousColumn(t *testing.T) {
	ctx := &evalCtx{
		schema: []colRef{{Qual: "x", Name: "id"}, {Qual: "y", Name: "id"}},
		row:    storage.Row{datum.NewInt(1), datum.NewInt(2)},
	}
	sel, _ := sqlparser.ParseSelect("SELECT id")
	if _, err := eval(ctx, sel.Items[0].Expr); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("expected ambiguity error, got %v", err)
	}
	// Qualified access disambiguates.
	sel, _ = sqlparser.ParseSelect("SELECT y.id")
	v, err := eval(ctx, sel.Items[0].Expr)
	if err != nil || v.Int() != 2 {
		t.Errorf("qualified = %v, %v", v, err)
	}
}

func TestComputedColumnResolution(t *testing.T) {
	// An aggregate output surfaces by its formatted text, as after an
	// aggregate node.
	ctx := &evalCtx{
		schema: []colRef{{Name: "COUNT(*)"}},
		row:    storage.Row{datum.NewInt(42)},
	}
	sel, _ := sqlparser.ParseSelect("SELECT COUNT(*) + 1")
	v, err := eval(ctx, sel.Items[0].Expr)
	if err != nil {
		t.Fatal(err)
	}
	if v.Int() != 43 {
		t.Errorf("computed resolution = %v, want 43", v)
	}
}

func TestDivisionByZeroErrors(t *testing.T) {
	if _, err := evalOn(t, "a / b", datum.NewInt(1), datum.NewInt(0)); err == nil {
		t.Error("integer division by zero should error")
	}
}
