package engine

import (
	"encoding/json"
	"encoding/xml"
	"fmt"
	"strings"

	"lantern/internal/sqlparser"
)

// condText renders a plan condition the way PostgreSQL does: wrapped in
// parentheses with each comparison side parenthesized.
func condText(e sqlparser.Expr) string {
	if e == nil {
		return ""
	}
	conds := sqlparser.SplitConjuncts(e)
	parts := make([]string, len(conds))
	for i, c := range conds {
		if be, ok := c.(*sqlparser.BinaryExpr); ok {
			if op, ok2 := map[sqlparser.BinOp]string{
				sqlparser.OpEq: "=", sqlparser.OpNe: "<>", sqlparser.OpLt: "<",
				sqlparser.OpLe: "<=", sqlparser.OpGt: ">", sqlparser.OpGe: ">=",
			}[be.Op]; ok2 {
				parts[i] = fmt.Sprintf("((%s) %s (%s))",
					sqlparser.FormatExpr(be.Left), op, sqlparser.FormatExpr(be.Right))
				continue
			}
		}
		parts[i] = "(" + sqlparser.FormatExpr(c) + ")"
	}
	if len(parts) == 1 {
		return parts[0]
	}
	return "(" + strings.Join(parts, " AND ") + ")"
}

func sortKeyTexts(keys []sortKey) []string {
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = sqlparser.FormatExpr(k.Expr)
		if k.Desc {
			out[i] += " DESC"
		}
	}
	return out
}

func groupKeyTexts(keys []sqlparser.Expr) []string {
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = sqlparser.FormatExpr(k)
	}
	return out
}

// --- Text format (PostgreSQL-style) ---------------------------------------

// ExplainText renders the plan in PostgreSQL's text EXPLAIN format.
func ExplainText(n *Node) string { return explainTextStats(n, nil) }

// explainTextStats is ExplainText with optional EXPLAIN ANALYZE actuals
// appended per node, PostgreSQL-style.
func explainTextStats(n *Node, st ExecStats) string {
	var sb strings.Builder
	explainTextNode(&sb, n, st, 0, false)
	return sb.String()
}

func explainTextNode(sb *strings.Builder, n *Node, st ExecStats, depth int, arrow bool) {
	indent := strings.Repeat("      ", depth)
	if arrow {
		sb.WriteString(indent)
		sb.WriteString("->  ")
	}
	sb.WriteString(headline(n))
	fmt.Fprintf(sb, "  (cost=%.2f rows=%.0f)", n.EstCost, n.EstRows)
	if os := st[n]; os != nil {
		fmt.Fprintf(sb, " (actual time=%.3f rows=%d loops=%d)",
			float64(os.Time)/1e6, os.Rows, os.Loops)
	}
	sb.WriteString("\n")
	detail := func(label, text string) {
		if text == "" {
			return
		}
		sb.WriteString(indent)
		if arrow {
			sb.WriteString("    ")
		}
		sb.WriteString("  ")
		sb.WriteString(label)
		sb.WriteString(": ")
		sb.WriteString(text)
		sb.WriteString("\n")
	}
	switch n.Op {
	case OpIndexScan:
		detail("Index Cond", condText(n.IndexCond))
	case OpHashJoin:
		detail("Hash Cond", condText(n.JoinCond))
	case OpMergeJoin:
		detail("Merge Cond", condText(n.JoinCond))
	case OpNestedLoop:
		detail("Join Filter", condText(n.JoinCond))
	case OpSort, OpUnique:
		detail("Sort Key", strings.Join(sortKeyTexts(n.SortKeys), ", "))
	case OpAggregate, OpHashAggregate, OpGroupAggregate:
		detail("Group Key", strings.Join(groupKeyTexts(n.GroupKeys), ", "))
		detail("Filter", condText(n.HavingFilter))
	}
	if n.Op != OpAggregate && n.Op != OpHashAggregate && n.Op != OpGroupAggregate {
		detail("Filter", condText(n.Filter))
	}
	for _, c := range n.Children {
		explainTextNode(sb, c, st, depth+1, true)
	}
}

func headline(n *Node) string {
	switch n.Op {
	case OpSeqScan, OpIndexScan:
		h := n.Op.Name()
		if n.Op == OpIndexScan {
			h += " using " + n.IndexName
		}
		h += " on " + n.Relation
		if n.Alias != "" && n.Alias != n.Relation {
			h += " " + n.Alias
		}
		return h
	case OpHashJoin, OpMergeJoin, OpNestedLoop:
		if n.JoinType == sqlparser.LeftJoin {
			return n.Op.Name() + " Left Join"
		}
		return n.Op.Name()
	}
	return n.Op.Name()
}

// --- JSON format (PostgreSQL-style) ----------------------------------------

// jsonPlan mirrors the shape of PostgreSQL's EXPLAIN (FORMAT JSON) output.
type jsonPlan struct {
	NodeType     string   `json:"Node Type"`
	JoinType     string   `json:"Join Type,omitempty"`
	Strategy     string   `json:"Strategy,omitempty"`
	RelationName string   `json:"Relation Name,omitempty"`
	Alias        string   `json:"Alias,omitempty"`
	IndexName    string   `json:"Index Name,omitempty"`
	IndexCond    string   `json:"Index Cond,omitempty"`
	HashCond     string   `json:"Hash Cond,omitempty"`
	MergeCond    string   `json:"Merge Cond,omitempty"`
	JoinFilter   string   `json:"Join Filter,omitempty"`
	Filter       string   `json:"Filter,omitempty"`
	SortKey      []string `json:"Sort Key,omitempty"`
	GroupKey     []string `json:"Group Key,omitempty"`
	StartupCost  float64  `json:"Startup Cost"`
	TotalCost    float64  `json:"Total Cost"`
	PlanRows     float64  `json:"Plan Rows"`
	// EXPLAIN ANALYZE actuals, present only on instrumented plans.
	ActualRows  *float64    `json:"Actual Rows,omitempty"`
	ActualLoops *float64    `json:"Actual Loops,omitempty"`
	ActualTime  *float64    `json:"Actual Total Time,omitempty"`
	Plans       []*jsonPlan `json:"Plans,omitempty"`
}

// ExplainJSON renders the plan in PostgreSQL's JSON EXPLAIN format:
// a one-element array holding {"Plan": {...}}.
func ExplainJSON(n *Node) (string, error) { return ExplainJSONStats(n, nil) }

// ExplainJSONStats is ExplainJSON with EXPLAIN ANALYZE actual-stats fields
// (Actual Rows / Actual Loops / Actual Total Time) attached per node when
// st is non-nil — the same fields PostgreSQL emits, which the pg plan
// frontend maps onto the standardized actual-stats attrs.
func ExplainJSONStats(n *Node, st ExecStats) (string, error) {
	doc := []map[string]*jsonPlan{{"Plan": toJSONPlan(n, st)}}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func toJSONPlan(n *Node, st ExecStats) *jsonPlan {
	jp := &jsonPlan{
		NodeType:  n.Op.Name(),
		TotalCost: round2(n.EstCost),
		PlanRows:  n.EstRows,
	}
	switch n.Op {
	case OpSeqScan:
		jp.RelationName = n.Relation
		jp.Alias = aliasOr(n)
		jp.Filter = condText(n.Filter)
	case OpIndexScan:
		jp.RelationName = n.Relation
		jp.Alias = aliasOr(n)
		jp.IndexName = n.IndexName
		jp.IndexCond = condText(n.IndexCond)
		jp.Filter = condText(n.Filter)
	case OpHashJoin:
		jp.JoinType = joinTypeName(n.JoinType)
		jp.HashCond = condText(n.JoinCond)
		jp.Filter = condText(n.Filter)
	case OpMergeJoin:
		jp.JoinType = joinTypeName(n.JoinType)
		jp.MergeCond = condText(n.JoinCond)
		jp.Filter = condText(n.Filter)
	case OpNestedLoop:
		jp.JoinType = joinTypeName(n.JoinType)
		jp.JoinFilter = condText(n.JoinCond)
		jp.Filter = condText(n.Filter)
	case OpSort, OpUnique:
		jp.SortKey = sortKeyTexts(n.SortKeys)
	case OpAggregate, OpHashAggregate, OpGroupAggregate:
		// PostgreSQL reports all three as "Aggregate" with a strategy.
		jp.NodeType = "Aggregate"
		switch n.Op {
		case OpAggregate:
			jp.Strategy = "Plain"
		case OpHashAggregate:
			jp.Strategy = "Hashed"
		case OpGroupAggregate:
			jp.Strategy = "Sorted"
		}
		jp.GroupKey = groupKeyTexts(n.GroupKeys)
		jp.Filter = condText(n.HavingFilter)
	}
	if os := st[n]; os != nil {
		// PostgreSQL's JSON reports Actual Rows / Actual Total Time as
		// per-loop averages; emit the same semantics so the pg frontend
		// (which scales them back up by the loop count) reads either a
		// real PostgreSQL document or ours identically.
		loops := float64(os.Loops)
		if loops <= 0 {
			loops = 1
		}
		rows := float64(os.Rows) / loops
		timeMs := float64(os.Time) / 1e6 / loops
		jp.ActualRows, jp.ActualLoops, jp.ActualTime = &rows, &loops, &timeMs
	}
	for _, c := range n.Children {
		jp.Plans = append(jp.Plans, toJSONPlan(c, st))
	}
	return jp
}

func aliasOr(n *Node) string {
	if n.Alias != "" {
		return n.Alias
	}
	return n.Relation
}

func joinTypeName(t sqlparser.JoinType) string {
	if t == sqlparser.LeftJoin {
		return "Left"
	}
	return "Inner"
}

func round2(f float64) float64 {
	return float64(int64(f*100+0.5)) / 100
}

// --- XML format (SQL-Server-style showplan) --------------------------------

// xmlRelOp mirrors (a simplified form of) SQL Server's showplan RelOp.
type xmlRelOp struct {
	XMLName       xml.Name    `xml:"RelOp"`
	PhysicalOp    string      `xml:"PhysicalOp,attr"`
	LogicalOp     string      `xml:"LogicalOp,attr"`
	EstimateRows  float64     `xml:"EstimateRows,attr"`
	EstimatedCost float64     `xml:"EstimatedTotalSubtreeCost,attr"`
	Table         string      `xml:"Table,attr,omitempty"`
	Alias         string      `xml:"Alias,attr,omitempty"`
	Index         string      `xml:"Index,attr,omitempty"`
	SeekPredicate string      `xml:"SeekPredicate,omitempty"`
	Predicate     string      `xml:"Predicate,omitempty"`
	JoinPredicate string      `xml:"JoinPredicate,omitempty"`
	OrderBy       string      `xml:"OrderBy,omitempty"`
	GroupBy       string      `xml:"GroupBy,omitempty"`
	Children      []*xmlRelOp `xml:"RelOp"`
}

type xmlQueryPlan struct {
	XMLName xml.Name  `xml:"QueryPlan"`
	Root    *xmlRelOp `xml:"RelOp"`
}

type xmlStmtSimple struct {
	XMLName       xml.Name     `xml:"StmtSimple"`
	StatementText string       `xml:"StatementText,attr,omitempty"`
	QueryPlan     xmlQueryPlan `xml:"QueryPlan"`
}

type xmlShowPlan struct {
	XMLName xml.Name      `xml:"ShowPlanXML"`
	Version string        `xml:"Version,attr"`
	Stmt    xmlStmtSimple `xml:"BatchSequence>Batch>Statements>StmtSimple"`
}

// ExplainXML renders the plan as a SQL-Server-style XML showplan. The Hash
// build nodes are inlined (SQL Server's Hash Match has no separate build
// operator), so the operator tree genuinely differs from the PostgreSQL
// serializations — the same cross-vendor gap the paper's parsers bridge.
func ExplainXML(n *Node) (string, error) {
	doc := xmlShowPlan{
		Version: "1.5",
		Stmt:    xmlStmtSimple{QueryPlan: xmlQueryPlan{Root: toXMLRelOp(n)}},
	}
	b, err := xml.MarshalIndent(doc, "", "  ")
	if err != nil {
		return "", err
	}
	return xml.Header + string(b), nil
}

func toXMLRelOp(n *Node) *xmlRelOp {
	op := &xmlRelOp{
		PhysicalOp:    n.Op.SQLServerName(),
		LogicalOp:     xmlLogicalOp(n),
		EstimateRows:  n.EstRows,
		EstimatedCost: round2(n.EstCost),
	}
	switch n.Op {
	case OpSeqScan:
		op.Table = n.Relation
		op.Alias = aliasOr(n)
		op.Predicate = condText(n.Filter)
	case OpIndexScan:
		op.Table = n.Relation
		op.Alias = aliasOr(n)
		op.Index = n.IndexName
		op.SeekPredicate = condText(n.IndexCond)
		op.Predicate = condText(n.Filter)
	case OpHashJoin, OpMergeJoin, OpNestedLoop:
		op.JoinPredicate = condText(n.JoinCond)
		op.Predicate = condText(n.Filter)
	case OpSort, OpUnique:
		op.OrderBy = strings.Join(sortKeyTexts(n.SortKeys), ", ")
	case OpAggregate, OpHashAggregate, OpGroupAggregate:
		op.GroupBy = strings.Join(groupKeyTexts(n.GroupKeys), ", ")
		op.Predicate = condText(n.HavingFilter)
	}
	for _, c := range n.Children {
		// Inline Hash build nodes: SQL Server has no separate Hash operator.
		if c.Op == OpHash {
			c = c.Children[0]
		}
		op.Children = append(op.Children, toXMLRelOp(c))
	}
	return op
}

func xmlLogicalOp(n *Node) string {
	switch n.Op {
	case OpSeqScan:
		return "Table Scan"
	case OpIndexScan:
		return "Index Seek"
	case OpHashJoin, OpMergeJoin, OpNestedLoop:
		if n.JoinType == sqlparser.LeftJoin {
			return "Left Outer Join"
		}
		return "Inner Join"
	case OpSort:
		return "Sort"
	case OpAggregate, OpHashAggregate, OpGroupAggregate:
		return "Aggregate"
	case OpUnique:
		return "Distinct"
	case OpLimit:
		return "Top"
	case OpMaterialize:
		return "Spool"
	case OpResult:
		return "Constant Scan"
	case OpHash:
		return "Build Hash"
	}
	return n.Op.Name()
}
