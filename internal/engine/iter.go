package engine

// iter.go is the streaming iterator executor: every operator implements
// rowIter (Open/Next/Close), expressions are pre-bound to ordinals at
// construction time (bind.go), and pipelined operators — scans, filters,
// limit/offset, the probe side of hash joins, the outer side of nested
// loops, unique — never buffer their input. Only the operators whose
// semantics require it materialize: sort (bounded to a top-K heap when the
// planner set SortLimit), aggregation, the build side of a hash join, the
// inner side of a nested loop, and both merge-join inputs (whose key
// datums are evaluated once into flat arenas rather than per comparison).
//
// Limit short-circuits by simply not pulling from its child once
// offset+limit rows have been seen, so `LIMIT 10` over a scan touches ten
// heap rows instead of the whole table. The materializing executor in
// executor.go is kept as the reference implementation; differential tests
// assert both produce identical row multisets.

import (
	"fmt"
	"sort"

	"lantern/internal/datum"
	"lantern/internal/sqlparser"
	"lantern/internal/storage"
)

// rowIter is the streaming operator contract. Open prepares the operator
// (materializing inputs only where semantics demand it); Next returns the
// next row, with ok=false at end of stream; Close releases child iterators.
// Returned rows may alias operator-internal or heap storage and must not be
// mutated by callers.
type rowIter interface {
	Open() error
	Next() (row storage.Row, ok bool, err error)
	Close() error
}

// execStream runs a plan through the streaming executor and collects the
// result. Errors from construction (e.g. unresolvable columns) surface just
// like execution errors.
func (e *Engine) execStream(n *Node) ([]storage.Row, error) {
	it, err := e.buildIter(n)
	if err != nil {
		return nil, err
	}
	defer it.Close()
	if err := it.Open(); err != nil {
		return nil, err
	}
	var out []storage.Row
	for {
		r, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, r)
	}
}

// buildIter constructs the iterator tree for a plan node, binding all
// expressions against the operator schemas. This is the uninstrumented
// fast path: no wrap hook, so the built pipeline is byte-for-byte the one
// the allocation guards measure.
func (e *Engine) buildIter(n *Node) (rowIter, error) {
	return (&ibuild{e: e}).build(n)
}

// ibuild carries per-construction state through iterator building. The
// optional wrap hook decorates every operator iterator as it is built —
// the instrumentation seam (bridge.go) — and is nil on the normal path,
// where construction and execution are identical to a hookless build.
// The optional child hook replaces subtree construction wholesale: the
// vectorized builder (vec.go) installs it so that a row-only operator
// built through buildOp pulls from batch-executing children through the
// vecToRow adapter. The two hooks are never set together — instrumented
// pipelines are pure row pipelines.
type ibuild struct {
	e     *Engine
	wrap  func(n *Node, it rowIter) rowIter
	child func(n *Node) (rowIter, error)
	// stats, when non-nil, returns the shared OpStats slot for a node;
	// scans use it to record segment-level accounting (scanned vs pruned)
	// that per-row wrapping cannot observe. Set together with wrap by the
	// instrumented runner; nil on the normal path.
	stats func(n *Node) *OpStats
}

// build constructs the iterator for n and applies the wrap hook, if any.
func (b *ibuild) build(n *Node) (rowIter, error) {
	if b.child != nil {
		return b.child(n)
	}
	it, err := b.buildOp(n)
	if err != nil {
		return nil, err
	}
	if b.wrap != nil {
		it = b.wrap(n, it)
	}
	return it, nil
}

func (b *ibuild) buildOp(n *Node) (rowIter, error) {
	switch n.Op {
	case OpSeqScan:
		return b.newSeqScanIter(n)
	case OpIndexScan:
		return b.newIndexScanIter(n)
	case OpHash, OpMaterialize:
		// Pass-through operators reuse the child iterator; under
		// instrumentation they still get their own wrapper, so Hash nodes
		// report the build-side row count just like PostgreSQL's ANALYZE.
		return b.build(n.Children[0])
	case OpHashJoin:
		return b.newHashJoinIter(n)
	case OpMergeJoin:
		return b.newMergeJoinIter(n)
	case OpNestedLoop:
		return b.newNestedLoopIter(n)
	case OpSort:
		return b.newSortIter(n)
	case OpAggregate, OpHashAggregate, OpGroupAggregate:
		return b.newAggIter(n)
	case OpUnique:
		return b.newUniqueIter(n)
	case OpLimit:
		child, err := b.build(n.Children[0])
		if err != nil {
			return nil, err
		}
		return &limitIter{child: child, limit: n.Limit, offset: n.Offset}, nil
	case OpResult:
		return b.newResultIter(n)
	}
	return nil, fmt.Errorf("engine: cannot execute operator %s", n.Op.Name())
}

// --- Scans -----------------------------------------------------------------

// seqScanIter walks the sealed segments and then the tail row-at-a-time.
// Filtered scans still consult zone maps: a compiled pruner (the same
// specialization vexpr.go gives the batch pipeline) refutes whole segments
// before any row is touched, so EXPLAIN ANALYZE's serial row pipeline
// reports the identical segments-scanned/segments-pruned accounting as the
// batch path. Row-level filtering stays on the bound closure.
type seqScanIter struct {
	snap   storage.Snapshot
	filter boundExpr // nil when unfiltered
	pruner vecPred   // compiled for zone-map checks only; nil when no filter
	prune  bool
	st     *OpStats
	env    rowEnv

	curSD    *storage.SegData // loaded payload cur aliases; nil for the tail
	cur      []storage.Row
	seg      int
	pos      int
	tailDone bool
	done     bool
}

func (b *ibuild) newSeqScanIter(n *Node) (*seqScanIter, error) {
	t, err := b.e.Cat.Table(n.Relation)
	if err != nil {
		return nil, err
	}
	it := &seqScanIter{snap: t.Snapshot(), prune: !b.e.Cfg.DisableZonePruning}
	if b.stats != nil {
		it.st = b.stats(n)
	}
	if n.Filter != nil {
		if it.filter, err = bindExpr(n.Filter, n.Schema, b.e.subquery); err != nil {
			return nil, err
		}
		if it.pruner, err = compileVecPred(n.Filter, n.Schema, b.e.subquery); err != nil {
			return nil, err
		}
	}
	return it, nil
}

func (it *seqScanIter) Open() error {
	it.releaseSeg()
	it.cur = nil
	it.seg, it.pos = 0, 0
	it.tailDone, it.done = false, false
	return it.advance()
}

// releaseSeg unpins the current segment's buffer pool frame, if any.
// Handed-out rows stay valid past the release (GC holds the payload while
// referenced); only the pool's eviction eligibility changes.
func (it *seqScanIter) releaseSeg() {
	if it.curSD != nil {
		it.curSD.Release()
		it.curSD = nil
	}
}

// advance moves to the next run of rows: the next sealed segment surviving
// zone-map pruning, then the tail, then end-of-stream. Pruning reads only
// resident zone maps; surviving segments fault their payload in through
// the buffer pool, so a pruned segment costs zero I/O.
func (it *seqScanIter) advance() error {
	it.releaseSeg()
	segs := it.snap.Segments()
	for it.seg < len(segs) {
		s := segs[it.seg]
		it.seg++
		if it.prune && it.pruner != nil && segPruned(it.pruner, s) {
			it.noteSeg(true)
			continue
		}
		it.noteSeg(false)
		sd, err := s.Load()
		if err != nil {
			it.done = true
			return err
		}
		it.curSD, it.cur, it.pos = sd, sd.Rows(), 0
		return nil
	}
	if !it.tailDone {
		it.tailDone = true
		it.cur, it.pos = it.snap.Tail(), 0
		return nil
	}
	it.done = true
	return nil
}

// noteSeg records segment accounting. The row pipeline is serial, so plain
// increments suffice.
func (it *seqScanIter) noteSeg(pruned bool) {
	if it.st == nil {
		return
	}
	if pruned {
		it.st.SegsPruned++
	} else {
		it.st.SegsScanned++
	}
}

func (it *seqScanIter) Next() (storage.Row, bool, error) {
	for !it.done {
		if it.pos >= len(it.cur) {
			if err := it.advance(); err != nil {
				return nil, false, err
			}
			continue
		}
		r := it.cur[it.pos]
		it.pos++
		if it.filter == nil {
			return r, true, nil
		}
		it.env.left = r
		v, err := it.filter(&it.env)
		if err != nil {
			return nil, false, err
		}
		if truthy(v) {
			return r, true, nil
		}
	}
	return nil, false, nil
}

func (it *seqScanIter) Close() error {
	it.releaseSeg()
	return nil
}

type indexScanIter struct {
	eng     *Engine
	n       *Node
	snap    storage.Snapshot
	recheck boundExpr // index condition ∧ residual filter
	env     rowEnv
	ids     []int
	pos     int
}

func (b *ibuild) newIndexScanIter(n *Node) (*indexScanIter, error) {
	if _, err := b.e.Cat.Table(n.Relation); err != nil {
		return nil, err
	}
	// Re-check the full index condition alongside the residual filter
	// (cheap, and keeps multi-conjunct conditions exact when the scan
	// bounds only captured part of them) — mirrors the reference executor.
	combined := sqlparser.JoinConjuncts(append(sqlparser.SplitConjuncts(n.IndexCond), sqlparser.SplitConjuncts(n.Filter)...))
	it := &indexScanIter{eng: b.e, n: n}
	if combined != nil {
		var err error
		if it.recheck, err = bindExpr(combined, n.Schema, b.e.subquery); err != nil {
			return nil, err
		}
	}
	return it, nil
}

func (it *indexScanIter) Open() error {
	t, err := it.eng.Cat.Table(it.n.Relation)
	if err != nil {
		return err
	}
	it.snap = t.Snapshot()
	col, lo, hi, incLo, incHi, eq, hasEq, err := indexBounds(it.n.IndexCond)
	if err != nil {
		return err
	}
	ix := it.snap.Index(col)
	if ix == nil {
		return fmt.Errorf("engine: planned index on %s.%s does not exist", it.n.Relation, col)
	}
	if hasEq {
		it.ids = ix.Lookup(eq)
	} else {
		it.ids = ix.Range(lo, hi, incLo, incHi)
	}
	it.pos = 0
	return nil
}

func (it *indexScanIter) Next() (storage.Row, bool, error) {
	for it.pos < len(it.ids) {
		r, err := it.snap.FetchRow(it.ids[it.pos])
		if err != nil {
			return nil, false, err
		}
		it.pos++
		if it.recheck == nil {
			return r, true, nil
		}
		it.env.left = r
		v, err := it.recheck(&it.env)
		if err != nil {
			return nil, false, err
		}
		if truthy(v) {
			return r, true, nil
		}
	}
	return nil, false, nil
}

func (it *indexScanIter) Close() error { return nil }

// --- Limit -----------------------------------------------------------------

// limitIter implements LIMIT/OFFSET by counting rows pulled from its child;
// once limit rows are emitted it stops pulling, short-circuiting the whole
// subtree below it.
type limitIter struct {
	child            rowIter
	limit, offset    int64 // limit < 0 means unbounded (OFFSET-only)
	skipped, emitted int64
}

func (it *limitIter) Open() error {
	it.skipped, it.emitted = 0, 0
	return it.child.Open()
}

func (it *limitIter) Next() (storage.Row, bool, error) {
	if it.limit >= 0 && it.emitted >= it.limit {
		return nil, false, nil
	}
	for {
		r, ok, err := it.child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		if it.skipped < it.offset {
			it.skipped++
			continue
		}
		it.emitted++
		return r, true, nil
	}
}

func (it *limitIter) Close() error { return it.child.Close() }

// --- Hash join -------------------------------------------------------------

// hashJoinIter materializes the build side once at Open, caching the
// evaluated join-key datums per build row in a flat arena so the
// hash-collision recheck is a pure datum comparison (no expression
// re-evaluation per probe×build pair). The probe side streams: each probe
// row's keys are evaluated once into a reusable buffer, and candidate
// pairs are checked through a two-part rowEnv so the joined row is only
// allocated for pairs that survive key, residual and filter checks.
type hashJoinIter struct {
	probe, build rowIter
	probeKeys    []boundExpr
	buildKeys    []boundExpr
	nKeys        int
	residual     boundExpr // pair-bound residual join condition
	outFilter    boundExpr // pair-bound post-join filter (n.Filter)
	leftOuter    bool
	nullsRight   storage.Row

	entries  []storage.Row
	keyArena []datum.D // len(entries)*nKeys, parallel to entries
	table    map[uint64][]int32

	env         rowEnv
	probeRow    storage.Row
	probeKeyBuf []datum.D
	bucket      []int32
	bi          int
	matched     bool
}

func (b *ibuild) newHashJoinIter(n *Node) (*hashJoinIter, error) {
	probeNode, hashNode := n.Children[0], n.Children[1]
	probeKeyExprs, buildKeyExprs, residual := joinKeyPairs(n.JoinCond, probeNode.Schema)
	if len(probeKeyExprs) == 0 {
		return nil, fmt.Errorf("engine: hash join without equi-condition")
	}
	it := &hashJoinIter{
		nKeys:     len(probeKeyExprs),
		leftOuter: n.JoinType == sqlparser.LeftJoin,
	}
	var err error
	if it.probe, err = b.build(probeNode); err != nil {
		return nil, err
	}
	if it.build, err = b.build(hashNode); err != nil {
		return nil, err
	}
	if it.probeKeys, err = bindExprs(probeKeyExprs, probeNode.Schema, b.e.subquery); err != nil {
		return nil, err
	}
	if it.buildKeys, err = bindExprs(buildKeyExprs, hashNode.Schema, b.e.subquery); err != nil {
		return nil, err
	}
	// n.Schema is always probe schema followed by build schema (see
	// planner buildJoin), so pair binding matches the output row layout.
	if cond := sqlparser.JoinConjuncts(residual); cond != nil {
		if it.residual, err = bindPairExpr(cond, probeNode.Schema, hashNode.Schema, b.e.subquery); err != nil {
			return nil, err
		}
	}
	if n.Filter != nil {
		if it.outFilter, err = bindPairExpr(n.Filter, probeNode.Schema, hashNode.Schema, b.e.subquery); err != nil {
			return nil, err
		}
	}
	it.nullsRight = make(storage.Row, len(hashNode.Schema))
	for i := range it.nullsRight {
		it.nullsRight[i] = datum.Null
	}
	it.probeKeyBuf = make([]datum.D, it.nKeys)
	return it, nil
}

func (it *hashJoinIter) Open() error {
	if err := it.build.Open(); err != nil {
		return err
	}
	it.entries = it.entries[:0]
	it.keyArena = it.keyArena[:0]
	it.table = make(map[uint64][]int32)
	var env rowEnv
	for {
		r, ok, err := it.build.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		env.left = r
		h := uint64(1469598103934665603)
		null := false
		off := len(it.keyArena)
		for _, k := range it.buildKeys {
			v, err := k(&env)
			if err != nil {
				return err
			}
			if v.IsNull() {
				null = true
				break
			}
			it.keyArena = append(it.keyArena, v)
			h = h*1099511628211 ^ v.Hash()
		}
		if null {
			it.keyArena = it.keyArena[:off] // NULL keys never match
			continue
		}
		it.table[h] = append(it.table[h], int32(len(it.entries)))
		it.entries = append(it.entries, r)
	}
	it.probeRow, it.bucket, it.bi = nil, nil, 0
	return it.probe.Open()
}

func (it *hashJoinIter) Next() (storage.Row, bool, error) {
	for {
		if it.probeRow == nil {
			r, ok, err := it.probe.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			it.probeRow = r
			it.matched = false
			it.bucket, it.bi = nil, 0
			it.env.left = r
			h := uint64(1469598103934665603)
			null := false
			for i, k := range it.probeKeys {
				v, err := k(&it.env)
				if err != nil {
					return nil, false, err
				}
				if v.IsNull() {
					null = true
					break
				}
				it.probeKeyBuf[i] = v
				h = h*1099511628211 ^ v.Hash()
			}
			if !null {
				it.bucket = it.table[h]
			}
		}
		it.env.left = it.probeRow
		for it.bi < len(it.bucket) {
			idx := it.bucket[it.bi]
			it.bi++
			off := int(idx) * it.nKeys
			if !datumsEqual(it.probeKeyBuf, it.keyArena[off:off+it.nKeys]) {
				continue // hash collision
			}
			br := it.entries[idx]
			it.env.right = br
			if it.residual != nil {
				v, err := it.residual(&it.env)
				if err != nil {
					return nil, false, err
				}
				if !truthy(v) {
					continue
				}
			}
			// The ON condition (keys + residual) alone decides matched:
			// the pushed-down WHERE filter only gates emission, exactly as
			// the reference executor applies it after null-extension.
			it.matched = true
			if it.outFilter != nil {
				v, err := it.outFilter(&it.env)
				if err != nil {
					return nil, false, err
				}
				if !truthy(v) {
					continue
				}
			}
			return concatRows(it.probeRow, br), true, nil
		}
		pr := it.probeRow
		it.probeRow = nil
		if it.leftOuter && !it.matched {
			it.env.left, it.env.right = pr, it.nullsRight
			if it.outFilter != nil {
				v, err := it.outFilter(&it.env)
				if err != nil {
					return nil, false, err
				}
				if !truthy(v) {
					continue
				}
			}
			return concatRows(pr, it.nullsRight), true, nil
		}
	}
}

func (it *hashJoinIter) Close() error {
	err := it.probe.Close()
	if err2 := it.build.Close(); err == nil {
		err = err2
	}
	return err
}

func datumsEqual(a, b []datum.D) bool {
	for i := range a {
		if !datum.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// rowArena packs row-pipeline join output into flat datum chunks — one
// chunk allocation per ~batchSize emitted rows instead of one allocation
// per row (the row-at-a-time analogue of the batch writer's arena). Chunks
// are never reused: each emitted row is a three-index subslice of its
// chunk, so consumers may retain it forever, exactly like a concatRows
// allocation.
type rowArena struct {
	buf []datum.D
}

func (a *rowArena) concat(l, r storage.Row) storage.Row {
	need := len(l) + len(r)
	if cap(a.buf)-len(a.buf) < need {
		a.buf = make([]datum.D, 0, batchSize*need)
	}
	n := len(a.buf)
	a.buf = append(a.buf, l...)
	a.buf = append(a.buf, r...)
	return storage.Row(a.buf[n:len(a.buf):len(a.buf)])
}

// --- Nested loop -----------------------------------------------------------

// nestedLoopIter streams the outer side and materializes the inner side
// once at Open (it must be rescanned per outer row). The join condition and
// post-join filter evaluate through a two-part rowEnv, so non-matching
// pairs cost zero allocations — the joined row is only built on emission.
type nestedLoopIter struct {
	outer, innerSrc rowIter
	inner           []storage.Row
	cond, outFilter boundExpr // pair-bound
	leftOuter       bool
	nullsInner      storage.Row

	env      rowEnv
	out      rowArena
	outerRow storage.Row
	ii       int
	matched  bool
}

func (b *ibuild) newNestedLoopIter(n *Node) (*nestedLoopIter, error) {
	outerNode, innerNode := n.Children[0], n.Children[1]
	it := &nestedLoopIter{leftOuter: n.JoinType == sqlparser.LeftJoin}
	var err error
	if it.outer, err = b.build(outerNode); err != nil {
		return nil, err
	}
	if it.innerSrc, err = b.build(innerNode); err != nil {
		return nil, err
	}
	if n.JoinCond != nil {
		if it.cond, err = bindPairExpr(n.JoinCond, outerNode.Schema, innerNode.Schema, b.e.subquery); err != nil {
			return nil, err
		}
	}
	if n.Filter != nil {
		if it.outFilter, err = bindPairExpr(n.Filter, outerNode.Schema, innerNode.Schema, b.e.subquery); err != nil {
			return nil, err
		}
	}
	it.nullsInner = make(storage.Row, len(innerNode.Schema))
	for i := range it.nullsInner {
		it.nullsInner[i] = datum.Null
	}
	return it, nil
}

func (it *nestedLoopIter) Open() error {
	if err := it.innerSrc.Open(); err != nil {
		return err
	}
	it.inner = it.inner[:0]
	for {
		r, ok, err := it.innerSrc.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		it.inner = append(it.inner, r)
	}
	it.outerRow, it.ii = nil, 0
	return it.outer.Open()
}

func (it *nestedLoopIter) Next() (storage.Row, bool, error) {
	for {
		if it.outerRow == nil {
			r, ok, err := it.outer.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			it.outerRow, it.ii, it.matched = r, 0, false
		}
		it.env.left = it.outerRow
		for it.ii < len(it.inner) {
			ir := it.inner[it.ii]
			it.ii++
			it.env.right = ir
			if it.cond != nil {
				v, err := it.cond(&it.env)
				if err != nil {
					return nil, false, err
				}
				if !truthy(v) {
					continue
				}
			}
			// ON condition alone decides matched; the WHERE filter only
			// gates emission (reference applies it after null-extension).
			it.matched = true
			if it.outFilter != nil {
				v, err := it.outFilter(&it.env)
				if err != nil {
					return nil, false, err
				}
				if !truthy(v) {
					continue
				}
			}
			return it.out.concat(it.outerRow, ir), true, nil
		}
		or := it.outerRow
		it.outerRow = nil
		if it.leftOuter && !it.matched {
			it.env.left, it.env.right = or, it.nullsInner
			if it.outFilter != nil {
				v, err := it.outFilter(&it.env)
				if err != nil {
					return nil, false, err
				}
				if !truthy(v) {
					continue
				}
			}
			return it.out.concat(or, it.nullsInner), true, nil
		}
	}
}

func (it *nestedLoopIter) Close() error {
	err := it.outer.Close()
	if err2 := it.innerSrc.Close(); err == nil {
		err = err2
	}
	return err
}

// --- Merge join ------------------------------------------------------------

// mergeJoinIter materializes both (sorted) inputs at Open and evaluates the
// join keys once per row into flat arenas, so the merge itself is pure
// datum comparison — the reference path re-evaluates key expressions on
// every advance. Equal-key groups are emitted pairwise without buffering
// the cross product.
type mergeJoinIter struct {
	left, right  rowIter
	lKeyExprs    []boundExpr
	rKeyExprs    []boundExpr
	nKeys        int
	residual     boundExpr // pair-bound
	outFilter    boundExpr // pair-bound
	lEst, rEst   int       // planner cardinality estimates, for preallocation
	lRows, rRows []storage.Row
	lKeys, rKeys []datum.D
	li, ri       int // next ungrouped positions
	lEnd, rEnd   int // current group bounds
	a, b         int // cross-product cursors
	inGroup      bool
	env          rowEnv
	out          rowArena
}

func (b *ibuild) newMergeJoinIter(n *Node) (*mergeJoinIter, error) {
	leftNode, rightNode := n.Children[0], n.Children[1]
	lKeyExprs, rKeyExprs, residual := joinKeyPairs(n.JoinCond, leftNode.Schema)
	if len(lKeyExprs) == 0 {
		return nil, fmt.Errorf("engine: merge join without equi-condition")
	}
	it := &mergeJoinIter{
		nKeys: len(lKeyExprs),
		lEst:  estCap(leftNode.EstRows),
		rEst:  estCap(rightNode.EstRows),
	}
	var err error
	if it.left, err = b.build(leftNode); err != nil {
		return nil, err
	}
	if it.right, err = b.build(rightNode); err != nil {
		return nil, err
	}
	if it.lKeyExprs, err = bindExprs(lKeyExprs, leftNode.Schema, b.e.subquery); err != nil {
		return nil, err
	}
	if it.rKeyExprs, err = bindExprs(rKeyExprs, rightNode.Schema, b.e.subquery); err != nil {
		return nil, err
	}
	if cond := sqlparser.JoinConjuncts(residual); cond != nil {
		if it.residual, err = bindPairExpr(cond, leftNode.Schema, rightNode.Schema, b.e.subquery); err != nil {
			return nil, err
		}
	}
	if n.Filter != nil {
		if it.outFilter, err = bindPairExpr(n.Filter, leftNode.Schema, rightNode.Schema, b.e.subquery); err != nil {
			return nil, err
		}
	}
	return it, nil
}

// drainKeyed materializes an already-opened child and its per-row key
// datums.
// estCap clamps a planner cardinality estimate to a sane preallocation
// capacity: materializing operators size their buffers from it so the
// common case is one allocation instead of log-many append regrowths, and
// a wild over-estimate cannot balloon memory.
func estCap(est float64) int {
	if est < 16 {
		return 16
	}
	if est > 1<<20 {
		return 1 << 20
	}
	return int(est)
}

func drainKeyed(child rowIter, keys []boundExpr, est int) ([]storage.Row, []datum.D, error) {
	rows := make([]storage.Row, 0, est)
	arena := make([]datum.D, 0, est*len(keys))
	var env rowEnv
	for {
		r, ok, err := child.Next()
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			return rows, arena, nil
		}
		env.left = r
		for _, k := range keys {
			v, err := k(&env)
			if err != nil {
				return nil, nil, err
			}
			arena = append(arena, v)
		}
		rows = append(rows, r)
	}
}

func (it *mergeJoinIter) Open() error {
	var err error
	if err = it.left.Open(); err != nil {
		return err
	}
	if it.lRows, it.lKeys, err = drainKeyed(it.left, it.lKeyExprs, it.lEst); err != nil {
		return err
	}
	if err = it.right.Open(); err != nil {
		return err
	}
	if it.rRows, it.rKeys, err = drainKeyed(it.right, it.rKeyExprs, it.rEst); err != nil {
		return err
	}
	it.li, it.ri, it.inGroup = 0, 0, false
	return nil
}

func (it *mergeJoinIter) key(arena []datum.D, i int) []datum.D {
	return arena[i*it.nKeys : (i+1)*it.nKeys]
}

func keyHasNull(k []datum.D) bool {
	for _, v := range k {
		if v.IsNull() {
			return true
		}
	}
	return false
}

func compareKeys(a, b []datum.D) int {
	for i := range a {
		if c := datum.Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	return 0
}

// advance finds the next equal-key group; reports false when either input
// is exhausted.
func (it *mergeJoinIter) advance() bool {
	for it.li < len(it.lRows) && it.ri < len(it.rRows) {
		lk := it.key(it.lKeys, it.li)
		if keyHasNull(lk) {
			it.li++
			continue
		}
		rk := it.key(it.rKeys, it.ri)
		if keyHasNull(rk) {
			it.ri++
			continue
		}
		c := compareKeys(lk, rk)
		if c < 0 {
			it.li++
			continue
		}
		if c > 0 {
			it.ri++
			continue
		}
		it.lEnd = it.li + 1
		for it.lEnd < len(it.lRows) && compareKeys(it.key(it.lKeys, it.lEnd), lk) == 0 {
			it.lEnd++
		}
		it.rEnd = it.ri + 1
		for it.rEnd < len(it.rRows) && compareKeys(it.key(it.rKeys, it.rEnd), rk) == 0 {
			it.rEnd++
		}
		it.a, it.b = it.li, it.ri
		it.inGroup = true
		return true
	}
	return false
}

func (it *mergeJoinIter) Next() (storage.Row, bool, error) {
	for {
		if !it.inGroup {
			if !it.advance() {
				return nil, false, nil
			}
		}
		for it.a < it.lEnd {
			for it.b < it.rEnd {
				lr, rr := it.lRows[it.a], it.rRows[it.b]
				it.b++
				it.env.left, it.env.right = lr, rr
				if it.residual != nil {
					v, err := it.residual(&it.env)
					if err != nil {
						return nil, false, err
					}
					if !truthy(v) {
						continue
					}
				}
				if it.outFilter != nil {
					v, err := it.outFilter(&it.env)
					if err != nil {
						return nil, false, err
					}
					if !truthy(v) {
						continue
					}
				}
				return it.out.concat(lr, rr), true, nil
			}
			it.a++
			it.b = it.ri
		}
		it.li, it.ri = it.lEnd, it.rEnd
		it.inGroup = false
	}
}

func (it *mergeJoinIter) Close() error {
	err := it.left.Close()
	if err2 := it.right.Close(); err == nil {
		err = err2
	}
	return err
}

// --- Sort / top-K -----------------------------------------------------------

// sortIter materializes and sorts its input at Open. When the planner set
// SortLimit (a Sort feeding a Limit), it keeps a bounded top-K heap instead
// of buffering and sorting everything; sequence numbers break ties so the
// result is identical to a stable full sort followed by truncation.
type sortIter struct {
	child rowIter
	keys  []boundExpr
	desc  []bool
	topK  int64 // 0 = full sort
	est   int   // planner cardinality estimate, for preallocation
	out   []storage.Row
	pos   int
}

func (b *ibuild) newSortIter(n *Node) (*sortIter, error) {
	it := &sortIter{topK: n.SortLimit, est: estCap(n.EstRows)}
	var err error
	if it.child, err = b.build(n.Children[0]); err != nil {
		return nil, err
	}
	exprs := make([]sqlparser.Expr, len(n.SortKeys))
	it.desc = make([]bool, len(n.SortKeys))
	for i, k := range n.SortKeys {
		exprs[i] = k.Expr
		it.desc[i] = k.Desc
	}
	if it.keys, err = bindExprs(exprs, n.Children[0].Schema, b.e.subquery); err != nil {
		return nil, err
	}
	return it, nil
}

func (it *sortIter) Open() error {
	if err := it.child.Open(); err != nil {
		return err
	}
	it.pos = 0
	if it.topK > 0 {
		return it.openTopK()
	}
	rows, arena, err := drainKeyed(it.child, it.keys, it.est)
	if err != nil {
		return err
	}
	nKeys := len(it.keys)
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(x, y int) bool {
		a, b := idx[x], idx[y]
		for j := 0; j < nKeys; j++ {
			c := datum.Compare(arena[a*nKeys+j], arena[b*nKeys+j])
			if it.desc[j] {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	it.out = make([]storage.Row, len(rows))
	for i, j := range idx {
		it.out[i] = rows[j]
	}
	return nil
}

func (it *sortIter) openTopK() error {
	h := newTopKHeap(int(it.topK), len(it.keys), it.desc)
	scratch := make([]datum.D, len(it.keys))
	var env rowEnv
	for {
		r, ok, err := it.child.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		env.left = r
		for i, k := range it.keys {
			v, err := k(&env)
			if err != nil {
				return err
			}
			scratch[i] = v
		}
		h.push(r, scratch)
	}
	it.out = h.finish()
	return nil
}

func (it *sortIter) Next() (storage.Row, bool, error) {
	if it.pos >= len(it.out) {
		return nil, false, nil
	}
	r := it.out[it.pos]
	it.pos++
	return r, true, nil
}

func (it *sortIter) Close() error { return it.child.Close() }

// topKHeap retains the K rows that order first, as a max-heap keyed on
// (sort keys, arrival sequence): the root is the row that orders last among
// those retained, so a new row either displaces the root in place or is
// dropped — zero allocations per row once the heap is full. The sequence
// tiebreak makes the selection and final order exactly equal to a stable
// full sort truncated to K.
type topKHeap struct {
	k, nKeys int
	desc     []bool
	rows     []storage.Row
	keys     []datum.D // slot-major arena, nKeys per slot
	seqs     []int64
	order    []int32 // heap of slot indices
	next     int64   // arrival counter
}

func newTopKHeap(k, nKeys int, desc []bool) *topKHeap {
	// k comes from a user-supplied LIMIT and may vastly exceed the input
	// size; cap the initial capacity and let append grow the slices, so a
	// huge LIMIT costs memory proportional to the actual input.
	hint := k
	if hint > 1024 {
		hint = 1024
	}
	return &topKHeap{
		k: k, nKeys: nKeys, desc: desc,
		rows:  make([]storage.Row, 0, hint),
		keys:  make([]datum.D, 0, hint*nKeys),
		seqs:  make([]int64, 0, hint),
		order: make([]int32, 0, hint),
	}
}

// before reports whether (keyA, seqA) orders strictly before slot y.
func (h *topKHeap) before(keyA []datum.D, seqA int64, y int32) bool {
	off := int(y) * h.nKeys
	for j := 0; j < h.nKeys; j++ {
		c := datum.Compare(keyA[j], h.keys[off+j])
		if h.desc[j] {
			c = -c
		}
		if c != 0 {
			return c < 0
		}
	}
	return seqA < h.seqs[y]
}

func (h *topKHeap) slotBefore(x, y int32) bool {
	off := int(x) * h.nKeys
	return h.before(h.keys[off:off+h.nKeys], h.seqs[x], y)
}

func (h *topKHeap) push(r storage.Row, key []datum.D) {
	seq := h.next
	h.next++
	h.pushSeq(r, key, seq)
}

// pushSeq inserts with a caller-assigned sequence. The parallel sort
// workers (parallel.go) use it to tag each row with its serial arrival
// order, so merged per-worker heaps reproduce the serial top-K exactly.
func (h *topKHeap) pushSeq(r storage.Row, key []datum.D, seq int64) {
	if h.k == 0 {
		return
	}
	if len(h.rows) < h.k {
		slot := int32(len(h.rows))
		h.rows = append(h.rows, r)
		h.keys = append(h.keys, key...)
		h.seqs = append(h.seqs, seq)
		h.order = append(h.order, slot)
		// Sift up: a child that orders after its parent rises.
		i := len(h.order) - 1
		for i > 0 {
			parent := (i - 1) / 2
			if !h.slotBefore(h.order[parent], h.order[i]) {
				break
			}
			h.order[parent], h.order[i] = h.order[i], h.order[parent]
			i = parent
		}
		return
	}
	worst := h.order[0]
	if !h.before(key, seq, worst) {
		return // orders at or after everything retained
	}
	// Displace the root in place.
	h.rows[worst] = r
	copy(h.keys[int(worst)*h.nKeys:], key)
	h.seqs[worst] = seq
	h.siftDown(0)
}

func (h *topKHeap) siftDown(i int) {
	n := len(h.order)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && h.slotBefore(h.order[largest], h.order[l]) {
			largest = l
		}
		if r < n && h.slotBefore(h.order[largest], h.order[r]) {
			largest = r
		}
		if largest == i {
			return
		}
		h.order[i], h.order[largest] = h.order[largest], h.order[i]
		i = largest
	}
}

// finish returns the retained rows in ascending sort order.
func (h *topKHeap) finish() []storage.Row {
	sort.Slice(h.order, func(x, y int) bool { return h.slotBefore(h.order[x], h.order[y]) })
	out := make([]storage.Row, len(h.order))
	for i, slot := range h.order {
		out[i] = h.rows[slot]
	}
	return out
}

// finishRuns returns the retained rows in ascending sort order together
// with their keys (row-major) and sequences — the sorted-run form the
// parallel exchange merges across workers.
func (h *topKHeap) finishRuns() ([]storage.Row, []datum.D, []int64) {
	sort.Slice(h.order, func(x, y int) bool { return h.slotBefore(h.order[x], h.order[y]) })
	rows := make([]storage.Row, len(h.order))
	keys := make([]datum.D, 0, len(h.order)*h.nKeys)
	seqs := make([]int64, len(h.order))
	for i, slot := range h.order {
		rows[i] = h.rows[slot]
		keys = append(keys, h.keys[int(slot)*h.nKeys:(int(slot)+1)*h.nKeys]...)
		seqs[i] = h.seqs[slot]
	}
	return rows, keys, seqs
}

// --- Aggregation -----------------------------------------------------------

// aggIter computes grouped aggregation at Open (aggregation is inherently
// blocking) with pre-bound group-key and argument expressions, then streams
// the finalized group rows.
type aggIter struct {
	child     rowIter
	groupKeys []boundExpr
	aggs      []aggSpec
	aggArgs   []boundExpr // nil entry for COUNT(*)
	having    boundExpr   // bound against the aggregate output schema
	plain     bool        // no GROUP BY: empty input still yields one row
	out       []storage.Row
	pos       int
}

func (b *ibuild) newAggIter(n *Node) (*aggIter, error) {
	childSchema := n.Children[0].Schema
	it := &aggIter{aggs: n.Aggs, plain: len(n.GroupKeys) == 0}
	var err error
	if it.child, err = b.build(n.Children[0]); err != nil {
		return nil, err
	}
	if it.groupKeys, err = bindExprs(n.GroupKeys, childSchema, b.e.subquery); err != nil {
		return nil, err
	}
	it.aggArgs = make([]boundExpr, len(n.Aggs))
	for i, a := range n.Aggs {
		if a.Call.Star {
			continue
		}
		if it.aggArgs[i], err = bindExpr(a.Call.Args[0], childSchema, b.e.subquery); err != nil {
			return nil, err
		}
	}
	if n.HavingFilter != nil {
		if it.having, err = bindExpr(n.HavingFilter, n.Schema, b.e.subquery); err != nil {
			return nil, err
		}
	}
	return it, nil
}

func (it *aggIter) newStates() []aggState {
	states := make([]aggState, len(it.aggs))
	for i := range states {
		states[i] = newAggState(it.aggs[i].Call)
		if it.aggs[i].Call.Distinct {
			states[i].distinct = make(map[string]bool)
		}
	}
	return states
}

func (it *aggIter) Open() error {
	if err := it.child.Open(); err != nil {
		return err
	}
	type group struct {
		keyVals []datum.D
		states  []aggState // value slice: one allocation per group, not per agg
	}
	idx := make(map[string]int32) // encoded key → index into groups
	var groups []group
	var env rowEnv
	// The build loop is per-input-row hot: keys evaluate into a reused
	// scratch slice and encode via AppendKey into a reused byte buffer, so
	// rows of existing groups allocate nothing (the map lookup on
	// string(keyBuf) does not copy; only a new group's insert does).
	keyBuf := make([]byte, 0, 64)
	keyScratch := make([]datum.D, len(it.groupKeys))
	for {
		r, ok, err := it.child.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		env.left = r
		keyBuf = keyBuf[:0]
		for i, k := range it.groupKeys {
			v, err := k(&env)
			if err != nil {
				return err
			}
			keyScratch[i] = v
			keyBuf = v.AppendKey(keyBuf)
			keyBuf = append(keyBuf, 0)
		}
		gi, ok := idx[string(keyBuf)]
		if !ok {
			gi = int32(len(groups))
			groups = append(groups, group{keyVals: append([]datum.D(nil), keyScratch...), states: it.newStates()})
			idx[string(keyBuf)] = gi
		}
		g := &groups[gi] // re-taken per row: groups may have been regrown
		for i, a := range it.aggs {
			if a.Call.Star {
				g.states[i].count++
				continue
			}
			v, err := it.aggArgs[i](&env)
			if err != nil {
				return err
			}
			if err := accumulateDatum(&g.states[i], v); err != nil {
				return err
			}
		}
	}
	// Plain aggregate over an empty input still yields one row.
	if it.plain && len(groups) == 0 {
		groups = append(groups, group{states: it.newStates()})
	}
	it.out = it.out[:0]
	it.pos = 0
	for gi := range groups {
		g := &groups[gi]
		row := make(storage.Row, 0, len(g.keyVals)+len(g.states))
		row = append(row, g.keyVals...)
		for i, a := range it.aggs {
			row = append(row, finalize(&g.states[i], a.Call))
		}
		if it.having != nil {
			env.left = row
			v, err := it.having(&env)
			if err != nil {
				return err
			}
			if !truthy(v) {
				continue
			}
		}
		it.out = append(it.out, row)
	}
	return nil
}

func (it *aggIter) Next() (storage.Row, bool, error) {
	if it.pos >= len(it.out) {
		return nil, false, nil
	}
	r := it.out[it.pos]
	it.pos++
	return r, true, nil
}

func (it *aggIter) Close() error { return it.child.Close() }

// --- Unique ----------------------------------------------------------------

// uniqueIter streams its (sorted) input, emitting the first row of each
// distinct key.
type uniqueIter struct {
	child rowIter
	keys  []boundExpr
	seen  map[string]bool
	buf   []byte
	env   rowEnv
}

func (b *ibuild) newUniqueIter(n *Node) (*uniqueIter, error) {
	it := &uniqueIter{}
	var err error
	if it.child, err = b.build(n.Children[0]); err != nil {
		return nil, err
	}
	exprs := make([]sqlparser.Expr, len(n.SortKeys))
	for i, k := range n.SortKeys {
		exprs[i] = k.Expr
	}
	if it.keys, err = bindExprs(exprs, n.Children[0].Schema, b.e.subquery); err != nil {
		return nil, err
	}
	return it, nil
}

func (it *uniqueIter) Open() error {
	it.seen = make(map[string]bool)
	return it.child.Open()
}

func (it *uniqueIter) Next() (storage.Row, bool, error) {
	for {
		r, ok, err := it.child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		it.env.left = r
		it.buf = it.buf[:0]
		for _, k := range it.keys {
			v, err := k(&it.env)
			if err != nil {
				return nil, false, err
			}
			it.buf = append(it.buf, v.String()...)
			it.buf = append(it.buf, 0)
		}
		if it.seen[string(it.buf)] {
			continue
		}
		it.seen[string(it.buf)] = true
		return r, true, nil
	}
}

func (it *uniqueIter) Close() error { return it.child.Close() }

// --- Result ----------------------------------------------------------------

// resultIter emits the single constant row of a FROM-less SELECT.
type resultIter struct {
	items []boundExpr
	row   storage.Row
	done  bool
}

func (b *ibuild) newResultIter(n *Node) (*resultIter, error) {
	it := &resultIter{items: make([]boundExpr, len(n.ResultItems))}
	for i, item := range n.ResultItems {
		bound, err := bindExpr(item.Expr, nil, b.e.subquery)
		if err != nil {
			return nil, err
		}
		it.items[i] = bound
	}
	return it, nil
}

func (it *resultIter) Open() error {
	var env rowEnv
	it.row = make(storage.Row, len(it.items))
	for i, item := range it.items {
		v, err := item(&env)
		if err != nil {
			return err
		}
		it.row[i] = v
	}
	it.done = false
	return nil
}

func (it *resultIter) Next() (storage.Row, bool, error) {
	if it.done {
		return nil, false, nil
	}
	it.done = true
	return it.row, true, nil
}

func (it *resultIter) Close() error { return nil }
