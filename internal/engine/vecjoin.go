package engine

// vecjoin.go is the batch hash join. The build phase is the same flat
// keyArena + bucket table as the row pipeline's hashJoinIter (NULL keys
// are skipped on insert — they can never match), consumed batch-at-a-time;
// the probe phase walks each probe batch in a tight loop, loading key
// datums by ordinal when the join keys are bare column references, and
// packs surviving joined rows into a batchWriter arena — one allocation
// per output batch where the row pipeline pays one concatRows allocation
// per output row. NULL semantics are identical on both sides: a probe row
// with any NULL key component gets an empty bucket (and, for LEFT JOIN,
// flows to the null-extension path), and `matched` is decided by the ON
// condition (keys + residual) alone — the pushed-down WHERE filter only
// gates emission, after null-extension, exactly as the reference executor
// applies it.

import (
	"fmt"

	"lantern/internal/datum"
	"lantern/internal/sqlparser"
	"lantern/internal/storage"
)

type hashJoinVec struct {
	probe, build vecIter

	// Key evaluation: ordinal fast path when every key is a bare column
	// reference, pre-bound closures otherwise. Exactly one of
	// {probeKeyOrds, probeKeys} is non-nil, same for the build side.
	probeKeyOrds []int
	probeKeys    []boundExpr
	buildKeyOrds []int
	buildKeys    []boundExpr
	nKeys        int

	residual   boundExpr // pair-bound residual join condition
	outFilter  boundExpr // pair-bound post-join filter (n.Filter)
	leftOuter  bool
	nullsRight storage.Row

	entries  []storage.Row
	keyArena []datum.D // len(entries)*nKeys, parallel to entries
	table    map[uint64][]int32

	// shared, when non-nil, is a prebuilt build side owned by the parallel
	// exchange (parallel.go): Open adopts it read-only instead of draining
	// the build child, so every worker's probe clone shares one table.
	shared *hashShared

	w      batchWriter
	env    rowEnv
	keyBuf []datum.D

	// Probe cursor, preserved across NextBatch calls when the output batch
	// fills mid-bucket.
	curBatch []storage.Row
	pi       int
	probeRow storage.Row
	bucket   []int32
	bi       int
	matched  bool
	probing  bool
}

func (v *vbuild) newHashJoinVec(n *Node) (*hashJoinVec, error) {
	it, err := v.hashJoinShell(n)
	if err != nil {
		return nil, err
	}
	if it.probe, err = v.build(n.Children[0]); err != nil {
		return nil, err
	}
	if it.build, err = v.build(n.Children[1]); err != nil {
		return nil, err
	}
	return it, nil
}

// hashJoinShell builds everything of a hashJoinVec except its child
// iterators: key evaluation for both sides, residual and post-join filter
// binds, and the output writer. The serial constructor attaches probe and
// build children; the parallel exchange attaches a per-worker probe clone
// and a shared prebuilt table instead.
func (v *vbuild) hashJoinShell(n *Node) (*hashJoinVec, error) {
	probeNode, hashNode := n.Children[0], n.Children[1]
	probeKeyExprs, buildKeyExprs, residual := joinKeyPairs(n.JoinCond, probeNode.Schema)
	if len(probeKeyExprs) == 0 {
		return nil, fmt.Errorf("engine: hash join without equi-condition")
	}
	it := &hashJoinVec{
		nKeys:     len(probeKeyExprs),
		leftOuter: n.JoinType == sqlparser.LeftJoin,
	}
	var err error
	if it.probeKeyOrds = keyOrdinals(probeKeyExprs, probeNode.Schema); it.probeKeyOrds == nil {
		if it.probeKeys, err = bindExprs(probeKeyExprs, probeNode.Schema, v.e.subquery); err != nil {
			return nil, err
		}
	}
	if it.buildKeyOrds = keyOrdinals(buildKeyExprs, hashNode.Schema); it.buildKeyOrds == nil {
		if it.buildKeys, err = bindExprs(buildKeyExprs, hashNode.Schema, v.e.subquery); err != nil {
			return nil, err
		}
	}
	if cond := sqlparser.JoinConjuncts(residual); cond != nil {
		if it.residual, err = bindPairExpr(cond, probeNode.Schema, hashNode.Schema, v.e.subquery); err != nil {
			return nil, err
		}
	}
	if n.Filter != nil {
		if it.outFilter, err = bindPairExpr(n.Filter, probeNode.Schema, hashNode.Schema, v.e.subquery); err != nil {
			return nil, err
		}
	}
	it.nullsRight = make(storage.Row, len(hashNode.Schema))
	for i := range it.nullsRight {
		it.nullsRight[i] = datum.Null
	}
	it.keyBuf = make([]datum.D, it.nKeys)
	it.w.width = len(probeNode.Schema) + len(hashNode.Schema)
	return it, nil
}

// hashRowKeys evaluates r's key datums into dst (which must hold nKeys),
// returning the FNV hash and whether any component was NULL (in which case
// dst is partial and the row can never match).
func hashRowKeys(r storage.Row, ords []int, keys []boundExpr, dst []datum.D, env *rowEnv) (uint64, bool, error) {
	h := uint64(1469598103934665603)
	if ords != nil {
		for i, ord := range ords {
			v := r[ord]
			if v.IsNull() {
				return 0, true, nil
			}
			dst[i] = v
			h = h*1099511628211 ^ v.Hash()
		}
		return h, false, nil
	}
	env.left = r
	for i, k := range keys {
		v, err := k(env)
		if err != nil {
			return 0, false, err
		}
		if v.IsNull() {
			return 0, true, nil
		}
		dst[i] = v
		h = h*1099511628211 ^ v.Hash()
	}
	return h, false, nil
}

func (it *hashJoinVec) Open() error {
	if it.shared != nil {
		// Prebuilt by the exchange before workers started; adopt read-only.
		it.entries, it.keyArena, it.table = it.shared.entries, it.shared.keyArena, it.shared.table
		it.curBatch, it.pi = nil, 0
		it.probeRow, it.bucket, it.bi = nil, nil, 0
		it.probing = false
		return it.probe.Open()
	}
	if err := it.build.Open(); err != nil {
		return err
	}
	it.entries = it.entries[:0]
	it.keyArena = it.keyArena[:0]
	it.table = make(map[uint64][]int32)
	var env rowEnv
	keyBuf := make([]datum.D, it.nKeys)
	for {
		b, err := it.build.NextBatch()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		for _, r := range b {
			h, null, err := hashRowKeys(r, it.buildKeyOrds, it.buildKeys, keyBuf, &env)
			if err != nil {
				return err
			}
			if null {
				continue // NULL keys never match
			}
			it.keyArena = append(it.keyArena, keyBuf[:it.nKeys]...)
			it.table[h] = append(it.table[h], int32(len(it.entries)))
			it.entries = append(it.entries, r)
		}
	}
	it.curBatch, it.pi = nil, 0
	it.probeRow, it.bucket, it.bi = nil, nil, 0
	it.probing = false
	return it.probe.Open()
}

func (it *hashJoinVec) NextBatch() ([]storage.Row, error) {
	it.w.reset()
	for {
		if !it.probing {
			if it.pi >= len(it.curBatch) {
				b, err := it.probe.NextBatch()
				if err != nil {
					return nil, err
				}
				if b == nil {
					if len(it.w.rows) > 0 {
						return it.w.rows, nil
					}
					return nil, nil
				}
				it.curBatch, it.pi = b, 0
				// Size the (not-yet-allocated) output arena for roughly one
				// output row per probe row; duplicate build keys grow it.
				if it.w.arena == nil {
					it.w.hint = len(b)
				}
				continue
			}
			r := it.curBatch[it.pi]
			it.pi++
			it.probeRow = r
			it.matched = false
			it.bucket, it.bi = nil, 0
			h, null, err := hashRowKeys(r, it.probeKeyOrds, it.probeKeys, it.keyBuf, &it.env)
			if err != nil {
				return nil, err
			}
			if !null {
				it.bucket = it.table[h]
			}
			it.probing = true
		}
		it.env.left = it.probeRow
		for it.bi < len(it.bucket) {
			idx := it.bucket[it.bi]
			it.bi++
			off := int(idx) * it.nKeys
			if !datumsEqual(it.keyBuf, it.keyArena[off:off+it.nKeys]) {
				continue // hash collision
			}
			br := it.entries[idx]
			it.env.right = br
			if it.residual != nil {
				v, err := it.residual(&it.env)
				if err != nil {
					return nil, err
				}
				if !truthy(v) {
					continue
				}
			}
			it.matched = true
			if it.outFilter != nil {
				v, err := it.outFilter(&it.env)
				if err != nil {
					return nil, err
				}
				if !truthy(v) {
					continue
				}
			}
			it.w.appendConcat(it.probeRow, br)
			if it.w.full() {
				return it.w.rows, nil // resume mid-bucket next call
			}
		}
		pr := it.probeRow
		it.probing = false
		if it.leftOuter && !it.matched {
			it.env.left, it.env.right = pr, it.nullsRight
			if it.outFilter != nil {
				v, err := it.outFilter(&it.env)
				if err != nil {
					return nil, err
				}
				if !truthy(v) {
					continue
				}
			}
			it.w.appendConcat(pr, it.nullsRight)
			if it.w.full() {
				return it.w.rows, nil
			}
		}
	}
}

func (it *hashJoinVec) Close() error {
	err := it.probe.Close()
	if it.build != nil {
		if err2 := it.build.Close(); err == nil {
			err = err2
		}
	}
	return err
}
