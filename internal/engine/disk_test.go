package engine

// Disk-backed execution tests: the engine over a catalog opened on a data
// directory, with sealed segments spilled to segment files and served
// back through the pager's buffer pool. The differential leg reruns the
// full query corpus with a buffer pool deliberately sized below the
// spilled data, so every executor faults payloads in and out under
// eviction pressure; the I/O-accounting tests pin the tentpole contract
// that a zone-pruned segment is never faulted in at all.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"lantern/internal/catalog"
	"lantern/internal/pager"
)

// diskDB builds the standard test database on a disk-backed catalog with
// tiny segments (capacity 8), so every table spills multiple segment
// files. poolBytes sizes the buffer pool (1 byte = evict-after-unpin).
func diskDB(t *testing.T, cfg Config, poolBytes int64) *Engine {
	t.Helper()
	cat, err := catalog.Open(t.TempDir(), pager.Config{BufferPoolBytes: poolBytes})
	if err != nil {
		t.Fatal(err)
	}
	e := NewWithCatalog(cfg, cat)
	seedTestDB(t, e, 8)
	return e
}

// TestDifferentialCorpusDiskBacked is the disk-backed leg of the
// differential corpus: all four executors over spilled tables with a
// 1-byte buffer pool, so no payload ever stays cached and every scan
// faults its segments from disk. Results must match the in-memory
// reference row for row.
func TestDifferentialCorpusDiskBacked(t *testing.T) {
	e := diskDB(t, DefaultConfig(), 1)
	for _, q := range diffCorpus {
		mustExec(t, e, q)
		assertSameResults(t, e, q)
	}
	st := e.Cat.Pager().Pool().Stats()
	if st.Misses == 0 || st.Evictions == 0 {
		t.Fatalf("corpus never exercised the constrained pool: %+v", st)
	}
}

// TestDiskBackedDML runs UPDATE/DELETE (the streaming COW rebuilds) and
// index DDL against spilled tables mid-corpus, then re-checks a few
// queries differentially.
func TestDiskBackedDML(t *testing.T) {
	e := diskDB(t, DefaultConfig(), 64<<10)
	mustExec(t, e, "UPDATE orders SET o_totalprice = o_totalprice + 1 WHERE o_orderkey % 5 = 0")
	mustExec(t, e, "DELETE FROM orders WHERE o_orderkey > 55")
	mustExec(t, e, "CREATE INDEX orders_ck ON orders (o_custkey)")
	for _, q := range []string{
		"SELECT COUNT(*), SUM(o_totalprice) FROM orders",
		"SELECT c.c_name, o.o_orderkey FROM customer c, orders o WHERE c.c_custkey = o.o_custkey",
		"SELECT o_orderkey FROM orders WHERE o_custkey = 7",
		"SELECT o_orderkey FROM orders ORDER BY o_totalprice DESC LIMIT 9",
	} {
		mustExec(t, e, q)
		assertSameResults(t, e, q)
	}
}

// TestZonePrunedScanZeroIO pins the tentpole's I/O contract: pruning
// consults only resident footer metadata, so a scan whose predicate
// refutes a segment's zone map never faults that segment in. The table
// spans four spilled segments with disjoint key ranges; a point query
// into the last segment may fault exactly one payload, and a
// prune-everything query faults none.
func TestZonePrunedScanZeroIO(t *testing.T) {
	cat, err := catalog.Open(t.TempDir(), pager.Config{})
	if err != nil {
		t.Fatal(err)
	}
	e := NewWithCatalog(DefaultConfig(), cat)
	mustExec(t, e, "CREATE TABLE zp (k INTEGER, v INTEGER)")
	tbl, err := e.Cat.Table("zp")
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.SetSegmentCapacity(4); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		// Segment s holds k in [100s, 100s+3]: disjoint zone ranges.
		mustExec(t, e, fmt.Sprintf("INSERT INTO zp VALUES (%d, %d)", (i/4)*100+i%4, i))
	}
	pool := cat.Pager().Pool()

	base := pool.Stats().Misses
	r := mustExec(t, e, "SELECT v FROM zp WHERE k = 301")
	if len(r.Rows) != 1 {
		t.Fatalf("rows: %d", len(r.Rows))
	}
	if got := pool.Stats().Misses - base; got != 1 {
		t.Fatalf("point query into one segment faulted %d payloads, want 1", got)
	}

	base = pool.Stats().Misses
	r = mustExec(t, e, "SELECT v FROM zp WHERE k > 1000")
	if len(r.Rows) != 0 {
		t.Fatalf("rows: %d", len(r.Rows))
	}
	if got := pool.Stats().Misses - base; got != 0 {
		t.Fatalf("prune-everything query faulted %d payloads, want 0 (zero I/O)", got)
	}

	// The row-stream pipeline honors the same contract.
	e.Cfg.RowStreamExec = true
	base = pool.Stats().Misses
	mustExec(t, e, "SELECT v FROM zp WHERE k > 1000")
	if got := pool.Stats().Misses - base; got != 0 {
		t.Fatalf("row-stream pruned scan faulted %d payloads, want 0", got)
	}
}

// TestCorruptSegmentIsStructuredError pins the failure mode of on-disk
// corruption: a flipped payload byte surfaces through SQL execution as an
// error wrapping pager.ErrChecksum on every executor — never a panic.
func TestCorruptSegmentIsStructuredError(t *testing.T) {
	dir := t.TempDir()
	cat, err := catalog.Open(dir, pager.Config{BufferPoolBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	e := NewWithCatalog(DefaultConfig(), cat)
	mustExec(t, e, "CREATE TABLE bad (k INTEGER)")
	tbl, err := e.Cat.Table("bad")
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.SetSegmentCapacity(4); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		mustExec(t, e, fmt.Sprintf("INSERT INTO bad VALUES (%d)", i))
	}
	file := filepath.Join(dir, pager.SegmentFileName("bad", 0))
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	data[20] ^= 0xff
	if err := os.WriteFile(file, data, 0o644); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{"vectorized", "row-stream", "reference"} {
		e.Cfg.RowStreamExec = mode == "row-stream"
		e.Cfg.ReferenceExec = mode == "reference"
		_, err := e.Exec("SELECT COUNT(*) FROM bad")
		if !errors.Is(err, pager.ErrChecksum) {
			t.Fatalf("%s executor on corrupt segment: err = %v, want ErrChecksum", mode, err)
		}
	}
}

// TestDiskBackedParallelScan forces the morsel-parallel executor over
// spilled segments under a constrained pool: workers fault and release
// segments concurrently and the merged output matches the reference.
func TestDiskBackedParallelScan(t *testing.T) {
	e := diskDB(t, DefaultConfig(), 1)
	par := e.Session()
	par.Cfg.MaxQueryParallelism = 4
	par.Cfg.ParallelRowsPerWorker = 1
	for _, q := range []string{
		"SELECT o_orderkey, o_totalprice FROM orders WHERE o_totalprice > 100",
		"SELECT o_status, COUNT(*), SUM(o_orderkey) FROM orders GROUP BY o_status",
		"SELECT c.c_name, o.o_orderkey FROM customer c, orders o WHERE c.c_custkey = o.o_custkey ORDER BY o.o_orderkey",
	} {
		mustExec(t, par, q)
		assertSameResults(t, e, q)
	}
}
