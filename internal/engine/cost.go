package engine

import (
	"math"

	"lantern/internal/catalog"
	"lantern/internal/datum"
	"lantern/internal/sqlparser"
)

// Cost model constants, in abstract cost units loosely patterned after
// PostgreSQL's (sequential page fetch = 1.0 baseline).
const (
	cpuTupleCost   = 0.01 // per tuple processed
	cpuOperCost    = 0.0025
	seqTupleCost   = 0.05 // per tuple of sequential scan (page amortized)
	randTupleCost  = 0.2  // per tuple fetched through an index
	hashBuildCost  = 0.02 // per tuple inserted into a hash table
	sortCostFactor = 0.02 // multiplied by N log2 N
	defaultSel     = 1.0 / 3.0
	eqDefaultSel   = 0.005
	likeSel        = 0.05
)

// selectivityEstimator estimates predicate selectivities from catalog
// statistics. tableOf maps an alias to its base table name.
type selectivityEstimator struct {
	cat     *catalog.Catalog
	tableOf map[string]string
}

// selectivity returns the estimated fraction of rows satisfying e.
func (s *selectivityEstimator) selectivity(e sqlparser.Expr) float64 {
	switch ex := e.(type) {
	case *sqlparser.BinaryExpr:
		switch ex.Op {
		case sqlparser.OpAnd:
			return s.selectivity(ex.Left) * s.selectivity(ex.Right)
		case sqlparser.OpOr:
			l, r := s.selectivity(ex.Left), s.selectivity(ex.Right)
			return l + r - l*r
		case sqlparser.OpEq:
			return s.eqSelectivity(ex)
		case sqlparser.OpNe:
			return 1 - s.eqSelectivity(ex)
		case sqlparser.OpLt, sqlparser.OpLe, sqlparser.OpGt, sqlparser.OpGe:
			return s.rangeSelectivity(ex)
		}
		return defaultSel
	case *sqlparser.UnaryExpr:
		if ex.Op == '!' {
			return clampSel(1 - s.selectivity(ex.X))
		}
		return defaultSel
	case *sqlparser.LikeExpr:
		if ex.Not {
			return clampSel(1 - likeSel)
		}
		return likeSel
	case *sqlparser.BetweenExpr:
		// Treated as two range predicates.
		return clampSel(defaultSel * defaultSel * 4)
	case *sqlparser.InExpr:
		if col, ok := ex.X.(*sqlparser.ColumnRef); ok && len(ex.List) > 0 {
			ndv := s.ndv(col)
			if ndv > 0 {
				sel := float64(len(ex.List)) / float64(ndv)
				if ex.Not {
					sel = 1 - sel
				}
				return clampSel(sel)
			}
		}
		return defaultSel
	case *sqlparser.IsNullExpr:
		if col, ok := ex.X.(*sqlparser.ColumnRef); ok {
			if cs, ok := s.colStats(col); ok {
				if ex.Not {
					return clampSel(1 - cs.NullFraction)
				}
				return clampSel(cs.NullFraction)
			}
		}
		return 0.01
	}
	return defaultSel
}

func (s *selectivityEstimator) colStats(c *sqlparser.ColumnRef) (catalog.ColumnStats, bool) {
	tbl := c.Table
	if mapped, ok := s.tableOf[tbl]; ok {
		tbl = mapped
	}
	if tbl == "" {
		// Unqualified: try every table for a unique owner.
		for _, base := range s.tableOf {
			if cs, err := s.cat.ColumnStats(base, c.Name); err == nil {
				return cs, true
			}
		}
		return catalog.ColumnStats{}, false
	}
	cs, err := s.cat.ColumnStats(tbl, c.Name)
	if err != nil {
		return catalog.ColumnStats{}, false
	}
	return cs, true
}

// ndv returns the distinct count for a column, or 0 when unknown.
func (s *selectivityEstimator) ndv(c *sqlparser.ColumnRef) int {
	if cs, ok := s.colStats(c); ok {
		return cs.Distinct
	}
	return 0
}

func (s *selectivityEstimator) eqSelectivity(ex *sqlparser.BinaryExpr) float64 {
	if col, ok := ex.Left.(*sqlparser.ColumnRef); ok {
		if _, isLit := ex.Right.(*sqlparser.Literal); isLit {
			if ndv := s.ndv(col); ndv > 0 {
				return clampSel(1 / float64(ndv))
			}
		}
	}
	if col, ok := ex.Right.(*sqlparser.ColumnRef); ok {
		if _, isLit := ex.Left.(*sqlparser.Literal); isLit {
			if ndv := s.ndv(col); ndv > 0 {
				return clampSel(1 / float64(ndv))
			}
		}
	}
	return eqDefaultSel
}

// rangeSelectivity interpolates a comparison against a literal within the
// column's [min, max] interval when statistics allow it.
func (s *selectivityEstimator) rangeSelectivity(ex *sqlparser.BinaryExpr) float64 {
	col, okc := ex.Left.(*sqlparser.ColumnRef)
	lit, okl := ex.Right.(*sqlparser.Literal)
	op := ex.Op
	if !okc || !okl {
		// literal <op> column: flip.
		col, okc = ex.Right.(*sqlparser.ColumnRef)
		lit, okl = ex.Left.(*sqlparser.Literal)
		if !okc || !okl {
			return defaultSel
		}
		switch op {
		case sqlparser.OpLt:
			op = sqlparser.OpGt
		case sqlparser.OpLe:
			op = sqlparser.OpGe
		case sqlparser.OpGt:
			op = sqlparser.OpLt
		case sqlparser.OpGe:
			op = sqlparser.OpLe
		}
	}
	cs, ok := s.colStats(col)
	if !ok || cs.Min.IsNull() || cs.Max.IsNull() || !cs.Min.IsNumeric() || !lit.Value.IsNumeric() {
		return defaultSel
	}
	lo, hi, v := cs.Min.Float(), cs.Max.Float(), lit.Value.Float()
	if hi <= lo {
		return defaultSel
	}
	frac := (v - lo) / (hi - lo)
	frac = math.Max(0, math.Min(1, frac))
	switch op {
	case sqlparser.OpLt, sqlparser.OpLe:
		return clampSel(frac)
	case sqlparser.OpGt, sqlparser.OpGe:
		return clampSel(1 - frac)
	}
	return defaultSel
}

func clampSel(s float64) float64 {
	if s < 0.0001 {
		return 0.0001
	}
	if s > 1 {
		return 1
	}
	return s
}

// --- Operator cost formulas ----------------------------------------------

// seqScanCost prices a sequential scan. pruneFrac is the predicted
// fraction of heap rows that zone-map pruning lets the scan skip without
// reading (0 when the table is tail-only, the filter is not prunable, or
// pruning is disabled): skipped rows cost neither the page fetch nor the
// per-tuple predicate check.
func seqScanCost(rows, pruneFrac float64) float64 {
	if pruneFrac < 0 {
		pruneFrac = 0
	} else if pruneFrac > 1 {
		pruneFrac = 1
	}
	return rows * (1 - pruneFrac) * (seqTupleCost + cpuTupleCost)
}

func indexScanCost(tableRows, matchRows float64) float64 {
	if tableRows < 1 {
		tableRows = 1
	}
	return math.Log2(tableRows+1)*cpuOperCost*10 + matchRows*randTupleCost
}

func sortCost(rows float64) float64 {
	if rows < 2 {
		return cpuOperCost
	}
	return sortCostFactor * rows * math.Log2(rows)
}

func hashJoinCost(build, probe, out float64) float64 {
	return build*hashBuildCost + probe*cpuTupleCost + out*cpuTupleCost
}

func mergeJoinCost(left, right, out float64) float64 {
	return (left+right)*cpuTupleCost + out*cpuTupleCost
}

func nestedLoopCost(outer, inner, out float64) float64 {
	return outer*inner*cpuOperCost + out*cpuTupleCost
}

func hashAggCost(rows, groups float64) float64 {
	return rows*(hashBuildCost+cpuTupleCost) + groups*cpuTupleCost
}

func groupAggCost(rows float64) float64 {
	return rows * cpuTupleCost * 2
}

// joinCardinality estimates |L ⋈ R| for an equality join using the classic
// containment assumption card(L)*card(R)/max(ndv_l, ndv_r).
func joinCardinality(lRows, rRows float64, lNDV, rNDV int) float64 {
	maxNDV := lNDV
	if rNDV > maxNDV {
		maxNDV = rNDV
	}
	if maxNDV <= 0 {
		maxNDV = 10
	}
	card := lRows * rRows / float64(maxNDV)
	if card < 1 {
		card = 1
	}
	return card
}

// estimateGroups bounds the number of groups by the product of per-key
// distinct counts, capped at the input cardinality.
func estimateGroups(s *selectivityEstimator, keys []sqlparser.Expr, inputRows float64) float64 {
	if len(keys) == 0 {
		return 1
	}
	groups := 1.0
	for _, k := range keys {
		if col, ok := k.(*sqlparser.ColumnRef); ok {
			if ndv := s.ndv(col); ndv > 0 {
				groups *= float64(ndv)
				continue
			}
		}
		groups *= 10
	}
	if groups > inputRows {
		groups = inputRows
	}
	if groups < 1 {
		groups = 1
	}
	return groups
}

// literalDatum extracts the literal value from an expression, if it is one.
func literalDatum(e sqlparser.Expr) (datum.D, bool) {
	if l, ok := e.(*sqlparser.Literal); ok {
		return l.Value, true
	}
	return datum.Null, false
}
