//go:build !race

package engine

// Allocation regression guards for the streaming executor's hot paths.
// These caps are the point of the pre-bound expression layer: filter
// evaluation, the hash-join probe loop, and the top-K heap must not
// allocate per row (the only sanctioned allocation is the emitted joined
// row itself). Kept out of -race builds because the race runtime inflates
// allocation counts; CI runs this package without -race as well.

import (
	"testing"

	"lantern/internal/datum"
	"lantern/internal/storage"
)

// allocDB builds the shared engine without the *testing.T plumbing of
// testDB (AllocsPerRun needs plain closures).
func allocDB(t *testing.T) *Engine {
	t.Helper()
	return testDB(t, DefaultConfig())
}

// TestFilterEvalAllocs: evaluating a pre-bound scan filter is
// allocation-free per row.
func TestFilterEvalAllocs(t *testing.T) {
	e := allocDB(t)
	plan, err := e.PlanSQL("SELECT c_name FROM customer WHERE c_acctbal > 50 AND c_mktsegment = 'BUILDING'")
	if err != nil {
		t.Fatal(err)
	}
	it, err := e.buildIter(plan)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	if err := it.Open(); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		_, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			if err := it.Open(); err != nil { // rewind: scans reset for free
				t.Fatal(err)
			}
		}
	})
	if avg > 0 {
		t.Fatalf("filter eval allocates %.2f allocs/row, want 0", avg)
	}
}

// TestHashJoinProbeAllocs: the probe loop allocates exactly one object per
// emitted row — the joined output row — and nothing per candidate.
func TestHashJoinProbeAllocs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnableMergeJoin, cfg.EnableNestLoop = false, false
	e := testDB(t, cfg)
	plan, err := e.PlanSQL("SELECT o.o_orderkey, c.c_name FROM customer c, orders o WHERE c.c_custkey = o.o_custkey")
	if err != nil {
		t.Fatal(err)
	}
	it, err := e.buildIter(plan)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	if err := it.Open(); err != nil {
		t.Fatal(err)
	}
	// Every order matches exactly one customer: 60 output rows per pass.
	// 50 pulls stay within one pass, so Open (which rebuilds the hash
	// table) never runs inside the measured region.
	avg := testing.AllocsPerRun(50, func() {
		_, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatal("iterator exhausted mid-measurement")
		}
	})
	if avg > 1 {
		t.Fatalf("hash-join probe allocates %.2f allocs/row, want <= 1 (the output row)", avg)
	}
}

// TestInstrumentationDisabledAllocs: the instrumentation seam must be
// invisible when disabled. The default build path (nil wrap hook) produces
// no wrapper objects — the root of a scan plan is the scan iterator
// itself, not an instrIter — and the hot Next() path stays at 0 allocs/row
// exactly as before the bridge landed.
func TestInstrumentationDisabledAllocs(t *testing.T) {
	e := allocDB(t)
	plan, err := e.PlanSQL("SELECT o_orderkey FROM orders WHERE o_totalprice > 100")
	if err != nil {
		t.Fatal(err)
	}
	it, err := e.buildIter(plan)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	if _, wrapped := it.(*instrIter); wrapped {
		t.Fatal("default build path wrapped the root operator in an instrIter")
	}
	if err := it.Open(); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		_, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			if err := it.Open(); err != nil {
				t.Fatal(err)
			}
		}
	})
	if avg > 0 {
		t.Fatalf("uninstrumented Next allocates %.2f allocs/row, want 0", avg)
	}
}

// TestTopKPushAllocs: once the heap is full, pushing rows — whether they
// displace the current worst or are dropped — allocates nothing.
func TestTopKPushAllocs(t *testing.T) {
	h := newTopKHeap(16, 1, []bool{false})
	key := make([]datum.D, 1)
	rows := make([]storage.Row, 64)
	for i := range rows {
		rows[i] = storage.Row{datum.NewInt(int64(i))}
	}
	for i := 0; i < 16; i++ { // fill
		key[0] = datum.NewInt(int64(1000 + i))
		h.push(rows[i%len(rows)], key)
	}
	n := 0
	avg := testing.AllocsPerRun(500, func() {
		// Alternate displacing (small keys) and dropping (large keys).
		if n%2 == 0 {
			key[0] = datum.NewInt(int64(500 - n))
		} else {
			key[0] = datum.NewInt(int64(1 << 40))
		}
		h.push(rows[n%len(rows)], key)
		n++
	})
	if avg > 0 {
		t.Fatalf("top-K push allocates %.2f allocs/row, want 0", avg)
	}
}
