//go:build !race

package engine

// Allocation regression guards for the streaming executor's hot paths.
// These caps are the point of the pre-bound expression layer: filter
// evaluation, the hash-join probe loop, and the top-K heap must not
// allocate per row (the only sanctioned allocation is the emitted joined
// row itself). Kept out of -race builds because the race runtime inflates
// allocation counts; CI runs this package without -race as well.

import (
	"fmt"
	"strings"
	"testing"

	"lantern/internal/datum"
	"lantern/internal/storage"
)

// allocDB builds the shared engine without the *testing.T plumbing of
// testDB (AllocsPerRun needs plain closures).
func allocDB(t *testing.T) *Engine {
	t.Helper()
	return testDB(t, DefaultConfig())
}

// TestFilterEvalAllocs: evaluating a pre-bound scan filter is
// allocation-free per row.
func TestFilterEvalAllocs(t *testing.T) {
	e := allocDB(t)
	plan, err := e.PlanSQL("SELECT c_name FROM customer WHERE c_acctbal > 50 AND c_mktsegment = 'BUILDING'")
	if err != nil {
		t.Fatal(err)
	}
	it, err := e.buildIter(plan)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	if err := it.Open(); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		_, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			if err := it.Open(); err != nil { // rewind: scans reset for free
				t.Fatal(err)
			}
		}
	})
	if avg > 0 {
		t.Fatalf("filter eval allocates %.2f allocs/row, want 0", avg)
	}
}

// TestHashJoinProbeAllocs: the probe loop allocates exactly one object per
// emitted row — the joined output row — and nothing per candidate.
func TestHashJoinProbeAllocs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnableMergeJoin, cfg.EnableNestLoop = false, false
	e := testDB(t, cfg)
	plan, err := e.PlanSQL("SELECT o.o_orderkey, c.c_name FROM customer c, orders o WHERE c.c_custkey = o.o_custkey")
	if err != nil {
		t.Fatal(err)
	}
	it, err := e.buildIter(plan)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	if err := it.Open(); err != nil {
		t.Fatal(err)
	}
	// Every order matches exactly one customer: 60 output rows per pass.
	// 50 pulls stay within one pass, so Open (which rebuilds the hash
	// table) never runs inside the measured region.
	avg := testing.AllocsPerRun(50, func() {
		_, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatal("iterator exhausted mid-measurement")
		}
	})
	if avg > 1 {
		t.Fatalf("hash-join probe allocates %.2f allocs/row, want <= 1 (the output row)", avg)
	}
}

// TestInstrumentationDisabledAllocs: the instrumentation seam must be
// invisible when disabled. The default build path (nil wrap hook) produces
// no wrapper objects — the root of a scan plan is the scan iterator
// itself, not an instrIter — and the hot Next() path stays at 0 allocs/row
// exactly as before the bridge landed.
func TestInstrumentationDisabledAllocs(t *testing.T) {
	e := allocDB(t)
	plan, err := e.PlanSQL("SELECT o_orderkey FROM orders WHERE o_totalprice > 100")
	if err != nil {
		t.Fatal(err)
	}
	it, err := e.buildIter(plan)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	if _, wrapped := it.(*instrIter); wrapped {
		t.Fatal("default build path wrapped the root operator in an instrIter")
	}
	if err := it.Open(); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		_, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			if err := it.Open(); err != nil {
				t.Fatal(err)
			}
		}
	})
	if avg > 0 {
		t.Fatalf("uninstrumented Next allocates %.2f allocs/row, want 0", avg)
	}
}

// --- Batch-pipeline guards ---------------------------------------------------
//
// The vectorized executor's promise is per-BATCH costs, not per-row ones:
// a filtered scan reuses its survivor buffer (zero allocations per batch),
// the hash-join probe pays exactly one output-arena allocation per batch,
// and a top-K query allocates a fixed setup regardless of input size. The
// guards below pin those, so a regression back to per-row allocation shows
// up as a thousandfold violation, not a few percent.

const vecAllocRows = 20_000

// vecAllocDB builds tables large enough that the batch pipeline runs many
// full batchSize batches: g (200 rows) and t (vecAllocRows rows, t.grp
// joining g.gid with fan-out vecAllocRows/200).
func vecAllocDB(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e := New(cfg)
	mustExec := func(sql string) {
		t.Helper()
		if _, err := e.Exec(sql); err != nil {
			t.Fatalf("exec: %v", err)
		}
	}
	mustExec("CREATE TABLE g (gid INT, gname TEXT)")
	mustExec("CREATE TABLE t (id INT, grp INT, v INT)")
	var sb strings.Builder
	for i := 0; i < 200; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, 'g%d')", i, i)
	}
	mustExec("INSERT INTO g VALUES " + sb.String())
	for base := 0; base < vecAllocRows; base += 500 {
		sb.Reset()
		for i := base; i < base+500; i++ {
			if i > base {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, %d, %d)", i, i%200, (i*37)%1000)
		}
		mustExec("INSERT INTO t VALUES " + sb.String())
	}
	return e
}

// TestVecScanFilterBatchAllocs: a filtered batch scan allocates nothing per
// batch once its survivor buffer exists — the compiled predicate selects
// into a reused slice and unfiltered chunks alias the heap.
func TestVecScanFilterBatchAllocs(t *testing.T) {
	e := vecAllocDB(t, DefaultConfig())
	plan, err := e.PlanSQL("SELECT id, v FROM t WHERE v > 10")
	if err != nil {
		t.Fatal(err)
	}
	it, err := e.buildVec(plan)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := it.(*seqScanVec); !ok {
		t.Fatalf("vectorized plan root = %T, want *seqScanVec", it)
	}
	defer it.Close()
	if err := it.Open(); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(100, func() {
		b, err := it.NextBatch()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			if err := it.Open(); err != nil { // rewind: scans reset for free
				t.Fatal(err)
			}
		}
	})
	if avg > 0 {
		t.Fatalf("filtered batch scan allocates %.2f allocs/batch, want 0", avg)
	}
}

// TestVecHashJoinProbeBatchAllocs: the batch probe loop pays one
// output-arena allocation per emitted batch — ~1/1024 of the row
// pipeline's one-row-allocation-per-output-row — and nothing per probe row
// or per bucket candidate.
func TestVecHashJoinProbeBatchAllocs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnableMergeJoin, cfg.EnableNestLoop = false, false
	e := vecAllocDB(t, cfg)
	plan, err := e.PlanSQL("SELECT g.gname, t.id FROM g, t WHERE g.gid = t.grp")
	if err != nil {
		t.Fatal(err)
	}
	it, err := e.buildVec(plan)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := it.(*hashJoinVec); !ok {
		t.Fatalf("vectorized plan root = %T, want *hashJoinVec", it)
	}
	defer it.Close()
	if err := it.Open(); err != nil {
		t.Fatal(err)
	}
	// Every t row matches exactly one g row: vecAllocRows output rows ≈ 19
	// full batches per pass. 15 measured pulls (plus AllocsPerRun's warm-up)
	// stay within one pass, so Open — which rebuilds the hash table — never
	// runs inside the measured region.
	avg := testing.AllocsPerRun(15, func() {
		b, err := it.NextBatch()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			t.Fatal("join exhausted mid-measurement")
		}
	})
	if avg > 2 {
		t.Fatalf("batch hash-join probe allocates %.2f allocs/batch, want <= 2 (the output arena)", avg)
	}
}

// TestVecTopKQueryAllocs: a whole vectorized top-K query — batch scan into
// the bounded heap, then batch emission — allocates a fixed setup cost, not
// a per-input-row one. The bound is expressed per input row so a regression
// to per-row allocation (keys, closure envs, heap growth) overshoots it by
// orders of magnitude.
func TestVecTopKQueryAllocs(t *testing.T) {
	e := vecAllocDB(t, DefaultConfig())
	plan, err := e.PlanSQL("SELECT id FROM t ORDER BY v LIMIT 16")
	if err != nil {
		t.Fatal(err)
	}
	it, err := e.buildVec(plan)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	avg := testing.AllocsPerRun(5, func() {
		if err := it.Open(); err != nil { // Open sorts: the whole push loop runs here
			t.Fatal(err)
		}
		for {
			b, err := it.NextBatch()
			if err != nil {
				t.Fatal(err)
			}
			if b == nil {
				break
			}
		}
	})
	if perRow := avg / vecAllocRows; perRow > 0.01 {
		t.Fatalf("vectorized top-K allocates %.1f allocs/run (%.4f per input row), want a fixed setup cost", avg, perRow)
	}
}

// TestVecLimitShortCircuitAllocs: a LIMIT-k query over a large scan pays
// zero steady-state allocations per execution. The adaptive first batch
// (the scan starts at initialChunkSize rows and grows toward batchSize)
// keeps the short-circuit path from sizing buffers for a full batch it
// will never fill, and those small buffers are reused across Open — a
// regression that re-allocates the chunk on every execution shows up here
// before it shows up as ExecLimitShortCircuit latency.
func TestVecLimitShortCircuitAllocs(t *testing.T) {
	e := vecAllocDB(t, DefaultConfig())
	plan, err := e.PlanSQL("SELECT id FROM t WHERE v > 10 LIMIT 10")
	if err != nil {
		t.Fatal(err)
	}
	it, err := e.buildVec(plan)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	avg := testing.AllocsPerRun(20, func() {
		if err := it.Open(); err != nil {
			t.Fatal(err)
		}
		for {
			b, err := it.NextBatch()
			if err != nil {
				t.Fatal(err)
			}
			if b == nil {
				break
			}
		}
	})
	if avg > 0 {
		t.Fatalf("limit short-circuit allocates %.2f allocs/run, want 0 steady-state", avg)
	}
}

// TestVecScanZonePruneAllocs: skipping a refuted segment costs only the
// zone-map comparison — no allocation. The table spans ~40 sealed
// segments, the predicate refutes every one of them, and a full
// Open-to-exhaustion pass must stay at zero steady-state allocations: a
// regression that allocates per skipped segment overshoots the bound
// forty-fold.
func TestVecScanZonePruneAllocs(t *testing.T) {
	e := New(DefaultConfig())
	if _, err := e.Exec("CREATE TABLE pr (id INT, v INT)"); err != nil {
		t.Fatal(err)
	}
	tbl, err := e.Cat.Table("pr")
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.SetSegmentCapacity(256); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for base := 0; base < 10_000; base += 500 {
		sb.Reset()
		sb.WriteString("INSERT INTO pr VALUES ")
		for i := base; i < base+500; i++ {
			if i > base {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, %d)", i, i%1000)
		}
		if _, err := e.Exec(sb.String()); err != nil {
			t.Fatal(err)
		}
	}
	plan, err := e.PlanSQL("SELECT id FROM pr WHERE v > 1000000")
	if err != nil {
		t.Fatal(err)
	}
	it, err := e.buildVec(plan)
	if err != nil {
		t.Fatal(err)
	}
	scan, ok := it.(*seqScanVec)
	if !ok {
		t.Fatalf("vectorized plan root = %T, want *seqScanVec", it)
	}
	if !scan.prune {
		t.Fatal("zone pruning disabled on default config")
	}
	defer it.Close()
	avg := testing.AllocsPerRun(50, func() {
		if err := it.Open(); err != nil {
			t.Fatal(err)
		}
		for {
			b, err := it.NextBatch()
			if err != nil {
				t.Fatal(err)
			}
			if b != nil {
				t.Fatalf("prune-everything scan emitted %d rows", len(b))
			}
			break
		}
	})
	if avg > 0 {
		t.Fatalf("pruned scan allocates %.2f allocs/run across ~40 skipped segments, want 0", avg)
	}
}

// TestTopKPushAllocs: once the heap is full, pushing rows — whether they
// displace the current worst or are dropped — allocates nothing.
func TestTopKPushAllocs(t *testing.T) {
	h := newTopKHeap(16, 1, []bool{false})
	key := make([]datum.D, 1)
	rows := make([]storage.Row, 64)
	for i := range rows {
		rows[i] = storage.Row{datum.NewInt(int64(i))}
	}
	for i := 0; i < 16; i++ { // fill
		key[0] = datum.NewInt(int64(1000 + i))
		h.push(rows[i%len(rows)], key)
	}
	n := 0
	avg := testing.AllocsPerRun(500, func() {
		// Alternate displacing (small keys) and dropping (large keys).
		if n%2 == 0 {
			key[0] = datum.NewInt(int64(500 - n))
		} else {
			key[0] = datum.NewInt(int64(1 << 40))
		}
		h.push(rows[n%len(rows)], key)
		n++
	})
	if avg > 0 {
		t.Fatalf("top-K push allocates %.2f allocs/row, want 0", avg)
	}
}
