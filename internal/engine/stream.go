package engine

// stream.go is the incremental counterpart of QueryInstrumented: the same
// parse→plan→instrumented-execute→project loop, but handing rows to the
// caller as the iterator pipeline produces them instead of materializing
// the whole result first. The serving layer's /v2/query?stream=ndjson path
// rides this — a client sees the first row while the scan is still
// running, and the narration (which needs the complete actuals) arrives as
// a trailer after the last row.

import (
	"errors"
	"time"

	"lantern/internal/sqlparser"
	"lantern/internal/storage"
)

// ErrAbandonedStream is returned by StreamingQuery.Next once the stream
// has been closed (or has failed) before reaching end of stream. It exists
// so that an abandoned stream can never masquerade as a cleanly drained
// one: before this sentinel, Next after a mid-stream Close returned the
// same (nil, false, nil) as a genuine end of stream, and a consumer could
// read Finish's partial actuals as complete — and cache narration under an
// actuals-aware fingerprint that the full run would never produce.
var ErrAbandonedStream = errors.New("engine: streaming query abandoned before end of stream")

// StreamingQuery is one open, instrumented SELECT execution. Rows are
// pulled with Next; after Next reports exhaustion, Finish returns the plan
// with its collected actuals. Close releases the iterator pipeline and is
// safe to call at any point (including mid-stream abandonment) — but the
// collected statistics are exact only when Complete reports true.
type StreamingQuery struct {
	// Columns is the output header, available before the first row.
	Columns []string

	e        *Engine
	it       rowIter
	pr       *projector
	plan     *Node
	stats    ExecStats
	started  time.Time
	elapsed  time.Duration
	rows     int
	done     bool
	closed   bool
	complete bool
}

// QueryStreamInstrumented parses and plans a SELECT, opens its
// instrumented iterator pipeline, and returns the live stream. The
// engine session must stay checked out until Close.
func (e *Engine) QueryStreamInstrumented(sql string) (*StreamingQuery, error) {
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		return nil, err
	}
	pl, err := e.planSelect(sel)
	if err != nil {
		return nil, err
	}
	pr, err := e.newProjector(sel, pl)
	if err != nil {
		return nil, err
	}
	st := make(ExecStats)
	var it rowIter
	if sh := e.activeParShape(pl); sh != nil {
		// Parallel plan: run the vectorized exchange pipeline (with atomic
		// per-operator instrumentation) and stream rows off it through the
		// vecToRow adapter. Close cancels and drains the workers.
		vi, verr := e.newVBuild(sh, st.get).build(pl)
		if verr != nil {
			return nil, verr
		}
		it = &vecToRow{child: vi}
	} else {
		b := &ibuild{e: e, wrap: func(pn *Node, it rowIter) rowIter {
			os := st[pn]
			if os == nil {
				os = &OpStats{}
				st[pn] = os
			}
			return &instrIter{child: it, st: os}
		}}
		it, err = b.build(pl)
		if err != nil {
			return nil, err
		}
	}
	q := &StreamingQuery{
		e:       e,
		Columns: pr.columns,
		it:      it,
		pr:      pr,
		plan:    pl,
		stats:   st,
		started: time.Now(),
	}
	if err := it.Open(); err != nil {
		it.Close()
		q.closed = true
		return nil, err
	}
	return q, nil
}

// Next returns the next projected output row, with ok=false at end of
// stream. The returned row is freshly allocated and owned by the caller.
// Once the stream has been closed or has failed mid-iteration, Next
// returns ErrAbandonedStream rather than pretending the stream drained.
func (q *StreamingQuery) Next() (storage.Row, bool, error) {
	if q.done || q.closed {
		if q.complete {
			return nil, false, nil
		}
		return nil, false, ErrAbandonedStream
	}
	r, ok, err := q.it.Next()
	if err != nil {
		q.done = true
		q.elapsed = time.Since(q.started)
		return nil, false, err
	}
	if !ok {
		q.done = true
		q.complete = true
		q.elapsed = time.Since(q.started)
		q.e.annotateWorkerStats(q.plan, q.stats)
		return nil, false, nil
	}
	out, err := q.pr.project(r)
	if err != nil {
		q.done = true
		q.elapsed = time.Since(q.started)
		return nil, false, err
	}
	q.rows++
	return out, true, nil
}

// RowCount reports how many rows Next has produced so far.
func (q *StreamingQuery) RowCount() int { return q.rows }

// Elapsed reports the wall time of the execution: live while streaming,
// frozen at the value reached when the stream ended.
func (q *StreamingQuery) Elapsed() time.Duration {
	if q.done {
		return q.elapsed
	}
	return time.Since(q.started)
}

// Complete reports whether Next reached a clean end of stream, i.e. the
// per-operator actuals from Finish cover the whole execution. A stream
// closed or failed mid-iteration is not complete; consumers keying caches
// or narration on the actuals must check this (the serving layer skips
// narration caching for incomplete streams).
func (q *StreamingQuery) Complete() bool { return q.complete }

// Finish returns the physical plan and its per-operator actuals. The
// statistics are exact only when Complete reports true; on an abandoned
// stream they cover the rows actually pulled — which is also what a real
// EXPLAIN ANALYZE under LIMIT would report — and must be marked partial by
// the consumer.
func (q *StreamingQuery) Finish() (*Node, ExecStats) { return q.plan, q.stats }

// Close releases the iterator pipeline. Idempotent.
func (q *StreamingQuery) Close() error {
	if q.closed {
		return nil
	}
	q.closed = true
	if !q.done {
		q.done = true
		q.elapsed = time.Since(q.started)
	}
	err := q.it.Close()
	if !q.complete {
		// Abandoned mid-stream: Close has cancelled and drained any parallel
		// workers, so the partial per-operator actuals are now stable;
		// normalize them the same way a clean end of stream would.
		q.e.annotateWorkerStats(q.plan, q.stats)
	}
	return err
}
