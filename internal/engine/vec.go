package engine

// vec.go is the batch-at-a-time (vectorized) executor. Operators implement
// vecIter and hand rows downstream in batches of up to batchSize, so the
// per-row costs of the streaming executor — an interface call per Next, a
// closure call per filter evaluation, an allocation per joined or projected
// row — are amortized across the batch: scans filter through tight typed
// loops (vexpr.go), joins and projection pack their output rows into flat
// per-batch datum arenas, and top-K keys load by ordinal.
//
// Batch memory contract:
//   - A batch (the []storage.Row slice) is valid only until the consumer's
//     next NextBatch call on the producer; consumers that need it longer
//     copy the row headers out (sort, hash-join build do exactly that).
//   - Row DATA is immortal: output arenas are freshly allocated per batch
//     and never reused, and scan batches alias the table heap, so a
//     retained storage.Row header stays valid forever. This is what lets
//     the hash-join build side, the top-K heap, and the final Result all
//     hold rows without copying.
//   - Batches are never empty: producers either return >= 1 row or nil for
//     end-of-stream.
//
// The row-at-a-time pipeline (iter.go) is retained in full: vecToRow
// adapts any vecIter back to the rowIter contract, which keeps operators
// without a native batch implementation (aggregation, unique, merge join,
// nested loop, result) working unchanged over vectorized children, and
// Config.RowStreamExec forces whole queries onto the row pipeline — the
// differential tests pin vectorized results equal to both the row-stream
// and the materializing reference executors. Instrumented execution
// (bridge.go, EXPLAIN ANALYZE, the streaming query API) uses the row
// pipeline for serial plans so per-operator actual rows/loops stay
// exact; parallel plans stay on the batch pipeline with atomic
// batch-granular counters (parallel.go), since per-row wrapping would
// serialize the workers. The uninstrumented batch path is the fast path
// that Exec and subqueries take.

import (
	"fmt"
	"sync/atomic"

	"lantern/internal/datum"
	"lantern/internal/sqlparser"
	"lantern/internal/storage"
)

// batchSize is the row count operators aim for per batch: large enough to
// amortize per-batch dispatch and allocation to noise, small enough that a
// batch of row headers and its output arena stay cache-resident.
const batchSize = 1024

// vecIter is the batch operator contract. NextBatch returns the next batch
// (never empty) or nil at end of stream; see the file header for the
// memory contract. Open resets the operator for a fresh scan.
type vecIter interface {
	Open() error
	NextBatch() ([]storage.Row, error)
	Close() error
}

// buildVec constructs the vectorized iterator tree for a plan node.
// Operators without a native batch implementation are built through the
// row-op constructors (iter.go) with their children vectorized and adapted
// back to rows, so every plan the planner can produce executes. Plans the
// planner marked parallel (driver DOP >= 2) get an exchangeVec at the
// exchange point (parallel.go).
func (e *Engine) buildVec(n *Node) (vecIter, error) {
	return e.newVBuild(e.activeParShape(n), nil).build(n)
}

// newVBuild assembles a vbuild with its row-op builder wired back through
// the batch adapter. sh activates the parallel exchange; stats, when
// non-nil, wraps every built operator in an instrVecIter sharing the
// returned OpStats (bridge.go's vectorized instrumentation).
func (e *Engine) newVBuild(sh *parShape, stats func(*Node) *OpStats) *vbuild {
	rb := &ibuild{e: e, stats: stats}
	v := &vbuild{e: e, rb: rb, par: sh, stats: stats}
	rb.child = func(c *Node) (rowIter, error) {
		vi, err := v.build(c)
		if err != nil {
			return nil, err
		}
		return &vecToRow{child: vi}, nil
	}
	return v
}

// vbuild constructs vecIter trees. rb is the row-op builder with its child
// hook pointed back at vbuild, so a row-only operator embedded in a batch
// pipeline pulls from vectorized children through the adapter.
type vbuild struct {
	e  *Engine
	rb *ibuild
	// par, when non-nil, is the active parallel shape: building par.exchange
	// produces the exchange operator instead of the serial one.
	par *parShape
	// stats, when non-nil, returns the shared OpStats for a node; every
	// built operator is then wrapped in an instrVecIter.
	stats func(*Node) *OpStats
}

func (v *vbuild) build(n *Node) (vecIter, error) {
	if v.par != nil && n == v.par.exchange {
		x, err := v.newExchangeVec(n)
		if err != nil {
			return nil, err
		}
		return v.instr(n, x), nil
	}
	it, err := v.build0(n)
	if err != nil {
		return nil, err
	}
	return v.instr(n, it), nil
}

func (v *vbuild) build0(n *Node) (vecIter, error) {
	switch n.Op {
	case OpSeqScan:
		return v.newSeqScanVec(n)
	case OpIndexScan:
		return v.newIndexScanVec(n)
	case OpHash, OpMaterialize:
		return v.build(n.Children[0])
	case OpHashJoin:
		return v.newHashJoinVec(n)
	case OpSort:
		return v.newSortVec(n)
	case OpLimit:
		child, err := v.build(n.Children[0])
		if err != nil {
			return nil, err
		}
		return &limitVec{child: child, limit: n.Limit, offset: n.Offset}, nil
	}
	// Row-only operator: build it through iter.go with vectorized children.
	it, err := v.rb.buildOp(n)
	if err != nil {
		return nil, err
	}
	return &rowToVec{child: it}, nil
}

// --- Adapters ---------------------------------------------------------------

// vecToRow adapts a vecIter to the rowIter contract: the thin row-at-a-time
// Next over batches that keeps row-only operators and the differential
// oracle working on top of vectorized children. Handed-out rows stay valid
// across batches (row data is immortal); only the batch slice is replaced.
type vecToRow struct {
	child vecIter
	batch []storage.Row
	pos   int
}

func (it *vecToRow) Open() error {
	it.batch, it.pos = nil, 0
	return it.child.Open()
}

func (it *vecToRow) Next() (storage.Row, bool, error) {
	for it.pos >= len(it.batch) {
		b, err := it.child.NextBatch()
		if err != nil {
			return nil, false, err
		}
		if b == nil {
			return nil, false, nil
		}
		it.batch, it.pos = b, 0
	}
	r := it.batch[it.pos]
	it.pos++
	return r, true, nil
}

func (it *vecToRow) Close() error { return it.child.Close() }

// rowToVec adapts a rowIter to the vecIter contract by accumulating rows
// into a reused batch buffer. Rows produced by row operators are already
// retainable (they alias the heap or are freshly allocated), so only the
// slice header is transient — exactly the batch contract.
type rowToVec struct {
	child rowIter
	buf   []storage.Row
}

func (it *rowToVec) Open() error { return it.child.Open() }

func (it *rowToVec) NextBatch() ([]storage.Row, error) {
	if it.buf == nil {
		it.buf = make([]storage.Row, 0, batchSize)
	}
	buf := it.buf[:0]
	for len(buf) < batchSize {
		r, ok, err := it.child.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		buf = append(buf, r)
	}
	it.buf = buf
	if len(buf) == 0 {
		return nil, nil
	}
	return buf, nil
}

func (it *rowToVec) Close() error { return it.child.Close() }

// --- Batch output writer ----------------------------------------------------

// batchWriter packs freshly built output rows (joins, projection) into a
// flat datum arena: one arena allocation per batch instead of one row
// allocation per row. The arena is never reused — emitted rows are
// three-index subslices of it and may be retained forever by consumers —
// while the rows slice (headers only) is recycled across batches.
type batchWriter struct {
	width int
	hint  int // expected rows in the current batch; 0 or out of range → batchSize
	arena []datum.D
	rows  []storage.Row
}

// reset starts a new batch: the header slice is recycled, the arena is
// dropped and allocated lazily on the first append — a NextBatch call that
// produces no rows (including the final EOS pull) must not pay for a
// batch-wide arena, and a small batch should get a small one.
func (w *batchWriter) reset() {
	w.hint = 0
	w.arena = nil
	if w.rows == nil {
		w.rows = make([]storage.Row, 0, batchSize)
	}
	w.rows = w.rows[:0]
}

// appendConcat emits a+b as one packed output row. Growing the arena
// mid-batch is safe: earlier rows keep pointing at the old backing array,
// which is never written again (each row is capped at its own length).
func (w *batchWriter) appendConcat(a, b storage.Row) {
	if w.arena == nil {
		rows := w.hint
		if rows <= 0 || rows > batchSize {
			rows = batchSize
		}
		w.arena = make([]datum.D, 0, rows*w.width)
	}
	n := len(w.arena)
	w.arena = append(w.arena, a...)
	w.arena = append(w.arena, b...)
	w.rows = append(w.rows, storage.Row(w.arena[n:len(w.arena):len(w.arena)]))
}

func (w *batchWriter) full() bool { return len(w.rows) >= batchSize }

// --- Scans ------------------------------------------------------------------

// seqScanVec scans the table's sealed segments and then its tail, in
// chunks. Filtered scans consult each segment's zone maps first and skip
// refuted segments without touching a row; surviving segments filter
// through the typed column-vector loops (vexpr.go), late-materializing
// only surviving row headers. Unfiltered chunks are returned as direct
// segment/tail subslices (zero copies, zero allocations). Chunks grow
// adaptively from initialChunkSize to batchSize (×4 per chunk): a
// `LIMIT 10` consumer stops after one small chunk instead of paying for a
// full 1024-row batch, while a full scan reaches max-size chunks after two
// steps and keeps the batch loop's throughput.
type seqScanVec struct {
	snap  storage.Snapshot
	pred  vecPred // nil when unfiltered
	prune bool    // consult zone maps (off under Config.DisableZonePruning)
	st    *OpStats
	out   []storage.Row

	curSD    *storage.SegData // loaded payload cur aliases; nil for the tail
	cur      []storage.Row    // current run of rows
	seg      int              // next sealed segment ordinal
	pos      int              // position within cur
	tailDone bool
	done     bool
	chunk    int
}

// initialChunkSize is the first chunk a seqScanVec produces after Open.
const initialChunkSize = 64

func (v *vbuild) newSeqScanVec(n *Node) (*seqScanVec, error) {
	t, err := v.e.Cat.Table(n.Relation)
	if err != nil {
		return nil, err
	}
	it := &seqScanVec{snap: t.Snapshot(), prune: !v.e.Cfg.DisableZonePruning}
	if v.stats != nil {
		it.st = v.stats(n)
	}
	if n.Filter != nil {
		if it.pred, err = compileVecPred(n.Filter, n.Schema, v.e.subquery); err != nil {
			return nil, err
		}
	}
	return it, nil
}

func (it *seqScanVec) Open() error {
	it.releaseSeg()
	it.cur = nil
	it.seg, it.pos = 0, 0
	it.tailDone, it.done = false, false
	it.chunk = initialChunkSize
	return it.advance()
}

// releaseSeg unpins the current segment's buffer pool frame, if any. Rows
// already handed downstream stay valid — the decoded payload is GC-held
// while any consumer references it — releasing only lets the pool evict
// the frame once no scan is positioned on it.
func (it *seqScanVec) releaseSeg() {
	if it.curSD != nil {
		it.curSD.Release()
		it.curSD = nil
	}
}

// advance positions the scan at its next run of rows: the next sealed
// segment surviving zone-map pruning, then the tail, then end-of-stream.
// Pruning consults only the segment's resident zone maps; a surviving
// segment is then faulted in (and pinned) through the buffer pool, so a
// pruned segment costs zero I/O. Segment-level accounting (scanned vs
// pruned) happens here; the counters are atomic because build-side scans
// can run cloned across goroutines against one shared OpStats.
func (it *seqScanVec) advance() error {
	it.releaseSeg()
	segs := it.snap.Segments()
	for it.seg < len(segs) {
		s := segs[it.seg]
		it.seg++
		if it.prune && it.pred != nil && segPruned(it.pred, s) {
			it.noteSeg(true)
			continue
		}
		it.noteSeg(false)
		sd, err := s.Load()
		if err != nil {
			it.done = true
			return err
		}
		it.curSD, it.cur, it.pos = sd, sd.Rows(), 0
		return nil
	}
	if !it.tailDone {
		it.tailDone = true
		it.cur, it.pos = it.snap.Tail(), 0
		return nil
	}
	it.done = true
	return nil
}

func (it *seqScanVec) noteSeg(pruned bool) {
	if it.st == nil {
		return
	}
	if pruned {
		atomic.AddInt64(&it.st.SegsPruned, 1)
	} else {
		atomic.AddInt64(&it.st.SegsScanned, 1)
	}
}

func (it *seqScanVec) NextBatch() ([]storage.Row, error) {
	for !it.done {
		if it.pos >= len(it.cur) {
			if err := it.advance(); err != nil {
				return nil, err
			}
			continue
		}
		end := it.pos + it.chunk
		if it.chunk < batchSize {
			if it.chunk *= 4; it.chunk > batchSize {
				it.chunk = batchSize
			}
		}
		if end > len(it.cur) {
			end = len(it.cur)
		}
		lo := it.pos
		it.pos = end
		if it.pred == nil {
			return it.cur[lo:end], nil
		}
		// Survivor buffer sized to this chunk, not the full batch width:
		// scanning a 25-row table should not zero a 1024-header buffer.
		if cap(it.out) < end-lo {
			it.out = make([]storage.Row, 0, end-lo)
		}
		var (
			out []storage.Row
			err error
		)
		if it.curSD != nil {
			out, err = segSelect(it.pred, it.out[:0], it.curSD, lo, end)
		} else {
			out, err = it.pred.selectInto(it.out[:0], it.cur[lo:end])
		}
		if err != nil {
			return nil, err
		}
		it.out = out
		if len(out) > 0 {
			return out, nil
		}
		// Everything in this chunk was filtered out; pull the next one
		// rather than return an empty batch.
	}
	return nil, nil
}

func (it *seqScanVec) Close() error {
	it.releaseSeg()
	return nil
}

// indexScanVec resolves the index at Open exactly like indexScanIter, then
// gathers candidate rows per batch and rechecks the full index condition
// plus residual filter through a compiled predicate. Index and row data
// come from the same snapshot, so the gather is consistent under
// concurrent DML.
type indexScanVec struct {
	eng  *Engine
	n    *Node
	snap storage.Snapshot
	pred vecPred // index condition ∧ residual filter, nil when neither
	ids  []int
	pos  int
	in   []storage.Row
	out  []storage.Row
}

func (v *vbuild) newIndexScanVec(n *Node) (*indexScanVec, error) {
	if _, err := v.e.Cat.Table(n.Relation); err != nil {
		return nil, err
	}
	// Same recheck expression as indexScanIter: full index condition plus
	// residual filter.
	combined := sqlparser.JoinConjuncts(append(sqlparser.SplitConjuncts(n.IndexCond), sqlparser.SplitConjuncts(n.Filter)...))
	it := &indexScanVec{eng: v.e, n: n}
	if combined != nil {
		var err error
		if it.pred, err = compileVecPred(combined, n.Schema, v.e.subquery); err != nil {
			return nil, err
		}
	}
	return it, nil
}

func (it *indexScanVec) Open() error {
	t, err := it.eng.Cat.Table(it.n.Relation)
	if err != nil {
		return err
	}
	it.snap = t.Snapshot()
	col, lo, hi, incLo, incHi, eq, hasEq, err := indexBounds(it.n.IndexCond)
	if err != nil {
		return err
	}
	ix := it.snap.Index(col)
	if ix == nil {
		return fmt.Errorf("engine: planned index on %s.%s does not exist", it.n.Relation, col)
	}
	if hasEq {
		it.ids = ix.Lookup(eq)
	} else {
		it.ids = ix.Range(lo, hi, incLo, incHi)
	}
	it.pos = 0
	return nil
}

func (it *indexScanVec) NextBatch() ([]storage.Row, error) {
	for it.pos < len(it.ids) {
		end := it.pos + batchSize
		if end > len(it.ids) {
			end = len(it.ids)
		}
		// Size the gather buffer to the candidates actually present rather
		// than a full batch: a point lookup returning one id should not pay
		// for zeroing two 1024-header buffers per query.
		if need := end - it.pos; cap(it.in) < need {
			it.in = make([]storage.Row, 0, need)
		}
		in := it.in[:0]
		for _, id := range it.ids[it.pos:end] {
			r, err := it.snap.FetchRow(id)
			if err != nil {
				return nil, err
			}
			in = append(in, r)
		}
		it.in = in
		it.pos = end
		if it.pred == nil {
			return in, nil
		}
		if cap(it.out) < len(in) {
			it.out = make([]storage.Row, 0, len(in))
		}
		out, err := it.pred.selectInto(it.out[:0], in)
		if err != nil {
			return nil, err
		}
		it.out = out
		if len(out) > 0 {
			return out, nil
		}
	}
	return nil, nil
}

func (it *indexScanVec) Close() error { return nil }

// --- Limit ------------------------------------------------------------------

// limitVec implements LIMIT/OFFSET on batches by slicing: whole batches
// inside the offset are skipped without touching their rows, and the final
// batch is truncated to the remaining limit. Once the limit is reached the
// child is never pulled again — the same short-circuit as limitIter.
// limit < 0 means unbounded (OFFSET-only), matching the row pipeline.
type limitVec struct {
	child            vecIter
	limit, offset    int64
	skipped, emitted int64
}

func (it *limitVec) Open() error {
	it.skipped, it.emitted = 0, 0
	return it.child.Open()
}

func (it *limitVec) NextBatch() ([]storage.Row, error) {
	if it.limit >= 0 && it.emitted >= it.limit {
		return nil, nil
	}
	for {
		b, err := it.child.NextBatch()
		if err != nil || b == nil {
			return nil, err
		}
		if it.skipped < it.offset {
			skip := it.offset - it.skipped
			if skip >= int64(len(b)) {
				it.skipped += int64(len(b))
				continue
			}
			it.skipped = it.offset
			b = b[skip:]
		}
		if it.limit >= 0 {
			if rem := it.limit - it.emitted; int64(len(b)) > rem {
				b = b[:rem]
			}
		}
		it.emitted += int64(len(b))
		return b, nil
	}
}

func (it *limitVec) Close() error { return it.child.Close() }

// --- Query entry ------------------------------------------------------------

// runSelectVec executes a planned SELECT through the batch pipeline and
// projects each batch through the arena-amortized projector.
func (e *Engine) runSelectVec(sel *sqlparser.SelectStmt, plan *Node) (*Result, error) {
	pr, err := e.newProjector(sel, plan)
	if err != nil {
		return nil, err
	}
	it, err := e.buildVec(plan)
	if err != nil {
		return nil, err
	}
	defer it.Close()
	if err := it.Open(); err != nil {
		return nil, err
	}
	res := &Result{Columns: pr.columns}
	for {
		b, err := it.NextBatch()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return res, nil
		}
		rows, err := pr.projectBatch(b)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, rows...)
	}
}
