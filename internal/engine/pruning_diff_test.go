package engine

// Differential tests for zone-map pruning edge cases. The table is built
// with a tiny segment capacity so a handful of rows spans several sealed
// segments plus an unsealed tail, and every query runs through all four
// executors (vectorized, row-stream, reference, morsel-parallel) under
// every planner configuration — the reference executor never consults
// zone maps, so any unsound prune shows up as a row-set mismatch. The
// whole corpus then repeats with DisableZonePruning set, pinning that the
// ablation knob changes performance only, never results.

import (
	"fmt"
	"testing"
)

// pruneDB builds table seg over cfg with segment capacity 4:
//
//	segment 0: k = 10..13, f = 1.5..4.5, s = 'aa'..'ad'   (zone 10..13)
//	segment 1: k/f/s all NULL                              (all-NULL zones)
//	segment 2: k = 20..23, f = 20.5..23.5, s = 'ba'..'bd'  (zone 20..23)
//	tail:      one row k = 30                              (one-row final tail)
func pruneDB(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e := testDB(t, cfg)
	mustExec(t, e, "CREATE TABLE seg (k INTEGER, f FLOAT, s TEXT)")
	tbl, err := e.Cat.Table("seg")
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.SetSegmentCapacity(4); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		mustExec(t, e, fmt.Sprintf("INSERT INTO seg VALUES (%d, %.1f, 'a%c')", 10+i, 1.5+float64(i), 'a'+i))
	}
	for i := 0; i < 4; i++ {
		mustExec(t, e, "INSERT INTO seg VALUES (NULL, NULL, NULL)")
	}
	for i := 0; i < 4; i++ {
		mustExec(t, e, fmt.Sprintf("INSERT INTO seg VALUES (%d, %.1f, 'b%c')", 20+i, 20.5+float64(i), 'a'+i))
	}
	mustExec(t, e, "INSERT INTO seg VALUES (30, 30.5, 'cz')")
	return e
}

// pruneCorpus hits every pruning decision boundary: literals exactly at a
// segment's zone min/max, literals in the gap between segments, predicates
// that prune every segment, predicates the all-NULL segment must and must
// not survive, NULL-literal comparisons (always prune, match nothing), and
// predicates only the one-row tail satisfies.
var pruneCorpus = []string{
	// Equality at and around zone boundaries.
	"SELECT k FROM seg WHERE k = 10",
	"SELECT k FROM seg WHERE k = 13",
	"SELECT k FROM seg WHERE k = 14",
	"SELECT k FROM seg WHERE k = 9",
	"SELECT k FROM seg WHERE k = 30",
	// Ranges at zone boundaries: < min, <= min, > max, >= max.
	"SELECT k FROM seg WHERE k < 10",
	"SELECT k FROM seg WHERE k <= 10",
	"SELECT k FROM seg WHERE k > 13",
	"SELECT k FROM seg WHERE k >= 13",
	"SELECT k FROM seg WHERE k > 23",
	"SELECT k FROM seg WHERE k >= 30",
	// Prune-everything predicates (no row anywhere satisfies them).
	"SELECT k FROM seg WHERE k < 5",
	"SELECT k FROM seg WHERE k > 99",
	"SELECT k FROM seg WHERE k = 15",
	// Inequality: prunable only when a segment is constant.
	"SELECT k FROM seg WHERE k <> 13",
	"SELECT k FROM seg WHERE k <> 30",
	// Conjunctions spanning the inter-segment gap.
	"SELECT k FROM seg WHERE k BETWEEN 13 AND 20",
	"SELECT k FROM seg WHERE k BETWEEN 14 AND 19",
	"SELECT k FROM seg WHERE k > 11 AND k < 22",
	// NULL semantics: the all-NULL segment survives IS NULL only, and
	// comparisons against a NULL literal match nothing anywhere.
	"SELECT s FROM seg WHERE k IS NULL",
	"SELECT k FROM seg WHERE k IS NOT NULL",
	"SELECT k FROM seg WHERE k = NULL",
	"SELECT k FROM seg WHERE k > NULL",
	// Float column and int-literal-vs-float-column widening.
	"SELECT f FROM seg WHERE f < 1.5",
	"SELECT f FROM seg WHERE f <= 1.5",
	"SELECT f FROM seg WHERE f > 23.5",
	"SELECT f FROM seg WHERE f = 20.5",
	"SELECT f FROM seg WHERE f > 4",
	"SELECT k FROM seg WHERE k < 10.5",
	"SELECT k FROM seg WHERE k = 10.0",
	// String zone maps.
	"SELECT s FROM seg WHERE s = 'aa'",
	"SELECT s FROM seg WHERE s < 'ad'",
	"SELECT s FROM seg WHERE s >= 'bd'",
	"SELECT s FROM seg WHERE s > 'cz'",
	// Aggregates over pruned scans (COUNT must see exactly the survivors).
	"SELECT COUNT(*) FROM seg WHERE k > 13",
	"SELECT COUNT(*), SUM(k) FROM seg WHERE k < 21",
	"SELECT COUNT(*) FROM seg WHERE k IS NULL",
}

func TestDifferentialZonePruning(t *testing.T) {
	for name, cfg := range diffConfigs() {
		t.Run(name, func(t *testing.T) {
			e := pruneDB(t, cfg)
			for _, q := range pruneCorpus {
				mustExec(t, e, q)
				assertSameResults(t, e, q)
			}
		})
	}
}

// TestDifferentialZonePruningDisabled repeats the corpus with the pruning
// ablation knob set: disabling zone checks must not change any result.
func TestDifferentialZonePruningDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisableZonePruning = true
	e := pruneDB(t, cfg)
	for _, q := range pruneCorpus {
		mustExec(t, e, q)
		assertSameResults(t, e, q)
	}
}

// TestZonePruningStats pins the instrumentation: a scan over the three
// sealed segments with a predicate only segment 2 can satisfy must report
// two pruned segments, one scanned, on both the serial-instrumented (row)
// and forced-parallel (vectorized) paths.
func TestZonePruningStats(t *testing.T) {
	for _, par := range []bool{false, true} {
		e := pruneDB(t, DefaultConfig())
		if par {
			e.Cfg.MaxQueryParallelism = 4
			e.Cfg.ParallelRowsPerWorker = 1
		}
		qr, err := e.QueryInstrumented("SELECT k FROM seg WHERE k >= 20 AND k <= 23")
		if err != nil {
			t.Fatal(err)
		}
		var scanned, pruned int64
		for n, st := range qr.Stats {
			if n.Op == OpSeqScan {
				scanned += st.SegsScanned
				pruned += st.SegsPruned
			}
		}
		if scanned != 1 || pruned != 2 {
			t.Errorf("parallel=%v: got %d scanned / %d pruned segments, want 1 / 2", par, scanned, pruned)
		}
	}
}

// TestZonePruningDisabledStats: with the ablation knob set, no segment is
// ever reported pruned.
func TestZonePruningDisabledStats(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisableZonePruning = true
	e := pruneDB(t, cfg)
	qr, err := e.QueryInstrumented("SELECT k FROM seg WHERE k >= 20 AND k <= 23")
	if err != nil {
		t.Fatal(err)
	}
	for n, st := range qr.Stats {
		if n.Op == OpSeqScan && st.SegsPruned != 0 {
			t.Errorf("pruning disabled but scan reports %d pruned segments", st.SegsPruned)
		}
	}
}
