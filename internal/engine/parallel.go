package engine

// parallel.go is the morsel-driven intra-query parallel executor. A plan
// the planner marked parallel (Node.DOP >= 2 on the driver scan) executes
// its driver pipeline on DOP workers: the driver table's heap is split
// into fixed-size morsels handed out by an atomic dispenser, every worker
// runs its own clone of the vecIter pipeline below the exchange point, and
// a single exchange operator merges worker output back into one serial
// batch stream:
//
//   - gather: worker output is emitted in morsel order, which reproduces
//     the serial pipeline's output sequence exactly (each worker pipeline
//     is order-preserving within a morsel and morsels partition the heap
//     sequentially), so LIMIT/OFFSET/Unique above the exchange behave
//     identically to serial execution.
//   - sort merge: each worker sorts (or top-K's) its share tagged with the
//     serial arrival sequence; the exchange merges the runs by (keys, seq),
//     which is precisely the stable full sort of the serial pipeline.
//   - aggregation merge: each worker pre-aggregates its share; the
//     exchange merges partial states and emits groups ordered by first
//     arrival, matching the serial aggregate's insertion order. Only
//     provably order-insensitive aggregates are merged this way (COUNT,
//     MIN, MAX, and SUM/AVG over integer columns); float sums would
//     reassociate, so those plans fall back to a serial aggregate over an
//     ordered gather of the input.
//
// Hash-join build sides on the driver spine are built once, before the
// workers start, and shared read-only by every worker's probe clone. When
// the build side is itself a plain scan it is built in parallel: morsel
// partitions are hashed by separate goroutines and merged in morsel order,
// so bucket insertion order — and therefore duplicate-match emission
// order — is identical to the serial build.
//
// Because every merge reproduces the serial operator's exact output order,
// a parallel run is row-for-row equal to the serial vectorized run; the
// differential suite pins this across the corpus, seeded-random, and
// TPC-H workloads under -race.

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lantern/internal/datum"
	"lantern/internal/sqlparser"
	"lantern/internal/storage"
)

const (
	// morselSize is the number of driver-table heap rows per morsel: small
	// enough that workers load-balance under skewed filters, large enough
	// that the per-morsel pipeline restart is noise.
	morselSize = 4096
	// defaultParallelRowsPerWorker is the planner's DOP policy knob: one
	// worker per this many estimated driver rows. Small inputs therefore
	// stay serial and keep their short-circuit latency.
	defaultParallelRowsPerWorker = 65536
	// seqStride separates the per-morsel output sequence spaces: row i of
	// morsel m carries serial sequence m*seqStride + i, which is the row's
	// position in the serial pipeline's output. 2^40 rows of join fan-out
	// per 4096-row morsel is unreachable.
	seqStride = int64(1) << 40
)

// maxDOP resolves Config.MaxQueryParallelism: 0 defaults to GOMAXPROCS,
// values below 1 disable parallelism.
func (c Config) maxDOP() int {
	switch {
	case c.MaxQueryParallelism == 0:
		return runtime.GOMAXPROCS(0)
	case c.MaxQueryParallelism < 1:
		return 1
	default:
		return c.MaxQueryParallelism
	}
}

func (c Config) parRowsPerWorker() float64 {
	if c.ParallelRowsPerWorker <= 0 {
		return defaultParallelRowsPerWorker
	}
	return float64(c.ParallelRowsPerWorker)
}

// morselRows is the per-morsel driver row count: morselSize, lowered to
// the DOP policy's rows-per-worker granularity when that is configured
// smaller. A config that asks for one worker per N rows should split work
// at least that finely — which is also what lets tests force genuinely
// multi-morsel execution over tables far smaller than morselSize.
func (c Config) morselRows() int {
	m := morselSize
	if p := c.parRowsPerWorker(); p < float64(m) {
		m = int(p)
	}
	if m < 1 {
		m = 1
	}
	return m
}

// dopForRows is the DOP policy: one worker per parRowsPerWorker rows,
// clamped to [1, maxDOP]. It is applied to the planner's estimate at plan
// time and re-applied to the actual row count by instrumentation, which is
// how a cardinality mis-estimate surfaces as a "too few workers" callout
// in the narration.
func (e *Engine) dopForRows(rows float64) int {
	max := e.Cfg.maxDOP()
	if max < 2 {
		return 1
	}
	d := int(math.Ceil(rows / e.Cfg.parRowsPerWorker()))
	if d < 1 {
		d = 1
	}
	if d > max {
		d = max
	}
	return d
}

// parKind is how worker output merges back into one stream.
type parKind int

const (
	parGather parKind = iota // ordered concatenation (serial output order)
	parSort                  // merge per-worker sorted runs / top-K heaps
	parAgg                   // merge per-worker partial aggregate states
)

// parShape describes where the exchange sits in a plan: workers execute
// the subtree rooted at (or, for sort/agg merges, below) exchange, with
// driver — the unique base-table SeqScan on the Children[0] spine — split
// into morsels. Everything above exchange runs serially on the consumer.
type parShape struct {
	exchange *Node
	driver   *Node
	kind     parKind
}

// findParallelShape derives the (deterministic) parallel shape of a plan,
// or nil when the plan has no morsel-drivable scan. It descends from the
// root through operators that must stay serial above the exchange — Limit
// keeps its short-circuit by pulling the exchange lazily, Unique and
// GroupAggregate consume the exchange's serial-order output — and places
// the exchange at the first operator with a native merge strategy.
func (e *Engine) findParallelShape(root *Node) *parShape {
	n := root
descend:
	for {
		switch n.Op {
		case OpLimit, OpUnique, OpGroupAggregate:
			n = n.Children[0]
		default:
			break descend
		}
	}
	sh := &parShape{exchange: n, kind: parGather}
	switch n.Op {
	case OpSort:
		sh.kind = parSort
	case OpAggregate, OpHashAggregate:
		if e.aggsMergeable(n) {
			sh.kind = parAgg
		} else {
			// Merging partial states would reassociate float addition; keep
			// the aggregate serial over an ordered gather of its input.
			sh.exchange = n.Children[0]
		}
	}
	sub := sh.exchange
	if sh.kind != parGather {
		sub = sh.exchange.Children[0]
	}
	if sh.driver = driverScan(sub); sh.driver == nil {
		return nil
	}
	return sh
}

// driverScan chases the probe-side spine to the base SeqScan the dispenser
// will split, or nil when the spine contains an operator the worker-tree
// builder cannot clone (index scans, merge joins, nested loops).
func driverScan(n *Node) *Node {
	for {
		switch n.Op {
		case OpSeqScan:
			return n
		case OpHashJoin, OpHash, OpMaterialize:
			n = n.Children[0]
		default:
			return nil
		}
	}
}

// aggsMergeable reports whether every aggregate of n can be computed as
// mergeable partial states without changing the result: COUNT/MIN/MAX are
// order- and grouping-insensitive for any type, SUM/AVG only when the
// argument is an integer column (float addition is not associative, and a
// merged partial sum must be bit-identical to the serial left fold).
func (e *Engine) aggsMergeable(n *Node) bool {
	for _, a := range n.Aggs {
		switch a.Call.Name {
		case "COUNT", "MIN", "MAX":
		case "SUM", "AVG":
			ref, ok := a.Call.Args[0].(*sqlparser.ColumnRef)
			if !ok {
				return false
			}
			if e.columnKind(n.Children[0], ref) != datum.KInt {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// columnKind resolves a column reference to its declared storage type by
// finding the scan whose schema binds it (scan schemas list columns in
// table order, so the ordinal maps straight to the catalog column).
func (e *Engine) columnKind(n *Node, ref *sqlparser.ColumnRef) datum.Kind {
	kind := datum.KNull
	n.Walk(func(x *Node) {
		if kind != datum.KNull || (x.Op != OpSeqScan && x.Op != OpIndexScan) {
			return
		}
		for i, c := range x.Schema {
			if c.Name != ref.Name || (ref.Table != "" && ref.Table != c.Qual) {
				continue
			}
			if t, err := e.Cat.Table(x.Relation); err == nil && i < len(t.Columns) {
				kind = t.Columns[i].Type
			}
			return
		}
	})
	return kind
}

// annotateParallel runs at the end of planning: when the engine allows
// parallelism and the plan has a drivable shape, the driver scan is marked
// with the chosen DOP. DOP 1 records "considered, chose serial" (so
// instrumentation can report the DOP a correct estimate would have
// earned); DOP >= 2 makes the executors build the exchange.
func (e *Engine) annotateParallel(root *Node) {
	if e.Cfg.maxDOP() < 2 {
		return
	}
	if sh := e.findParallelShape(root); sh != nil {
		sh.driver.DOP = e.dopForRows(sh.driver.EstRows)
	}
}

// activeParShape re-derives the shape for execution; non-nil only when the
// planner chose DOP >= 2.
func (e *Engine) activeParShape(root *Node) *parShape {
	sh := e.findParallelShape(root)
	if sh == nil || sh.driver.DOP < 2 {
		return nil
	}
	return sh
}

// --- Morsel dispenser -------------------------------------------------------

// morsel is one unit of driver-scan work: a row range inside a sealed
// segment (seg non-nil) or inside the unsealed tail (seg nil). Segments
// are usually one morsel each — segment capacity and morsel size share the
// same default — so zone-map pruning composes with parallel dispatch for
// free: a worker that grabs a refuted segment drops it without touching a
// row. When the configured morsel size is smaller than a segment, the
// segment splits into sub-ranges; only the lo == 0 morsel carries the
// segment's accounting so each segment counts once.
type morsel struct {
	seg    *storage.Segment // nil for a tail chunk
	rows   []storage.Row    // tail rows; nil for a segment morsel (loaded lazily)
	lo, hi int
}

// buildMorsels slices a table snapshot into morsels in table order, so
// index-ordered merges reproduce the serial scan order exactly. Segment
// morsels carry only the segment handle and a row range — never the rows
// themselves — so splitting a disk-backed table into morsels touches no
// payload: a segment is faulted in by the worker that grabs it, and only
// after its zone maps survive pruning.
func buildMorsels(snap storage.Snapshot, size int) []morsel {
	var out []morsel
	add := func(seg *storage.Segment, rows []storage.Row, n int) {
		for lo := 0; lo < n; lo += size {
			hi := lo + size
			if hi > n {
				hi = n
			}
			out = append(out, morsel{seg: seg, rows: rows, lo: lo, hi: hi})
		}
	}
	for _, seg := range snap.Segments() {
		add(seg, nil, seg.NumRows())
	}
	tail := snap.Tail()
	add(nil, tail, len(tail))
	return out
}

// morselDispenser hands out morsels. One atomic add per grab is the whole
// scheduling protocol; workers that finish a cheap morsel (or drop a
// pruned one) simply grab the next, which is what load-balances skewed
// filters.
type morselDispenser struct {
	morsels []morsel
	next    atomic.Int64
}

func newMorselDispenser(morsels []morsel) *morselDispenser {
	return &morselDispenser{morsels: morsels}
}

func (d *morselDispenser) count() int { return len(d.morsels) }

func (d *morselDispenser) grab() (m int, mo morsel, ok bool) {
	i := int(d.next.Add(1)) - 1
	if i >= len(d.morsels) {
		return 0, morsel{}, false
	}
	return i, d.morsels[i], true
}

// --- Worker-side scan -------------------------------------------------------

// morselScanVec is seqScanVec restricted to the one morsel the worker was
// granted; setMorsel repositions it (and makes the zone-map pruning
// decision) between morsels, Open is a no-op so per-morsel pipeline
// restarts do not reset the range.
type morselScanVec struct {
	pred  vecPred
	prune bool
	st    *OpStats // shared across workers; updated atomically
	out   []storage.Row

	sd       *storage.SegData // pinned payload of the current segment morsel
	rows     []storage.Row
	pos, end int
	skip     bool
	err      error // deferred Load failure, surfaced by NextBatch
}

// setMorsel points the scan at one morsel and consults the zone maps: a
// refuted segment produces no batches at all — and is never faulted in,
// so pruning a spilled segment costs zero I/O. A surviving segment morsel
// faults its payload here and stays pinned until the next setMorsel (or
// Close). Segment accounting is attributed to the lo == 0 morsel so split
// segments count once.
func (it *morselScanVec) setMorsel(m morsel) {
	it.releaseSeg()
	it.err = nil
	it.rows, it.pos, it.end = m.rows, m.lo, m.hi
	it.skip = m.seg != nil && it.prune && it.pred != nil && segPruned(it.pred, m.seg)
	if it.st != nil && m.seg != nil && m.lo == 0 {
		if it.skip {
			atomic.AddInt64(&it.st.SegsPruned, 1)
		} else {
			atomic.AddInt64(&it.st.SegsScanned, 1)
		}
	}
	if m.seg == nil || it.skip {
		return
	}
	sd, err := m.seg.Load()
	if err != nil {
		it.err = err
		return
	}
	it.sd, it.rows = sd, sd.Rows()
}

func (it *morselScanVec) releaseSeg() {
	if it.sd != nil {
		it.sd.Release()
		it.sd = nil
	}
}

func (it *morselScanVec) Open() error { return nil }

func (it *morselScanVec) NextBatch() ([]storage.Row, error) {
	if it.err != nil {
		return nil, it.err
	}
	if it.skip {
		return nil, nil
	}
	for it.pos < it.end {
		end := it.pos + batchSize
		if end > it.end {
			end = it.end
		}
		lo := it.pos
		it.pos = end
		if it.pred == nil {
			return it.rows[lo:end], nil
		}
		if cap(it.out) < end-lo {
			it.out = make([]storage.Row, 0, end-lo)
		}
		var (
			out []storage.Row
			err error
		)
		if it.sd != nil {
			out, err = segSelect(it.pred, it.out[:0], it.sd, lo, end)
		} else {
			out, err = it.pred.selectInto(it.out[:0], it.rows[lo:end])
		}
		if err != nil {
			return nil, err
		}
		it.out = out
		if len(out) > 0 {
			return out, nil
		}
	}
	return nil, nil
}

func (it *morselScanVec) Close() error {
	it.releaseSeg()
	return nil
}

// --- Vectorized instrumentation wrapper -------------------------------------

// instrVecIter counts rows and inclusive wall time through one vectorized
// operator. The counters are atomic because in a parallel region one
// OpStats instance is shared by every worker's clone of the operator, so
// totals sum across workers. Loops are deliberately not counted here —
// per-morsel re-Opens are a scheduling detail, not EXPLAIN loops; the
// instrumented runner sets Loops to 1 afterwards.
type instrVecIter struct {
	child vecIter
	rows  *int64
	nanos *int64
}

func (it *instrVecIter) Open() error {
	start := time.Now()
	err := it.child.Open()
	atomic.AddInt64(it.nanos, int64(time.Since(start)))
	return err
}

func (it *instrVecIter) NextBatch() ([]storage.Row, error) {
	start := time.Now()
	b, err := it.child.NextBatch()
	atomic.AddInt64(it.nanos, int64(time.Since(start)))
	if len(b) > 0 {
		atomic.AddInt64(it.rows, int64(len(b)))
	}
	return b, err
}

func (it *instrVecIter) Close() error { return it.child.Close() }

func (v *vbuild) instr(n *Node, it vecIter) vecIter {
	if v.stats == nil {
		return it
	}
	os := v.stats(n)
	return &instrVecIter{child: it, rows: &os.Rows, nanos: (*int64)(&os.Time)}
}

// --- Exchange ---------------------------------------------------------------

// hashShared is one prebuilt hash-join build side, shared read-only by
// every worker's probe clone.
type hashShared struct {
	node     *Node // the OpHashJoin node this build belongs to
	entries  []storage.Row
	keyArena []datum.D
	table    map[uint64][]int32
}

// parWorker is one worker's private pipeline clone plus its per-run
// accounting. The pipeline (and its bound expressions, compiled predicates
// and scratch buffers) is never shared across workers — only the morsel
// dispenser, result channel, and prebuilt hash tables are, and those are
// either atomic or read-only while workers run.
type parWorker struct {
	root vecIter
	scan *morselScanVec

	// Sort merge: per-worker key evaluation state.
	sortKeyOrds []int
	sortKeys    []boundExpr

	// Aggregation merge: per-worker accumulator construction state.
	aggGroupKeys []boundExpr
	aggArgs      []boundExpr

	rows  int64 // rows this worker's subtree emitted
	nanos int64 // busy wall time
}

// morselOut is one drained morsel's output (gather), or a worker's whole
// run (sort/agg merges, m < 0). Row headers are always freshly appended by
// the worker, never a reused pipeline buffer.
type morselOut struct {
	m    int
	rows []storage.Row
	run  *workerRun
	err  error
}

// workerRun is a sort or aggregation worker's accumulated output.
type workerRun struct {
	// Sort: rows sorted by (keys, seq); keys is row-major nKeys per row.
	rows []storage.Row
	keys []datum.D
	seqs []int64
	// Agg: partial groups in worker-local first-arrival order.
	groups []*parGroup
}

// exchangeVec is the one merge point of a parallel plan. Open prepares
// shared hash builds and spawns the workers; NextBatch merges their output
// back into the serial batch stream per the shape's kind; Close cancels
// and waits for every worker before returning, so no goroutine outlives
// the iterator.
type exchangeVec struct {
	e  *Engine
	n  *Node
	sh *parShape
	v  *vbuild // stats hook shared with the serial region

	dop     int
	workers []*parWorker
	shared  []*hashShared // driver-spine hash builds, filled at Open
	shells  []*hashJoinVec

	sortDesc []bool
	sortN    int
	topK     int64

	aggs     []aggSpec
	plainAgg bool
	having   boundExpr

	// Run state.
	disp    *morselDispenser
	cancel  chan struct{}
	results chan morselOut
	wg      sync.WaitGroup
	running bool
	err     error

	// Gather merge state.
	pending map[int][]storage.Row
	nextM   int
	cur     []storage.Row
	curPos  int

	// Sort/agg merges materialize like their serial counterparts.
	out    []storage.Row
	outPos int
}

func (v *vbuild) newExchangeVec(n *Node) (*exchangeVec, error) {
	sh := v.par
	x := &exchangeVec{e: v.e, n: n, sh: sh, v: v, dop: sh.driver.DOP}
	switch sh.kind {
	case parSort:
		x.sortN = len(n.SortKeys)
		x.topK = n.SortLimit
		x.sortDesc = make([]bool, x.sortN)
		for i, k := range n.SortKeys {
			x.sortDesc[i] = k.Desc
		}
	case parAgg:
		x.aggs = n.Aggs
		x.plainAgg = len(n.GroupKeys) == 0
		if n.HavingFilter != nil {
			var err error
			if x.having, err = bindExpr(n.HavingFilter, n.Schema, v.e.subquery); err != nil {
				return nil, err
			}
		}
	}
	workRoot := workerRootNode(sh, n)
	for i := 0; i < x.dop; i++ {
		w := &parWorker{}
		root, err := x.buildWorkerTree(v, workRoot, w)
		if err != nil {
			return nil, err
		}
		w.root = root
		if err := x.bindWorkerMerge(v, n, w); err != nil {
			return nil, err
		}
		x.workers = append(x.workers, w)
	}
	return x, nil
}

// workerRootNode is the subtree workers execute: the exchange node itself
// for gather, its input for sort/agg merges (the exchange replaces the
// serial operator).
func workerRootNode(sh *parShape, n *Node) *Node {
	if sh.kind == parGather {
		return n
	}
	return n.Children[0]
}

// buildWorkerTree clones the driver-spine pipeline for one worker: a
// range-settable morsel scan at the driver, probe shells over shared
// builds at hash joins. Expressions re-bind per worker so closure-internal
// state (cached subquery results, scratch buffers) is never shared.
func (x *exchangeVec) buildWorkerTree(v *vbuild, n *Node, w *parWorker) (vecIter, error) {
	var it vecIter
	switch {
	case n == x.sh.driver:
		ms := &morselScanVec{prune: !v.e.Cfg.DisableZonePruning}
		if n.Filter != nil {
			var err error
			if ms.pred, err = compileVecPred(n.Filter, n.Schema, v.e.subquery); err != nil {
				return nil, err
			}
		}
		if v.stats != nil {
			ms.st = v.stats(n)
		}
		w.scan = ms
		it = ms
	case n.Op == OpHash || n.Op == OpMaterialize:
		return x.buildWorkerTree(v, n.Children[0], w)
	case n.Op == OpHashJoin:
		probe, err := x.buildWorkerTree(v, n.Children[0], w)
		if err != nil {
			return nil, err
		}
		shell, err := v.hashJoinShell(n)
		if err != nil {
			return nil, err
		}
		shell.probe = probe
		shell.shared = x.sharedFor(n)
		x.shells = append(x.shells, shell)
		it = shell
	default:
		return nil, fmt.Errorf("engine: operator %s on parallel driver spine", n.Op.Name())
	}
	// The worker-tree root is only instrumented when it is not the exchange
	// node itself: the top-level wrapper around exchangeVec already counts
	// the merged output for that node, and worker-side counts would double.
	if n != x.n {
		it = v.instr(n, it)
	}
	return it, nil
}

// sharedFor returns (allocating on first use) the shared build slot for a
// spine join node. Slots are filled at Open, before workers start.
func (x *exchangeVec) sharedFor(n *Node) *hashShared {
	for _, s := range x.shared {
		if s.node == n {
			return s
		}
	}
	s := &hashShared{node: n}
	x.shared = append(x.shared, s)
	return s
}

// bindWorkerMerge prepares the per-worker expression state the merge kind
// needs (sort keys, aggregate group keys and arguments).
func (x *exchangeVec) bindWorkerMerge(v *vbuild, n *Node, w *parWorker) error {
	var err error
	switch x.sh.kind {
	case parSort:
		childSchema := n.Children[0].Schema
		exprs := make([]sqlparser.Expr, len(n.SortKeys))
		for i, k := range n.SortKeys {
			exprs[i] = k.Expr
		}
		if w.sortKeyOrds = keyOrdinals(exprs, childSchema); w.sortKeyOrds == nil {
			if w.sortKeys, err = bindExprs(exprs, childSchema, v.e.subquery); err != nil {
				return err
			}
		}
	case parAgg:
		childSchema := n.Children[0].Schema
		if w.aggGroupKeys, err = bindExprs(n.GroupKeys, childSchema, v.e.subquery); err != nil {
			return err
		}
		w.aggArgs = make([]boundExpr, len(n.Aggs))
		for i, a := range n.Aggs {
			if a.Call.Star {
				continue
			}
			if w.aggArgs[i], err = bindExpr(a.Call.Args[0], childSchema, v.e.subquery); err != nil {
				return err
			}
		}
	}
	return nil
}

func (x *exchangeVec) Open() error {
	if err := x.stop(); err != nil { // cancel any previous run
		return err
	}
	t, err := x.e.Cat.Table(x.sh.driver.Relation)
	if err != nil {
		return err
	}
	snap := t.Snapshot()
	for _, w := range x.workers {
		w.rows, w.nanos = 0, 0
	}
	if err := x.prepareSharedBuilds(); err != nil {
		return err
	}
	x.disp = newMorselDispenser(buildMorsels(snap, x.e.Cfg.morselRows()))
	x.cancel = make(chan struct{})
	x.results = make(chan morselOut, x.dop)
	x.err = nil
	x.pending = make(map[int][]storage.Row)
	x.nextM, x.cur, x.curPos = 0, nil, 0
	x.out, x.outPos = nil, 0
	x.running = true
	x.wg.Add(len(x.workers))
	for _, w := range x.workers {
		go x.runWorker(w)
	}
	if x.sh.kind != parGather {
		return x.collectRuns()
	}
	return nil
}

// stop cancels an in-flight run and waits for every worker to exit. It is
// what makes Close (and re-Open) safe mid-stream: after stop returns, no
// worker goroutine remains.
func (x *exchangeVec) stop() error {
	if !x.running {
		return nil
	}
	close(x.cancel)
	go func() { // unblock senders while we wait
		for range x.results {
		}
	}()
	x.wg.Wait()
	close(x.results)
	x.running = false
	return nil
}

// finish records per-worker stats once all workers have exited normally.
func (x *exchangeVec) finish() {
	if !x.running {
		return
	}
	x.wg.Wait()
	close(x.results)
	x.running = false
	if x.v.stats != nil {
		st := x.v.stats(x.sh.driver)
		st.Workers = int64(x.dop)
		st.PerWorker = st.PerWorker[:0]
		for _, w := range x.workers {
			st.PerWorker = append(st.PerWorker, WorkerStat{Rows: w.rows, Time: time.Duration(w.nanos)})
		}
	}
}

func (x *exchangeVec) Close() error {
	err := x.stop()
	for _, w := range x.workers {
		if cerr := w.root.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// --- Worker loop ------------------------------------------------------------

func (x *exchangeVec) canceled() bool {
	select {
	case <-x.cancel:
		return true
	default:
		return false
	}
}

// send delivers one result unless the run was canceled.
func (x *exchangeVec) send(mo morselOut) bool {
	select {
	case x.results <- mo:
		return true
	case <-x.cancel:
		return false
	}
}

func (x *exchangeVec) runWorker(w *parWorker) {
	defer x.wg.Done()
	start := time.Now()
	defer func() { w.nanos += int64(time.Since(start)) }()
	switch x.sh.kind {
	case parGather:
		x.runGather(w)
	case parSort:
		x.runSort(w)
	case parAgg:
		x.runAgg(w)
	}
}

// drainMorsel points the worker's scan at one morsel and fully drains the
// pipeline, invoking emit per output batch. Batches are transient; emit
// must copy the headers it keeps.
func (w *parWorker) drainMorsel(mo morsel, emit func([]storage.Row) error) error {
	w.scan.setMorsel(mo)
	if err := w.root.Open(); err != nil {
		return err
	}
	for {
		b, err := w.root.NextBatch()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
		w.rows += int64(len(b))
		if err := emit(b); err != nil {
			return err
		}
	}
}

func (x *exchangeVec) runGather(w *parWorker) {
	for {
		m, mo, ok := x.disp.grab()
		if !ok || x.canceled() {
			return
		}
		var rows []storage.Row
		err := w.drainMorsel(mo, func(b []storage.Row) error {
			rows = append(rows, b...)
			return nil
		})
		if !x.send(morselOut{m: m, rows: rows, err: err}) || err != nil {
			return
		}
	}
}

func (x *exchangeVec) runSort(w *parWorker) {
	run := &workerRun{}
	var heap *topKHeap
	if x.topK > 0 {
		heap = newTopKHeap(int(x.topK), x.sortN, x.sortDesc)
	}
	var env rowEnv
	scratch := make([]datum.D, x.sortN)
	for {
		m, mo, ok := x.disp.grab()
		if !ok || x.canceled() {
			break
		}
		within := int64(0)
		err := w.drainMorsel(mo, func(b []storage.Row) error {
			for _, r := range b {
				if err := x.evalSortKeys(w, r, scratch, &env); err != nil {
					return err
				}
				seq := int64(m)*seqStride + within
				within++
				if heap != nil {
					heap.pushSeq(r, scratch, seq)
					continue
				}
				run.rows = append(run.rows, r)
				run.keys = append(run.keys, scratch...)
				run.seqs = append(run.seqs, seq)
			}
			return nil
		})
		if err != nil {
			x.send(morselOut{m: -1, err: err})
			return
		}
	}
	if x.canceled() {
		return
	}
	if heap != nil {
		run.rows, run.keys, run.seqs = heap.finishRuns()
	} else {
		sortRunBySeqKeys(run, x.sortN, x.sortDesc)
	}
	x.send(morselOut{m: -1, run: run})
}

func (x *exchangeVec) evalSortKeys(w *parWorker, r storage.Row, dst []datum.D, env *rowEnv) error {
	if w.sortKeyOrds != nil {
		for i, ord := range w.sortKeyOrds {
			dst[i] = r[ord]
		}
		return nil
	}
	env.left = r
	for i, k := range w.sortKeys {
		v, err := k(env)
		if err != nil {
			return err
		}
		dst[i] = v
	}
	return nil
}

// sortRunBySeqKeys sorts a full-sort run by (keys, seq) in place.
func sortRunBySeqKeys(run *workerRun, nKeys int, desc []bool) {
	idx := make([]int, len(run.rows))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(x, y int) bool {
		a, b := idx[x], idx[y]
		for j := 0; j < nKeys; j++ {
			c := datum.Compare(run.keys[a*nKeys+j], run.keys[b*nKeys+j])
			if desc[j] {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return run.seqs[a] < run.seqs[b]
	})
	rows := make([]storage.Row, len(idx))
	keys := make([]datum.D, 0, len(idx)*nKeys)
	seqs := make([]int64, len(idx))
	for i, j := range idx {
		rows[i] = run.rows[j]
		keys = append(keys, run.keys[j*nKeys:(j+1)*nKeys]...)
		seqs[i] = run.seqs[j]
	}
	run.rows, run.keys, run.seqs = rows, keys, seqs
}

func (x *exchangeVec) runAgg(w *parWorker) {
	acc := newParAggAcc(x.aggs, len(w.aggGroupKeys))
	var env rowEnv
	for {
		m, mo, ok := x.disp.grab()
		if !ok || x.canceled() {
			break
		}
		within := int64(0)
		err := w.drainMorsel(mo, func(b []storage.Row) error {
			for _, r := range b {
				seq := int64(m)*seqStride + within
				within++
				if err := acc.add(w, r, seq, &env); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			x.send(morselOut{m: -1, err: err})
			return
		}
	}
	if x.canceled() {
		return
	}
	x.send(morselOut{m: -1, run: &workerRun{groups: acc.groups}})
}

// --- Gather merge -----------------------------------------------------------

func (x *exchangeVec) NextBatch() ([]storage.Row, error) {
	if x.err != nil {
		return nil, x.err
	}
	if x.sh.kind != parGather {
		if x.outPos >= len(x.out) {
			return nil, nil
		}
		end := x.outPos + batchSize
		if end > len(x.out) {
			end = len(x.out)
		}
		b := x.out[x.outPos:end]
		x.outPos = end
		return b, nil
	}
	for {
		if x.curPos < len(x.cur) {
			end := x.curPos + batchSize
			if end > len(x.cur) {
				end = len(x.cur)
			}
			b := x.cur[x.curPos:end]
			x.curPos = end
			return b, nil
		}
		if x.nextM >= x.disp.count() {
			x.finish()
			return nil, nil
		}
		rows, ok := x.pending[x.nextM]
		if ok {
			delete(x.pending, x.nextM)
			x.cur, x.curPos = rows, 0
			x.nextM++
			continue
		}
		mo := <-x.results
		if mo.err != nil {
			x.err = mo.err
			x.stop()
			return nil, x.err
		}
		x.pending[mo.m] = mo.rows
	}
}

// --- Sort / aggregation merges ----------------------------------------------

// collectRuns waits for every worker's run (sort and aggregation merges
// are blocking, like their serial operators) and materializes the merged
// output.
func (x *exchangeVec) collectRuns() error {
	runs := make([]*workerRun, 0, x.dop)
	for len(runs) < x.dop {
		mo := <-x.results
		if mo.err != nil {
			x.err = mo.err
			x.stop()
			return x.err
		}
		runs = append(runs, mo.run)
	}
	x.finish()
	if x.sh.kind == parSort {
		x.out = mergeSortRuns(runs, x.sortN, x.sortDesc, x.topK)
		return nil
	}
	out, err := x.mergeAggRuns(runs)
	if err != nil {
		x.err = err
		return err
	}
	x.out = out
	return nil
}

// mergeSortRuns k-way merges per-worker sorted runs by (keys, seq). The
// seq tiebreak is the row's serial arrival order, so the merged sequence
// is exactly the serial stable sort; truncation to topK happens after the
// merge (each run already holds at most topK rows).
func mergeSortRuns(runs []*workerRun, nKeys int, desc []bool, topK int64) []storage.Row {
	total := 0
	for _, r := range runs {
		total += len(r.rows)
	}
	if topK > 0 && int64(total) > topK {
		total = int(topK)
	}
	out := make([]storage.Row, 0, total)
	pos := make([]int, len(runs))
	for len(out) < cap(out) {
		best := -1
		for i, r := range runs {
			if pos[i] >= len(r.rows) {
				continue
			}
			if best < 0 || runBefore(runs[i], pos[i], runs[best], pos[best], nKeys, desc) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		out = append(out, runs[best].rows[pos[best]])
		pos[best]++
	}
	return out
}

func runBefore(a *workerRun, ai int, b *workerRun, bi int, nKeys int, desc []bool) bool {
	ao, bo := ai*nKeys, bi*nKeys
	for j := 0; j < nKeys; j++ {
		c := datum.Compare(a.keys[ao+j], b.keys[bo+j])
		if desc[j] {
			c = -c
		}
		if c != 0 {
			return c < 0
		}
	}
	return a.seqs[ai] < b.seqs[bi]
}

// mergeAggRuns merges per-worker partial groups, orders them by global
// first arrival (the serial aggregate's insertion order), finalizes, and
// applies HAVING.
func (x *exchangeVec) mergeAggRuns(runs []*workerRun) ([]storage.Row, error) {
	idx := make(map[string]int)
	var groups []*parGroup
	keyBuf := make([]byte, 0, 64)
	for _, run := range runs {
		for _, g := range run.groups {
			keyBuf = keyBuf[:0]
			for _, v := range g.keyVals {
				keyBuf = v.AppendKey(keyBuf)
				keyBuf = append(keyBuf, 0)
			}
			gi, ok := idx[string(keyBuf)]
			if !ok {
				idx[string(keyBuf)] = len(groups)
				groups = append(groups, g)
				continue
			}
			if err := groups[gi].merge(g); err != nil {
				return nil, err
			}
		}
	}
	sort.Slice(groups, func(a, b int) bool { return groups[a].firstSeq < groups[b].firstSeq })
	if x.plainAgg && len(groups) == 0 {
		groups = append(groups, newParGroup(nil, x.aggs, 0))
	}
	var env rowEnv
	out := make([]storage.Row, 0, len(groups))
	for _, g := range groups {
		row := make(storage.Row, 0, len(g.keyVals)+len(g.states))
		row = append(row, g.keyVals...)
		for i, a := range x.aggs {
			row = append(row, g.states[i].finalize(a.Call))
		}
		if x.having != nil {
			env.left = row
			v, err := x.having(&env)
			if err != nil {
				return nil, err
			}
			if !truthy(v) {
				continue
			}
		}
		out = append(out, row)
	}
	return out, nil
}

// --- Partial aggregation ----------------------------------------------------

// parAggState is one mergeable partial aggregate. DISTINCT aggregates
// defer accumulation entirely: workers collect the distinct value set and
// the merged set is folded at finalize, so cross-worker duplicates are
// deduplicated exactly once.
type parAggState struct {
	st    aggState
	dvals map[string]datum.D
}

func (s *parAggState) accumulate(v datum.D) error {
	if v.IsNull() {
		return nil
	}
	if s.dvals != nil {
		s.dvals[v.String()] = v
		return nil
	}
	return accumulateDatum(&s.st, v)
}

func (s *parAggState) merge(o *parAggState) error {
	if s.dvals != nil {
		for k, v := range o.dvals {
			s.dvals[k] = v
		}
		return nil
	}
	s.st.count += o.st.count
	if !o.st.sum.IsNull() {
		if s.st.sum.IsNull() {
			s.st.sum = o.st.sum
		} else {
			sum, err := datum.Arith('+', s.st.sum, o.st.sum)
			if err != nil {
				return err
			}
			s.st.sum = sum
		}
	}
	if !o.st.min.IsNull() && (s.st.min.IsNull() || datum.Compare(o.st.min, s.st.min) < 0) {
		s.st.min = o.st.min
	}
	if !o.st.max.IsNull() && (s.st.max.IsNull() || datum.Compare(o.st.max, s.st.max) > 0) {
		s.st.max = o.st.max
	}
	return nil
}

func (s *parAggState) finalize(call *sqlparser.FuncCall) datum.D {
	if s.dvals != nil {
		keys := make([]string, 0, len(s.dvals))
		for k := range s.dvals {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		st := newAggState(call)
		for _, k := range keys {
			accumulateDatum(&st, s.dvals[k])
		}
		return finalize(&st, call)
	}
	return finalize(&s.st, call)
}

// parGroup is one group's partial states plus the serial sequence of its
// first input row — the merge orders groups by the minimum across workers,
// which is the group's first appearance in the serial input.
type parGroup struct {
	keyVals  []datum.D
	states   []parAggState
	firstSeq int64
}

func newParGroup(keyVals []datum.D, aggs []aggSpec, firstSeq int64) *parGroup {
	g := &parGroup{keyVals: keyVals, states: make([]parAggState, len(aggs)), firstSeq: firstSeq}
	for i := range g.states {
		g.states[i].st = newAggState(aggs[i].Call)
		if aggs[i].Call.Distinct {
			g.states[i].dvals = make(map[string]datum.D)
		}
	}
	return g
}

func (g *parGroup) merge(o *parGroup) error {
	if o.firstSeq < g.firstSeq {
		g.firstSeq = o.firstSeq
	}
	for i := range g.states {
		if err := g.states[i].merge(&o.states[i]); err != nil {
			return err
		}
	}
	return nil
}

// parAggAcc accumulates one worker's partial groups, keyed exactly like
// the serial aggIter (AppendKey encoding).
type parAggAcc struct {
	aggs       []aggSpec
	idx        map[string]int
	groups     []*parGroup
	keyBuf     []byte
	keyScratch []datum.D
}

func newParAggAcc(aggs []aggSpec, nKeys int) *parAggAcc {
	return &parAggAcc{
		aggs:       aggs,
		idx:        make(map[string]int),
		keyBuf:     make([]byte, 0, 64),
		keyScratch: make([]datum.D, nKeys),
	}
}

func (a *parAggAcc) add(w *parWorker, r storage.Row, seq int64, env *rowEnv) error {
	env.left = r
	a.keyBuf = a.keyBuf[:0]
	for i, k := range w.aggGroupKeys {
		v, err := k(env)
		if err != nil {
			return err
		}
		a.keyScratch[i] = v
		a.keyBuf = v.AppendKey(a.keyBuf)
		a.keyBuf = append(a.keyBuf, 0)
	}
	gi, ok := a.idx[string(a.keyBuf)]
	if !ok {
		gi = len(a.groups)
		a.idx[string(a.keyBuf)] = gi
		a.groups = append(a.groups, newParGroup(append([]datum.D(nil), a.keyScratch...), a.aggs, seq))
	}
	g := a.groups[gi]
	for i, spec := range a.aggs {
		if spec.Call.Star {
			g.states[i].st.count++
			continue
		}
		v, err := w.aggArgs[i](env)
		if err != nil {
			return err
		}
		if err := g.states[i].accumulate(v); err != nil {
			return err
		}
	}
	return nil
}

// --- Shared hash builds -----------------------------------------------------

// prepareSharedBuilds (re)builds every driver-spine hash-join build side
// once per Open, before workers start. A build side that is itself a plain
// filtered scan is built in parallel: goroutines hash morsel partitions
// independently and the partitions merge in morsel order, reproducing the
// serial build's bucket insertion order exactly. Anything else drains a
// serial vectorized pipeline, as hashJoinVec.Open would.
func (x *exchangeVec) prepareSharedBuilds() error {
	for _, s := range x.shared {
		if err := x.buildShared(s); err != nil {
			return err
		}
	}
	return nil
}

func (x *exchangeVec) buildShared(s *hashShared) error {
	n := s.node
	shell, err := x.v.hashJoinShell(n)
	if err != nil {
		return err
	}
	s.entries = s.entries[:0]
	s.keyArena = s.keyArena[:0]
	s.table = make(map[uint64][]int32)

	if scanNode := plainBuildScan(n.Children[1]); scanNode != nil {
		t, err := x.e.Cat.Table(scanNode.Relation)
		if err != nil {
			return err
		}
		if t.RowCount() >= x.e.Cfg.morselRows() {
			return x.buildSharedParallel(s, shell, n, scanNode, t.Snapshot())
		}
	}
	return x.buildSharedSerial(s, shell, n)
}

// plainBuildScan returns the SeqScan when the build subtree is just
// Hash → (Materialize →)? SeqScan, the shape eligible for parallel build.
func plainBuildScan(n *Node) *Node {
	for {
		switch n.Op {
		case OpHash, OpMaterialize:
			n = n.Children[0]
		case OpSeqScan:
			return n
		default:
			return nil
		}
	}
}

func (x *exchangeVec) buildSharedSerial(s *hashShared, shell *hashJoinVec, n *Node) error {
	// Build through a serial vbuild so nested operators (and, under
	// instrumentation, their stats) behave exactly like a serial join open.
	nv := x.e.newVBuild(nil, x.v.stats)
	src, err := nv.build(n.Children[1])
	if err != nil {
		return err
	}
	defer src.Close()
	if err := src.Open(); err != nil {
		return err
	}
	var env rowEnv
	keyBuf := make([]datum.D, shell.nKeys)
	for {
		b, err := src.NextBatch()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
		for _, r := range b {
			h, null, err := hashRowKeys(r, shell.buildKeyOrds, shell.buildKeys, keyBuf, &env)
			if err != nil {
				return err
			}
			if null {
				continue
			}
			s.keyArena = append(s.keyArena, keyBuf[:shell.nKeys]...)
			s.table[h] = append(s.table[h], int32(len(s.entries)))
			s.entries = append(s.entries, r)
		}
	}
}

// buildPart is one goroutine's hashed morsel partition.
type buildPart struct {
	m       int
	rows    []storage.Row
	keys    []datum.D
	hashes  []uint64
	scanned int64
	err     error
}

func (x *exchangeVec) buildSharedParallel(s *hashShared, shell *hashJoinVec, n, scanNode *Node, snap storage.Snapshot) error {
	disp := newMorselDispenser(buildMorsels(snap, x.e.Cfg.morselRows()))
	parts := make(chan *buildPart, x.dop)
	var wg sync.WaitGroup
	for i := 0; i < x.dop; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Per-goroutine pipeline state: compiled predicate, key binds,
			// scratch buffers. The hash-side schema is the scan's own.
			ms := &morselScanVec{prune: !x.e.Cfg.DisableZonePruning}
			if scanNode.Filter != nil {
				pred, err := compileVecPred(scanNode.Filter, scanNode.Schema, x.e.subquery)
				if err != nil {
					parts <- &buildPart{m: -1, err: err}
					return
				}
				ms.pred = pred
			}
			if x.v.stats != nil {
				ms.st = x.v.stats(scanNode)
			}
			var scan vecIter = ms
			if x.v.stats != nil {
				scan = x.v.instr(scanNode, ms)
			}
			defer scan.Close() // unpin the last-held segment payload
			var env rowEnv
			keyBuf := make([]datum.D, shell.nKeys)
			var keys []boundExpr
			if shell.buildKeyOrds == nil {
				var err error
				if keys, err = x.rebindBuildKeys(n); err != nil {
					parts <- &buildPart{m: -1, err: err}
					return
				}
			}
			for {
				m, mo, ok := disp.grab()
				if !ok {
					return
				}
				p := &buildPart{m: m}
				ms.setMorsel(mo)
				if err := scan.Open(); err != nil {
					parts <- &buildPart{m: -1, err: err}
					return
				}
				for {
					b, err := scan.NextBatch()
					if err != nil {
						parts <- &buildPart{m: -1, err: err}
						return
					}
					if b == nil {
						break
					}
					p.scanned += int64(len(b))
					for _, r := range b {
						h, null, err := hashRowKeys(r, shell.buildKeyOrds, keys, keyBuf, &env)
						if err != nil {
							parts <- &buildPart{m: -1, err: err}
							return
						}
						if null {
							continue
						}
						p.rows = append(p.rows, r)
						p.keys = append(p.keys, keyBuf[:shell.nKeys]...)
						p.hashes = append(p.hashes, h)
					}
				}
				parts <- p
			}
		}()
	}
	go func() { wg.Wait(); close(parts) }()

	// Merge partitions in morsel order: bucket lists get the same insertion
	// order as a serial scan, so duplicate-match emission order matches.
	pending := make(map[int]*buildPart)
	var firstErr error
	scanned := int64(0)
	next, total := 0, disp.count()
	for p := range parts {
		if p.err != nil {
			if firstErr == nil {
				firstErr = p.err
			}
			continue
		}
		pending[p.m] = p
		for {
			q, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			scanned += q.scanned
			for i, r := range q.rows {
				s.keyArena = append(s.keyArena, q.keys[i*shell.nKeys:(i+1)*shell.nKeys]...)
				s.table[q.hashes[i]] = append(s.table[q.hashes[i]], int32(len(s.entries)))
				s.entries = append(s.entries, r)
			}
		}
	}
	if firstErr != nil {
		return firstErr
	}
	if next != total {
		return fmt.Errorf("engine: parallel hash build lost %d morsels", total-next)
	}
	if x.v.stats != nil {
		// Credit the pass-through Hash/Materialize spine with the rows that
		// flowed through it, as the serial wrappers would.
		for c := n.Children[1]; c != nil && (c.Op == OpHash || c.Op == OpMaterialize); c = c.Children[0] {
			x.v.stats(c).Rows += scanned
		}
	}
	return nil
}

// rebindBuildKeys produces fresh build-key closures for one build
// goroutine (closure state must not be shared).
func (x *exchangeVec) rebindBuildKeys(n *Node) ([]boundExpr, error) {
	probeNode, hashNode := n.Children[0], n.Children[1]
	_, buildKeyExprs, _ := joinKeyPairs(n.JoinCond, probeNode.Schema)
	return bindExprs(buildKeyExprs, hashNode.Schema, x.e.subquery)
}
