package engine

// Differential tests: every query runs through both the streaming iterator
// executor and the materializing reference executor, asserting identical
// results — as ordered sequences under ORDER BY, as row multisets
// otherwise. A fixed-seed randomized query generator widens the corpus
// beyond the hand-written cases, and every query is repeated under planner
// configurations that force each join algorithm and access path, so all
// iterator operators are exercised.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"lantern/internal/sqlparser"
)

// diffConfigs are the planner configurations each differential query runs
// under, forcing distinct plan shapes over the same SQL.
func diffConfigs() map[string]Config {
	def := DefaultConfig()
	hashOnly := def
	hashOnly.EnableMergeJoin, hashOnly.EnableNestLoop = false, false
	mergeOnly := def
	mergeOnly.EnableHashJoin, mergeOnly.EnableNestLoop = false, false
	nlOnly := def
	nlOnly.EnableHashJoin, nlOnly.EnableMergeJoin = false, false
	noIndex := def
	noIndex.EnableIndexScan = false
	greedy := def
	greedy.DPThreshold = 1
	return map[string]Config{
		"default": def, "hash-only": hashOnly, "merge-only": mergeOnly,
		"nl-only": nlOnly, "no-index": noIndex, "greedy": greedy,
	}
}

// assertSameResults runs sql through both executors on e and compares.
func assertSameResults(t *testing.T, e *Engine, sql string) {
	t.Helper()
	e.Cfg.ReferenceExec = false
	stream, sErr := e.Exec(sql)
	e.Cfg.ReferenceExec = true
	ref, rErr := e.Exec(sql)
	e.Cfg.ReferenceExec = false
	if (sErr != nil) != (rErr != nil) {
		t.Fatalf("query %q: stream err = %v, reference err = %v", sql, sErr, rErr)
	}
	if sErr != nil {
		return // both failed: acceptable as long as they agree
	}
	ordered := false
	if sel, err := sqlparser.ParseSelect(sql); err == nil {
		ordered = len(sel.OrderBy) > 0
	}
	var got, want []string
	if ordered {
		got, want = rowStrings(stream.Rows), rowStrings(ref.Rows)
	} else {
		got, want = sortedRowStrings(stream.Rows), sortedRowStrings(ref.Rows)
	}
	if len(got) != len(want) {
		t.Fatalf("query %q: stream returned %d rows, reference %d", sql, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("query %q: row %d differs:\nstream:    %s\nreference: %s", sql, i, got[i], want[i])
		}
	}
}

// diffCorpus is the hand-written query corpus, covering every operator and
// expression form the executors implement.
var diffCorpus = []string{
	// Scans, filters, expressions.
	"SELECT * FROM customer",
	"SELECT c_name, c_acctbal * 2 FROM customer WHERE c_acctbal > 50",
	"SELECT c_custkey FROM customer WHERE c_custkey = 7",
	"SELECT c_custkey FROM customer WHERE c_custkey BETWEEN 5 AND 12",
	"SELECT c_name FROM customer WHERE c_name LIKE 'cust1%'",
	"SELECT c_name FROM customer WHERE c_mktsegment IN ('AUTO', 'MACHINERY')",
	"SELECT c_name FROM customer WHERE c_acctbal IS NOT NULL AND NOT c_mktsegment = 'AUTO'",
	"SELECT UPPER(c_name), LENGTH(c_mktsegment), ABS(0 - c_custkey) FROM customer",
	"SELECT SUBSTRING(c_name, 1, 4), REPLACE(c_mktsegment, 'AUTO', 'CAR') FROM customer",
	"SELECT COALESCE(NULL, c_name), c_name || '!' FROM customer WHERE c_custkey < 5",
	"SELECT CASE WHEN c_acctbal > 100 THEN 'rich' ELSE 'poor' END FROM customer",
	// Joins.
	"SELECT c.c_name, o.o_totalprice FROM customer c, orders o WHERE c.c_custkey = o.o_custkey",
	"SELECT c.c_name, o.o_totalprice FROM customer c, orders o WHERE c.c_custkey = o.o_custkey AND o.o_totalprice > 100",
	"SELECT c.c_name, o.o_orderkey FROM customer c JOIN orders o ON c.c_custkey = o.o_custkey AND o.o_status = 'A'",
	"SELECT c.c_name, o.o_orderkey FROM customer c LEFT JOIN orders o ON c.c_custkey = o.o_custkey AND o.o_totalprice > 300",
	// LEFT JOIN with WHERE filters: matched is decided by the ON condition
	// alone, and the filter applies after null-extension.
	"SELECT c.c_name FROM customer c LEFT JOIN orders o ON c.c_custkey = o.o_custkey AND o.o_totalprice > 300 WHERE o.o_orderkey IS NULL",
	"SELECT c.c_name, o.o_orderkey FROM customer c LEFT JOIN orders o ON c.c_custkey = o.o_custkey WHERE o.o_totalprice > 200",
	"SELECT c.c_name, o.o_orderkey FROM customer c LEFT JOIN orders o ON c.c_custkey = o.o_custkey AND o.o_status = 'A' WHERE o.o_orderkey IS NOT NULL AND c.c_acctbal > 50",
	"SELECT i.author, p.title FROM inproceedings i, publication p WHERE i.proceeding_key = p.pub_key",
	"SELECT c.c_name, o.o_orderkey FROM customer c, orders o WHERE c.c_custkey = o.o_custkey AND c.c_acctbal < o.o_totalprice",
	"SELECT COUNT(*) FROM customer c, orders o, publication p WHERE c.c_custkey = o.o_custkey AND p.pub_key = o.o_custkey",
	// Cross join (no equi-condition).
	"SELECT COUNT(*) FROM publication p, customer c WHERE p.pub_key < c.c_custkey",
	// Aggregation.
	"SELECT COUNT(*) FROM orders",
	"SELECT SUM(o_totalprice), AVG(o_totalprice), MIN(o_totalprice), MAX(o_totalprice) FROM orders",
	"SELECT o_status, COUNT(*) FROM orders GROUP BY o_status",
	"SELECT o_status, SUM(o_totalprice) FROM orders GROUP BY o_status HAVING COUNT(*) > 15",
	"SELECT c_mktsegment, COUNT(DISTINCT c_custkey) FROM customer GROUP BY c_mktsegment",
	"SELECT COUNT(*) FROM customer WHERE c_acctbal > 10000",
	// DISTINCT.
	"SELECT DISTINCT o_status FROM orders",
	"SELECT DISTINCT c_mktsegment, c_acctbal > 100 FROM customer",
	// ORDER BY, LIMIT, OFFSET.
	"SELECT c_name FROM customer ORDER BY c_acctbal DESC",
	"SELECT o_orderkey FROM orders ORDER BY o_status, o_totalprice DESC",
	"SELECT o_orderkey, o_status FROM orders ORDER BY o_status LIMIT 7",
	"SELECT o_orderkey FROM orders ORDER BY o_totalprice LIMIT 5 OFFSET 3",
	"SELECT o_orderkey FROM orders LIMIT 4",
	"SELECT o_orderkey FROM orders LIMIT 0",
	"SELECT o_orderkey FROM orders LIMIT 1000",
	"SELECT o_orderkey FROM orders OFFSET 55",
	"SELECT c.c_name FROM customer c, orders o WHERE c.c_custkey = o.o_custkey ORDER BY o.o_totalprice LIMIT 3",
	// Subqueries.
	"SELECT c_name FROM customer WHERE c_custkey IN (SELECT o_custkey FROM orders WHERE o_totalprice > 350)",
	"SELECT c_name FROM customer WHERE EXISTS (SELECT o_orderkey FROM orders WHERE o_totalprice > 400)",
	"SELECT c_name FROM customer WHERE c_acctbal > (SELECT AVG(c_acctbal) FROM customer)",
	// Constant result.
	"SELECT 1 + 2, 'x' || 'y'",
	// Grouped join with ORDER BY over aggregate.
	"SELECT o_status, COUNT(*) FROM customer c, orders o WHERE c.c_custkey = o.o_custkey GROUP BY o_status ORDER BY COUNT(*) DESC",
}

func TestDifferentialCorpus(t *testing.T) {
	for name, cfg := range diffConfigs() {
		t.Run(name, func(t *testing.T) {
			e := testDB(t, cfg)
			for _, q := range diffCorpus {
				mustExec(t, e, q) // corpus queries are valid: agreeing on failure is not enough
				assertSameResults(t, e, q)
			}
		})
	}
}

// --- Randomized query generation -------------------------------------------

type queryGen struct{ rng *rand.Rand }

func (g *queryGen) pick(opts []string) string { return opts[g.rng.Intn(len(opts))] }

// genQuery produces one random but always-valid query over the testDB
// catalog (customer/orders/publication).
func (g *queryGen) genQuery() string {
	var sb strings.Builder
	tables := g.rng.Intn(3) + 1 // 1..3

	var from, where []string
	switch tables {
	case 1:
		if g.rng.Intn(2) == 0 {
			from = []string{"customer c"}
		} else {
			from = []string{"orders o"}
		}
	case 2:
		if g.rng.Intn(3) == 0 {
			// LEFT JOIN with an ON condition, sometimes narrowed by an
			// extra ON conjunct; WHERE filters over the nullable side are
			// drawn from the shared filter pool below.
			on := "c.c_custkey = o.o_custkey"
			if g.rng.Intn(2) == 0 {
				on += fmt.Sprintf(" AND o.o_totalprice > %d", g.rng.Intn(400))
			}
			from = []string{"customer c LEFT JOIN orders o ON " + on}
		} else {
			from = []string{"customer c", "orders o"}
			where = append(where, "c.c_custkey = o.o_custkey")
		}
	case 3:
		from = []string{"customer c", "orders o", "publication p"}
		where = append(where, "c.c_custkey = o.o_custkey")
		if g.rng.Intn(2) == 0 {
			where = append(where, "p.pub_key = o.o_custkey % 10")
		} else {
			where = append(where, "p.pub_key < c.c_custkey")
		}
	}
	hasCustomer := tables != 1 || from[0] == "customer c"
	hasOrders := tables >= 2 || from[0] == "orders o"

	var filters []string
	if hasCustomer {
		filters = append(filters,
			fmt.Sprintf("c.c_acctbal > %d", g.rng.Intn(200)),
			"c.c_mktsegment = 'BUILDING'",
			fmt.Sprintf("c.c_custkey < %d", g.rng.Intn(25)),
			"c.c_name LIKE 'cust1%'",
			fmt.Sprintf("c.c_custkey BETWEEN %d AND %d", g.rng.Intn(5), 5+g.rng.Intn(15)),
		)
	}
	if hasOrders {
		filters = append(filters,
			fmt.Sprintf("o.o_totalprice BETWEEN %d AND %d", g.rng.Intn(100), 100+g.rng.Intn(300)),
			"o.o_status IN ('A', 'B')",
			"o.o_custkey IS NOT NULL",
			"o.o_orderkey IS NULL", // anti-join shape under LEFT JOIN
		)
	}
	for n := g.rng.Intn(3); n > 0 && len(filters) > 0; n-- {
		where = append(where, filters[g.rng.Intn(len(filters))])
	}

	grouped := g.rng.Intn(3) == 0
	var items, orderKeys []string
	if grouped {
		var keys []string
		if hasOrders && g.rng.Intn(2) == 0 {
			keys = append(keys, "o.o_status")
		}
		if hasCustomer && (len(keys) == 0 || g.rng.Intn(2) == 0) {
			keys = append(keys, "c.c_mktsegment")
		}
		if len(keys) == 0 {
			keys = append(keys, "o.o_status")
		}
		items = append(items, keys...)
		agg := "COUNT(*)"
		if hasOrders && g.rng.Intn(2) == 0 {
			agg = g.pick([]string{"SUM(o.o_totalprice)", "AVG(o.o_totalprice)", "MIN(o.o_totalprice)", "MAX(o.o_totalprice)"})
		}
		items = append(items, agg)
		sb.WriteString("SELECT ")
		sb.WriteString(strings.Join(items, ", "))
		sb.WriteString(" FROM ")
		sb.WriteString(strings.Join(from, ", "))
		if len(where) > 0 {
			sb.WriteString(" WHERE ")
			sb.WriteString(strings.Join(where, " AND "))
		}
		sb.WriteString(" GROUP BY ")
		sb.WriteString(strings.Join(keys, ", "))
		if g.rng.Intn(3) == 0 {
			sb.WriteString(fmt.Sprintf(" HAVING COUNT(*) > %d", g.rng.Intn(5)))
		}
		orderKeys = items
	} else {
		var pool []string
		if hasCustomer {
			pool = append(pool, "c.c_custkey", "c.c_name", "c.c_mktsegment", "c.c_acctbal * 2")
		}
		if hasOrders {
			pool = append(pool, "o.o_orderkey", "o.o_status", "o.o_totalprice")
		}
		if tables == 3 {
			pool = append(pool, "p.title")
		}
		n := 1 + g.rng.Intn(3)
		for i := 0; i < n; i++ {
			items = append(items, pool[g.rng.Intn(len(pool))])
		}
		sb.WriteString("SELECT ")
		if g.rng.Intn(5) == 0 {
			sb.WriteString("DISTINCT ")
		}
		sb.WriteString(strings.Join(items, ", "))
		sb.WriteString(" FROM ")
		sb.WriteString(strings.Join(from, ", "))
		if len(where) > 0 {
			sb.WriteString(" WHERE ")
			sb.WriteString(strings.Join(where, " AND "))
		}
		orderKeys = items
	}

	if g.rng.Intn(2) == 0 && len(orderKeys) > 0 {
		sb.WriteString(" ORDER BY ")
		sb.WriteString(orderKeys[g.rng.Intn(len(orderKeys))])
		if g.rng.Intn(2) == 0 {
			sb.WriteString(" DESC")
		}
	}
	switch g.rng.Intn(3) {
	case 0:
		sb.WriteString(fmt.Sprintf(" LIMIT %d", g.pickLimit()))
	case 1:
		sb.WriteString(fmt.Sprintf(" LIMIT %d OFFSET %d", g.pickLimit(), g.rng.Intn(20)))
	}
	return sb.String()
}

func (g *queryGen) pickLimit() int {
	return []int{0, 1, 3, 7, 10, 50, 1000}[g.rng.Intn(7)]
}

func TestDifferentialRandomized(t *testing.T) {
	const queriesPerConfig = 120
	for name, cfg := range diffConfigs() {
		t.Run(name, func(t *testing.T) {
			e := testDB(t, cfg)
			g := &queryGen{rng: rand.New(rand.NewSource(0x1a57e12))}
			for i := 0; i < queriesPerConfig; i++ {
				q := g.genQuery()
				assertSameResults(t, e, q)
			}
		})
	}
}
