package engine

// Differential tests: every query runs through the vectorized batch
// executor (the default), the row-at-a-time streaming executor
// (Config.RowStreamExec) and the materializing reference executor
// (Config.ReferenceExec), asserting all three produce identical results —
// as ordered sequences under ORDER BY (which also pins tie order, i.e.
// sort stability), as row multisets otherwise. A fixed-seed randomized
// query generator widens the corpus beyond the hand-written cases, and
// every query is repeated under planner configurations that force each
// join algorithm and access path, so all operators are exercised in both
// pipelines.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"lantern/internal/sqlparser"
)

// diffConfigs are the planner configurations each differential query runs
// under, forcing distinct plan shapes over the same SQL.
func diffConfigs() map[string]Config {
	def := DefaultConfig()
	hashOnly := def
	hashOnly.EnableMergeJoin, hashOnly.EnableNestLoop = false, false
	mergeOnly := def
	mergeOnly.EnableHashJoin, mergeOnly.EnableNestLoop = false, false
	nlOnly := def
	nlOnly.EnableHashJoin, nlOnly.EnableMergeJoin = false, false
	noIndex := def
	noIndex.EnableIndexScan = false
	greedy := def
	greedy.DPThreshold = 1
	return map[string]Config{
		"default": def, "hash-only": hashOnly, "merge-only": mergeOnly,
		"nl-only": nlOnly, "no-index": noIndex, "greedy": greedy,
	}
}

// assertSameResults runs sql through all four executors on e — vectorized
// (default), row-streaming, the materializing reference, and the
// morsel-parallel executor with forced-up DOP — and compares each against
// the reference.
func assertSameResults(t *testing.T, e *Engine, sql string) {
	t.Helper()
	e.Cfg.ReferenceExec, e.Cfg.RowStreamExec = false, false
	vec, vErr := e.Exec(sql)
	e.Cfg.RowStreamExec = true
	stream, sErr := e.Exec(sql)
	e.Cfg.RowStreamExec = false
	e.Cfg.ReferenceExec = true
	ref, rErr := e.Exec(sql)
	e.Cfg.ReferenceExec = false
	// Parallel leg: a session over the same catalog with the DOP policy
	// forced up so even the tiny test tables split into per-row morsels
	// across 4 workers (the container may have GOMAXPROCS=1, so the cap
	// deliberately oversubscribes).
	par := e.Session()
	par.Cfg.ReferenceExec, par.Cfg.RowStreamExec = false, false
	par.Cfg.MaxQueryParallelism = 4
	par.Cfg.ParallelRowsPerWorker = 1
	parRes, pErr := par.Exec(sql)
	if (vErr != nil) != (rErr != nil) || (sErr != nil) != (rErr != nil) || (pErr != nil) != (rErr != nil) {
		t.Fatalf("query %q: vectorized err = %v, row-stream err = %v, parallel err = %v, reference err = %v", sql, vErr, sErr, pErr, rErr)
	}
	if rErr != nil {
		return // all failed: acceptable as long as they agree
	}
	ordered := false
	if sel, err := sqlparser.ParseSelect(sql); err == nil {
		ordered = len(sel.OrderBy) > 0
	}
	compare := func(label string, res *Result) {
		t.Helper()
		var got, want []string
		if ordered {
			got, want = rowStrings(res.Rows), rowStrings(ref.Rows)
		} else {
			got, want = sortedRowStrings(res.Rows), sortedRowStrings(ref.Rows)
		}
		if len(got) != len(want) {
			t.Fatalf("query %q: %s returned %d rows, reference %d", sql, label, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %q: row %d differs:\n%s: %s\nreference: %s", sql, i, label, got[i], want[i])
			}
		}
	}
	compare("vectorized", vec)
	compare("row-stream", stream)
	compare("parallel", parRes)
}

// diffCorpus is the hand-written query corpus, covering every operator and
// expression form the executors implement.
var diffCorpus = []string{
	// Scans, filters, expressions.
	"SELECT * FROM customer",
	"SELECT c_name, c_acctbal * 2 FROM customer WHERE c_acctbal > 50",
	"SELECT c_custkey FROM customer WHERE c_custkey = 7",
	"SELECT c_custkey FROM customer WHERE c_custkey BETWEEN 5 AND 12",
	"SELECT c_name FROM customer WHERE c_name LIKE 'cust1%'",
	"SELECT c_name FROM customer WHERE c_mktsegment IN ('AUTO', 'MACHINERY')",
	"SELECT c_name FROM customer WHERE c_acctbal IS NOT NULL AND NOT c_mktsegment = 'AUTO'",
	"SELECT UPPER(c_name), LENGTH(c_mktsegment), ABS(0 - c_custkey) FROM customer",
	"SELECT SUBSTRING(c_name, 1, 4), REPLACE(c_mktsegment, 'AUTO', 'CAR') FROM customer",
	"SELECT COALESCE(NULL, c_name), c_name || '!' FROM customer WHERE c_custkey < 5",
	"SELECT CASE WHEN c_acctbal > 100 THEN 'rich' ELSE 'poor' END FROM customer",
	// Joins.
	"SELECT c.c_name, o.o_totalprice FROM customer c, orders o WHERE c.c_custkey = o.o_custkey",
	"SELECT c.c_name, o.o_totalprice FROM customer c, orders o WHERE c.c_custkey = o.o_custkey AND o.o_totalprice > 100",
	"SELECT c.c_name, o.o_orderkey FROM customer c JOIN orders o ON c.c_custkey = o.o_custkey AND o.o_status = 'A'",
	"SELECT c.c_name, o.o_orderkey FROM customer c LEFT JOIN orders o ON c.c_custkey = o.o_custkey AND o.o_totalprice > 300",
	// LEFT JOIN with WHERE filters: matched is decided by the ON condition
	// alone, and the filter applies after null-extension.
	"SELECT c.c_name FROM customer c LEFT JOIN orders o ON c.c_custkey = o.o_custkey AND o.o_totalprice > 300 WHERE o.o_orderkey IS NULL",
	"SELECT c.c_name, o.o_orderkey FROM customer c LEFT JOIN orders o ON c.c_custkey = o.o_custkey WHERE o.o_totalprice > 200",
	"SELECT c.c_name, o.o_orderkey FROM customer c LEFT JOIN orders o ON c.c_custkey = o.o_custkey AND o.o_status = 'A' WHERE o.o_orderkey IS NOT NULL AND c.c_acctbal > 50",
	"SELECT i.author, p.title FROM inproceedings i, publication p WHERE i.proceeding_key = p.pub_key",
	"SELECT c.c_name, o.o_orderkey FROM customer c, orders o WHERE c.c_custkey = o.o_custkey AND c.c_acctbal < o.o_totalprice",
	"SELECT COUNT(*) FROM customer c, orders o, publication p WHERE c.c_custkey = o.o_custkey AND p.pub_key = o.o_custkey",
	// Cross join (no equi-condition).
	"SELECT COUNT(*) FROM publication p, customer c WHERE p.pub_key < c.c_custkey",
	// Aggregation.
	"SELECT COUNT(*) FROM orders",
	"SELECT SUM(o_totalprice), AVG(o_totalprice), MIN(o_totalprice), MAX(o_totalprice) FROM orders",
	"SELECT o_status, COUNT(*) FROM orders GROUP BY o_status",
	"SELECT o_status, SUM(o_totalprice) FROM orders GROUP BY o_status HAVING COUNT(*) > 15",
	"SELECT c_mktsegment, COUNT(DISTINCT c_custkey) FROM customer GROUP BY c_mktsegment",
	"SELECT COUNT(*) FROM customer WHERE c_acctbal > 10000",
	// DISTINCT.
	"SELECT DISTINCT o_status FROM orders",
	"SELECT DISTINCT c_mktsegment, c_acctbal > 100 FROM customer",
	// ORDER BY, LIMIT, OFFSET.
	"SELECT c_name FROM customer ORDER BY c_acctbal DESC",
	"SELECT o_orderkey FROM orders ORDER BY o_status, o_totalprice DESC",
	"SELECT o_orderkey, o_status FROM orders ORDER BY o_status LIMIT 7",
	"SELECT o_orderkey FROM orders ORDER BY o_totalprice LIMIT 5 OFFSET 3",
	"SELECT o_orderkey FROM orders LIMIT 4",
	"SELECT o_orderkey FROM orders LIMIT 0",
	"SELECT o_orderkey FROM orders LIMIT 1000",
	"SELECT o_orderkey FROM orders OFFSET 55",
	"SELECT c.c_name FROM customer c, orders o WHERE c.c_custkey = o.o_custkey ORDER BY o.o_totalprice LIMIT 3",
	// LIMIT/OFFSET boundary semantics (orders has 60 rows): OFFSET beyond
	// the result set, LIMIT 0 with OFFSET, OFFSET-only (unbounded limit)
	// straddling and past the end, and Sort-under-Limit where the top-K
	// heap must retain offset+limit rows rather than limit.
	"SELECT o_orderkey FROM orders ORDER BY o_totalprice LIMIT 5 OFFSET 100",
	"SELECT o_orderkey FROM orders LIMIT 5 OFFSET 100",
	"SELECT o_orderkey FROM orders ORDER BY o_totalprice LIMIT 0 OFFSET 3",
	"SELECT o_orderkey FROM orders ORDER BY o_totalprice OFFSET 55",
	"SELECT o_orderkey FROM orders ORDER BY o_totalprice OFFSET 70",
	"SELECT o_orderkey FROM orders ORDER BY o_totalprice LIMIT 10 OFFSET 55",
	// Duplicate sort keys crossing the limit/offset boundary: ordered
	// comparison pins top-K tie handling to the reference's stable sort.
	"SELECT o_orderkey, o_status FROM orders ORDER BY o_status LIMIT 10 OFFSET 5",
	// Subqueries.
	"SELECT c_name FROM customer WHERE c_custkey IN (SELECT o_custkey FROM orders WHERE o_totalprice > 350)",
	"SELECT c_name FROM customer WHERE EXISTS (SELECT o_orderkey FROM orders WHERE o_totalprice > 400)",
	"SELECT c_name FROM customer WHERE c_acctbal > (SELECT AVG(c_acctbal) FROM customer)",
	// Constant result.
	"SELECT 1 + 2, 'x' || 'y'",
	// Grouped join with ORDER BY over aggregate.
	"SELECT o_status, COUNT(*) FROM customer c, orders o WHERE c.c_custkey = o.o_custkey GROUP BY o_status ORDER BY COUNT(*) DESC",
}

func TestDifferentialCorpus(t *testing.T) {
	for name, cfg := range diffConfigs() {
		t.Run(name, func(t *testing.T) {
			e := testDB(t, cfg)
			for _, q := range diffCorpus {
				mustExec(t, e, q) // corpus queries are valid: agreeing on failure is not enough
				assertSameResults(t, e, q)
			}
		})
	}
}

// nullDB is testDB plus NULL join keys on both sides: a customer with a
// NULL c_custkey (and NULL c_acctbal) and two orders with NULL o_custkey.
// The base tables' row counts are asserted by other tests, so NULL-keyed
// rows live here rather than in testDB.
func nullDB(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e := testDB(t, cfg)
	mustExec(t, e, "INSERT INTO customer VALUES (NULL, 'custNULL', 'AUTO', NULL)")
	mustExec(t, e, "INSERT INTO orders VALUES (61, NULL, 100.0, 'A')")
	mustExec(t, e, "INSERT INTO orders VALUES (62, NULL, 500.0, 'B')")
	return e
}

// nullKeyCorpus pins NULL join-key semantics: NULL keys never match on
// either side, LEFT JOIN null-extends rows whose keys are NULL (they can
// never satisfy the ON condition), and a multi-column key with one NULL
// component behaves like a wholly NULL key.
var nullKeyCorpus = []string{
	"SELECT c.c_name, o.o_orderkey FROM customer c, orders o WHERE c.c_custkey = o.o_custkey",
	"SELECT c.c_name, o.o_orderkey FROM customer c LEFT JOIN orders o ON c.c_custkey = o.o_custkey",
	"SELECT c.c_name, o.o_orderkey FROM customer c LEFT JOIN orders o ON c.c_custkey = o.o_custkey AND o.o_totalprice > 300",
	"SELECT c.c_name FROM customer c LEFT JOIN orders o ON c.c_custkey = o.o_custkey WHERE o.o_orderkey IS NULL",
	"SELECT c.c_name FROM customer c LEFT JOIN orders o ON c.c_custkey = o.o_custkey WHERE o.o_totalprice > 200",
	"SELECT c.c_name, o.o_orderkey FROM customer c, orders o WHERE c.c_custkey = o.o_custkey AND c.c_acctbal = o.o_totalprice",
	"SELECT COUNT(*) FROM customer c, orders o WHERE c.c_custkey = o.o_custkey",
	"SELECT c_name FROM customer WHERE c_custkey IS NULL",
	"SELECT o_orderkey FROM orders WHERE o_custkey IS NOT NULL ORDER BY o_orderkey",
}

func TestDifferentialNullJoinKeys(t *testing.T) {
	for name, cfg := range diffConfigs() {
		t.Run(name, func(t *testing.T) {
			e := nullDB(t, cfg)
			for _, q := range nullKeyCorpus {
				mustExec(t, e, q)
				assertSameResults(t, e, q)
			}
		})
	}
}

// TestDifferentialTopKStability pins the bounded top-K heap against the
// reference executor's stable full sort when duplicate sort keys cross the
// limit (and offset+limit) boundary: with k = i%3, every boundary falls
// inside a run of ties, and the ordered comparison demands the exact same
// tie-breaking on all three executors.
func TestDifferentialTopKStability(t *testing.T) {
	e := testDB(t, DefaultConfig())
	mustExec(t, e, "CREATE TABLE dup (k INTEGER, v INTEGER)")
	for i := 0; i < 30; i++ {
		mustExec(t, e, fmt.Sprintf("INSERT INTO dup VALUES (%d, %d)", i%3, i))
	}
	queries := []string{
		"SELECT v FROM dup ORDER BY k LIMIT 7",
		"SELECT v FROM dup ORDER BY k LIMIT 7 OFFSET 4",
		"SELECT v FROM dup ORDER BY k DESC LIMIT 12 OFFSET 2",
		"SELECT v FROM dup ORDER BY k LIMIT 10 OFFSET 10",
		"SELECT k, v FROM dup ORDER BY k LIMIT 29",
		"SELECT k, v FROM dup ORDER BY k LIMIT 5 OFFSET 25",
	}
	for _, q := range queries {
		mustExec(t, e, q)
		assertSameResults(t, e, q)
	}
}

// TestDifferentialBatchBoundary exercises the batch executor across batch
// edges: the test tables elsewhere hold at most 60 rows, so filters,
// joins, sorts and limits that straddle the 1024-row batch size would
// otherwise never run against a multi-batch input.
func TestDifferentialBatchBoundary(t *testing.T) {
	e := testDB(t, DefaultConfig())
	mustExec(t, e, "CREATE TABLE big (id INTEGER, grp INTEGER, val INTEGER)")
	var sb strings.Builder
	const n = 3000
	for i := 0; i < n; i++ {
		if sb.Len() == 0 {
			sb.WriteString("INSERT INTO big VALUES ")
		} else {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, %d, %d)", i, i%7, (i*37)%1000)
		if (i+1)%250 == 0 || i == n-1 {
			mustExec(t, e, sb.String())
			sb.Reset()
		}
	}
	queries := []string{
		"SELECT COUNT(*) FROM big",
		"SELECT id FROM big WHERE val > 500",
		"SELECT id FROM big LIMIT 1024",
		"SELECT id FROM big LIMIT 1025",
		"SELECT id FROM big LIMIT 1000 OFFSET 1024",
		"SELECT id FROM big OFFSET 2999",
		"SELECT id FROM big ORDER BY val, id LIMIT 1030",
		"SELECT id FROM big ORDER BY val DESC, id LIMIT 5 OFFSET 1024",
		"SELECT grp, COUNT(*), SUM(val) FROM big GROUP BY grp",
		"SELECT b.id, c.c_name FROM big b, customer c WHERE b.grp = c.c_custkey AND b.val < 100",
		"SELECT DISTINCT grp FROM big",
	}
	for _, q := range queries {
		mustExec(t, e, q)
		assertSameResults(t, e, q)
	}
}

// --- Randomized query generation -------------------------------------------

type queryGen struct{ rng *rand.Rand }

func (g *queryGen) pick(opts []string) string { return opts[g.rng.Intn(len(opts))] }

// genQuery produces one random but always-valid query over the testDB
// catalog (customer/orders/publication).
func (g *queryGen) genQuery() string {
	var sb strings.Builder
	tables := g.rng.Intn(3) + 1 // 1..3

	var from, where []string
	switch tables {
	case 1:
		if g.rng.Intn(2) == 0 {
			from = []string{"customer c"}
		} else {
			from = []string{"orders o"}
		}
	case 2:
		if g.rng.Intn(3) == 0 {
			// LEFT JOIN with an ON condition, sometimes narrowed by an
			// extra ON conjunct; WHERE filters over the nullable side are
			// drawn from the shared filter pool below.
			on := "c.c_custkey = o.o_custkey"
			if g.rng.Intn(2) == 0 {
				on += fmt.Sprintf(" AND o.o_totalprice > %d", g.rng.Intn(400))
			}
			from = []string{"customer c LEFT JOIN orders o ON " + on}
		} else {
			from = []string{"customer c", "orders o"}
			where = append(where, "c.c_custkey = o.o_custkey")
		}
	case 3:
		from = []string{"customer c", "orders o", "publication p"}
		where = append(where, "c.c_custkey = o.o_custkey")
		if g.rng.Intn(2) == 0 {
			where = append(where, "p.pub_key = o.o_custkey % 10")
		} else {
			where = append(where, "p.pub_key < c.c_custkey")
		}
	}
	hasCustomer := tables != 1 || from[0] == "customer c"
	hasOrders := tables >= 2 || from[0] == "orders o"

	var filters []string
	if hasCustomer {
		filters = append(filters,
			fmt.Sprintf("c.c_acctbal > %d", g.rng.Intn(200)),
			"c.c_mktsegment = 'BUILDING'",
			fmt.Sprintf("c.c_custkey < %d", g.rng.Intn(25)),
			"c.c_name LIKE 'cust1%'",
			fmt.Sprintf("c.c_custkey BETWEEN %d AND %d", g.rng.Intn(5), 5+g.rng.Intn(15)),
		)
	}
	if hasOrders {
		filters = append(filters,
			fmt.Sprintf("o.o_totalprice BETWEEN %d AND %d", g.rng.Intn(100), 100+g.rng.Intn(300)),
			"o.o_status IN ('A', 'B')",
			"o.o_custkey IS NOT NULL",
			"o.o_orderkey IS NULL", // anti-join shape under LEFT JOIN
		)
	}
	for n := g.rng.Intn(3); n > 0 && len(filters) > 0; n-- {
		where = append(where, filters[g.rng.Intn(len(filters))])
	}

	grouped := g.rng.Intn(3) == 0
	var items, orderKeys []string
	if grouped {
		var keys []string
		if hasOrders && g.rng.Intn(2) == 0 {
			keys = append(keys, "o.o_status")
		}
		if hasCustomer && (len(keys) == 0 || g.rng.Intn(2) == 0) {
			keys = append(keys, "c.c_mktsegment")
		}
		if len(keys) == 0 {
			keys = append(keys, "o.o_status")
		}
		items = append(items, keys...)
		agg := "COUNT(*)"
		if hasOrders && g.rng.Intn(2) == 0 {
			agg = g.pick([]string{"SUM(o.o_totalprice)", "AVG(o.o_totalprice)", "MIN(o.o_totalprice)", "MAX(o.o_totalprice)"})
		}
		items = append(items, agg)
		sb.WriteString("SELECT ")
		sb.WriteString(strings.Join(items, ", "))
		sb.WriteString(" FROM ")
		sb.WriteString(strings.Join(from, ", "))
		if len(where) > 0 {
			sb.WriteString(" WHERE ")
			sb.WriteString(strings.Join(where, " AND "))
		}
		sb.WriteString(" GROUP BY ")
		sb.WriteString(strings.Join(keys, ", "))
		if g.rng.Intn(3) == 0 {
			sb.WriteString(fmt.Sprintf(" HAVING COUNT(*) > %d", g.rng.Intn(5)))
		}
		orderKeys = items
	} else {
		var pool []string
		if hasCustomer {
			pool = append(pool, "c.c_custkey", "c.c_name", "c.c_mktsegment", "c.c_acctbal * 2")
		}
		if hasOrders {
			pool = append(pool, "o.o_orderkey", "o.o_status", "o.o_totalprice")
		}
		if tables == 3 {
			pool = append(pool, "p.title")
		}
		n := 1 + g.rng.Intn(3)
		for i := 0; i < n; i++ {
			items = append(items, pool[g.rng.Intn(len(pool))])
		}
		sb.WriteString("SELECT ")
		if g.rng.Intn(5) == 0 {
			sb.WriteString("DISTINCT ")
		}
		sb.WriteString(strings.Join(items, ", "))
		sb.WriteString(" FROM ")
		sb.WriteString(strings.Join(from, ", "))
		if len(where) > 0 {
			sb.WriteString(" WHERE ")
			sb.WriteString(strings.Join(where, " AND "))
		}
		orderKeys = items
	}

	if g.rng.Intn(2) == 0 && len(orderKeys) > 0 {
		sb.WriteString(" ORDER BY ")
		sb.WriteString(orderKeys[g.rng.Intn(len(orderKeys))])
		if g.rng.Intn(2) == 0 {
			sb.WriteString(" DESC")
		}
	}
	switch g.rng.Intn(3) {
	case 0:
		sb.WriteString(fmt.Sprintf(" LIMIT %d", g.pickLimit()))
	case 1:
		sb.WriteString(fmt.Sprintf(" LIMIT %d OFFSET %d", g.pickLimit(), g.rng.Intn(20)))
	}
	return sb.String()
}

func (g *queryGen) pickLimit() int {
	return []int{0, 1, 3, 7, 10, 50, 1000}[g.rng.Intn(7)]
}

func TestDifferentialRandomized(t *testing.T) {
	const queriesPerConfig = 120
	for name, cfg := range diffConfigs() {
		t.Run(name, func(t *testing.T) {
			e := testDB(t, cfg)
			g := &queryGen{rng: rand.New(rand.NewSource(0x1a57e12))}
			for i := 0; i < queriesPerConfig; i++ {
				q := g.genQuery()
				assertSameResults(t, e, q)
			}
		})
	}
}

// TestDifferentialRandomizedNullKeys reruns the generator over nullDB, so
// every generated join/filter/limit shape also executes against NULL join
// keys on both sides (the generator's IS NULL / IS NOT NULL / LEFT JOIN
// shapes become non-vacuous there).
func TestDifferentialRandomizedNullKeys(t *testing.T) {
	const queriesPerConfig = 80
	for name, cfg := range diffConfigs() {
		t.Run(name, func(t *testing.T) {
			e := nullDB(t, cfg)
			g := &queryGen{rng: rand.New(rand.NewSource(0x9e3779b9))}
			for i := 0; i < queriesPerConfig; i++ {
				q := g.genQuery()
				assertSameResults(t, e, q)
			}
		})
	}
}
