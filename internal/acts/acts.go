// Package acts implements the act decomposition of paper §6.2: a QEP is
// split into acts — each a single operator node or an (auxiliary, critical)
// cluster — and each act becomes one training sample for the QEP2Seq model:
// a compact operator-level input serialization paired with its tagged
// RULE-LANTERN description as output.
package acts

import (
	"sort"
	"strings"

	"lantern/internal/core"
	"lantern/internal/lot"
	"lantern/internal/plan"
	"lantern/internal/pool"
)

// Act is one decomposed unit of a QEP.
type Act struct {
	// Critical is the act's main node (cluster head).
	Critical *lot.Node
	// Input is the encoder token sequence: the canonical operator names of
	// the cluster followed by the tags of the operands it consumes.
	Input []string
	// Target is the tagged natural-language description (training output).
	Target string
	// Sentence is the untagged RULE-LANTERN sentence (ground truth for
	// BLEU evaluation after detagging).
	Sentence string
	// Tags maps each special tag to the concrete values it stands for.
	Tags core.TagMap
}

// Decompose builds the acts of a plan tree using the POEM store: one act
// per narration step of RULE-LANTERN (Algorithm 1's non-auxiliary nodes).
func Decompose(tree *plan.Node, store *pool.Store) ([]Act, error) {
	lt, err := lot.Build(tree, store)
	if err != nil {
		return nil, err
	}
	rl := core.NewRuleLantern(store)
	nar, err := rl.NarrateLOT(lt)
	if err != nil {
		return nil, err
	}
	out := make([]Act, 0, len(nar.Steps))
	for _, step := range nar.Steps {
		tagged, tags := core.TaggedNodeSentence(step.Node)
		out = append(out, Act{
			Critical: step.Node,
			Input:    InputTokens(step.Node),
			Target:   tagged,
			Sentence: step.Text,
			Tags:     tags,
		})
	}
	return out, nil
}

// InputTokens serializes an act for the encoder: auxiliary operator names,
// the critical operator name, then one operand tag per attribute the act
// consumes. The serialization is schema-independent by construction.
func InputTokens(node *lot.Node) []string {
	var toks []string
	for _, aux := range node.AuxChildren {
		toks = append(toks, plan.Canon(aux.Plan.Name))
	}
	toks = append(toks, plan.Canon(node.Plan.Name))
	p := node.Plan
	// Operand tags in a canonical order.
	if p.Attr(plan.AttrRelation) != "" {
		toks = append(toks, core.TagTable)
	}
	for range node.Children {
		if p.Attr(plan.AttrRelation) == "" {
			toks = append(toks, core.TagTable)
		}
	}
	if p.Attr(plan.AttrIndexName) != "" {
		toks = append(toks, core.TagIndexName)
	}
	if p.Attr(plan.AttrJoinCond) != "" {
		toks = append(toks, core.TagJoinCond)
	} else if p.Attr(plan.AttrFilter) != "" || p.Attr(plan.AttrIndexCond) != "" {
		toks = append(toks, core.TagFilter)
	}
	if p.Attr(plan.AttrGroupKey) != "" {
		toks = append(toks, core.TagGroupKey)
	}
	if p.Attr(plan.AttrSortKey) != "" && plan.Canon(p.Name) != "sort" {
		toks = append(toks, core.TagSortKey)
	}
	if node.Identifier != "" {
		toks = append(toks, core.TagNewTable)
	}
	return toks
}

// InputVocabulary returns the closed encoder vocabulary: every canonical
// operator name registered in the store plus the special tags. The paper's
// input vocabulary has 36 entries; ours is the same construction over the
// seeded sources.
func InputVocabulary(store *pool.Store) []string {
	seen := map[string]bool{}
	var out []string
	for _, src := range store.Sources() {
		objs, err := store.Objects(src)
		if err != nil {
			continue
		}
		for _, o := range objs {
			if !seen[o.Name] {
				seen[o.Name] = true
				out = append(out, o.Name)
			}
		}
	}
	sort.Strings(out)
	out = append(out,
		core.TagTable, core.TagNewTable, core.TagFilter, core.TagJoinCond,
		core.TagSortKey, core.TagGroupKey, core.TagIndexName)
	return out
}

// OutputVocabulary builds the closed decoder vocabulary from a corpus of
// tagged target sentences (the paper's is 62 tokens). BOS and EOS occupy
// the first two slots, matching the nn package's reserved IDs.
func OutputVocabulary(targets []string) []string {
	seen := map[string]bool{}
	var words []string
	for _, t := range targets {
		for _, w := range strings.Fields(t) {
			if !seen[w] {
				seen[w] = true
				words = append(words, w)
			}
		}
	}
	sort.Strings(words)
	return append([]string{"<BOS>", "<EOS>"}, words...)
}
