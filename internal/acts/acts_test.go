package acts

import (
	"fmt"
	"strings"
	"testing"

	"lantern/internal/core"
	"lantern/internal/datasets"
	"lantern/internal/engine"
	"lantern/internal/plan"
	"lantern/internal/pool"
)

func tpchTree(t *testing.T, sql string) *plan.Node {
	t.Helper()
	e := engine.NewDefault()
	if err := datasets.LoadTPCH(e, 0.02, 1); err != nil {
		t.Fatal(err)
	}
	r, err := e.Exec("EXPLAIN (FORMAT JSON) " + sql)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := plan.ParsePostgresJSON(r.Plan)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

const q3ish = `SELECT c.c_name, SUM(o.o_totalprice) AS revenue
	FROM customer c, orders o
	WHERE c.c_custkey = o.o_custkey AND c.c_mktsegment = 'BUILDING'
	GROUP BY c.c_name ORDER BY revenue DESC LIMIT 10`

func TestDecompose(t *testing.T) {
	store := pool.NewSeededStore()
	tree := tpchTree(t, q3ish)
	as, err := Decompose(tree, store)
	if err != nil {
		t.Fatal(err)
	}
	if len(as) < 4 {
		t.Fatalf("acts = %d, want >= 4 (scans, join, agg, sort/limit)", len(as))
	}
	for i, a := range as {
		if len(a.Input) == 0 {
			t.Errorf("act %d has empty input", i)
		}
		if a.Target == "" || a.Sentence == "" {
			t.Errorf("act %d has empty output", i)
		}
	}
}

// The central property: detagging the tagged target reproduces the
// untagged RULE-LANTERN sentence exactly (Detag ∘ Tag = identity).
func TestDetagRoundTrip(t *testing.T) {
	store := pool.NewSeededStore()
	queries := []string{
		q3ish,
		"SELECT c_name FROM customer WHERE c_custkey = 5",
		"SELECT o_orderkey FROM orders WHERE o_totalprice > 1000 ORDER BY o_orderkey LIMIT 3",
		"SELECT DISTINCT c_mktsegment FROM customer",
		"SELECT n.n_name, COUNT(*) FROM nation n, region r WHERE n.n_regionkey = r.r_regionkey GROUP BY n.n_name",
	}
	for _, q := range queries {
		tree := tpchTree(t, q)
		as, err := Decompose(tree, store)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		for i, a := range as {
			got := core.Detag(a.Target, a.Tags)
			if got != a.Sentence {
				t.Errorf("%s act %d:\n  tagged:  %s\n  detag:   %s\n  want:    %s",
					q, i, a.Target, got, a.Sentence)
			}
		}
	}
}

func TestTargetsContainTagsNotValues(t *testing.T) {
	store := pool.NewSeededStore()
	tree := tpchTree(t, q3ish)
	as, err := Decompose(tree, store)
	if err != nil {
		t.Fatal(err)
	}
	joined := ""
	for _, a := range as {
		joined += a.Target + "\n"
	}
	// Schema-dependent strings must not leak into the tagged outputs.
	for _, leak := range []string{"customer", "orders", "c_custkey", "BUILDING"} {
		if strings.Contains(joined, leak) {
			t.Errorf("tagged outputs leak %q:\n%s", leak, joined)
		}
	}
	if !strings.Contains(joined, core.TagTable) {
		t.Errorf("no %s tag:\n%s", core.TagTable, joined)
	}
}

func TestInputSchemaIndependence(t *testing.T) {
	// The same logical act over two different databases must serialize to
	// the same input token sequence — the property that makes the model
	// transfer across application domains (the paper trains on TPC-H/SDSS
	// and tests on IMDB).
	store := pool.NewSeededStore()
	treeA := tpchTree(t, "SELECT c_name FROM customer WHERE c_mktsegment = 'BUILDING'")
	e := engine.NewDefault()
	if err := datasets.LoadIMDB(e, 0.02, 1); err != nil {
		t.Fatal(err)
	}
	r, err := e.Exec("EXPLAIN (FORMAT JSON) SELECT id FROM title WHERE production_year = 1990")
	if err != nil {
		t.Fatal(err)
	}
	treeB, err := plan.ParsePostgresJSON(r.Plan)
	if err != nil {
		t.Fatal(err)
	}
	actsA, err := Decompose(treeA, store)
	if err != nil {
		t.Fatal(err)
	}
	actsB, err := Decompose(treeB, store)
	if err != nil {
		t.Fatal(err)
	}
	a := strings.Join(actsA[0].Input, " ")
	b := strings.Join(actsB[0].Input, " ")
	if a != b {
		t.Errorf("inputs differ across schemas: %q vs %q", a, b)
	}
}

func TestInputVocabulary(t *testing.T) {
	store := pool.NewSeededStore()
	vocab := InputVocabulary(store)
	if len(vocab) < 25 || len(vocab) > 50 {
		t.Errorf("input vocabulary size = %d, want ~36 (paper)", len(vocab))
	}
	seen := map[string]bool{}
	for _, w := range vocab {
		if seen[w] {
			t.Errorf("duplicate vocab entry %q", w)
		}
		seen[w] = true
	}
	for _, must := range []string{"hashjoin", "seqscan", core.TagTable, core.TagJoinCond} {
		if !seen[must] {
			t.Errorf("vocabulary lacks %q", must)
		}
	}
}

func TestOutputVocabulary(t *testing.T) {
	targets := []string{
		"perform sequential scan on <T> and filtering on <F> to get the intermediate relation <TN>.",
		"hash <T> and perform hash join on <T> and <T> on condition <C> to get the final results.",
	}
	vocab := OutputVocabulary(targets)
	if vocab[0] != "<BOS>" || vocab[1] != "<EOS>" {
		t.Fatalf("reserved slots wrong: %v", vocab[:2])
	}
	seen := map[string]bool{}
	for _, w := range vocab {
		if seen[w] {
			t.Errorf("duplicate %q", w)
		}
		seen[w] = true
	}
	if !seen["perform"] || !seen["<T>"] {
		t.Errorf("vocab = %v", vocab)
	}
}

func TestActCountMatchesNarration(t *testing.T) {
	// Acts correspond 1:1 to narration steps (the paper decomposes the 22
	// TPC-H plans into 544 acts: every plan yields #steps acts).
	store := pool.NewSeededStore()
	e := engine.NewDefault()
	if err := datasets.LoadTPCH(e, 0.02, 1); err != nil {
		t.Fatal(err)
	}
	rl := core.NewRuleLantern(store)
	total := 0
	for _, w := range datasets.TPCHWorkload()[:8] {
		r, err := e.Exec("EXPLAIN (FORMAT JSON) " + w.SQL)
		if err != nil {
			t.Fatal(err)
		}
		tree, err := plan.ParsePostgresJSON(r.Plan)
		if err != nil {
			t.Fatal(err)
		}
		nar, err := rl.Narrate(tree)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		as, err := Decompose(tree, store)
		if err != nil {
			t.Fatal(err)
		}
		if len(as) != len(nar.Steps) {
			t.Errorf("%s: acts = %d, steps = %d", w.Name, len(as), len(nar.Steps))
		}
		total += len(as)
	}
	if total < 20 {
		t.Errorf("total acts over 8 TPC-H queries = %d, implausibly few", total)
	}
}

func ExampleInputTokens() {
	store := pool.NewSeededStore()
	e := engine.NewDefault()
	_, _ = e.ExecScript(`CREATE TABLE t (a INTEGER); INSERT INTO t VALUES (1), (2);`)
	r, _ := e.Exec("EXPLAIN (FORMAT JSON) SELECT a FROM t WHERE a = 1")
	tree, _ := plan.ParsePostgresJSON(r.Plan)
	as, _ := Decompose(tree, store)
	fmt.Println(strings.Join(as[0].Input, " "))
	// Output: seqscan <T> <F>
}
