package embed

import (
	"math/rand"
	"strings"
)

// GenericCorpus generates the bundled "pre-training" corpus: a deterministic
// synthetic stand-in for the web-scale corpora (Wikipedia, Google News) the
// paper's downloaded vectors were trained on. It interleaves general-English
// template sentences with database-flavoured ones so that every word
// RULE-LANTERN can emit appears in many varied contexts — the property that
// makes pre-trained vectors beat self-trained ones in Figure 7(a).
func GenericCorpus(nSentences int, seed int64) [][]string {
	rng := rand.New(rand.NewSource(seed))
	subjects := []string{
		"the system", "a database", "the engine", "every student", "the teacher",
		"a learner", "the optimizer", "the server", "an application", "the library",
		"a scientist", "the planner", "our team", "the museum", "a visitor",
	}
	verbs := []string{
		"will perform", "can execute", "should run", "must process", "might compute",
		"will sort", "can filter", "should join", "must scan", "will aggregate",
		"can materialize", "should keep", "will produce", "can acquire", "must obtain",
	}
	objects := []string{
		"the sequential scan", "an index scan", "the hash join", "a merge join",
		"the nested loop join", "every relation", "the intermediate relation",
		"a temporary table", "the final results", "the requested rows",
		"a grouping attribute", "the sort order", "the filtering condition",
		"a join condition", "the duplicate removal", "the first rows",
		"an aggregate", "the hash table", "an index structure", "the output",
	}
	tails := []string{
		"quickly and carefully", "to get the final results", "on the condition given",
		"with grouping on attribute values", "and filtering on a predicate",
		"using an index on the key", "before sorting the output",
		"to obtain the outcome", "while separating the rows", "after hashing the input",
		"during the evaluation", "in a single pass", "and keep only matching tuples",
		"by merging sorted inputs", "through repeated probing",
	}
	connectors := []string{
		"meanwhile", "therefore", "however", "in practice", "for example",
		"as a result", "in the classroom", "during the lecture", "at scale",
	}
	out := make([][]string, 0, nSentences)
	for i := 0; i < nSentences; i++ {
		var parts []string
		if rng.Float64() < 0.3 {
			parts = append(parts, connectors[rng.Intn(len(connectors))])
		}
		parts = append(parts,
			subjects[rng.Intn(len(subjects))],
			verbs[rng.Intn(len(verbs))],
			objects[rng.Intn(len(objects))],
			tails[rng.Intn(len(tails))],
		)
		sentence := strings.Fields(strings.ToLower(strings.Join(parts, " ")))
		out = append(out, sentence)
	}
	return out
}

// TokenizeCorpus splits raw sentences into the token format the trainers
// consume (lower-cased whitespace tokens).
func TokenizeCorpus(sentences []string) [][]string {
	out := make([][]string, 0, len(sentences))
	for _, s := range sentences {
		toks := strings.Fields(strings.ToLower(s))
		if len(toks) > 0 {
			out = append(out, toks)
		}
	}
	return out
}
