package embed

import (
	"math"
	"testing"
)

// clusterCorpus builds a corpus where "cat" and "dog" share contexts while
// "table" lives in different ones, so any sane embedding should place
// cat/dog closer than cat/table.
func clusterCorpus() [][]string {
	var out [][]string
	animalCtx := [][]string{
		{"the", "X", "runs", "in", "the", "park"},
		{"a", "X", "eats", "its", "food", "daily"},
		{"my", "X", "sleeps", "on", "the", "sofa"},
		{"the", "X", "plays", "with", "children"},
	}
	thingCtx := [][]string{
		{"the", "X", "stores", "many", "rows"},
		{"a", "X", "holds", "indexed", "records"},
		{"the", "X", "joins", "with", "another", "relation"},
	}
	fill := func(word string, ctxs [][]string, reps int) {
		for r := 0; r < reps; r++ {
			for _, c := range ctxs {
				sent := make([]string, len(c))
				for i, w := range c {
					if w == "X" {
						sent[i] = word
					} else {
						sent[i] = w
					}
				}
				out = append(out, sent)
			}
		}
	}
	fill("cat", animalCtx, 20)
	fill("dog", animalCtx, 20)
	fill("table", thingCtx, 20)
	return out
}

func TestWord2VecSimilarityStructure(t *testing.T) {
	e := TrainWord2Vec(clusterCorpus(), DefaultWord2Vec(16))
	catDog := e.Cosine("cat", "dog")
	catTable := e.Cosine("cat", "table")
	if catDog <= catTable {
		t.Errorf("word2vec: cos(cat,dog)=%.3f should exceed cos(cat,table)=%.3f", catDog, catTable)
	}
}

func TestGloVeSimilarityStructure(t *testing.T) {
	e := TrainGloVe(clusterCorpus(), DefaultGloVe(16))
	catDog := e.Cosine("cat", "dog")
	catTable := e.Cosine("cat", "table")
	if catDog <= catTable {
		t.Errorf("glove: cos(cat,dog)=%.3f should exceed cos(cat,table)=%.3f", catDog, catTable)
	}
}

func TestContextualSimilarityStructure(t *testing.T) {
	cfg := DefaultContextual(16, ModeBERT)
	cfg.Epochs = 2
	m := TrainBiLM(clusterCorpus(), cfg)
	e := m.ExtractStatic(clusterCorpus())
	catDog := e.Cosine("cat", "dog")
	catTable := e.Cosine("cat", "table")
	if catDog <= catTable {
		t.Errorf("bilm: cos(cat,dog)=%.3f should exceed cos(cat,table)=%.3f", catDog, catTable)
	}
}

func TestContextualModes(t *testing.T) {
	corpus := clusterCorpus()[:30]
	bert := TrainBiLM(corpus, ContextualConfigWith(8, ModeBERT))
	elmo := TrainBiLM(corpus, ContextualConfigWith(8, ModeELMo))
	eb := bert.ExtractStatic(corpus)
	ee := elmo.ExtractStatic(corpus)
	if eb.Name != "bert" || ee.Name != "elmo" {
		t.Errorf("names = %s, %s", eb.Name, ee.Name)
	}
	// The extraction modes must differ.
	vb, ve := eb.Vector("cat"), ee.Vector("cat")
	same := true
	for i := range vb {
		if math.Abs(vb[i]-ve[i]) > 1e-12 {
			same = false
		}
	}
	if same {
		t.Error("BERT and ELMo extraction produced identical vectors")
	}
}

// ContextualConfigWith is a test helper pairing dims with fast settings.
func ContextualConfigWith(dim int, mode ContextualMode) ContextualConfig {
	cfg := DefaultContextual(dim, mode)
	cfg.Epochs = 1
	return cfg
}

func TestEmbeddingTable(t *testing.T) {
	e := NewEmbedding("test", 3)
	e.Set("a", []float64{1, 2, 3})
	if !e.Has("a") || e.Has("b") {
		t.Error("Has wrong")
	}
	if v := e.Vector("missing"); len(v) != 3 || v[0] != 0 {
		t.Errorf("missing vector = %v", v)
	}
	m := e.Matrix([]string{"a", "missing"})
	if m[0][1] != 2 || m[1][2] != 0 {
		t.Errorf("matrix = %v", m)
	}
	if got := e.Words(); len(got) != 1 || got[0] != "a" {
		t.Errorf("words = %v", got)
	}
}

func TestCosineEdgeCases(t *testing.T) {
	e := NewEmbedding("test", 2)
	e.Set("a", []float64{1, 0})
	e.Set("b", []float64{1, 0})
	e.Set("c", []float64{0, 1})
	if math.Abs(e.Cosine("a", "b")-1) > 1e-12 {
		t.Error("identical vectors should have cosine 1")
	}
	if e.Cosine("a", "c") != 0 {
		t.Error("orthogonal vectors should have cosine 0")
	}
	if e.Cosine("a", "zero") != 0 {
		t.Error("missing word should have cosine 0")
	}
}

func TestGenericCorpusDeterministic(t *testing.T) {
	a := GenericCorpus(50, 7)
	b := GenericCorpus(50, 7)
	if len(a) != 50 || len(b) != 50 {
		t.Fatalf("sizes = %d, %d", len(a), len(b))
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatal("corpus not deterministic")
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("corpus not deterministic")
			}
		}
	}
	c := GenericCorpus(50, 8)
	diff := false
	for i := range a {
		if len(a[i]) != len(c[i]) {
			diff = true
			break
		}
	}
	if !diff {
		// Same lengths are possible; compare content.
		for i := range a {
			for j := range a[i] {
				if j < len(c[i]) && a[i][j] != c[i][j] {
					diff = true
				}
			}
		}
	}
	if !diff {
		t.Error("different seeds should give different corpora")
	}
}

func TestGenericCorpusCoversNarrationVocabulary(t *testing.T) {
	corpus := GenericCorpus(3000, 1)
	seen := map[string]bool{}
	for _, s := range corpus {
		for _, w := range s {
			seen[w] = true
		}
	}
	for _, w := range []string{
		"perform", "sequential", "scan", "hash", "join", "sort", "filtering",
		"grouping", "attribute", "intermediate", "relation", "final", "results",
		"duplicate", "removal", "index", "aggregate", "condition",
	} {
		if !seen[w] {
			t.Errorf("corpus lacks narration word %q", w)
		}
	}
}

func TestTokenizeCorpus(t *testing.T) {
	out := TokenizeCorpus([]string{"Hello World", "", "  ", "One"})
	if len(out) != 2 || out[0][0] != "hello" {
		t.Errorf("tokenized = %v", out)
	}
}
