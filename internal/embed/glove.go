package embed

import (
	"math"
	"math/rand"
)

// GloVeConfig controls GloVe training.
type GloVeConfig struct {
	Dim    int
	Window int
	Epochs int
	LR     float64
	XMax   float64 // weighting cutoff, paper value 100 (scaled corpora use less)
	Seed   int64
}

// DefaultGloVe returns a configuration suited to the bundled corpus.
func DefaultGloVe(dim int) GloVeConfig {
	return GloVeConfig{Dim: dim, Window: 4, Epochs: 25, LR: 0.05, XMax: 20, Seed: 1}
}

// TrainGloVe trains GloVe vectors [44]: stochastic gradient descent on the
// weighted least-squares objective
//
//	Σ_{ij} f(X_ij) (w_iᵀ w̃_j + b_i + b̃_j − log X_ij)²
//
// over the corpus co-occurrence matrix X with f(x) = min(1, (x/xmax)^α).
func TrainGloVe(corpus [][]string, cfg GloVeConfig) *Embedding {
	vocab, _ := buildVocab(corpus, 1)
	idx := make(map[string]int, len(vocab))
	for i, w := range vocab {
		idx[w] = i
	}
	// Co-occurrence counts with distance weighting 1/d.
	type pair struct{ i, j int }
	cooc := make(map[pair]float64)
	for _, sent := range corpus {
		for pos, word := range sent {
			wi := idx[word]
			for d := 1; d <= cfg.Window && pos+d < len(sent); d++ {
				wj := idx[sent[pos+d]]
				cooc[pair{wi, wj}] += 1 / float64(d)
				cooc[pair{wj, wi}] += 1 / float64(d)
			}
		}
	}
	type entry struct {
		i, j int
		x    float64
	}
	entries := make([]entry, 0, len(cooc))
	for p, x := range cooc {
		entries = append(entries, entry{p.i, p.j, x})
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	v := len(vocab)
	w := randMat(v, cfg.Dim, rng)
	wt := randMat(v, cfg.Dim, rng)
	b := make([]float64, v)
	bt := make([]float64, v)

	const alpha = 0.75
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(entries), func(a, c int) { entries[a], entries[c] = entries[c], entries[a] })
		for _, e := range entries {
			weight := 1.0
			if e.x < cfg.XMax {
				weight = math.Pow(e.x/cfg.XMax, alpha)
			}
			dot := b[e.i] + bt[e.j]
			for k := 0; k < cfg.Dim; k++ {
				dot += w[e.i][k] * wt[e.j][k]
			}
			diff := dot - math.Log(e.x)
			g := cfg.LR * weight * diff
			for k := 0; k < cfg.Dim; k++ {
				wi, wj := w[e.i][k], wt[e.j][k]
				w[e.i][k] -= g * wj
				wt[e.j][k] -= g * wi
			}
			b[e.i] -= g
			bt[e.j] -= g
		}
	}

	// Final vectors are the sum of the two roles, as in the GloVe paper.
	e := NewEmbedding("glove", cfg.Dim)
	for i, word := range vocab {
		vec := make([]float64, cfg.Dim)
		for k := 0; k < cfg.Dim; k++ {
			vec[k] = w[i][k] + wt[i][k]
		}
		e.Set(word, vec)
	}
	return e
}

func randMat(r, c int, rng *rand.Rand) [][]float64 {
	out := make([][]float64, r)
	for i := range out {
		out[i] = make([]float64, c)
		for j := range out[i] {
			out[i][j] = (rng.Float64() - 0.5) / float64(c)
		}
	}
	return out
}
