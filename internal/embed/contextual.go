package embed

import (
	"math"
	"math/rand"

	"lantern/internal/nn"
)

// ContextualMode selects which pre-trained contextual family is simulated.
type ContextualMode int

// The two contextual extraction modes. Both read a bidirectional LSTM
// language model; they differ in how a word's representation is extracted,
// mirroring the paper's usage: BERT takes "the representation from its last
// layer", ELMo takes "a linear combination of the vectors" of its layers
// (here: the hidden layer mixed with the tiled input embedding).
const (
	ModeBERT ContextualMode = iota
	ModeELMo
)

// ContextualConfig controls biLM training.
type ContextualConfig struct {
	Dim    int // output vector dimension (hidden is Dim/2 per direction)
	EmbDim int // internal input embedding size
	Epochs int
	LR     float64
	Seed   int64
	Mode   ContextualMode
}

// DefaultContextual returns a configuration for the given output dimension
// (the paper's are 768 for BERT and 1024 for ELMo).
func DefaultContextual(dim int, mode ContextualMode) ContextualConfig {
	return ContextualConfig{Dim: dim, EmbDim: 16, Epochs: 3, LR: 0.05, Seed: 1, Mode: mode}
}

// BiLM is a trained bidirectional LSTM language model from which
// contextual word vectors are extracted.
type BiLM struct {
	cfg   ContextualConfig
	vocab []string
	idx   map[string]int
	emb   *nn.Mat
	fwd   *nn.LSTMCell
	bwd   *nn.LSTMCell
	wOutF *nn.Mat
	wOutB *nn.Mat
}

// TrainBiLM trains the forward and backward language models on the corpus
// with plain SGD and cross-entropy (next-token / previous-token targets).
func TrainBiLM(corpus [][]string, cfg ContextualConfig) *BiLM {
	vocab, _ := buildVocab(corpus, 1)
	idx := make(map[string]int, len(vocab))
	for i, w := range vocab {
		idx[w] = i
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	hidden := cfg.Dim / 2
	if hidden < 1 {
		hidden = 1
	}
	m := &BiLM{
		cfg: cfg, vocab: vocab, idx: idx,
		emb:   nn.NewMatUniform(len(vocab), cfg.EmbDim, 0.1, rng),
		fwd:   nn.NewLSTMCell(cfg.EmbDim, hidden, 0.1, rng),
		bwd:   nn.NewLSTMCell(cfg.EmbDim, hidden, 0.1, rng),
		wOutF: nn.NewMatUniform(len(vocab), hidden, 0.1, rng),
		wOutB: nn.NewMatUniform(len(vocab), hidden, 0.1, rng),
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for _, sent := range corpus {
			if len(sent) < 2 {
				continue
			}
			m.trainDirection(sent, false)
			m.trainDirection(sent, true)
		}
	}
	return m
}

// trainDirection runs one truncated-BPTT pass over a sentence in the given
// direction (reverse = backward LM). Gradients are applied per sentence.
func (m *BiLM) trainDirection(sent []string, reverse bool) {
	hidden := len(m.wOutF.Row(0))
	cell, wOut := m.fwd, m.wOutF
	if reverse {
		cell, wOut = m.bwd, m.wOutB
	}
	seq := make([]int, len(sent))
	for i, w := range sent {
		seq[i] = m.idx[w]
	}
	if reverse {
		for i, j := 0, len(seq)-1; i < j; i, j = i+1, j-1 {
			seq[i], seq[j] = seq[j], seq[i]
		}
	}
	h := make([]float64, hidden)
	c := make([]float64, hidden)
	type step struct {
		state *nn.LSTMState
		probs []float64
		tok   int
		tgt   int
	}
	var steps []step
	for t := 0; t+1 < len(seq); t++ {
		st := cell.Forward(m.emb.Row(seq[t]), h, c)
		probs := softmaxSlice(wOut.MulVec(st.H()))
		steps = append(steps, step{state: st, probs: probs, tok: seq[t], tgt: seq[t+1]})
		h, c = st.H(), st.C()
	}
	dhNext := make([]float64, hidden)
	dcNext := make([]float64, hidden)
	for t := len(steps) - 1; t >= 0; t-- {
		s := steps[t]
		dLogits := make([]float64, len(s.probs))
		copy(dLogits, s.probs)
		dLogits[s.tgt] -= 1
		wOut.AddOuterGrad(dLogits, s.state.H())
		dH := wOut.MulVecT(dLogits)
		for k := range dhNext {
			dH[k] += dhNext[k]
		}
		dhPrev, dcPrev, dX := cell.Backward(s.state, dH, dcNext)
		for k, v := range dX {
			m.emb.GradRow(s.tok)[k] += v
		}
		dhNext, dcNext = dhPrev, dcPrev
	}
	lr := m.cfg.LR
	m.emb.Step(lr)
	wOut.Step(lr)
	for _, p := range cell.Params() {
		p.Step(lr)
	}
}

func softmaxSlice(xs []float64) []float64 {
	max := xs[0]
	for _, v := range xs[1:] {
		if v > max {
			max = v
		}
	}
	sum := 0.0
	out := make([]float64, len(xs))
	for i, v := range xs {
		out[i] = math.Exp(v - max)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// ExtractStatic averages each word's contextual representation over its
// occurrences in the corpus, producing the fixed decoder-embedding table
// the QEP2Seq model consumes.
func (m *BiLM) ExtractStatic(corpus [][]string) *Embedding {
	name := "bert"
	if m.cfg.Mode == ModeELMo {
		name = "elmo"
	}
	e := NewEmbedding(name, m.cfg.Dim)
	sums := make(map[string][]float64)
	counts := make(map[string]int)
	hidden := m.cfg.Dim / 2
	for _, sent := range corpus {
		fwdH := m.runDirection(sent, false)
		bwdH := m.runDirection(sent, true)
		for i, w := range sent {
			vec := make([]float64, m.cfg.Dim)
			copy(vec[:hidden], fwdH[i])
			copy(vec[hidden:], bwdH[len(sent)-1-i])
			if m.cfg.Mode == ModeELMo {
				// Linear combination with the (tiled) input embedding layer.
				embRow := m.emb.Row(m.idx[w])
				for k := range vec {
					vec[k] = 0.5*vec[k] + 0.5*embRow[k%len(embRow)]
				}
			}
			if sums[w] == nil {
				sums[w] = make([]float64, m.cfg.Dim)
			}
			for k, v := range vec {
				sums[w][k] += v
			}
			counts[w]++
		}
	}
	for w, sum := range sums {
		for k := range sum {
			sum[k] /= float64(counts[w])
		}
		e.Set(w, sum)
	}
	return e
}

// runDirection returns per-position hidden states in the given direction.
func (m *BiLM) runDirection(sent []string, reverse bool) [][]float64 {
	hidden := m.cfg.Dim / 2
	cell := m.fwd
	if reverse {
		cell = m.bwd
	}
	seq := make([]int, len(sent))
	for i, w := range sent {
		if id, ok := m.idx[w]; ok {
			seq[i] = id
		}
	}
	if reverse {
		for i, j := 0, len(seq)-1; i < j; i, j = i+1, j-1 {
			seq[i], seq[j] = seq[j], seq[i]
		}
	}
	h := make([]float64, hidden)
	c := make([]float64, hidden)
	out := make([][]float64, len(seq))
	for t, tok := range seq {
		st := cell.Forward(m.emb.Row(tok), h, c)
		h, c = st.H(), st.C()
		out[t] = h
	}
	return out
}
