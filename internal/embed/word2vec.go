package embed

import (
	"math"
	"math/rand"
)

// Word2VecConfig controls skip-gram training.
type Word2VecConfig struct {
	Dim       int
	Window    int // context window radius
	Negatives int // negative samples per positive pair
	Epochs    int
	LR        float64
	MinCount  int
	Seed      int64
}

// DefaultWord2Vec matches a scaled-down word2vec run (the paper uses the
// 128-dimensional Google News vectors; dimension is caller-chosen).
func DefaultWord2Vec(dim int) Word2VecConfig {
	return Word2VecConfig{Dim: dim, Window: 3, Negatives: 5, Epochs: 8, LR: 0.05, MinCount: 1, Seed: 1}
}

// TrainWord2Vec trains skip-gram-with-negative-sampling vectors [38] on a
// tokenized corpus.
func TrainWord2Vec(corpus [][]string, cfg Word2VecConfig) *Embedding {
	vocab, counts := buildVocab(corpus, cfg.MinCount)
	idx := make(map[string]int, len(vocab))
	for i, w := range vocab {
		idx[w] = i
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	v := len(vocab)
	in := make([][]float64, v)  // input (center) vectors
	out := make([][]float64, v) // output (context) vectors
	for i := 0; i < v; i++ {
		in[i] = make([]float64, cfg.Dim)
		out[i] = make([]float64, cfg.Dim)
		for j := range in[i] {
			in[i][j] = (rng.Float64() - 0.5) / float64(cfg.Dim)
		}
	}

	// Unigram^0.75 negative-sampling table.
	table := buildUnigramTable(vocab, counts)

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for _, sent := range corpus {
			for pos, word := range sent {
				ci, ok := idx[word]
				if !ok {
					continue
				}
				lo := pos - cfg.Window
				if lo < 0 {
					lo = 0
				}
				hi := pos + cfg.Window
				if hi >= len(sent) {
					hi = len(sent) - 1
				}
				for cpos := lo; cpos <= hi; cpos++ {
					if cpos == pos {
						continue
					}
					ti, ok := idx[sent[cpos]]
					if !ok {
						continue
					}
					trainPair(in[ci], out, ti, table, cfg, rng)
				}
			}
		}
	}

	e := NewEmbedding("word2vec", cfg.Dim)
	for i, w := range vocab {
		e.Set(w, in[i])
	}
	return e
}

// trainPair applies one positive update and cfg.Negatives negative ones.
func trainPair(center []float64, out [][]float64, target int, table []int, cfg Word2VecConfig, rng *rand.Rand) {
	grad := make([]float64, cfg.Dim)
	update := func(ti int, label float64) {
		o := out[ti]
		dot := 0.0
		for j := range center {
			dot += center[j] * o[j]
		}
		g := (sigmoidf(dot) - label) * cfg.LR
		for j := range center {
			grad[j] += g * o[j]
			o[j] -= g * center[j]
		}
	}
	update(target, 1)
	for n := 0; n < cfg.Negatives; n++ {
		ni := table[rng.Intn(len(table))]
		if ni == target {
			continue
		}
		update(ni, 0)
	}
	for j := range center {
		center[j] -= grad[j]
	}
}

func sigmoidf(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// buildUnigramTable returns a sampling table where word i appears
// proportionally to count^0.75 (word2vec's negative-sampling distribution).
func buildUnigramTable(vocab []string, counts map[string]int) []int {
	const tableSize = 10000
	total := 0.0
	pows := make([]float64, len(vocab))
	for i, w := range vocab {
		pows[i] = math.Pow(float64(counts[w]), 0.75)
		total += pows[i]
	}
	table := make([]int, 0, tableSize)
	for i := range vocab {
		n := int(pows[i] / total * tableSize)
		if n < 1 {
			n = 1
		}
		for k := 0; k < n; k++ {
			table = append(table, i)
		}
	}
	return table
}
