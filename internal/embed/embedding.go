// Package embed trains the word vectors NEURAL-LANTERN's decoder consumes
// (paper §6.4.1): Word2Vec (skip-gram with negative sampling, [38]), GloVe
// (weighted least squares over co-occurrence counts, [44]), and contextual
// vectors from a bidirectional LSTM language model standing in for ELMo [45]
// and BERT [23].
//
// Substitution note (see DESIGN.md): the paper downloads checkpoints
// pre-trained on web-scale corpora. Offline, we train the same model
// families at the paper's dimensions on a bundled synthetic generic corpus
// (corpus.go) that is much larger and more varied than the task corpus.
// The paper's comparisons are relative — pre-trained beats random
// initialization and beats self-training on RULE-LANTERN output — and those
// relatives are preserved.
package embed

import (
	"math"
	"sort"
)

// Embedding is a static word-vector table.
type Embedding struct {
	Name string
	Dim  int
	vecs map[string][]float64
}

// NewEmbedding creates an empty table.
func NewEmbedding(name string, dim int) *Embedding {
	return &Embedding{Name: name, Dim: dim, vecs: make(map[string][]float64)}
}

// Set stores a word vector.
func (e *Embedding) Set(word string, vec []float64) { e.vecs[word] = vec }

// Vector returns the vector for a word; unknown words get the zero vector.
func (e *Embedding) Vector(word string) []float64 {
	if v, ok := e.vecs[word]; ok {
		return v
	}
	return make([]float64, e.Dim)
}

// Has reports whether the word is in the table.
func (e *Embedding) Has(word string) bool {
	_, ok := e.vecs[word]
	return ok
}

// Words lists the vocabulary, sorted.
func (e *Embedding) Words() []string {
	out := make([]string, 0, len(e.vecs))
	for w := range e.vecs {
		out = append(out, w)
	}
	sort.Strings(out)
	return out
}

// Matrix materializes rows for the given vocabulary, in order — the shape
// nn.Model.SetDecoderEmbedding expects.
func (e *Embedding) Matrix(vocab []string) [][]float64 {
	out := make([][]float64, len(vocab))
	for i, w := range vocab {
		v := e.Vector(w)
		row := make([]float64, e.Dim)
		copy(row, v)
		out[i] = row
	}
	return out
}

// Cosine returns the cosine similarity of two words (0 when either vector
// is zero).
func (e *Embedding) Cosine(a, b string) float64 {
	va, vb := e.Vector(a), e.Vector(b)
	dot, na, nb := 0.0, 0.0, 0.0
	for i := range va {
		dot += va[i] * vb[i]
		na += va[i] * va[i]
		nb += vb[i] * vb[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// buildVocab returns words with at least minCount occurrences, plus the
// total token count and per-word counts.
func buildVocab(corpus [][]string, minCount int) ([]string, map[string]int) {
	counts := make(map[string]int)
	for _, sent := range corpus {
		for _, w := range sent {
			counts[w]++
		}
	}
	var vocab []string
	for w, c := range counts {
		if c >= minCount {
			vocab = append(vocab, w)
		}
	}
	sort.Strings(vocab)
	return vocab, counts
}
