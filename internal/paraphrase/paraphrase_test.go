package paraphrase

import (
	"strings"
	"testing"

	"lantern/internal/metrics"
)

const sample = "perform sequential scan on user and filtering on (age > 10) to get the final results."

func TestDeterminism(t *testing.T) {
	for _, tool := range Tools() {
		a := tool.Paraphrase(sample)
		b := tool.Paraphrase(sample)
		if a != b {
			t.Errorf("%s is nondeterministic:\n  %s\n  %s", tool.Name(), a, b)
		}
	}
}

func TestToolsProduceDistinctOutputs(t *testing.T) {
	outputs := map[string]string{}
	for _, tool := range Tools() {
		outputs[tool.Name()] = tool.Paraphrase(sample)
	}
	if len(outputs) != 3 {
		t.Fatalf("tools = %d", len(outputs))
	}
	distinct := map[string]bool{}
	for _, o := range outputs {
		distinct[o] = true
	}
	if len(distinct) < 2 {
		t.Errorf("tools collapse to the same output: %v", outputs)
	}
}

func TestProtectedTokensPreserved(t *testing.T) {
	in := "perform index scan on <T> and filtering on <F> to get the intermediate relation T1 with $R1$ and (c_acctbal > 100)"
	for _, tool := range Tools() {
		out := tool.Paraphrase(in)
		for _, must := range []string{"<T>", "<F>", "T1", "$R1$", "(c_acctbal > 100)"} {
			if !strings.Contains(out, must) {
				t.Errorf("%s lost %q:\n  %s", tool.Name(), must, out)
			}
		}
	}
}

func TestAggressiveNearMiss(t *testing.T) {
	// The Table 2 phenomenon: across many sentences the aggressive tool
	// sometimes writes "separating" where "filtering" stood.
	tool := NewAggressive()
	found := false
	for i := 0; i < 40 && !found; i++ {
		s := strings.Replace(sample, "user", strings.Repeat("u", i+1), 1)
		if strings.Contains(tool.Paraphrase(s), "separating") {
			found = true
		}
	}
	if !found {
		t.Error("aggressive tool never produced the near-miss 'separating'")
	}
}

func TestDiversityOrderingMatchesTable4(t *testing.T) {
	// Table 4 orders the tools by diversity: quillbot (0.309) most diverse,
	// paraphrasing-tool (0.502) next, prepostseo (0.603) least.
	sentences := []string{
		"perform sequential scan on user and filtering on (age > 10) to get the final results.",
		"perform hash join on orders and customer on condition (a = b) to get the intermediate relation T2.",
		"sort T2 and perform aggregate on T2 with grouping on attribute name to get the final results.",
		"perform index scan on customer using index on custkey and filtering on (k = 7).",
		"perform duplicate removal on T3 to get the final results.",
		"keep only the first requested rows of T1 to get the final results.",
	}
	score := func(tool Tool) float64 {
		sum := 0.0
		for _, s := range sentences {
			sum += metrics.SelfBLEU([]string{s, tool.Paraphrase(s)})
		}
		return sum / float64(len(sentences))
	}
	agg := score(NewAggressive())
	mid := score(NewRestructurer())
	con := score(NewConservative())
	if !(agg < mid && mid < con) {
		t.Errorf("diversity ordering violated: quillbot=%.3f paraphrasing-tool=%.3f prepostseo=%.3f",
			agg, mid, con)
	}
	if con >= 1.0 {
		t.Errorf("conservative tool produced no variation at all: %.3f", con)
	}
}

func TestExpandGroup(t *testing.T) {
	group := Expand(sample, Tools())
	if group[0] != sample {
		t.Error("original must come first")
	}
	if len(group) < 3 {
		t.Errorf("group size = %d, want >= 3 (paper expands ~3x)", len(group))
	}
	seen := map[string]bool{}
	for _, g := range group {
		if seen[g] {
			t.Errorf("duplicate in group: %s", g)
		}
		seen[g] = true
	}
}

func TestExpandRejectsTagLoss(t *testing.T) {
	// A variant that drops a special tag must be eliminated, mirroring the
	// paper's manual removal of invalid tool outputs.
	in := "perform index scan on <T> and filtering on <F>"
	group := Expand(in, Tools())
	for _, g := range group {
		if strings.Count(g, "<") != 2 {
			t.Errorf("variant lost tags: %s", g)
		}
	}
}

func TestExpandEmptyToolList(t *testing.T) {
	group := Expand(sample, nil)
	if len(group) != 1 || group[0] != sample {
		t.Errorf("group = %v", group)
	}
}

func TestRestructurerRewritesClause(t *testing.T) {
	tool := NewRestructurer()
	found := false
	for i := 0; i < 30 && !found; i++ {
		s := strings.Replace(sample, "user", strings.Repeat("x", i+1), 1)
		if strings.Contains(tool.Paraphrase(s), "keep rows which satisfy") {
			found = true
		}
	}
	if !found {
		t.Error("restructurer never rewrote the filtering clause")
	}
}
