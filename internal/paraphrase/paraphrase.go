// Package paraphrase provides three offline synonymous-sentence generators
// standing in for the three commercial web paraphrasing tools the paper
// uses ([8] paraphrasing-tool.com, [9] prepostseo, [10] quillbot) to
// diversify NEURAL-LANTERN's training data (§6.3).
//
// The substitution preserves what the pipeline needs from the originals:
//
//   - each tool produces a deterministic (per input) but distinct surface
//     form, so the expanded training set is ~3-4x the original (Table 4's
//     "#Samples per group");
//   - the tools differ in aggressiveness, so their Self-BLEU scores order
//     the same way as the paper's Table 4 (quillbot most diverse);
//   - the most aggressive tool occasionally picks a near-miss word
//     ("separating" for "filtering"), reproducing the Table 2 phenomenon
//     the paper observed — and later found harmless, even stimulating, in
//     US 4.
//
// Special tags (<T>, <F>, ...), intermediate identifiers (T1, T2, ...),
// placeholders ($R1$), and condition text in parentheses are never altered.
package paraphrase

import (
	"hash/fnv"
	"math/rand"
	"strings"
)

// Tool is one paraphrasing engine.
type Tool interface {
	// Name identifies the tool in reports (Table 4 rows).
	Name() string
	// Paraphrase rewrites a sentence. The output is deterministic for a
	// given (tool, input) pair.
	Paraphrase(s string) string
}

// Tools returns the three standard tools in the paper's citation order:
// [8] moderate restructurer, [9] conservative substituter, [10] aggressive
// rewriter.
func Tools() []Tool {
	return []Tool{NewRestructurer(), NewConservative(), NewAggressive()}
}

// protected reports whether a token must never be rewritten: special tags,
// placeholders, identifiers (T1...), numbers, quoted or parenthesized text,
// and SQL-ish fragments.
func protected(tok string) bool {
	if tok == "" {
		return true
	}
	if strings.ContainsAny(tok, "<>$()'\"=0123456789.") {
		return true
	}
	// Intermediate identifiers T1, T2, ... and ALL-CAPS keywords.
	if tok[0] == 'T' && len(tok) <= 3 {
		return true
	}
	if tok == strings.ToUpper(tok) && len(tok) > 1 {
		return true
	}
	return false
}

// seededRNG derives a deterministic RNG from the tool name and input.
func seededRNG(name, input string) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(name))
	h.Write([]byte(input))
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// substitute rewrites tokens through a synonym lexicon with probability p.
func substitute(s string, lex map[string][]string, p float64, rng *rand.Rand) string {
	toks := strings.Fields(s)
	for i, tok := range toks {
		if protected(tok) {
			continue
		}
		trail := ""
		word := tok
		for len(word) > 0 && (word[len(word)-1] == ',' || word[len(word)-1] == ';') {
			trail = string(word[len(word)-1]) + trail
			word = word[:len(word)-1]
		}
		alts, ok := lex[strings.ToLower(word)]
		if !ok || len(alts) == 0 {
			continue
		}
		if rng.Float64() >= p {
			continue
		}
		toks[i] = alts[rng.Intn(len(alts))] + trail
	}
	return strings.Join(toks, " ")
}

// --- Tool [9]: conservative substituter -------------------------------------

type conservative struct{ lex map[string][]string }

// NewConservative builds the conservative tool ([9] in the paper): few,
// safe, single-word substitutions, hence the highest Self-BLEU.
func NewConservative() Tool {
	return &conservative{lex: map[string][]string{
		"perform": {"execute"},
		"get":     {"obtain"},
		"final":   {"ultimate"},
		"results": {"result set"},
		"keep":    {"retain"},
		"rows":    {"tuples"},
	}}
}

func (t *conservative) Name() string { return "prepostseo" }

func (t *conservative) Paraphrase(s string) string {
	rng := seededRNG(t.Name(), s)
	return substitute(s, t.lex, 0.7, rng)
}

// --- Tool [10]: aggressive rewriter ------------------------------------------

type aggressive struct{ lex map[string][]string }

// NewAggressive builds the aggressive tool ([10], quillbot-like): wide
// lexicon, high substitution rate, and deliberate near-miss entries
// (Table 2's "separating" for "filtering"), hence the lowest Self-BLEU.
func NewAggressive() Tool {
	return &aggressive{lex: map[string][]string{
		"perform":      {"execute", "carry out", "run"},
		"sequential":   {"serial", "sequenced"},
		"scan":         {"sweep", "pass"},
		"filtering":    {"separating", "selecting", "screening"},
		"join":         {"merge operation", "join operation"},
		"hash":         {"hashing of", "hash-based processing of"},
		"sort":         {"order", "arrange"},
		"grouping":     {"clustering", "bucketing"},
		"attribute":    {"column", "field"},
		"condition":    {"criteria", "predicate"},
		"get":          {"acquire", "derive", "produce"},
		"intermediate": {"temporary", "interim"},
		"relation":     {"table", "dataset"},
		"final":        {"conclusive", "definitive"},
		"results":      {"outcome", "output"},
		"duplicate":    {"repeated", "redundant"},
		"removal":      {"elimination", "deletion"},
		"index":        {"index structure"},
		"keep":         {"preserve", "hold"},
		"first":        {"initial", "leading"},
		"requested":    {"specified", "desired"},
		"using":        {"via", "through"},
		"aggregate":    {"aggregation", "summarization"},
	}}
}

func (t *aggressive) Name() string { return "quillbot" }

func (t *aggressive) Paraphrase(s string) string {
	rng := seededRNG(t.Name(), s)
	return substitute(s, t.lex, 0.85, rng)
}

// --- Tool [8]: moderate restructurer -----------------------------------------

type restructurer struct{ lex map[string][]string }

// NewRestructurer builds the moderate tool ([8]): light substitution plus
// clause restructuring, as in Table 2's third synonymous sentence
// ("execute sequential scan output on user and get user which age > 10").
func NewRestructurer() Tool {
	return &restructurer{lex: map[string][]string{
		"perform":      {"execute"},
		"get":          {"acquire"},
		"final":        {"conclusive"},
		"results":      {"outcome"},
		"intermediate": {"temporary"},
		"filtering":    {"selecting"},
	}}
}

func (t *restructurer) Name() string { return "paraphrasing-tool" }

func (t *restructurer) Paraphrase(s string) string {
	rng := seededRNG(t.Name(), s)
	out := substitute(s, t.lex, 0.6, rng)
	// Clause restructuring: rewrite the filtering clause into a relative
	// construction about half the time.
	if rng.Float64() < 0.5 {
		out = strings.Replace(out, " and filtering on ", " output and keep rows which satisfy ", 1)
		out = strings.Replace(out, " and selecting on ", " output and keep rows which satisfy ", 1)
	}
	if rng.Float64() < 0.5 {
		out = strings.Replace(out, "to get the", "and to get the", 1)
	}
	return out
}

// Expand applies every tool to a sentence and returns the deduplicated
// group of variants (the original first) — one Table 4 "group".
func Expand(s string, tools []Tool) []string {
	seen := map[string]bool{s: true}
	out := []string{s}
	for _, t := range tools {
		v := strings.TrimSpace(t.Paraphrase(s))
		if v == "" || seen[v] {
			continue
		}
		// Invalid-sentence elimination (the paper removes tool failures
		// manually): reject variants that lost or gained special tags.
		if tagCount(v) != tagCount(s) {
			continue
		}
		seen[v] = true
		out = append(out, v)
	}
	return out
}

func tagCount(s string) int {
	return strings.Count(s, "<") + strings.Count(s, "$")
}
