package nn

import (
	"math"
	"math/rand"
)

// LSTMCell implements exactly the cell of the paper's equations (2)–(6)
// (with bias terms):
//
//	i_t = sigmoid(U_i h_{t-1} + V_i x_t + b_i)      [input gate]
//	f_t = sigmoid(U_f h_{t-1} + V_f x_t + b_f)      [forget gate]
//	o_t = sigmoid(U_o h_{t-1} + V_o x_t + b_o)      [output gate]
//	c_t = i_t ⊙ tanh(U_c h_{t-1} + V_c x_t + b_c) + f_t ⊙ c_{t-1}
//	h_t = o_t ⊙ tanh(c_t)
type LSTMCell struct {
	InDim, Hidden int
	// Recurrent (U·) and input (V·) weights plus biases per gate.
	Ui, Vi, Uf, Vf, Uo, Vo, Uc, Vc *Mat
	Bi, Bf, Bo, Bc                 *Mat // hidden×1 bias vectors
}

// NewLSTMCell creates a cell with uniform [-scale, scale] initialization.
func NewLSTMCell(inDim, hidden int, scale float64, rng *rand.Rand) *LSTMCell {
	u := func() *Mat { return NewMatUniform(hidden, hidden, scale, rng) }
	v := func() *Mat { return NewMatUniform(hidden, inDim, scale, rng) }
	b := func() *Mat { return NewMatUniform(hidden, 1, scale, rng) }
	return &LSTMCell{
		InDim: inDim, Hidden: hidden,
		Ui: u(), Vi: v(), Uf: u(), Vf: v(),
		Uo: u(), Vo: v(), Uc: u(), Vc: v(),
		Bi: b(), Bf: b(), Bo: b(), Bc: b(),
	}
}

// Params lists every parameter matrix of the cell.
func (l *LSTMCell) Params() []*Mat {
	return []*Mat{l.Ui, l.Vi, l.Uf, l.Vf, l.Uo, l.Vo, l.Uc, l.Vc, l.Bi, l.Bf, l.Bo, l.Bc}
}

// NumParams counts the cell's weights.
func (l *LSTMCell) NumParams() int {
	n := 0
	for _, p := range l.Params() {
		n += p.NumParams()
	}
	return n
}

// LSTMState caches one forward step for backpropagation.
type LSTMState struct {
	x, hPrev, cPrev []float64
	i, f, o, g      []float64 // gate activations; g = tanh(candidate)
	c, h            []float64
	tanhC           []float64
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// Forward computes one time step, returning the cached state.
func (l *LSTMCell) Forward(x, hPrev, cPrev []float64) *LSTMState {
	st := &LSTMState{x: x, hPrev: hPrev, cPrev: cPrev}
	zi := l.Ui.MulVec(hPrev)
	addInto(zi, l.Vi.MulVec(x))
	addInto(zi, l.Bi.W)
	zf := l.Uf.MulVec(hPrev)
	addInto(zf, l.Vf.MulVec(x))
	addInto(zf, l.Bf.W)
	zo := l.Uo.MulVec(hPrev)
	addInto(zo, l.Vo.MulVec(x))
	addInto(zo, l.Bo.W)
	zg := l.Uc.MulVec(hPrev)
	addInto(zg, l.Vc.MulVec(x))
	addInto(zg, l.Bc.W)

	h := l.Hidden
	st.i = make([]float64, h)
	st.f = make([]float64, h)
	st.o = make([]float64, h)
	st.g = make([]float64, h)
	st.c = make([]float64, h)
	st.h = make([]float64, h)
	st.tanhC = make([]float64, h)
	for k := 0; k < h; k++ {
		st.i[k] = sigmoid(zi[k])
		st.f[k] = sigmoid(zf[k])
		st.o[k] = sigmoid(zo[k])
		st.g[k] = math.Tanh(zg[k])
		st.c[k] = st.i[k]*st.g[k] + st.f[k]*cPrev[k]
		st.tanhC[k] = math.Tanh(st.c[k])
		st.h[k] = st.o[k] * st.tanhC[k]
	}
	return st
}

// Backward accumulates gradients for one step given dH (gradient w.r.t.
// h_t) and dC (gradient w.r.t. c_t from the future). It returns the
// gradients w.r.t. h_{t-1}, c_{t-1} and x_t.
func (l *LSTMCell) Backward(st *LSTMState, dH, dC []float64) (dHPrev, dCPrev, dX []float64) {
	h := l.Hidden
	dc := make([]float64, h)
	dzi := make([]float64, h)
	dzf := make([]float64, h)
	dzo := make([]float64, h)
	dzg := make([]float64, h)
	for k := 0; k < h; k++ {
		do := dH[k] * st.tanhC[k]
		dck := dC[k] + dH[k]*st.o[k]*(1-st.tanhC[k]*st.tanhC[k])
		dc[k] = dck
		di := dck * st.g[k]
		dg := dck * st.i[k]
		df := dck * st.cPrev[k]
		dzi[k] = di * st.i[k] * (1 - st.i[k])
		dzf[k] = df * st.f[k] * (1 - st.f[k])
		dzo[k] = do * st.o[k] * (1 - st.o[k])
		dzg[k] = dg * (1 - st.g[k]*st.g[k])
	}
	l.Ui.AddOuterGrad(dzi, st.hPrev)
	l.Vi.AddOuterGrad(dzi, st.x)
	l.Uf.AddOuterGrad(dzf, st.hPrev)
	l.Vf.AddOuterGrad(dzf, st.x)
	l.Uo.AddOuterGrad(dzo, st.hPrev)
	l.Vo.AddOuterGrad(dzo, st.x)
	l.Uc.AddOuterGrad(dzg, st.hPrev)
	l.Vc.AddOuterGrad(dzg, st.x)
	addInto(l.Bi.G, dzi)
	addInto(l.Bf.G, dzf)
	addInto(l.Bo.G, dzo)
	addInto(l.Bc.G, dzg)

	dHPrev = l.Ui.MulVecT(dzi)
	addInto(dHPrev, l.Uf.MulVecT(dzf))
	addInto(dHPrev, l.Uo.MulVecT(dzo))
	addInto(dHPrev, l.Uc.MulVecT(dzg))

	dX = l.Vi.MulVecT(dzi)
	addInto(dX, l.Vf.MulVecT(dzf))
	addInto(dX, l.Vo.MulVecT(dzo))
	addInto(dX, l.Vc.MulVecT(dzg))

	dCPrev = make([]float64, h)
	for k := 0; k < h; k++ {
		dCPrev[k] = dc[k] * st.f[k]
	}
	return dHPrev, dCPrev, dX
}

// H returns the hidden state produced by this step.
func (s *LSTMState) H() []float64 { return s.h }

// C returns the cell state produced by this step.
func (s *LSTMState) C() []float64 { return s.c }
