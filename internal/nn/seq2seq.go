package nn

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Reserved output-vocabulary token IDs.
const (
	BOS = 0 // beginning-of-sequence (decoder start symbol, Fig 5)
	EOS = 1 // end-of-sequence (decoding stop symbol)
)

// Config describes a QEP2Seq model instance. The paper's settings are
// Hidden = 256, EncEmbDim = 16, DecEmbDim = 32 (random initialization) or
// the pre-trained vector dimension (Table 3).
type Config struct {
	InVocab   int
	OutVocab  int
	Hidden    int
	EncEmbDim int
	DecEmbDim int
	// Share reuses the encoder LSTM as the decoder LSTM (the weight-sharing
	// ablation of Figure 7(b)); it requires EncEmbDim == DecEmbDim.
	Share bool
	Seed  int64
	// InitScale is the uniform initialization range (paper: 0.1).
	InitScale float64
}

// Sample is one training pair: an act's token sequence and its description.
type Sample struct {
	In  []int // input tokens (act serialization)
	Out []int // target tokens, without BOS/EOS
}

// Model is the QEP2Seq encoder-decoder with attention.
type Model struct {
	Cfg          Config
	EncEmb       *Mat // InVocab × EncEmbDim
	DecEmb       *Mat // OutVocab × DecEmbDim
	Enc          *LSTMCell
	Dec          *LSTMCell
	Att          *Attention
	WOut         *Mat // OutVocab × 2·Hidden
	decEmbFrozen bool
}

// NewModel builds a model with the paper's uniform initialization.
func NewModel(cfg Config) (*Model, error) {
	if cfg.InitScale == 0 {
		cfg.InitScale = 0.1
	}
	if cfg.Share && cfg.EncEmbDim != cfg.DecEmbDim {
		return nil, fmt.Errorf("nn: weight sharing requires equal embedding dims (enc %d, dec %d)",
			cfg.EncEmbDim, cfg.DecEmbDim)
	}
	if cfg.InVocab < 1 || cfg.OutVocab < 3 {
		return nil, fmt.Errorf("nn: vocabulary too small (in %d, out %d)", cfg.InVocab, cfg.OutVocab)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Model{
		Cfg:    cfg,
		EncEmb: NewMatUniform(cfg.InVocab, cfg.EncEmbDim, cfg.InitScale, rng),
		DecEmb: NewMatUniform(cfg.OutVocab, cfg.DecEmbDim, cfg.InitScale, rng),
		Enc:    NewLSTMCell(cfg.EncEmbDim, cfg.Hidden, cfg.InitScale, rng),
		Att:    NewAttention(cfg.Hidden, cfg.InitScale, rng),
		WOut:   NewMatUniform(cfg.OutVocab, 2*cfg.Hidden, cfg.InitScale, rng),
	}
	if cfg.Share {
		m.Dec = m.Enc
	} else {
		m.Dec = NewLSTMCell(cfg.DecEmbDim, cfg.Hidden, cfg.InitScale, rng)
	}
	return m, nil
}

// SetDecoderEmbedding installs pre-trained word vectors for the decoder
// (the paper pre-trains only the decoder side — §6.4.1). When frozen is
// true, the vectors are not updated during training.
func (m *Model) SetDecoderEmbedding(vecs [][]float64, frozen bool) error {
	if len(vecs) != m.Cfg.OutVocab {
		return fmt.Errorf("nn: embedding has %d rows, want %d", len(vecs), m.Cfg.OutVocab)
	}
	for i, v := range vecs {
		if len(v) != m.Cfg.DecEmbDim {
			return fmt.Errorf("nn: embedding row %d has dim %d, want %d", i, len(v), m.Cfg.DecEmbDim)
		}
		copy(m.DecEmb.Row(i), v)
	}
	m.decEmbFrozen = frozen
	return nil
}

// Params lists every trainable matrix exactly once.
func (m *Model) Params() []*Mat {
	ps := []*Mat{m.EncEmb, m.DecEmb, m.WOut}
	ps = append(ps, m.Enc.Params()...)
	if m.Dec != m.Enc {
		ps = append(ps, m.Dec.Params()...)
	}
	ps = append(ps, m.Att.Params()...)
	return ps
}

// NumParams counts the total trainable weights.
func (m *Model) NumParams() int {
	n := 0
	for _, p := range m.Params() {
		n += p.NumParams()
	}
	return n
}

// RecurrentParams counts the "pure recurrent connections" of the paper's
// Table 3: the encoder and decoder LSTM weights.
func (m *Model) RecurrentParams() (enc, dec int) {
	enc = m.Enc.NumParams()
	dec = m.Dec.NumParams()
	return enc, dec
}

// --- Forward / training -------------------------------------------------------

type encCache struct {
	tokens []int
	states []*LSTMState
	hs     [][]float64
	finalH []float64
	finalC []float64
}

func (m *Model) encode(in []int) (*encCache, error) {
	if len(in) == 0 {
		return nil, fmt.Errorf("nn: empty input sequence")
	}
	h := make([]float64, m.Cfg.Hidden)
	c := make([]float64, m.Cfg.Hidden)
	cache := &encCache{tokens: in}
	for _, tok := range in {
		if tok < 0 || tok >= m.Cfg.InVocab {
			return nil, fmt.Errorf("nn: input token %d out of range", tok)
		}
		st := m.Enc.Forward(m.EncEmb.Row(tok), h, c)
		cache.states = append(cache.states, st)
		cache.hs = append(cache.hs, st.h)
		h, c = st.h, st.c
	}
	cache.finalH, cache.finalC = h, c
	return cache, nil
}

// forwardSample runs teacher-forced decoding, returning the summed
// cross-entropy loss, the number of correctly argmax-predicted tokens, and
// the caches needed for backprop (nil when train is false).
type decStep struct {
	lstm   *LSTMState
	att    *attnState
	concat []float64
	probs  []float64
	target int
	inTok  int
}

func (m *Model) forwardSample(s Sample) (*encCache, []*decStep, float64, int, error) {
	enc, err := m.encode(s.In)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	targets := append(append([]int{}, s.Out...), EOS)
	inputs := append([]int{BOS}, s.Out...)
	hPrev, cPrev := enc.finalH, enc.finalC
	var steps []*decStep
	loss := 0.0
	correct := 0
	for t, target := range targets {
		if target < 0 || target >= m.Cfg.OutVocab {
			return nil, nil, 0, 0, fmt.Errorf("nn: output token %d out of range", target)
		}
		st := m.Dec.Forward(m.DecEmb.Row(inputs[t]), hPrev, cPrev)
		att := m.Att.Forward(st.h, enc.hs)
		concat := make([]float64, 0, 2*m.Cfg.Hidden)
		concat = append(concat, st.h...)
		concat = append(concat, att.context...)
		probs := softmax(m.WOut.MulVec(concat))
		loss += -math.Log(math.Max(probs[target], 1e-12))
		if argmax(probs) == target {
			correct++
		}
		steps = append(steps, &decStep{lstm: st, att: att, concat: concat, probs: probs, target: target, inTok: inputs[t]})
		hPrev, cPrev = st.h, st.c
	}
	return enc, steps, loss, correct, nil
}

func argmax(xs []float64) int {
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	return best
}

// Evaluate returns the mean per-token cross-entropy loss and the
// sparse-categorical accuracy over a sample set (no gradient updates).
func (m *Model) Evaluate(samples []Sample) (loss, accuracy float64, err error) {
	totalLoss, totalTokens, totalCorrect := 0.0, 0, 0
	for _, s := range samples {
		_, _, l, correct, e := m.forwardSample(s)
		if e != nil {
			return 0, 0, e
		}
		totalLoss += l
		totalTokens += len(s.Out) + 1
		totalCorrect += correct
	}
	if totalTokens == 0 {
		return 0, 0, fmt.Errorf("nn: no tokens to evaluate")
	}
	return totalLoss / float64(totalTokens), float64(totalCorrect) / float64(totalTokens), nil
}

// TrainBatch accumulates gradients over a minibatch (paper: 4 sequences)
// and applies one SGD step with the given learning rate (paper: 0.001,
// no momentum). It returns the mean per-token loss of the batch.
func (m *Model) TrainBatch(batch []Sample, lr float64) (float64, error) {
	if len(batch) == 0 {
		return 0, fmt.Errorf("nn: empty batch")
	}
	totalLoss := 0.0
	totalTokens := 0
	for _, s := range batch {
		enc, steps, loss, _, err := m.forwardSample(s)
		if err != nil {
			return 0, err
		}
		totalLoss += loss
		totalTokens += len(s.Out) + 1
		m.backward(enc, steps)
	}
	scale := lr / float64(len(batch))
	for _, p := range m.Params() {
		p.Step(scale)
	}
	return totalLoss / float64(totalTokens), nil
}

func (m *Model) backward(enc *encCache, steps []*decStep) {
	h := m.Cfg.Hidden
	dHs := make([][]float64, len(enc.hs))
	for i := range dHs {
		dHs[i] = make([]float64, h)
	}
	dhNext := make([]float64, h)
	dcNext := make([]float64, h)
	for t := len(steps) - 1; t >= 0; t-- {
		st := steps[t]
		// Output layer: dlogits = p − onehot(target).
		dLogits := make([]float64, len(st.probs))
		copy(dLogits, st.probs)
		dLogits[st.target] -= 1
		m.WOut.AddOuterGrad(dLogits, st.concat)
		dConcat := m.WOut.MulVecT(dLogits)
		dS := make([]float64, h)
		copy(dS, dConcat[:h])
		dContext := dConcat[h:]
		// Attention backward adds into dS and dHs.
		addInto(dS, m.Att.Backward(st.att, dContext, dHs))
		// Plus the gradient flowing from the next decoder step.
		addInto(dS, dhNext)
		dhPrev, dcPrev, dX := m.Dec.Backward(st.lstm, dS, dcNext)
		if !m.decEmbFrozen {
			addInto(m.DecEmb.GradRow(st.inTok), dX)
		}
		dhNext, dcNext = dhPrev, dcPrev
	}
	// The decoder's initial state was the encoder's final state.
	addInto(dHs[len(dHs)-1], dhNext)
	dcEnc := dcNext
	dhEnc := make([]float64, h)
	for i := len(enc.states) - 1; i >= 0; i-- {
		dH := make([]float64, h)
		copy(dH, dHs[i])
		addInto(dH, dhEnc)
		dhPrev, dcPrev, dX := m.Enc.Backward(enc.states[i], dH, dcEnc)
		addInto(m.EncEmb.GradRow(enc.tokens[i]), dX)
		dhEnc, dcEnc = dhPrev, dcPrev
	}
}

// --- Decoding -------------------------------------------------------------------

// Greedy decodes the most likely token at each step until EOS or maxLen.
func (m *Model) Greedy(in []int, maxLen int) ([]int, error) {
	return m.Beam(in, 1, maxLen)
}

// beamHyp is one partial hypothesis during beam search.
type beamHyp struct {
	tokens  []int
	logProb float64
	h, c    []float64
	done    bool
}

// Beam decodes with beam search of width k (paper: 4), equation (13).
func (m *Model) Beam(in []int, k, maxLen int) ([]int, error) {
	if k < 1 {
		return nil, fmt.Errorf("nn: beam width must be >= 1")
	}
	enc, err := m.encode(in)
	if err != nil {
		return nil, err
	}
	beams := []*beamHyp{{h: enc.finalH, c: enc.finalC}}
	var completed []*beamHyp
	for step := 0; step < maxLen; step++ {
		var next []*beamHyp
		for _, b := range beams {
			if b.done {
				continue
			}
			prev := BOS
			if len(b.tokens) > 0 {
				prev = b.tokens[len(b.tokens)-1]
			}
			st := m.Dec.Forward(m.DecEmb.Row(prev), b.h, b.c)
			att := m.Att.Forward(st.h, enc.hs)
			concat := make([]float64, 0, 2*m.Cfg.Hidden)
			concat = append(concat, st.h...)
			concat = append(concat, att.context...)
			probs := softmax(m.WOut.MulVec(concat))
			for tok, p := range probs {
				hyp := &beamHyp{
					tokens:  append(append([]int{}, b.tokens...), tok),
					logProb: b.logProb + math.Log(math.Max(p, 1e-12)),
					h:       st.h, c: st.c,
				}
				if tok == EOS {
					hyp.done = true
				}
				next = append(next, hyp)
			}
		}
		if len(next) == 0 {
			break
		}
		sort.Slice(next, func(a, b int) bool { return next[a].logProb > next[b].logProb })
		if len(next) > k {
			next = next[:k]
		}
		beams = beams[:0]
		for _, b := range next {
			if b.done {
				completed = append(completed, b)
			} else {
				beams = append(beams, b)
			}
		}
		if len(beams) == 0 {
			break
		}
	}
	completed = append(completed, beams...)
	if len(completed) == 0 {
		return nil, nil
	}
	best := completed[0]
	for _, c := range completed[1:] {
		// Length-normalized comparison keeps short hypotheses honest.
		if c.logProb/float64(len(c.tokens)) > best.logProb/float64(len(best.tokens)) {
			best = c
		}
	}
	out := best.tokens
	if len(out) > 0 && out[len(out)-1] == EOS {
		out = out[:len(out)-1]
	}
	return out, nil
}
