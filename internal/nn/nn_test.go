package nn

import (
	"math"
	"math/rand"
	"testing"
)

func tinyModel(t *testing.T, share bool) *Model {
	t.Helper()
	cfg := Config{
		InVocab: 7, OutVocab: 9, Hidden: 6,
		EncEmbDim: 5, DecEmbDim: 5, Share: share, Seed: 42,
	}
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func tinySamples() []Sample {
	return []Sample{
		{In: []int{1, 2, 3}, Out: []int{2, 3, 4}},
		{In: []int{4, 5}, Out: []int{5, 6}},
		{In: []int{6, 1, 2, 3}, Out: []int{7, 8, 2}},
		{In: []int{3, 3}, Out: []int{4}},
	}
}

func TestModelConstruction(t *testing.T) {
	m := tinyModel(t, false)
	if m.NumParams() <= 0 {
		t.Fatal("no parameters")
	}
	shared := tinyModel(t, true)
	if shared.NumParams() >= m.NumParams() {
		t.Error("shared model should have fewer parameters")
	}
	enc, dec := m.RecurrentParams()
	// 4 gates × (H×H + H×E + H) each.
	want := 4 * (6*6 + 6*5 + 6)
	if enc != want || dec != want {
		t.Errorf("recurrent params = %d/%d, want %d", enc, dec, want)
	}
}

func TestModelValidation(t *testing.T) {
	if _, err := NewModel(Config{InVocab: 5, OutVocab: 9, Hidden: 4, EncEmbDim: 3, DecEmbDim: 4, Share: true}); err == nil {
		t.Error("share with unequal dims should fail")
	}
	if _, err := NewModel(Config{InVocab: 0, OutVocab: 9, Hidden: 4, EncEmbDim: 3, DecEmbDim: 4}); err == nil {
		t.Error("empty input vocab should fail")
	}
}

// TestGradientCheck verifies analytic gradients against central finite
// differences on a tiny model — the core invariant from DESIGN.md.
func TestGradientCheck(t *testing.T) {
	m := tinyModel(t, false)
	sample := Sample{In: []int{1, 2, 3}, Out: []int{2, 3}}

	lossOf := func() float64 {
		_, _, loss, _, err := m.forwardSample(sample)
		if err != nil {
			t.Fatal(err)
		}
		return loss
	}

	// Accumulate analytic gradients once.
	enc, steps, _, _, err := m.forwardSample(sample)
	if err != nil {
		t.Fatal(err)
	}
	m.backward(enc, steps)

	const eps = 1e-5
	const tol = 1e-4
	rng := rand.New(rand.NewSource(7))
	for _, p := range m.Params() {
		// Spot-check a few weights per matrix.
		for probe := 0; probe < 4; probe++ {
			idx := rng.Intn(len(p.W))
			analytic := p.G[idx]
			orig := p.W[idx]
			p.W[idx] = orig + eps
			plus := lossOf()
			p.W[idx] = orig - eps
			minus := lossOf()
			p.W[idx] = orig
			numeric := (plus - minus) / (2 * eps)
			if math.Abs(analytic-numeric) > tol*(1+math.Abs(numeric)) {
				t.Errorf("gradient mismatch (mat %dx%d idx %d): analytic %g, numeric %g",
					p.R, p.C, idx, analytic, numeric)
			}
		}
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	m := tinyModel(t, false)
	samples := tinySamples()
	before, _, err := m.Evaluate(samples)
	if err != nil {
		t.Fatal(err)
	}
	for epoch := 0; epoch < 150; epoch++ {
		if _, err := m.TrainBatch(samples, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	after, acc, err := m.Evaluate(samples)
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Errorf("loss did not decrease: %v -> %v", before, after)
	}
	if acc < 0.9 {
		t.Errorf("memorization accuracy = %v, want >= 0.9", acc)
	}
}

func TestGreedyDecodesTrainedSamples(t *testing.T) {
	m := tinyModel(t, false)
	samples := tinySamples()
	for epoch := 0; epoch < 200; epoch++ {
		_, _ = m.TrainBatch(samples, 0.5)
	}
	for _, s := range samples {
		got, err := m.Greedy(s.In, 10)
		if err != nil {
			t.Fatal(err)
		}
		if !intsEqual(got, s.Out) {
			t.Errorf("Greedy(%v) = %v, want %v", s.In, got, s.Out)
		}
	}
}

// Property from DESIGN.md: beam search with K = 1 equals greedy decoding.
func TestBeamWidth1EqualsGreedy(t *testing.T) {
	m := tinyModel(t, false)
	for epoch := 0; epoch < 30; epoch++ {
		_, _ = m.TrainBatch(tinySamples(), 0.3)
	}
	for _, s := range tinySamples() {
		g, _ := m.Greedy(s.In, 8)
		b, _ := m.Beam(s.In, 1, 8)
		if !intsEqual(g, b) {
			t.Errorf("beam(1) = %v, greedy = %v", b, g)
		}
	}
}

func TestBeamWiderNeverWorse(t *testing.T) {
	m := tinyModel(t, false)
	for epoch := 0; epoch < 50; epoch++ {
		_, _ = m.TrainBatch(tinySamples(), 0.3)
	}
	// Sequence log-probability of the beam-4 result must be >= beam-1's.
	logProb := func(in, out []int) float64 {
		_, steps, loss, _, err := m.forwardSample(Sample{In: in, Out: out})
		if err != nil || len(steps) == 0 {
			return math.Inf(-1)
		}
		return -loss
	}
	for _, s := range tinySamples() {
		b1, _ := m.Beam(s.In, 1, 8)
		b4, _ := m.Beam(s.In, 4, 8)
		if len(b1) == 0 || len(b4) == 0 {
			continue
		}
		p1 := logProb(s.In, b1) / float64(len(b1)+1)
		p4 := logProb(s.In, b4) / float64(len(b4)+1)
		if p4 < p1-1e-9 {
			t.Errorf("beam 4 found worse hypothesis: %v (%v) vs %v (%v)", b4, p4, b1, p1)
		}
	}
}

func TestSharedWeightsTraining(t *testing.T) {
	m := tinyModel(t, true)
	before, _, _ := m.Evaluate(tinySamples())
	for epoch := 0; epoch < 100; epoch++ {
		_, _ = m.TrainBatch(tinySamples(), 0.3)
	}
	after, _, _ := m.Evaluate(tinySamples())
	if after >= before {
		t.Errorf("shared model loss did not decrease: %v -> %v", before, after)
	}
}

func TestFrozenEmbeddingStaysFixed(t *testing.T) {
	m := tinyModel(t, false)
	vecs := make([][]float64, m.Cfg.OutVocab)
	for i := range vecs {
		vecs[i] = make([]float64, m.Cfg.DecEmbDim)
		for j := range vecs[i] {
			vecs[i][j] = float64(i*10+j) / 100
		}
	}
	if err := m.SetDecoderEmbedding(vecs, true); err != nil {
		t.Fatal(err)
	}
	snapshot := append([]float64{}, m.DecEmb.W...)
	for epoch := 0; epoch < 20; epoch++ {
		_, _ = m.TrainBatch(tinySamples(), 0.5)
	}
	for i, v := range m.DecEmb.W {
		if v != snapshot[i] {
			t.Fatal("frozen decoder embedding was modified")
		}
	}
}

func TestSetDecoderEmbeddingValidation(t *testing.T) {
	m := tinyModel(t, false)
	if err := m.SetDecoderEmbedding(make([][]float64, 3), false); err == nil {
		t.Error("wrong row count accepted")
	}
	bad := make([][]float64, m.Cfg.OutVocab)
	for i := range bad {
		bad[i] = make([]float64, 2)
	}
	if err := m.SetDecoderEmbedding(bad, false); err == nil {
		t.Error("wrong dim accepted")
	}
}

func TestErrorsOnBadTokens(t *testing.T) {
	m := tinyModel(t, false)
	if _, _, err := m.Evaluate([]Sample{{In: []int{99}, Out: []int{2}}}); err == nil {
		t.Error("out-of-range input token accepted")
	}
	if _, _, err := m.Evaluate([]Sample{{In: []int{1}, Out: []int{99}}}); err == nil {
		t.Error("out-of-range output token accepted")
	}
	if _, err := m.Greedy(nil, 5); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := m.TrainBatch(nil, 0.1); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := m.Beam([]int{1}, 0, 5); err == nil {
		t.Error("beam width 0 accepted")
	}
}

func TestPaperDimensionParameterCounts(t *testing.T) {
	// Table 3 reproduction: at the paper's dimensions the encoder LSTM has
	// 279,552 weights — the one value in the table consistent with the
	// stated architecture (hidden 256, encoder embedding 16, biases).
	m, err := NewModel(Config{
		InVocab: 36, OutVocab: 62, Hidden: 256, EncEmbDim: 16, DecEmbDim: 128, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	enc, _ := m.RecurrentParams()
	if enc != 279552 {
		t.Errorf("encoder recurrent params = %d, want 279552 (Table 3)", enc)
	}
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSoftmaxNormalization(t *testing.T) {
	p := softmax([]float64{1, 2, 3, 1000})
	sum := 0.0
	for _, v := range p {
		sum += v
		if v < 0 || v > 1 || math.IsNaN(v) {
			t.Fatalf("softmax out of range: %v", p)
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("softmax sum = %v", sum)
	}
}

func TestMatOps(t *testing.T) {
	m := NewMat(2, 3)
	copy(m.W, []float64{1, 2, 3, 4, 5, 6})
	got := m.MulVec([]float64{1, 0, -1})
	if got[0] != -2 || got[1] != -2 {
		t.Errorf("MulVec = %v", got)
	}
	gt := m.MulVecT([]float64{1, 1})
	if gt[0] != 5 || gt[1] != 7 || gt[2] != 9 {
		t.Errorf("MulVecT = %v", gt)
	}
	m.AddOuterGrad([]float64{1, 2}, []float64{3, 0, 1})
	if m.G[0] != 3 || m.G[3] != 6 || m.G[5] != 2 {
		t.Errorf("AddOuterGrad = %v", m.G)
	}
	m.Step(0.1)
	if m.W[0] != 1-0.3 {
		t.Errorf("Step: W[0] = %v", m.W[0])
	}
	if m.G[0] != 0 {
		t.Error("Step did not clear gradients")
	}
}
