// Package nn implements the QEP2Seq translation model of paper §6.4 from
// scratch: an LSTM encoder-decoder (the exact cell equations (2)–(6) of the
// paper, plus biases), additive Bahdanau attention (equations (8)–(10)),
// a softmax output layer over the concatenated decoder state and context
// vector (equation (11)), cross-entropy training with teacher forcing
// (equation (12)) under plain SGD, and beam-search decoding (equation (13)).
// All gradients are computed by hand-written backpropagation through time.
package nn

import "math/rand"

// Mat is a dense rows×cols parameter matrix with its gradient accumulator.
type Mat struct {
	R, C int
	W    []float64 // row-major weights
	G    []float64 // accumulated gradients
}

// NewMat allocates a zero matrix.
func NewMat(r, c int) *Mat {
	return &Mat{R: r, C: c, W: make([]float64, r*c), G: make([]float64, r*c)}
}

// NewMatUniform allocates a matrix initialized uniformly in [-scale, scale],
// the paper's initialization (±0.1).
func NewMatUniform(r, c int, scale float64, rng *rand.Rand) *Mat {
	m := NewMat(r, c)
	for i := range m.W {
		m.W[i] = (rng.Float64()*2 - 1) * scale
	}
	return m
}

// At returns the element at (i, j).
func (m *Mat) At(i, j int) float64 { return m.W[i*m.C+j] }

// Set assigns the element at (i, j).
func (m *Mat) Set(i, j int, v float64) { m.W[i*m.C+j] = v }

// Row returns a view of row i of the weights.
func (m *Mat) Row(i int) []float64 { return m.W[i*m.C : (i+1)*m.C] }

// GradRow returns a view of row i of the gradient.
func (m *Mat) GradRow(i int) []float64 { return m.G[i*m.C : (i+1)*m.C] }

// MulVec computes m.W · x.
func (m *Mat) MulVec(x []float64) []float64 {
	out := make([]float64, m.R)
	for i := 0; i < m.R; i++ {
		row := m.W[i*m.C : (i+1)*m.C]
		s := 0.0
		for j, v := range x {
			s += row[j] * v
		}
		out[i] = s
	}
	return out
}

// MulVecT computes m.Wᵀ · y (used to propagate gradients backwards).
func (m *Mat) MulVecT(y []float64) []float64 {
	out := make([]float64, m.C)
	for i := 0; i < m.R; i++ {
		row := m.W[i*m.C : (i+1)*m.C]
		yi := y[i]
		if yi == 0 {
			continue
		}
		for j := range out {
			out[j] += row[j] * yi
		}
	}
	return out
}

// AddOuterGrad accumulates the outer product y·xᵀ into the gradient.
func (m *Mat) AddOuterGrad(y, x []float64) {
	for i := 0; i < m.R; i++ {
		yi := y[i]
		if yi == 0 {
			continue
		}
		g := m.G[i*m.C : (i+1)*m.C]
		for j, xj := range x {
			g[j] += yi * xj
		}
	}
}

// Step applies one SGD update w -= lr·g and clears the gradient.
func (m *Mat) Step(lr float64) {
	for i, g := range m.G {
		m.W[i] -= lr * g
		m.G[i] = 0
	}
}

// ZeroGrad clears the gradient accumulator.
func (m *Mat) ZeroGrad() {
	for i := range m.G {
		m.G[i] = 0
	}
}

// NumParams returns the number of weights.
func (m *Mat) NumParams() int { return len(m.W) }

// --- small vector helpers ----------------------------------------------------

func addInto(dst, src []float64) {
	for i, v := range src {
		dst[i] += v
	}
}

func hadamard(a, b []float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] * b[i]
	}
	return out
}
