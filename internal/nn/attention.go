package nn

import (
	"math"
	"math/rand"
)

// Attention is the additive (Bahdanau) attention of equations (8)–(10):
//
//	g(s_t, h_i) = Vaᵀ tanh(Ws·s_t + Wh·h_i)
//	α_i = softmax over i of g(s_t, h_i)
//	a_t = Σ_i α_i h_i
type Attention struct {
	Hidden     int
	Ws, Wh, Va *Mat // Va is hidden×1
}

// NewAttention creates an attention module with uniform initialization.
func NewAttention(hidden int, scale float64, rng *rand.Rand) *Attention {
	return &Attention{
		Hidden: hidden,
		Ws:     NewMatUniform(hidden, hidden, scale, rng),
		Wh:     NewMatUniform(hidden, hidden, scale, rng),
		Va:     NewMatUniform(hidden, 1, scale, rng),
	}
}

// Params lists the attention parameters.
func (a *Attention) Params() []*Mat { return []*Mat{a.Ws, a.Wh, a.Va} }

// NumParams counts the attention weights.
func (a *Attention) NumParams() int {
	return a.Ws.NumParams() + a.Wh.NumParams() + a.Va.NumParams()
}

// attnState caches one attention application for backpropagation.
type attnState struct {
	s       []float64   // decoder state the attention was computed for
	hs      [][]float64 // encoder states
	u       [][]float64 // tanh(Ws s + Wh h_i) per i
	alpha   []float64
	context []float64
}

// Forward computes the context vector for decoder state s over encoder
// states hs.
func (a *Attention) Forward(s []float64, hs [][]float64) *attnState {
	st := &attnState{s: s, hs: hs}
	wss := a.Ws.MulVec(s)
	scores := make([]float64, len(hs))
	st.u = make([][]float64, len(hs))
	for i, h := range hs {
		z := a.Wh.MulVec(h)
		addInto(z, wss)
		u := make([]float64, len(z))
		score := 0.0
		for k, v := range z {
			u[k] = math.Tanh(v)
			score += a.Va.W[k] * u[k]
		}
		st.u[i] = u
		scores[i] = score
	}
	st.alpha = softmax(scores)
	st.context = make([]float64, a.Hidden)
	for i, h := range hs {
		w := st.alpha[i]
		for k, v := range h {
			st.context[k] += w * v
		}
	}
	return st
}

// Backward accumulates gradients given dContext (gradient w.r.t. a_t).
// It returns the gradient w.r.t. the decoder state s and adds per-encoder-
// state gradients into dHs (which must have one slot per encoder state).
func (a *Attention) Backward(st *attnState, dContext []float64, dHs [][]float64) []float64 {
	n := len(st.hs)
	// Through the weighted sum: dα_i = h_i · da ; dh_i += α_i · da.
	dAlpha := make([]float64, n)
	for i, h := range st.hs {
		s := 0.0
		for k, v := range h {
			s += v * dContext[k]
			dHs[i][k] += st.alpha[i] * dContext[k]
		}
		dAlpha[i] = s
	}
	// Softmax backward: dscore_i = α_i (dα_i − Σ_j α_j dα_j).
	dot := 0.0
	for i := range dAlpha {
		dot += st.alpha[i] * dAlpha[i]
	}
	dS := make([]float64, len(st.s))
	for i := 0; i < n; i++ {
		dScore := st.alpha[i] * (dAlpha[i] - dot)
		if dScore == 0 {
			continue
		}
		// score = Va · u_i with u_i = tanh(z_i).
		dz := make([]float64, a.Hidden)
		for k := 0; k < a.Hidden; k++ {
			a.Va.G[k] += dScore * st.u[i][k]
			dz[k] = dScore * a.Va.W[k] * (1 - st.u[i][k]*st.u[i][k])
		}
		a.Ws.AddOuterGrad(dz, st.s)
		a.Wh.AddOuterGrad(dz, st.hs[i])
		addInto(dS, a.Ws.MulVecT(dz))
		addInto(dHs[i], a.Wh.MulVecT(dz))
	}
	return dS
}

// softmax returns the normalized exponentials of xs (max-shifted).
func softmax(xs []float64) []float64 {
	max := xs[0]
	for _, v := range xs[1:] {
		if v > max {
			max = v
		}
	}
	out := make([]float64, len(xs))
	sum := 0.0
	for i, v := range xs {
		out[i] = math.Exp(v - max)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}
