package datasets

import (
	"fmt"
	"math/rand"

	"lantern/internal/engine"
)

// LoadIMDB creates a scaled-down IMDB schema following the JOB-light
// layout of Kipf et al. [31] (the paper generates its 1000 test queries on
// IMDB with that work's generator): six tables joined through title.id.
func LoadIMDB(e *engine.Engine, scale float64, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	ddl := `
CREATE TABLE title (id INTEGER, kind_id INTEGER, production_year INTEGER, episode_nr INTEGER);
CREATE TABLE cast_info (id INTEGER, movie_id INTEGER, person_id INTEGER, role_id INTEGER);
CREATE TABLE movie_companies (id INTEGER, movie_id INTEGER, company_id INTEGER, company_type_id INTEGER);
CREATE TABLE movie_info (id INTEGER, movie_id INTEGER, info_type_id INTEGER, info_len INTEGER);
CREATE TABLE movie_keyword (id INTEGER, movie_id INTEGER, keyword_id INTEGER);
CREATE TABLE movie_info_idx (id INTEGER, movie_id INTEGER, info_type_id INTEGER);
CREATE INDEX title_pk ON title (id);
CREATE INDEX cast_info_movie ON cast_info (movie_id);
CREATE INDEX movie_companies_movie ON movie_companies (movie_id);
`
	if _, err := e.ExecScript(ddl); err != nil {
		return err
	}
	nTitle := scaled(2500, scale)

	var rows []string
	for i := 1; i <= nTitle; i++ {
		rows = append(rows, fmt.Sprintf("(%d, %d, %d, %d)",
			i, 1+rng.Intn(7), 1930+rng.Intn(90), rng.Intn(30)))
	}
	if err := insertBatch(e, "title", rows); err != nil {
		return err
	}

	fill := func(table string, perTitle int, gen func(id, movie int) string) error {
		rows = rows[:0]
		id := 1
		for m := 1; m <= nTitle; m++ {
			n := rng.Intn(perTitle + 1)
			for k := 0; k < n; k++ {
				rows = append(rows, gen(id, m))
				id++
			}
		}
		return insertBatch(e, table, rows)
	}
	if err := fill("cast_info", 6, func(id, m int) string {
		return fmt.Sprintf("(%d, %d, %d, %d)", id, m, 1+rng.Intn(nTitle*3), 1+rng.Intn(11))
	}); err != nil {
		return err
	}
	if err := fill("movie_companies", 3, func(id, m int) string {
		return fmt.Sprintf("(%d, %d, %d, %d)", id, m, 1+rng.Intn(500), 1+rng.Intn(4))
	}); err != nil {
		return err
	}
	if err := fill("movie_info", 4, func(id, m int) string {
		return fmt.Sprintf("(%d, %d, %d, %d)", id, m, 1+rng.Intn(110), rng.Intn(500))
	}); err != nil {
		return err
	}
	if err := fill("movie_keyword", 4, func(id, m int) string {
		return fmt.Sprintf("(%d, %d, %d)", id, m, 1+rng.Intn(3000))
	}); err != nil {
		return err
	}
	return fill("movie_info_idx", 2, func(id, m int) string {
		return fmt.Sprintf("(%d, %d, %d)", id, m, 99+rng.Intn(15))
	})
}

// IMDBForeignKeys returns the JOB-light join graph (everything joins to
// title.id).
func IMDBForeignKeys() []FK {
	return []FK{
		{"cast_info", "movie_id", "title", "id"},
		{"movie_companies", "movie_id", "title", "id"},
		{"movie_info", "movie_id", "title", "id"},
		{"movie_keyword", "movie_id", "title", "id"},
		{"movie_info_idx", "movie_id", "title", "id"},
	}
}
