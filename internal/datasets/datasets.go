// Package datasets provides deterministic synthetic generators for the
// three datasets of the paper's evaluation — the TPC-H benchmark [12], the
// SDSS SkyServer tables [11], and the IMDB relational dataset [5] — plus
// their query workloads, written in the SQL subset the substrate engine
// executes.
//
// Substitution note (see DESIGN.md): the real datasets are downloads; these
// generators preserve what the experiments need — the schemas, the
// foreign-key graph (which drives the Kipf-style random query generator),
// and enough value skew that the optimizer produces diverse plans (hash vs
// merge vs nested-loop joins, index vs sequential scans).
package datasets

import (
	"fmt"
	"math/rand"
	"strings"

	"lantern/internal/engine"
)

// Workload is one named benchmark query.
type Workload struct {
	Name string
	SQL  string
}

// FK is one foreign-key edge of a dataset's join graph.
type FK struct {
	ChildTable, ChildColumn   string
	ParentTable, ParentColumn string
}

// exec runs a statement and panics on failure (generators are internal and
// their SQL is constant).
func exec(e *engine.Engine, sql string) error {
	if _, err := e.Exec(sql); err != nil {
		return fmt.Errorf("datasets: %s: %w", firstLine(sql), err)
	}
	return nil
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	if len(s) > 60 {
		return s[:60]
	}
	return s
}

// insertBatch inserts rows in batches to keep statement parsing cheap.
func insertBatch(e *engine.Engine, table string, rows []string) error {
	const batch = 200
	for i := 0; i < len(rows); i += batch {
		j := i + batch
		if j > len(rows) {
			j = len(rows)
		}
		stmt := fmt.Sprintf("INSERT INTO %s VALUES %s", table, strings.Join(rows[i:j], ", "))
		if err := exec(e, stmt); err != nil {
			return err
		}
	}
	return nil
}

// scaled returns max(1, base·scale).
func scaled(base int, scale float64) int {
	n := int(float64(base) * scale)
	if n < 1 {
		n = 1
	}
	return n
}

func date(rng *rand.Rand, fromYear, toYear int) string {
	y := fromYear + rng.Intn(toYear-fromYear+1)
	m := 1 + rng.Intn(12)
	d := 1 + rng.Intn(28)
	return fmt.Sprintf("%04d-%02d-%02d", y, m, d)
}
