package datasets

import (
	"strings"
	"testing"

	"lantern/internal/catalog"
	"lantern/internal/engine"
	"lantern/internal/pager"
	"lantern/internal/plan"
	"lantern/internal/sqlparser"
)

func TestLoadTPCH(t *testing.T) {
	e := engine.NewDefault()
	if err := LoadTPCH(e, 0.1, 1); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int64{}
	for _, tbl := range []string{"region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem"} {
		r, err := e.Exec("SELECT COUNT(*) FROM " + tbl)
		if err != nil {
			t.Fatalf("%s: %v", tbl, err)
		}
		counts[tbl] = r.Rows[0][0].Int()
		if counts[tbl] == 0 {
			t.Errorf("%s is empty", tbl)
		}
	}
	if counts["region"] != 5 || counts["nation"] != 25 {
		t.Errorf("region/nation = %d/%d", counts["region"], counts["nation"])
	}
	if counts["lineitem"] <= counts["orders"] {
		t.Errorf("lineitem (%d) should outnumber orders (%d)", counts["lineitem"], counts["orders"])
	}
}

// TestLoadTPCHSFDiskBacked drives the bulk scale-factor loader against a
// disk-backed catalog with a buffer pool far smaller than the data: rows
// stream through InsertBatch, sealed segments spill as the load
// proceeds, and the workload then runs by faulting segments back in.
func TestLoadTPCHSFDiskBacked(t *testing.T) {
	cat, err := catalog.Open(t.TempDir(), pager.Config{BufferPoolBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	e := engine.NewWithCatalog(engine.DefaultConfig(), cat)
	const sf = 0.001 // 1.5k orders, ~6k lineitem
	if err := LoadTPCHSF(e, sf, 1); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int64{}
	for _, tbl := range []string{"region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem"} {
		r, err := e.Exec("SELECT COUNT(*) FROM " + tbl)
		if err != nil {
			t.Fatalf("%s: %v", tbl, err)
		}
		counts[tbl] = r.Rows[0][0].Int()
	}
	want := map[string]int64{
		"region": 5, "nation": 25, "supplier": 10, "customer": 150,
		"part": 200, "partsupp": 800, "orders": 1500,
	}
	for tbl, n := range want {
		if counts[tbl] != n {
			t.Errorf("%s = %d rows, want %d (official proportions at SF %g)", tbl, counts[tbl], n, sf)
		}
	}
	if counts["lineitem"] < counts["orders"] || counts["lineitem"] > 7*counts["orders"] {
		t.Errorf("lineitem = %d rows, want 1..7 per order (%d orders)", counts["lineitem"], counts["orders"])
	}
	// The load spilled past the pool budget: serving the counts above
	// faulted segments from disk.
	if st := cat.Pager().Pool().Stats(); st.Misses == 0 {
		t.Errorf("no buffer-pool misses after load+scan; data never spilled? %+v", st)
	}
	for _, w := range TPCHWorkload()[:6] {
		if _, err := e.Exec(w.SQL); err != nil {
			t.Errorf("%s: exec: %v", w.Name, err)
		}
	}
}

// TestLoadTPCHSFDeterministic pins that the bulk loader is a pure
// function of (sf, seed) — including across in-memory and disk-backed
// catalogs, whose flush/spill timing differs.
func TestLoadTPCHSFDeterministic(t *testing.T) {
	sum := func(disk bool) int64 {
		e := engine.NewDefault()
		if disk {
			cat, err := catalog.Open(t.TempDir(), pager.Config{})
			if err != nil {
				t.Fatal(err)
			}
			e = engine.NewWithCatalog(engine.DefaultConfig(), cat)
		}
		if err := LoadTPCHSF(e, 0.0005, 7); err != nil {
			t.Fatal(err)
		}
		r, err := e.Exec("SELECT SUM(l_orderkey), COUNT(*) FROM lineitem")
		if err != nil {
			t.Fatal(err)
		}
		return r.Rows[0][0].Int() * r.Rows[0][1].Int()
	}
	mem := sum(false)
	if disk := sum(true); disk != mem {
		t.Errorf("SF load diverges between catalogs: memory %d, disk %d", mem, disk)
	}
}

func TestTPCHWorkloadAllParseAndPlan(t *testing.T) {
	e := engine.NewDefault()
	if err := LoadTPCH(e, 0.05, 1); err != nil {
		t.Fatal(err)
	}
	qs := TPCHWorkload()
	if len(qs) != 22 {
		t.Fatalf("workload has %d queries, want 22", len(qs))
	}
	for _, w := range qs {
		sel, err := sqlparser.ParseSelect(w.SQL)
		if err != nil {
			t.Errorf("%s: parse: %v", w.Name, err)
			continue
		}
		if _, err := e.Plan(sel); err != nil {
			t.Errorf("%s: plan: %v", w.Name, err)
		}
	}
}

func TestTPCHWorkloadAllExecute(t *testing.T) {
	e := engine.NewDefault()
	if err := LoadTPCH(e, 0.05, 1); err != nil {
		t.Fatal(err)
	}
	for _, w := range TPCHWorkload() {
		if _, err := e.Exec(w.SQL); err != nil {
			t.Errorf("%s: exec: %v", w.Name, err)
		}
	}
}

func TestTPCHQ1Shape(t *testing.T) {
	e := engine.NewDefault()
	if err := LoadTPCH(e, 0.05, 1); err != nil {
		t.Fatal(err)
	}
	r, err := e.Exec(TPCHWorkload()[0].SQL)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Columns) != 9 {
		t.Errorf("Q1 columns = %d, want 9", len(r.Columns))
	}
	if len(r.Rows) == 0 || len(r.Rows) > 6 {
		t.Errorf("Q1 groups = %d, want 1..6 (returnflag × linestatus)", len(r.Rows))
	}
}

func TestTPCHPlansAreDiverse(t *testing.T) {
	e := engine.NewDefault()
	if err := LoadTPCH(e, 0.1, 1); err != nil {
		t.Fatal(err)
	}
	ops := map[string]bool{}
	for _, w := range TPCHWorkload() {
		r, err := e.Exec("EXPLAIN (FORMAT JSON) " + w.SQL)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		tree, err := plan.ParsePostgresJSON(r.Plan)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		for _, n := range tree.OperatorNames() {
			ops[n] = true
		}
	}
	for _, want := range []string{"Seq Scan", "Hash Join", "Sort", "Limit"} {
		if !ops[want] {
			names := make([]string, 0, len(ops))
			for o := range ops {
				names = append(names, o)
			}
			t.Errorf("TPC-H plans never use %s (got %s)", want, strings.Join(names, ", "))
		}
	}
	agg := ops["HashAggregate"] || ops["GroupAggregate"] || ops["Aggregate"]
	if !agg {
		t.Error("TPC-H plans never aggregate")
	}
}

func TestLoadSDSSAndWorkload(t *testing.T) {
	e := engine.NewDefault()
	if err := LoadSDSS(e, 0.1, 2); err != nil {
		t.Fatal(err)
	}
	for _, w := range SDSSWorkload() {
		if _, err := e.Exec(w.SQL); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
	}
	if len(SDSSWorkload()) < 10 {
		t.Errorf("SDSS workload too small: %d", len(SDSSWorkload()))
	}
	// S9 is a DISTINCT query: its plan must deduplicate via Unique.
	r, err := e.Exec("EXPLAIN (FORMAT JSON) " + SDSSWorkload()[8].SQL)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := plan.ParsePostgresJSON(r.Plan)
	if err != nil {
		t.Fatal(err)
	}
	hasUnique := false
	tree.Walk(func(n *plan.Node) {
		if n.Name == "Unique" {
			hasUnique = true
		}
	})
	if !hasUnique {
		t.Errorf("S9 plan lacks Unique:\n%s", tree.String())
	}
}

func TestLoadIMDB(t *testing.T) {
	e := engine.NewDefault()
	if err := LoadIMDB(e, 0.1, 3); err != nil {
		t.Fatal(err)
	}
	r, err := e.Exec(`SELECT COUNT(*) FROM title t, cast_info ci WHERE t.id = ci.movie_id`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].Int() == 0 {
		t.Error("IMDB join is empty")
	}
}

func TestForeignKeysResolve(t *testing.T) {
	cases := []struct {
		load func(*engine.Engine) error
		fks  []FK
	}{
		{func(e *engine.Engine) error { return LoadTPCH(e, 0.02, 1) }, TPCHForeignKeys()},
		{func(e *engine.Engine) error { return LoadSDSS(e, 0.02, 1) }, SDSSForeignKeys()},
		{func(e *engine.Engine) error { return LoadIMDB(e, 0.02, 1) }, IMDBForeignKeys()},
	}
	for _, c := range cases {
		e := engine.NewDefault()
		if err := c.load(e); err != nil {
			t.Fatal(err)
		}
		for _, fk := range c.fks {
			child, err := e.Cat.Table(fk.ChildTable)
			if err != nil {
				t.Errorf("FK child table %s missing", fk.ChildTable)
				continue
			}
			if child.ColumnIndex(fk.ChildColumn) < 0 {
				t.Errorf("FK child column %s.%s missing", fk.ChildTable, fk.ChildColumn)
			}
			parent, err := e.Cat.Table(fk.ParentTable)
			if err != nil {
				t.Errorf("FK parent table %s missing", fk.ParentTable)
				continue
			}
			if parent.ColumnIndex(fk.ParentColumn) < 0 {
				t.Errorf("FK parent column %s.%s missing", fk.ParentTable, fk.ParentColumn)
			}
		}
	}
}

func TestDeterministicLoads(t *testing.T) {
	count := func() int64 {
		e := engine.NewDefault()
		if err := LoadTPCH(e, 0.02, 9); err != nil {
			t.Fatal(err)
		}
		r, _ := e.Exec("SELECT SUM(o_orderkey), COUNT(*) FROM orders")
		return r.Rows[0][0].Int()
	}
	if count() != count() {
		t.Error("TPC-H load is not deterministic")
	}
}
