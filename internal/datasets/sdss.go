package datasets

import (
	"fmt"
	"math/rand"

	"lantern/internal/engine"
)

// LoadSDSS creates a scaled-down SkyServer schema: photometric objects,
// spectra, photometric redshifts, and the neighbors relation. The column
// and value domains follow the SDSS DR16 tables the paper's 71-query
// workload touches.
func LoadSDSS(e *engine.Engine, scale float64, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	ddl := `
CREATE TABLE photoobj (objid INTEGER, ra FLOAT, dec FLOAT, type INTEGER, u FLOAT, g FLOAT, r FLOAT, i FLOAT, z FLOAT, clean INTEGER);
CREATE TABLE specobj (specobjid INTEGER, bestobjid INTEGER, class VARCHAR(10), z FLOAT, zwarning INTEGER, plate INTEGER);
CREATE TABLE photoz (objid INTEGER, photozid INTEGER, zphot FLOAT, zerr FLOAT);
CREATE TABLE neighbors (objid INTEGER, neighborobjid INTEGER, distance FLOAT);
CREATE INDEX photoobj_pk ON photoobj (objid);
CREATE INDEX specobj_best ON specobj (bestobjid);
`
	if _, err := e.ExecScript(ddl); err != nil {
		return err
	}
	nObj := scaled(5000, scale)
	classes := []string{"GALAXY", "STAR", "QSO"}

	var rows []string
	for i := 1; i <= nObj; i++ {
		rows = append(rows, fmt.Sprintf("(%d, %.4f, %.4f, %d, %.2f, %.2f, %.2f, %.2f, %.2f, %d)",
			i, rng.Float64()*360, rng.Float64()*180-90, 3+rng.Intn(4),
			14+rng.Float64()*10, 14+rng.Float64()*10, 14+rng.Float64()*10,
			14+rng.Float64()*10, 14+rng.Float64()*10, rng.Intn(2)))
	}
	if err := insertBatch(e, "photoobj", rows); err != nil {
		return err
	}

	rows = rows[:0]
	nSpec := nObj / 3
	for i := 1; i <= nSpec; i++ {
		rows = append(rows, fmt.Sprintf("(%d, %d, '%s', %.4f, %d, %d)",
			i, 1+rng.Intn(nObj), classes[rng.Intn(3)], rng.Float64()*3,
			rng.Intn(2), 266+rng.Intn(3000)))
	}
	if err := insertBatch(e, "specobj", rows); err != nil {
		return err
	}

	rows = rows[:0]
	for i := 1; i <= nObj/2; i++ {
		rows = append(rows, fmt.Sprintf("(%d, %d, %.4f, %.4f)",
			1+rng.Intn(nObj), i, rng.Float64()*2, rng.Float64()*0.1))
	}
	if err := insertBatch(e, "photoz", rows); err != nil {
		return err
	}

	rows = rows[:0]
	for i := 0; i < nObj/2; i++ {
		rows = append(rows, fmt.Sprintf("(%d, %d, %.5f)",
			1+rng.Intn(nObj), 1+rng.Intn(nObj), rng.Float64()*0.5))
	}
	return insertBatch(e, "neighbors", rows)
}

// SDSSForeignKeys returns the SkyServer join graph.
func SDSSForeignKeys() []FK {
	return []FK{
		{"specobj", "bestobjid", "photoobj", "objid"},
		{"photoz", "objid", "photoobj", "objid"},
		{"neighbors", "objid", "photoobj", "objid"},
		{"neighbors", "neighborobjid", "photoobj", "objid"},
	}
}

// SDSSWorkload returns representative SkyServer sample queries (the paper
// uses the 71 predefined DR16 "realquery" examples; these cover the same
// query shapes — cone-ish range selections, photo/spec joins, class
// aggregations — in the engine's SQL subset).
func SDSSWorkload() []Workload {
	return []Workload{
		{"S1", `SELECT objid, ra, dec FROM photoobj WHERE ra BETWEEN 140 AND 141 AND dec BETWEEN 20 AND 21`},
		{"S2", `SELECT p.objid, s.class, s.z FROM photoobj p, specobj s
			WHERE p.objid = s.bestobjid AND s.class = 'QSO' AND s.z > 2`},
		{"S3", `SELECT s.class, COUNT(*) AS n FROM specobj s GROUP BY s.class ORDER BY n DESC`},
		{"S4", `SELECT p.objid, p.r FROM photoobj p WHERE p.r < 17 AND p.clean = 1 ORDER BY p.r LIMIT 100`},
		{"S5", `SELECT p.objid, p.g - p.r AS color FROM photoobj p, specobj s
			WHERE p.objid = s.bestobjid AND s.class = 'GALAXY' AND s.zwarning = 0
			ORDER BY color DESC LIMIT 50`},
		{"S6", `SELECT pz.zphot, s.z FROM photoz pz, specobj s, photoobj p
			WHERE pz.objid = p.objid AND s.bestobjid = p.objid AND s.class = 'GALAXY'`},
		{"S7", `SELECT s.plate, COUNT(*) AS objects, AVG(s.z) AS mean_z
			FROM specobj s GROUP BY s.plate HAVING COUNT(*) > 2 ORDER BY objects DESC LIMIT 20`},
		{"S8", `SELECT n.objid, COUNT(*) AS neighbor_count FROM neighbors n
			WHERE n.distance < 0.1 GROUP BY n.objid ORDER BY neighbor_count DESC LIMIT 10`},
		{"S9", `SELECT DISTINCT p.type FROM photoobj p, specobj s
			WHERE p.objid = s.bestobjid AND s.z BETWEEN 0.1 AND 0.2`},
		{"S10", `SELECT p.objid, p.u, p.g, p.r FROM photoobj p
			WHERE p.u - p.g > 2 AND p.type = 3 LIMIT 100`},
		{"S11", `SELECT s.class, AVG(p.r) AS mean_r, MIN(p.r) AS min_r, MAX(p.r) AS max_r
			FROM photoobj p, specobj s WHERE p.objid = s.bestobjid GROUP BY s.class`},
		{"S12", `SELECT p.objid FROM photoobj p, photoz pz
			WHERE p.objid = pz.objid AND pz.zerr < 0.02 AND pz.zphot > 0.5 ORDER BY pz.zphot DESC LIMIT 25`},
	}
}
