package datasets

import (
	"fmt"
	"math"
	"math/rand"

	"lantern/internal/datum"
	"lantern/internal/engine"
	"lantern/internal/storage"
)

// tpchSegments, priorities and ship modes follow the TPC-H value domains.
var (
	tpchSegments   = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	tpchPriorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	tpchModes      = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
	tpchStatus     = []string{"O", "F", "P"}
	tpchRegions    = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	tpchTypes      = []string{"ECONOMY BRASS", "STANDARD BRASS", "ECONOMY COPPER", "PROMO STEEL", "SMALL STEEL", "MEDIUM TIN", "LARGE NICKEL", "PROMO COPPER"}
	tpchContainers = []string{"SM CASE", "SM BOX", "MED BOX", "LG BOX", "JUMBO PACK", "WRAP CASE"}
)

// LoadTPCH creates and populates the eight TPC-H tables at the given scale
// (scale 1.0 ≈ 1/100 of the official SF1 row counts, keeping the official
// table-size ratios) with deterministic data under the seed.
func LoadTPCH(e *engine.Engine, scale float64, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	if _, err := e.ExecScript(tpchDDL + tpchIndexDDL); err != nil {
		return err
	}

	nSupp := scaled(100, scale)
	nCust := scaled(1500, scale)
	nPart := scaled(2000, scale)
	nOrders := scaled(15000, scale)
	nLinePerOrder := 4

	var rows []string
	for i, r := range tpchRegions {
		rows = append(rows, fmt.Sprintf("(%d, '%s', 'region comment %d')", i, r, i))
	}
	if err := insertBatch(e, "region", rows); err != nil {
		return err
	}

	rows = rows[:0]
	for i := 0; i < 25; i++ {
		rows = append(rows, fmt.Sprintf("(%d, 'NATION%02d', %d, 'nation comment %d')", i, i, i%5, i))
	}
	if err := insertBatch(e, "nation", rows); err != nil {
		return err
	}

	rows = rows[:0]
	for i := 1; i <= nSupp; i++ {
		rows = append(rows, fmt.Sprintf("(%d, 'Supplier%05d', %d, %.2f, 'supplier comment %d')",
			i, i, rng.Intn(25), rng.Float64()*11000-1000, i))
	}
	if err := insertBatch(e, "supplier", rows); err != nil {
		return err
	}

	rows = rows[:0]
	for i := 1; i <= nCust; i++ {
		rows = append(rows, fmt.Sprintf("(%d, 'Customer%06d', %d, '%s', %.2f, '%02d-%03d-%04d')",
			i, i, rng.Intn(25), tpchSegments[rng.Intn(len(tpchSegments))],
			rng.Float64()*11000-1000, 10+rng.Intn(25), rng.Intn(1000), rng.Intn(10000)))
	}
	if err := insertBatch(e, "customer", rows); err != nil {
		return err
	}

	rows = rows[:0]
	for i := 1; i <= nPart; i++ {
		rows = append(rows, fmt.Sprintf("(%d, 'part name %d', '%s', %d, '%s', %.2f, 'Brand#%d%d')",
			i, i, tpchTypes[rng.Intn(len(tpchTypes))], 1+rng.Intn(50),
			tpchContainers[rng.Intn(len(tpchContainers))], 900+rng.Float64()*1100,
			1+rng.Intn(5), 1+rng.Intn(5)))
	}
	if err := insertBatch(e, "part", rows); err != nil {
		return err
	}

	rows = rows[:0]
	for i := 1; i <= nPart; i++ {
		for s := 0; s < 2; s++ {
			rows = append(rows, fmt.Sprintf("(%d, %d, %d, %.2f)",
				i, 1+rng.Intn(nSupp), rng.Intn(10000), rng.Float64()*1000))
		}
	}
	if err := insertBatch(e, "partsupp", rows); err != nil {
		return err
	}

	rows = rows[:0]
	lineRows := make([]string, 0, nOrders*nLinePerOrder)
	for i := 1; i <= nOrders; i++ {
		odate := date(rng, 1992, 1998)
		rows = append(rows, fmt.Sprintf("(%d, %d, '%s', %.2f, '%s', '%s', %d)",
			i, 1+rng.Intn(nCust), tpchStatus[rng.Intn(3)], 1000+rng.Float64()*450000,
			odate, tpchPriorities[rng.Intn(5)], rng.Intn(2)))
		nl := 1 + rng.Intn(nLinePerOrder)
		for ln := 1; ln <= nl; ln++ {
			lineRows = append(lineRows, fmt.Sprintf("(%d, %d, %d, %d, %.1f, %.2f, %.2f, %.2f, '%s', '%s', '%s', '%s', '%s', '%s')",
				i, 1+rng.Intn(nPart), 1+rng.Intn(nSupp), ln, 1+rng.Float64()*49,
				900+rng.Float64()*100000, rng.Float64()*0.1, rng.Float64()*0.08,
				[]string{"R", "A", "N"}[rng.Intn(3)], []string{"O", "F"}[rng.Intn(2)],
				date(rng, 1992, 1998), date(rng, 1992, 1998), date(rng, 1992, 1998),
				tpchModes[rng.Intn(len(tpchModes))]))
		}
	}
	if err := insertBatch(e, "orders", rows); err != nil {
		return err
	}
	return insertBatch(e, "lineitem", lineRows)
}

// tpchDDL is the TPC-H schema without indexes; LoadTPCHSF creates the
// indexes after the data load so each build streams the table once
// instead of rebuilding per inserted batch.
const tpchDDL = `
CREATE TABLE region (r_regionkey INTEGER, r_name VARCHAR(25), r_comment VARCHAR(120));
CREATE TABLE nation (n_nationkey INTEGER, n_name VARCHAR(25), n_regionkey INTEGER, n_comment VARCHAR(120));
CREATE TABLE supplier (s_suppkey INTEGER, s_name VARCHAR(25), s_nationkey INTEGER, s_acctbal FLOAT, s_comment VARCHAR(100));
CREATE TABLE customer (c_custkey INTEGER, c_name VARCHAR(25), c_nationkey INTEGER, c_mktsegment VARCHAR(10), c_acctbal FLOAT, c_phone VARCHAR(15));
CREATE TABLE part (p_partkey INTEGER, p_name VARCHAR(55), p_type VARCHAR(25), p_size INTEGER, p_container VARCHAR(10), p_retailprice FLOAT, p_brand VARCHAR(10));
CREATE TABLE partsupp (ps_partkey INTEGER, ps_suppkey INTEGER, ps_availqty INTEGER, ps_supplycost FLOAT);
CREATE TABLE orders (o_orderkey INTEGER, o_custkey INTEGER, o_orderstatus VARCHAR(1), o_totalprice FLOAT, o_orderdate DATE, o_orderpriority VARCHAR(15), o_shippriority INTEGER);
CREATE TABLE lineitem (l_orderkey INTEGER, l_partkey INTEGER, l_suppkey INTEGER, l_linenumber INTEGER, l_quantity FLOAT, l_extendedprice FLOAT, l_discount FLOAT, l_tax FLOAT, l_returnflag VARCHAR(1), l_linestatus VARCHAR(1), l_shipdate DATE, l_commitdate DATE, l_receiptdate DATE, l_shipmode VARCHAR(10));
`

const tpchIndexDDL = `
CREATE INDEX customer_pk ON customer (c_custkey);
CREATE INDEX orders_pk ON orders (o_orderkey);
CREATE INDEX orders_custkey ON orders (o_custkey);
CREATE INDEX lineitem_orderkey ON lineitem (l_orderkey);
CREATE INDEX part_pk ON part (p_partkey);
CREATE INDEX supplier_pk ON supplier (s_suppkey);
`

// bulkLoader streams storage.Rows into a table through InsertBatch in
// bounded flushes, so a load's resident footprint is one flush plus the
// table's mutable tail — sealed segments spill to disk as they fill when
// the table is disk-backed. The outer rows slice is reused across
// flushes (InsertBatch copies the row headers into its own tail blocks);
// the per-row arrays are freshly allocated and owned by the table.
type bulkLoader struct {
	tbl  *storage.Table
	rows []storage.Row
}

// bulkFlushRows is sized so a flush of the widest table (lineitem,
// 14 columns) stays in the low tens of megabytes.
const bulkFlushRows = 50_000

func (b *bulkLoader) add(r storage.Row) error {
	b.rows = append(b.rows, r)
	if len(b.rows) >= bulkFlushRows {
		return b.flush()
	}
	return nil
}

func (b *bulkLoader) flush() error {
	if len(b.rows) == 0 {
		return nil
	}
	if err := b.tbl.InsertBatch(b.rows); err != nil {
		return err
	}
	b.rows = b.rows[:0]
	return nil
}

func bulkLoaderFor(e *engine.Engine, table string) (*bulkLoader, error) {
	tbl, err := e.Cat.Table(table)
	if err != nil {
		return nil, err
	}
	return &bulkLoader{tbl: tbl, rows: make([]storage.Row, 0, bulkFlushRows)}, nil
}

// LoadTPCHSF creates and bulk-loads the eight TPC-H tables at the
// official scale-factor row counts (SF 1: 10k suppliers, 150k customers,
// 200k parts, 800k partsupp rows, 1.5M orders, ~6M lineitem rows) with
// deterministic data under the seed, using the same value domains as
// LoadTPCH so TPCHWorkload runs unchanged. Unlike LoadTPCH — which
// builds SQL INSERT text and is hardwired to toy scales — rows stream
// through storage.Table.InsertBatch in bounded flushes, and on a
// disk-backed catalog every sealed segment spills before the next flush
// is built: seeding SF >= 1 never holds the dataset resident. Indexes
// are created after the load, streaming each table once.
func LoadTPCHSF(e *engine.Engine, sf float64, seed int64) error {
	if err := LoadTPCHSFNoIndex(e, sf, seed); err != nil {
		return err
	}
	_, err := e.ExecScript(tpchIndexDDL)
	return err
}

// LoadTPCHSFNoIndex is LoadTPCHSF without the secondary indexes. Index
// entries are not durable (only the DDL is): every reopen of a
// disk-backed directory rebuilds them by streaming the whole dataset
// through the buffer pool. Sequential-scan benchmarks that reopen one
// seeded directory under several pool budgets use this variant so the
// reopens stay footer-only and the first segment fault is the measured
// scan's, not the index rebuild's.
func LoadTPCHSFNoIndex(e *engine.Engine, sf float64, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	if _, err := e.ExecScript(tpchDDL); err != nil {
		return err
	}

	nSupp := scaled(10_000, sf)
	nCust := scaled(150_000, sf)
	nPart := scaled(200_000, sf)
	nOrders := scaled(1_500_000, sf)

	di, df, ds := datum.NewInt, datum.NewFloat, datum.NewString

	ld, err := bulkLoaderFor(e, "region")
	if err != nil {
		return err
	}
	for i, r := range tpchRegions {
		if err := ld.add(storage.Row{di(int64(i)), ds(r), ds(fmt.Sprintf("region comment %d", i))}); err != nil {
			return err
		}
	}
	if err := ld.flush(); err != nil {
		return err
	}

	if ld, err = bulkLoaderFor(e, "nation"); err != nil {
		return err
	}
	for i := 0; i < 25; i++ {
		if err := ld.add(storage.Row{di(int64(i)), ds(fmt.Sprintf("NATION%02d", i)), di(int64(i % 5)),
			ds(fmt.Sprintf("nation comment %d", i))}); err != nil {
			return err
		}
	}
	if err := ld.flush(); err != nil {
		return err
	}

	if ld, err = bulkLoaderFor(e, "supplier"); err != nil {
		return err
	}
	for i := 1; i <= nSupp; i++ {
		if err := ld.add(storage.Row{di(int64(i)), ds(fmt.Sprintf("Supplier%05d", i)),
			di(int64(rng.Intn(25))), df(round2(rng.Float64()*11000 - 1000)),
			ds(fmt.Sprintf("supplier comment %d", i))}); err != nil {
			return err
		}
	}
	if err := ld.flush(); err != nil {
		return err
	}

	if ld, err = bulkLoaderFor(e, "customer"); err != nil {
		return err
	}
	for i := 1; i <= nCust; i++ {
		if err := ld.add(storage.Row{di(int64(i)), ds(fmt.Sprintf("Customer%06d", i)),
			di(int64(rng.Intn(25))), ds(tpchSegments[rng.Intn(len(tpchSegments))]),
			df(round2(rng.Float64()*11000 - 1000)),
			ds(fmt.Sprintf("%02d-%03d-%04d", 10+rng.Intn(25), rng.Intn(1000), rng.Intn(10000)))}); err != nil {
			return err
		}
	}
	if err := ld.flush(); err != nil {
		return err
	}

	if ld, err = bulkLoaderFor(e, "part"); err != nil {
		return err
	}
	for i := 1; i <= nPart; i++ {
		if err := ld.add(storage.Row{di(int64(i)), ds(fmt.Sprintf("part name %d", i)),
			ds(tpchTypes[rng.Intn(len(tpchTypes))]), di(int64(1 + rng.Intn(50))),
			ds(tpchContainers[rng.Intn(len(tpchContainers))]), df(round2(900 + rng.Float64()*1100)),
			ds(fmt.Sprintf("Brand#%d%d", 1+rng.Intn(5), 1+rng.Intn(5)))}); err != nil {
			return err
		}
	}
	if err := ld.flush(); err != nil {
		return err
	}

	// partsupp: the official four suppliers per part.
	if ld, err = bulkLoaderFor(e, "partsupp"); err != nil {
		return err
	}
	for i := 1; i <= nPart; i++ {
		for s := 0; s < 4; s++ {
			if err := ld.add(storage.Row{di(int64(i)), di(int64(1 + rng.Intn(nSupp))),
				di(int64(rng.Intn(10000))), df(round2(rng.Float64() * 1000))}); err != nil {
				return err
			}
		}
	}
	if err := ld.flush(); err != nil {
		return err
	}

	// orders and lineitem generate interleaved (an order's line items
	// right after the order) so neither table's rows accumulate beyond
	// one flush.
	ordersLd, err := bulkLoaderFor(e, "orders")
	if err != nil {
		return err
	}
	linesLd, err := bulkLoaderFor(e, "lineitem")
	if err != nil {
		return err
	}
	for i := 1; i <= nOrders; i++ {
		odate := date(rng, 1992, 1998)
		if err := ordersLd.add(storage.Row{di(int64(i)), di(int64(1 + rng.Intn(nCust))),
			ds(tpchStatus[rng.Intn(3)]), df(round2(1000 + rng.Float64()*450000)),
			ds(odate), ds(tpchPriorities[rng.Intn(5)]), di(int64(rng.Intn(2)))}); err != nil {
			return err
		}
		nl := 1 + rng.Intn(7) // official: one to seven line items per order
		for ln := 1; ln <= nl; ln++ {
			if err := linesLd.add(storage.Row{di(int64(i)), di(int64(1 + rng.Intn(nPart))),
				di(int64(1 + rng.Intn(nSupp))), di(int64(ln)),
				df(float64(1 + rng.Intn(50))), df(round2(900 + rng.Float64()*100000)),
				df(round2(rng.Float64() * 0.1)), df(round2(rng.Float64() * 0.08)),
				ds([]string{"R", "A", "N"}[rng.Intn(3)]), ds([]string{"O", "F"}[rng.Intn(2)]),
				ds(date(rng, 1992, 1998)), ds(date(rng, 1992, 1998)), ds(date(rng, 1992, 1998)),
				ds(tpchModes[rng.Intn(len(tpchModes))])}); err != nil {
				return err
			}
		}
	}
	if err := ordersLd.flush(); err != nil {
		return err
	}
	return linesLd.flush()
}

// round2 keeps generated monetary values at two decimals, matching the
// '%.2f' literals the SQL-text loader produces.
func round2(v float64) float64 { return math.Round(v*100) / 100 }

// TPCHForeignKeys returns the join graph of the TPC-H schema, used by the
// random query generator.
func TPCHForeignKeys() []FK {
	return []FK{
		{"nation", "n_regionkey", "region", "r_regionkey"},
		{"supplier", "s_nationkey", "nation", "n_nationkey"},
		{"customer", "c_nationkey", "nation", "n_nationkey"},
		{"partsupp", "ps_partkey", "part", "p_partkey"},
		{"partsupp", "ps_suppkey", "supplier", "s_suppkey"},
		{"orders", "o_custkey", "customer", "c_custkey"},
		{"lineitem", "l_orderkey", "orders", "o_orderkey"},
		{"lineitem", "l_partkey", "part", "p_partkey"},
		{"lineitem", "l_suppkey", "supplier", "s_suppkey"},
	}
}

// TPCHWorkload returns the 22 TPC-H benchmark queries, adapted to the SQL
// subset of the substrate engine (correlated subqueries and views are
// rewritten into joins or pre-aggregations; the analytical intent — the
// tables touched, the join shape, the aggregation — is preserved).
// DESIGN.md documents the adaptation.
func TPCHWorkload() []Workload {
	return []Workload{
		{"Q1", `SELECT l_returnflag, l_linestatus, SUM(l_quantity) AS sum_qty,
			SUM(l_extendedprice) AS sum_base_price,
			SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
			AVG(l_quantity) AS avg_qty, AVG(l_extendedprice) AS avg_price,
			AVG(l_discount) AS avg_disc, COUNT(*) AS count_order
			FROM lineitem WHERE l_shipdate <= '1998-09-02'
			GROUP BY l_returnflag, l_linestatus
			ORDER BY l_returnflag, l_linestatus`},
		{"Q2", `SELECT s.s_acctbal, s.s_name, n.n_name, p.p_partkey, ps.ps_supplycost
			FROM part p, supplier s, partsupp ps, nation n, region r
			WHERE p.p_partkey = ps.ps_partkey AND s.s_suppkey = ps.ps_suppkey
			AND p.p_size = 15 AND s.s_nationkey = n.n_nationkey
			AND n.n_regionkey = r.r_regionkey AND r.r_name = 'EUROPE'
			ORDER BY s.s_acctbal DESC, n.n_name, s.s_name LIMIT 100`},
		{"Q3", `SELECT l.l_orderkey, SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue,
			o.o_orderdate, o.o_shippriority
			FROM customer c, orders o, lineitem l
			WHERE c.c_mktsegment = 'BUILDING' AND c.c_custkey = o.o_custkey
			AND l.l_orderkey = o.o_orderkey AND o.o_orderdate < '1995-03-15'
			AND l.l_shipdate > '1995-03-15'
			GROUP BY l.l_orderkey, o.o_orderdate, o.o_shippriority
			ORDER BY revenue DESC, o.o_orderdate LIMIT 10`},
		{"Q4", `SELECT o.o_orderpriority, COUNT(*) AS order_count
			FROM orders o, lineitem l
			WHERE o.o_orderdate >= '1993-07-01' AND o.o_orderdate < '1993-10-01'
			AND l.l_orderkey = o.o_orderkey AND l.l_commitdate < l.l_receiptdate
			GROUP BY o.o_orderpriority ORDER BY o.o_orderpriority`},
		{"Q5", `SELECT n.n_name, SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue
			FROM customer c, orders o, lineitem l, supplier s, nation n, region r
			WHERE c.c_custkey = o.o_custkey AND l.l_orderkey = o.o_orderkey
			AND l.l_suppkey = s.s_suppkey AND c.c_nationkey = s.s_nationkey
			AND s.s_nationkey = n.n_nationkey AND n.n_regionkey = r.r_regionkey
			AND r.r_name = 'ASIA' AND o.o_orderdate >= '1994-01-01'
			AND o.o_orderdate < '1995-01-01'
			GROUP BY n.n_name ORDER BY revenue DESC`},
		{"Q6", `SELECT SUM(l_extendedprice * l_discount) AS revenue
			FROM lineitem WHERE l_shipdate >= '1994-01-01' AND l_shipdate < '1995-01-01'
			AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24`},
		{"Q7", `SELECT n.n_name, SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue
			FROM supplier s, lineitem l, orders o, customer c, nation n
			WHERE s.s_suppkey = l.l_suppkey AND o.o_orderkey = l.l_orderkey
			AND c.c_custkey = o.o_custkey AND s.s_nationkey = n.n_nationkey
			AND l.l_shipdate BETWEEN '1995-01-01' AND '1996-12-31'
			GROUP BY n.n_name ORDER BY n.n_name`},
		{"Q8", `SELECT o.o_orderdate, SUM(l.l_extendedprice * (1 - l.l_discount)) AS volume
			FROM part p, supplier s, lineitem l, orders o, customer c, nation n, region r
			WHERE p.p_partkey = l.l_partkey AND s.s_suppkey = l.l_suppkey
			AND l.l_orderkey = o.o_orderkey AND o.o_custkey = c.c_custkey
			AND c.c_nationkey = n.n_nationkey AND n.n_regionkey = r.r_regionkey
			AND r.r_name = 'AMERICA' AND o.o_orderdate BETWEEN '1995-01-01' AND '1996-12-31'
			AND p.p_type = 'ECONOMY BRASS'
			GROUP BY o.o_orderdate ORDER BY o.o_orderdate`},
		{"Q9", `SELECT n.n_name, SUM(l.l_extendedprice * (1 - l.l_discount) - ps.ps_supplycost * l.l_quantity) AS profit
			FROM part p, supplier s, lineitem l, partsupp ps, nation n
			WHERE s.s_suppkey = l.l_suppkey AND ps.ps_suppkey = l.l_suppkey
			AND ps.ps_partkey = l.l_partkey AND p.p_partkey = l.l_partkey
			AND s.s_nationkey = n.n_nationkey AND p.p_name LIKE '%5%'
			GROUP BY n.n_name ORDER BY n.n_name`},
		{"Q10", `SELECT c.c_custkey, c.c_name, SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue,
			c.c_acctbal, n.n_name
			FROM customer c, orders o, lineitem l, nation n
			WHERE c.c_custkey = o.o_custkey AND l.l_orderkey = o.o_orderkey
			AND o.o_orderdate >= '1993-10-01' AND o.o_orderdate < '1994-01-01'
			AND l.l_returnflag = 'R' AND c.c_nationkey = n.n_nationkey
			GROUP BY c.c_custkey, c.c_name, c.c_acctbal, n.n_name
			ORDER BY revenue DESC LIMIT 20`},
		{"Q11", `SELECT ps.ps_partkey, SUM(ps.ps_supplycost * ps.ps_availqty) AS value
			FROM partsupp ps, supplier s, nation n
			WHERE ps.ps_suppkey = s.s_suppkey AND s.s_nationkey = n.n_nationkey
			AND n.n_name = 'NATION07'
			GROUP BY ps.ps_partkey HAVING SUM(ps.ps_supplycost * ps.ps_availqty) > 100
			ORDER BY value DESC`},
		{"Q12", `SELECT l.l_shipmode, COUNT(*) AS mode_count
			FROM orders o, lineitem l
			WHERE o.o_orderkey = l.l_orderkey AND l.l_shipmode IN ('MAIL', 'SHIP')
			AND l.l_commitdate < l.l_receiptdate AND l.l_shipdate < l.l_commitdate
			AND l.l_receiptdate >= '1994-01-01' AND l.l_receiptdate < '1995-01-01'
			GROUP BY l.l_shipmode ORDER BY l.l_shipmode`},
		{"Q13", `SELECT c.c_custkey, COUNT(*) AS c_count
			FROM customer c LEFT JOIN orders o ON c.c_custkey = o.o_custkey
			GROUP BY c.c_custkey ORDER BY c_count DESC LIMIT 50`},
		{"Q14", `SELECT SUM(l.l_extendedprice * (1 - l.l_discount)) AS promo_revenue
			FROM lineitem l, part p
			WHERE l.l_partkey = p.p_partkey AND l.l_shipdate >= '1995-09-01'
			AND l.l_shipdate < '1995-10-01' AND p.p_type LIKE 'PROMO%'`},
		{"Q15", `SELECT l_suppkey, SUM(l_extendedprice * (1 - l_discount)) AS total_revenue
			FROM lineitem WHERE l_shipdate >= '1996-01-01' AND l_shipdate < '1996-04-01'
			GROUP BY l_suppkey ORDER BY total_revenue DESC LIMIT 1`},
		{"Q16", `SELECT p.p_brand, p.p_type, p.p_size, COUNT(DISTINCT ps.ps_suppkey) AS supplier_cnt
			FROM partsupp ps, part p
			WHERE p.p_partkey = ps.ps_partkey AND p.p_brand <> 'Brand#45'
			AND p.p_size IN (1, 9, 14, 19, 23, 36, 45, 49)
			GROUP BY p.p_brand, p.p_type, p.p_size
			ORDER BY supplier_cnt DESC, p.p_brand LIMIT 50`},
		{"Q17", `SELECT AVG(l.l_extendedprice) AS avg_yearly
			FROM lineitem l, part p
			WHERE p.p_partkey = l.l_partkey AND p.p_brand = 'Brand#23'
			AND p.p_container = 'MED BOX' AND l.l_quantity < 10`},
		{"Q18", `SELECT c.c_name, c.c_custkey, o.o_orderkey, o.o_orderdate, o.o_totalprice, SUM(l.l_quantity) AS total_qty
			FROM customer c, orders o, lineitem l
			WHERE c.c_custkey = o.o_custkey AND o.o_orderkey = l.l_orderkey
			AND o.o_totalprice > 300000
			GROUP BY c.c_name, c.c_custkey, o.o_orderkey, o.o_orderdate, o.o_totalprice
			HAVING SUM(l.l_quantity) > 100
			ORDER BY o.o_totalprice DESC, o.o_orderdate LIMIT 100`},
		{"Q19", `SELECT SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue
			FROM lineitem l, part p
			WHERE p.p_partkey = l.l_partkey AND p.p_container IN ('SM CASE', 'SM BOX')
			AND l.l_quantity BETWEEN 1 AND 11 AND p.p_size BETWEEN 1 AND 5
			AND l.l_shipmode IN ('AIR', 'REG AIR')`},
		{"Q20", `SELECT s.s_name, s.s_acctbal
			FROM supplier s, nation n
			WHERE s.s_nationkey = n.n_nationkey AND n.n_name = 'NATION03'
			AND s.s_suppkey IN (SELECT ps_suppkey FROM partsupp WHERE ps_availqty > 5000)
			ORDER BY s.s_name`},
		{"Q21", `SELECT s.s_name, COUNT(*) AS numwait
			FROM supplier s, lineitem l, orders o, nation n
			WHERE s.s_suppkey = l.l_suppkey AND o.o_orderkey = l.l_orderkey
			AND o.o_orderstatus = 'F' AND l.l_receiptdate > l.l_commitdate
			AND s.s_nationkey = n.n_nationkey
			GROUP BY s.s_name ORDER BY numwait DESC, s.s_name LIMIT 100`},
		{"Q22", `SELECT c.c_nationkey, COUNT(*) AS numcust, SUM(c.c_acctbal) AS totacctbal
			FROM customer c
			WHERE c.c_acctbal > 0 AND c.c_custkey NOT IN (SELECT o_custkey FROM orders)
			GROUP BY c.c_nationkey ORDER BY c.c_nationkey`},
	}
}
