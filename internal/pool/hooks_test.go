package pool

import (
	"reflect"
	"sync"
	"testing"
)

func TestMutationHooksUpdate(t *testing.T) {
	s := NewSeededStore()
	var got []Mutation
	s.OnMutation(func(m Mutation) { got = append(got, m) })

	res := s.MustExec(`UPDATE pg SET desc = 'reorder the rows of $R1$' WHERE name = 'sort'`)
	if res.Affected != 2 {
		t.Fatalf("Affected = %d, want 2 (both pg sort objects)", res.Affected)
	}
	// Two objects share the name; the hook coalesces them into one event.
	want := []Mutation{{Source: "pg", Name: "sort", Kind: "update"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("events = %+v, want %+v", got, want)
	}
}

func TestMutationHooksCreateAndDrop(t *testing.T) {
	s := NewSeededStore()
	var got []Mutation
	s.OnMutation(func(m Mutation) { got = append(got, m) })

	s.RegisterSource("pg", "gather")
	s.MustExec(`CREATE POPERATOR gather FOR pg (
		TYPE = 'unary',
		DESC = 'gather partial results from parallel workers on $R1$',
		COND = 'false')`)
	s.MustExec(`DROP POPERATOR gather FOR pg`)

	want := []Mutation{
		{Source: "pg", Name: "gather", Kind: "create"},
		{Source: "pg", Name: "gather", Kind: "drop"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("events = %+v, want %+v", got, want)
	}
}

func TestMutationHooksNotFiredOnFailureOrRead(t *testing.T) {
	s := NewSeededStore()
	fired := 0
	s.OnMutation(func(Mutation) { fired++ })

	if _, err := s.Exec(`DROP POPERATOR nosuchop FOR pg`); err == nil {
		t.Fatal("expected drop of unknown operator to fail")
	}
	if _, err := s.Exec(`SELECT name FROM pg WHERE type = 'binary'`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(`COMPOSE hash, hashjoin FROM pg`); err != nil {
		t.Fatal(err)
	}
	// An UPDATE matching zero rows mutates nothing.
	if _, err := s.Exec(`UPDATE pg SET alias = 'x' WHERE name = 'nosuchop'`); err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Fatalf("hooks fired %d times on non-mutations", fired)
	}
}

// TestStoreConcurrentAccess exercises the store's internal locking: readers
// (lookups, composes) race with POOL writers; run with -race.
func TestStoreConcurrentAccess(t *testing.T) {
	s := NewSeededStore()
	s.OnMutation(func(Mutation) {})
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				switch g % 3 {
				case 0:
					if _, err := s.Lookup("pg", "hashjoin"); err != nil {
						t.Error(err)
						return
					}
				case 1:
					if _, err := s.ComposeTemplate("pg", []string{"hash", "hashjoin"}, nil); err != nil {
						t.Error(err)
						return
					}
				case 2:
					if _, err := s.Exec(`UPDATE pg SET desc = 'sort the rows of $R1$' WHERE name = 'sort'`); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
