package pool_test

import (
	"strings"
	"testing"

	"lantern/internal/plan"
	"lantern/internal/plantest"
	"lantern/internal/pool"
)

// TestCorpusOperatorCoverage is the POOL leg of the cross-dialect golden
// corpus harness: every operator appearing in any corpus plan must have a
// seeded POEM object and a composable description template in its
// dialect. This is what keeps "add a dialect" honest — a new frontend
// cannot land a corpus whose vocabulary the narration store cannot speak.
func TestCorpusOperatorCoverage(t *testing.T) {
	store := pool.NewSeededStore()
	for _, e := range plantest.Entries(t) {
		tree, err := plan.Parse(e.Dialect, e.Doc)
		if err != nil {
			t.Fatalf("%s/%s: %v", e.Dialect, e.Name, err)
		}
		for _, op := range tree.OperatorSet() {
			obj, err := store.Lookup(e.Dialect, op)
			if err != nil {
				t.Errorf("%s/%s: operator %q has no POEM entry: %v", e.Dialect, e.Name, op, err)
				continue
			}
			tpl, err := store.ComposeTemplate(e.Dialect, []string{obj.Name}, nil)
			if err != nil {
				t.Errorf("%s/%s: COMPOSE %s failed: %v", e.Dialect, e.Name, op, err)
				continue
			}
			if strings.TrimSpace(tpl) == "" {
				t.Errorf("%s/%s: operator %q composes to an empty template", e.Dialect, e.Name, op)
			}
		}
	}
}

// TestCorpusDialectsRegistered: every corpus dialect must be a registered
// POOL source whose declared vocabulary covers the corpus operators, so
// SMEs can CREATE/UPDATE descriptions for all of them.
func TestCorpusDialectsRegistered(t *testing.T) {
	store := pool.NewSeededStore()
	sources := make(map[string]bool)
	for _, s := range store.Sources() {
		sources[s] = true
	}
	for _, e := range plantest.Entries(t) {
		if !sources[e.Dialect] {
			t.Errorf("corpus dialect %q is not a registered POOL source (have %v)", e.Dialect, store.Sources())
		}
	}
}
