package pool

// SeedStandard populates a store with the descriptions two SMEs would
// author for the supported engines (pg, sqlserver, mysql, db2), issued as
// POOL statements — the
// exact workflow the paper's §4 prescribes. The pg templates are chosen so
// RULE-LANTERN reproduces the paper's Example 5.1 narration verbatim
// ("hash T1 and perform hash join on inproceedings and T1 on condition ...").
func SeedStandard(s *Store) {
	stmts := []string{
		// --- PostgreSQL -------------------------------------------------
		`CREATE POPERATOR seqscan FOR pg (
			ALIAS = 'sequential scan',
			TYPE = 'unary',
			DEFN = 'scans the entire relation sequentially, evaluating the filter condition on every tuple',
			DESC = 'perform sequential scan on $R1$ and filtering on $cond$',
			COND = 'true')`,
		`CREATE POPERATOR indexscan FOR pg (
			ALIAS = 'index scan',
			TYPE = 'unary',
			DEFN = 'uses an index to fetch only the tuples matching the condition',
			DESC = 'perform index scan on $R1$ using index on $index$ and filtering on $cond$',
			COND = 'true')`,
		`CREATE POPERATOR hashjoin FOR pg (
			TYPE = 'binary',
			DEFN = 'a type of join algorithm that uses hashing to create subsets of tuples',
			DESC = 'perform hash join',
			COND = 'true')`,
		`CREATE POPERATOR hash FOR pg (
			TYPE = 'unary',
			DEFN = 'builds an in-memory hash table over its input for the enclosing hash join',
			DESC = 'hash $R1$',
			COND = 'false',
			TARGET = 'hashjoin')`,
		`CREATE POPERATOR mergejoin FOR pg (
			TYPE = 'binary',
			DEFN = 'joins two inputs sorted on the join keys by merging them',
			DESC = 'perform merge join',
			COND = 'true')`,
		`CREATE POPERATOR nestedloop FOR pg (
			ALIAS = 'nested loop join',
			TYPE = 'binary',
			DEFN = 'joins by scanning the inner relation once per outer tuple',
			DESC = 'perform nested loop join',
			COND = 'true')`,
		`CREATE POPERATOR aggregate FOR pg (
			TYPE = 'unary',
			DEFN = 'computes aggregate functions over the whole input',
			DESC = 'perform aggregate on $R1$ and filtering on $cond$',
			COND = 'true')`,
		`CREATE POPERATOR groupaggregate FOR pg (
			ALIAS = 'aggregate',
			TYPE = 'unary',
			DEFN = 'computes aggregates over groups of sorted input tuples',
			DESC = 'perform aggregate on $R1$ with grouping on attribute $group$ and filtering on $cond$',
			COND = 'true')`,
		`CREATE POPERATOR hashaggregate FOR pg (
			ALIAS = 'hash aggregate',
			TYPE = 'unary',
			DEFN = 'computes aggregates over groups found via a hash table',
			DESC = 'perform hash aggregate on $R1$ with grouping on attribute $group$ and filtering on $cond$',
			COND = 'true')`,
		`CREATE POPERATOR sort FOR pg (
			TYPE = 'unary',
			DEFN = 'sorts the input on the given keys',
			DESC = 'sort $R1$',
			COND = 'false',
			TARGET = 'mergejoin')`,
		`CREATE POPERATOR sort FOR pg (
			TYPE = 'unary',
			DESC = 'sort $R1$',
			COND = 'false',
			TARGET = 'groupaggregate')`,
		`CREATE POPERATOR materialize FOR pg (
			TYPE = 'unary',
			DEFN = 'materializes its input so it can be rescanned cheaply',
			DESC = 'materialize $R1$',
			COND = 'false')`,
		`CREATE POPERATOR unique FOR pg (
			ALIAS = 'duplicate removal',
			TYPE = 'unary',
			DEFN = 'removes duplicate rows from sorted input',
			DESC = 'perform duplicate removal on $R1$',
			COND = 'false')`,
		`CREATE POPERATOR limit FOR pg (
			TYPE = 'unary',
			DEFN = 'returns only the first requested rows of its input',
			DESC = 'keep only the first requested rows of $R1$',
			COND = 'false')`,
		`CREATE POPERATOR result FOR pg (
			TYPE = 'unary',
			DEFN = 'computes a constant result without reading any relation',
			DESC = 'produce a constant result',
			COND = 'false')`,

		// --- SQL Server ---------------------------------------------------
		`CREATE POPERATOR tablescan FOR sqlserver (
			ALIAS = 'table scan',
			TYPE = 'unary',
			DEFN = 'scans every row of the table',
			DESC = 'perform table scan on $R1$ and filtering on $cond$',
			COND = 'true')`,
		`CREATE POPERATOR indexseek FOR sqlserver (
			ALIAS = 'index seek',
			TYPE = 'unary',
			DEFN = 'seeks directly to matching rows through an index',
			DESC = 'perform index seek on $R1$ using index on $index$ and filtering on $cond$',
			COND = 'true')`,
		`CREATE POPERATOR hashmatch FOR sqlserver (
			ALIAS = 'hash join',
			TYPE = 'binary',
			DEFN = 'a join algorithm that builds a hash table on one input and probes it with the other',
			DESC = 'perform hash join',
			COND = 'true')`,
		`CREATE POPERATOR mergejoin FOR sqlserver (
			ALIAS = 'merge join',
			TYPE = 'binary',
			DEFN = 'merges two sorted inputs on their join keys',
			DESC = 'perform merge join',
			COND = 'true')`,
		`CREATE POPERATOR nestedloops FOR sqlserver (
			ALIAS = 'nested loop join',
			TYPE = 'binary',
			DEFN = 'scans the inner input once per outer row',
			DESC = 'perform nested loop join',
			COND = 'true')`,
		`CREATE POPERATOR streamaggregate FOR sqlserver (
			ALIAS = 'stream aggregate',
			TYPE = 'unary',
			DEFN = 'aggregates sorted input groups in a streaming pass',
			DESC = 'perform aggregate on $R1$ with grouping on attribute $group$ and filtering on $cond$',
			COND = 'true')`,
		`CREATE POPERATOR hashmatchaggregate FOR sqlserver (
			ALIAS = 'hash aggregate',
			TYPE = 'unary',
			DEFN = 'aggregates groups discovered via hashing',
			DESC = 'perform hash aggregate on $R1$ with grouping on attribute $group$ and filtering on $cond$',
			COND = 'true')`,
		`CREATE POPERATOR sort FOR sqlserver (
			TYPE = 'unary',
			DESC = 'sort $R1$',
			COND = 'false',
			TARGET = 'mergejoin')`,
		`CREATE POPERATOR sort FOR sqlserver (
			TYPE = 'unary',
			DESC = 'sort $R1$',
			COND = 'false',
			TARGET = 'streamaggregate')`,
		`CREATE POPERATOR distinctsort FOR sqlserver (
			ALIAS = 'duplicate removal',
			TYPE = 'unary',
			DEFN = 'sorts and removes duplicate rows',
			DESC = 'perform duplicate removal on $R1$',
			COND = 'false')`,
		`CREATE POPERATOR top FOR sqlserver (
			TYPE = 'unary',
			DEFN = 'returns only the first requested rows',
			DESC = 'keep only the first requested rows of $R1$',
			COND = 'false')`,
		`CREATE POPERATOR tablespool FOR sqlserver (
			ALIAS = 'spool',
			TYPE = 'unary',
			DESC = 'materialize $R1$',
			COND = 'false')`,
		`CREATE POPERATOR constantscan FOR sqlserver (
			TYPE = 'unary',
			DESC = 'produce a constant result',
			COND = 'false')`,

		// --- MySQL (EXPLAIN FORMAT=JSON frontend) --------------------------
		`CREATE POPERATOR tablescan FOR mysql (
			ALIAS = 'table scan',
			TYPE = 'unary',
			DEFN = 'reads every row of the table (access type ALL)',
			DESC = 'perform table scan on $R1$ and filtering on $cond$',
			COND = 'true')`,
		`CREATE POPERATOR indexlookup FOR mysql (
			ALIAS = 'index lookup',
			TYPE = 'unary',
			DEFN = 'fetches matching rows through an index (access types ref, eq_ref, const)',
			DESC = 'perform index lookup on $R1$ using index on $index$ and filtering on $cond$',
			COND = 'true')`,
		`CREATE POPERATOR indexrangescan FOR mysql (
			ALIAS = 'index range scan',
			TYPE = 'unary',
			DEFN = 'scans a contiguous range of an index (access type range)',
			DESC = 'perform index range scan on $R1$ using index on $index$ and filtering on $cond$',
			COND = 'true')`,
		`CREATE POPERATOR indexscan FOR mysql (
			ALIAS = 'index scan',
			TYPE = 'unary',
			DEFN = 'scans an entire index in order (access type index)',
			DESC = 'perform full index scan on $R1$ using index on $index$ and filtering on $cond$',
			COND = 'true')`,
		`CREATE POPERATOR nestedloop FOR mysql (
			ALIAS = 'nested loop join',
			TYPE = 'binary',
			DEFN = 'joins by scanning the inner input once per outer row',
			DESC = 'perform nested loop join',
			COND = 'true')`,
		`CREATE POPERATOR hashjoin FOR mysql (
			ALIAS = 'hash join',
			TYPE = 'binary',
			DEFN = 'joins through an in-memory hash table (using_join_buffer: hash join)',
			DESC = 'perform hash join',
			COND = 'true')`,
		`CREATE POPERATOR filesort FOR mysql (
			ALIAS = 'filesort',
			TYPE = 'unary',
			DEFN = 'sorts the rows, spilling to disk when they exceed the sort buffer',
			DESC = 'sort $R1$',
			COND = 'false')`,
		`CREATE POPERATOR group FOR mysql (
			ALIAS = 'group aggregate',
			TYPE = 'unary',
			DEFN = 'computes aggregate functions over groups of input rows',
			DESC = 'perform aggregate on $R1$ with grouping on attribute $group$ and filtering on $cond$',
			COND = 'true')`,
		`CREATE POPERATOR duplicatesremoval FOR mysql (
			ALIAS = 'duplicate removal',
			TYPE = 'unary',
			DEFN = 'removes duplicate rows (DISTINCT)',
			DESC = 'perform duplicate removal on $R1$',
			COND = 'false')`,
		`CREATE POPERATOR materialize FOR mysql (
			ALIAS = 'materialized subquery',
			TYPE = 'unary',
			DEFN = 'materializes a derived table from a subquery',
			DESC = 'materialize $R1$',
			COND = 'false')`,
		`CREATE POPERATOR bufferresult FOR mysql (
			ALIAS = 'buffer result',
			TYPE = 'unary',
			DEFN = 'buffers its input so it can be rescanned cheaply',
			DESC = 'materialize $R1$',
			COND = 'false')`,
		`CREATE POPERATOR constantresult FOR mysql (
			TYPE = 'unary',
			DEFN = 'computes a constant result without reading any table',
			DESC = 'produce a constant result',
			COND = 'false')`,

		// --- Native (the substrate engine's direct plan bridge) -----------
		// The bridge emits the engine's own operator vocabulary (pg-style
		// names), so this mirrors the pg descriptions; it is a separate
		// POOL source so SMEs can tune the wording of "what actually
		// happened" narrations independently of the PostgreSQL frontend.
		`CREATE POPERATOR seqscan FOR native (
			ALIAS = 'sequential scan',
			TYPE = 'unary',
			DEFN = 'scans the entire relation sequentially, evaluating the filter condition on every tuple',
			DESC = 'perform sequential scan on $R1$ and filtering on $cond$',
			COND = 'true')`,
		`CREATE POPERATOR indexscan FOR native (
			ALIAS = 'index scan',
			TYPE = 'unary',
			DEFN = 'uses an index to fetch only the tuples matching the condition',
			DESC = 'perform index scan on $R1$ using index on $index$ and filtering on $cond$',
			COND = 'true')`,
		`CREATE POPERATOR hashjoin FOR native (
			TYPE = 'binary',
			DEFN = 'a type of join algorithm that uses hashing to create subsets of tuples',
			DESC = 'perform hash join',
			COND = 'true')`,
		`CREATE POPERATOR hash FOR native (
			TYPE = 'unary',
			DEFN = 'builds an in-memory hash table over its input for the enclosing hash join',
			DESC = 'hash $R1$',
			COND = 'false',
			TARGET = 'hashjoin')`,
		`CREATE POPERATOR mergejoin FOR native (
			TYPE = 'binary',
			DEFN = 'joins two inputs sorted on the join keys by merging them',
			DESC = 'perform merge join',
			COND = 'true')`,
		`CREATE POPERATOR nestedloop FOR native (
			ALIAS = 'nested loop join',
			TYPE = 'binary',
			DEFN = 'joins by scanning the inner relation once per outer tuple',
			DESC = 'perform nested loop join',
			COND = 'true')`,
		`CREATE POPERATOR aggregate FOR native (
			TYPE = 'unary',
			DEFN = 'computes aggregate functions over the whole input',
			DESC = 'perform aggregate on $R1$ and filtering on $cond$',
			COND = 'true')`,
		`CREATE POPERATOR groupaggregate FOR native (
			ALIAS = 'aggregate',
			TYPE = 'unary',
			DEFN = 'computes aggregates over groups of sorted input tuples',
			DESC = 'perform aggregate on $R1$ with grouping on attribute $group$ and filtering on $cond$',
			COND = 'true')`,
		`CREATE POPERATOR hashaggregate FOR native (
			ALIAS = 'hash aggregate',
			TYPE = 'unary',
			DEFN = 'computes aggregates over groups found via a hash table',
			DESC = 'perform hash aggregate on $R1$ with grouping on attribute $group$ and filtering on $cond$',
			COND = 'true')`,
		`CREATE POPERATOR sort FOR native (
			TYPE = 'unary',
			DEFN = 'sorts the input on the given keys',
			DESC = 'sort $R1$',
			COND = 'false',
			TARGET = 'mergejoin')`,
		`CREATE POPERATOR sort FOR native (
			TYPE = 'unary',
			DESC = 'sort $R1$',
			COND = 'false',
			TARGET = 'groupaggregate')`,
		`CREATE POPERATOR materialize FOR native (
			TYPE = 'unary',
			DEFN = 'materializes its input so it can be rescanned cheaply',
			DESC = 'materialize $R1$',
			COND = 'false')`,
		`CREATE POPERATOR unique FOR native (
			ALIAS = 'duplicate removal',
			TYPE = 'unary',
			DEFN = 'removes duplicate rows from sorted input',
			DESC = 'perform duplicate removal on $R1$',
			COND = 'false')`,
		`CREATE POPERATOR limit FOR native (
			TYPE = 'unary',
			DEFN = 'returns only the first requested rows of its input',
			DESC = 'keep only the first requested rows of $R1$',
			COND = 'false')`,
		`CREATE POPERATOR result FOR native (
			TYPE = 'unary',
			DEFN = 'computes a constant result without reading any relation',
			DESC = 'produce a constant result',
			COND = 'false')`,

		// --- DB2 (paper's running cross-engine example) --------------------
		`CREATE POPERATOR tbscan FOR db2 (
			ALIAS = 'table scan',
			TYPE = 'unary',
			DESC = 'perform table scan on $R1$',
			COND = 'false')`,
		`CREATE POPERATOR filter FOR db2 (
			TYPE = 'unary',
			DESC = 'filtering on $cond$',
			COND = 'true',
			TARGET = 'tbscan')`,
		`CREATE POPERATOR ixscan FOR db2 (
			ALIAS = 'index scan',
			TYPE = 'unary',
			DESC = 'perform index scan on $R1$ using index on $index$ and filtering on $cond$',
			COND = 'true')`,
		`CREATE POPERATOR hsjoin FOR db2 (
			ALIAS = 'hash join',
			TYPE = 'binary',
			DESC = 'perform hash join',
			COND = 'true')`,
		`CREATE POPERATOR msjoin FOR db2 (
			ALIAS = 'merge join',
			TYPE = 'binary',
			DESC = 'perform merge join',
			COND = 'true')`,
		`CREATE POPERATOR nljoin FOR db2 (
			ALIAS = 'nested loop join',
			TYPE = 'binary',
			DESC = 'perform nested loop join',
			COND = 'true')`,
		`CREATE POPERATOR zzjoin FOR db2 (
			ALIAS = 'zigzag join',
			TYPE = 'binary',
			DEFN = 'a multi-way star join that zigzags between dimension-table indexes to skip non-matching fact rows',
			DESC = 'perform zigzag join',
			COND = 'true')`,
		`CREATE POPERATOR grpby FOR db2 (
			ALIAS = 'group by',
			TYPE = 'unary',
			DESC = 'perform aggregate on $R1$ with grouping on attribute $group$ and filtering on $cond$',
			COND = 'true')`,
		`CREATE POPERATOR sort FOR db2 (
			TYPE = 'unary',
			DESC = 'sort $R1$',
			COND = 'false',
			TARGET = 'msjoin')`,
		`CREATE POPERATOR unique FOR db2 (
			ALIAS = 'duplicate removal',
			TYPE = 'unary',
			DESC = 'perform duplicate removal on $R1$',
			COND = 'false')`,
	}
	for _, stmt := range stmts {
		s.MustExec(stmt)
	}
}

// NewSeededStore creates a store pre-populated with SeedStandard.
func NewSeededStore() *Store {
	s := NewStore()
	SeedStandard(s)
	return s
}
